// Ablations for two quantitative claims in the paper's text:
//  (a) §V-A: "the cost of memory reclamation ... lessens for higher key
//      ranges, typically under 20%" -- we measure SV-HP vs SV-Leak overhead
//      across key ranges.
//  (b) §V-B / DESIGN.md: lazy orphan merging -- sweep mergeThreshold
//      (0 disables merging entirely; paper default 1.67; 1.0 used by the
//      tuned Fig. 4a configuration) under a write-heavy mix that produces
//      orphans, and report throughput plus the surviving orphan count.
#include <cstdio>
#include <memory>

#include "baselines/fraser_skiplist.h"
#include "benchutil/driver.h"
#include "benchutil/json_report.h"
#include "benchutil/options.h"
#include "core/skip_vector_epoch.h"

namespace {

using sv::benchutil::BenchReport;
using sv::benchutil::JsonValue;
using sv::benchutil::MixSpec;
using sv::benchutil::Options;
using MapHP = sv::core::SkipVector<std::uint64_t, std::uint64_t>;
using MapLeak = sv::core::SkipVectorLeak<std::uint64_t, std::uint64_t>;
using MapEpoch = sv::core::SkipVectorEpoch<std::uint64_t, std::uint64_t>;

template <class Map>
double throughput(const sv::core::Config& cfg, const MixSpec& mix,
                  std::uint64_t range, unsigned threads, double seconds,
                  std::size_t* orphans_out = nullptr) {
  auto m = std::make_unique<Map>(cfg);
  sv::benchutil::prefill_half(*m, range, threads);
  auto r = sv::benchutil::run_mix(*m, mix, range, threads, seconds);
  if (orphans_out != nullptr) {
    auto st = m->stats();
    std::size_t orphans = 0;
    for (const auto& l : st.layers) orphans += l.orphans;
    *orphans_out = orphans;
  }
  return r.mops();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  if (opt.help_requested()) {
    std::printf(
        "ablation_merge_hp: HP overhead by key range; mergeThreshold sweep\n"
        "  --range-bits=A,B,..  ranges for the HP ablation (default 14,18,22)\n"
        "  --threads=N          worker threads (default 2)\n"
        "  --seconds=F          seconds per cell (default 0.5)\n"
        "  --json=PATH          also write sv-bench JSON ('-' = stdout)\n");
    return 0;
  }
  const auto range_bits = opt.u64_list("range-bits", {14, 18, 22});
  const auto threads = static_cast<unsigned>(opt.u64("threads", 2));
  const double seconds = opt.f64("seconds", 0.5);
  const std::string json_path = opt.str("json", "");

  BenchReport report("ablation_merge_hp");
  report.config().set("threads", threads);
  report.config().set("seconds", seconds);

  std::printf("== Ablation A: reclamation-policy overhead vs key range"
              " (80/10/10, %u threads) ==\n", threads);
  std::printf("  %-8s %12s %12s %12s %10s\n", "bits", "SV-HP", "SV-EBR",
              "SV-Leak", "HP ovhd");
  for (const auto bits : range_bits) {
    const std::uint64_t range = 1ULL << bits;
    const auto cfg = sv::core::Config::for_elements(range / 2);
    const double hp =
        throughput<MapHP>(cfg, MixSpec{80, 10, 10}, range, threads, seconds);
    const double ebr =
        throughput<MapEpoch>(cfg, MixSpec{80, 10, 10}, range, threads,
                             seconds);
    const double leak =
        throughput<MapLeak>(cfg, MixSpec{80, 10, 10}, range, threads, seconds);
    std::printf("  2^%-6llu %12.3f %12.3f %12.3f %9.1f%%\n",
                static_cast<unsigned long long>(bits), hp, ebr, leak,
                leak > 0 ? 100.0 * (leak - hp) / leak : 0.0);
    for (const auto& [name, mops] :
         {std::pair<const char*, double>{"SV-HP", hp},
          {"SV-EBR", ebr},
          {"SV-Leak", leak}}) {
      JsonValue& row = report.add_result(name);
      JsonValue& params = row.set("params", JsonValue::object());
      params.set("range_bits", bits);
      params.set("threads", threads);
      row.set("throughput_mops", mops);
    }
  }

  std::printf("\n== Ablation B: mergeThreshold sweep"
              " (0/50/50 churn, 2^16 keys, %u threads) ==\n", threads);
  std::printf("  %-10s %12s %14s\n", "factor", "Mops/s", "orphans left");
  for (const double f : {0.0, 0.5, 1.0, 1.67, 2.0}) {
    auto cfg = sv::core::Config::for_elements(1ULL << 15);
    cfg.merge_threshold_factor = f;
    std::size_t orphans = 0;
    const double mops = throughput<MapHP>(cfg, MixSpec{0, 50, 50}, 1ULL << 16,
                                          threads, seconds, &orphans);
    std::printf("  %-10.2f %12.3f %14zu\n", f, mops, orphans);
    JsonValue& row = report.add_result("merge_threshold");
    JsonValue& params = row.set("params", JsonValue::object());
    params.set("factor", f);
    params.set("threads", threads);
    row.set("throughput_mops", mops);
    row.set("metrics", JsonValue::object())
        .set("orphans_left", static_cast<std::uint64_t>(orphans));
  }

  // Memory footprint: the chunked layout amortizes per-node overhead
  // (lock, next pointer, malloc header) over T elements; FSL pays it per
  // element plus a tower. This is why the paper's 2^31 runs OOMed FSL
  // while SV completed (§V-A).
  std::printf("\n== Ablation C: node memory footprint after inserting"
              " n keys ==\n");
  std::printf("  %-10s %14s %14s %10s\n", "n", "SV bytes", "FSL bytes",
              "ratio");
  for (const auto bits : {16, 18, 20}) {
    const std::uint64_t n = 1ULL << bits;
    std::size_t sv_bytes = 0, fsl_bytes = 0;
    {
      MapHP m(sv::core::Config::for_elements(n));
      for (std::uint64_t k = 0; k < n; ++k) m.insert(k * 2654435761u, k);
      sv_bytes = m.stats().bytes;
    }
    {
      sv::baselines::FraserSkipList<std::uint64_t, std::uint64_t> m;
      for (std::uint64_t k = 0; k < n; ++k) m.insert(k * 2654435761u, k);
      fsl_bytes = m.memory_bytes();
    }
    std::printf("  2^%-8d %14zu %14zu %9.2fx\n", bits, sv_bytes, fsl_bytes,
                sv_bytes > 0 ? static_cast<double>(fsl_bytes) / sv_bytes
                             : 0.0);
    for (const auto& [name, bytes] :
         {std::pair<const char*, std::size_t>{"footprint_SV", sv_bytes},
          {"footprint_FSL", fsl_bytes}}) {
      JsonValue& row = report.add_result(name);
      row.set("params", JsonValue::object())
          .set("n_bits", static_cast<std::uint64_t>(bits));
      row.set("metrics", JsonValue::object())
          .set("bytes", static_cast<std::uint64_t>(bytes));
    }
  }
  if (!json_path.empty() && !report.write(json_path)) return 1;
  return 0;
}
