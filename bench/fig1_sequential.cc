// Figure 1: sequential ordered-set performance as a function of key range,
// 80/10/10 lookup/insert/remove, structure prefilled with half the keys.
// Contenders: unsorted vector, sorted vector, std::map, sequential skip
// list -- plus the sequential skip vector, which the paper's Fig. 1
// predates but whose crossover behavior is the motivation for the design.
//
// Expected shape (paper §I): vectors win at small ranges and collapse as
// the range grows; the tree and skip list stay flat; the skip vector tracks
// the vectors early and the log structures late.
#include <cstdio>
#include <string>

#include "baselines/sequential_maps.h"
#include "benchutil/driver.h"
#include "benchutil/json_report.h"
#include "benchutil/options.h"
#include "core/skip_vector.h"

namespace {

using sv::benchutil::BenchReport;
using sv::benchutil::JsonValue;
using sv::benchutil::MixSpec;
using sv::benchutil::Options;

// Deterministic half-prefill: every other key, appended in ascending order
// (cheap even for the O(n)-insert vectors).
template <class Map>
void prefill_alternating(Map& m, std::uint64_t key_range) {
  for (std::uint64_t k = 0; k < key_range; k += 2) m.insert(k, k);
}

template <class Map>
double run_cell(Map& m, std::uint64_t key_range, double seconds,
                unsigned trials) {
  prefill_alternating(m, key_range);
  const MixSpec mix{80, 10, 10};
  auto r = sv::benchutil::run_mix_trials(m, mix, key_range, /*threads=*/1,
                                         seconds, trials);
  return r.mops();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  if (opt.help_requested()) {
    std::printf(
        "fig1_sequential: sequential 80/10/10 set benchmark vs key range\n"
        "  --min-bits=N     smallest key range 2^N (default 4)\n"
        "  --max-bits=N     largest key range 2^N (default 16; paper ~22)\n"
        "  --seconds=F      measured seconds per cell (default 0.2)\n"
        "  --trials=N       trials per cell, averaged (default 1)\n"
        "  --json=PATH      also write sv-bench JSON ('-' = stdout)\n");
    return 0;
  }
  const auto min_bits = opt.u64("min-bits", 4);
  const auto max_bits = opt.u64("max-bits", 16);
  const double seconds = opt.f64("seconds", 0.2);
  const auto trials = static_cast<unsigned>(opt.u64("trials", 1));
  const std::string json_path = opt.str("json", "");

  BenchReport report("fig1_sequential");
  report.config().set("min_bits", min_bits);
  report.config().set("max_bits", max_bits);
  report.config().set("seconds", seconds);
  report.config().set("trials", trials);
  const auto report_row = [&](const char* name, std::uint64_t bits,
                              double mops) {
    JsonValue& row = report.add_result(name);
    row.set("params", JsonValue::object()).set("range_bits", bits);
    row.set("throughput_mops", mops);
  };

  std::printf("== Figure 1: sequential set performance vs key range ==\n");
  std::printf("   mix 80/10/10, prefill 50%%, %0.2fs x %u trials per cell\n",
              seconds, trials);
  std::printf("  %-6s %16s %16s %16s %16s %16s\n", "bits", "unsorted_vec",
              "sorted_vec", "std_map", "seq_skiplist", "skip_vector");

  for (std::uint64_t bits = min_bits; bits <= max_bits; bits += 2) {
    const std::uint64_t range = 1ULL << bits;
    double mops[5] = {};
    {
      sv::baselines::UnsortedVectorMap<std::uint64_t, std::uint64_t> m;
      mops[0] = run_cell(m, range, seconds, trials);
    }
    {
      sv::baselines::SortedVectorMap<std::uint64_t, std::uint64_t> m;
      mops[1] = run_cell(m, range, seconds, trials);
    }
    {
      sv::baselines::StdMapAdapter<std::uint64_t, std::uint64_t> m;
      mops[2] = run_cell(m, range, seconds, trials);
    }
    {
      sv::baselines::SequentialSkipList<std::uint64_t, std::uint64_t> m;
      mops[3] = run_cell(m, range, seconds, trials);
    }
    {
      sv::core::SkipVectorSeq<std::uint64_t, std::uint64_t> m(
          sv::core::Config::for_elements(range / 2));
      mops[4] = run_cell(m, range, seconds, trials);
    }
    std::printf("  2^%-4llu %16.3f %16.3f %16.3f %16.3f %16.3f\n",
                static_cast<unsigned long long>(bits), mops[0], mops[1],
                mops[2], mops[3], mops[4]);
    report_row("unsorted_vec", bits, mops[0]);
    report_row("sorted_vec", bits, mops[1]);
    report_row("std_map", bits, mops[2]);
    report_row("seq_skiplist", bits, mops[3]);
    report_row("skip_vector", bits, mops[4]);
  }
  if (!json_path.empty() && !report.write(json_path)) return 1;
  return 0;
}
