// Figure 4: throughput for an 80/10/10 lookup/insert/remove mix, uniform
// keys, across key ranges and thread counts. Expected shape (paper §V-A):
// SV variants beat USL which beats FSL, the gap widening with key range;
// the HP-vs-Leak penalty shrinks as the range grows.
#include <memory>

#include "mix_bench.h"

int main(int argc, char** argv) {
  svbench::Options opt(argc, argv);
  if (opt.help_requested()) {
    svbench::print_sweep_help("fig4_mix801010", "80/10/10");
    return 0;
  }
  const auto cfg = svbench::sweep_from_options(opt);
  const std::string json_path = opt.str("json", "");
  const sv::benchutil::MixSpec mix{80, 10, 10};
  svbench::BenchReport report("fig4_mix801010");
  svbench::fill_sweep_config(report, mix, cfg);
  svbench::run_sweep("Figure 4: 80/10/10 lookup/insert/remove", mix, cfg,
                     json_path.empty() ? nullptr : &report);
  if (!json_path.empty() && !report.write(json_path)) return 1;
  return 0;
}
