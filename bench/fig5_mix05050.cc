// Figure 5: throughput for a 0/50/50 insert/remove mix (the paper's
// worst case for the skip vector: write-heavy, coarse-grained chunk
// contention). Expected shape (§V-A): SV still beats USL everywhere;
// at small key ranges with many threads FSL can overtake SV.
#include <memory>

#include "mix_bench.h"

int main(int argc, char** argv) {
  svbench::Options opt(argc, argv);
  if (opt.help_requested()) {
    svbench::print_sweep_help("fig5_mix05050", "0/50/50");
    return 0;
  }
  const auto cfg = svbench::sweep_from_options(opt);
  const std::string json_path = opt.str("json", "");
  const sv::benchutil::MixSpec mix{0, 50, 50};
  svbench::BenchReport report("fig5_mix05050");
  svbench::fill_sweep_config(report, mix, cfg);
  svbench::run_sweep("Figure 5: 0/50/50 insert/remove", mix, cfg,
                     json_path.empty() ? nullptr : &report);
  if (!json_path.empty() && !report.write(json_path)) return 1;
  return 0;
}
