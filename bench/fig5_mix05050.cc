// Figure 5: throughput for a 0/50/50 insert/remove mix (the paper's
// worst case for the skip vector: write-heavy, coarse-grained chunk
// contention). Expected shape (§V-A): SV still beats USL everywhere;
// at small key ranges with many threads FSL can overtake SV.
#include <memory>

#include "mix_bench.h"

int main(int argc, char** argv) {
  svbench::Options opt(argc, argv);
  if (opt.help_requested()) {
    svbench::print_sweep_help("fig5_mix05050", "0/50/50");
    return 0;
  }
  const auto cfg = svbench::sweep_from_options(opt);
  svbench::run_sweep("Figure 5: 0/50/50 insert/remove",
                     sv::benchutil::MixSpec{0, 50, 50}, cfg);
  return 0;
}
