// Figure 6: YCSB throughput on the DBx1000-style OLTP engine with the
// ordered index under test: SV-HP vs USL-HP (no index chunking) vs SL-HP
// (no chunking at all). Each thread runs a fixed number of transactions of
// 16 accesses (90% reads), keys Zipfian with theta in {0.1, 0.6, 0.9}.
//
// Expected shape (paper §V-A): chunking in both layers gives SV-HP ~2x over
// USL-HP and SL-HP at low/medium skew; at theta=0.9 all contenders degrade
// as the concurrency-control layer (row latches) becomes the bottleneck.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "benchutil/json_report.h"
#include "benchutil/options.h"
#include "common/timer.h"
#include "core/skip_vector.h"
#include "dbx/database.h"

namespace {

using sv::benchutil::BenchReport;
using sv::benchutil::JsonValue;
using sv::benchutil::Options;
using sv::dbx::Row;
using Index = sv::core::SkipVector<std::uint64_t, Row*>;
using HashIndexMap = sv::core::SkipVectorHash<std::uint64_t, Row*>;

double g_scan_fraction = 0.0;
std::uint64_t g_scan_length = 100;
double g_read_fraction = 0.9;

template <class IndexT = Index>
double run_cell(const sv::core::Config& index_cfg, std::uint64_t rows,
                double theta, unsigned threads, std::uint64_t txns_per_thread,
                sv::dbx::TxnStats* total_stats) {
  sv::dbx::YcsbConfig cfg;
  cfg.table_rows = rows;
  cfg.zipf_theta = theta;
  cfg.scan_fraction = g_scan_fraction;
  cfg.scan_length = static_cast<std::uint32_t>(g_scan_length);
  cfg.read_fraction = g_read_fraction;
  sv::dbx::Database<IndexT> db(cfg, index_cfg);

  std::vector<sv::dbx::TxnStats> stats(threads);
  std::vector<std::thread> workers;
  sv::WallTimer timer;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      sv::dbx::YcsbGenerator gen(cfg, 7777 + t);
      db.run_worker(gen, txns_per_thread, &stats[t]);
    });
  }
  for (auto& w : workers) w.join();
  const double secs = timer.elapsed_seconds();
  sv::dbx::TxnStats sum;
  for (const auto& s : stats) sum += s;
  if (total_stats != nullptr) *total_stats += sum;
  return static_cast<double>(sum.commits) / secs / 1e6;  // Mtxn/s
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  if (opt.help_requested()) {
    std::printf(
        "fig6_ycsb: YCSB/DBx1000-style index throughput (SV vs USL vs SL)\n"
        "  --rows=N         table rows (default 2^18; paper 24M)\n"
        "  --txns=N         transactions per thread (default 10000;"
        " paper 100K)\n"
        "  --threads=A,B,.. thread counts (default 1,2,4)\n"
        "  --thetas=list    Zipf thetas x100 (default 10,60,90)\n"
        "  --scans=F        fraction of accesses that are YCSB-E range"
        " scans (default 0)\n"
        "  --scan-len=N     rows per scan (default 100)\n"
        "  --workload=W     YCSB preset: a (50%% upd), b (5%% upd),"
        " c (read-only), e (scans); overrides read/scan fractions\n"
        "  --hash           add an SV-HP-Hash column (hash sidecar point"
        " lookups)\n"
        "  --json=PATH      also write sv-bench JSON ('-' = stdout)\n");
    return 0;
  }
  const std::uint64_t rows = opt.u64("rows", 1ULL << 18);
  g_scan_fraction = opt.f64("scans", 0.0);
  g_scan_length = opt.u64("scan-len", 100);
  double read_fraction = 0.9;  // the paper's Fig. 6 mix
  const std::string preset = opt.str("workload", "");
  if (preset == "a") {
    read_fraction = 0.5;
  } else if (preset == "b") {
    read_fraction = 0.95;
  } else if (preset == "c") {
    read_fraction = 1.0;
  } else if (preset == "e") {
    read_fraction = 1.0;
    g_scan_fraction = 0.95;
  } else if (!preset.empty()) {
    std::fprintf(stderr, "unknown --workload=%s\n", preset.c_str());
    return 2;
  }
  g_read_fraction = read_fraction;
  const std::uint64_t txns = opt.u64("txns", 10000);
  const auto threads_list = opt.u64_list("threads", {1, 2, 4});
  const auto thetas = opt.u64_list("thetas", {10, 60, 90});
  const bool with_hash = opt.flag("hash");
  const std::string json_path = opt.str("json", "");

  BenchReport report("fig6_ycsb");
  report.config().set("rows", rows);
  report.config().set("txns_per_thread", txns);
  report.config().set("read_fraction", read_fraction);
  report.config().set("scan_fraction", g_scan_fraction);
  const auto report_row = [&](const char* name, double theta, unsigned threads,
                              double mtxn, double abort_rate) {
    JsonValue& row = report.add_result(name);
    JsonValue& params = row.set("params", JsonValue::object());
    params.set("zipf_theta", theta);
    params.set("threads", threads);
    JsonValue& metrics = row.set("metrics", JsonValue::object());
    metrics.set("mtxn_per_s", mtxn);
    if (abort_rate >= 0) metrics.set("abort_rate", abort_rate);
  };

  std::printf("== Figure 6: YCSB DBx1000-style throughput (Mtxn/s) ==\n");
  std::printf("   rows=%llu, txns/thread=%llu, 16 accesses/txn, 90%% reads\n",
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(txns));

  const auto sv_cfg = sv::core::Config::for_elements(rows);
  const auto usl_cfg = sv::core::Config::usl_for_elements(rows);
  const auto sl_cfg = sv::core::Config::sl_for_elements(rows);

  for (const auto theta100 : thetas) {
    const double theta = static_cast<double>(theta100) / 100.0;
    std::printf("\n-- zipf theta = %.2f --\n", theta);
    if (with_hash) {
      std::printf("  %-10s %12s %12s %12s %12s %12s\n", "threads", "SV-HP",
                  "SV-HP-Hash", "USL-HP", "SL-HP", "abort%%SV");
    } else {
      std::printf("  %-10s %12s %12s %12s %12s\n", "threads", "SV-HP",
                  "USL-HP", "SL-HP", "abort%%SV");
    }
    for (const auto t64 : threads_list) {
      const auto threads = static_cast<unsigned>(t64);
      sv::dbx::TxnStats sv_stats;
      const double sv = run_cell(sv_cfg, rows, theta, threads, txns, &sv_stats);
      const double svh =
          with_hash ? run_cell<HashIndexMap>(sv_cfg, rows, theta, threads,
                                             txns, nullptr)
                    : 0;
      const double usl = run_cell(usl_cfg, rows, theta, threads, txns, nullptr);
      const double sl = run_cell(sl_cfg, rows, theta, threads, txns, nullptr);
      if (with_hash) {
        std::printf("  %-10u %12.4f %12.4f %12.4f %12.4f %11.2f%%\n", threads,
                    sv, svh, usl, sl, 100.0 * sv_stats.abort_rate());
      } else {
        std::printf("  %-10u %12.4f %12.4f %12.4f %11.2f%%\n", threads, sv,
                    usl, sl, 100.0 * sv_stats.abort_rate());
      }
      report_row("SV-HP", theta, threads, sv, sv_stats.abort_rate());
      if (with_hash) report_row("SV-HP-Hash", theta, threads, svh, -1);
      report_row("USL-HP", theta, threads, usl, -1);
      report_row("SL-HP", theta, threads, sl, -1);
    }
  }
  if (!json_path.empty() && !report.write(json_path)) return 1;
  return 0;
}
