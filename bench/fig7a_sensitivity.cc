// Figure 7a: sensitivity to targetIndexVectorSize for an 80/10/10 mix,
// adjusting layerCount to the minimum preserving the asymptotic guarantee,
// everything else fixed. The paper also discusses (but omits the graph for)
// the targetDataVectorSize sweep; we print both.
//
// Expected shape (§V-B): a shallow bowl -- worst configuration ~25% below
// the best; best around T=32..64; both very small (skip-list-like) and very
// large (expensive vector ops) degrade.
#include <cstdio>
#include <memory>

#include "benchutil/driver.h"
#include "benchutil/json_report.h"
#include "benchutil/options.h"
#include "core/skip_vector.h"

namespace {

using sv::benchutil::BenchReport;
using sv::benchutil::JsonValue;
using sv::benchutil::MixSpec;
using sv::benchutil::Options;
using Map = sv::core::SkipVector<std::uint64_t, std::uint64_t>;

double run_cell(const sv::core::Config& cfg, std::uint64_t range,
                unsigned threads, double seconds, unsigned trials) {
  auto map = std::make_unique<Map>(cfg);
  sv::benchutil::prefill_half(*map, range, threads);
  auto r = sv::benchutil::run_mix_trials(*map, MixSpec{80, 10, 10}, range,
                                         threads, seconds, trials);
  return r.mops();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  if (opt.help_requested()) {
    std::printf(
        "fig7a_sensitivity: throughput vs target vector sizes\n"
        "  --range-bits=N  key range 2^N (default 20; paper 28)\n"
        "  --threads=N     worker threads (default 2)\n"
        "  --seconds=F     seconds per cell (default 0.5)\n"
        "  --trials=N      trials per cell (default 1)\n"
        "  --sizes=list    target sizes to sweep (default 1..256)\n"
        "  --json=PATH     also write sv-bench JSON ('-' = stdout)\n");
    return 0;
  }
  const auto bits = opt.u64("range-bits", 20);
  const std::uint64_t range = 1ULL << bits;
  const auto threads = static_cast<unsigned>(opt.u64("threads", 2));
  const double seconds = opt.f64("seconds", 0.5);
  const auto trials = static_cast<unsigned>(opt.u64("trials", 1));
  const auto sizes = opt.u64_list("sizes", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  const std::string json_path = opt.str("json", "");

  BenchReport report("fig7a_sensitivity");
  report.config().set("range_bits", bits);
  report.config().set("threads", threads);
  report.config().set("seconds", seconds);
  report.config().set("trials", trials);
  const auto report_row = [&](const char* sweep, std::uint64_t size,
                              unsigned layers, double mops) {
    JsonValue& row = report.add_result(sweep);
    JsonValue& params = row.set("params", JsonValue::object());
    params.set("target_size", size);
    params.set("layers", layers);
    row.set("throughput_mops", mops);
  };

  std::printf("== Figure 7a: configuration sensitivity (80/10/10, 2^%llu"
              " keys, %u threads) ==\n",
              static_cast<unsigned long long>(bits), threads);

  std::printf("\n-- sweep targetIndexVectorSize (T_D fixed at 32) --\n");
  std::printf("  %-8s %8s %12s\n", "T_I", "layers", "Mops/s");
  for (const auto ti : sizes) {
    auto cfg = sv::core::Config::for_elements(
        range / 2, static_cast<std::uint32_t>(ti), 32);
    const double mops = run_cell(cfg, range, threads, seconds, trials);
    std::printf("  %-8llu %8u %12.3f\n", static_cast<unsigned long long>(ti),
                cfg.layer_count, mops);
    report_row("sweep_T_I", ti, cfg.layer_count, mops);
  }

  std::printf("\n-- sweep targetDataVectorSize (T_I fixed at 32; graph"
              " omitted in the paper, same expected shape) --\n");
  std::printf("  %-8s %8s %12s\n", "T_D", "layers", "Mops/s");
  for (const auto td : sizes) {
    auto cfg = sv::core::Config::for_elements(
        range / 2, 32, static_cast<std::uint32_t>(td));
    const double mops = run_cell(cfg, range, threads, seconds, trials);
    std::printf("  %-8llu %8u %12.3f\n", static_cast<unsigned long long>(td),
                cfg.layer_count, mops);
    report_row("sweep_T_D", td, cfg.layer_count, mops);
  }
  if (!json_path.empty() && !report.write(json_path)) return 1;
  return 0;
}
