// Figure 7b: sorted vs unsorted chunk layouts in the index and data layers
// (four combinations), 80/10/10 mix.
//
// Expected shape (§V-B): sorted index + unsorted data wins -- index chunks
// are lookup-dominated (binary search pays), data chunks absorb most of the
// writes (O(1) unsorted insert/remove pays).
#include <cstdio>
#include <memory>

#include "benchutil/driver.h"
#include "benchutil/json_report.h"
#include "benchutil/options.h"
#include "core/skip_vector.h"

namespace {

using sv::benchutil::BenchReport;
using sv::benchutil::JsonValue;
using sv::benchutil::MixSpec;
using sv::benchutil::Options;
using sv::vectormap::Layout;

template <Layout I, Layout D>
double run_cell(const sv::core::Config& cfg, std::uint64_t range,
                unsigned threads, double seconds, unsigned trials) {
  using Map = sv::core::SkipVectorMap<std::uint64_t, std::uint64_t,
                                      sv::reclaim::HazardReclaimer, I, D>;
  auto map = std::make_unique<Map>(cfg);
  sv::benchutil::prefill_half(*map, range, threads);
  auto r = sv::benchutil::run_mix_trials(*map, MixSpec{80, 10, 10}, range,
                                         threads, seconds, trials);
  return r.mops();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  if (opt.help_requested()) {
    std::printf(
        "fig7b_sorted_unsorted: chunk layout combinations (80/10/10)\n"
        "  --range-bits=N  key range 2^N (default 20; paper 28)\n"
        "  --threads=N     worker threads (default 2)\n"
        "  --seconds=F     seconds per cell (default 0.5)\n"
        "  --trials=N      trials per cell (default 1)\n"
        "  --json=PATH     also write sv-bench JSON ('-' = stdout)\n");
    return 0;
  }
  const auto bits = opt.u64("range-bits", 20);
  const std::uint64_t range = 1ULL << bits;
  const auto threads = static_cast<unsigned>(opt.u64("threads", 2));
  const double seconds = opt.f64("seconds", 0.5);
  const auto trials = static_cast<unsigned>(opt.u64("trials", 1));
  const auto cfg = sv::core::Config::for_elements(range / 2);
  const std::string json_path = opt.str("json", "");

  BenchReport report("fig7b_sorted_unsorted");
  report.config().set("range_bits", bits);
  report.config().set("threads", threads);
  report.config().set("seconds", seconds);
  report.config().set("trials", trials);
  const auto report_row = [&](const char* name, double mops) {
    JsonValue& row = report.add_result(name);
    row.set("params", JsonValue::object()).set("threads", threads);
    row.set("throughput_mops", mops);
  };

  std::printf("== Figure 7b: sorted/unsorted layer layouts (80/10/10, 2^%llu"
              " keys, %u threads) ==\n",
              static_cast<unsigned long long>(bits), threads);
  std::printf("  %-28s %12s\n", "index/data layout", "Mops/s");
  double mops = run_cell<Layout::kSorted, Layout::kUnsorted>(
      cfg, range, threads, seconds, trials);
  std::printf("  %-28s %12.3f\n", "sorted/unsorted (paper best)", mops);
  report_row("sorted/unsorted", mops);
  mops = run_cell<Layout::kSorted, Layout::kSorted>(cfg, range, threads,
                                                    seconds, trials);
  std::printf("  %-28s %12.3f\n", "sorted/sorted", mops);
  report_row("sorted/sorted", mops);
  mops = run_cell<Layout::kUnsorted, Layout::kUnsorted>(cfg, range, threads,
                                                        seconds, trials);
  std::printf("  %-28s %12.3f\n", "unsorted/unsorted", mops);
  report_row("unsorted/unsorted", mops);
  mops = run_cell<Layout::kUnsorted, Layout::kSorted>(cfg, range, threads,
                                                      seconds, trials);
  std::printf("  %-28s %12.3f\n", "unsorted/sorted", mops);
  report_row("unsorted/sorted", mops);
  if (!json_path.empty() && !report.write(json_path)) return 1;
  return 0;
}
