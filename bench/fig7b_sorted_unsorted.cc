// Figure 7b: sorted vs unsorted chunk layouts in the index and data layers
// (four combinations), 80/10/10 mix.
//
// Expected shape (§V-B): sorted index + unsorted data wins -- index chunks
// are lookup-dominated (binary search pays), data chunks absorb most of the
// writes (O(1) unsorted insert/remove pays).
//
// Extension: a three-way sweep (static sorted data, static unsorted data,
// adaptive) over two mixes where the static choices diverge. Scan-heavy
// punishes unsorted data chunks hard (ordered iteration sorts each chunk
// per visit), so adaptive starts unsorted and must earn its way back to
// sorted at split/merge time. Write-heavy starts adaptive from sorted:
// under real multi-core contention that is the layout the paper's policy
// flips away from (shorter unsorted write sections), while uncontended the
// contention gate (adapt::Policy::contended_writes_per_retry) holds it --
// on a small box the sorted shift IS the cheaper point write, and flipping
// would be a pessimization. Either way the gate below applies: "within 10%
// of the best static cell, strictly better than the worst".
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "benchutil/driver.h"
#include "benchutil/json_report.h"
#include "benchutil/options.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/skip_vector.h"

namespace {

using sv::benchutil::BenchReport;
using sv::benchutil::JsonValue;
using sv::benchutil::MixSpec;
using sv::benchutil::Options;
using sv::vectormap::Layout;

using Map = sv::core::SkipVector<std::uint64_t, std::uint64_t>;

double run_cell(sv::core::Config cfg, Layout index_layout, Layout data_layout,
                std::uint64_t range, unsigned threads, double seconds,
                unsigned trials) {
  cfg.index_layout = index_layout;
  cfg.data_layout = data_layout;
  auto map = std::make_unique<Map>(cfg);
  sv::benchutil::prefill_half(*map, range, threads);
  auto r = sv::benchutil::run_mix_trials(*map, MixSpec{80, 10, 10}, range,
                                         threads, seconds, trials);
  return r.mops();
}

// Scan-heavy mix the shared driver does not model: 80% range_for_each over
// a short span, 10% insert, 10% remove. Ordered iteration over an unsorted
// chunk pays a per-visit sort, so sorted data chunks win here.
double run_scan_mix(Map& map, std::uint64_t range, unsigned threads,
                    double seconds, std::uint64_t seed) {
  constexpr std::uint64_t kSpan = 128;
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> per_thread(threads, 0);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      sv::Xoshiro256 rng(seed * 7919 + t);
      while (!start.load(std::memory_order_acquire)) {
      }
      std::uint64_t ops = 0;
      std::uint64_t sink = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 32; ++i) {
          const std::uint64_t k = rng.next_below(range);
          const auto dice = rng.next_below(100);
          if (dice < 80) {
            const std::uint64_t hi =
                k + kSpan - 1 < k ? ~std::uint64_t{0} : k + kSpan - 1;
            map.range_for_each(
                k, hi, [&](std::uint64_t, std::uint64_t v) { sink ^= v; });
          } else if (dice < 90) {
            map.insert(k, k ^ 0x5555555555555555ULL);
          } else {
            map.remove(k);
          }
        }
        ops += 32;
      }
      volatile std::uint64_t s = sink;
      (void)s;
      per_thread[t] = ops;
    });
  }
  sv::WallTimer timer;
  start.store(true, std::memory_order_release);
  while (timer.elapsed_seconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  const double elapsed = timer.elapsed_seconds();
  for (auto& w : workers) w.join();
  std::uint64_t total = 0;
  for (auto ops : per_thread) total += ops;
  return elapsed == 0 ? 0 : total / elapsed / 1e6;
}

// One prepared sweep cell: the map built, prefilled, and warmed with three
// unmeasured intervals of its mix (adaptive decisions fire at structural
// and scan sites, so a chunk converges only after enough churn reaches it;
// the static cells get identical treatment). Measurement happens
// TRIAL-INTERLEAVED across the three cells of a mix -- sequential
// cell-at-a-time measurement turns any slow machine drift (thermal,
// noisy neighbors) into a systematic bias against whichever cell runs
// last, which on a 10% acceptance margin is fatal.
struct SweepCell {
  std::unique_ptr<Map> map;
  double sum = 0;
};

SweepCell prepare_sweep_cell(sv::core::Config cfg, Layout data_layout,
                             bool adaptive, bool scan_heavy,
                             std::uint64_t range, unsigned threads,
                             double seconds) {
  cfg.index_layout = Layout::kSorted;
  cfg.data_layout = data_layout;
  cfg.adaptive = adaptive;
  SweepCell cell;
  cell.map = std::make_unique<Map>(cfg);
  sv::benchutil::prefill_half(*cell.map, range, threads);
  if (scan_heavy) {
    run_scan_mix(*cell.map, range, threads, 3 * seconds, /*seed=*/0x7A);
  } else {
    sv::benchutil::run_mix(*cell.map, MixSpec{0, 50, 50}, range, threads,
                           3 * seconds, 0x7A);
  }
  return cell;
}

double measure_sweep_trial(Map& map, bool scan_heavy, std::uint64_t range,
                           unsigned threads, double seconds,
                           std::uint64_t seed) {
  if (scan_heavy) return run_scan_mix(map, range, threads, seconds, seed);
  return sv::benchutil::run_mix(map, MixSpec{0, 50, 50}, range, threads,
                                seconds, seed)
      .mops();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  if (opt.help_requested()) {
    std::printf(
        "fig7b_sorted_unsorted: chunk layout combinations (80/10/10)\n"
        "  --range-bits=N        key range 2^N (default 20; paper 28)\n"
        "  --sweep-range-bits=N  key range for the adaptive sweep (default "
        "16)\n"
        "  --sweep-tdata=N       data-chunk target size for the sweep "
        "(default 32)\n"
        "  --threads=N           worker threads (default 2)\n"
        "  --seconds=F           seconds per cell (default 0.5)\n"
        "  --trials=N            trials per cell (default 1)\n"
        "  --json=PATH           also write sv-bench JSON ('-' = stdout)\n");
    return 0;
  }
  const auto bits = opt.u64("range-bits", 20);
  const auto sweep_bits = opt.u64("sweep-range-bits", 16);
  // Data-chunk target size for the sweep, exposed as a knob: the static
  // layout gap widens with T (ordered scans over unsorted chunks pay a
  // per-visit sort; sorted point writes pay a T/2 shift), while adaptive
  // convergence slows with T (decisions fire at structural ops, whose
  // per-chunk cadence falls as chunks grow).
  const auto sweep_tdata =
      static_cast<std::uint32_t>(opt.u64("sweep-tdata", 32));
  const std::uint64_t range = 1ULL << bits;
  const std::uint64_t sweep_range = 1ULL << sweep_bits;
  const auto threads = static_cast<unsigned>(opt.u64("threads", 2));
  const double seconds = opt.f64("seconds", 0.5);
  const auto trials = static_cast<unsigned>(opt.u64("trials", 1));
  const auto cfg = sv::core::Config::for_elements(range / 2);
  const auto sweep_cfg =
      sv::core::Config::for_elements(sweep_range / 2, 32, sweep_tdata);
  const std::string json_path = opt.str("json", "");

  BenchReport report("fig7b_sorted_unsorted");
  report.config().set("range_bits", bits);
  report.config().set("sweep_range_bits", sweep_bits);
  report.config().set("sweep_tdata", sweep_tdata);
  report.config().set("threads", threads);
  report.config().set("seconds", seconds);
  report.config().set("trials", trials);
  const auto report_row = [&](const std::string& name, double mops) {
    JsonValue& row = report.add_result(name);
    row.set("params", JsonValue::object()).set("threads", threads);
    row.set("throughput_mops", mops);
  };

  std::printf("== Figure 7b: sorted/unsorted layer layouts (80/10/10, 2^%llu"
              " keys, %u threads) ==\n",
              static_cast<unsigned long long>(bits), threads);
  std::printf("  %-28s %12s\n", "index/data layout", "Mops/s");
  double mops = run_cell(cfg, Layout::kSorted, Layout::kUnsorted, range,
                         threads, seconds, trials);
  std::printf("  %-28s %12.3f\n", "sorted/unsorted (paper best)", mops);
  report_row("sorted/unsorted", mops);
  mops = run_cell(cfg, Layout::kSorted, Layout::kSorted, range, threads,
                  seconds, trials);
  std::printf("  %-28s %12.3f\n", "sorted/sorted", mops);
  report_row("sorted/sorted", mops);
  mops = run_cell(cfg, Layout::kUnsorted, Layout::kUnsorted, range, threads,
                  seconds, trials);
  std::printf("  %-28s %12.3f\n", "unsorted/unsorted", mops);
  report_row("unsorted/unsorted", mops);
  mops = run_cell(cfg, Layout::kUnsorted, Layout::kSorted, range, threads,
                  seconds, trials);
  std::printf("  %-28s %12.3f\n", "unsorted/sorted", mops);
  report_row("unsorted/sorted", mops);

  // Three-way sweep: static sorted vs static unsorted vs adaptive, on the
  // two mixes where those static choices diverge. Scan-heavy adaptive
  // starts from the punished layout (unsorted) and must convert; the
  // write-heavy start exercises the contention gate (hold when writes are
  // uncontended, flip when retries say otherwise).
  struct SweepMix {
    const char* name;
    bool scan_heavy;
    Layout adaptive_start;
  };
  const SweepMix mixes[] = {
      {"scan_heavy", true, Layout::kUnsorted},
      {"write_heavy", false, Layout::kSorted},
  };
  std::printf("\n== Adaptive sweep (2^%llu keys, %u threads) ==\n",
              static_cast<unsigned long long>(sweep_bits), threads);
  std::printf("  %-16s %-18s %12s\n", "mix", "data layout", "Mops/s");
  for (const auto& m : mixes) {
    SweepCell cells[3] = {
        prepare_sweep_cell(sweep_cfg, Layout::kSorted, /*adaptive=*/false,
                           m.scan_heavy, sweep_range, threads, seconds),
        prepare_sweep_cell(sweep_cfg, Layout::kUnsorted, /*adaptive=*/false,
                           m.scan_heavy, sweep_range, threads, seconds),
        prepare_sweep_cell(sweep_cfg, m.adaptive_start, /*adaptive=*/true,
                           m.scan_heavy, sweep_range, threads, seconds),
    };
    for (unsigned i = 0; i < trials; ++i) {
      for (auto& c : cells) {
        c.sum += measure_sweep_trial(*c.map, m.scan_heavy, sweep_range,
                                     threads, seconds, 0xB12 + i);
      }
    }
    static const char* const kCellNames[3] = {"static_sorted",
                                              "static_unsorted", "adaptive"};
    static const char* const kCellLabels[3] = {"static sorted",
                                               "static unsorted", "adaptive"};
    for (int c = 0; c < 3; ++c) {
      const double mean = cells[c].sum / trials;
      std::printf("  %-16s %-18s %12.3f\n", m.name, kCellLabels[c], mean);
      report_row(std::string(m.name) + "/" + kCellNames[c], mean);
    }
  }
  if (!json_path.empty() && !report.write(json_path)) return 1;
  return 0;
}
