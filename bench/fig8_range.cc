// Figure 8: throughput of all-range workloads (mutating range queries) over
// 2^20 keys, for a small (2^12) and a large (2^17) query span, comparing the
// default skip vector against a tuned non-chunked configuration (the paper's
// "SL"), both serializable via two-phase locking over the data layer.
//
// Expected shape (§V-B): SV substantially ahead while parallelism exists;
// with the large span (1/8 of the key space per query) contention caps
// scaling for both.
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "benchutil/driver.h"
#include "benchutil/json_report.h"
#include "benchutil/options.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/sharded.h"
#include "core/skip_vector.h"

namespace {

using sv::benchutil::BenchReport;
using sv::benchutil::JsonValue;
using sv::benchutil::Options;

template <class Map>
double run_range_workload(Map& map, std::uint64_t key_range,
                          std::uint64_t span, unsigned threads,
                          double seconds) {
  std::atomic<bool> start{false}, stop{false};
  std::vector<std::uint64_t> ops(threads, 0);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      sv::Xoshiro256 rng(41 + t);
      while (!start.load(std::memory_order_acquire)) {
      }
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t lo = rng.next_below(key_range - span);
        map.range_transform(lo, lo + span - 1,
                            [](std::uint64_t, std::uint64_t v) {
                              return v + 1;  // mutating query
                            });
        ++local;
      }
      ops[t] = local;
    });
  }
  sv::WallTimer timer;
  start.store(true, std::memory_order_release);
  while (timer.elapsed_seconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  const double secs = timer.elapsed_seconds();
  for (auto& w : workers) w.join();
  std::uint64_t total = 0;
  for (auto o : ops) total += o;
  return static_cast<double>(total) / secs / 1e3;  // Kops/s
}

// Scan-vs-writer cell: `scanners` threads repeatedly scan a random span
// while `writers` threads churn the key space with the 0/50/50 point mix
// (no lookups, half inserts, half removes) — the workload where a
// retrying or lock-taking scan degrades. kLocked scans through the 2PL
// range path; kSnapshot pins a version per scan and walks it wait-free
// (docs/SNAPSHOTS.md). Returns completed scans in Kops/s.
enum class ScanKind { kLocked, kSnapshot };

template <class Map>
double run_scan_under_writers(Map& map, std::uint64_t key_range,
                              std::uint64_t span, unsigned scanners,
                              unsigned writers, double seconds,
                              ScanKind kind) {
  std::atomic<bool> start{false}, stop{false};
  std::atomic<std::uint64_t> sink{0};
  std::vector<std::uint64_t> ops(scanners, 0);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < scanners; ++t) {
    workers.emplace_back([&, t] {
      sv::Xoshiro256 rng(171 + t);
      while (!start.load(std::memory_order_acquire)) {
      }
      std::uint64_t local = 0, acc = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t lo = rng.next_below(key_range - span);
        const auto fn = [&acc](std::uint64_t, std::uint64_t v) { acc += v; };
        if (kind == ScanKind::kSnapshot) {
          const auto view = map.snapshot_at();
          map.range_for_each_at(view, lo, lo + span - 1, fn);
        } else {
          map.range_for_each(lo, lo + span - 1, fn);
        }
        ++local;
      }
      ops[t] = local;
      sink.fetch_add(acc, std::memory_order_relaxed);
    });
  }
  for (unsigned t = 0; t < writers; ++t) {
    workers.emplace_back([&, t] {
      sv::Xoshiro256 rng(977 + t);
      while (!start.load(std::memory_order_acquire)) {
      }
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = rng.next_below(key_range);
        if (rng.next_below(2) == 0) {
          map.insert(k, k);
        } else {
          map.remove(k);
        }
      }
    });
  }
  sv::WallTimer timer;
  start.store(true, std::memory_order_release);
  while (timer.elapsed_seconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  const double secs = timer.elapsed_seconds();
  for (auto& w : workers) w.join();
  std::uint64_t total = 0;
  for (auto o : ops) total += o;
  return static_cast<double>(total) / secs / 1e3;  // Kops/s
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  if (opt.help_requested()) {
    std::printf(
        "fig8_range: mutating range-query throughput, SV vs non-chunked SL\n"
        "  --range-bits=N   key range 2^N (default 20, as in the paper)\n"
        "  --spans=A,B      query span bits (default 12,17, as in the paper)\n"
        "  --threads=A,B,.. thread counts (default 1,2,4)\n"
        "  --seconds=F      seconds per cell (default 0.5)\n"
        "  --shards=N       also run a ShardedSkipVector column with N"
        " shards (extension; cross-shard ranges lose whole-range"
        " atomicity)\n"
        "  --writers=N      scan-under-write-mix section: N writer threads"
        " run the 0/50/50 point mix (as fig5) against each scanner count,"
        " comparing locked scans (SV-Lock) with wait-free versioned"
        " snapshot scans (SV-Snap); default = each cell's thread count,"
        " 0 disables the section\n"
        "  --json=PATH      also write sv-bench JSON ('-' = stdout)\n");
    return 0;
  }
  const auto bits = opt.u64("range-bits", 20);
  const std::uint64_t range = 1ULL << bits;
  const auto spans = opt.u64_list("spans", {12, 17});
  const auto threads_list = opt.u64_list("threads", {1, 2, 4});
  const double seconds = opt.f64("seconds", 0.5);

  const auto shards = static_cast<std::uint32_t>(opt.u64("shards", 0));
  // Sentinel ~0: default the writer count to each cell's scanner count.
  const auto writers_opt = opt.u64("writers", ~0ULL);
  const std::string json_path = opt.str("json", "");

  BenchReport report("fig8_range");
  report.config().set("range_bits", bits);
  report.config().set("seconds", seconds);
  report.config().set("shards", shards);
  // Range throughput is in Kops/s, not Mops/s; report it under metrics.
  const auto report_row = [&](const char* name, std::uint64_t span_bits,
                              unsigned threads, double kops) {
    JsonValue& row = report.add_result(name);
    JsonValue& params = row.set("params", JsonValue::object());
    params.set("span_bits", span_bits);
    params.set("threads", threads);
    row.set("metrics", JsonValue::object()).set("range_kops", kops);
  };

  using Map = sv::core::SkipVector<std::uint64_t, std::uint64_t>;
  const auto sv_cfg = sv::core::Config::for_elements(range / 2);
  const auto sl_cfg = sv::core::Config::sl_for_elements(range / 2);

  std::printf("== Figure 8: all-range mutating workloads, 2^%llu keys ==\n",
              static_cast<unsigned long long>(bits));
  for (const auto span_bits : spans) {
    const std::uint64_t span = 1ULL << span_bits;
    std::printf("\n-- query span 2^%llu --\n",
                static_cast<unsigned long long>(span_bits));
    std::printf("  %-10s %14s %14s", "threads", "SV (Kops/s)", "SL (Kops/s)");
    if (shards > 0) std::printf(" %14s", "Sharded");
    std::printf("\n");
    for (const auto t64 : threads_list) {
      const auto threads = static_cast<unsigned>(t64);
      double sv_kops, sl_kops, sh_kops = 0;
      {
        Map m(sv_cfg);
        sv::benchutil::prefill_half(m, range, threads);
        sv_kops = run_range_workload(m, range, span, threads, seconds);
      }
      {
        Map m(sl_cfg);
        sv::benchutil::prefill_half(m, range, threads);
        sl_kops = run_range_workload(m, range, span, threads, seconds);
      }
      if (shards > 0) {
        sv::core::ShardedSkipVector<std::uint64_t, std::uint64_t> m(
            range, shards, sv_cfg);
        sv::benchutil::prefill_half(m, range, threads);
        sh_kops = run_range_workload(m, range, span, threads, seconds);
      }
      std::printf("  %-10u %14.2f %14.2f", threads, sv_kops, sl_kops);
      if (shards > 0) std::printf(" %14.2f", sh_kops);
      std::printf("\n");
      report_row("SV", span_bits, threads, sv_kops);
      report_row("SL", span_bits, threads, sl_kops);
      if (shards > 0) report_row("Sharded", span_bits, threads, sh_kops);
    }
  }
  // Scan-under-write-mix section: how does read-side range throughput
  // hold up when writers churn the map? The locked 2PL scan (SV-Lock)
  // serializes against the write storm; the versioned snapshot scan
  // (SV-Snap, docs/SNAPSHOTS.md) never takes chunk locks and never
  // restarts, so its curve must not collapse — that is the property the
  // CI soft gate pins (ci/baselines/BENCH_fig8.json).
  if (writers_opt != 0) {
    const auto report_mix_row = [&](const char* name, std::uint64_t span_bits,
                                    unsigned threads, unsigned writers,
                                    double kops) {
      JsonValue& row = report.add_result(name);
      JsonValue& params = row.set("params", JsonValue::object());
      params.set("span_bits", span_bits);
      params.set("threads", threads);
      params.set("writers", writers);
      row.set("metrics", JsonValue::object()).set("range_kops", kops);
    };
    std::printf(
        "\n== Scans under the 0/50/50 write mix (insert/remove churn) ==\n");
    for (const auto span_bits : spans) {
      const std::uint64_t span = 1ULL << span_bits;
      std::printf("\n-- query span 2^%llu --\n",
                  static_cast<unsigned long long>(span_bits));
      std::printf("  %-10s %-10s %14s %14s\n", "scanners", "writers",
                  "SV-Lock", "SV-Snap");
      for (const auto t64 : threads_list) {
        const auto threads = static_cast<unsigned>(t64);
        const auto writers = writers_opt == ~0ULL
                                 ? threads
                                 : static_cast<unsigned>(writers_opt);
        double lock_kops, snap_kops;
        {
          Map m(sv_cfg);
          sv::benchutil::prefill_half(m, range, threads);
          lock_kops = run_scan_under_writers(m, range, span, threads, writers,
                                             seconds, ScanKind::kLocked);
        }
        {
          Map m(sv_cfg);
          sv::benchutil::prefill_half(m, range, threads);
          snap_kops = run_scan_under_writers(m, range, span, threads, writers,
                                             seconds, ScanKind::kSnapshot);
        }
        std::printf("  %-10u %-10u %14.2f %14.2f\n", threads, writers,
                    lock_kops, snap_kops);
        report_mix_row("SV-Lock", span_bits, threads, writers, lock_kops);
        report_mix_row("SV-Snap", span_bits, threads, writers, snap_kops);
      }
    }
  }
  if (!json_path.empty() && !report.write(json_path)) return 1;
  return 0;
}
