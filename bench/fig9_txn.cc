// Figure 9: throughput of the first-class transaction layer (sv::txn) --
// the workload the row-latch Fig. 6 engine cannot express, multi-key
// read-modify-write transactions over the map itself.
//
// Two sweeps:
//   - YCSB-T: the Fig. 6 transaction shape (16 accesses, Zipfian keys)
//     executed through sv::txn -- optimistic reads, buffered writes, one
//     commit-time NO_WAIT 2PL pass through the shared chunk lock manager.
//     Reported per (theta, threads) with the observed abort rate.
//   - TPC-C-lite: the new-order/payment mix (dbx/tpcc.h) at a fixed small
//     warehouse count so the district sequences stay hot. Conservation and
//     order-sequence invariants are re-checked after every cell; a
//     violation exits nonzero (a throughput number from a torn commit is
//     worse than no number).
//
// Expected shape: single-thread abort rates are 0 (NO_WAIT cannot
// conflict with itself); under threads the abort rate tracks the LENGTH
// of the ascending lock ladder more than key skew -- a TPC-C txn spans
// several table regions (table id in the key's top bits), and the
// no-wait lateral walk between them crosses more chunks at higher
// warehouse counts, so w=4 aborts MORE than w=1. At w=1 contention
// shows up as speculative-read spinning on the hot locked chunks
// (throughput drops without aborts) -- see docs/TRANSACTIONS.md.
#include <cstdio>
#include <thread>
#include <vector>

#include "benchutil/json_report.h"
#include "benchutil/options.h"
#include "common/timer.h"
#include "core/skip_vector.h"
#include "dbx/tpcc.h"
#include "dbx/txn.h"
#include "dbx/ycsb.h"

namespace {

using sv::benchutil::BenchReport;
using sv::benchutil::JsonValue;
using sv::benchutil::Options;
using Map = sv::core::SkipVector<std::uint64_t, std::uint64_t>;

double run_ycsb_cell(std::uint64_t rows, double theta, unsigned threads,
                     std::uint64_t txns_per_thread, double read_fraction,
                     sv::dbx::TxnStats* total_stats) {
  sv::dbx::YcsbConfig cfg;
  cfg.table_rows = rows;
  cfg.zipf_theta = theta;
  cfg.read_fraction = read_fraction;
  Map map(sv::core::Config::for_elements(rows));
  for (std::uint64_t k = 0; k < rows; ++k) map.insert(k, 0);

  std::vector<sv::dbx::TxnStats> stats(threads);
  std::vector<std::thread> workers;
  sv::WallTimer timer;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      sv::dbx::YcsbGenerator gen(cfg, 7777 + t);
      sv::dbx::TxnRequest req;
      for (std::uint64_t n = 0; n < txns_per_thread; ++n) {
        gen.next(&req);
        sv::dbx::run_txn_sv_to_completion(map, req, &stats[t]);
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs = timer.elapsed_seconds();
  sv::dbx::TxnStats sum;
  for (const auto& s : stats) sum += s;
  if (total_stats != nullptr) *total_stats += sum;
  return static_cast<double>(sum.commits) / secs / 1e6;  // Mtxn/s
}

double run_tpcc_cell(std::uint32_t warehouses, unsigned threads,
                     std::uint64_t txns_per_thread,
                     sv::dbx::tpcc::TpccStats* total_stats) {
  namespace tpcc = sv::dbx::tpcc;
  tpcc::TpccConfig cfg;
  cfg.warehouses = warehouses;
  Map map(sv::core::Config::for_elements(1 << 18));
  tpcc::TpccLite<Map> db(cfg, map);
  db.load();

  std::vector<tpcc::TpccStats> stats(threads);
  std::vector<std::thread> workers;
  sv::WallTimer timer;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      tpcc::TpccRandom rnd(cfg, 9999 + t);
      for (std::uint64_t n = 0; n < txns_per_thread; ++n) {
        db.run_one(rnd, &stats[t]);
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs = timer.elapsed_seconds();

  std::string err;
  if (!db.check_invariants(&err)) {
    std::fprintf(stderr, "TPC-C invariant violated (w=%u, threads=%u): %s\n",
                 warehouses, threads, err.c_str());
    std::exit(1);
  }
  tpcc::TpccStats sum;
  for (const auto& s : stats) sum += s;
  if (total_stats != nullptr) *total_stats += sum;
  return static_cast<double>(sum.commits) / secs / 1e6;  // Mtxn/s
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  if (opt.help_requested()) {
    std::printf(
        "fig9_txn: sv::txn transaction throughput (YCSB-T + TPC-C-lite)\n"
        "  --rows=N         YCSB table rows (default 2^18)\n"
        "  --txns=N         transactions per thread (default 10000)\n"
        "  --threads=A,B,.. thread counts (default 1,2,4)\n"
        "  --thetas=list    YCSB Zipf thetas x100 (default 10,60,90)\n"
        "  --read-frac=F    YCSB read fraction (default 0.9)\n"
        "  --warehouses=A,B TPC-C warehouse counts (default 1,4)\n"
        "  --json=PATH      also write sv-bench JSON ('-' = stdout)\n");
    return 0;
  }
  const std::uint64_t rows = opt.u64("rows", 1ULL << 18);
  const std::uint64_t txns = opt.u64("txns", 10000);
  const double read_fraction = opt.f64("read-frac", 0.9);
  const auto threads_list = opt.u64_list("threads", {1, 2, 4});
  const auto thetas = opt.u64_list("thetas", {10, 60, 90});
  const auto warehouses_list = opt.u64_list("warehouses", {1, 4});
  const std::string json_path = opt.str("json", "");

  BenchReport report("fig9_txn");
  report.config().set("rows", rows);
  report.config().set("txns_per_thread", txns);
  report.config().set("read_fraction", read_fraction);

  std::printf("== Figure 9: sv::txn transaction throughput (Mtxn/s) ==\n");
  std::printf("   rows=%llu, txns/thread=%llu\n",
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(txns));

  for (const auto theta100 : thetas) {
    const double theta = static_cast<double>(theta100) / 100.0;
    std::printf("\n-- YCSB-T, zipf theta = %.2f --\n", theta);
    std::printf("  %-10s %12s %12s\n", "threads", "SV-Txn", "abort%");
    for (const auto t64 : threads_list) {
      const auto threads = static_cast<unsigned>(t64);
      sv::dbx::TxnStats st;
      const double mtxn =
          run_ycsb_cell(rows, theta, threads, txns, read_fraction, &st);
      std::printf("  %-10u %12.4f %11.2f%%\n", threads, mtxn,
                  100.0 * st.abort_rate());
      JsonValue& row = report.add_result("YCSB-T");
      JsonValue& params = row.set("params", JsonValue::object());
      params.set("zipf_theta", theta);
      params.set("threads", threads);
      JsonValue& metrics = row.set("metrics", JsonValue::object());
      metrics.set("mtxn_per_s", mtxn);
      metrics.set("abort_rate", st.abort_rate());
    }
  }

  for (const auto w64 : warehouses_list) {
    const auto warehouses = static_cast<std::uint32_t>(w64);
    std::printf("\n-- TPC-C-lite, warehouses = %u --\n", warehouses);
    std::printf("  %-10s %12s %12s\n", "threads", "SV-Txn", "abort%");
    for (const auto t64 : threads_list) {
      const auto threads = static_cast<unsigned>(t64);
      sv::dbx::tpcc::TpccStats st;
      const double mtxn = run_tpcc_cell(warehouses, threads, txns, &st);
      std::printf("  %-10u %12.4f %11.2f%%\n", threads, mtxn,
                  100.0 * st.abort_rate());
      JsonValue& row = report.add_result("TPCC-lite");
      JsonValue& params = row.set("params", JsonValue::object());
      params.set("warehouses", warehouses);
      params.set("threads", threads);
      JsonValue& metrics = row.set("metrics", JsonValue::object());
      metrics.set("mtxn_per_s", mtxn);
      metrics.set("abort_rate", st.abort_rate());
      metrics.set("new_order_fraction",
                  st.commits > 0 ? static_cast<double>(st.new_orders) /
                                       static_cast<double>(st.commits)
                                 : 0.0);
    }
  }
  if (!json_path.empty() && !report.write(json_path)) return 1;
  return 0;
}
