// Tail-latency comparison: per-operation latency percentiles for SV-HP vs
// FSL under a concurrent 80/10/10 mix. Not a numbered paper figure; it
// substantiates the paper's conclusion that the skip vector's
// "predictability and low latency make it an appealing choice for
// high-performance systems" with p99/p99.9 data, and quantifies the cost
// of the blocking design (a preempted lock holder shows up in the tail).
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/fraser_skiplist.h"
#include "benchutil/driver.h"
#include "benchutil/histogram.h"
#include "benchutil/json_report.h"
#include "benchutil/options.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/skip_vector.h"

namespace {

using sv::benchutil::BenchReport;
using sv::benchutil::JsonValue;
using sv::benchutil::LatencyHistogram;
using sv::benchutil::Options;

template <class Map>
LatencyHistogram run(Map& map, std::uint64_t range, unsigned threads,
                     double seconds) {
  std::atomic<bool> start{false}, stop{false};
  std::vector<LatencyHistogram> hists(threads);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      sv::Xoshiro256 rng(77 + t);
      auto& h = hists[t];
      while (!start.load(std::memory_order_acquire)) {
      }
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = rng.next_below(range);
        const auto dice = rng.next_below(100);
        sv::WallTimer op;
        if (dice < 80) {
          volatile bool f = map.lookup(k).has_value();
          (void)f;
        } else if (dice < 90) {
          map.insert(k, k);
        } else {
          map.remove(k);
        }
        h.record(op.elapsed_ns());
      }
    });
  }
  sv::WallTimer timer;
  start.store(true, std::memory_order_release);
  while (timer.elapsed_seconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  LatencyHistogram total;
  for (const auto& h : hists) total.merge(h);
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  if (opt.help_requested()) {
    std::printf(
        "latency_percentiles: per-op latency tails, SV-HP vs FSL\n"
        "  --range-bits=N  key range 2^N (default 20)\n"
        "  --threads=N     worker threads (default 2)\n"
        "  --seconds=F     measurement seconds per structure (default 1)\n"
        "  --json=PATH     also write sv-bench JSON ('-' = stdout)\n");
    return 0;
  }
  const auto bits = opt.u64("range-bits", 20);
  const std::uint64_t range = 1ULL << bits;
  const auto threads = static_cast<unsigned>(opt.u64("threads", 2));
  const double seconds = opt.f64("seconds", 1.0);
  const std::string json_path = opt.str("json", "");

  BenchReport report("latency_percentiles");
  report.config().set("range_bits", bits);
  report.config().set("threads", threads);
  report.config().set("seconds", seconds);
  const auto report_row = [&](const char* name, const LatencyHistogram& h) {
    JsonValue& row = report.add_result(name);
    JsonValue& params = row.set("params", JsonValue::object());
    params.set("range_bits", bits);
    params.set("threads", threads);
    JsonValue& lat = row.set("latency_ns", JsonValue::object());
    lat.set("count", h.count());
    lat.set("mean", h.mean());
    lat.set("p50", h.percentile(50));
    lat.set("p90", h.percentile(90));
    lat.set("p99", h.percentile(99));
    lat.set("p999", h.percentile(99.9));
    lat.set("max", h.max());
  };

  std::printf("== Per-operation latency, 80/10/10, 2^%llu keys, %u threads"
              " ==\n",
              static_cast<unsigned long long>(bits), threads);
  {
    sv::core::SkipVector<std::uint64_t, std::uint64_t> m(
        sv::core::Config::for_elements(range / 2));
    sv::benchutil::prefill_half(m, range, threads);
    auto h = run(m, range, threads, seconds);
    std::printf("  SV-HP: %s\n", h.summary().c_str());
    report_row("SV-HP", h);
  }
  {
    sv::baselines::FraserSkipList<std::uint64_t, std::uint64_t> m;
    sv::benchutil::prefill_half(m, range, threads);
    auto h = run(m, range, threads, seconds);
    std::printf("  FSL:   %s\n", h.summary().c_str());
    report_row("FSL", h);
  }
  if (!json_path.empty() && !report.write(json_path)) return 1;
  return 0;
}
