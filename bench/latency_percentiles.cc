// Tail-latency comparison: per-operation latency percentiles for SV-HP vs
// FSL under a concurrent 80/10/10 mix. Not a numbered paper figure; it
// substantiates the paper's conclusion that the skip vector's
// "predictability and low latency make it an appealing choice for
// high-performance systems" with p99/p99.9 data, and quantifies the cost
// of the blocking design (a preempted lock holder shows up in the tail).
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/fraser_skiplist.h"
#include "benchutil/driver.h"
#include "benchutil/histogram.h"
#include "benchutil/options.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/skip_vector.h"

namespace {

using sv::benchutil::LatencyHistogram;
using sv::benchutil::Options;

template <class Map>
LatencyHistogram run(Map& map, std::uint64_t range, unsigned threads,
                     double seconds) {
  std::atomic<bool> start{false}, stop{false};
  std::vector<LatencyHistogram> hists(threads);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      sv::Xoshiro256 rng(77 + t);
      auto& h = hists[t];
      while (!start.load(std::memory_order_acquire)) {
      }
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = rng.next_below(range);
        const auto dice = rng.next_below(100);
        sv::WallTimer op;
        if (dice < 80) {
          volatile bool f = map.lookup(k).has_value();
          (void)f;
        } else if (dice < 90) {
          map.insert(k, k);
        } else {
          map.remove(k);
        }
        h.record(op.elapsed_ns());
      }
    });
  }
  sv::WallTimer timer;
  start.store(true, std::memory_order_release);
  while (timer.elapsed_seconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  LatencyHistogram total;
  for (const auto& h : hists) total.merge(h);
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  if (opt.help_requested()) {
    std::printf(
        "latency_percentiles: per-op latency tails, SV-HP vs FSL\n"
        "  --range-bits=N  key range 2^N (default 20)\n"
        "  --threads=N     worker threads (default 2)\n"
        "  --seconds=F     measurement seconds per structure (default 1)\n");
    return 0;
  }
  const auto bits = opt.u64("range-bits", 20);
  const std::uint64_t range = 1ULL << bits;
  const auto threads = static_cast<unsigned>(opt.u64("threads", 2));
  const double seconds = opt.f64("seconds", 1.0);

  std::printf("== Per-operation latency, 80/10/10, 2^%llu keys, %u threads"
              " ==\n",
              static_cast<unsigned long long>(bits), threads);
  {
    sv::core::SkipVector<std::uint64_t, std::uint64_t> m(
        sv::core::Config::for_elements(range / 2));
    sv::benchutil::prefill_half(m, range, threads);
    auto h = run(m, range, threads, seconds);
    std::printf("  SV-HP: %s\n", h.summary().c_str());
  }
  {
    sv::baselines::FraserSkipList<std::uint64_t, std::uint64_t> m;
    sv::benchutil::prefill_half(m, range, threads);
    auto h = run(m, range, threads, seconds);
    std::printf("  FSL:   %s\n", h.summary().c_str());
  }
  return 0;
}
