// Microbenchmarks (google-benchmark) for the substrate primitives: sequence
// lock transitions, chunk operations at various sizes and layouts, hazard
// pointer publish cost, and single-threaded skip vector point operations.
// Not a paper figure; used to sanity-check the constant factors the paper's
// arguments rest on (e.g., O(1) unsorted insert, O(log T) sorted lookup).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "alloc/allocator.h"
#include "alloc/pool_allocator.h"
#include "benchutil/json_report.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/skip_vector.h"
#include "reclaim/hazard_pointers.h"
#include "sync/sequence_lock.h"
#include "vectormap/vector_map.h"

namespace {

using sv::Xoshiro256;
using sv::sync::SequenceLock;
using sv::vectormap::Layout;
using sv::vectormap::VectorMap;

void BM_SeqlockReadValidate(benchmark::State& state) {
  SequenceLock l;
  for (auto _ : state) {
    auto w = l.read_begin();
    benchmark::DoNotOptimize(w);
    benchmark::DoNotOptimize(l.validate(w));
  }
}
BENCHMARK(BM_SeqlockReadValidate);

void BM_SeqlockWriteCycle(benchmark::State& state) {
  SequenceLock l;
  for (auto _ : state) {
    auto w = l.read_begin();
    if (l.try_upgrade(w)) l.release();
  }
}
BENCHMARK(BM_SeqlockWriteCycle);

void BM_SeqlockFreezeThaw(benchmark::State& state) {
  SequenceLock l;
  for (auto _ : state) {
    auto w = l.read_begin();
    if (l.try_freeze(w)) l.thaw();
  }
}
BENCHMARK(BM_SeqlockFreezeThaw);

void BM_HazardProtectDrop(benchmark::State& state) {
  sv::reclaim::HazardDomain d;
  auto ctx = d.thread_ctx();
  int x = 0;
  for (auto _ : state) {
    ctx.protect(0, &x);
    ctx.drop(0);
  }
}
BENCHMARK(BM_HazardProtectDrop);

template <Layout L>
void BM_ChunkFindLE(benchmark::State& state) {
  const auto cap = static_cast<std::uint32_t>(state.range(0));
  auto keys = std::make_unique<std::atomic<std::uint64_t>[]>(cap);
  auto vals = std::make_unique<std::atomic<std::uint64_t>[]>(cap);
  VectorMap<std::uint64_t, std::uint64_t> vm(keys.get(), vals.get(), cap, L);
  Xoshiro256 rng(1);
  for (std::uint32_t i = 0; i < cap; ++i) vm.insert(i * 3, i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.find_le(rng.next_below(cap * 3)));
  }
}
BENCHMARK(BM_ChunkFindLE<Layout::kSorted>)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(BM_ChunkFindLE<Layout::kUnsorted>)->Arg(8)->Arg(64)->Arg(512);

template <Layout L>
void BM_ChunkInsertErase(benchmark::State& state) {
  const auto cap = static_cast<std::uint32_t>(state.range(0));
  auto keys = std::make_unique<std::atomic<std::uint64_t>[]>(cap);
  auto vals = std::make_unique<std::atomic<std::uint64_t>[]>(cap);
  VectorMap<std::uint64_t, std::uint64_t> vm(keys.get(), vals.get(), cap, L);
  for (std::uint32_t i = 0; i + 1 < cap; ++i) vm.insert(i * 2, i);
  // Repeatedly insert/erase an interior key: worst case for sorted shifts.
  const std::uint64_t k = cap;  // odd -> absent, lands mid-chunk
  for (auto _ : state) {
    vm.insert(k + 1, 0);
    vm.erase(k + 1);
  }
}
BENCHMARK(BM_ChunkInsertErase<Layout::kSorted>)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(BM_ChunkInsertErase<Layout::kUnsorted>)->Arg(8)->Arg(64)->Arg(512);

// ---- Isolated chunk-search kernels (src/common/simd.h) ----------------------
//
// Raw uint64_t arrays, no VectorMap/seqlock overhead: measures exactly the
// kernel the dispatch layer selected at compile time vs the always-compiled
// scalar reference. The `Dispatch` rows carry the same names in every
// build, so comparing an SV_FORCE_SCALAR build's JSON against an
// SV_MARCH_NATIVE build's with tools/benchdiff.py yields the SIMD-vs-scalar
// kernel speedup on identical row keys (the ISSUE 4 acceptance number);
// the `ScalarRef` rows give the same comparison within a single binary.
// Sizes sweep the paper's target-size range (16..256; capacity = 2T).

enum class Kernel { kSortedLE, kSortedGE, kUnsortedLE, kUnsortedGE };

template <Kernel kKernel, bool kDispatch>
void BM_ChunkKernel(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  constexpr bool kSortedKernel =
      kKernel == Kernel::kSortedLE || kKernel == Kernel::kSortedGE;
  std::vector<std::uint64_t> keys;
  Xoshiro256 rng(17);
  // Unique keys, spaced 3 apart with a shuffled layout for the unsorted
  // kernels; sorted kernels get the ascending order the layout guarantees.
  for (std::uint32_t i = 0; i < n; ++i) keys.push_back(3 * (i + 1));
  if constexpr (!kSortedKernel) {
    for (std::uint32_t i = n; i > 1; --i) {
      std::swap(keys[i - 1], keys[rng.next_below(i)]);
    }
  }
  for (auto _ : state) {
    const std::uint64_t probe = rng.next_below(3 * n + 3);
    std::uint32_t r;
    if constexpr (kKernel == Kernel::kSortedLE) {
      r = kDispatch ? sv::simd::upper_bound(keys.data(), n, probe)
                    : sv::simd::scalar::upper_bound(keys.data(), n, probe);
    } else if constexpr (kKernel == Kernel::kSortedGE) {
      r = kDispatch ? sv::simd::lower_bound(keys.data(), n, probe)
                    : sv::simd::scalar::lower_bound(keys.data(), n, probe);
    } else if constexpr (kKernel == Kernel::kUnsortedLE) {
      r = kDispatch ? sv::simd::find_le(keys.data(), n, probe)
                    : sv::simd::scalar::find_le(keys.data(), n, probe);
    } else {
      r = kDispatch ? sv::simd::find_ge(keys.data(), n, probe)
                    : sv::simd::scalar::find_ge(keys.data(), n, probe);
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

#define SV_KERNEL_BENCH(kernel, name)                                \
  BENCHMARK(BM_ChunkKernel<Kernel::kernel, true>)                    \
      ->Name("BM_Kernel" name "_Dispatch")                           \
      ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);               \
  BENCHMARK(BM_ChunkKernel<Kernel::kernel, false>)                   \
      ->Name("BM_Kernel" name "_ScalarRef")                          \
      ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
SV_KERNEL_BENCH(kSortedLE, "SortedFindLE");
SV_KERNEL_BENCH(kSortedGE, "SortedFindGE");
SV_KERNEL_BENCH(kUnsortedLE, "UnsortedFindLE");
SV_KERNEL_BENCH(kUnsortedGE, "UnsortedFindGE");
#undef SV_KERNEL_BENCH

void BM_SkipVectorLookupHit(benchmark::State& state) {
  const std::uint64_t n = 1ULL << static_cast<std::uint64_t>(state.range(0));
  sv::core::SkipVectorSeq<std::uint64_t, std::uint64_t> m(
      sv::core::Config::for_elements(n));
  for (std::uint64_t k = 0; k < n; ++k) m.insert(k, k);
  Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.lookup(rng.next_below(n)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipVectorLookupHit)->Arg(10)->Arg(14)->Arg(18);

void BM_SkipVectorInsertRemove(benchmark::State& state) {
  const std::uint64_t n = 1ULL << static_cast<std::uint64_t>(state.range(0));
  sv::core::SkipVectorSeq<std::uint64_t, std::uint64_t> m(
      sv::core::Config::for_elements(n));
  for (std::uint64_t k = 0; k < n; k += 2) m.insert(k, k);
  Xoshiro256 rng(3);
  for (auto _ : state) {
    const std::uint64_t k = rng.next_below(n) | 1;  // odd: absent initially
    m.insert(k, k);
    m.remove(k);
  }
  state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_SkipVectorInsertRemove)->Arg(10)->Arg(14)->Arg(18);

// ---- Node allocator churn (src/alloc/) --------------------------------------
//
// The isolated alloc/free path the map's split/merge machinery pays: keep a
// ring of live node-sized blocks per thread and randomly replace them, the
// steady-state recycling pattern of a 50/50 insert/remove mix. One shared
// allocator instance across threads, as in a real map, so the
// multi-threaded rows include the pool's cross-thread depot traffic vs
// the global heap's internal locking. Arg = block bytes: 320 ~ a T=16 data
// node, 1344 ~ a T=64 node (NodeLayout-rounded sizes).

template <class Alloc>
void BM_NodeAllocChurn(benchmark::State& state) {
  static Alloc alloc;  // shared across benchmark threads by design
  const auto bytes = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kLive = 128;
  std::vector<void*> ring(kLive);
  Xoshiro256 rng(static_cast<std::uint64_t>(state.thread_index()) + 1);
  for (auto& p : ring) p = alloc.allocate(bytes);
  for (auto _ : state) {
    const std::size_t i = rng.next_below(kLive);
    alloc.deallocate(ring[i], bytes);
    void* p = alloc.allocate(bytes);
    std::memset(p, 0, sv::kCacheLineSize);  // touch the header line, as node init does
    ring[i] = p;
    benchmark::DoNotOptimize(ring[i]);
  }
  for (void* p : ring) alloc.deallocate(p, bytes);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NodeAllocChurn<sv::alloc::MallocNodeAllocator>)
    ->Name("BM_NodeAllocChurn_Malloc")
    ->Arg(320)->Arg(1344)
    ->Threads(1)->Threads(4);
BENCHMARK(BM_NodeAllocChurn<sv::alloc::PoolNodeAllocator>)
    ->Name("BM_NodeAllocChurn_Pool")
    ->Arg(320)->Arg(1344)
    ->Threads(1)->Threads(4);

// Console output stays the default google-benchmark table; this reporter
// additionally collects every run so main() can emit sv-bench JSON rows.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    // Collect everything: the error/skipped field changed name across
    // google-benchmark versions, and these single-threaded micro benches
    // have no error paths worth filtering.
    collected_.insert(collected_.end(), runs.begin(), runs.end());
    ConsoleReporter::ReportRuns(runs);
  }
  const std::vector<Run>& collected() const { return collected_; }

 private:
  std::vector<Run> collected_;
};

}  // namespace

// google-benchmark owns the command line, so BENCHMARK_MAIN() is expanded by
// hand here with one extension: --json=PATH is peeled off before
// benchmark::Initialize sees (and would reject) it.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a.rfind("--json=", 0) == 0) {
      json_path = std::string(a.substr(7));
    } else {
      args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  if (!json_path.empty()) {
    using sv::benchutil::BenchReport;
    using sv::benchutil::JsonValue;
    BenchReport report("micro_primitives");
    for (const auto& r : reporter.collected()) {
      JsonValue& row = report.add_result(r.benchmark_name());
      row.set("params", JsonValue::object());
      JsonValue& metrics = row.set("metrics", JsonValue::object());
      metrics.set("real_time_ns", r.GetAdjustedRealTime());
      metrics.set("cpu_time_ns", r.GetAdjustedCPUTime());
      metrics.set("iterations",
                  static_cast<std::uint64_t>(r.iterations));
      const auto items = r.counters.find("items_per_second");
      if (items != r.counters.end()) {
        metrics.set("items_per_second",
                    static_cast<double>(items->second.value));
      }
    }
    if (!report.write(json_path)) return 1;
  }
  benchmark::Shutdown();
  return 0;
}
