// Shared sweep driver for Figures 4 and 5: concurrent op-mix throughput of
// SV-HP / SV-Leak / USL-HP / USL-Leak / FSL across key ranges and thread
// counts, with half-range prefill -- the paper's §V-A methodology.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/fraser_skiplist.h"
#include "baselines/lazy_skiplist.h"
#include "benchutil/driver.h"
#include "benchutil/json_report.h"
#include "benchutil/options.h"
#include "core/skip_vector.h"
#include "stats/stats.h"

namespace svbench {

using sv::benchutil::BenchReport;
using sv::benchutil::JsonValue;
using sv::benchutil::MixSpec;
using sv::benchutil::Options;

struct SweepConfig {
  std::vector<std::uint64_t> range_bits;
  std::vector<std::uint64_t> threads;
  double seconds;
  unsigned trials;
  bool include_usl_hp;
  bool include_tuned;  // the paper's SV-HP-Tune (Fig. 4a):
                       // T_D=64, mergeThreshold=1.0, 4 layers
  bool include_lazy;   // extension: lock-based lazy skip list column
  bool include_pool;   // extension: SV-HP on the slab pool allocator
  bool include_hash;   // extension: SV-HP with the hash sidecar
                       // (docs/HASH_INDEX.md)
  double zipf_theta;   // 0 = uniform (paper); >0 = skewed extension
};

inline SweepConfig sweep_from_options(const Options& opt) {
  SweepConfig s;
  // Paper: 2^20 / 2^24 / 2^28 / 2^31. Laptop defaults stay cache-relevant
  // but tractable; scale with --range-bits=20,24,28,31.
  s.range_bits = opt.u64_list("range-bits", {16, 20});
  s.threads = opt.u64_list("threads", {1, 2, 4});
  s.seconds = opt.f64("seconds", 0.5);
  s.trials = static_cast<unsigned>(opt.u64("trials", 1));
  s.include_usl_hp = !opt.flag("no-usl-hp");
  s.include_tuned = opt.flag("tuned");
  s.include_lazy = opt.flag("lazy");
  s.include_pool = opt.flag("pool");
  s.include_hash = opt.flag("hash");
  s.zipf_theta = opt.f64("zipf", 0.0);
  return s;
}

inline void print_sweep_help(const char* figure, const char* mix) {
  std::printf(
      "%s: concurrent %s throughput sweep (SV vs USL vs FSL)\n"
      "  --range-bits=A,B,..  key ranges as powers of two (default 16,20)\n"
      "  --threads=A,B,..     thread counts (default 1,2,4)\n"
      "  --seconds=F          measured seconds per cell (default 0.5)\n"
      "  --trials=N           trials per cell, averaged (default 1)\n"
      "  --no-usl-hp          skip the USL-HP variant\n"
      "  --tuned              add the paper's SV-HP-Tune configuration\n"
      "  --lazy               add a lock-based lazy skip list column\n"
      "  --pool               add SV-HP on the slab pool allocator\n"
      "  --hash               add SV-HP with the hash sidecar point index\n"
      "  --zipf=F             Zipfian key skew theta (default 0 = uniform)\n"
      "  --json=PATH          also write sv-bench JSON ('-' = stdout)\n",
      figure, mix);
}

// Record the sweep parameters in the report's config section.
inline void fill_sweep_config(BenchReport& report, const MixSpec& mix,
                              const SweepConfig& cfg) {
  JsonValue& c = report.config();
  c.set("mix", mix.name());
  JsonValue rb = JsonValue::array();
  for (const auto b : cfg.range_bits) rb.push(b);
  c.set("range_bits", std::move(rb));
  JsonValue th = JsonValue::array();
  for (const auto t : cfg.threads) th.push(t);
  c.set("threads", std::move(th));
  c.set("seconds", cfg.seconds);
  c.set("trials", cfg.trials);
  c.set("zipf_theta", cfg.zipf_theta);
}

// Instrumented maps expose stats_registry(); others report empty stats.
template <class Map>
sv::stats::Snapshot stats_of(const Map& m) {
  if constexpr (requires { m.stats_registry(); }) {
    return m.stats_registry().snapshot();
  } else {
    return {};
  }
}

struct CellResult {
  double mops = 0;
  std::vector<double> thread_mops;
  sv::stats::Snapshot stats;  // measured phase only (prefill excluded)
};

template <class MapMaker>
CellResult run_cell(MapMaker make, const MixSpec& mix, std::uint64_t range,
                    unsigned threads, double seconds, unsigned trials) {
  auto map = make();
  sv::benchutil::prefill_half(*map, range, threads);
  const auto base = stats_of(*map);
  auto r = sv::benchutil::run_mix_trials(*map, mix, range, threads, seconds,
                                         trials);
  return {r.mops(), std::move(r.thread_mops), stats_of(*map) - base};
}

// Append one sweep cell to the report (no-op when report is null).
inline void report_cell(BenchReport* report, const char* impl,
                        std::uint64_t range_bits, unsigned threads,
                        const CellResult& cell) {
  if (report == nullptr) return;
  JsonValue& row = report->add_result(impl);
  JsonValue& params = row.set("params", JsonValue::object());
  params.set("range_bits", range_bits);
  params.set("threads", threads);
  row.set("throughput_mops", cell.mops);
  JsonValue per_thread = JsonValue::array();
  for (const double m : cell.thread_mops) per_thread.push(m);
  row.set("thread_mops", std::move(per_thread));
  if (sv::stats::kEnabled) {
    row.set("stats", sv::benchutil::stats_json(cell.stats));
  }
}

inline void run_sweep(const char* title, MixSpec mix, const SweepConfig& cfg,
                      BenchReport* report = nullptr) {
  mix.zipf_theta = cfg.zipf_theta;
  using K = std::uint64_t;
  using V = std::uint64_t;
  namespace core = sv::core;

  std::printf("== %s ==\n", title);
  std::printf("   mix %s, prefill 50%%, %.2fs x %u trials per cell\n",
              mix.name().c_str(), cfg.seconds, cfg.trials);

  for (const auto bits : cfg.range_bits) {
    const std::uint64_t range = 1ULL << bits;
    const std::uint64_t expected = range / 2;
    std::printf("\n-- key range 2^%llu --\n",
                static_cast<unsigned long long>(bits));
    std::printf("  %-10s", "threads");
    std::printf(" %12s %12s", "SV-HP", "SV-Leak");
    if (cfg.include_hash) std::printf(" %12s", "SV-HP-Hash");
    if (cfg.include_pool) std::printf(" %12s", "SV-HP-Pool");
    if (cfg.include_tuned) std::printf(" %12s", "SV-HP-Tune");
    if (cfg.include_usl_hp) std::printf(" %12s", "USL-HP");
    std::printf(" %12s %12s", "USL-Leak", "FSL");
    if (cfg.include_lazy) std::printf(" %12s", "LazySL");
    std::printf("\n");

    for (const auto t64 : cfg.threads) {
      const auto threads = static_cast<unsigned>(t64);
      const auto sv_cfg = core::Config::for_elements(expected);
      const auto usl_cfg = core::Config::usl_for_elements(expected);

      const CellResult sv_hp = run_cell(
          [&] {
            return std::make_unique<core::SkipVector<K, V>>(sv_cfg);
          },
          mix, range, threads, cfg.seconds, cfg.trials);
      report_cell(report, "SV-HP", bits, threads, sv_hp);
      const CellResult sv_leak = run_cell(
          [&] {
            return std::make_unique<core::SkipVectorLeak<K, V>>(sv_cfg);
          },
          mix, range, threads, cfg.seconds, cfg.trials);
      report_cell(report, "SV-Leak", bits, threads, sv_leak);
      CellResult sv_hash;
      if (cfg.include_hash) {
        sv_hash = run_cell(
            [&] {
              return std::make_unique<core::SkipVectorHash<K, V>>(sv_cfg);
            },
            mix, range, threads, cfg.seconds, cfg.trials);
        report_cell(report, "SV-HP-Hash", bits, threads, sv_hash);
      }
      CellResult sv_pool;
      if (cfg.include_pool) {
        sv_pool = run_cell(
            [&] {
              return std::make_unique<core::SkipVectorPool<K, V>>(sv_cfg);
            },
            mix, range, threads, cfg.seconds, cfg.trials);
        report_cell(report, "SV-HP-Pool", bits, threads, sv_pool);
      }
      CellResult tuned;
      if (cfg.include_tuned) {
        core::Config tcfg = sv_cfg;
        tcfg.target_data_vector_size = 64;
        tcfg.merge_threshold_factor = 1.0;
        tcfg.layer_count = tcfg.layer_count > 4 ? 4 : tcfg.layer_count;
        tuned = run_cell(
            [&] {
              return std::make_unique<core::SkipVector<K, V>>(tcfg);
            },
            mix, range, threads, cfg.seconds, cfg.trials);
        report_cell(report, "SV-HP-Tune", bits, threads, tuned);
      }
      CellResult usl_hp;
      if (cfg.include_usl_hp) {
        usl_hp = run_cell(
            [&] {
              return std::make_unique<core::SkipVector<K, V>>(usl_cfg);
            },
            mix, range, threads, cfg.seconds, cfg.trials);
        report_cell(report, "USL-HP", bits, threads, usl_hp);
      }
      const CellResult usl_leak = run_cell(
          [&] {
            return std::make_unique<core::SkipVectorLeak<K, V>>(usl_cfg);
          },
          mix, range, threads, cfg.seconds, cfg.trials);
      report_cell(report, "USL-Leak", bits, threads, usl_leak);
      const CellResult fsl = run_cell(
          [&] {
            return std::make_unique<sv::baselines::FraserSkipList<K, V>>();
          },
          mix, range, threads, cfg.seconds, cfg.trials);
      report_cell(report, "FSL", bits, threads, fsl);
      CellResult lazy;
      if (cfg.include_lazy) {
        lazy = run_cell(
            [&] {
              return std::make_unique<sv::baselines::LazySkipList<K, V>>();
            },
            mix, range, threads, cfg.seconds, cfg.trials);
        report_cell(report, "LazySL", bits, threads, lazy);
      }

      std::printf("  %-10u %12.3f %12.3f", threads, sv_hp.mops, sv_leak.mops);
      if (cfg.include_hash) std::printf(" %12.3f", sv_hash.mops);
      if (cfg.include_pool) std::printf(" %12.3f", sv_pool.mops);
      if (cfg.include_tuned) std::printf(" %12.3f", tuned.mops);
      if (cfg.include_usl_hp) std::printf(" %12.3f", usl_hp.mops);
      std::printf(" %12.3f %12.3f", usl_leak.mops, fsl.mops);
      if (cfg.include_lazy) std::printf(" %12.3f", lazy.mops);
      std::printf("\n");
    }
  }
}

}  // namespace svbench
