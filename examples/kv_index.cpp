// Example: the skip vector as a database primary index.
//
// Runs the repository's DBx1000-style OLTP engine (src/dbx) end to end with
// a SkipVector index -- the configuration behind the paper's Fig. 6 and its
// stated future-work direction ("use of the skip vector as a database
// index"). Prints per-skew throughput and concurrency-control statistics.
//
// Build & run:  ./build/examples/kv_index
#include <cstdio>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "core/skip_vector.h"
#include "dbx/database.h"

int main() {
  using Index = sv::core::SkipVector<std::uint64_t, sv::dbx::Row*>;
  constexpr std::uint64_t kRows = 1 << 16;
  constexpr std::uint64_t kTxnsPerThread = 5'000;
  constexpr unsigned kThreads = 4;

  for (const double theta : {0.1, 0.6, 0.9}) {
    sv::dbx::YcsbConfig cfg;
    cfg.table_rows = kRows;
    cfg.zipf_theta = theta;
    cfg.read_fraction = 0.9;
    cfg.accesses_per_txn = 16;

    sv::dbx::Database<Index> db(cfg, sv::core::Config::for_elements(kRows));

    std::vector<sv::dbx::TxnStats> stats(kThreads);
    std::vector<std::thread> workers;
    sv::WallTimer timer;
    for (unsigned t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        sv::dbx::YcsbGenerator gen(cfg, 42 + t);
        db.run_worker(gen, kTxnsPerThread, &stats[t]);
      });
    }
    for (auto& w : workers) w.join();
    const double secs = timer.elapsed_seconds();

    sv::dbx::TxnStats total;
    for (const auto& s : stats) total += s;
    std::printf(
        "theta=%.1f: %llu txns in %.2fs (%.0f txn/s), %s\n", theta,
        static_cast<unsigned long long>(total.commits), secs,
        static_cast<double>(total.commits) / secs, total.to_string().c_str());

    // The index is a first-class map: ad-hoc analytics ride along. Count
    // rows in an arbitrary primary-key range, consistently.
    std::size_t in_range = db.index().range_for_each(
        kRows / 4, kRows / 2, [](std::uint64_t, sv::dbx::Row*) {});
    std::printf("  rows with pk in [%llu, %llu]: %zu\n",
                static_cast<unsigned long long>(kRows / 4),
                static_cast<unsigned long long>(kRows / 2), in_range);
  }
  return 0;
}
