// Example: a concurrent limit order book.
//
// An exchange keeps one ordered map per side of the book: price -> resting
// quantity. Order flow (inserts, cancels, fills) hits random price levels
// while market-data threads stream "depth snapshots" -- range queries over
// the best N price levels. This is exactly the ordered-traversal-plus-
// concurrent-mutation workload the paper's introduction motivates, and the
// linearizable range queries (§V-B) make the depth snapshots consistent:
// a snapshot never mixes the book state from before and after a fill.
//
// Build & run:  ./build/examples/order_book
#include <atomic>
#include <cstdio>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/skip_vector.h"

namespace {

using Book = sv::core::SkipVector<std::uint64_t, std::uint64_t>;  // price -> qty

constexpr std::uint64_t kMidPrice = 50'000;   // in ticks
constexpr std::uint64_t kPriceBand = 2'000;   // active band around mid
constexpr int kTraders = 3;
constexpr int kSnapshotThreads = 2;

void trader(Book& bids, Book& asks, int id, std::atomic<bool>& stop,
            std::atomic<std::uint64_t>& ops) {
  sv::Xoshiro256 rng(id + 1);
  std::uint64_t local = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const bool bid_side = rng.next_below(2) == 0;
    Book& side = bid_side ? bids : asks;
    const std::uint64_t off = rng.next_below(kPriceBand);
    const std::uint64_t price = bid_side ? kMidPrice - 1 - off
                                         : kMidPrice + 1 + off;
    switch (rng.next_below(3)) {
      case 0:  // new resting order
        side.insert(price, 100 + rng.next_below(900));
        break;
      case 1:  // cancel the level
        side.remove(price);
        break;
      default:  // partial fill: shrink the level in place
        side.range_transform(price, price, [&](std::uint64_t, std::uint64_t q) {
          return q > 10 ? q - 10 : q;
        });
    }
    ++local;
  }
  ops.fetch_add(local);
}

// Depth snapshot: total quantity and level count within a band of the mid.
void snapshotter(Book& bids, Book& asks, int id, std::atomic<bool>& stop,
                 std::atomic<std::uint64_t>& snaps) {
  sv::Xoshiro256 rng(1000 + id);
  std::uint64_t local = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const std::uint64_t depth = 64 + rng.next_below(512);
    std::uint64_t bid_qty = 0, ask_qty = 0, bid_levels = 0, ask_levels = 0;
    bids.range_for_each(kMidPrice - depth, kMidPrice - 1,
                        [&](std::uint64_t, std::uint64_t q) {
                          bid_qty += q;
                          ++bid_levels;
                        });
    asks.range_for_each(kMidPrice + 1, kMidPrice + depth,
                        [&](std::uint64_t, std::uint64_t q) {
                          ask_qty += q;
                          ++ask_levels;
                        });
    // A real feed would publish; we just keep the compiler honest.
    volatile std::uint64_t sink = bid_qty ^ ask_qty ^ bid_levels ^ ask_levels;
    (void)sink;
    ++local;
  }
  snaps.fetch_add(local);
}

}  // namespace

int main() {
  const auto cfg = sv::core::Config::for_elements(kPriceBand);
  Book bids(cfg), asks(cfg);

  // Seed the book.
  sv::Xoshiro256 rng(7);
  for (std::uint64_t i = 0; i < kPriceBand; i += 2) {
    bids.insert(kMidPrice - 1 - i, 100 + rng.next_below(900));
    asks.insert(kMidPrice + 1 + i, 100 + rng.next_below(900));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0}, snaps{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kTraders; ++i) {
    threads.emplace_back(trader, std::ref(bids), std::ref(asks), i,
                         std::ref(stop), std::ref(ops));
  }
  for (int i = 0; i < kSnapshotThreads; ++i) {
    threads.emplace_back(snapshotter, std::ref(bids), std::ref(asks), i,
                         std::ref(stop), std::ref(snaps));
  }
  std::this_thread::sleep_for(std::chrono::seconds(2));
  stop.store(true);
  for (auto& t : threads) t.join();

  std::string err;
  const bool bids_ok = bids.validate(&err);
  std::printf("order flow ops: %llu, depth snapshots: %llu\n",
              static_cast<unsigned long long>(ops.load()),
              static_cast<unsigned long long>(snaps.load()));
  std::printf("book integrity: bids %s, asks %s\n",
              bids_ok ? "ok" : err.c_str(),
              asks.validate(&err) ? "ok" : err.c_str());
  std::printf("resting levels: %zu bids / %zu asks\n", bids.size_approx(),
              asks.size_approx());
  return 0;
}
