// Quickstart: the SkipVectorMap public API in two minutes.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <cstdint>

#include "core/skip_vector.h"

int main() {
  // A concurrent ordered map with hazard-pointer reclamation (the paper's
  // SV-HP). Keys and values must be trivially copyable, lock-free types;
  // store anything bigger behind a pointer.
  using Map = sv::core::SkipVector<std::uint64_t, std::uint64_t>;

  // Size the layer count for the data you expect (or accept the default
  // general-purpose configuration: 6 layers, target chunk size 32).
  Map map(sv::core::Config::for_elements(1'000'000));

  // insert returns false if the key is already present (no overwrite).
  map.insert(3, 30);
  map.insert(1, 10);
  map.insert(4, 40);
  map.insert(1, 11);  // -> false, 1 stays mapped to 10

  // lookup returns std::optional<V>.
  if (auto v = map.lookup(1)) {
    std::printf("1 -> %llu\n", static_cast<unsigned long long>(*v));
  }

  // update overwrites in place; remove erases.
  map.update(4, 44);
  map.remove(3);

  // Linearizable range operations (two-phase locking over the data layer):
  map.insert(5, 50);
  map.insert(9, 90);
  std::printf("range [1, 9]:");
  map.range_for_each(1, 9, [](std::uint64_t k, std::uint64_t v) {
    std::printf(" %llu->%llu", static_cast<unsigned long long>(k),
                static_cast<unsigned long long>(v));
  });
  std::printf("\n");

  // Mutating range query: add 1 to every value in [1, 5].
  const std::size_t touched =
      map.range_transform(1, 5, [](std::uint64_t, std::uint64_t v) {
        return v + 1;
      });
  std::printf("bumped %zu values; 5 -> %llu\n", touched,
              static_cast<unsigned long long>(*map.lookup(5)));

  // Quiescent helpers: ordered iteration, structural stats, validation.
  map.for_each([](std::uint64_t k, std::uint64_t v) {
    std::printf("  %llu -> %llu\n", static_cast<unsigned long long>(k),
                static_cast<unsigned long long>(v));
  });
  auto stats = map.stats();
  std::printf("layers=%zu data-nodes=%zu approx-size=%zu bytes=%zu\n",
              stats.layers.size(), stats.layers[0].nodes, map.size_approx(),
              stats.bytes);
  std::string err;
  std::printf("validate: %s\n", map.validate(&err) ? "ok" : err.c_str());
  return 0;
}
