// Example: a deadline-driven task scheduler on the priority-queue adapter.
//
// Producers submit tasks with deadlines; a pool of workers always executes
// the earliest-deadline task (EDF scheduling). Skip lists are a standard
// substrate for concurrent priority queues (paper §I, refs [4][5]); the
// skip vector provides the same shape with chunked locality, and its
// exactly-once pop guarantee means no task is ever run twice or lost.
//
// Build & run:  ./build/examples/task_scheduler
#include <atomic>
#include <cstdio>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/adapters.h"

namespace {

struct Task {
  std::uint32_t producer;
  std::uint32_t sequence;
};

// Pack a deadline and a uniquifier into the 64-bit priority key so equal
// deadlines never collide (priorities are unique keys).
std::uint64_t make_key(std::uint64_t deadline_us, std::uint32_t uniq) {
  return (deadline_us << 20) | (uniq & 0xFFFFF);
}

std::uint64_t encode(Task t) {
  return (static_cast<std::uint64_t>(t.producer) << 32) | t.sequence;
}

}  // namespace

int main() {
  using Queue = sv::core::SkipVectorPriorityQueue<std::uint64_t, std::uint64_t>;
  Queue queue(sv::core::Config::for_elements(1 << 16));

  constexpr unsigned kProducers = 2;
  constexpr unsigned kWorkers = 3;
  constexpr std::uint32_t kTasksPerProducer = 50'000;

  std::atomic<bool> done_producing{false};
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> lateness_sum{0};
  std::atomic<std::uint64_t> submitted{0};

  std::vector<std::thread> threads;
  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      sv::Xoshiro256 rng(p + 1);
      for (std::uint32_t i = 0; i < kTasksPerProducer; ++i) {
        const std::uint64_t deadline = 1'000 + rng.next_below(1 << 20);
        const std::uint64_t key = make_key(deadline, (i << 1) | p);
        if (queue.push(key, encode({p, i}))) {
          submitted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (unsigned w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&] {
      std::uint64_t last_deadline = 0;
      for (;;) {
        auto task = queue.pop_min();
        if (!task) {
          if (done_producing.load()) return;
          std::this_thread::yield();
          continue;
        }
        const std::uint64_t deadline = task->first >> 20;
        // Per-worker deadlines are monotone except for races with late
        // submissions -- measure how often we ran "out of order".
        if (deadline < last_deadline) {
          lateness_sum.fetch_add(last_deadline - deadline,
                                 std::memory_order_relaxed);
        }
        last_deadline = deadline;
        executed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (unsigned p = 0; p < kProducers; ++p) threads[p].join();
  done_producing.store(true);
  for (unsigned w = 0; w < kWorkers; ++w) threads[kProducers + w].join();

  std::printf("submitted=%llu executed=%llu (every task exactly once: %s)\n",
              static_cast<unsigned long long>(submitted.load()),
              static_cast<unsigned long long>(executed.load()),
              submitted.load() == executed.load() ? "yes" : "NO");
  std::printf("out-of-order lateness accumulated: %llu us across workers\n",
              static_cast<unsigned long long>(lateness_sum.load()));
  std::printf("queue drained: %s\n",
              queue.size_approx() == 0 ? "yes" : "NO");
  return 0;
}
