// Example: concurrent time-series store with windowed analytics.
//
// Sensors append (timestamp -> reading) concurrently; an analytics thread
// computes rolling-window aggregates with linearizable range queries, and a
// retention thread deletes expired points. Ordered maps are the natural fit
// (hash maps cannot answer "last N seconds"), and the skip vector's chunked
// data layer makes the window scans sequential memory walks.
//
// Build & run:  ./build/examples/time_series
#include <atomic>
#include <cstdio>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/skip_vector.h"

namespace {

// Key: microsecond timestamp. Value: sensor reading (fixed-point).
using Series = sv::core::SkipVector<std::uint64_t, std::uint64_t>;

constexpr int kSensors = 3;
constexpr std::uint64_t kTickUs = 100;  // one reading per 100us per sensor

}  // namespace

int main() {
  Series series(sv::core::Config::for_elements(1 << 20));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> now_us{1'000'000};
  std::atomic<std::uint64_t> points{0}, windows{0}, purged{0};

  std::vector<std::thread> threads;
  // Sensor writers: each owns a phase offset so keys never collide.
  for (int s = 0; s < kSensors; ++s) {
    threads.emplace_back([&, s] {
      sv::Xoshiro256 rng(s + 1);
      std::uint64_t t = now_us.load() + static_cast<std::uint64_t>(s);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t reading = 1000 + rng.next_below(100);
        if (series.insert(t, reading)) {
          points.fetch_add(1, std::memory_order_relaxed);
        }
        t += kTickUs;
        now_us.store(std::max(now_us.load(), t));
      }
    });
  }
  // Analytics: rolling 10ms window average over the freshest data.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t hi = now_us.load();
      const std::uint64_t lo = hi > 10'000 ? hi - 10'000 : 0;
      std::uint64_t sum = 0, n = 0;
      series.range_for_each(lo, hi, [&](std::uint64_t, std::uint64_t v) {
        sum += v;
        ++n;
      });
      volatile double avg = n ? static_cast<double>(sum) / n : 0.0;
      (void)avg;
      windows.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Retention: drop everything older than 50ms.
  threads.emplace_back([&] {
    std::uint64_t cursor = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t horizon = now_us.load();
      const std::uint64_t cutoff = horizon > 50'000 ? horizon - 50'000 : 0;
      std::vector<std::uint64_t> victims;
      series.range_for_each(cursor, cutoff,
                            [&](std::uint64_t k, std::uint64_t) {
                              victims.push_back(k);
                            });
      for (auto k : victims) {
        if (series.remove(k)) purged.fetch_add(1, std::memory_order_relaxed);
      }
      cursor = cutoff;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  std::this_thread::sleep_for(std::chrono::seconds(2));
  stop.store(true);
  for (auto& t : threads) t.join();

  std::string err;
  std::printf("points written: %llu, windows computed: %llu, purged: %llu\n",
              static_cast<unsigned long long>(points.load()),
              static_cast<unsigned long long>(windows.load()),
              static_cast<unsigned long long>(purged.load()));
  std::printf("live points: %zu, structure: %s\n", series.size_approx(),
              series.validate(&err) ? "ok" : err.c_str());
  return 0;
}
