// Node-allocator policies: how the skip vector (and anything else built on
// chunked nodes) obtains and returns node memory. The map is templated on
// one of these, mirroring the Reclaimer policy axis: the allocator decides
// *where* node bytes live, the reclaimer decides *when* they may be reused.
//
// Policy concept:
//   struct NodeAllocator {
//     void* allocate(std::size_t bytes);              // cache-line aligned
//     void deallocate(void* p, std::size_t bytes);    // sized: same bytes
//     AllocatorStats stats() const;                   // aggregate snapshot
//     static constexpr bool kPooled;                  // pool vs passthrough
//   };
//
// Deallocation is *sized*: callers pass the byte count they allocated with
// (the map recomputes it from the node header via alloc::NodeLayout), which
// lets the pool find the size class without any per-block header or
// pointer->slab lookup on the free path.
//
// Two implementations:
//   * MallocNodeAllocator (here)  -- passthrough to the aligned global
//     operator new/delete; the pre-allocator behavior and the default, so
//     existing users compile and behave identically.
//   * PoolNodeAllocator (alloc/pool_allocator.h) -- Bonwick-style slab pool
//     with per-thread magazines.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

#include "common/hw.h"
#include "stats/stats.h"

namespace sv::alloc {

// Aggregate allocator counters. `live_bytes` is exact when the allocator is
// quiescent (sums of per-thread deltas; transient snapshots may be mid-op).
// For MallocNodeAllocator every allocation is a "miss" (nothing is pooled).
struct AllocatorStats {
  std::uint64_t pool_hits = 0;       // allocations served by a magazine
  std::uint64_t pool_misses = 0;     // allocations that went to depot/slab/heap
  std::uint64_t slab_allocs = 0;     // slabs carved from arenas
  std::uint64_t magazine_frees = 0;  // frees absorbed by a magazine
  std::uint64_t depot_flushes = 0;   // magazine overflows flushed to the depot
  std::uint64_t oversize_allocs = 0; // beyond the largest size class
  std::uint64_t arena_bytes = 0;     // bytes reserved in arenas
  std::uint64_t live_bytes = 0;      // bytes currently handed out

  AllocatorStats& operator+=(const AllocatorStats& o) noexcept {
    pool_hits += o.pool_hits;
    pool_misses += o.pool_misses;
    slab_allocs += o.slab_allocs;
    magazine_frees += o.magazine_frees;
    depot_flushes += o.depot_flushes;
    oversize_allocs += o.oversize_allocs;
    arena_bytes += o.arena_bytes;
    live_bytes += o.live_bytes;
    return *this;
  }
};

// sv::stats wiring shared by both allocators. kLiveBytes is a *net* gauge
// counted through monotonic per-thread blocks: allocation adds +bytes, free
// adds the two's-complement of bytes, so the aggregated (mod 2^64) sum is
// the live total even when a block allocated on one thread is freed on
// another. Phase deltas (Snapshot::operator-) clamp at zero when a phase
// shrinks the footprint; see docs/OBSERVABILITY.md.
inline void count_alloc_bytes(std::size_t bytes) noexcept {
  stats::count(stats::Counter::kLiveBytes, static_cast<std::uint64_t>(bytes));
}
inline void count_free_bytes(std::size_t bytes) noexcept {
  stats::count(stats::Counter::kLiveBytes,
               ~static_cast<std::uint64_t>(bytes) + 1);
}

// Passthrough to the aligned global heap: exactly the map's historical
// behavior, plus byte/count accounting cheap enough to leave on (two
// relaxed fetch_adds per node allocation -- node allocations are orders of
// magnitude rarer than map operations).
class MallocNodeAllocator {
 public:
  static constexpr bool kPooled = false;

  MallocNodeAllocator() = default;
  MallocNodeAllocator(const MallocNodeAllocator&) = delete;
  MallocNodeAllocator& operator=(const MallocNodeAllocator&) = delete;

  void* allocate(std::size_t bytes) {
    allocs_.fetch_add(1, std::memory_order_relaxed);
    allocated_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    stats::count(stats::Counter::kPoolMisses);
    count_alloc_bytes(bytes);
    return ::operator new(bytes, std::align_val_t{kCacheLineSize});
  }

  void deallocate(void* p, std::size_t bytes) {
    freed_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    count_free_bytes(bytes);
    ::operator delete(p, std::align_val_t{kCacheLineSize});
  }

  AllocatorStats stats() const {
    AllocatorStats s;
    s.pool_misses = allocs_.load(std::memory_order_relaxed);
    const std::uint64_t a = allocated_bytes_.load(std::memory_order_relaxed);
    const std::uint64_t f = freed_bytes_.load(std::memory_order_relaxed);
    s.live_bytes = a - f;  // mod 2^64; exact at quiescence
    return s;
  }

 private:
  alignas(kCacheLineSize) std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> allocated_bytes_{0};
  std::atomic<std::uint64_t> freed_bytes_{0};
};

}  // namespace sv::alloc
