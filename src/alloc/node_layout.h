// NodeLayout: the single source of truth for the in-memory shape of a skip
// vector node. A node is one contiguous allocation
//
//   [ NodeT header | keys: atomic<K>[cap] | vals: atomic<P>[cap] ]
//
// rounded up to a whole number of cache lines. The same arithmetic is
// consumed by three parties that previously each did their own (and could
// drift): the map's alloc_node (placement of the key/value arrays), its
// node_bytes accounting (Stats::bytes, sized deallocation on the reclaim
// path), and the allocator layer (size-class selection in
// sv::alloc::PoolNodeAllocator). Everything is constexpr so
// tests/alloc_test.cc pins the invariants with static_asserts.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/hw.h"

namespace sv::alloc {

constexpr std::size_t align_up(std::size_t x, std::size_t a) {
  return (x + a - 1) / a * a;
}

struct NodeLayout {
  std::size_t keys_off = 0;  // byte offset of the key array
  std::size_t vals_off = 0;  // byte offset of the value array
  std::size_t bytes = 0;     // total allocation size (cache-line multiple)

  // Layout for a node with `header_bytes` of header followed by `cap` keys
  // and `cap` values of the given sizes/alignments. The header is assumed
  // to need no more than cache-line alignment (allocations are cache-line
  // aligned; static_asserts in the map check the node types agree).
  static constexpr NodeLayout make(std::size_t header_bytes,
                                   std::size_t key_size,
                                   std::size_t key_align,
                                   std::size_t val_size,
                                   std::size_t val_align,
                                   std::uint32_t cap) {
    NodeLayout l;
    l.keys_off = align_up(header_bytes, key_align);
    l.vals_off = align_up(l.keys_off + cap * key_size, val_align);
    l.bytes = align_up(l.vals_off + cap * val_size, kCacheLineSize);
    return l;
  }

  // Convenience: layout for header type Node with atomic element types
  // KeyAtom/ValAtom (pass the std::atomic<...> types themselves).
  template <class Node, class KeyAtom, class ValAtom>
  static constexpr NodeLayout of(std::uint32_t cap) {
    return make(sizeof(Node), sizeof(KeyAtom), alignof(KeyAtom),
                sizeof(ValAtom), alignof(ValAtom), cap);
  }
};

}  // namespace sv::alloc
