// PoolNodeAllocator: a Bonwick-style slab allocator specialized for skip
// vector nodes (see docs/MEMORY.md for the full design discussion).
//
// Why: every chunk the map churns through (splits, merges, tower builds)
// round-trips the general-purpose allocator, which costs a global malloc
// on the mutation path and scatters successor chunks across the heap --
// exactly the locality the structure exists to exploit. The pool instead:
//
//   * reserves large cache-line-aligned ARENAS (2 MiB, optionally
//     madvise(MADV_HUGEPAGE)d so the kernel can back them with THPs),
//   * carves per-size-class SLABS of node blocks from the arenas, so nodes
//     of the same shape are densely co-located,
//   * serves allocation/free through per-thread MAGAZINES (a small array of
//     cached blocks per class) -- the common-case free is a thread-local
//     array store, no atomics, no locks,
//   * overflows/refills magazines against a mutex-guarded central DEPOT in
//     batches of half a magazine, keeping the lock off the common path,
//   * releases every arena wholesale at destruction, so a map whose
//     Reclaimer never frees (LeakReclaimer) still returns all node memory
//     when it dies.
//
// Blocks are never returned to the OS before destruction: the pool's
// footprint is the high-water mark of each size class (the standard slab
// trade of memory for determinism). Sizes beyond the largest class fall
// back to the aligned global heap; those blocks are tracked in a registry
// so destruction still returns every byte.
//
// Thread exit: magazines live in allocator-owned ThreadCache records (TLS
// holds only a serial-keyed pointer, the same pattern as stats::Registry),
// so blocks cached by an exited thread are not lost -- they are simply
// unavailable until the allocator dies. There is deliberately no exit-time
// flush: it would have to race allocator destruction.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <unordered_set>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "alloc/allocator.h"
#include "common/hw.h"
#include "stats/stats.h"

namespace sv::alloc {

struct PoolOptions {
  // Arena reservation size. 2 MiB matches the x86-64 huge page size so a
  // single madvise can back a whole arena with one THP.
  std::size_t arena_bytes = 2u << 20;
  // Target bytes per slab carve (rounded to whole blocks, >= 1 block).
  std::size_t slab_bytes = 16u << 10;
  // Blocks cached per (thread, size class); overflow flushes half.
  std::uint32_t magazine_capacity = 32;
  // madvise(MADV_HUGEPAGE) each arena (Linux only; no-op elsewhere). Off by
  // default: THP backing changes fault timing, which benchmarks should opt
  // into knowingly (docs/TUNING.md).
  bool huge_pages = false;
};

class PoolNodeAllocator {
 public:
  static constexpr bool kPooled = true;

  // Size classes: cache-line granules up to 4 KiB (covers every default
  // node shape), then power-of-two classes up to 256 KiB for jumbo chunks
  // (e.g. oversized split nodes). Beyond that: oversize heap fallback.
  static constexpr std::size_t kGranule = kCacheLineSize;
  static constexpr std::size_t kLinearMax = 4096;
  static constexpr std::size_t kLinearClasses = kLinearMax / kGranule;  // 64
  static constexpr std::size_t kPow2Classes = 6;  // 8K 16K 32K 64K 128K 256K
  static constexpr std::size_t kClassCount = kLinearClasses + kPow2Classes;
  static constexpr std::size_t kMaxClassBytes = 256u << 10;

  explicit PoolNodeAllocator(PoolOptions opt = {}) : opt_(opt) {
    if (opt_.magazine_capacity < 2) opt_.magazine_capacity = 2;
    if (opt_.arena_bytes < kMaxClassBytes) opt_.arena_bytes = kMaxClassBytes;
    if (opt_.slab_bytes < kGranule) opt_.slab_bytes = kGranule;
  }

  PoolNodeAllocator(const PoolNodeAllocator&) = delete;
  PoolNodeAllocator& operator=(const PoolNodeAllocator&) = delete;

  ~PoolNodeAllocator() {
    // Wholesale release: every block ever carved lives inside an arena, so
    // freeing the arenas returns all pooled bytes regardless of what the
    // map's Reclaimer did or didn't hand back. Oversize blocks are tracked
    // individually.
    for (void* p : oversize_live_) {
      ::operator delete(p, std::align_val_t{kCacheLineSize});
    }
    for (const Arena& a : arenas_) {
      ::operator delete(a.base, std::align_val_t{kCacheLineSize});
    }
    ThreadCache* tc = caches_.load(std::memory_order_acquire);
    while (tc != nullptr) {
      ThreadCache* next = tc->next;
      delete tc;
      tc = next;
    }
  }

  void* allocate(std::size_t bytes) {
    const int cls = class_of(bytes);
    if (cls < 0) return allocate_oversize(bytes);
    ThreadCache& tc = thread_cache();
    Magazine& mag = tc.magazine(cls);
    tc.counters.alloc_bytes.fetch_add(class_bytes(cls),
                                      std::memory_order_relaxed);
    count_alloc_bytes(class_bytes(cls));
    if (mag.count > 0) {
      tc.counters.pool_hits.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kPoolHits);
      return mag.items[--mag.count];
    }
    refill(cls, mag);
    tc.counters.pool_misses.fetch_add(1, std::memory_order_relaxed);
    stats::count(stats::Counter::kPoolMisses);
    return mag.items[--mag.count];
  }

  void deallocate(void* p, std::size_t bytes) {
    const int cls = class_of(bytes);
    if (cls < 0) {
      deallocate_oversize(p, bytes);
      return;
    }
    ThreadCache& tc = thread_cache();
    Magazine& mag = tc.magazine(cls);
    tc.counters.free_bytes.fetch_add(class_bytes(cls),
                                     std::memory_order_relaxed);
    count_free_bytes(class_bytes(cls));
    // A thread may free blocks of a class it never allocated from
    // (alloc-here/free-there); size its magazine on first touch.
    if (mag.items.empty()) mag.items.resize(opt_.magazine_capacity, nullptr);
    if (mag.count == mag.items.size()) {
      flush_half(cls, mag);
      tc.counters.depot_flushes.fetch_add(1, std::memory_order_relaxed);
    }
    mag.items[mag.count++] = p;
    tc.counters.magazine_frees.fetch_add(1, std::memory_order_relaxed);
  }

  AllocatorStats stats() const {
    AllocatorStats s;
    std::uint64_t alloc_bytes = 0, free_bytes = 0;
    for (const ThreadCache* tc = caches_.load(std::memory_order_acquire);
         tc != nullptr; tc = tc->next) {
      const auto& c = tc->counters;
      s.pool_hits += c.pool_hits.load(std::memory_order_relaxed);
      s.pool_misses += c.pool_misses.load(std::memory_order_relaxed);
      s.magazine_frees += c.magazine_frees.load(std::memory_order_relaxed);
      s.depot_flushes += c.depot_flushes.load(std::memory_order_relaxed);
      alloc_bytes += c.alloc_bytes.load(std::memory_order_relaxed);
      free_bytes += c.free_bytes.load(std::memory_order_relaxed);
    }
    s.slab_allocs = slab_allocs_.load(std::memory_order_relaxed);
    s.oversize_allocs = oversize_allocs_.load(std::memory_order_relaxed);
    s.arena_bytes = arena_bytes_.load(std::memory_order_relaxed);
    alloc_bytes += oversize_alloc_bytes_.load(std::memory_order_relaxed);
    free_bytes += oversize_free_bytes_.load(std::memory_order_relaxed);
    s.live_bytes = alloc_bytes - free_bytes;  // mod 2^64; exact at quiescence
    return s;
  }

  const PoolOptions& options() const noexcept { return opt_; }

  // ---- Size classes (exposed for tests) -------------------------------------

  // Class index for an allocation size, or -1 for the oversize fallback.
  static constexpr int class_of(std::size_t bytes) noexcept {
    if (bytes == 0) bytes = 1;
    if (bytes <= kLinearMax) {
      return static_cast<int>((bytes + kGranule - 1) / kGranule) - 1;
    }
    if (bytes > kMaxClassBytes) return -1;
    std::size_t cb = kLinearMax * 2;  // 8 KiB, first pow2 class
    int cls = static_cast<int>(kLinearClasses);
    while (cb < bytes) {
      cb *= 2;
      ++cls;
    }
    return cls;
  }

  // Block size of a class (>= every size mapping to it).
  static constexpr std::size_t class_bytes(int cls) noexcept {
    if (cls < static_cast<int>(kLinearClasses)) {
      return (static_cast<std::size_t>(cls) + 1) * kGranule;
    }
    return (kLinearMax * 2) << (cls - static_cast<int>(kLinearClasses));
  }

 private:
  // ---- Per-thread magazines --------------------------------------------------

  struct Magazine {
    std::uint32_t cls = 0;
    std::uint32_t count = 0;
    std::vector<void*> items;  // fixed capacity after construction
  };

  struct alignas(kCacheLineSize) Counters {
    std::atomic<std::uint64_t> pool_hits{0};
    std::atomic<std::uint64_t> pool_misses{0};
    std::atomic<std::uint64_t> magazine_frees{0};
    std::atomic<std::uint64_t> depot_flushes{0};
    std::atomic<std::uint64_t> alloc_bytes{0};
    std::atomic<std::uint64_t> free_bytes{0};
  };

  struct ThreadCache {
    // A map instance touches ~2 classes (data node, index node), so a tiny
    // linear-scanned vector beats a kClassCount-wide array per thread.
    std::vector<Magazine> mags;
    Counters counters;
    ThreadCache* next = nullptr;  // intrusive list, append-only

    Magazine& magazine(int cls) {
      for (Magazine& m : mags) {
        if (m.cls == static_cast<std::uint32_t>(cls)) return m;
      }
      mags.emplace_back();
      Magazine& m = mags.back();
      m.cls = static_cast<std::uint32_t>(cls);
      return m;
    }
  };

  ThreadCache& thread_cache() {
    struct Entry {
      std::uint64_t serial;
      ThreadCache* cache;
    };
    thread_local std::vector<Entry> tls;
    for (const Entry& e : tls) {
      if (e.serial == serial_) return *e.cache;
    }
    auto* tc = new ThreadCache();
    ThreadCache* old_head = caches_.load(std::memory_order_relaxed);
    do {
      tc->next = old_head;
    } while (!caches_.compare_exchange_weak(old_head, tc,
                                            std::memory_order_release,
                                            std::memory_order_relaxed));
    tls.push_back({serial_, tc});
    return *tc;
  }

  // ---- Central depot + arenas (mutex-guarded; off the common path) -----------

  struct Arena {
    char* base = nullptr;
    std::size_t used = 0;
    std::size_t size = 0;
  };

  void refill(int cls, Magazine& mag) {
    if (mag.items.empty()) mag.items.resize(opt_.magazine_capacity, nullptr);
    const std::size_t want = mag.items.size() / 2;
    std::lock_guard<std::mutex> lk(mu_);
    auto& depot = depots_[static_cast<std::size_t>(cls)];
    if (depot.size() < want) carve_slab(cls, depot);
    std::size_t take = depot.size() < want ? depot.size() : want;
    while (take-- > 0) {
      mag.items[mag.count++] = depot.back();
      depot.pop_back();
    }
  }

  void flush_half(int cls, Magazine& mag) {
    const std::size_t keep = mag.items.size() / 2;
    std::lock_guard<std::mutex> lk(mu_);
    auto& depot = depots_[static_cast<std::size_t>(cls)];
    while (mag.count > keep) {
      depot.push_back(mag.items[--mag.count]);
    }
  }

  // Carve one slab of `cls` blocks from the current arena (growing the
  // arena list if needed) and push the blocks into `depot`. mu_ held.
  void carve_slab(int cls, std::vector<void*>& depot) {
    const std::size_t cb = class_bytes(cls);
    std::size_t blocks = opt_.slab_bytes / cb;
    if (blocks == 0) blocks = 1;
    if (arenas_.empty() || arenas_.back().size - arenas_.back().used < cb) {
      new_arena(blocks * cb);
    }
    Arena& a = arenas_.back();
    const std::size_t fit = (a.size - a.used) / cb;
    if (blocks > fit) blocks = fit;
    for (std::size_t i = 0; i < blocks; ++i) {
      depot.push_back(a.base + a.used);
      a.used += cb;
    }
    slab_allocs_.fetch_add(1, std::memory_order_relaxed);
    stats::count(stats::Counter::kSlabAllocs);
  }

  void new_arena(std::size_t min_bytes) {
    std::size_t size = opt_.arena_bytes;
    if (size < min_bytes) size = min_bytes;  // jumbo class: size the arena up
    Arena a;
    a.base = static_cast<char*>(
        ::operator new(size, std::align_val_t{kCacheLineSize}));
    a.size = size;
#if defined(__linux__)
    if (opt_.huge_pages) {
      // Advisory only: alignment of the interior pages is up to the kernel.
      (void)madvise(a.base, size, MADV_HUGEPAGE);
    }
#endif
    arenas_.push_back(a);
    arena_bytes_.fetch_add(size, std::memory_order_relaxed);
  }

  // ---- Oversize fallback ------------------------------------------------------

  void* allocate_oversize(std::size_t bytes) {
    void* p = ::operator new(bytes, std::align_val_t{kCacheLineSize});
    {
      std::lock_guard<std::mutex> lk(mu_);
      oversize_live_.insert(p);
    }
    oversize_allocs_.fetch_add(1, std::memory_order_relaxed);
    oversize_alloc_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    stats::count(stats::Counter::kPoolMisses);
    count_alloc_bytes(bytes);
    return p;
  }

  void deallocate_oversize(void* p, std::size_t bytes) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      oversize_live_.erase(p);
    }
    oversize_free_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    count_free_bytes(bytes);
    ::operator delete(p, std::align_val_t{kCacheLineSize});
  }

  static std::uint64_t next_serial() noexcept {
    static std::atomic<std::uint64_t> c{1};
    return c.fetch_add(1, std::memory_order_relaxed);
  }

  PoolOptions opt_;
  const std::uint64_t serial_ = next_serial();

  std::mutex mu_;  // depots_, arenas_, oversize_live_
  std::array<std::vector<void*>, kClassCount> depots_;
  std::vector<Arena> arenas_;
  std::unordered_set<void*> oversize_live_;

  std::atomic<ThreadCache*> caches_{nullptr};
  std::atomic<std::uint64_t> slab_allocs_{0};
  std::atomic<std::uint64_t> arena_bytes_{0};
  std::atomic<std::uint64_t> oversize_allocs_{0};
  std::atomic<std::uint64_t> oversize_alloc_bytes_{0};
  std::atomic<std::uint64_t> oversize_free_bytes_{0};
};

}  // namespace sv::alloc
