// Coarse-grained locking baseline: std::map behind one reader/writer lock.
// The classic "simplest thing that is thread-safe"; useful as a lower bound
// for scalability comparisons and as an oracle in concurrent tests (its
// serializability is trivial).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>

namespace sv::baselines {

template <class K, class V>
class CoarseLockMap {
 public:
  bool insert(K k, V v) {
    std::unique_lock lock(mu_);
    return map_.emplace(k, v).second;
  }

  bool remove(K k) {
    std::unique_lock lock(mu_);
    return map_.erase(k) > 0;
  }

  bool update(K k, V v) {
    std::unique_lock lock(mu_);
    auto it = map_.find(k);
    if (it == map_.end()) return false;
    it->second = v;
    return true;
  }

  std::optional<V> lookup(K k) const {
    std::shared_lock lock(mu_);
    auto it = map_.find(k);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t size() const {
    std::shared_lock lock(mu_);
    return map_.size();
  }

  template <class Fn>
  std::size_t range_for_each(K lo, K hi, Fn&& fn) const {
    std::shared_lock lock(mu_);
    std::size_t n = 0;
    for (auto it = map_.lower_bound(lo); it != map_.end() && it->first <= hi;
         ++it) {
      fn(it->first, it->second);
      ++n;
    }
    return n;
  }

  template <class Fn>
  std::size_t range_transform(K lo, K hi, Fn&& fn) {
    std::unique_lock lock(mu_);
    std::size_t n = 0;
    for (auto it = map_.lower_bound(lo); it != map_.end() && it->first <= hi;
         ++it) {
      it->second = fn(it->first, it->second);
      ++n;
    }
    return n;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    std::shared_lock lock(mu_);
    for (const auto& [k, v] : map_) fn(k, v);
  }

 private:
  mutable std::shared_mutex mu_;
  std::map<K, V> map_;
};

}  // namespace sv::baselines
