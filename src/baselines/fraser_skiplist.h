// FraserSkipList: a lock-free skip list in the style of Fraser's PhD
// algorithm [16] as implemented in Synchrobench -- the paper's primary
// concurrent baseline ("FSL").
//
// Standard design: Harris-style marked next pointers (mark = low bit), a
// search that snips marked nodes as it goes, towers linked bottom-up on
// insert and marked top-down on remove. Like the Synchrobench original it
// performs NO memory reclamation while live (unlinked nodes leak until the
// list is destroyed); the skip vector paper leans on exactly this contrast.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <optional>
#include <type_traits>

#include "common/rng.h"
#include "stats/stats.h"

namespace sv::baselines {

template <class K, class V>
class FraserSkipList {
  static_assert(std::is_trivially_copyable_v<K> &&
                std::is_trivially_copyable_v<V>);

 public:
  static constexpr int kMaxHeight = 32;

  explicit FraserSkipList(int max_height = kMaxHeight, std::uint64_t seed = 1)
      : max_height_(max_height < 1 ? 1
                    : max_height > kMaxHeight ? kMaxHeight
                                              : max_height),
        seed_(seed) {
    head_ = Node::make(K{}, V{}, max_height_, Node::kHead);
    tail_ = Node::make(K{}, V{}, max_height_, Node::kTail);
    for (int i = 0; i < max_height_; ++i) {
      head_->next[i].store(pack(tail_, false), std::memory_order_relaxed);
    }
    all_nodes_head_.store(nullptr, std::memory_order_relaxed);
  }

  ~FraserSkipList() {
    // Free every node ever allocated (linked or logically deleted) via the
    // allocation trail; sentinels last.
    Node* n = all_nodes_head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->alloc_next;
      Node::destroy(n);
      n = next;
    }
    Node::destroy(head_);
    Node::destroy(tail_);
  }

  FraserSkipList(const FraserSkipList&) = delete;
  FraserSkipList& operator=(const FraserSkipList&) = delete;

  std::optional<V> lookup(K k) {
    stats::Scope stats_scope(stats_);
    Node* pred = head_;
    Node* curr = nullptr;
    // Wait-free read path: no snipping, just skip marked nodes.
    for (int level = max_height_ - 1; level >= 0; --level) {
      curr = strip(pred->next[level].load(std::memory_order_acquire));
      for (;;) {
        bool marked = is_marked(curr->next_word(level));
        Node* succ = strip(curr->next_word(level));
        while (marked) {  // hop over logically deleted nodes
          curr = succ;
          marked = is_marked(curr->next_word(level));
          succ = strip(curr->next_word(level));
        }
        if (lt(curr, k)) {
          pred = curr;
          curr = succ;
        } else {
          break;
        }
      }
    }
    if (eq(curr, k) && !is_marked(curr->next_word(0))) {
      stats::count(stats::Counter::kLookupHit);
      return curr->value.load(std::memory_order_acquire);
    }
    stats::count(stats::Counter::kLookupMiss);
    return std::nullopt;
  }

  bool contains(K k) { return lookup(k).has_value(); }

  bool insert(K k, V v) {
    stats::Scope stats_scope(stats_);
    const int height = random_height();
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    for (;;) {
      if (find(k, preds, succs)) {
        stats::count(stats::Counter::kInsertDup);
        return false;  // already present
      }
      Node* node = Node::make(k, v, height, Node::kData);
      record_allocation(node);
      for (int i = 0; i < height; ++i) {
        node->next[i].store(pack(succs[i], false), std::memory_order_relaxed);
      }
      // Linearize by linking level 0.
      std::uintptr_t expected = pack(succs[0], false);
      if (!preds[0]->next[0].compare_exchange_strong(
              expected, pack(node, false), std::memory_order_acq_rel)) {
        stats::count(stats::Counter::kOpRestarts);
        continue;  // node stays on the allocation trail; retry fresh
      }
      stats::count(stats::Counter::kInsertNew);
      // Build the tower bottom-up; re-find on interference.
      for (int i = 1; i < height; ++i) {
        for (;;) {
          if (is_marked(node->next_word(i)) ||
              is_marked(node->next_word(0))) {
            return true;  // concurrently removed; stop helping ourselves
          }
          std::uintptr_t exp = pack(succs[i], false);
          if (node->next[i].load(std::memory_order_acquire) != exp) {
            node->next[i].store(exp, std::memory_order_release);
          }
          std::uintptr_t pexp = pack(succs[i], false);
          if (preds[i]->next[i].compare_exchange_strong(
                  pexp, pack(node, false), std::memory_order_acq_rel)) {
            break;
          }
          if (find(k, preds, succs)) {
            // Someone else may have removed and re-inserted around us; if
            // the found node is not ours, abandon the upper levels.
            if (succs[0] != node) return true;
          } else {
            return true;  // node vanished (removed); done
          }
        }
      }
      return true;
    }
  }

  bool remove(K k) {
    stats::Scope stats_scope(stats_);
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    if (!find(k, preds, succs)) {
      stats::count(stats::Counter::kRemoveMiss);
      return false;
    }
    Node* node = succs[0];
    // Mark from the top level down to 1.
    for (int i = node->height - 1; i >= 1; --i) {
      std::uintptr_t w = node->next_word(i);
      while (!is_marked(w)) {
        node->next[i].compare_exchange_weak(w, w | 1u,
                                            std::memory_order_acq_rel);
      }
    }
    // Level 0 decides the winner.
    std::uintptr_t w = node->next_word(0);
    for (;;) {
      if (is_marked(w)) {
        stats::count(stats::Counter::kRemoveMiss);
        return false;  // someone else won
      }
      if (node->next[0].compare_exchange_weak(w, w | 1u,
                                              std::memory_order_acq_rel)) {
        find(k, preds, succs);  // physically unlink
        stats::count(stats::Counter::kRemoveHit);
        return true;
      }
    }
  }

  // Quiescent iteration in ascending key order.
  template <class Fn>
  void for_each(Fn&& fn) const {
    const Node* n = strip(head_->next[0].load(std::memory_order_acquire));
    while (n->kind != Node::kTail) {
      if (!is_marked(n->next_word(0))) {
        fn(n->key, n->value.load(std::memory_order_relaxed));
      }
      n = strip(n->next_word(0));
    }
  }

  // Quiescent structural check: level lists sorted, towers consistent.
  bool validate() const {
    for (int level = 0; level < max_height_; ++level) {
      const Node* n = strip(head_->next[level].load(std::memory_order_acquire));
      bool have_prev = false;
      K prev{};
      while (n->kind != Node::kTail) {
        if (is_marked(n->next_word(level))) return false;  // not unlinked
        if (level >= n->height) return false;
        if (have_prev && !(prev < n->key)) return false;
        prev = n->key;
        have_prev = true;
        n = strip(n->next_word(level));
      }
    }
    return true;
  }

 private:
  struct Node {
    enum Kind : std::uint8_t { kData, kHead, kTail };

    K key;
    std::atomic<V> value;
    Node* alloc_next = nullptr;  // allocation trail for the destructor
    const int height;
    const Kind kind;
    std::atomic<std::uintptr_t> next[1];  // trailing array, `height` entries

    std::uintptr_t next_word(int level) const {
      return next[level].load(std::memory_order_acquire);
    }

    static Node* make(K k, V v, int height, Kind kind) {
      const std::size_t bytes =
          sizeof(Node) + (height - 1) * sizeof(std::atomic<std::uintptr_t>);
      void* mem = ::operator new(bytes);
      auto* n = new (mem) Node(k, v, height, kind);
      for (int i = 1; i < height; ++i) {
        new (&n->next[i]) std::atomic<std::uintptr_t>(0);
      }
      return n;
    }
    static void destroy(Node* n) { ::operator delete(n); }

   private:
    Node(K k, V v, int h, Kind kd) : key(k), value(v), height(h), kind(kd) {
      next[0].store(0, std::memory_order_relaxed);
    }
  };

  static std::uintptr_t pack(Node* n, bool marked) {
    return reinterpret_cast<std::uintptr_t>(n) | (marked ? 1u : 0u);
  }
  static Node* strip(std::uintptr_t w) {
    return reinterpret_cast<Node*>(w & ~std::uintptr_t{1});
  }
  static bool is_marked(std::uintptr_t w) { return w & 1u; }

  // key-order with sentinels: head < everything < tail.
  static bool lt(const Node* n, K k) {
    return n->kind == Node::kHead || (n->kind == Node::kData && n->key < k);
  }
  static bool eq(const Node* n, K k) {
    return n->kind == Node::kData && n->key == k;
  }

  int random_height() {
    thread_local Xoshiro256 rng = [] {
      static std::atomic<std::uint64_t> c{0xF5A5E5};
      return Xoshiro256(c.fetch_add(0x9e3779b97f4a7c15ULL,
                                    std::memory_order_relaxed));
    }();
    int h = 1;
    while (h < max_height_ && (rng.next() & 1) == 0) ++h;
    return h;
  }

  // Fraser/Harris search: positions preds/succs around k at every level,
  // physically unlinking marked nodes encountered. Returns true iff an
  // unmarked node with key k sits at level 0.
  bool find(K k, Node** preds, Node** succs) {
  retry:
    Node* pred = head_;
    for (int level = max_height_ - 1; level >= 0; --level) {
      std::uintptr_t curr_w = pred->next[level].load(std::memory_order_acquire);
      Node* curr = strip(curr_w);
      for (;;) {
        std::uintptr_t succ_w = curr->next_word(level);
        Node* succ = strip(succ_w);
        while (is_marked(succ_w)) {
          // Snip the marked node.
          std::uintptr_t exp = pack(curr, false);
          if (!pred->next[level].compare_exchange_strong(
                  exp, pack(succ, false), std::memory_order_acq_rel)) {
            goto retry;
          }
          curr = succ;
          succ_w = curr->next_word(level);
          succ = strip(succ_w);
        }
        if (lt(curr, k)) {
          pred = curr;
          curr = succ;
        } else {
          break;
        }
      }
      preds[level] = pred;
      succs[level] = curr;
    }
    return eq(succs[0], k);
  }

  void record_allocation(Node* n) {
    allocated_bytes_.fetch_add(
        sizeof(Node) + (n->height - 1) * sizeof(std::atomic<std::uintptr_t>),
        std::memory_order_relaxed);
    Node* old = all_nodes_head_.load(std::memory_order_relaxed);
    do {
      n->alloc_next = old;
    } while (!all_nodes_head_.compare_exchange_weak(
        old, n, std::memory_order_release, std::memory_order_relaxed));
  }

 public:
  // Total bytes ever allocated for nodes (nothing is reclaimed while live,
  // so this is also the resident node footprint -- the reason the paper's
  // 2^31 runs ran FSL out of memory while SV completed).
  std::size_t memory_bytes() const noexcept {
    return allocated_bytes_.load(std::memory_order_relaxed);
  }

  // Per-instance event counters (hit/miss mix, CAS retries); same registry
  // machinery as the skip vector so benchmarks report both uniformly.
  stats::Registry& stats_registry() const noexcept { return stats_; }

 private:

  const int max_height_;
  const std::uint64_t seed_;
  Node* head_;
  Node* tail_;
  std::atomic<Node*> all_nodes_head_;
  std::atomic<std::size_t> allocated_bytes_{0};
  mutable stats::Registry stats_;
};

}  // namespace sv::baselines
