// LazySkipList: the classic lock-based concurrent skip list (Herlihy &
// Shavit, "The Art of Multiprocessor Programming", ch. 14 -- the
// lazy-synchronization design family the paper's related work contrasts
// with). Per-node spinlocks, optimistic unsynchronized search with
// post-lock validation, logical deletion via a marked flag, wait-free
// contains.
//
// Included as a second concurrent baseline: unlike FSL it takes locks
// (like the skip vector) but has no chunking (like FSL), which isolates
// "locking vs lock-freedom" from "chunking vs pointer-chasing" in the
// benchmarks. Like FSL/Synchrobench it does not reclaim memory while live.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <new>
#include <optional>
#include <type_traits>

#include "common/hw.h"
#include "common/rng.h"

namespace sv::baselines {

template <class K, class V>
class LazySkipList {
  static_assert(std::is_trivially_copyable_v<K> &&
                std::is_trivially_copyable_v<V>);

 public:
  static constexpr int kMaxHeight = 32;

  explicit LazySkipList(int max_height = kMaxHeight)
      : max_height_(max_height < 1 ? 1
                    : max_height > kMaxHeight ? kMaxHeight
                                              : max_height) {
    head_ = Node::make(K{}, V{}, max_height_, Node::kHead);
    tail_ = Node::make(K{}, V{}, max_height_, Node::kTail);
    for (int i = 0; i < max_height_; ++i) {
      head_->next[i].store(tail_, std::memory_order_relaxed);
    }
  }

  ~LazySkipList() {
    // Quiescent: walk level 0 freeing everything linked, then leaked nodes
    // via the allocation trail.
    Node* n = all_nodes_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->alloc_next;
      Node::destroy(n);
      n = next;
    }
    Node::destroy(head_);
    Node::destroy(tail_);
  }

  LazySkipList(const LazySkipList&) = delete;
  LazySkipList& operator=(const LazySkipList&) = delete;

  std::optional<V> lookup(K k) {
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    const int lvl = find(k, preds, succs);
    if (lvl < 0) return std::nullopt;
    Node* n = succs[lvl];
    if (!n->fully_linked.load(std::memory_order_acquire) ||
        n->marked.load(std::memory_order_acquire)) {
      return std::nullopt;
    }
    return n->value.load(std::memory_order_acquire);
  }

  bool contains(K k) { return lookup(k).has_value(); }

  bool insert(K k, V v) {
    const int height = random_height();
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    for (;;) {
      const int found = find(k, preds, succs);
      if (found >= 0) {
        Node* n = succs[found];
        if (!n->marked.load(std::memory_order_acquire)) {
          // Wait until the racing inserter finishes linking, then report
          // the key as present.
          while (!n->fully_linked.load(std::memory_order_acquire)) {
            cpu_relax();
          }
          return false;
        }
        continue;  // marked: being removed; retry
      }
      // Lock predecessors bottom-up and validate.
      int locked_to = -1;
      bool valid = true;
      for (int i = 0; valid && i < height; ++i) {
        Node* pred = preds[i];
        Node* succ = succs[i];
        if (i == 0 || preds[i] != preds[i - 1]) pred->lock.lock();
        locked_to = i;
        valid = !pred->marked.load(std::memory_order_acquire) &&
                pred->next[i].load(std::memory_order_acquire) == succ;
      }
      if (!valid) {
        unlock_preds(preds, locked_to);
        continue;
      }
      Node* node = Node::make(k, v, height, Node::kData);
      record_allocation(node);
      for (int i = 0; i < height; ++i) {
        node->next[i].store(succs[i], std::memory_order_relaxed);
      }
      for (int i = 0; i < height; ++i) {
        preds[i]->next[i].store(node, std::memory_order_release);
      }
      node->fully_linked.store(true, std::memory_order_release);
      unlock_preds(preds, locked_to);
      return true;
    }
  }

  bool remove(K k) {
    Node* victim = nullptr;
    bool is_marked = false;
    int top = -1;
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    for (;;) {
      const int found = find(k, preds, succs);
      if (!is_marked) {
        if (found < 0) return false;
        victim = succs[found];
        if (!victim->fully_linked.load(std::memory_order_acquire) ||
            victim->height - 1 != found) {
          return false;  // mid-insert: treat as absent (as H&S does)
        }
        if (victim->marked.load(std::memory_order_acquire)) return false;
        top = victim->height - 1;
        victim->lock.lock();
        if (victim->marked.load(std::memory_order_acquire)) {
          victim->lock.unlock();
          return false;  // lost the race
        }
        victim->marked.store(true, std::memory_order_release);
        is_marked = true;
      }
      // Lock predecessors and validate.
      int locked_to = -1;
      bool valid = true;
      for (int i = 0; valid && i <= top; ++i) {
        Node* pred = preds[i];
        if (i == 0 || preds[i] != preds[i - 1]) pred->lock.lock();
        locked_to = i;
        valid = !pred->marked.load(std::memory_order_acquire) &&
                pred->next[i].load(std::memory_order_acquire) == victim;
      }
      if (!valid) {
        unlock_preds(preds, locked_to);
        continue;  // re-find and retry the unlink
      }
      for (int i = top; i >= 0; --i) {
        preds[i]->next[i].store(
            victim->next[i].load(std::memory_order_relaxed),
            std::memory_order_release);
      }
      victim->lock.unlock();
      unlock_preds(preds, locked_to);
      return true;
    }
  }

  // Quiescent ordered iteration.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const Node* n = head_->next[0].load(std::memory_order_acquire);
         n->kind != Node::kTail;
         n = n->next[0].load(std::memory_order_acquire)) {
      if (!n->marked.load(std::memory_order_relaxed)) {
        fn(n->key, n->value.load(std::memory_order_relaxed));
      }
    }
  }

  // Quiescent structural check.
  bool validate() const {
    for (int level = 0; level < max_height_; ++level) {
      bool have_prev = false;
      K prev{};
      for (const Node* n = head_->next[level].load(std::memory_order_acquire);
           n->kind != Node::kTail;
           n = n->next[level].load(std::memory_order_acquire)) {
        if (n->marked.load(std::memory_order_relaxed)) return false;
        if (!n->fully_linked.load(std::memory_order_relaxed)) return false;
        if (level >= n->height) return false;
        if (have_prev && !(prev < n->key)) return false;
        prev = n->key;
        have_prev = true;
      }
    }
    return true;
  }

 private:
  struct Node {
    enum Kind : std::uint8_t { kData, kHead, kTail };

    K key;
    std::atomic<V> value;
    std::mutex lock;
    std::atomic<bool> marked{false};
    std::atomic<bool> fully_linked{false};
    Node* alloc_next = nullptr;
    const int height;
    const Kind kind;
    std::atomic<Node*> next[1];  // trailing, `height` entries

    static Node* make(K k, V v, int height, Kind kind) {
      const std::size_t bytes =
          sizeof(Node) + (height - 1) * sizeof(std::atomic<Node*>);
      void* mem = ::operator new(bytes);
      auto* n = new (mem) Node(k, v, height, kind);
      for (int i = 1; i < height; ++i) {
        new (&n->next[i]) std::atomic<Node*>(nullptr);
      }
      return n;
    }
    static void destroy(Node* n) {
      n->~Node();
      ::operator delete(n);
    }

   private:
    Node(K k, V v, int h, Kind kd) : key(k), value(v), height(h), kind(kd) {
      next[0].store(nullptr, std::memory_order_relaxed);
    }
  };

  static bool lt(const Node* n, K k) {
    return n->kind == Node::kHead || (n->kind == Node::kData && n->key < k);
  }
  static bool eq(const Node* n, K k) {
    return n->kind == Node::kData && n->key == k;
  }

  // Unsynchronized search. Returns the highest level at which k was found
  // (or -1), filling preds/succs at every level.
  int find(K k, Node** preds, Node** succs) const {
    int found = -1;
    Node* pred = head_;
    for (int level = max_height_ - 1; level >= 0; --level) {
      Node* curr = pred->next[level].load(std::memory_order_acquire);
      while (lt(curr, k)) {
        pred = curr;
        curr = pred->next[level].load(std::memory_order_acquire);
      }
      if (found < 0 && eq(curr, k)) found = level;
      preds[level] = pred;
      succs[level] = curr;
    }
    return found;
  }

  static void unlock_preds(Node** preds, int locked_to) {
    for (int i = 0; i <= locked_to; ++i) {
      if (i == 0 || preds[i] != preds[i - 1]) preds[i]->lock.unlock();
    }
  }

  int random_height() {
    thread_local Xoshiro256 rng = [] {
      static std::atomic<std::uint64_t> c{0x1a2b};
      return Xoshiro256(c.fetch_add(0x9e3779b97f4a7c15ULL,
                                    std::memory_order_relaxed));
    }();
    int h = 1;
    while (h < max_height_ && (rng.next() & 1) == 0) ++h;
    return h;
  }

  void record_allocation(Node* n) {
    Node* old = all_nodes_.load(std::memory_order_relaxed);
    do {
      n->alloc_next = old;
    } while (!all_nodes_.compare_exchange_weak(old, n,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
  }

  const int max_height_;
  Node* head_;
  Node* tail_;
  std::atomic<Node*> all_nodes_{nullptr};
};

}  // namespace sv::baselines
