// Sequential ordered-map baselines for the paper's Figure 1 (Stroustrup's
// locality experiment): an unsorted vector, a sorted vector, a std::map
// adapter, and a classic sequential skip list. All expose the same minimal
// interface as SkipVectorMap's sequential use: insert / lookup / remove /
// for_each.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace sv::baselines {

// O(n) everything, but a single linear scan of contiguous memory.
template <class K, class V>
class UnsortedVectorMap {
 public:
  bool insert(K k, V v) {
    if (find(k) != nullptr) return false;
    keys_.push_back(k);
    vals_.push_back(v);
    return true;
  }

  std::optional<V> lookup(K k) const {
    const K* p = find(k);
    if (p == nullptr) return std::nullopt;
    return vals_[static_cast<std::size_t>(p - keys_.data())];
  }

  bool remove(K k) {
    const K* p = find(k);
    if (p == nullptr) return false;
    const auto i = static_cast<std::size_t>(p - keys_.data());
    keys_[i] = keys_.back();
    vals_[i] = vals_.back();
    keys_.pop_back();
    vals_.pop_back();
    return true;
  }

  std::size_t size() const { return keys_.size(); }

  template <class Fn>
  void for_each(Fn&& fn) const {  // ascending order (sorts a copy)
    std::vector<std::size_t> order(keys_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return keys_[a] < keys_[b]; });
    for (std::size_t i : order) fn(keys_[i], vals_[i]);
  }

 private:
  const K* find(K k) const {
    for (const K& x : keys_) {
      if (x == k) return &x;
    }
    return nullptr;
  }
  std::vector<K> keys_;
  std::vector<V> vals_;
};

// O(log n) lookup by binary search; O(n) insert/remove by shifting.
template <class K, class V>
class SortedVectorMap {
 public:
  bool insert(K k, V v) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), k);
    if (it != keys_.end() && *it == k) return false;
    vals_.insert(vals_.begin() + (it - keys_.begin()), v);
    keys_.insert(it, k);
    return true;
  }

  std::optional<V> lookup(K k) const {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), k);
    if (it == keys_.end() || *it != k) return std::nullopt;
    return vals_[static_cast<std::size_t>(it - keys_.begin())];
  }

  bool remove(K k) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), k);
    if (it == keys_.end() || *it != k) return false;
    vals_.erase(vals_.begin() + (it - keys_.begin()));
    keys_.erase(it);
    return true;
  }

  std::size_t size() const { return keys_.size(); }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) fn(keys_[i], vals_[i]);
  }

 private:
  std::vector<K> keys_;
  std::vector<V> vals_;
};

// Balanced-tree baseline (the C++ map of Fig. 1).
template <class K, class V>
class StdMapAdapter {
 public:
  bool insert(K k, V v) { return map_.emplace(k, v).second; }

  std::optional<V> lookup(K k) const {
    auto it = map_.find(k);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  bool remove(K k) { return map_.erase(k) > 0; }
  std::size_t size() const { return map_.size(); }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [k, v] : map_) fn(k, v);
  }

 private:
  std::map<K, V> map_;
};

// Classic Pugh skip list (p = 1/2), single-threaded: pointer-chasing layout,
// no chunking -- Fig. 1's fourth contender.
template <class K, class V>
class SequentialSkipList {
 public:
  static constexpr int kMaxHeight = 32;

  explicit SequentialSkipList(int max_height = kMaxHeight,
                              std::uint64_t seed = 99)
      : max_height_(max_height < 1 ? 1
                    : max_height > kMaxHeight ? kMaxHeight
                                              : max_height),
        rng_(seed) {
    head_ = Node::make(K{}, V{}, max_height_);
    for (int i = 0; i < max_height_; ++i) head_->next[i] = nullptr;
  }

  ~SequentialSkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0];
      Node::destroy(n);
      n = next;
    }
  }

  SequentialSkipList(const SequentialSkipList&) = delete;
  SequentialSkipList& operator=(const SequentialSkipList&) = delete;

  bool insert(K k, V v) {
    Node* preds[kMaxHeight];
    Node* found = find(k, preds);
    if (found != nullptr) return false;
    const int h = random_height();
    Node* node = Node::make(k, v, h);
    for (int i = 0; i < h; ++i) {
      node->next[i] = preds[i]->next[i];
      preds[i]->next[i] = node;
    }
    ++size_;
    return true;
  }

  std::optional<V> lookup(K k) {
    Node* preds[kMaxHeight];
    Node* found = find(k, preds);
    if (found == nullptr) return std::nullopt;
    return found->value;
  }

  bool remove(K k) {
    Node* preds[kMaxHeight];
    Node* found = find(k, preds);
    if (found == nullptr) return false;
    for (int i = 0; i < found->height; ++i) {
      if (preds[i]->next[i] == found) preds[i]->next[i] = found->next[i];
    }
    Node::destroy(found);
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const Node* n = head_->next[0]; n != nullptr; n = n->next[0]) {
      fn(n->key, n->value);
    }
  }

 private:
  struct Node {
    K key;
    V value;
    int height;
    Node* next[1];  // trailing, `height` entries

    static Node* make(K k, V v, int h) {
      void* mem = ::operator new(sizeof(Node) + (h - 1) * sizeof(Node*));
      return new (mem) Node{k, v, h, {nullptr}};
    }
    static void destroy(Node* n) { ::operator delete(n); }
  };

  Node* find(K k, Node** preds) {
    Node* pred = head_;
    Node* found = nullptr;
    for (int i = max_height_ - 1; i >= 0; --i) {
      Node* curr = pred->next[i];
      while (curr != nullptr && curr->key < k) {
        pred = curr;
        curr = curr->next[i];
      }
      preds[i] = pred;
      if (curr != nullptr && curr->key == k) found = curr;
    }
    return found;
  }

  int random_height() {
    int h = 1;
    while (h < max_height_ && (rng_.next() & 1) == 0) ++h;
    return h;
  }

  const int max_height_;
  Xoshiro256 rng_;
  Node* head_;
  std::size_t size_ = 0;
};

}  // namespace sv::baselines
