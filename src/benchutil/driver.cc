#include "benchutil/driver.h"

#include <cstdio>

namespace sv::benchutil {

std::string format_row(const std::string& impl, unsigned threads,
                       double mops) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-16s %8u %14.3f", impl.c_str(), threads,
                mops);
  return buf;
}

void print_table_header(const std::string& title, const std::string& params) {
  std::printf("\n== %s ==\n", title.c_str());
  if (!params.empty()) std::printf("   %s\n", params.c_str());
  std::printf("  %-16s %8s %14s\n", "impl", "threads", "Mops/s");
}

}  // namespace sv::benchutil
