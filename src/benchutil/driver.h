// Fixed-duration multi-threaded workload driver used by every figure bench:
// prefill half the key range, then run an N/M/P lookup/insert/remove mix for
// a wall-clock interval and report throughput, exactly the methodology of
// the paper's §V microbenchmarks.
//
// Map concept: bool insert(u64, u64); bool remove(u64);
//              std::optional<u64> lookup(u64).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "common/zipf.h"

namespace sv::benchutil {

struct MixSpec {
  unsigned pct_lookup = 80;
  unsigned pct_insert = 10;
  unsigned pct_remove = 10;
  // 0 = uniform keys (the paper's microbenchmarks); > 0 = Zipfian skew.
  double zipf_theta = 0.0;
  std::string name() const {
    std::string s = std::to_string(pct_lookup) + "/" +
                    std::to_string(pct_insert) + "/" +
                    std::to_string(pct_remove);
    if (zipf_theta > 0) {
      s += " zipf(" + std::to_string(zipf_theta).substr(0, 4) + ")";
    }
    return s;
  }
};

struct RunResult {
  std::uint64_t ops = 0;
  std::uint64_t lookups = 0;
  std::uint64_t inserts = 0;
  std::uint64_t removes = 0;
  double seconds = 0;
  // Per-thread throughput (Mops/s); length = worker count. From
  // run_mix_trials this is the mean across trials, like mops().
  std::vector<double> thread_mops;
  double mops() const { return seconds == 0 ? 0 : ops / seconds / 1e6; }
};

// Prefill with half of the keys in [0, key_range): random draws until the
// target count is reached (Synchrobench-style), striped over `threads`
// workers for a "NUMA-fair"-equivalent spread of allocations.
template <class Map>
void prefill_half(Map& map, std::uint64_t key_range, unsigned threads,
                  std::uint64_t seed = 0xF111) {
  const std::uint64_t target = key_range / 2;
  std::atomic<std::uint64_t> tickets{0};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(seed + t);
      // Claim a ticket per successful insert so the final population is
      // exactly `target` regardless of interleaving.
      while (tickets.fetch_add(1, std::memory_order_relaxed) < target) {
        while (!map.insert(rng.next_below(key_range),
                           rng.next() | 1)) {
        }
      }
    });
  }
  for (auto& w : workers) w.join();
}

// Run the op mix with uniform keys for `seconds` of wall-clock time.
template <class Map>
RunResult run_mix(Map& map, const MixSpec& mix, std::uint64_t key_range,
                  unsigned threads, double seconds,
                  std::uint64_t seed = 0xB12) {
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::vector<RunResult> per_thread(threads);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(seed * 7919 + t);
      std::unique_ptr<ZipfGenerator> zipf;
      if (mix.zipf_theta > 0) {
        zipf = std::make_unique<ZipfGenerator>(key_range, mix.zipf_theta,
                                               seed * 131 + t);
      }
      while (!start.load(std::memory_order_acquire)) {
      }
      RunResult local;
      while (!stop.load(std::memory_order_relaxed)) {
        // Check the stop flag once per batch to keep it off the hot path.
        for (int i = 0; i < 128; ++i) {
          const std::uint64_t k =
              zipf ? zipf->next() : rng.next_below(key_range);
          const auto dice = rng.next_below(100);
          if (dice < mix.pct_lookup) {
            volatile bool found = map.lookup(k).has_value();
            (void)found;
            ++local.lookups;
          } else if (dice < mix.pct_lookup + mix.pct_insert) {
            map.insert(k, k ^ 0x5555555555555555ULL);
            ++local.inserts;
          } else {
            map.remove(k);
            ++local.removes;
          }
        }
        local.ops += 128;
      }
      per_thread[t] = local;
    });
  }
  WallTimer timer;
  start.store(true, std::memory_order_release);
  while (timer.elapsed_seconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  const double elapsed = timer.elapsed_seconds();
  for (auto& w : workers) w.join();

  RunResult total;
  for (const auto& r : per_thread) {
    total.ops += r.ops;
    total.lookups += r.lookups;
    total.inserts += r.inserts;
    total.removes += r.removes;
    total.thread_mops.push_back(
        elapsed == 0 ? 0 : static_cast<double>(r.ops) / elapsed / 1e6);
  }
  total.seconds = elapsed;
  return total;
}

// Repeat run_mix `trials` times and return the mean throughput result (the
// paper averages five runs).
template <class Map>
RunResult run_mix_trials(Map& map, const MixSpec& mix, std::uint64_t key_range,
                         unsigned threads, double seconds, unsigned trials,
                         std::uint64_t seed = 0xB12) {
  RunResult acc;
  acc.thread_mops.assign(threads, 0.0);
  for (unsigned i = 0; i < trials; ++i) {
    RunResult r = run_mix(map, mix, key_range, threads, seconds, seed + i);
    acc.ops += r.ops;
    acc.lookups += r.lookups;
    acc.inserts += r.inserts;
    acc.removes += r.removes;
    acc.seconds += r.seconds;
    for (unsigned t = 0; t < threads; ++t) {
      acc.thread_mops[t] += r.thread_mops[t] / trials;
    }
  }
  return acc;
}

// Pretty row formatting shared by the figure benches.
std::string format_row(const std::string& impl, unsigned threads,
                       double mops);
void print_table_header(const std::string& title,
                        const std::string& params);

}  // namespace sv::benchutil
