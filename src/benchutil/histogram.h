// Log-bucketed latency histogram (HdrHistogram-style, power-of-two buckets
// with linear sub-buckets): constant-time record, fixed memory, percentile
// queries. Used by bench/latency_percentiles to check the paper's
// "predictability and low latency" conclusion with tail data.
//
// Threading invariant: counts are PLAIN (non-atomic) fields. An instance is
// single-writer -- each worker records into its own thread-local histogram,
// and merge()/percentile()/summary() may only run after the writer has been
// joined (or otherwise handed the instance off with a happens-before edge,
// e.g. a release-store the reader acquires). Recording into one instance
// from two threads, or reading while a detached writer may still record, is
// a data race -- don't "fix" a flaky teardown by sprinkling reads with
// retries; establish the join/handoff first.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace sv::benchutil {

class LatencyHistogram {
 public:
  static constexpr int kBucketBits = 6;  // 64 linear sub-buckets per octave
  static constexpr int kOctaves = 40;    // top bucket starts at 2^44 ns (~4.8h)
  static constexpr int kBuckets = kOctaves << kBucketBits;

  // Bucket mapping, public for exhaustive round-trip testing. Octave 0 is
  // exact (one bucket per nanosecond below 64); octave o >= 1 covers
  // [2^(o+5), 2^(o+6)) in 64 sub-buckets of width 2^(o-1). value_for returns
  // a bucket's lower bound, so value_for(index_for(v)) <= v for all v, with
  // equality exactly on bucket boundaries.
  static int index_for(std::uint64_t v) noexcept {
    if (v < (std::uint64_t{1} << kBucketBits)) return static_cast<int>(v);
    const int msb = 63 - __builtin_clzll(v);
    const int octave = msb - kBucketBits + 1;
    const auto sub = static_cast<int>((v >> (msb - kBucketBits)) &
                                      ((1u << kBucketBits) - 1));
    const int idx = (octave << kBucketBits) + sub;
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  static std::uint64_t value_for(int idx) noexcept {
    const int octave = idx >> kBucketBits;
    const std::uint64_t sub = idx & ((1u << kBucketBits) - 1);
    if (octave == 0) return sub;
    return (std::uint64_t{1} << (octave + kBucketBits - 1)) +
           (sub << (octave - 1));
  }

  void record(std::uint64_t nanos) noexcept {
    counts_[index_for(nanos)]++;
    total_++;
    if (nanos > max_) max_ = nanos;
    sum_ += nanos;
  }

  // Merge another histogram (e.g., per-thread locals into a global).
  void merge(const LatencyHistogram& o) noexcept {
    for (int i = 0; i < kBuckets; ++i) counts_[i] += o.counts_[i];
    total_ += o.total_;
    sum_ += o.sum_;
    if (o.max_ > max_) max_ = o.max_;
  }

  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return total_ ? static_cast<double>(sum_) / static_cast<double>(total_)
                  : 0.0;
  }

  // Value at percentile p in [0, 100]. Returns a bucket's representative
  // (lower-bound) latency in nanoseconds.
  std::uint64_t percentile(double p) const noexcept {
    if (total_ == 0) return 0;
    const auto target = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen > target || (p >= 100.0 && seen >= total_)) {
        return value_for(i);
      }
    }
    return max_;
  }

  std::string summary() const {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "n=%llu mean=%.0fns p50=%llu p90=%llu p99=%llu "
                  "p99.9=%llu max=%llu",
                  static_cast<unsigned long long>(total_), mean(),
                  static_cast<unsigned long long>(percentile(50)),
                  static_cast<unsigned long long>(percentile(90)),
                  static_cast<unsigned long long>(percentile(99)),
                  static_cast<unsigned long long>(percentile(99.9)),
                  static_cast<unsigned long long>(max_));
    return buf;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace sv::benchutil
