#include "benchutil/json_report.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "sv_build_info.h"

namespace sv::benchutil {

JsonValue& JsonValue::set(std::string key, JsonValue v) {
  type_ = Type::kObject;  // implicit: set() on a default value makes an object
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
  return obj_.back().second;
}

JsonValue& JsonValue::push(JsonValue v) {
  type_ = Type::kArray;
  arr_.push_back(std::move(v));
  return arr_.back();
}

void JsonValue::append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void JsonValue::append_double(std::string& out, double d) {
  if (!std::isfinite(d)) {  // JSON has no Inf/NaN
    out += "null";
    return;
  }
  // Shortest representation that round-trips: deterministic for a given
  // value, so identical runs produce byte-identical files.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  out.append(buf, res.ptr);
}

void JsonValue::dump_to(std::string& out, int depth) const {
  const auto indent = [&](int d) { out.append(2 * static_cast<std::size_t>(d), ' '); };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += b_ ? "true" : "false"; break;
    case Type::kUInt: out += std::to_string(u_); break;
    case Type::kInt: out += std::to_string(i_); break;
    case Type::kDouble: append_double(out, d_); break;
    case Type::kString: append_escaped(out, s_); break;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      // Arrays of scalars stay on one line; arrays holding containers nest.
      bool nested = false;
      for (const auto& v : arr_) nested |= v.is_array() || v.is_object();
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        if (nested) {
          out += '\n';
          indent(depth + 1);
        } else if (i) {
          out += ' ';
        }
        arr_[i].dump_to(out, depth + 1);
      }
      if (nested) {
        out += '\n';
        indent(depth);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        indent(depth + 1);
        append_escaped(out, obj_[i].first);
        out += ": ";
        obj_[i].second.dump_to(out, depth + 1);
        if (i + 1 < obj_.size()) out += ',';
        out += '\n';
      }
      indent(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

JsonValue stats_json(const stats::Snapshot& snap) {
  JsonValue obj = JsonValue::object();
  snap.for_each([&](std::string_view name, std::uint64_t value) {
    obj.set(std::string(name), JsonValue(value));
  });
  return obj;
}

std::string compiler_string() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

BenchReport::BenchReport(std::string bench_name)
    : bench_name_(std::move(bench_name)), build_(default_build_info()) {}

JsonValue BenchReport::default_build_info() {
  JsonValue b = JsonValue::object();
  b.set("compiler", compiler_string());
  b.set("flags", SV_BUILD_CXX_FLAGS);
  b.set("git_sha", SV_BUILD_GIT_SHA);
  b.set("build_type", SV_BUILD_TYPE);
  b.set("stats_enabled", stats::kEnabled);
  return b;
}

JsonValue& BenchReport::add_result(std::string name) {
  JsonValue row = JsonValue::object();
  row.set("name", std::move(name));
  row.set("params", JsonValue::object());
  return results_.push(std::move(row));
}

JsonValue BenchReport::to_json() const {
  JsonValue root = JsonValue::object();
  root.set("schema", "sv-bench");
  root.set("schema_version", std::uint64_t{1});
  root.set("bench", bench_name_);
  root.set("build", build_);
  root.set("config", config_);
  root.set("results", results_);
  return root;
}

bool BenchReport::write(const std::string& path) const {
  const std::string text = to_json().dump();
  if (path.empty() || path == "-") {
    std::cout << text;
    return true;
  }
  std::ofstream out(path, std::ios::trunc);
  out << text;
  out.close();
  if (!out) {
    std::cerr << "error: failed to write " << path << "\n";
    return false;
  }
  std::cerr << "wrote " << path << "\n";
  return true;
}

}  // namespace sv::benchutil
