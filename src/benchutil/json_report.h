// Versioned JSON result emission for the benchmark binaries.
//
// Every bench supports --json=<path>; the file it writes follows the
// "sv-bench" schema (docs/OBSERVABILITY.md documents the version policy):
//
//   {
//     "schema": "sv-bench",
//     "schema_version": 1,
//     "bench": "<binary name>",
//     "build": { "compiler": ..., "flags": ..., "git_sha": ...,
//                "build_type": ..., "stats_enabled": true|false },
//     "config": { <bench-wide parameters> },
//     "results": [
//       { "name": "<impl/series>", "params": { <per-row parameters> },
//         "throughput_mops": <double>,            // optional
//         "thread_mops": [<double>, ...],          // optional, per thread
//         "latency_ns": { "p50": ..., ... },       // optional
//         "stats": { "<counter>": <u64>, ... },    // optional, sv::stats
//         "metrics": { <free-form numbers> } },    // optional
//       ...
//     ]
//   }
//
// tools/benchdiff.py validates this shape (--validate-only) and compares two
// files row by row, matching on (name, params).
//
// The JsonValue type is deliberately tiny: insertion-ordered objects so the
// emitted files are stable and diffable, shortest-round-trip double
// formatting (std::to_chars) so output is bit-identical across runs of the
// same build. Not a parser -- Python-side tooling handles reading.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/stats.h"

namespace sv::benchutil {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kUInt, kInt, kDouble, kString, kArray,
                    kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), b_(b) {}  // NOLINT(runtime/explicit)
  JsonValue(std::uint64_t u) : type_(Type::kUInt), u_(u) {}
  JsonValue(std::int64_t i) : type_(Type::kInt), i_(i) {}
  JsonValue(int i) : type_(Type::kInt), i_(i) {}
  JsonValue(unsigned u) : type_(Type::kUInt), u_(u) {}
  JsonValue(double d) : type_(Type::kDouble), d_(d) {}
  JsonValue(const char* s) : type_(Type::kString), s_(s) {}
  JsonValue(std::string s) : type_(Type::kString), s_(std::move(s)) {}

  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }
  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }

  Type type() const noexcept { return type_; }
  bool is_object() const noexcept { return type_ == Type::kObject; }
  bool is_array() const noexcept { return type_ == Type::kArray; }

  // Object: set key (replacing in place if present, else appending -- key
  // order is insertion order). Returns the stored value for chaining into
  // nested structures.
  JsonValue& set(std::string key, JsonValue v);

  // Array: append.
  JsonValue& push(JsonValue v);

  std::size_t size() const noexcept {
    return is_array() ? arr_.size() : obj_.size();
  }

  // Serialize with two-space indentation and a trailing newline at the top
  // level (so files are POSIX-friendly).
  std::string dump() const;

 private:
  void dump_to(std::string& out, int depth) const;
  static void append_escaped(std::string& out, std::string_view s);
  static void append_double(std::string& out, double d);

  Type type_;
  bool b_ = false;
  std::uint64_t u_ = 0;
  std::int64_t i_ = 0;
  double d_ = 0;
  std::string s_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

// Full sv::stats snapshot as an object, one key per counter (zeros included,
// so the key set is schema-stable).
JsonValue stats_json(const stats::Snapshot& snap);

// Compile-time compiler identification ("gcc 13.2.0 ..." / "clang ...").
std::string compiler_string();

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  // Bench-wide parameters ({"range_bits": 20, "seconds": 5.0, ...}).
  JsonValue& config() { return config_; }

  // Append a result row; fill in params/values on the returned object.
  // The "name" key identifies the implementation or series.
  JsonValue& add_result(std::string name);

  // Test hook: replace the build section (whose real values -- git sha,
  // compiler -- vary by environment) with fixed values for golden tests.
  void set_build_info(JsonValue build) { build_ = std::move(build); }

  JsonValue to_json() const;

  // Write to path ("" and "-" mean stdout). Returns false on I/O failure
  // (message on stderr).
  bool write(const std::string& path) const;

 private:
  static JsonValue default_build_info();

  std::string bench_name_;
  JsonValue build_;
  JsonValue config_ = JsonValue::object();
  JsonValue results_ = JsonValue::array();
};

}  // namespace sv::benchutil
