#include "benchutil/options.h"

#include <cstdlib>
#include <stdexcept>

namespace sv::benchutil {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unrecognized argument: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_[arg] = "1";  // bare flag
    } else {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

void Options::reject_unknown(
    std::initializer_list<std::string_view> allowed) const {
  for (const auto& [key, value] : kv_) {
    bool known = false;
    for (std::string_view a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) throw std::invalid_argument("unknown option: --" + key);
  }
}

std::uint64_t Options::parse_u64(const std::string& s) {
  if (s.empty()) throw std::invalid_argument("empty integer option");
  const auto caret = s.find('^');
  if (caret != std::string::npos) {
    const std::uint64_t base = std::stoull(s.substr(0, caret));
    const std::uint64_t exp = std::stoull(s.substr(caret + 1));
    std::uint64_t v = 1;
    for (std::uint64_t i = 0; i < exp; ++i) v *= base;
    return v;
  }
  std::size_t pos = 0;
  std::uint64_t v = std::stoull(s, &pos);
  if (pos < s.size()) {
    switch (s[pos]) {
      case 'k': case 'K': v <<= 10; break;
      case 'm': case 'M': v <<= 20; break;
      case 'g': case 'G': v <<= 30; break;
      default:
        throw std::invalid_argument("bad integer suffix in: " + s);
    }
  }
  return v;
}

std::uint64_t Options::u64(const std::string& name, std::uint64_t def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : parse_u64(it->second);
}

double Options::f64(const std::string& name, double def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : std::stod(it->second);
}

std::string Options::str(const std::string& name,
                         const std::string& def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : it->second;
}

bool Options::flag(const std::string& name) const {
  auto it = kv_.find(name);
  return it != kv_.end() && it->second != "0" && it->second != "false";
}

std::vector<std::uint64_t> Options::u64_list(
    const std::string& name, std::vector<std::uint64_t> def) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  std::vector<std::uint64_t> out;
  std::string s = it->second;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto comma = s.find(',', start);
    const std::string tok = s.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!tok.empty()) out.push_back(parse_u64(tok));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace sv::benchutil
