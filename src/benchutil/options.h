// Minimal --key=value command-line option parsing for the benchmark
// binaries. Supports integer suffixes K/M/G and power-of-two notation
// "2^20" so paper-scale parameters are easy to type.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sv::benchutil {

class Options {
 public:
  Options(int argc, char** argv);

  bool help_requested() const noexcept { return help_; }

  std::uint64_t u64(const std::string& name, std::uint64_t def) const;
  double f64(const std::string& name, double def) const;
  std::string str(const std::string& name, const std::string& def) const;
  bool flag(const std::string& name) const;

  // Comma-separated list of u64 (e.g. --threads=1,2,4,8).
  std::vector<std::uint64_t> u64_list(const std::string& name,
                                      std::vector<std::uint64_t> def) const;

  // Throw std::invalid_argument if any parsed option is not in `allowed`.
  // Opt-in so tools can reject typos (--winodw=...) with a usage error
  // instead of silently running with the default.
  void reject_unknown(std::initializer_list<std::string_view> allowed) const;

  static std::uint64_t parse_u64(const std::string& s);

 private:
  std::map<std::string, std::string> kv_;
  bool help_ = false;
};

}  // namespace sv::benchutil
