// Concurrent operation-history recording for linearizability checking.
//
// Each worker thread appends completed operations (invoke/response TSC
// timestamps plus the observed result) to its own append-only log; after the
// run quiesces, merge() produces one History sorted by invocation time.
// Recording is designed to perturb the system under test as little as
// possible: the hot path is two tsc_now() calls and a push_back into a
// pre-reserved per-thread vector -- no locks, no allocation in steady state,
// no cross-thread traffic.
//
// A History can be dumped to / reloaded from a line-oriented text format so
// a violating run is a replayable artifact: tools/linverify re-checks a dump
// offline and must reach the same verdict. See docs/LINEARIZABILITY.md.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hw.h"

namespace sv::check {

// One completed operation. Ranges are decomposed into one kRangeObserve
// per mapping the scan returned, all sharing the scan's invoke/response
// interval (per-key decomposition; see docs/LINEARIZABILITY.md for what
// this does and does not check).
enum class OpKind : std::uint8_t {
  kLookup = 0,
  kInsert,
  kRemove,
  kUpdate,
  kRangeObserve,
  // Batch ops (apply_batch): each key of a committed batch is decomposed
  // into one event sharing the batch's invoke/response interval. kBatchPut
  // upserts (ok = the key was newly inserted); kBatchRemove erases (ok =
  // the key was present). Snapshot scans (range_for_each_at / snapshot())
  // decompose like ranges, one kSnapObserve per mapping returned.
  kBatchPut,
  kBatchRemove,
  kSnapObserve,
  // Transaction markers (sv::txn). A committed transaction is decomposed
  // like a batch: one kTxnCommit marker plus per-key kLookup (validated
  // reads) and kBatchPut/kBatchRemove (applied writes) events, all sharing
  // the commit's invoke/response interval -- one linearization point per
  // committed transaction. An aborted transaction emits only kTxnAbort (no
  // per-key events: aborts are undo-free discards, invisible to the map).
  // Markers carry no key/value state; the checker treats them as no-ops and
  // skips them when partitioning by key.
  kTxnBegin,
  kTxnCommit,
  kTxnAbort,
};

inline const char* op_kind_name(OpKind k) noexcept {
  switch (k) {
    case OpKind::kLookup: return "lookup";
    case OpKind::kInsert: return "insert";
    case OpKind::kRemove: return "remove";
    case OpKind::kUpdate: return "update";
    case OpKind::kRangeObserve: return "range";
    case OpKind::kBatchPut: return "batch-put";
    case OpKind::kBatchRemove: return "batch-remove";
    case OpKind::kSnapObserve: return "snap";
    case OpKind::kTxnBegin: return "txn-begin";
    case OpKind::kTxnCommit: return "txn-commit";
    case OpKind::kTxnAbort: return "txn-abort";
  }
  return "?";
}

inline OpKind op_kind_from_name(const std::string& s) {
  for (std::uint8_t i = 0; i <= static_cast<std::uint8_t>(OpKind::kTxnAbort);
       ++i) {
    if (s == op_kind_name(static_cast<OpKind>(i))) {
      return static_cast<OpKind>(i);
    }
  }
  throw std::invalid_argument("unknown history op kind: " + s);
}

struct Event {
  std::uint64_t invoke_ts = 0;
  std::uint64_t response_ts = 0;
  std::uint64_t key = 0;
  // kInsert/kUpdate: the value written. kLookup/kRangeObserve with
  // ok == true: the value observed. Otherwise unused.
  std::uint64_t value = 0;
  std::uint32_t thread = 0;
  OpKind kind = OpKind::kLookup;
  // kInsert/kRemove/kUpdate: the boolean the operation returned.
  // kLookup/kRangeObserve: whether the key was observed present.
  bool ok = false;
};

// A merged, invocation-sorted history.
struct History {
  std::vector<Event> events;

  static constexpr const char* kMagic = "# sv-history v1";

  void dump(std::ostream& out) const {
    out << kMagic << '\n';
    for (const Event& e : events) {
      out << "op " << e.thread << ' ' << op_kind_name(e.kind) << ' ' << e.key
          << ' ' << e.value << ' ' << (e.ok ? 1 : 0) << ' ' << e.invoke_ts
          << ' ' << e.response_ts << '\n';
    }
  }

  // Throws std::runtime_error on malformed input.
  static History load(std::istream& in) {
    History h;
    std::string line;
    if (!std::getline(in, line) || line != kMagic) {
      throw std::runtime_error("bad history header (want '" +
                               std::string(kMagic) + "')");
    }
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ls(line);
      std::string tag, kind;
      Event e;
      int ok = 0;
      ls >> tag >> e.thread >> kind >> e.key >> e.value >> ok >> e.invoke_ts >>
          e.response_ts;
      if (!ls || tag != "op") {
        throw std::runtime_error("bad history line: " + line);
      }
      e.kind = op_kind_from_name(kind);
      e.ok = ok != 0;
      if (e.response_ts < e.invoke_ts) {
        throw std::runtime_error("response before invoke: " + line);
      }
      h.events.push_back(e);
    }
    return h;
  }
};

// Per-thread append-only logs, merged after the run. Thread logs are
// created on first use and owned by the recorder; merge()/clear() require
// quiescence (no thread inside a recorded operation).
class HistoryRecorder {
 public:
  class ThreadLog {
   public:
    explicit ThreadLog(std::uint32_t tid) : tid_(tid) {
      events_.reserve(kInitialReserve);
    }

    void record(OpKind kind, std::uint64_t key, std::uint64_t value, bool ok,
                std::uint64_t invoke_ts, std::uint64_t response_ts) {
      events_.push_back(
          Event{invoke_ts, response_ts, key, value, tid_, kind, ok});
    }

    std::uint32_t thread_id() const noexcept { return tid_; }

   private:
    friend class HistoryRecorder;
    static constexpr std::size_t kInitialReserve = 4096;
    std::uint32_t tid_;
    std::vector<Event> events_;
  };

  HistoryRecorder() : id_(next_id()) {}

  // The calling thread's log (created and registered on first call). The
  // returned reference stays valid for the recorder's lifetime; the lookup
  // after the first call is a thread-local hash hit, no lock.
  ThreadLog& thread_log() {
    thread_local std::unordered_map<std::uint64_t, ThreadLog*> cache;
    auto it = cache.find(id_);
    if (it != cache.end()) return *it->second;
    std::lock_guard<std::mutex> lk(mu_);
    logs_.push_back(std::make_unique<ThreadLog>(
        static_cast<std::uint32_t>(logs_.size())));
    ThreadLog* log = logs_.back().get();
    cache.emplace(id_, log);
    return *log;
  }

  // Quiescent: merge every thread log into one invocation-sorted history.
  History merge() const {
    History h;
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t total = 0;
    for (const auto& log : logs_) total += log->events_.size();
    h.events.reserve(total);
    for (const auto& log : logs_) {
      h.events.insert(h.events.end(), log->events_.begin(),
                      log->events_.end());
    }
    std::sort(h.events.begin(), h.events.end(),
              [](const Event& a, const Event& b) {
                return a.invoke_ts < b.invoke_ts;
              });
    return h;
  }

  // Quiescent: drop all recorded events, keeping the thread registrations
  // (so a windowed run reuses the logs' capacity window after window).
  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& log : logs_) log->events_.clear();
  }

  // Quiescent: total events currently recorded.
  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t total = 0;
    for (const auto& log : logs_) total += log->events_.size();
    return total;
  }

 private:
  static std::uint64_t next_id() {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  const std::uint64_t id_;  // key for the thread-local log cache
  mutable std::mutex mu_;
  std::deque<std::unique_ptr<ThreadLog>> logs_;
};

}  // namespace sv::check
