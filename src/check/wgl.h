// Wing-Gong/Lowe linearizability checker, specialized for the map API.
//
// The full history is first partitioned by key: map point operations touch
// exactly one key, operations on distinct keys commute, and a linearization
// of the whole history projects to a linearization of every per-key
// subhistory -- so a per-key violation is a genuine violation of the whole
// history (no false rejections from the partition), while the per-key state
// collapses from "the whole map" to a single optional<value>. Range scans
// are decomposed by the recorder into per-key observations sharing the
// scan's interval; this checks each observation like a lookup but does NOT
// check cross-key scan atomicity (tests/range_scan_stress_test.cc covers
// that angle). See docs/LINEARIZABILITY.md.
//
// Per key we run the Wing & Gong tree search with Lowe's two standard
// refinements:
//   - interval pruning: only "minimal" operations -- those invoked before
//     every other pending operation's response -- are linearization
//     candidates, so the search never explores orders that contradict the
//     recorded real-time order;
//   - memoization: a (linearized-set, state) configuration is explored at
//     most once; revisits backtrack immediately.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/history.h"

namespace sv::check {

struct CheckOptions {
  // Abort the per-key search after exploring this many configurations and
  // report the history as undecided (treated as a check failure: a checker
  // that silently gives up has no teeth). Generous default: clean histories
  // memoize to near-linear work; only pathological ones approach this.
  std::size_t max_configs_per_key = 50'000'000;
};

struct CheckResult {
  enum class Verdict : std::uint8_t { kLinearizable, kViolation, kUndecided };

  Verdict verdict = Verdict::kLinearizable;
  bool ok() const noexcept { return verdict == Verdict::kLinearizable; }

  std::uint64_t culprit_key = 0;   // valid unless linearizable
  std::string explanation;         // human-readable failure summary
  std::size_t ops_checked = 0;
  std::size_t keys_checked = 0;
  std::size_t configs_explored = 0;
};

namespace detail {

// Per-key sequential specification: an optional mapping whose initial
// content is UNKNOWN. A history need not start at map creation (bounded
// windows of a long run, offline dumps), so the lattice has four points:
// presence unknown, known-absent, present with known value, present with
// unknown value. The first linearized observation collapses the unknowns;
// window harnesses ground the state up front with a quiesced read pass
// (opfuzz --lincheck does) so nothing stays unknown for long.
struct KeyState {
  enum class P : std::uint8_t {
    kUnknown,
    kAbsent,
    kPresentKnown,
    kPresentUnknown,
  };
  P p = P::kUnknown;
  std::uint64_t value = 0;  // meaningful iff kPresentKnown

  bool operator==(const KeyState& o) const noexcept {
    return p == o.p && (p != P::kPresentKnown || value == o.value);
  }
};

// Try to apply `e` to `st`; false if the recorded result is impossible in
// this state (the candidate cannot linearize here).
inline bool apply(const Event& e, KeyState& st) noexcept {
  using P = KeyState::P;
  const bool may_be_present = st.p != P::kAbsent;
  const bool may_be_absent = st.p == P::kAbsent || st.p == P::kUnknown;
  switch (e.kind) {
    case OpKind::kLookup:
    case OpKind::kRangeObserve:
    case OpKind::kSnapObserve:
      if (e.ok) {
        if (!may_be_present) return false;
        if (st.p == P::kPresentKnown) return st.value == e.value;
        st.p = P::kPresentKnown;  // observation collapses the unknown
        st.value = e.value;
        return true;
      }
      if (!may_be_absent) return false;
      st.p = P::kAbsent;
      return true;
    case OpKind::kInsert:
      if (e.ok) {
        if (!may_be_absent) return false;
        st.p = P::kPresentKnown;
        st.value = e.value;
        return true;
      }
      if (!may_be_present) return false;
      if (st.p == P::kUnknown) st.p = P::kPresentUnknown;
      return true;
    case OpKind::kRemove:
      if (e.ok) {
        if (!may_be_present) return false;
        st.p = P::kAbsent;
        return true;
      }
      if (!may_be_absent) return false;
      st.p = P::kAbsent;
      return true;
    case OpKind::kUpdate:
      if (e.ok) {
        if (!may_be_present) return false;
        st.p = P::kPresentKnown;
        st.value = e.value;
        return true;
      }
      if (!may_be_absent) return false;
      st.p = P::kAbsent;
      return true;
    case OpKind::kBatchPut:
      // Upsert: afterwards the key is present with the batch's value either
      // way; ok records whether the key was newly inserted.
      if (e.ok ? !may_be_absent : !may_be_present) return false;
      st.p = P::kPresentKnown;
      st.value = e.value;
      return true;
    case OpKind::kBatchRemove:
      if (e.ok ? !may_be_present : !may_be_absent) return false;
      st.p = P::kAbsent;
      return true;
    case OpKind::kTxnBegin:
    case OpKind::kTxnCommit:
    case OpKind::kTxnAbort:
      // Transaction markers carry no per-key effect: a committed txn's reads
      // and writes are decomposed into the per-key events above (sharing the
      // commit interval), and an aborted txn leaves the map untouched.
      return true;
  }
  return false;
}

// A visited configuration: which ops are linearized plus the state they
// produce. Equal configurations always lead to identical sub-searches.
struct Config {
  std::vector<std::uint64_t> linearized;  // bitset, one bit per op
  KeyState state;

  bool operator==(const Config& o) const noexcept {
    return state == o.state && linearized == o.linearized;
  }
};

struct ConfigHash {
  std::size_t operator()(const Config& c) const noexcept {
    std::uint64_t h = 0x2545f4914f6cdd1dULL *
                      (1 + static_cast<std::uint64_t>(c.state.p));
    if (c.state.p == KeyState::P::kPresentKnown) {
      h ^= 0x9e3779b97f4a7c15ULL ^ c.state.value;
    }
    for (std::uint64_t w : c.linearized) {
      h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

inline std::string describe(const Event& e) {
  std::string s = op_kind_name(e.kind);
  s += "(k=" + std::to_string(e.key);
  if (e.kind == OpKind::kInsert || e.kind == OpKind::kUpdate ||
      e.kind == OpKind::kBatchPut) {
    s += ", v=" + std::to_string(e.value);
  }
  s += ") -> ";
  if (e.kind == OpKind::kLookup || e.kind == OpKind::kRangeObserve ||
      e.kind == OpKind::kSnapObserve) {
    s += e.ok ? ("found v=" + std::to_string(e.value)) : "absent";
  } else {
    s += e.ok ? "true" : "false";
  }
  s += " [t" + std::to_string(e.thread) + ", " +
       std::to_string(e.invoke_ts) + ".." + std::to_string(e.response_ts) +
       "]";
  return s;
}

// WGL search over one key's subhistory (ops sorted by invoke_ts).
// Returns kLinearizable / kViolation / kUndecided and advances
// *configs_explored.
inline CheckResult::Verdict check_key(const std::vector<Event>& ops,
                                      const CheckOptions& opt,
                                      std::size_t* configs_explored,
                                      std::string* explanation) {
  const std::size_t n = ops.size();
  const std::size_t words = (n + 63) / 64;

  Config cur;
  cur.linearized.assign(words, 0);
  std::size_t done = 0;

  auto is_set = [&](std::size_t i) {
    return (cur.linearized[i / 64] >> (i % 64)) & 1u;
  };

  // DFS frame: which candidate index we linearized, and the state before.
  struct Frame {
    std::size_t op;
    KeyState prev_state;
  };
  std::vector<Frame> stack;
  stack.reserve(n);
  std::unordered_set<Config, ConfigHash> seen;

  // Find the next linearizable candidate with index >= from: unlinearized,
  // minimal (invoked before every other pending op's response), and whose
  // recorded result is possible in the current state.
  auto next_candidate = [&](std::size_t from) -> std::size_t {
    std::uint64_t min_response = ~std::uint64_t{0};
    for (std::size_t i = 0; i < n; ++i) {
      if (!is_set(i) && ops[i].response_ts < min_response) {
        min_response = ops[i].response_ts;
      }
    }
    for (std::size_t i = from; i < n; ++i) {
      if (is_set(i)) continue;
      if (ops[i].invoke_ts > min_response) break;  // sorted by invoke_ts
      KeyState tmp = cur.state;
      if (apply(ops[i], tmp)) return i;
    }
    return n;
  };

  std::size_t from = 0;
  std::size_t deepest = 0;
  for (;;) {
    if (done == n) return CheckResult::Verdict::kLinearizable;
    if (++*configs_explored > opt.max_configs_per_key) {
      if (explanation) {
        *explanation = "search budget exhausted after " +
                       std::to_string(*configs_explored) + " configurations";
      }
      return CheckResult::Verdict::kUndecided;
    }
    const std::size_t i = next_candidate(from);
    if (i < n) {
      Frame f{i, cur.state};
      apply(ops[i], cur.state);
      cur.linearized[i / 64] |= std::uint64_t{1} << (i % 64);
      ++done;
      if (seen.insert(cur).second) {
        stack.push_back(f);
        deepest = std::max(deepest, done);
        from = 0;
        continue;
      }
      // Already explored this configuration: undo and try the next sibling.
      cur.linearized[i / 64] &= ~(std::uint64_t{1} << (i % 64));
      cur.state = f.prev_state;
      --done;
      from = i + 1;
      continue;
    }
    // No candidate linearizes from here: backtrack.
    if (stack.empty()) {
      if (explanation) {
        // Report the frontier ops that could not be ordered. Re-derive the
        // pending minimal set at the deepest dead end we reached from the
        // root for a readable message.
        *explanation =
            "no linearization order exists (search stuck after " +
            std::to_string(deepest) + "/" + std::to_string(n) +
            " ops); first unresolvable ops:";
        std::size_t listed = 0;
        for (std::size_t j = 0; j < n && listed < 4; ++j) {
          if (!is_set(j)) {
            *explanation += "\n  " + describe(ops[j]);
            ++listed;
          }
        }
      }
      return CheckResult::Verdict::kViolation;
    }
    const Frame f = stack.back();
    stack.pop_back();
    cur.linearized[f.op / 64] &= ~(std::uint64_t{1} << (f.op % 64));
    cur.state = f.prev_state;
    --done;
    from = f.op + 1;
  }
}

}  // namespace detail

// Check a merged history for per-key linearizability against the map
// specification. Events must have response_ts >= invoke_ts; History::load
// and HistoryRecorder both guarantee it.
inline CheckResult check_history(const History& h,
                                 const CheckOptions& opt = {}) {
  CheckResult res;
  res.ops_checked = h.events.size();

  std::unordered_map<std::uint64_t, std::vector<Event>> by_key;
  for (const Event& e : h.events) {
    // Transaction markers are stateless no-ops; folding them into a key's
    // subhistory (they all carry key 0) would only inflate the search.
    if (e.kind == OpKind::kTxnBegin || e.kind == OpKind::kTxnCommit ||
        e.kind == OpKind::kTxnAbort) {
      continue;
    }
    by_key[e.key].push_back(e);
  }

  for (auto& [key, ops] : by_key) {
    ++res.keys_checked;
    // check_key requires invoke_ts order; merged histories already have it,
    // but a loaded (possibly hand-edited) dump may not.
    std::stable_sort(ops.begin(), ops.end(), [](const Event& a,
                                                const Event& b) {
      return a.invoke_ts < b.invoke_ts;
    });
    std::string explanation;
    const auto verdict = detail::check_key(ops, opt, &res.configs_explored,
                                           &explanation);
    if (verdict != CheckResult::Verdict::kLinearizable) {
      res.verdict = verdict;
      res.culprit_key = key;
      res.explanation = "key " + std::to_string(key) + ": " + explanation;
      return res;
    }
  }
  return res;
}

}  // namespace sv::check
