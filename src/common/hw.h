// Hardware-related constants and small helpers.
#pragma once

#include <cstddef>
#include <thread>

namespace sv {

// Destructive interference range. We avoid std::hardware_destructive_
// interference_size because GCC warns that its value is ABI-fragile.
inline constexpr std::size_t kCacheLineSize = 64;

// Pause hint for spin loops.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

inline unsigned hardware_threads() noexcept {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace sv
