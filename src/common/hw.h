// Hardware-related constants and small helpers.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace sv {

// Destructive interference range. We avoid std::hardware_destructive_
// interference_size because GCC warns that its value is ABI-fragile.
inline constexpr std::size_t kCacheLineSize = 64;

// Pause hint for spin loops.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

// Serialized cross-thread timestamp for history recording (src/check/):
// invariant-TSC cycles on x86-64, fenced on both sides so the stamp cannot
// drift into the operation it brackets; steady_clock nanoseconds elsewhere.
// Values are comparable across threads but carry no fixed unit -- only the
// happens-before order of (response, invoke) pairs is consumed.
inline std::uint64_t tsc_now() noexcept {
#if defined(__x86_64__)
  _mm_lfence();
  const std::uint64_t t = __rdtsc();
  _mm_lfence();
  return t;
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

// Read-prefetch hint. Never faults, even on stale or concurrently-retired
// pointers, so it is safe to issue on a speculatively-loaded next/down
// pointer before the seqlock validation that proves the pointer was
// current (src/core/skip_vector.h descent loops).
inline void prefetch_read(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

inline unsigned hardware_threads() noexcept {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace sv
