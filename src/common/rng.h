// Fast, seedable PRNG used by the data structures (height generation) and the
// benchmark harness (key/op streams). xoshiro256** by Blackman & Vigna:
// small state, excellent statistical quality, and much cheaper than
// std::mt19937_64 on the critical path of a microbenchmark.
#pragma once

#include <cstdint>
#include <limits>

namespace sv {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Lemire's multiply-shift rejection-free
  // approximation is fine for benchmark purposes (bias < 2^-64 * bound).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  result_type operator()() noexcept { return next(); }
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace sv
