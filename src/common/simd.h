// Compile-time-dispatched vector kernels for chunk search.
//
// The skip vector's locality argument (flat chunks instead of per-node
// pointer chasing) only pays off if intra-chunk search actually runs at
// memory speed. This header provides the search kernels VectorMap routes
// through:
//
//   sorted chunks    lower_bound / upper_bound  (branchless narrowing + a
//                    vectorized counting scan of the final block)
//   unsorted chunks  find_le / find_ge / find_eq (one linear pass with a
//                    vector best-candidate accumulator instead of the O(T)
//                    scalar compare-and-branch scan -- the Fig. 7b pain
//                    point)
//
// ISA selection is purely compile-time, from feature macros:
//
//   SV_FORCE_SCALAR  -> scalar everywhere (escape hatch; CMake option)
//   __AVX2__         -> AVX2 kernels, u32 and u64
//   __SSE2__         -> SSE2 kernels, u32 only (SSE2 lacks 64-bit compare
//                       and blend; u64 stays scalar)
//   __aarch64__      -> NEON kernels, u32 and u64
//   otherwise        -> scalar
//
// There is no runtime dispatch: the default build (no -march flags on
// x86-64) compiles SSE2 kernels, and -DSV_MARCH_NATIVE=ON opts into the
// host ISA. vectorized_v<K> reports whether the dispatching frontends use
// vector code for key type K in this translation unit; kIsaName names the
// selected tier for reports and logs.
//
// Correctness contract: every kernel is element-exact against the
// sv::simd::scalar:: reference implementations (property-tested in
// tests/simd_test.cc). All kernels read the array exactly as plain memory.
// When the caller scans concurrently-mutated storage (VectorMap under a
// sequence lock), a torn or stale element may be observed; the kernels
// guarantee only that they (a) terminate, (b) touch nothing outside
// [first, first+n), and (c) return either kNpos or an index < n. Deciding
// whether the result is *valid* is the caller's job (seqlock validation --
// see the memory-model note in src/vectormap/vector_map.h).
//
// x86 intrinsics only provide signed comparisons; unsigned order is
// obtained by the usual sign-bias trick (x ^ 0x80..0 maps unsigned order
// onto signed order). NEON has native unsigned compares, so the aarch64
// kernels skip the bias.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#if defined(SV_FORCE_SCALAR)
#define SV_SIMD_ISA_SCALAR 1
#elif defined(__AVX2__)
#define SV_SIMD_ISA_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define SV_SIMD_ISA_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__)
#define SV_SIMD_ISA_NEON 1
#include <arm_neon.h>
#else
#define SV_SIMD_ISA_SCALAR 1
#endif

namespace sv::simd {

// Returned by find_le/find_ge/find_eq when no element qualifies.
inline constexpr std::uint32_t kNpos = 0xFFFFFFFFu;

// Key types the kernels accept at all (scalar included).
template <class K>
inline constexpr bool simd_key_v =
    std::is_same_v<K, std::uint32_t> || std::is_same_v<K, std::uint64_t>;

// Whether the dispatching frontends below use vector code for K under the
// ISA selected in this translation unit.
template <class K>
inline constexpr bool vectorized_v =
#if defined(SV_SIMD_ISA_AVX2) || defined(SV_SIMD_ISA_NEON)
    simd_key_v<K>;
#elif defined(SV_SIMD_ISA_SSE2)
    std::is_same_v<K, std::uint32_t>;
#else
    false;
#endif

inline constexpr const char* kIsaName =
#if defined(SV_SIMD_ISA_AVX2)
    "avx2";
#elif defined(SV_SIMD_ISA_SSE2)
    "sse2";
#elif defined(SV_SIMD_ISA_NEON)
    "neon";
#else
    "scalar";
#endif

// ---- Scalar reference kernels ----------------------------------------------
//
// Always compiled, whatever the ISA: they are the parity oracle for
// tests/simd_test.cc, the tail/fallback path of the vector kernels, and the
// baseline side of the bench/micro_primitives.cc kernel benches.

namespace scalar {

// First index with a[i] >= k (n if none). Branchless narrowing: the probe
// a[lo+half] either moves lo past it or shrinks the half, so the loop runs
// exactly ceil(log2(n+1)) iterations with no mispredicted branch.
template <class K>
inline std::uint32_t lower_bound(const K* a, std::uint32_t n, K k) noexcept {
  std::uint32_t lo = 0;
  std::uint32_t len = n;
  while (len > 0) {
    const std::uint32_t half = len / 2;
    const bool lt = a[lo + half] < k;
    lo = lt ? lo + half + 1 : lo;
    len = lt ? len - half - 1 : half;
  }
  return lo;
}

// First index with a[i] > k (n if none).
template <class K>
inline std::uint32_t upper_bound(const K* a, std::uint32_t n, K k) noexcept {
  std::uint32_t lo = 0;
  std::uint32_t len = n;
  while (len > 0) {
    const std::uint32_t half = len / 2;
    const bool le = a[lo + half] <= k;
    lo = le ? lo + half + 1 : lo;
    len = le ? len - half - 1 : half;
  }
  return lo;
}

// Index of the first element equal to k, kNpos if absent.
template <class K>
inline std::uint32_t find_eq(const K* a, std::uint32_t n, K k) noexcept {
  for (std::uint32_t i = 0; i < n; ++i) {
    if (a[i] == k) return i;
  }
  return kNpos;
}

// Index of the largest element <= k in an unsorted array, kNpos if none.
template <class K>
inline std::uint32_t find_le(const K* a, std::uint32_t n, K k) noexcept {
  std::uint32_t best = kNpos;
  for (std::uint32_t i = 0; i < n; ++i) {
    const K ki = a[i];
    if (ki <= k && (best == kNpos || ki > a[best])) best = i;
  }
  return best;
}

// Index of the smallest element >= k in an unsorted array, kNpos if none.
template <class K>
inline std::uint32_t find_ge(const K* a, std::uint32_t n, K k) noexcept {
  std::uint32_t best = kNpos;
  for (std::uint32_t i = 0; i < n; ++i) {
    const K ki = a[i];
    if (ki >= k && (best == kNpos || ki < a[best])) best = i;
  }
  return best;
}

}  // namespace scalar

// ---- ISA kernels ------------------------------------------------------------
//
// Each tier implements, for its vectorized key types:
//   count_le(a, n, k)   -- |{i : a[i] <= k}| over a *sorted run* (used as the
//                          final block scan of the hybrid binary search; on
//                          a sorted run the count equals upper_bound)
//   count_lt(a, n, k)   -- same with <  (lower_bound)
//   find_eq(a, n, k)    -- first index equal to k (any order)
//   max_le_key / min_ge_key -- best qualifying *key value* of an unsorted
//                          scan (found flag out-param); the caller turns the
//                          winning key back into an index with find_eq.
// The two-pass shape of the unsorted search (value pass + find_eq pass)
// keeps the inner loop free of index bookkeeping; under concurrent
// mutation the second pass can miss the winning value, in which case the
// frontend returns kNpos and the caller's seqlock validation forces a
// retry.

#if defined(SV_SIMD_ISA_AVX2)

namespace detail {

inline constexpr std::uint64_t kBias64 = 0x8000000000000000ull;
inline constexpr std::uint32_t kBias32 = 0x80000000u;

// -- u64 (4 lanes) --

inline __m256i bias64(__m256i v) noexcept {
  return _mm256_xor_si256(v, _mm256_set1_epi64x(static_cast<long long>(kBias64)));
}

inline std::uint32_t count_le(const std::uint64_t* a, std::uint32_t n,
                              std::uint64_t k) noexcept {
  const __m256i vk = _mm256_set1_epi64x(static_cast<long long>(k ^ kBias64));
  std::uint32_t cnt = 0;
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        bias64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    // le = !(v > k): count the gt lanes and subtract.
    const __m256i gt = _mm256_cmpgt_epi64(v, vk);
    cnt += 4u - static_cast<std::uint32_t>(
                    __builtin_popcount(_mm256_movemask_pd(
                        _mm256_castsi256_pd(gt))));
  }
  for (; i < n; ++i) cnt += a[i] <= k ? 1u : 0u;
  return cnt;
}

inline std::uint32_t count_lt(const std::uint64_t* a, std::uint32_t n,
                              std::uint64_t k) noexcept {
  const __m256i vk = _mm256_set1_epi64x(static_cast<long long>(k ^ kBias64));
  std::uint32_t cnt = 0;
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        bias64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    const __m256i lt = _mm256_cmpgt_epi64(vk, v);
    cnt += static_cast<std::uint32_t>(
        __builtin_popcount(_mm256_movemask_pd(_mm256_castsi256_pd(lt))));
  }
  for (; i < n; ++i) cnt += a[i] < k ? 1u : 0u;
  return cnt;
}

inline std::uint32_t find_eq(const std::uint64_t* a, std::uint32_t n,
                             std::uint64_t k) noexcept {
  const __m256i vk = _mm256_set1_epi64x(static_cast<long long>(k));
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const int m = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, vk)));
    if (m != 0) return i + static_cast<std::uint32_t>(__builtin_ctz(m));
  }
  for (; i < n; ++i) {
    if (a[i] == k) return i;
  }
  return kNpos;
}

// Largest key <= k. Lanes that fail the predicate are replaced by the
// biased value of 0 (the smallest biased value), and a separate any-mask
// accumulator disambiguates "no qualifying lane" from "0 was the best
// qualifying key".
inline std::uint64_t max_le_key(const std::uint64_t* a, std::uint32_t n,
                                std::uint64_t k, bool& found) noexcept {
  const __m256i vk = _mm256_set1_epi64x(static_cast<long long>(k ^ kBias64));
  const __m256i sentinel =
      _mm256_set1_epi64x(static_cast<long long>(kBias64));  // biased(0)
  __m256i vbest = sentinel;
  __m256i vany = _mm256_setzero_si256();
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        bias64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    const __m256i gt = _mm256_cmpgt_epi64(v, vk);
    // Qualifying lanes keep their value, others collapse to the sentinel.
    const __m256i cand = _mm256_blendv_epi8(v, sentinel, gt);
    vany = _mm256_or_si256(vany, _mm256_andnot_si256(gt, _mm256_set1_epi8(-1)));
    const __m256i better = _mm256_cmpgt_epi64(cand, vbest);
    vbest = _mm256_blendv_epi8(vbest, cand, better);
  }
  alignas(32) std::uint64_t lanes[4];
  alignas(32) std::uint64_t anys[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vbest);
  _mm256_store_si256(reinterpret_cast<__m256i*>(anys), vany);
  bool have = (anys[0] | anys[1] | anys[2] | anys[3]) != 0;
  // Unbias before the scalar reduce: biased lane values order correctly
  // only under signed comparison. The sentinel unbiases to 0, the
  // identity of unsigned max.
  std::uint64_t best = 0;
  for (const std::uint64_t l : lanes) {
    const std::uint64_t x = l ^ kBias64;
    if (x > best) best = x;
  }
  for (; i < n; ++i) {
    const std::uint64_t ki = a[i];
    if (ki <= k && (!have || ki > best)) {
      best = ki;
      have = true;
    }
  }
  found = have;
  return best;
}

// Smallest key >= k; sentinel is biased(max), mirror of max_le_key.
inline std::uint64_t min_ge_key(const std::uint64_t* a, std::uint32_t n,
                                std::uint64_t k, bool& found) noexcept {
  const __m256i vk = _mm256_set1_epi64x(static_cast<long long>(k ^ kBias64));
  const __m256i sentinel =
      _mm256_set1_epi64x(static_cast<long long>(~kBias64));  // biased(max)
  __m256i vbest = sentinel;
  __m256i vany = _mm256_setzero_si256();
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        bias64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    const __m256i lt = _mm256_cmpgt_epi64(vk, v);
    const __m256i cand = _mm256_blendv_epi8(v, sentinel, lt);
    vany = _mm256_or_si256(vany, _mm256_andnot_si256(lt, _mm256_set1_epi8(-1)));
    const __m256i better = _mm256_cmpgt_epi64(vbest, cand);
    vbest = _mm256_blendv_epi8(vbest, cand, better);
  }
  alignas(32) std::uint64_t lanes[4];
  alignas(32) std::uint64_t anys[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vbest);
  _mm256_store_si256(reinterpret_cast<__m256i*>(anys), vany);
  bool have = (anys[0] | anys[1] | anys[2] | anys[3]) != 0;
  // Unbias before the scalar reduce (see max_le_key); the sentinel
  // unbiases to the all-ones key, the identity of unsigned min.
  std::uint64_t best = ~0ull;
  for (const std::uint64_t l : lanes) {
    const std::uint64_t x = l ^ kBias64;
    if (x < best) best = x;
  }
  for (; i < n; ++i) {
    const std::uint64_t ki = a[i];
    if (ki >= k && (!have || ki < best)) {
      best = ki;
      have = true;
    }
  }
  found = have;
  return best;
}

// -- u32 (8 lanes) --

inline __m256i bias32(__m256i v) noexcept {
  return _mm256_xor_si256(v, _mm256_set1_epi32(static_cast<int>(kBias32)));
}

inline std::uint32_t count_le(const std::uint32_t* a, std::uint32_t n,
                              std::uint32_t k) noexcept {
  const __m256i vk = _mm256_set1_epi32(static_cast<int>(k ^ kBias32));
  std::uint32_t cnt = 0;
  std::uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        bias32(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    const __m256i gt = _mm256_cmpgt_epi32(v, vk);
    cnt += 8u - static_cast<std::uint32_t>(
                    __builtin_popcount(_mm256_movemask_ps(
                        _mm256_castsi256_ps(gt))));
  }
  for (; i < n; ++i) cnt += a[i] <= k ? 1u : 0u;
  return cnt;
}

inline std::uint32_t count_lt(const std::uint32_t* a, std::uint32_t n,
                              std::uint32_t k) noexcept {
  const __m256i vk = _mm256_set1_epi32(static_cast<int>(k ^ kBias32));
  std::uint32_t cnt = 0;
  std::uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        bias32(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    const __m256i lt = _mm256_cmpgt_epi32(vk, v);
    cnt += static_cast<std::uint32_t>(
        __builtin_popcount(_mm256_movemask_ps(_mm256_castsi256_ps(lt))));
  }
  for (; i < n; ++i) cnt += a[i] < k ? 1u : 0u;
  return cnt;
}

inline std::uint32_t find_eq(const std::uint32_t* a, std::uint32_t n,
                             std::uint32_t k) noexcept {
  const __m256i vk = _mm256_set1_epi32(static_cast<int>(k));
  std::uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const int m = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, vk)));
    if (m != 0) return i + static_cast<std::uint32_t>(__builtin_ctz(m));
  }
  for (; i < n; ++i) {
    if (a[i] == k) return i;
  }
  return kNpos;
}

inline std::uint32_t max_le_key(const std::uint32_t* a, std::uint32_t n,
                                std::uint32_t k, bool& found) noexcept {
  const __m256i vk = _mm256_set1_epi32(static_cast<int>(k ^ kBias32));
  const __m256i sentinel = _mm256_set1_epi32(static_cast<int>(kBias32));
  __m256i vbest = sentinel;
  __m256i vany = _mm256_setzero_si256();
  std::uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        bias32(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    const __m256i gt = _mm256_cmpgt_epi32(v, vk);
    const __m256i cand = _mm256_blendv_epi8(v, sentinel, gt);
    vany = _mm256_or_si256(vany, _mm256_andnot_si256(gt, _mm256_set1_epi8(-1)));
    const __m256i better = _mm256_cmpgt_epi32(cand, vbest);
    vbest = _mm256_blendv_epi8(vbest, cand, better);
  }
  alignas(32) std::uint32_t lanes[8];
  alignas(32) std::uint32_t anys[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vbest);
  _mm256_store_si256(reinterpret_cast<__m256i*>(anys), vany);
  std::uint32_t any_acc = 0;
  for (const std::uint32_t x : anys) any_acc |= x;
  bool have = any_acc != 0;
  // Unbias before the scalar reduce (biased values order correctly only
  // under signed comparison); the sentinel unbiases to 0.
  std::uint32_t best = 0;
  for (const std::uint32_t l : lanes) {
    const std::uint32_t x = l ^ kBias32;
    if (x > best) best = x;
  }
  for (; i < n; ++i) {
    const std::uint32_t ki = a[i];
    if (ki <= k && (!have || ki > best)) {
      best = ki;
      have = true;
    }
  }
  found = have;
  return best;
}

inline std::uint32_t min_ge_key(const std::uint32_t* a, std::uint32_t n,
                                std::uint32_t k, bool& found) noexcept {
  const __m256i vk = _mm256_set1_epi32(static_cast<int>(k ^ kBias32));
  const __m256i sentinel = _mm256_set1_epi32(static_cast<int>(~kBias32));
  __m256i vbest = sentinel;
  __m256i vany = _mm256_setzero_si256();
  std::uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        bias32(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    const __m256i lt = _mm256_cmpgt_epi32(vk, v);
    const __m256i cand = _mm256_blendv_epi8(v, sentinel, lt);
    vany = _mm256_or_si256(vany, _mm256_andnot_si256(lt, _mm256_set1_epi8(-1)));
    const __m256i better = _mm256_cmpgt_epi32(vbest, cand);
    vbest = _mm256_blendv_epi8(vbest, cand, better);
  }
  alignas(32) std::uint32_t lanes[8];
  alignas(32) std::uint32_t anys[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vbest);
  _mm256_store_si256(reinterpret_cast<__m256i*>(anys), vany);
  std::uint32_t any_acc = 0;
  for (const std::uint32_t x : anys) any_acc |= x;
  bool have = any_acc != 0;
  // Unbias before the scalar reduce; the sentinel unbiases to all-ones.
  std::uint32_t best = ~0u;
  for (const std::uint32_t l : lanes) {
    const std::uint32_t x = l ^ kBias32;
    if (x < best) best = x;
  }
  for (; i < n; ++i) {
    const std::uint32_t ki = a[i];
    if (ki >= k && (!have || ki < best)) {
      best = ki;
      have = true;
    }
  }
  found = have;
  return best;
}

}  // namespace detail

#elif defined(SV_SIMD_ISA_SSE2)

namespace detail {

inline constexpr std::uint32_t kBias32 = 0x80000000u;

// SSE2 has no blendv; synthesize it from the mask.
inline __m128i blend128(__m128i a, __m128i b, __m128i mask) noexcept {
  return _mm_or_si128(_mm_and_si128(mask, b), _mm_andnot_si128(mask, a));
}

inline __m128i bias32(__m128i v) noexcept {
  return _mm_xor_si128(v, _mm_set1_epi32(static_cast<int>(kBias32)));
}

inline std::uint32_t count_le(const std::uint32_t* a, std::uint32_t n,
                              std::uint32_t k) noexcept {
  const __m128i vk = _mm_set1_epi32(static_cast<int>(k ^ kBias32));
  std::uint32_t cnt = 0;
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v =
        bias32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m128i gt = _mm_cmpgt_epi32(v, vk);
    cnt += 4u - static_cast<std::uint32_t>(
                    __builtin_popcount(_mm_movemask_ps(_mm_castsi128_ps(gt))));
  }
  for (; i < n; ++i) cnt += a[i] <= k ? 1u : 0u;
  return cnt;
}

inline std::uint32_t count_lt(const std::uint32_t* a, std::uint32_t n,
                              std::uint32_t k) noexcept {
  const __m128i vk = _mm_set1_epi32(static_cast<int>(k ^ kBias32));
  std::uint32_t cnt = 0;
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v =
        bias32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m128i lt = _mm_cmpgt_epi32(vk, v);
    cnt += static_cast<std::uint32_t>(
        __builtin_popcount(_mm_movemask_ps(_mm_castsi128_ps(lt))));
  }
  for (; i < n; ++i) cnt += a[i] < k ? 1u : 0u;
  return cnt;
}

inline std::uint32_t find_eq(const std::uint32_t* a, std::uint32_t n,
                             std::uint32_t k) noexcept {
  const __m128i vk = _mm_set1_epi32(static_cast<int>(k));
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const int m = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, vk)));
    if (m != 0) return i + static_cast<std::uint32_t>(__builtin_ctz(m));
  }
  for (; i < n; ++i) {
    if (a[i] == k) return i;
  }
  return kNpos;
}

inline std::uint32_t max_le_key(const std::uint32_t* a, std::uint32_t n,
                                std::uint32_t k, bool& found) noexcept {
  const __m128i vk = _mm_set1_epi32(static_cast<int>(k ^ kBias32));
  const __m128i sentinel = _mm_set1_epi32(static_cast<int>(kBias32));
  __m128i vbest = sentinel;
  __m128i vany = _mm_setzero_si128();
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v =
        bias32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m128i gt = _mm_cmpgt_epi32(v, vk);
    const __m128i cand = blend128(v, sentinel, gt);
    vany = _mm_or_si128(vany, _mm_andnot_si128(gt, _mm_set1_epi8(-1)));
    const __m128i better = _mm_cmpgt_epi32(cand, vbest);
    vbest = blend128(vbest, cand, better);
  }
  alignas(16) std::uint32_t lanes[4];
  alignas(16) std::uint32_t anys[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), vbest);
  _mm_store_si128(reinterpret_cast<__m128i*>(anys), vany);
  bool have = (anys[0] | anys[1] | anys[2] | anys[3]) != 0;
  // Unbias before the scalar reduce (biased values order correctly only
  // under signed comparison); the sentinel unbiases to 0.
  std::uint32_t best = 0;
  for (const std::uint32_t l : lanes) {
    const std::uint32_t x = l ^ kBias32;
    if (x > best) best = x;
  }
  for (; i < n; ++i) {
    const std::uint32_t ki = a[i];
    if (ki <= k && (!have || ki > best)) {
      best = ki;
      have = true;
    }
  }
  found = have;
  return best;
}

inline std::uint32_t min_ge_key(const std::uint32_t* a, std::uint32_t n,
                                std::uint32_t k, bool& found) noexcept {
  const __m128i vk = _mm_set1_epi32(static_cast<int>(k ^ kBias32));
  const __m128i sentinel = _mm_set1_epi32(static_cast<int>(~kBias32));
  __m128i vbest = sentinel;
  __m128i vany = _mm_setzero_si128();
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v =
        bias32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m128i lt = _mm_cmpgt_epi32(vk, v);
    const __m128i cand = blend128(v, sentinel, lt);
    vany = _mm_or_si128(vany, _mm_andnot_si128(lt, _mm_set1_epi8(-1)));
    const __m128i better = _mm_cmpgt_epi32(vbest, cand);
    vbest = blend128(vbest, cand, better);
  }
  alignas(16) std::uint32_t lanes[4];
  alignas(16) std::uint32_t anys[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), vbest);
  _mm_store_si128(reinterpret_cast<__m128i*>(anys), vany);
  bool have = (anys[0] | anys[1] | anys[2] | anys[3]) != 0;
  // Unbias before the scalar reduce; the sentinel unbiases to all-ones.
  std::uint32_t best = ~0u;
  for (const std::uint32_t l : lanes) {
    const std::uint32_t x = l ^ kBias32;
    if (x < best) best = x;
  }
  for (; i < n; ++i) {
    const std::uint32_t ki = a[i];
    if (ki >= k && (!have || ki < best)) {
      best = ki;
      have = true;
    }
  }
  found = have;
  return best;
}

// u64: not vectorized under SSE2 (no 64-bit compare); scalar pass-through so
// the frontends below compile uniformly.
inline std::uint32_t count_le(const std::uint64_t* a, std::uint32_t n,
                              std::uint64_t k) noexcept {
  std::uint32_t cnt = 0;
  for (std::uint32_t i = 0; i < n; ++i) cnt += a[i] <= k ? 1u : 0u;
  return cnt;
}
inline std::uint32_t count_lt(const std::uint64_t* a, std::uint32_t n,
                              std::uint64_t k) noexcept {
  std::uint32_t cnt = 0;
  for (std::uint32_t i = 0; i < n; ++i) cnt += a[i] < k ? 1u : 0u;
  return cnt;
}

}  // namespace detail

#elif defined(SV_SIMD_ISA_NEON)

namespace detail {

// -- u32 (4 lanes; native unsigned compares, no bias needed) --

inline std::uint32_t count_le(const std::uint32_t* a, std::uint32_t n,
                              std::uint32_t k) noexcept {
  const uint32x4_t vk = vdupq_n_u32(k);
  uint32x4_t acc = vdupq_n_u32(0);
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t le = vcleq_u32(vld1q_u32(a + i), vk);
    acc = vaddq_u32(acc, vshrq_n_u32(le, 31));  // each true lane adds 1
  }
  std::uint32_t cnt = vaddvq_u32(acc);
  for (; i < n; ++i) cnt += a[i] <= k ? 1u : 0u;
  return cnt;
}

inline std::uint32_t count_lt(const std::uint32_t* a, std::uint32_t n,
                              std::uint32_t k) noexcept {
  const uint32x4_t vk = vdupq_n_u32(k);
  uint32x4_t acc = vdupq_n_u32(0);
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t lt = vcltq_u32(vld1q_u32(a + i), vk);
    acc = vaddq_u32(acc, vshrq_n_u32(lt, 31));
  }
  std::uint32_t cnt = vaddvq_u32(acc);
  for (; i < n; ++i) cnt += a[i] < k ? 1u : 0u;
  return cnt;
}

inline std::uint32_t find_eq(const std::uint32_t* a, std::uint32_t n,
                             std::uint32_t k) noexcept {
  const uint32x4_t vk = vdupq_n_u32(k);
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t eq = vceqq_u32(vld1q_u32(a + i), vk);
    if (vmaxvq_u32(eq) != 0) {
      alignas(16) std::uint32_t lanes[4];
      vst1q_u32(lanes, eq);
      for (std::uint32_t j = 0; j < 4; ++j) {
        if (lanes[j] != 0) return i + j;
      }
    }
  }
  for (; i < n; ++i) {
    if (a[i] == k) return i;
  }
  return kNpos;
}

inline std::uint32_t max_le_key(const std::uint32_t* a, std::uint32_t n,
                                std::uint32_t k, bool& found) noexcept {
  const uint32x4_t vk = vdupq_n_u32(k);
  uint32x4_t vbest = vdupq_n_u32(0);
  uint32x4_t vany = vdupq_n_u32(0);
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t v = vld1q_u32(a + i);
    const uint32x4_t le = vcleq_u32(v, vk);
    vany = vorrq_u32(vany, le);
    // Failing lanes collapse to 0, the identity of unsigned max.
    vbest = vmaxq_u32(vbest, vandq_u32(v, le));
  }
  bool have = vmaxvq_u32(vany) != 0;
  std::uint32_t best = vmaxvq_u32(vbest);
  for (; i < n; ++i) {
    const std::uint32_t ki = a[i];
    if (ki <= k && (!have || ki > best)) {
      best = ki;
      have = true;
    }
  }
  found = have;
  return best;
}

inline std::uint32_t min_ge_key(const std::uint32_t* a, std::uint32_t n,
                                std::uint32_t k, bool& found) noexcept {
  const uint32x4_t vk = vdupq_n_u32(k);
  uint32x4_t vbest = vdupq_n_u32(0xFFFFFFFFu);
  uint32x4_t vany = vdupq_n_u32(0);
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t v = vld1q_u32(a + i);
    const uint32x4_t ge = vcgeq_u32(v, vk);
    vany = vorrq_u32(vany, ge);
    // Failing lanes collapse to all-ones, the identity of unsigned min.
    vbest = vminq_u32(vbest, vorrq_u32(v, vmvnq_u32(ge)));
  }
  bool have = vmaxvq_u32(vany) != 0;
  std::uint32_t best = vminvq_u32(vbest);
  for (; i < n; ++i) {
    const std::uint32_t ki = a[i];
    if (ki >= k && (!have || ki < best)) {
      best = ki;
      have = true;
    }
  }
  found = have;
  return best;
}

// -- u64 (2 lanes; vcgtq_u64 exists, horizontal ops do not -> extract) --

// arm_neon.h has no 64-bit vector NOT; synthesize from the 32-bit one.
inline uint64x2_t not_u64(uint64x2_t v) noexcept {
  return vreinterpretq_u64_u32(vmvnq_u32(vreinterpretq_u32_u64(v)));
}

inline std::uint32_t count_le(const std::uint64_t* a, std::uint32_t n,
                              std::uint64_t k) noexcept {
  const uint64x2_t vk = vdupq_n_u64(k);
  uint64x2_t acc = vdupq_n_u64(0);
  std::uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t le = vcleq_u64(vld1q_u64(a + i), vk);
    acc = vaddq_u64(acc, vshrq_n_u64(le, 63));
  }
  std::uint32_t cnt = static_cast<std::uint32_t>(vgetq_lane_u64(acc, 0) +
                                                 vgetq_lane_u64(acc, 1));
  for (; i < n; ++i) cnt += a[i] <= k ? 1u : 0u;
  return cnt;
}

inline std::uint32_t count_lt(const std::uint64_t* a, std::uint32_t n,
                              std::uint64_t k) noexcept {
  const uint64x2_t vk = vdupq_n_u64(k);
  uint64x2_t acc = vdupq_n_u64(0);
  std::uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t lt = vcltq_u64(vld1q_u64(a + i), vk);
    acc = vaddq_u64(acc, vshrq_n_u64(lt, 63));
  }
  std::uint32_t cnt = static_cast<std::uint32_t>(vgetq_lane_u64(acc, 0) +
                                                 vgetq_lane_u64(acc, 1));
  for (; i < n; ++i) cnt += a[i] < k ? 1u : 0u;
  return cnt;
}

inline std::uint32_t find_eq(const std::uint64_t* a, std::uint32_t n,
                             std::uint64_t k) noexcept {
  const uint64x2_t vk = vdupq_n_u64(k);
  std::uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t eq = vceqq_u64(vld1q_u64(a + i), vk);
    if (vgetq_lane_u64(eq, 0) != 0) return i;
    if (vgetq_lane_u64(eq, 1) != 0) return i + 1;
  }
  for (; i < n; ++i) {
    if (a[i] == k) return i;
  }
  return kNpos;
}

inline std::uint64_t max_le_key(const std::uint64_t* a, std::uint32_t n,
                                std::uint64_t k, bool& found) noexcept {
  const uint64x2_t vk = vdupq_n_u64(k);
  uint64x2_t vbest = vdupq_n_u64(0);
  uint64x2_t vany = vdupq_n_u64(0);
  std::uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = vld1q_u64(a + i);
    const uint64x2_t le = vcleq_u64(v, vk);
    vany = vorrq_u64(vany, le);
    const uint64x2_t cand = vandq_u64(v, le);
    // No vmaxq_u64: blend with the per-lane gt mask instead.
    vbest = vbslq_u64(vcgtq_u64(cand, vbest), cand, vbest);
  }
  bool have = (vgetq_lane_u64(vany, 0) | vgetq_lane_u64(vany, 1)) != 0;
  const std::uint64_t l0 = vgetq_lane_u64(vbest, 0);
  const std::uint64_t l1 = vgetq_lane_u64(vbest, 1);
  std::uint64_t best = l0 > l1 ? l0 : l1;
  for (; i < n; ++i) {
    const std::uint64_t ki = a[i];
    if (ki <= k && (!have || ki > best)) {
      best = ki;
      have = true;
    }
  }
  found = have;
  return best;
}

inline std::uint64_t min_ge_key(const std::uint64_t* a, std::uint32_t n,
                                std::uint64_t k, bool& found) noexcept {
  const uint64x2_t vk = vdupq_n_u64(k);
  uint64x2_t vbest = vdupq_n_u64(~0ull);
  uint64x2_t vany = vdupq_n_u64(0);
  std::uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = vld1q_u64(a + i);
    const uint64x2_t ge = vcgeq_u64(v, vk);
    vany = vorrq_u64(vany, ge);
    const uint64x2_t cand = vorrq_u64(v, not_u64(ge));
    vbest = vbslq_u64(vcgtq_u64(vbest, cand), cand, vbest);
  }
  bool have = (vgetq_lane_u64(vany, 0) | vgetq_lane_u64(vany, 1)) != 0;
  const std::uint64_t l0 = vgetq_lane_u64(vbest, 0);
  const std::uint64_t l1 = vgetq_lane_u64(vbest, 1);
  std::uint64_t best = l0 < l1 ? l0 : l1;
  for (; i < n; ++i) {
    const std::uint64_t ki = a[i];
    if (ki >= k && (!have || ki < best)) {
      best = ki;
      have = true;
    }
  }
  found = have;
  return best;
}

}  // namespace detail

#else  // scalar tier

namespace detail {

// Never selected (vectorized_v is false for every key type here), but the
// dispatching frontends name these in their discarded constexpr branches,
// so the declarations must exist in every tier.
template <class K>
inline std::uint32_t count_le(const K* a, std::uint32_t n, K k) noexcept {
  std::uint32_t cnt = 0;
  for (std::uint32_t i = 0; i < n; ++i) cnt += a[i] <= k ? 1u : 0u;
  return cnt;
}
template <class K>
inline std::uint32_t count_lt(const K* a, std::uint32_t n, K k) noexcept {
  std::uint32_t cnt = 0;
  for (std::uint32_t i = 0; i < n; ++i) cnt += a[i] < k ? 1u : 0u;
  return cnt;
}
template <class K>
inline std::uint32_t find_eq(const K* a, std::uint32_t n, K k) noexcept {
  return scalar::find_eq(a, n, k);
}
template <class K>
inline K max_le_key(const K* a, std::uint32_t n, K k, bool& found) noexcept {
  const std::uint32_t i = scalar::find_le(a, n, k);
  found = i != kNpos;
  return found ? a[i] : K{};
}
template <class K>
inline K min_ge_key(const K* a, std::uint32_t n, K k, bool& found) noexcept {
  const std::uint32_t i = scalar::find_ge(a, n, k);
  found = i != kNpos;
  return found ? a[i] : K{};
}

}  // namespace detail

#endif  // ISA kernels

// ---- Dispatching frontends --------------------------------------------------

// Below this length the hybrid sorted search switches from branchless binary
// narrowing to a single vectorized counting pass; on a sorted run of <= 64
// elements (<= 8 cache lines of u64) the linear count is cheaper than the
// remaining log2 steps' dependent loads.
inline constexpr std::uint32_t kSortedScanCutoff = 64;

// First index with a[i] >= k in a sorted array, n if none.
template <class K>
inline std::uint32_t lower_bound(const K* a, std::uint32_t n, K k) noexcept {
  static_assert(simd_key_v<K>);
  if constexpr (vectorized_v<K>) {
    std::uint32_t lo = 0;
    std::uint32_t len = n;
    while (len > kSortedScanCutoff) {
      const std::uint32_t half = len / 2;
      const bool le = a[lo + half - 1] < k;
      lo = le ? lo + half : lo;
      len = le ? len - half : half;
    }
    return lo + detail::count_lt(a + lo, len, k);
  } else {
    return scalar::lower_bound(a, n, k);
  }
}

// First index with a[i] > k in a sorted array, n if none.
template <class K>
inline std::uint32_t upper_bound(const K* a, std::uint32_t n, K k) noexcept {
  static_assert(simd_key_v<K>);
  if constexpr (vectorized_v<K>) {
    std::uint32_t lo = 0;
    std::uint32_t len = n;
    while (len > kSortedScanCutoff) {
      const std::uint32_t half = len / 2;
      const bool le = a[lo + half - 1] <= k;
      lo = le ? lo + half : lo;
      len = le ? len - half : half;
    }
    return lo + detail::count_le(a + lo, len, k);
  } else {
    return scalar::upper_bound(a, n, k);
  }
}

// First index with a[i] == k (any order), kNpos if absent.
template <class K>
inline std::uint32_t find_eq(const K* a, std::uint32_t n, K k) noexcept {
  static_assert(simd_key_v<K>);
  if constexpr (vectorized_v<K>) {
    return detail::find_eq(a, n, k);
  } else {
    return scalar::find_eq(a, n, k);
  }
}

// Index of the largest element <= k in an unsorted array, kNpos if none.
// Two passes: a vector max over the qualifying values, then find_eq to
// recover the index. Under concurrent mutation the second pass can miss;
// the result is then kNpos, never a wrong index -- the caller's seqlock
// validation rejects the attempt either way.
template <class K>
inline std::uint32_t find_le(const K* a, std::uint32_t n, K k) noexcept {
  static_assert(simd_key_v<K>);
  if constexpr (vectorized_v<K>) {
    bool found = false;
    const K best = detail::max_le_key(a, n, k, found);
    if (!found) return kNpos;
    return detail::find_eq(a, n, best);
  } else {
    return scalar::find_le(a, n, k);
  }
}

// Index of the smallest element >= k in an unsorted array, kNpos if none.
template <class K>
inline std::uint32_t find_ge(const K* a, std::uint32_t n, K k) noexcept {
  static_assert(simd_key_v<K>);
  if constexpr (vectorized_v<K>) {
    bool found = false;
    const K best = detail::min_ge_key(a, n, k, found);
    if (!found) return kNpos;
    return detail::find_eq(a, n, best);
  } else {
    return scalar::find_ge(a, n, k);
  }
}

}  // namespace sv::simd
