// Zipfian key generator, used by the YCSB-style workload (Fig. 6).
//
// Implements the classic Gray et al. (SIGMOD '94) "quick and portable"
// method, the same one used by YCSB and DBx1000: O(1) per sample after O(n)
// setup of two constants. theta = 0 is uniform; larger theta is more skewed.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/rng.h"

namespace sv {

class ZipfGenerator {
 public:
  // Gray's closed-form inverse is singular at theta == 1 (alpha = 1/(1-theta)
  // divides by zero, and eta's 1-theta exponent makes it NaN-prone as theta
  // approaches 1). Theta within this distance of 1 is treated as the exact
  // harmonic distribution (s = 1) and sampled via the analytic inverse of
  // H_x ~ ln(x) + gamma instead.
  static constexpr double kHarmonicEpsilon = 1e-9;

  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed = 1)
      : n_(n), theta_(theta), rng_(seed),
        harmonic_(std::fabs(theta - 1.0) < kHarmonicEpsilon) {
    zetan_ = zeta(n, theta);
    if (harmonic_) {
      alpha_ = 0.0;
      eta_ = 0.0;
    } else {
      const double zeta2 = zeta(2, theta);
      alpha_ = 1.0 / (1.0 - theta);
      eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
             (1.0 - zeta2 / zetan_);
    }
  }

  // Returns a value in [0, n).
  std::uint64_t next() noexcept {
    if (theta_ == 0.0) return rng_.next_below(n_);
    const double u = rng_.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    if (harmonic_) {
      // Invert the harmonic CDF: find x with H_x ~ uz via
      // H_x ~ ln(x) + gamma, i.e. x ~ exp(uz - gamma). The first two ranks
      // are handled exactly above; the asymptotic inverse is accurate for
      // the tail (relative error < 1/(2x)).
      constexpr double kEulerGamma = 0.57721566490153286;
      const double x = std::exp(uz - kEulerGamma);
      auto rank = static_cast<std::uint64_t>(x);
      if (rank < 2) rank = 2;
      if (rank > n_) rank = n_;
      return rank - 1;
    }
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

  std::uint64_t n() const noexcept { return n_; }
  double theta() const noexcept { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i)
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  Xoshiro256 rng_;
  bool harmonic_;
  double zetan_, alpha_, eta_;
};

}  // namespace sv
