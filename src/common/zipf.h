// Zipfian key generator, used by the YCSB-style workload (Fig. 6).
//
// Implements the classic Gray et al. (SIGMOD '94) "quick and portable"
// method, the same one used by YCSB and DBx1000: O(1) per sample after O(n)
// setup of two constants. theta = 0 is uniform; larger theta is more skewed.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/rng.h"

namespace sv {

class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed = 1)
      : n_(n), theta_(theta), rng_(seed) {
    zetan_ = zeta(n, theta);
    zeta2_ = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  // Returns a value in [0, n).
  std::uint64_t next() noexcept {
    if (theta_ == 0.0) return rng_.next_below(n_);
    const double u = rng_.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

  std::uint64_t n() const noexcept { return n_; }
  double theta() const noexcept { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i)
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  Xoshiro256 rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace sv
