// Self-tuning chunk policy (docs/TUNING.md "Adaptive mode"): a pure
// decision function mapping a chunk's observed access pattern to the layout
// tag and target size its replacement chunks should use.
//
// The skip vector consults decide() only at split/merge/fold time -- the
// points where the freeze bit already rewrites chunks wholesale, so a
// layout conversion or capacity change is free (the rewrite was happening
// anyway). Inputs come from the per-chunk hot counters in the node header
// (NodeBase::hot, maintained only when Config::adaptive is set); outputs
// are clamped so a chunk's target size never leaves [T/2, 2T] of the
// configured base target, keeping the structure within the shape the layer
// math (Config::layers_for) was sized for.
//
// Everything here is deliberately free of map dependencies so the policy
// can be unit-tested with synthetic counter values (tests/adapt_test.cc).
#pragma once

#include <algorithm>
#include <cstdint>

#include "vectormap/layout.h"

namespace sv::core::adapt {

// One decision window's worth of per-chunk evidence. `reads` is scaled to
// op granularity by the caller (the read side samples; see
// SkipVectorMap::kReadSampleShift), `writes`/`retries`/`splits` are exact.
struct Signals {
  std::uint64_t reads = 0;    // data-layer search probes that hit the chunk
  std::uint64_t writes = 0;   // point writes applied under the chunk lock
  std::uint64_t retries = 0;  // seqlock validation failures on the chunk
  std::uint64_t splits = 0;   // capacity splits since the last decision
};

// Hysteresis knobs. Defaults are intentionally sluggish: a chunk must show
// clear, sustained evidence before its replacements change shape, because
// a wrong flip costs an O(T) rewrite at the *next* structural op to undo.
struct Policy {
  // Ignore windows with fewer than this many total samples: fresh or cold
  // chunks keep their current shape.
  std::uint64_t min_samples = 64;
  // Flip the layout only when one side outnumbers the other by this
  // factor; anything closer to balanced holds the current tag.
  std::uint64_t flip_ratio = 4;
  // Grow the target (halve split cadence) once a chunk has split this many
  // times in one window while staying write-dominated.
  std::uint64_t grow_splits = 2;
  // Shrink the target (shrink each seqlock's blast radius) once readers
  // lost this many validations in one window.
  std::uint64_t shrink_retries = 32;
  // Contention gate for the unsorted flip: require at least one retry per
  // this many writes before write dominance flips a chunk unsorted. The
  // unsorted layout's payoff is a shorter seqlock write section (no O(T)
  // shift while readers spin and writers collide) -- uncontended writes do
  // not collect that payoff, and on few cores the sorted shift is the
  // cheaper point write outright (docs/REPRODUCING.md fig. 7b note). 0
  // disables the gate: any sustained write skew flips.
  std::uint64_t contended_writes_per_retry = 16;
};

struct Decision {
  vectormap::Layout layout;
  std::uint32_t target;

  bool operator==(const Decision& o) const noexcept {
    return layout == o.layout && target == o.target;
  }
};

// The decision: read-dominated chunks come back sorted (binary search /
// cheap ordered scans), write-dominated AND contended ones unsorted
// (short O(1) write sections); sustained split cadence under write
// pressure grows the target, heavy seqlock-retry pressure shrinks it.
// Always clamped to [base/2, 2*base].
inline Decision decide(const Signals& s, vectormap::Layout current,
                       std::uint32_t current_target,
                       std::uint32_t base_target,
                       const Policy& p = Policy{}) noexcept {
  Decision d{current, current_target};
  if (s.reads + s.writes < p.min_samples) return d;  // hysteresis: hold

  if (s.reads >= p.flip_ratio * std::max<std::uint64_t>(1, s.writes)) {
    d.layout = vectormap::Layout::kSorted;
  } else if (s.writes >=
                 p.flip_ratio * std::max<std::uint64_t>(1, s.reads) &&
             (p.contended_writes_per_retry == 0 ||
              s.retries * p.contended_writes_per_retry >= s.writes)) {
    d.layout = vectormap::Layout::kUnsorted;
  }

  const std::uint64_t lo = std::max<std::uint32_t>(1, base_target / 2);
  const std::uint64_t hi = std::uint64_t{2} * base_target;
  std::uint64_t t = current_target;
  if (s.splits >= p.grow_splits && s.writes > s.reads) {
    t *= 2;
  } else if (s.retries >= p.shrink_retries) {
    t /= 2;
  }
  d.target = static_cast<std::uint32_t>(std::clamp(t, lo, hi));
  return d;
}

}  // namespace sv::core::adapt
