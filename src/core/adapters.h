// Adapters layering the paper's §I motivating abstractions over the skip
// vector: an ordered set, a concurrent priority queue (skip lists are a
// standard substrate for both [4], [5]), and a history-recording wrapper
// feeding the linearizability checker in src/check/.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "check/history.h"
#include "core/skip_vector.h"
#include "txn/txn.h"

namespace sv::core {

// RecordingMap: wraps any map exposing (a subset of) the common map API --
// insert/remove/update/lookup/range_for_each -- and records every completed
// operation into a check::HistoryRecorder for post-run linearizability
// checking (src/check/wgl.h). One adapter serves every implementation:
// SkipVectorMap with any reclaimer, ShardedSkipVector, and the baselines.
// Member templates instantiate lazily, so wrapping a map without e.g.
// update() is fine as long as update() is never called.
//
// Range scans are recorded as one kRangeObserve event per mapping returned,
// all sharing the scan's invoke/response interval (per-key decomposition --
// cross-key scan atomicity is covered by tests/range_scan_stress_test.cc,
// not by the checker; see docs/LINEARIZABILITY.md).
//
// Pass recorder == nullptr to disable recording entirely; the wrapper then
// only forwards, which is how the recorder's overhead is measured
// (tools/opfuzz --lincheck --measure-overhead).
template <class Inner, class K = std::uint64_t, class V = std::uint64_t>
class RecordingMap {
 public:
  template <class... Args>
  explicit RecordingMap(check::HistoryRecorder* recorder, Args&&... args)
      : recorder_(recorder), inner_(std::forward<Args>(args)...) {}

  Inner& inner() noexcept { return inner_; }
  const Inner& inner() const noexcept { return inner_; }

  bool insert(K k, V v) {
    if (recorder_ == nullptr) return inner_.insert(k, v);
    auto& log = recorder_->thread_log();
    const std::uint64_t t0 = tsc_now();
    const bool ok = inner_.insert(k, v);
    const std::uint64_t t1 = tsc_now();
    log.record(check::OpKind::kInsert, k, v, ok, t0, t1);
    return ok;
  }

  bool remove(K k) {
    if (recorder_ == nullptr) return inner_.remove(k);
    auto& log = recorder_->thread_log();
    const std::uint64_t t0 = tsc_now();
    const bool ok = inner_.remove(k);
    const std::uint64_t t1 = tsc_now();
    log.record(check::OpKind::kRemove, k, 0, ok, t0, t1);
    return ok;
  }

  bool update(K k, V v) {
    if (recorder_ == nullptr) return inner_.update(k, v);
    auto& log = recorder_->thread_log();
    const std::uint64_t t0 = tsc_now();
    const bool ok = inner_.update(k, v);
    const std::uint64_t t1 = tsc_now();
    log.record(check::OpKind::kUpdate, k, v, ok, t0, t1);
    return ok;
  }

  std::optional<V> lookup(K k) {
    if (recorder_ == nullptr) return inner_.lookup(k);
    auto& log = recorder_->thread_log();
    const std::uint64_t t0 = tsc_now();
    const std::optional<V> got = inner_.lookup(k);
    const std::uint64_t t1 = tsc_now();
    log.record(check::OpKind::kLookup, k, got ? *got : 0, got.has_value(), t0,
               t1);
    return got;
  }

  template <class Fn>
  std::size_t range_for_each(K lo, K hi, Fn&& fn) {
    if (recorder_ == nullptr) return inner_.range_for_each(lo, hi, fn);
    auto& log = recorder_->thread_log();
    std::vector<std::pair<K, V>> observed;  // per-call: adapter is shared
    const std::uint64_t t0 = tsc_now();
    const std::size_t n = inner_.range_for_each(lo, hi, [&](K k, V v) {
      observed.emplace_back(k, v);
      fn(k, v);
    });
    const std::uint64_t t1 = tsc_now();
    for (const auto& [k, v] : observed) {
      log.record(check::OpKind::kRangeObserve, k, v, /*ok=*/true, t0, t1);
    }
    return n;
  }

  // Atomic batch (apply_batch): each op of a committed batch is recorded as
  // one kBatchPut/kBatchRemove event sharing the batch's invoke/response
  // interval -- the checker then demands a single point where every per-key
  // transition is simultaneously legal, which is exactly batch atomicity
  // projected per key. Templated on the op type so the adapter still wraps
  // inner maps without a batch API (only instantiated on use).
  template <class Op>
  std::size_t apply_batch(std::vector<Op>& ops) {
    if (recorder_ == nullptr) return inner_.apply_batch(ops);
    auto& log = recorder_->thread_log();
    const std::uint64_t t0 = tsc_now();
    const std::size_t n = inner_.apply_batch(ops);
    const std::uint64_t t1 = tsc_now();
    for (const auto& op : ops) {
      const bool put = op.kind == mvcc::BatchOpKind::kPut;
      log.record(put ? check::OpKind::kBatchPut : check::OpKind::kBatchRemove,
                 op.key, put ? op.value : 0, op.applied, t0, t1);
    }
    return n;
  }

  // Transaction (sv::txn): runs `body(txn)` to completion like txn::run,
  // recording each committed transaction as one kTxnCommit marker plus its
  // per-key decomposition -- one kLookup per validated read and one
  // kBatchPut/kBatchRemove per applied write, all sharing the commit's
  // invoke/response interval. The checker then demands a single point where
  // every read observation and write transition is simultaneously legal:
  // exactly the one-linearization-point-per-committed-transaction guarantee
  // serializable commits make. Conflicted or user-aborted attempts emit
  // only a kTxnAbort marker (aborts are undo-free, invisible to the map).
  template <class Body>
  bool run_txn(Body&& body, const txn::RetryPolicy& policy = {}) {
    if (recorder_ == nullptr) {
      return txn::run(inner_, std::forward<Body>(body), policy);
    }
    auto& log = recorder_->thread_log();
    sync::Backoff backoff(policy.max_spins);
    for (std::uint32_t attempt = 0;; ++attempt) {
      txn::Txn<Inner> t(inner_);
      const std::uint64_t tb = tsc_now();
      log.record(check::OpKind::kTxnBegin, 0, 0, true, tb, tb);
      if (!body(t)) {
        const std::uint64_t ta = tsc_now();
        log.record(check::OpKind::kTxnAbort, 0, 0, true, ta, ta);
        return false;
      }
      const std::uint64_t t0 = tsc_now();
      const bool committed = t.commit() == txn::TxnResult::kCommitted;
      const std::uint64_t t1 = tsc_now();
      if (committed) {
        for (const auto& r : t.reads()) {
          log.record(check::OpKind::kLookup, r.key, r.present ? r.value : 0,
                     r.present, t0, t1);
        }
        for (const auto& w : t.writes()) {
          const bool put = w.kind == mvcc::BatchOpKind::kPut;
          log.record(
              put ? check::OpKind::kBatchPut : check::OpKind::kBatchRemove,
              w.key, put ? w.value : 0, w.applied, t0, t1);
        }
        log.record(check::OpKind::kTxnCommit, 0, 0, true, t0, t1);
        return true;
      }
      log.record(check::OpKind::kTxnAbort, 0, 0, true, t0, t1);
      if (policy.max_attempts != 0 && attempt + 1 >= policy.max_attempts) {
        return false;
      }
      backoff.pause();
    }
  }

  // Versioned snapshot scan: one kSnapObserve per mapping returned, all
  // sharing the scan's interval (per-key decomposition, like ranges).
  template <class Fn>
  std::size_t snapshot_range(K lo, K hi, Fn&& fn) {
    if (recorder_ == nullptr) {
      auto view = inner_.snapshot_at();
      return inner_.range_for_each_at(view, lo, hi, fn);
    }
    auto& log = recorder_->thread_log();
    std::vector<std::pair<K, V>> observed;
    const std::uint64_t t0 = tsc_now();
    auto view = inner_.snapshot_at();
    const std::size_t n = inner_.range_for_each_at(view, lo, hi, [&](K k, V v) {
      observed.emplace_back(k, v);
      fn(k, v);
    });
    const std::uint64_t t1 = tsc_now();
    for (const auto& [k, v] : observed) {
      log.record(check::OpKind::kSnapObserve, k, v, /*ok=*/true, t0, t1);
    }
    return n;
  }

  std::size_t size_approx() const { return inner_.size_approx(); }

  bool validate(std::string* err = nullptr) const {
    return inner_.validate(err);
  }

 private:
  check::HistoryRecorder* recorder_;
  Inner inner_;
};

// Ordered set of keys.
template <class K, class Reclaimer = reclaim::HazardReclaimer,
          class Alloc = alloc::MallocNodeAllocator>
class SkipVectorSet {
 public:
  explicit SkipVectorSet(Config config = Config{}) : map_(config) {}

  bool add(K k) { return map_.insert(k, 0); }
  bool erase(K k) { return map_.remove(k); }
  bool contains(K k) { return map_.lookup(k).has_value(); }
  std::size_t size_approx() const { return map_.size_approx(); }

  std::optional<K> first() {
    auto e = map_.first();
    if (!e) return std::nullopt;
    return e->first;
  }
  std::optional<K> last() {
    auto e = map_.last();
    if (!e) return std::nullopt;
    return e->first;
  }

  // Keys in [lo, hi], ascending, linearizable.
  template <class Fn>
  std::size_t range_for_each(K lo, K hi, Fn&& fn) {
    return map_.range_for_each(lo, hi, [&](K k, std::uint8_t) { fn(k); });
  }

  template <class Fn>
  void for_each(Fn&& fn) const {  // quiescent
    map_.for_each([&](K k, std::uint8_t) { fn(k); });
  }

  bool validate(std::string* err = nullptr) const {
    return map_.validate(err);
  }

 private:
  SkipVectorMap<K, std::uint8_t, Reclaimer, Alloc> map_;
};

// Concurrent priority queue (min-queue over keys).
//
// pop_min() is linearizable with respect to concurrent pops: each element
// is claimed by exactly one popper (the successful remove). Like the
// skip-list priority queues the paper cites, an element inserted
// concurrently with a pop may or may not be observed by it; pops never
// return elements out of thin air and never lose elements.
template <class K, class V, class Reclaimer = reclaim::HazardReclaimer,
          class Alloc = alloc::MallocNodeAllocator>
class SkipVectorPriorityQueue {
 public:
  explicit SkipVectorPriorityQueue(Config config = Config{}) : map_(config) {}

  // False if the priority is already present (priorities are unique keys;
  // callers needing duplicates should pack a sequence number into the key).
  bool push(K priority, V v) { return map_.insert(priority, v); }

  // Remove and return the smallest element, or nullopt if empty.
  std::optional<std::pair<K, V>> pop_min() {
    for (;;) {
      auto e = map_.first();
      if (!e) return std::nullopt;
      if (map_.remove(e->first)) return std::make_pair(e->first, e->second);
      // Someone else claimed it; retry from the new minimum.
    }
  }

  std::optional<std::pair<K, V>> peek_min() {
    auto e = map_.first();
    if (!e) return std::nullopt;
    return std::make_pair(e->first, e->second);
  }

  std::size_t size_approx() const { return map_.size_approx(); }

  bool validate(std::string* err = nullptr) const {
    return map_.validate(err);
  }

 private:
  SkipVectorMap<K, V, Reclaimer, Alloc> map_;
};

}  // namespace sv::core
