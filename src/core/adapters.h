// Adapters layering the paper's §I motivating abstractions over the skip
// vector: an ordered set and a concurrent priority queue (skip lists are a
// standard substrate for both [4], [5]).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "core/skip_vector.h"

namespace sv::core {

// Ordered set of keys.
template <class K, class Reclaimer = reclaim::HazardReclaimer>
class SkipVectorSet {
 public:
  explicit SkipVectorSet(Config config = Config{}) : map_(config) {}

  bool add(K k) { return map_.insert(k, 0); }
  bool erase(K k) { return map_.remove(k); }
  bool contains(K k) { return map_.lookup(k).has_value(); }
  std::size_t size_approx() const { return map_.size_approx(); }

  std::optional<K> first() {
    auto e = map_.first();
    if (!e) return std::nullopt;
    return e->first;
  }
  std::optional<K> last() {
    auto e = map_.last();
    if (!e) return std::nullopt;
    return e->first;
  }

  // Keys in [lo, hi], ascending, linearizable.
  template <class Fn>
  std::size_t range_for_each(K lo, K hi, Fn&& fn) {
    return map_.range_for_each(lo, hi, [&](K k, std::uint8_t) { fn(k); });
  }

  template <class Fn>
  void for_each(Fn&& fn) const {  // quiescent
    map_.for_each([&](K k, std::uint8_t) { fn(k); });
  }

  bool validate(std::string* err = nullptr) const {
    return map_.validate(err);
  }

 private:
  SkipVectorMap<K, std::uint8_t, Reclaimer> map_;
};

// Concurrent priority queue (min-queue over keys).
//
// pop_min() is linearizable with respect to concurrent pops: each element
// is claimed by exactly one popper (the successful remove). Like the
// skip-list priority queues the paper cites, an element inserted
// concurrently with a pop may or may not be observed by it; pops never
// return elements out of thin air and never lose elements.
template <class K, class V, class Reclaimer = reclaim::HazardReclaimer>
class SkipVectorPriorityQueue {
 public:
  explicit SkipVectorPriorityQueue(Config config = Config{}) : map_(config) {}

  // False if the priority is already present (priorities are unique keys;
  // callers needing duplicates should pack a sequence number into the key).
  bool push(K priority, V v) { return map_.insert(priority, v); }

  // Remove and return the smallest element, or nullopt if empty.
  std::optional<std::pair<K, V>> pop_min() {
    for (;;) {
      auto e = map_.first();
      if (!e) return std::nullopt;
      if (map_.remove(e->first)) return std::make_pair(e->first, e->second);
      // Someone else claimed it; retry from the new minimum.
    }
  }

  std::optional<std::pair<K, V>> peek_min() {
    auto e = map_.first();
    if (!e) return std::nullopt;
    return std::make_pair(e->first, e->second);
  }

  std::size_t size_approx() const { return map_.size_approx(); }

  bool validate(std::string* err = nullptr) const {
    return map_.validate(err);
  }

 private:
  SkipVectorMap<K, V, Reclaimer> map_;
};

}  // namespace sv::core
