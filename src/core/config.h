// Tunable parameters of the skip vector (Listing 1 / §V-B).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/adapt.h"
#include "vectormap/layout.h"

namespace sv::core {

struct Config {
  // Total number of layers including the data layer (layer 0). The paper's
  // general-purpose default is 6 (suitable for ~2^30 elements at T=32).
  std::uint32_t layer_count = 6;

  // targetDataVectorSize (T_D) and targetIndexVectorSize (T_I). A chunk's
  // capacity is 2*T; nodes split when they would exceed capacity.
  std::uint32_t target_data_vector_size = 32;
  std::uint32_t target_index_vector_size = 32;

  // mergeThreshold = factor * targetSize (per layer kind). An orphan is
  // merged into its predecessor by a mutator when the combined size is below
  // this. Paper default: 1.67.
  double merge_threshold_factor = 1.67;

  // Seed for the per-thread height generators.
  std::uint64_t seed = 0xC0FFEE;

  // Slot count for the optional hash sidecar (docs/HASH_INDEX.md). 0
  // selects the policy default (64Ki slots = 512 KiB); any other value
  // must be a power of two in [kMinHashSlots, kMaxHashSlots] -- validate()
  // rejects everything else, since a silently-rounded or absurd table size
  // defeats the "sized like a cache" contract. Inert unless the map is
  // instantiated with HashIndex = hashidx::HashChunkIndex. Sized like a
  // cache: ~2x the expected live keys keeps the hit rate high; an
  // undersized table degrades hit rate (slot stealing), never correctness.
  std::size_t hash_index_slots = 0;

  // Initial chunk layouts (Fig. 7b): every new index/data chunk starts
  // with this tag. The paper's best static choice -- binary-searchable
  // index chunks, O(1)-write data chunks -- is the default. With
  // `adaptive` set, data chunks may be retagged at split/merge time.
  vectormap::Layout index_layout = vectormap::Layout::kSorted;
  vectormap::Layout data_layout = vectormap::Layout::kUnsorted;

  // Per-chunk self-tuning (docs/TUNING.md "Adaptive mode"): when true,
  // data chunks carry hot counters and the adapt::decide() policy
  // (src/core/adapt.h) retunes layout and target size at split/merge
  // time. When false (default), chunks keep the static layouts above and
  // pay no counter traffic.
  bool adaptive = false;

  // Hysteresis/contention knobs for the adaptive policy (only consulted
  // when `adaptive` is set). The defaults are the conservative shipped
  // policy; tests and experiments override individual fields (e.g.
  // `contended_writes_per_retry = 0` makes the unsorted flip purely
  // write-skew-driven, with no contention evidence required).
  adapt::Policy adapt_policy{};

  static constexpr std::uint32_t kMaxLayers = 32;
  static constexpr std::size_t kMinHashSlots = 64;
  static constexpr std::size_t kMaxHashSlots = std::size_t{1} << 26;

  void validate() const {
    if (layer_count < 1 || layer_count > kMaxLayers)
      throw std::invalid_argument("layer_count must be in [1, 32]");
    if (target_data_vector_size < 1 || target_index_vector_size < 1)
      throw std::invalid_argument("target vector sizes must be >= 1");
    if (target_data_vector_size > 4096 || target_index_vector_size > 4096)
      throw std::invalid_argument("target vector sizes must be <= 4096");
    if (merge_threshold_factor < 0)
      throw std::invalid_argument("merge_threshold_factor must be >= 0");
    if (hash_index_slots != 0) {
      if (hash_index_slots < kMinHashSlots ||
          hash_index_slots > kMaxHashSlots)
        throw std::invalid_argument(
            "hash_index_slots must be 0 (policy default) or in [64, 2^26]");
      if ((hash_index_slots & (hash_index_slots - 1)) != 0)
        throw std::invalid_argument(
            "hash_index_slots must be a power of two (the table masks, "
            "it does not round)");
    }
    if (adaptive && adapt_policy.flip_ratio < 1)
      throw std::invalid_argument(
          "adapt_policy.flip_ratio must be >= 1 when adaptive is set");
  }

  std::uint32_t data_capacity() const { return 2 * target_data_vector_size; }
  std::uint32_t index_capacity() const { return 2 * target_index_vector_size; }

  std::uint32_t merge_threshold_data() const {
    return static_cast<std::uint32_t>(
        std::lround(merge_threshold_factor * target_data_vector_size));
  }
  std::uint32_t merge_threshold_index() const {
    return static_cast<std::uint32_t>(
        std::lround(merge_threshold_factor * target_index_vector_size));
  }

  // Smallest layer count preserving the O(log n) guarantee for an expected
  // number of elements (§IV-B: log_T(n) layers), as Fig. 7a's sweep adjusts.
  static std::uint32_t layers_for(std::uint64_t expected_elements,
                                  std::uint32_t target_index_size,
                                  std::uint32_t target_data_size) {
    const double t_i = target_index_size > 1 ? target_index_size : 2;
    const double t_d = target_data_size > 1 ? target_data_size : 2;
    double remaining = static_cast<double>(
        expected_elements > 1 ? expected_elements : 2);
    remaining /= t_d;  // the data layer absorbs a factor of T_D
    std::uint32_t layers = 1;
    while (remaining > 1.0 && layers < kMaxLayers) {
      remaining /= t_i;
      ++layers;
    }
    return layers;
  }

  // Config sized for an expected number of elements.
  static Config for_elements(std::uint64_t n, std::uint32_t t_index = 32,
                             std::uint32_t t_data = 32) {
    Config c;
    c.target_index_vector_size = t_index;
    c.target_data_vector_size = t_data;
    c.layer_count = layers_for(n, t_index, t_data);
    // Size the (optional) hash sidecar at ~2x the expected live keys,
    // capped at 4Mi slots (32 MiB); beyond the cap hit rate degrades
    // gracefully via slot stealing.
    std::size_t slots = 1024;
    while (slots < 2 * n && slots < (std::size_t{1} << 22)) slots <<= 1;
    c.hash_index_slots = slots;
    return c;
  }

  // The paper's USL stand-in: remove index-layer chunking (T_I = 1).
  static Config usl_for_elements(std::uint64_t n) {
    Config c = for_elements(n, /*t_index=*/1, /*t_data=*/32);
    return c;
  }

  // The paper's SL stand-in: no chunking at all (classic skip list shape).
  static Config sl_for_elements(std::uint64_t n) {
    Config c = for_elements(n, /*t_index=*/1, /*t_data=*/1);
    return c;
  }

  std::string to_string() const {
    return "Config{layers=" + std::to_string(layer_count) +
           ", T_D=" + std::to_string(target_data_vector_size) +
           ", T_I=" + std::to_string(target_index_vector_size) +
           ", mergeFactor=" + std::to_string(merge_threshold_factor) +
           ", layouts=" + vectormap::layout_name(index_layout) + "/" +
           vectormap::layout_name(data_layout) +
           (adaptive ? ", adaptive" : "") + "}";
  }
};

}  // namespace sv::core
