// Hash sidecar for SkipVectorMap point operations (ROADMAP open item #1,
// Skip Hash direction -- arXiv:2410.07466).
//
// The sidecar is a fixed-capacity open-addressing *hint cache* mapping key ->
// data-chunk pointer. Point operations probe it before descending the tower:
// a correct hint turns the O(log n) descent into one protected chunk read; a
// wrong or missing hint costs one wasted probe and falls back to the normal
// descent. The table is advisory by construction -- it can never be used to
// conclude a key is ABSENT, only to propose a candidate chunk whose contents
// are then read under the chunk's sequence lock -- so a stale entry is a
// performance bug at worst, never a correctness bug.
//
// Entry format: one std::atomic<uint64_t> packing a 16-bit key fingerprint
// (bits 63..48, from an independent mix of the key) over a 48-bit data-chunk
// pointer (bits 47..0; x86-64/AArch64 user-space pointers fit). Packing both
// halves into a single word makes entries untearable: an entry always pairs
// THE fingerprint that was published with THE pointer it was published for,
// which the invalidation protocol below depends on. Zero means empty.
//
// Buckets are 8 entries = one 64-byte cache line; a probe touches exactly one
// line. The table never resizes and never tombstones: collisions beyond the
// bucket steal a pseudo-random victim slot. Lost entries are repaired lazily
// by the map's lookup-repair path.
//
// Safety protocol (docs/HASH_INDEX.md has the full memory-model argument):
//
//   PUBLISH  put()/repoint() store a chunk pointer only while the caller
//            holds a lock that pins the chunk into the structure (the
//            chunk's own write lock, or its left neighbor's -- merging a
//            chunk requires upgrading both). Keys published are keys present
//            in the chunk at publish time.
//   FIX      Every site where a key leaves a chunk (erase, batch remove,
//            split steal, merge drain) fixes the key's entry under the same
//            locks: erase() it or repoint() it to the key's new chunk.
//            Consequently every table entry pointing at chunk C carries the
//            fingerprint of a key currently in C.
//   INVALIDATE  Before a merged-away chunk is retired, the merging thread
//            repoints every entry for the victim's keys (enumerated BEFORE
//            the drain) to the surviving left chunk. By FIX, that clears
//            every entry pointing at the victim; retire() is called only
//            after.
//   PROBE    Readers load an entry, hazard-protect the pointer, then re-load
//            and demand the identical word (reconfirm). Seeing the entry
//            again after the protect proves INVALIDATE had not completed,
//            hence retire() had not been called, hence the hazard scan's
//            seq_cst fence pairs with the protect fence and the chunk cannot
//            be freed while protected. Under epoch reclamation the re-read
//            is redundant (the op's epoch pin already blocks the free) but
//            harmless. The chunk is then read under its sequence lock and
//            the result only trusted if validate() passes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

namespace sv::core::hashidx {

// Default policy: no sidecar. Zero-size table, all operations compile to
// nothing; SkipVectorMap guards every call site with
// `if constexpr (HashIndex::kEnabled)` so the disabled configuration is
// byte-for-byte the pre-sidecar map.
struct NoIndex {
  static constexpr bool kEnabled = false;

  template <class K>
  struct Table {
    explicit Table(std::size_t /*slots*/) noexcept {}
    void* get(K) const noexcept { return nullptr; }
    bool reconfirm(K, void*) const noexcept { return false; }
    void put(K, void*) noexcept {}
    void erase(K, void*) noexcept {}
    void repoint(K, void*, void*) noexcept {}
    void drop(K, void*) noexcept {}
    void reset() noexcept {}
    std::size_t slot_count() const noexcept { return 0; }
  };
};

// Enabled policy: the open-addressing hint cache described above.
struct HashChunkIndex {
  static constexpr bool kEnabled = true;

  template <class K>
  class Table {
    static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                  "HashChunkIndex requires an integral or enum key type");
    static_assert(sizeof(K) <= 8,
                  "HashChunkIndex requires keys of at most 8 bytes");
    static_assert(sizeof(void*) == 8,
                  "HashChunkIndex packs 48-bit pointers; 64-bit only");

   public:
    // `slots` is rounded up to a power of two and a floor of one bucket.
    // 0 selects the default (64Ki slots = 512 KiB).
    explicit Table(std::size_t slots) {
      if (slots == 0) slots = kDefaultSlots;
      std::size_t buckets = 1;
      while (buckets * kWays < slots && buckets < (std::size_t{1} << 40)) {
        buckets <<= 1;
      }
      bucket_mask_ = buckets - 1;
      buckets_ = std::make_unique<Bucket[]>(buckets);
    }

    // Candidate chunk for k, or nullptr. Advisory: absence concludes
    // nothing, and the pointer must not be dereferenced until protected and
    // reconfirmed.
    void* get(K k) const noexcept {
      const std::uint64_t h = mix(key_bits(k));
      const Bucket& b = buckets_[h & bucket_mask_];
      const std::uint64_t fp = fingerprint(h);
      for (std::size_t i = 0; i < kWays; ++i) {
        const std::uint64_t e = b.w[i].load(std::memory_order_acquire);
        if (e != 0 && (e & kFpMask) == fp) {
          return reinterpret_cast<void*>(e & kPtrMask);
        }
      }
      return nullptr;
    }

    // True iff the exact entry (fingerprint(k), p) is present NOW. Called
    // after hazard-protecting p; see PROBE above.
    bool reconfirm(K k, void* p) const noexcept {
      const std::uint64_t h = mix(key_bits(k));
      const Bucket& b = buckets_[h & bucket_mask_];
      const std::uint64_t want =
          fingerprint(h) | reinterpret_cast<std::uintptr_t>(p);
      for (std::size_t i = 0; i < kWays; ++i) {
        if (b.w[i].load(std::memory_order_acquire) == want) return true;
      }
      return false;
    }

    // Publish k -> chunk. Caller must hold a lock pinning `chunk` (see
    // PUBLISH above). Prefers the slot already carrying k's fingerprint,
    // then the first empty slot, then steals a deterministic victim.
    //
    // The store-then-sweep shape and the seq_cst ordering are load-bearing:
    // the FIX/INVALIDATE protocol can only find an entry by its exact
    // (fingerprint, pointer) word, so a fingerprint must never end up with
    // two live entries carrying different pointers -- the loser would
    // dangle past its chunk's retirement. Each put stores its word, then
    // clears every OTHER same-fingerprint slot. Two racing puts of
    // colliding keys are ordered by the seq_cst total order: the later
    // store's sweep observes the earlier store, so at most one
    // same-fingerprint entry survives both sweeps (possibly zero -- a lost
    // hint is safe).
    void put(K k, void* chunk) noexcept {
      const std::uintptr_t raw = reinterpret_cast<std::uintptr_t>(chunk);
      if (raw == 0 || (raw & kFpMask) != 0) return;  // unpackable: skip
      const std::uint64_t h = mix(key_bits(k));
      Bucket& b = buckets_[h & bucket_mask_];
      const std::uint64_t fp = fingerprint(h);
      const std::uint64_t word = fp | raw;
      std::size_t chosen = kWays;
      std::size_t empty = kWays;
      for (std::size_t i = 0; i < kWays; ++i) {
        const std::uint64_t e = b.w[i].load(std::memory_order_seq_cst);
        if (e != 0 && (e & kFpMask) == fp) {
          chosen = i;
          break;
        }
        if (e == 0 && empty == kWays) empty = i;
      }
      if (chosen == kWays) chosen = empty != kWays ? empty : victim_way(h);
      b.w[chosen].store(word, std::memory_order_seq_cst);
      for (std::size_t i = 0; i < kWays; ++i) {
        if (i == chosen) continue;
        std::uint64_t e = b.w[i].load(std::memory_order_seq_cst);
        if (e != 0 && (e & kFpMask) == fp) {
          b.w[i].compare_exchange_strong(e, 0, std::memory_order_seq_cst,
                                         std::memory_order_relaxed);
        }
      }
    }

    // Clear any entry (fingerprint(k), chunk). Caller holds the chunk's
    // lock (FIX sites) -- so no concurrent put() can re-publish this exact
    // word, and a failed CAS means the entry already stopped pointing at
    // `chunk`.
    void erase(K k, void* chunk) noexcept {
      const std::uint64_t h = mix(key_bits(k));
      Bucket& b = buckets_[h & bucket_mask_];
      const std::uint64_t want =
          fingerprint(h) | reinterpret_cast<std::uintptr_t>(chunk);
      for (std::size_t i = 0; i < kWays; ++i) {
        std::uint64_t e = b.w[i].load(std::memory_order_relaxed);
        if (e == want) {
          b.w[i].compare_exchange_strong(e, 0, std::memory_order_release,
                                         std::memory_order_relaxed);
        }
      }
    }

    // Swing any entry (fingerprint(k), from) to (fingerprint(k), to).
    // Caller holds both chunks' locks (merge) or `from`'s lock with `to`
    // linked and pinned (split). Same CAS reasoning as erase().
    void repoint(K k, void* from, void* to) noexcept {
      const std::uintptr_t to_raw = reinterpret_cast<std::uintptr_t>(to);
      const std::uint64_t h = mix(key_bits(k));
      Bucket& b = buckets_[h & bucket_mask_];
      const std::uint64_t fp = fingerprint(h);
      const std::uint64_t want =
          fp | reinterpret_cast<std::uintptr_t>(from);
      if (to_raw == 0 || (to_raw & kFpMask) != 0) return erase(k, from);
      const std::uint64_t next = fp | to_raw;
      for (std::size_t i = 0; i < kWays; ++i) {
        std::uint64_t e = b.w[i].load(std::memory_order_relaxed);
        if (e == want) {
          b.w[i].compare_exchange_strong(e, next, std::memory_order_release,
                                         std::memory_order_relaxed);
        }
      }
    }

    // Best-effort unlocked clear of an observed entry: used when a full
    // descent proved k absent but the table proposed (fp(k), p). Removing
    // entries is always safe; a racing legitimate put() either wins the CAS
    // race (entry survives) or republishes afterwards.
    void drop(K k, void* p) noexcept { erase(k, p); }

    // Quiescent only (clear()): concurrent probes would see freed chunks.
    void reset() noexcept {
      for (std::size_t i = 0; i <= bucket_mask_; ++i) {
        for (std::size_t w = 0; w < kWays; ++w) {
          buckets_[i].w[w].store(0, std::memory_order_relaxed);
        }
      }
      std::atomic_thread_fence(std::memory_order_release);
    }

    std::size_t slot_count() const noexcept {
      return (bucket_mask_ + 1) * kWays;
    }

   private:
    static constexpr std::size_t kWays = 8;  // one 64 B line per bucket
    static constexpr std::size_t kDefaultSlots = std::size_t{1} << 16;
    static constexpr std::uint64_t kFpMask = 0xFFFF000000000000ULL;
    static constexpr std::uint64_t kPtrMask = ~kFpMask;

    struct alignas(64) Bucket {
      std::atomic<std::uint64_t> w[kWays] = {};
    };

    static std::uint64_t key_bits(K k) noexcept {
      return static_cast<std::uint64_t>(k);
    }

    // splitmix64 finalizer: bucket index from the low bits, fingerprint and
    // victim way from independent high bits of the same mix.
    static std::uint64_t mix(std::uint64_t x) noexcept {
      x += 0x9E3779B97F4A7C15ULL;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
      return x ^ (x >> 31);
    }

    // Fingerprint from bits the bucket index does not use. A fingerprint
    // collision within a bucket makes two keys share an entry -- the loser
    // gets a stale-but-safe hint, repaired on its next lookup.
    static std::uint64_t fingerprint(std::uint64_t h) noexcept {
      return h & kFpMask;
    }

    static std::size_t victim_way(std::uint64_t h) noexcept {
      return static_cast<std::size_t>((h >> 45) & (kWays - 1));
    }

    std::size_t bucket_mask_ = 0;
    std::unique_ptr<Bucket[]> buckets_;
  };
};

}  // namespace sv::core::hashidx
