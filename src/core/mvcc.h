// Multiversioning support types for SkipVectorMap (docs/SNAPSHOTS.md).
//
// Jiffy-style per-chunk versioning (PAPERS.md, arXiv:2102.01044) adapted to
// the skip vector's fat-chunk layout: a single global commit version is
// bumped by every committed mutation, each data chunk remembers the commit
// version at which its current contents became valid (`mod_version`), and --
// only while a snapshot is registered -- writers push immutable pre-image
// records onto a short per-chunk version chain before overwriting the live
// state. Snapshot readers pinned at version v resolve each chunk either from
// its live state (mod_version <= v, one speculative read) or from the newest
// chain record with version <= v, and therefore never restart against
// writers.
//
// This header holds the map-independent pieces: the batch-op descriptor, the
// trailing-array version record, and the snapshot registry that pins active
// read versions (the writer side consults it to decide whether a pre-image
// must be preserved, and the pruner to decide how much of a chain is dead).
//
// Hash sidecar interplay (docs/HASH_INDEX.md): the optional HashIndex policy
// accelerates POINT operations only, and its hints always respect the
// version-chain protocol. Sidecar fast-path writers (remove/update) follow
// the same reserve -> pre-image -> mutate -> stamp sequence under the
// chunk's write lock as the descent paths, so snapshot readers pinned below
// the commit version still resolve the chunk from its chain. Versioned
// reads themselves (snapshot()/range_for_each_at) never consult the hint
// table: a hint names a chunk's LIVE identity, which is meaningless at a
// pinned version.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace sv::core::mvcc {

// ---- Batch operations ---------------------------------------------------------

enum class BatchOpKind : std::uint8_t {
  kPut,     // upsert: insert k -> v, or overwrite the value if k is present
  kRemove,  // erase k if present
};

// One element of an atomic batch. `applied` is an out-parameter written by
// apply_batch: true when a put inserted a NEW key or a remove erased an
// existing key (an overwriting put and a missing remove report false).
template <class K, class V>
struct BatchOp {
  K key{};
  V value{};
  BatchOpKind kind = BatchOpKind::kPut;
  bool applied = false;

  static BatchOp put(K k, V v) noexcept {
    return BatchOp{k, v, BatchOpKind::kPut, false};
  }
  static BatchOp remove(K k) noexcept {
    return BatchOp{k, V{}, BatchOpKind::kRemove, false};
  }
};

// ---- Version records ----------------------------------------------------------

// An immutable full-state record of one data chunk's key sub-range: the
// contents that became valid at commit version `version` and stayed valid
// until the next-newer record (or the live state). Allocated as one block
// [header | K[count] | V[count]] through the owning map's Alloc policy;
// `bytes` is retained for sized deallocation. Published with a release store
// of the chain head and read with acquire loads; the payload is never
// modified after publication, so plain (non-atomic) arrays are safe. The
// only post-publication write is chain truncation during pruning, which
// stores through the atomic `next` of a record that no active reader can be
// positioned past (see docs/SNAPSHOTS.md for the argument).
template <class K, class V>
struct VersionRecord {
  static_assert(std::is_trivially_copyable_v<K> &&
                std::is_trivially_copyable_v<V>);

  std::uint64_t version;
  std::atomic<VersionRecord*> next;  // next-older record (descending version)
  std::uint32_t count;
  std::uint32_t bytes;

  static constexpr std::size_t align_up(std::size_t n, std::size_t a) noexcept {
    return (n + a - 1) / a * a;
  }
  static constexpr std::size_t keys_offset() noexcept {
    return align_up(sizeof(VersionRecord), alignof(K));
  }
  static constexpr std::size_t vals_offset(std::uint32_t n) noexcept {
    return align_up(keys_offset() + sizeof(K) * n, alignof(V));
  }
  static constexpr std::size_t bytes_for(std::uint32_t n) noexcept {
    return vals_offset(n) + sizeof(V) * n;
  }

  K* keys() noexcept {
    return reinterpret_cast<K*>(reinterpret_cast<char*>(this) + keys_offset());
  }
  V* vals() noexcept {
    return reinterpret_cast<V*>(reinterpret_cast<char*>(this) +
                                vals_offset(count));
  }
  const K* keys() const noexcept {
    return const_cast<VersionRecord*>(this)->keys();
  }
  const V* vals() const noexcept {
    return const_cast<VersionRecord*>(this)->vals();
  }
};

// ---- Snapshot registry --------------------------------------------------------

// Fixed array of pinned read versions. A slot holds pinned_version + 1 (0 =
// free). The claim/commit-read protocol (all seq_cst) guarantees that any
// writer whose commit version c exceeds a reader's pinned v observes the
// reader's slot before deciding whether to preserve a pre-image:
//
//   reader:  active++ ; slot := floor+1 ; v := load(commit_version)
//   writer:  c := ++commit_version ; if (active != 0) push pre-image
//
// If c > v, the reader's load of commit_version missed the writer's RMW, so
// in the seq_cst total order the load -- and everything sequenced before it,
// including the slot store and the active increment -- precedes the RMW,
// which precedes the writer's registry check. A full registry is reported to
// the caller, which falls back to the locked (non-versioned) snapshot path.
class SnapshotRegistry {
 public:
  static constexpr std::size_t kSlots = 64;
  static constexpr std::uint64_t kNoFloor =
      std::numeric_limits<std::uint64_t>::max();

  // Claims a free slot pinning `pinned` (stored as pinned + 1); returns the
  // slot index or -1 when every slot is taken. A successful claim MUST be
  // followed by exactly one refine() -- the begin/end registration counters
  // (see needs_preimage) treat claim..refine as an open registration whose
  // final pin is not yet knowable.
  int try_claim(std::uint64_t pinned) noexcept {
    reg_begin_.fetch_add(1, std::memory_order_seq_cst);
    active_.fetch_add(1, std::memory_order_seq_cst);
    for (std::size_t i = 0; i < kSlots; ++i) {
      std::uint64_t expected = 0;
      if (slots_[i].compare_exchange_strong(expected, pinned + 1,
                                            std::memory_order_seq_cst)) {
        return static_cast<int>(i);
      }
    }
    active_.fetch_sub(1, std::memory_order_seq_cst);
    reg_end_.fetch_add(1, std::memory_order_seq_cst);
    return -1;
  }

  // Raises a claimed slot's pin to the refined (exact) snapshot version.
  // Raising is always safe: commits that happened before the refinement
  // already consulted the conservative pin. After this, the slot's value is
  // final until release() -- which is what needs_preimage relies on.
  void refine(int slot, std::uint64_t pinned) noexcept {
    slots_[static_cast<std::size_t>(slot)].store(pinned + 1,
                                                 std::memory_order_seq_cst);
    reg_end_.fetch_add(1, std::memory_order_seq_cst);
  }

  // True when some registered snapshot may still need the pre-image of the
  // state most recently stamped mod_version = m -- that record is only ever
  // the resolution target of a reader pinned at p >= m, so when every
  // refined pin is < m the push can be skipped entirely. This is what keeps
  // version chains bounded under a long-pinned view: after one record lands
  // at-or-below the pin, every later commit on that chunk skips.
  //
  // Callers hold the chunk's write lock and have already reserved their
  // commit version c. Soundness of a `false` answer:
  //  - A scanned slot is only trusted when no registration was in flight
  //    across the scan (begin/end counters equal before, begin unchanged
  //    after). Then every scanned value is a refined, final pin; pins only
  //    appear by a fresh claim, which the post-scan begin re-read catches.
  //  - A registration missed by the scan claimed after it in seq_cst order,
  //    so its refine-load of commit_version sees >= c; that reader resolves
  //    from live state or from pre-images pushed by commits later than c
  //    (whose own needs_preimage sees its pin), never from this record.
  bool needs_preimage(std::uint64_t m) const noexcept {
    const std::uint64_t b0 = reg_begin_.load(std::memory_order_seq_cst);
    if (b0 != reg_end_.load(std::memory_order_seq_cst)) return true;
    for (std::size_t i = 0; i < kSlots; ++i) {
      const std::uint64_t s = slots_[i].load(std::memory_order_seq_cst);
      if (s != 0 && s - 1 >= m) return true;
    }
    return reg_begin_.load(std::memory_order_seq_cst) != b0;
  }

  void release(int slot) noexcept {
    slots_[static_cast<std::size_t>(slot)].store(0, std::memory_order_seq_cst);
    active_.fetch_sub(1, std::memory_order_seq_cst);
  }

  // Number of registered snapshots (including claims in flight). Writers
  // skip all pre-image work when this is 0.
  std::uint32_t active() const noexcept {
    return active_.load(std::memory_order_seq_cst);
  }

  // Smallest pinned version across claimed slots, or kNoFloor when none.
  // Chain records strictly older than the newest record at-or-below this
  // floor serve no possible reader.
  std::uint64_t floor() const noexcept {
    std::uint64_t f = kNoFloor;
    for (std::size_t i = 0; i < kSlots; ++i) {
      const std::uint64_t s = slots_[i].load(std::memory_order_seq_cst);
      if (s != 0 && s - 1 < f) f = s - 1;
    }
    return f;
  }

 private:
  std::atomic<std::uint64_t> slots_[kSlots]{};
  std::atomic<std::uint32_t> active_{0};
  // Registrations begun (claim) / finished (refine, or failed claim). Equal
  // counters bracket a scan in which every non-zero slot is a final pin.
  std::atomic<std::uint64_t> reg_begin_{0};
  std::atomic<std::uint64_t> reg_end_{0};
};

}  // namespace sv::core::mvcc
