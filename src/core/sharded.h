// ShardedSkipVector: key-space partitioning across independent skip vector
// instances. Motivated by the paper's related work (NUMASK [14] shards skip
// lists across NUMA domains): each shard is its own map with its own
// reclamation domain, eliminating cross-shard cache traffic entirely. Point
// operations touch exactly one shard; range operations lock shards left to
// right (the global shard order keeps two-phase locking deadlock-free).
//
// Sharding is by key range, not by hash, so ordered iteration and range
// queries remain natural: shard i owns keys in [i * span, (i+1) * span).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/skip_vector.h"
#include "stats/stats.h"
#include "txn/lock_mgr.h"

namespace sv::core {

template <class K, class V, class Reclaimer = reclaim::HazardReclaimer,
          class Alloc = alloc::MallocNodeAllocator,
          class HashIndex = hashidx::NoIndex>
class ShardedSkipVector {
  // Each shard carries its own (optional) hash sidecar: per-shard tables
  // keep hint cache lines NUMA-local, matching the sharding rationale.
  using Shard = SkipVectorMap<K, V, Reclaimer, Alloc, HashIndex>;

 public:
  // key_space is the exclusive upper bound of the key domain; keys must lie
  // in [0, key_space). shard_count must be >= 1.
  ShardedSkipVector(std::uint64_t key_space, std::uint32_t shard_count,
                    Config config = Config{})
      : key_space_(key_space),
        span_(shard_count > 0 ? (key_space + shard_count - 1) / shard_count
                              : 0),
        gates_(shard_count) {
    if (shard_count < 1 || key_space < 1 || span_ < 1) {
      throw std::invalid_argument("need key_space >= 1 and shard_count >= 1");
    }
    shards_.reserve(shard_count);
    for (std::uint32_t i = 0; i < shard_count; ++i) {
      shards_.push_back(std::make_unique<Shard>(config));
    }
  }

  using BatchOp = typename Shard::BatchOp;

  std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }

  bool insert(K k, V v) { return shard_for(k).insert(k, v); }
  bool remove(K k) { return shard_for(k).remove(k); }
  bool update(K k, V v) { return shard_for(k).update(k, v); }
  std::optional<V> lookup(K k) { return shard_for(k).lookup(k); }

  std::size_t size_approx() const noexcept {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s->size_approx();
    return n;
  }

  // Smallest/largest mapping across all shards.
  typename Shard::Entry first() {
    for (auto& s : shards_) {
      if (auto e = s->first()) return e;
    }
    return std::nullopt;
  }
  typename Shard::Entry last() {
    for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
      if (auto e = (*it)->last()) return e;
    }
    return std::nullopt;
  }

  // Range ops span shards in ascending key order. Multi-shard operations
  // (ranges, transforms, batches, snapshots touching more than one shard)
  // additionally hold the gate mutexes of every intersecting shard,
  // acquired in ascending shard order (deadlock-free 2PL over shards), for
  // their whole duration. This serializes multi-shard operations against
  // each other, closing the gap the earlier revision documented (two
  // cross-shard scans/batches could observe each other's partial effects);
  // single-shard operations never touch a gate and keep their full
  // per-shard linearizability. Point writers still bypass gates, so a
  // multi-shard scan is serializable -- each shard segment is an atomic
  // sub-scan and all multi-shard ops are totally ordered -- but not
  // linearizable with respect to real time across shards (that would
  // require gating every point op; the classic sharding trade-off NUMASK
  // makes too).
  template <class Fn>
  std::size_t range_for_each(K lo, K hi, Fn&& fn) {
    const auto guard = gate_span(lo, hi);
    std::size_t n = 0;
    for_intersecting(lo, hi, [&](Shard& s, K slo, K shi) {
      n += s.range_for_each(slo, shi, fn);
    });
    return n;
  }

  template <class Fn>
  std::size_t range_transform(K lo, K hi, Fn&& fn) {
    const auto guard = gate_span(lo, hi);
    std::size_t n = 0;
    for_intersecting(lo, hi, [&](Shard& s, K slo, K shi) {
      n += s.range_transform(slo, shi, fn);
    });
    return n;
  }

  // Consistent copy of [lo, hi]: single-shard requests delegate to the
  // shard's wait-free versioned snapshot; multi-shard requests additionally
  // hold the shard gates, so concurrent multi-shard batches cannot commit
  // between the per-shard pins (each segment is still taken via the shard's
  // own snapshot_at, so single-shard writers are never blocked).
  std::vector<std::pair<K, V>> snapshot(K lo, K hi) {
    const auto guard = gate_span(lo, hi);
    std::vector<std::pair<K, V>> out;
    for_intersecting(lo, hi, [&](Shard& s, K slo, K shi) {
      auto part = s.snapshot(slo, shi);
      out.insert(out.end(), part.begin(), part.end());
    });
    return out;
  }

  // Atomic multi-key batch. Ops are routed to their shards; a batch
  // confined to one shard commits through that shard's apply_batch
  // unchanged (single commit version, fully atomic). A cross-shard batch
  // holds the gates of every involved shard in ascending shard order while
  // the per-shard sub-batches commit, so no multi-shard reader or batch
  // observes it partially applied. Each op's `applied` field is written
  // back; returns the number of presence-changing ops.
  std::size_t apply_batch(std::vector<BatchOp>& ops) {
    if (ops.empty()) return 0;
    // Partition op indices by shard.
    std::vector<std::pair<std::size_t, std::uint32_t>> by_shard;  // (shard, i)
    by_shard.reserve(ops.size());
    for (std::uint32_t i = 0; i < ops.size(); ++i) {
      by_shard.emplace_back(shard_index(ops[i].key), i);
    }
    std::stable_sort(by_shard.begin(), by_shard.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    const std::size_t first_shard = by_shard.front().first;
    const std::size_t last_shard = by_shard.back().first;
    txn::ShardGates::Guard gate_guard;
    if (first_shard != last_shard) {
      // Lock only involved shards, ascending (the span may have holes);
      // the ordered acquisition lives in the shared lock manager.
      gate_guard = gates_.lock_span(first_shard, last_shard, [&](std::size_t s) {
        return std::any_of(by_shard.begin(), by_shard.end(),
                           [&](const auto& p) { return p.first == s; });
      });
    }
    std::size_t applied = 0;
    std::size_t i = 0;
    std::vector<BatchOp> sub;
    while (i < by_shard.size()) {
      const std::size_t s = by_shard[i].first;
      sub.clear();
      const std::size_t begin = i;
      for (; i < by_shard.size() && by_shard[i].first == s; ++i) {
        sub.push_back(ops[by_shard[i].second]);
      }
      applied += shards_[s]->apply_batch(sub);
      for (std::size_t j = begin; j < i; ++j) {
        ops[by_shard[j].second].applied = sub[j - begin].applied;
      }
    }
    return applied;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {  // quiescent
    for (const auto& s : shards_) s->for_each(fn);
  }

  bool validate(std::string* err = nullptr) const {
    for (const auto& s : shards_) {
      if (!s->validate(err)) return false;
    }
    return true;
  }

  // Aggregate event counters over every shard (each shard owns its own
  // stats::Registry; see src/stats/stats.h).
  stats::Snapshot stats_snapshot() const {
    stats::Snapshot agg{};
    for (const auto& s : shards_) agg += s->stats_registry().snapshot();
    return agg;
  }

  // Aggregate node-allocator counters over every shard (each shard owns its
  // own allocator instance; see alloc/allocator.h).
  alloc::AllocatorStats allocator_stats() const {
    alloc::AllocatorStats agg;
    for (const auto& s : shards_) agg += s->allocator_stats();
    return agg;
  }

 private:
  std::size_t shard_index(K k) const noexcept {
    const auto i = static_cast<std::size_t>(k / span_);
    return i < shards_.size() ? i : shards_.size() - 1;
  }
  Shard& shard_for(K k) { return *shards_[shard_index(k)]; }

  // Lock the gates of every shard intersecting [lo, hi], ascending, iff the
  // interval spans more than one shard (txn::ShardGates owns the ordered
  // acquisition and the reverse-order release). Returns an empty guard for
  // the single-shard fast path.
  txn::ShardGates::Guard gate_span(K lo, K hi) {
    if (hi >= key_space_) hi = static_cast<K>(key_space_ - 1);
    if (lo > hi) return {};
    const std::size_t first = shard_index(lo);
    const std::size_t last = shard_index(hi);
    if (first == last) return {};
    return gates_.lock_span(first, last);
  }

  template <class Body>
  void for_intersecting(K lo, K hi, Body&& body) {
    if (hi >= key_space_) hi = static_cast<K>(key_space_ - 1);
    if (lo > hi) return;
    std::size_t i = static_cast<std::size_t>(lo / span_);
    const std::size_t end = static_cast<std::size_t>(hi / span_);
    for (; i <= end && i < shards_.size(); ++i) {
      const K shard_lo = static_cast<K>(i * span_);
      const K shard_hi = static_cast<K>((i + 1) * span_ - 1);
      body(*shards_[i], lo > shard_lo ? lo : shard_lo,
           hi < shard_hi ? hi : shard_hi);
    }
  }

  const std::uint64_t key_space_;
  const std::uint64_t span_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Per-shard gates, held (ascending) by multi-shard operations only; the
  // ordered-acquisition RAII lives in the shared lock manager
  // (txn/lock_mgr.h), same layer that orders the per-chunk locks.
  txn::ShardGates gates_;
};

}  // namespace sv::core
