// ShardedSkipVector: key-space partitioning across independent skip vector
// instances. Motivated by the paper's related work (NUMASK [14] shards skip
// lists across NUMA domains): each shard is its own map with its own
// reclamation domain, eliminating cross-shard cache traffic entirely. Point
// operations touch exactly one shard; range operations lock shards left to
// right (the global shard order keeps two-phase locking deadlock-free).
//
// Sharding is by key range, not by hash, so ordered iteration and range
// queries remain natural: shard i owns keys in [i * span, (i+1) * span).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/skip_vector.h"
#include "stats/stats.h"

namespace sv::core {

template <class K, class V, class Reclaimer = reclaim::HazardReclaimer,
          class Alloc = alloc::MallocNodeAllocator>
class ShardedSkipVector {
  using Shard = SkipVectorMap<K, V, Reclaimer, vectormap::Layout::kSorted,
                              vectormap::Layout::kUnsorted, Alloc>;

 public:
  // key_space is the exclusive upper bound of the key domain; keys must lie
  // in [0, key_space). shard_count must be >= 1.
  ShardedSkipVector(std::uint64_t key_space, std::uint32_t shard_count,
                    Config config = Config{})
      : key_space_(key_space),
        span_(shard_count > 0 ? (key_space + shard_count - 1) / shard_count
                              : 0) {
    if (shard_count < 1 || key_space < 1 || span_ < 1) {
      throw std::invalid_argument("need key_space >= 1 and shard_count >= 1");
    }
    shards_.reserve(shard_count);
    for (std::uint32_t i = 0; i < shard_count; ++i) {
      shards_.push_back(std::make_unique<Shard>(config));
    }
  }

  std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }

  bool insert(K k, V v) { return shard_for(k).insert(k, v); }
  bool remove(K k) { return shard_for(k).remove(k); }
  bool update(K k, V v) { return shard_for(k).update(k, v); }
  std::optional<V> lookup(K k) { return shard_for(k).lookup(k); }

  std::size_t size_approx() const noexcept {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s->size_approx();
    return n;
  }

  // Smallest/largest mapping across all shards.
  typename Shard::Entry first() {
    for (auto& s : shards_) {
      if (auto e = s->first()) return e;
    }
    return std::nullopt;
  }
  typename Shard::Entry last() {
    for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
      if (auto e = (*it)->last()) return e;
    }
    return std::nullopt;
  }

  // Range ops span shards in ascending key order. NOTE: unlike the single
  // instance, a cross-shard range operation is serializable per shard but
  // not atomic across shards (each shard's segment linearizes separately);
  // single-shard ranges keep the full guarantee. This is the classic
  // sharding trade-off (NUMASK makes the same one).
  template <class Fn>
  std::size_t range_for_each(K lo, K hi, Fn&& fn) {
    std::size_t n = 0;
    for_intersecting(lo, hi, [&](Shard& s, K slo, K shi) {
      n += s.range_for_each(slo, shi, fn);
    });
    return n;
  }

  template <class Fn>
  std::size_t range_transform(K lo, K hi, Fn&& fn) {
    std::size_t n = 0;
    for_intersecting(lo, hi, [&](Shard& s, K slo, K shi) {
      n += s.range_transform(slo, shi, fn);
    });
    return n;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {  // quiescent
    for (const auto& s : shards_) s->for_each(fn);
  }

  bool validate(std::string* err = nullptr) const {
    for (const auto& s : shards_) {
      if (!s->validate(err)) return false;
    }
    return true;
  }

  // Aggregate event counters over every shard (each shard owns its own
  // stats::Registry; see src/stats/stats.h).
  stats::Snapshot stats_snapshot() const {
    stats::Snapshot agg{};
    for (const auto& s : shards_) agg += s->stats_registry().snapshot();
    return agg;
  }

  // Aggregate node-allocator counters over every shard (each shard owns its
  // own allocator instance; see alloc/allocator.h).
  alloc::AllocatorStats allocator_stats() const {
    alloc::AllocatorStats agg;
    for (const auto& s : shards_) agg += s->allocator_stats();
    return agg;
  }

 private:
  Shard& shard_for(K k) {
    const auto i = static_cast<std::size_t>(k / span_);
    return *shards_[i < shards_.size() ? i : shards_.size() - 1];
  }

  template <class Body>
  void for_intersecting(K lo, K hi, Body&& body) {
    if (hi >= key_space_) hi = static_cast<K>(key_space_ - 1);
    if (lo > hi) return;
    std::size_t i = static_cast<std::size_t>(lo / span_);
    const std::size_t end = static_cast<std::size_t>(hi / span_);
    for (; i <= end && i < shards_.size(); ++i) {
      const K shard_lo = static_cast<K>(i * span_);
      const K shard_hi = static_cast<K>((i + 1) * span_ - 1);
      body(*shards_[i], lo > shard_lo ? lo : shard_lo,
           hi < shard_hi ? hi : shard_hi);
    }
  }

  const std::uint64_t key_space_;
  const std::uint64_t span_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sv::core
