// SkipVectorMap: the paper's primary contribution (Listings 1-4).
//
// A concurrent ordered map structured like a skip list whose index and data
// layers are flattened into chunks ("vectors") of target size T (capacity
// 2T). Each node carries a sequence lock with isOrphan/isFrozen flags;
// traversals are speculative hand-over-hand read sections, mutations take
// write locks bottom-up after a top-down freeze phase, and unlinked nodes
// are reclaimed through a pluggable Reclaimer policy (hazard pointers for
// SV-HP, leaking for SV-Leak, immediate free for sequential use).
//
// Template parameters:
//   K, V           key/value; must be trivially copyable and lock-free as
//                  std::atomic (speculative readers require it; see
//                  DESIGN.md §3.2). 64-bit keys/values as in the paper.
//   Reclaimer      sv::reclaim::{HazardReclaimer, LeakReclaimer,
//                  ImmediateReclaimer}
//   kIndexLayout   chunk layout of index layers (paper's best: sorted)
//   kDataLayout    chunk layout of the data layer (paper's best: unsorted)
//   Alloc          node allocator policy, sv::alloc::{MallocNodeAllocator,
//                  PoolNodeAllocator} (docs/MEMORY.md). The reclaimer routes
//                  node destruction back through this allocator (retire
//                  carries an owned deleter; see reclaim/deleter.h), so
//                  reclaimed chunks re-enter the pool.
//
// Deviations from the listings (all argued in DESIGN.md §3): head nodes use
// an is_head flag plus an explicit head_down pointer instead of a reserved
// sentinel key (so the full key domain is usable), and next == nullptr
// replaces the top sentinel. Where the paper's "K is minimum of a non-orphan
// node" checks appear, head nodes are exempt (a head's conceptual minimum is
// -inf, so a user key being its vector minimum implies nothing about upper
// layers).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <iostream>
#include <iterator>
#include <utility>
#include <vector>

#include "alloc/allocator.h"
#include "alloc/node_layout.h"
#include "alloc/pool_allocator.h"
#include "common/hw.h"
#include "common/rng.h"
#include "core/config.h"
#include "debug/audit.h"
#include "debug/fault_inject.h"
#include "reclaim/reclaimer.h"
#include "stats/stats.h"
#include "sync/backoff.h"
#include "sync/sequence_lock.h"
#include "vectormap/vector_map.h"

namespace sv::core {

template <class K, class V, class Reclaimer = reclaim::HazardReclaimer,
          vectormap::Layout kIndexLayout = vectormap::Layout::kSorted,
          vectormap::Layout kDataLayout = vectormap::Layout::kUnsorted,
          class Alloc = alloc::MallocNodeAllocator>
class SkipVectorMap {
  static_assert(std::is_trivially_copyable_v<K> &&
                std::is_trivially_copyable_v<V>);
  static_assert(std::atomic<K>::is_always_lock_free &&
                    std::atomic<V>::is_always_lock_free,
                "speculative readers require lock-free atomic elements; "
                "store larger values behind a pointer");

  using Lock = sync::SequenceLock;
  using Word = Lock::Word;
  using Ctx = typename Reclaimer::ThreadCtx;

  // ---- Node layout ---------------------------------------------------------

  struct NodeBase {
    Lock lock;
    std::atomic<NodeBase*> next{nullptr};
    NodeBase* const head_down;  // heads only: head of the layer below
    const std::uint32_t capacity;
    const std::uint8_t layer;  // 0 = data layer
    const bool is_head;

    NodeBase(NodeBase* down, std::uint32_t cap, std::uint8_t lyr, bool head,
             bool orphan) noexcept
        : lock(orphan), head_down(down), capacity(cap), layer(lyr),
          is_head(head) {}
  };

  template <class P, vectormap::Layout kLayout>
  struct NodeT : NodeBase {
    vectormap::VectorMap<K, P, kLayout> vec;
    NodeT(std::atomic<K>* keys, std::atomic<P>* vals, NodeBase* down,
          std::uint32_t cap, std::uint8_t lyr, bool head, bool orphan) noexcept
        : NodeBase(down, cap, lyr, head, orphan), vec(keys, vals, cap) {}
  };

  using IndexNode = NodeT<NodeBase*, kIndexLayout>;
  using DataNode = NodeT<V, kDataLayout>;

 public:
  using key_type = K;
  using mapped_type = V;

  explicit SkipVectorMap(Config config = Config{}) : config_(config) {
    config_.validate();
    heads_.resize(config_.layer_count);
    heads_[0] = alloc_node<DataNode, V>(config_.data_capacity(), nullptr, 0,
                                        /*head=*/true, /*orphan=*/false);
    for (std::uint32_t l = 1; l < config_.layer_count; ++l) {
      heads_[l] = alloc_node<IndexNode, NodeBase*>(
          config_.index_capacity(), heads_[l - 1], static_cast<std::uint8_t>(l),
          /*head=*/true, /*orphan=*/false);
    }
    head_ = heads_[config_.layer_count - 1];
  }

  ~SkipVectorMap() {
    // Quiescent teardown: free every node still linked into a layer. Nodes
    // already unlinked are owned by the reclaimer (freed by the hazard
    // domain's destructor, or intentionally leaked by LeakReclaimer).
    for (NodeBase* h : heads_) {
      NodeBase* n = h;
      while (n != nullptr) {
        NodeBase* next = n->next.load(std::memory_order_relaxed);
        free_node(n);
        n = next;
      }
    }
  }

  SkipVectorMap(const SkipVectorMap&) = delete;
  SkipVectorMap& operator=(const SkipVectorMap&) = delete;

  const Config& config() const noexcept { return config_; }
  Reclaimer& reclaimer() noexcept { return reclaimer_; }
  Alloc& allocator() noexcept { return alloc_; }

  // Aggregate node-allocator counters (pool hit rate, live bytes, ...).
  // Precise regardless of SV_STATS; see alloc/allocator.h.
  alloc::AllocatorStats allocator_stats() const { return alloc_.stats(); }

  // ---- Lookup (Listing 2) --------------------------------------------------

  std::optional<V> lookup(K k) {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    sync::Backoff backoff;
    for (;;) {
      std::optional<V> result;
      if (try_lookup(ctx, k, result)) {
        stats::count(result ? stats::Counter::kLookupHit
                            : stats::Counter::kLookupMiss);
        return result;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  bool contains(K k) { return lookup(k).has_value(); }

  // ---- Insert (Listing 3) --------------------------------------------------

  // Inserts the mapping k -> v; returns false (no change) if k is present.
  bool insert(K k, V v) { return insert_impl(k, v, random_height()); }

#if defined(SV_FAULT_INJECTION) && SV_FAULT_INJECTION
  // Test-only (fault-injection builds): insert with a forced tower height,
  // so scenario tests can build exact structural shapes deterministically
  // instead of fishing for them through the random height generator.
  bool insert_with_height(K k, V v, std::uint32_t height) {
    return insert_impl(k, v, std::min(height, config_.layer_count - 1));
  }
#endif

 private:
  bool insert_impl(K k, V v, std::uint32_t height) {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    sync::Backoff backoff;
    InsertState st;
    for (;;) {
      bool result = false;
      if (try_insert(ctx, k, v, height, st, result)) {
        if (result) approx_size_.fetch_add(1, std::memory_order_relaxed);
        stats::count(result ? stats::Counter::kInsertNew
                            : stats::Counter::kInsertDup);
        return result;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

 public:
  // ---- Remove (Listing 4) --------------------------------------------------

  // Removes k; returns false (no change) if absent.
  bool remove(K k) {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    sync::Backoff backoff;
    for (;;) {
      bool result = false;
      if (try_remove(ctx, k, result)) {
        if (result) approx_size_.fetch_sub(1, std::memory_order_relaxed);
        stats::count(result ? stats::Counter::kRemoveHit
                            : stats::Counter::kRemoveMiss);
        return result;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  // ---- Update in place -----------------------------------------------------

  // Replaces the value mapped by k; returns false if k is absent.
  bool update(K k, V v) {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    sync::Backoff backoff;
    for (;;) {
      bool result = false;
      if (try_update(ctx, k, v, result)) {
        stats::count(result ? stats::Counter::kUpdateHit
                            : stats::Counter::kUpdateMiss);
        return result;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  // ---- Ordered navigation ----------------------------------------------------
  //
  // Point queries that exploit key order (the reason to prefer an ordered
  // map over a hash map, §I): floor/ceiling and first/last. All are
  // linearizable, read-only, and use the same speculative traversal as
  // Lookup; last() descends the rightmost spine in O(log n).

  using Entry = std::optional<std::pair<K, V>>;

  // Largest mapping with key <= k, if any.
  Entry floor(K k) {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    sync::Backoff backoff;
    for (;;) {
      Entry out;
      if (try_floor(ctx, k, out)) {
        stats::count(stats::Counter::kOrderedNavOps);
        return out;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  // Smallest mapping with key >= k, if any.
  Entry ceiling(K k) {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    sync::Backoff backoff;
    for (;;) {
      Entry out;
      if (try_ceiling(ctx, k, out)) {
        stats::count(stats::Counter::kOrderedNavOps);
        return out;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  // Smallest / largest mapping in the map, if any.
  Entry first() {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    sync::Backoff backoff;
    for (;;) {
      Entry out;
      Trav t;
      t.node = heads_[0];
      t.slot = 0;
      ctx.protect(t.slot, t.node);
      t.ver = t.node->lock.read_begin();
      if (try_scan_forward(ctx, t, K{}, /*use_k=*/false, out)) {
        stats::count(stats::Counter::kOrderedNavOps);
        return out;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  Entry last() {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    sync::Backoff backoff;
    for (;;) {
      Entry out;
      if (try_last(ctx, out)) {
        stats::count(stats::Counter::kOrderedNavOps);
        return out;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  // ---- Range operations (§V-B, Fig. 8) --------------------------------------
  //
  // Two-phase locking over the data layer: write-lock every data node
  // intersecting [lo, hi] left to right, apply, release. Linearizable (and
  // serializable against all other operations), as the paper's lock-based
  // design makes trivial.

  // Mutating range query: fn(K, V) -> V is applied exactly once to each
  // mapping in [lo, hi] (ascending node order; unspecified order within a
  // chunk); the returned value is stored back. Returns mappings visited.
  template <class Fn>
  std::size_t range_transform(K lo, K hi, Fn&& fn) {
    return range_locked(lo, hi, [&](DataNode* n) -> std::size_t {
      return n->vec.transform_range(lo, hi, fn);
    });
  }

  // Read-only range query, same locking discipline (serializable).
  // fn(K, V) is invoked in ascending key order. Returns count visited.
  template <class Fn>
  std::size_t range_for_each(K lo, K hi, Fn&& fn) {
    return range_locked(lo, hi, [&](DataNode* n) -> std::size_t {
      std::size_t visited = 0;
      n->vec.for_each_ordered([&](K k, V v) {
        if (k >= lo && k <= hi) {
          fn(k, v);
          ++visited;
        }
      });
      return visited;
    });
  }

  // Non-atomic bulk erase: removes every mapping in [lo, hi] one key at a
  // time. Each individual removal is linearizable, but the range as a whole
  // is not atomic (concurrent inserts into [lo, hi] may survive). An atomic
  // version is future work the paper defers to [8]. Returns keys removed.
  std::size_t erase_range(K lo, K hi) {
    std::vector<K> victims;
    range_for_each(lo, hi, [&](K k, V) { victims.push_back(k); });
    std::size_t removed = 0;
    for (K k : victims) removed += remove(k) ? 1 : 0;
    return removed;
  }

  // Quiescent: remove every mapping, retaining the layer skeleton. Nodes
  // are freed directly (no other thread may touch the map concurrently).
  void clear() {
    for (NodeBase* h : heads_) {
      NodeBase* n = h->next.load(std::memory_order_relaxed);
      while (n != nullptr) {
        NodeBase* next = n->next.load(std::memory_order_relaxed);
        free_node(n);
        n = next;
      }
      h->next.store(nullptr, std::memory_order_relaxed);
      if (h->layer) {
        as_index(h)->vec.clear();
      } else {
        as_data(h)->vec.clear();
      }
      h->lock.acquire();  // bump the version: invalidate stale observers
      h->lock.release();
    }
    approx_size_.store(0, std::memory_order_relaxed);
  }

  // Quiescent forward iteration in ascending key order (STL interop).
  // Invalidated by any mutation; intended for single-threaded phases.
  class const_iterator {
   public:
    using value_type = std::pair<K, V>;
    using reference = const value_type&;
    using pointer = const value_type*;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;

    reference operator*() const { return buf_[i_]; }
    pointer operator->() const { return &buf_[i_]; }

    const_iterator& operator++() {
      if (++i_ >= buf_.size()) advance_node();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const const_iterator& o) const {
      return node_ == o.node_ && i_ == o.i_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    friend class SkipVectorMap;
    explicit const_iterator(const NodeBase* node) : node_(node) {
      fill();
      if (buf_.empty()) advance_node();
    }

    void advance_node() {
      do {
        node_ = node_ ? node_->next.load(std::memory_order_relaxed) : nullptr;
        fill();
      } while (node_ != nullptr && buf_.empty());
      i_ = 0;
      if (node_ == nullptr) buf_.clear();
    }

    void fill() {
      buf_.clear();
      i_ = 0;
      if (node_ == nullptr) return;
      static_cast<const DataNode*>(node_)->vec.for_each_ordered(
          [&](K k, V v) { buf_.emplace_back(k, v); });
    }

    const NodeBase* node_ = nullptr;
    std::vector<value_type> buf_;
    std::size_t i_ = 0;
  };

  const_iterator begin() const { return const_iterator(heads_[0]); }
  const_iterator end() const { return const_iterator(); }

  // Consistent copy of every mapping in [lo, hi] (a linearizable snapshot,
  // the capability the paper contrasts against non-linearizable range
  // queries in competing skip lists, §V-B).
  std::vector<std::pair<K, V>> snapshot(K lo, K hi) {
    std::vector<std::pair<K, V>> out;
    range_for_each(lo, hi, [&](K k, V v) { out.emplace_back(k, v); });
    return out;
  }

  // ---- Bulk construction (quiescent) -----------------------------------------

  // Populate an EMPTY map from strictly ascending unique (key, value)
  // pairs: data chunks packed to targetDataVectorSize, index layers built
  // bottom-up, every chunk exactly at its target fill. O(n), versus
  // O(n log n) repeated insert. Throws std::logic_error if the map is not
  // empty, std::invalid_argument if the input is not strictly ascending.
  //
  // Nodes created at the top layer (beyond the head's capacity) are marked
  // orphans: like capacity-split siblings (Fig. 3d) they have no parent
  // entry, and the invariant checks rely on that.
  void bulk_load(const std::vector<std::pair<K, V>>& sorted) {
    if (size_approx() != 0 ||
        heads_[0]->next.load(std::memory_order_relaxed) != nullptr ||
        node_size(heads_[0]) != 0) {
      throw std::logic_error("bulk_load requires an empty map");
    }
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      if (!(sorted[i - 1].first < sorted[i].first)) {
        throw std::invalid_argument("bulk_load input must strictly ascend");
      }
    }
    if (sorted.empty()) return;
    const std::uint32_t top = config_.layer_count - 1;

    // Entries to link at the current layer: (min key, node below).
    std::vector<std::pair<K, NodeBase*>> entries;

    // Data layer.
    {
      const std::uint32_t fill = config_.target_data_vector_size;
      NodeBase* tail = heads_[0];
      for (std::size_t i = 0; i < sorted.size(); i += fill) {
        const std::size_t n = std::min<std::size_t>(fill, sorted.size() - i);
        const bool orphan = (top == 0);  // single-layer maps: see above
        auto* node =
            alloc_node<DataNode, V>(config_.data_capacity(), nullptr, 0,
                                    /*head=*/false, orphan);
        for (std::size_t j = 0; j < n; ++j) {
          node->vec.insert(sorted[i + j].first, sorted[i + j].second);
        }
        tail->next.store(node, std::memory_order_release);
        tail = node;
        if (top > 0) entries.emplace_back(sorted[i].first, node);
      }
    }

    // Index layers, bottom-up.
    for (std::uint32_t layer = 1; layer <= top && !entries.empty(); ++layer) {
      const std::uint32_t fill = config_.target_index_vector_size;
      std::vector<std::pair<K, NodeBase*>> next_entries;
      NodeBase* tail = heads_[layer];
      std::size_t i = 0;
      if (layer == top) {
        // The head absorbs what fits; the rest become orphan chunks.
        auto* head = as_index(heads_[layer]);
        while (i < entries.size() && !head->vec.full()) {
          head->vec.insert(entries[i].first, entries[i].second);
          ++i;
        }
      }
      for (; i < entries.size();) {
        const std::size_t n =
            std::min<std::size_t>(fill, entries.size() - i);
        auto* node = alloc_node<IndexNode, NodeBase*>(
            config_.index_capacity(), nullptr,
            static_cast<std::uint8_t>(layer),
            /*head=*/false, /*orphan=*/(layer == top));
        for (std::size_t j = 0; j < n; ++j) {
          node->vec.insert(entries[i + j].first, entries[i + j].second);
        }
        tail->next.store(node, std::memory_order_release);
        tail = node;
        if (layer < top) next_entries.emplace_back(entries[i].first, node);
        i += n;
      }
      entries.swap(next_entries);
    }
    approx_size_.store(static_cast<std::int64_t>(sorted.size()),
                       std::memory_order_relaxed);
  }

  // ---- Serialization (quiescent) ----------------------------------------------
  //
  // Minimal binary snapshot format: magic, element count, then (key, value)
  // pairs in ascending order. load() into an empty map uses bulk_load, so a
  // restored map is perfectly packed. Format is host-endian (a snapshot is
  // a local artifact, not a wire format).

  static constexpr std::uint64_t kSnapshotMagic = 0x53564543544F5231ULL;

  void save(std::ostream& out) const {
    const std::uint64_t n = size_approx();
    write_pod(out, kSnapshotMagic);
    write_pod(out, n);
    std::uint64_t written = 0;
    for_each([&](K k, V v) {
      write_pod(out, k);
      write_pod(out, v);
      ++written;
    });
    if (written != n) {
      throw std::logic_error("save() requires quiescence (count drifted)");
    }
  }

  // Map must be empty. Throws std::runtime_error on a malformed stream.
  void load(std::istream& in) {
    std::uint64_t magic = 0, n = 0;
    read_pod(in, magic);
    if (!in || magic != kSnapshotMagic) {
      throw std::runtime_error("bad snapshot magic");
    }
    read_pod(in, n);
    std::vector<std::pair<K, V>> data;
    data.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      K k{};
      V v{};
      read_pod(in, k);
      read_pod(in, v);
      if (!in) throw std::runtime_error("truncated snapshot");
      data.emplace_back(k, v);
    }
    bulk_load(data);
  }

  // ---- Introspection (quiescent unless stated) ------------------------------

  // Approximate element count (maintained with relaxed counters; exact when
  // quiescent).
  std::size_t size_approx() const noexcept {
    const auto s = approx_size_.load(std::memory_order_relaxed);
    return s < 0 ? 0 : static_cast<std::size_t>(s);
  }

  // Quiescent: iterate every mapping in ascending key order.
  template <class Fn>
  void for_each(Fn&& fn) const {
    const NodeBase* n = heads_[0];
    while (n != nullptr) {
      static_cast<const DataNode*>(n)->vec.for_each_ordered(fn);
      n = n->next.load(std::memory_order_relaxed);
    }
  }

  // Rare-event operation counters (relaxed atomics; never on the hot path
  // of a successful first-try operation).
  struct OpCounters {
    std::uint64_t restarts = 0;        // speculative attempts abandoned
    std::uint64_t orphan_merges = 0;   // lazy merges performed (Fig. 3f->3d)
    std::uint64_t capacity_splits = 0; // orphan-creating splits (Fig. 3d)
    std::uint64_t tower_splits = 0;    // per-layer splits by tall inserts
  };
  OpCounters counters() const noexcept {
    return {restarts_.load(std::memory_order_relaxed),
            orphan_merges_.load(std::memory_order_relaxed),
            capacity_splits_.load(std::memory_order_relaxed),
            tower_splits_.load(std::memory_order_relaxed)};
  }

  // Per-instance event counter registry (src/stats/stats.h). Every public
  // operation installs a stats::Scope for this registry, so counts from all
  // layers touched on its behalf (seqlock retries, chunk shifts, reclamation)
  // are attributed to this map. Snapshot at any time with
  // `stats_registry().snapshot()`; compiles to a zero-size stub under
  // SV_STATS=OFF.
  stats::Registry& stats_registry() const noexcept { return stats_; }

  struct LayerStats {
    std::size_t nodes = 0;
    std::size_t orphans = 0;
    std::size_t elements = 0;
    double avg_fill = 0.0;  // elements / capacity over non-head nodes
  };
  struct Stats {
    std::vector<LayerStats> layers;  // [0] = data layer
    std::size_t bytes = 0;           // linked nodes only
  };

  // Quiescent: per-layer shape statistics.
  Stats stats() const {
    Stats s;
    s.layers.resize(config_.layer_count);
    for (std::uint32_t l = 0; l < config_.layer_count; ++l) {
      auto& ls = s.layers[l];
      double fill_sum = 0;
      std::size_t fill_n = 0;
      for (const NodeBase* n = heads_[l]; n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        ls.nodes++;
        ls.elements += node_size(const_cast<NodeBase*>(n));
        if (Lock::is_orphan(n->lock.load_relaxed())) ls.orphans++;
        if (!n->is_head) {
          fill_sum += static_cast<double>(
                          node_size(const_cast<NodeBase*>(n))) /
                      n->capacity;
          fill_n++;
        }
        s.bytes += node_bytes(n);
      }
      ls.avg_fill = fill_n ? fill_sum / static_cast<double>(fill_n) : 0.0;
    }
    return s;
  }

  // Quiescent: full structural audit. Walks every layer and collects every
  // invariant violation (up to max_violations) into a structured report
  // instead of stopping at the first or asserting -- a broken map yields a
  // complete picture of *how* it is broken. See debug/audit.h for codes.
  debug::AuditReport validate_structure(std::size_t max_violations = 64) const {
    using debug::AuditCode;
    debug::AuditReport rep;
    auto flag = [&](AuditCode code, std::uint32_t layer, std::string detail) {
      if (rep.violations.size() >= max_violations) {
        rep.truncated = true;
        return;
      }
      rep.violations.push_back({code, layer, std::move(detail)});
    };
    // Pass 1 -- per-layer invariants: quiescence of every lock word, orphan
    // flag placement, occupancy bounds (chunk size <= capacity = 2T),
    // intra-chunk key uniqueness, and inter-chunk key ordering.
    for (std::uint32_t l = 0; l < config_.layer_count; ++l) {
      bool have_prev_max = false;
      K prev_max{};
      for (const NodeBase* n = heads_[l]; n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        rep.nodes_checked++;
        auto* nn = const_cast<NodeBase*>(n);
        const std::uint32_t sz = node_size(nn);
        const Word w = n->lock.load_relaxed();
        if (Lock::is_locked(w) || Lock::is_frozen(w))
          flag(AuditCode::kLockedWhileQuiescent, l,
               "node locked/frozen while quiescent");
        if (n->is_head && Lock::is_orphan(w))
          flag(AuditCode::kHeadOrphan, l, "head marked orphan");
        if (!n->is_head && !Lock::is_orphan(w) && sz == 0)
          flag(AuditCode::kEmptyNonOrphan, l, "empty non-orphan node");
        if (sz > n->capacity)
          flag(AuditCode::kOverCapacity, l,
               "size " + std::to_string(sz) + " > capacity " +
                   std::to_string(n->capacity));
        if (sz > 0) {
          const K mn = node_min_key(nn);
          const K mx = node_max_key(nn);
          if (mx < mn) flag(AuditCode::kChunkKeyOrder, l, "max < min");
          if (have_prev_max && !(prev_max < mn))
            flag(AuditCode::kInterChunkOrder, l,
                 "left sibling max >= right sibling min");
          prev_max = mx;
          have_prev_max = true;
          if (!check_unique_keys(nn))
            flag(AuditCode::kDuplicateKeys, l, "duplicate keys in a chunk");
        }
      }
    }
    // Pass 2 -- down pointers: each index entry (key, down) targets a
    // non-orphan node linked in the layer below whose minimum key equals the
    // entry key; orphans below have no parent; non-orphan non-head nodes
    // have exactly one.
    for (std::uint32_t l = config_.layer_count; l-- > 1;) {
      std::vector<const NodeBase*> below;
      for (const NodeBase* n = heads_[l - 1]; n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        below.push_back(n);
      }
      std::vector<int> parent_count(below.size(), 0);
      auto index_of_node = [&](const NodeBase* target) -> std::ptrdiff_t {
        for (std::size_t i = 0; i < below.size(); ++i)
          if (below[i] == target) return static_cast<std::ptrdiff_t>(i);
        return -1;
      };
      for (const NodeBase* n = heads_[l]; n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        static_cast<const IndexNode*>(n)->vec.for_each(
            [&](K k, NodeBase* down) {
              rep.entries_checked++;
              const std::ptrdiff_t i = index_of_node(down);
              if (i < 0) {
                flag(AuditCode::kDanglingDown, l,
                     "down pointer to a node not linked below");
                return;
              }
              parent_count[static_cast<std::size_t>(i)]++;
              auto* dn = const_cast<NodeBase*>(below[i]);
              if (Lock::is_orphan(dn->lock.load_relaxed())) {
                flag(AuditCode::kOrphanWithParent, l,
                     "down pointer to orphan");
              } else if (node_size(dn) == 0 || node_min_key(dn) != k) {
                flag(AuditCode::kEntryChildMismatch, l,
                     "down target min != entry key");
              }
            });
        if (n->is_head && n->head_down != heads_[l - 1]) {
          flag(AuditCode::kHeadDownMismatch, l, "head_down mismatch");
        }
      }
      for (std::size_t i = 0; i < below.size(); ++i) {
        const NodeBase* n = below[i];
        const bool orphan = Lock::is_orphan(n->lock.load_relaxed());
        if (n->is_head) {
          if (parent_count[i] != 0)
            flag(AuditCode::kHeadHasParent, l - 1, "head has a parent entry");
        } else if (orphan) {
          if (parent_count[i] != 0)
            flag(AuditCode::kOrphanWithParent, l - 1,
                 "orphan has a parent entry");
        } else if (parent_count[i] != 1) {
          flag(AuditCode::kParentCountWrong, l - 1,
               "non-orphan has " + std::to_string(parent_count[i]) +
                   " parent entries");
        }
      }
    }
    // Pass 3 -- every key in an index layer is the minimum of its child
    // chunk (and hence, transitively, exists in the data layer).
    for (std::uint32_t l = 1; l < config_.layer_count; ++l) {
      for (const NodeBase* n = heads_[l]; n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        static_cast<const IndexNode*>(n)->vec.for_each(
            [&](K k, NodeBase* down) {
              if (node_size(down) == 0 || node_min_key(down) != k)
                flag(AuditCode::kIndexKeyMissingBelow, l,
                     "index key missing below");
            });
      }
    }
    return rep;
  }

  // Quiescent: check every structural invariant. Returns true if the
  // structure is well formed; otherwise false with a diagnostic in *err.
  // (Thin wrapper over validate_structure for existing callers.)
  bool validate(std::string* err = nullptr) const {
    const debug::AuditReport rep = validate_structure();
    if (rep.ok()) return true;
    if (err != nullptr) *err = rep.to_string();
    return false;
  }

#if defined(SV_FAULT_INJECTION) && SV_FAULT_INJECTION
  // Test-only (fault-injection builds): deliberately violate one structural
  // invariant on a quiesced map, so negative tests can prove the auditor
  // actually catches broken structures. Returns false when the current shape
  // has no site to corrupt (e.g. no index entries yet).
  enum class DebugCorruption {
    kOrphanFlagOnChild,   // -> kOrphanWithParent (+ follow-on parent-count)
    kIndexKeyOffByOne,    // -> kEntryChildMismatch / kIndexKeyMissingBelow
    kClearNonHeadChunk,   // -> kEmptyNonOrphan (+ entry-child mismatch above)
  };
  bool debug_corrupt(DebugCorruption c) {
    switch (c) {
      case DebugCorruption::kOrphanFlagOnChild: {
        for (std::uint32_t l = config_.layer_count; l-- > 1;) {
          for (NodeBase* n = heads_[l]; n != nullptr;
               n = n->next.load(std::memory_order_relaxed)) {
            NodeBase* child = nullptr;
            as_index(n)->vec.for_each([&](K, NodeBase* down) {
              if (child == nullptr) child = down;
            });
            if (child != nullptr) {
              child->lock.acquire();
              child->lock.set_orphan_locked(true);
              child->lock.release();
              return true;
            }
          }
        }
        return false;
      }
      case DebugCorruption::kIndexKeyOffByOne: {
        for (std::uint32_t l = config_.layer_count; l-- > 1;) {
          for (NodeBase* n = heads_[l]; n != nullptr;
               n = n->next.load(std::memory_order_relaxed)) {
            bool have = false;
            K k{};
            as_index(n)->vec.for_each([&](K key, NodeBase*) {
              if (!have) {
                k = key;
                have = true;
              }
            });
            if (have) {
              NodeBase* down = nullptr;
              as_index(n)->vec.erase(k, &down);
              as_index(n)->vec.insert(k + K{1}, down);
              return true;
            }
          }
        }
        return false;
      }
      case DebugCorruption::kClearNonHeadChunk: {
        for (NodeBase* n = heads_[0]; n != nullptr;
             n = n->next.load(std::memory_order_relaxed)) {
          if (!n->is_head && !Lock::is_orphan(n->lock.load_relaxed()) &&
              node_size(n) > 0) {
            as_data(n)->vec.clear();
            return true;
          }
        }
        return false;
      }
    }
    return false;
  }
#endif  // SV_FAULT_INJECTION

 private:
  // ---- Allocation ----------------------------------------------------------
  //
  // All layout arithmetic lives in alloc::NodeLayout (the single source of
  // truth shared with the allocator layer); allocation and deallocation go
  // through the Alloc policy. Deallocation is *sized*: the byte count is
  // recomputed from the node header, so the pool finds the size class
  // without any per-block metadata.

  template <class NodeType, class P>
  static constexpr alloc::NodeLayout node_layout(std::uint32_t cap) {
    return alloc::NodeLayout::of<NodeType, std::atomic<K>, std::atomic<P>>(
        cap);
  }

  template <class NodeType, class P>
  NodeType* alloc_node(std::uint32_t cap, NodeBase* down, std::uint8_t layer,
                       bool head, bool orphan) {
    const alloc::NodeLayout l = node_layout<NodeType, P>(cap);
    void* mem = alloc_.allocate(l.bytes);
    auto* keys = reinterpret_cast<std::atomic<K>*>(static_cast<char*>(mem) +
                                                   l.keys_off);
    auto* vals = reinterpret_cast<std::atomic<P>*>(static_cast<char*>(mem) +
                                                   l.vals_off);
    for (std::uint32_t i = 0; i < cap; ++i) {
      new (keys + i) std::atomic<K>();
      new (vals + i) std::atomic<P>();
    }
    return new (mem) NodeType(keys, vals, down, cap, layer, head, orphan);
  }

  void free_node(NodeBase* n) {
    // Node types are trivially destructible aggregates of atomics.
    alloc_.deallocate(n, node_bytes(n));
  }

  // Owned deleter handed to the reclaimer: routes a retired node back
  // through the owning map's allocator (reclaim/deleter.h).
  static void reclaim_node(void* p, void* self) {
    static_cast<SkipVectorMap*>(self)->free_node(static_cast<NodeBase*>(p));
  }

  template <class T>
  static void write_pod(std::ostream& out, const T& v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
  }
  template <class T>
  static void read_pod(std::istream& in, T& v) {
    in.read(reinterpret_cast<char*>(&v), sizeof(T));
  }

  static std::size_t node_bytes(const NodeBase* n) {
    return n->layer ? node_layout<IndexNode, NodeBase*>(n->capacity).bytes
                    : node_layout<DataNode, V>(n->capacity).bytes;
  }

  // ---- Typed access helpers -------------------------------------------------

  static IndexNode* as_index(NodeBase* n) noexcept {
    return static_cast<IndexNode*>(n);
  }
  static DataNode* as_data(NodeBase* n) noexcept {
    return static_cast<DataNode*>(n);
  }

  static std::uint32_t node_size(NodeBase* n) noexcept {
    return n->layer ? as_index(n)->vec.size() : as_data(n)->vec.size();
  }
  static K node_min_key(NodeBase* n) noexcept {
    return n->layer ? as_index(n)->vec.min_key() : as_data(n)->vec.min_key();
  }
  static K node_max_key(NodeBase* n) noexcept {
    return n->layer ? as_index(n)->vec.max_key() : as_data(n)->vec.max_key();
  }
  static bool check_unique_keys(NodeBase* n) {
    std::vector<K> ks;
    auto collect = [&](K k, auto) { ks.push_back(k); };
    if (n->layer) {
      as_index(n)->vec.for_each(collect);
    } else {
      as_data(n)->vec.for_each(collect);
    }
    std::sort(ks.begin(), ks.end());
    return std::adjacent_find(ks.begin(), ks.end()) == ks.end();
  }
  static void node_merge_from(NodeBase* dst, NodeBase* src) noexcept {
    if (dst->layer) {
      as_index(dst)->vec.merge_from(as_index(src)->vec);
    } else {
      as_data(dst)->vec.merge_from(as_data(src)->vec);
    }
  }

  std::uint32_t merge_threshold(std::uint8_t layer) const noexcept {
    return layer ? config_.merge_threshold_index()
                 : config_.merge_threshold_data();
  }

  // ---- Height generation (§III-A.2) -----------------------------------------

  std::uint32_t random_height() {
    thread_local Xoshiro256 rng = [] {
      static std::atomic<std::uint64_t> counter{0x5eed};
      return Xoshiro256(counter.fetch_add(0x9e3779b97f4a7c15ULL,
                                          std::memory_order_relaxed));
    }();
    const std::uint32_t top = config_.layer_count - 1;
    if (top == 0) return 0;
    // P(height == 0) = (T_D - 1) / T_D; for T_D == 1 fall back to 1/2 so the
    // degenerate (classic skip list) configuration keeps a sane shape.
    const std::uint64_t td = config_.target_data_vector_size;
    if (td > 1) {
      if (rng.next_below(td) != 0) return 0;
    } else {
      if (rng.next_below(2) != 0) return 0;
    }
    // Geometric with p = 1/T_I from 1 to layer_count - 1.
    const std::uint64_t ti = config_.target_index_vector_size > 1
                                 ? config_.target_index_vector_size
                                 : 2;
    std::uint32_t h = 1;
    while (h < top && rng.next_below(ti) == 0) ++h;
    return h;
  }

  // ---- Speculative traversal (shared by Listings 2-4) ------------------------

  struct Trav {
    NodeBase* node = nullptr;
    Word ver = 0;
    int slot = 0;  // hazard-pointer slot currently protecting `node`
  };

  // RAII scope marking one logical operation for the reclaimer. Epoch-based
  // policies pin the calling thread's epoch for the duration (covering every
  // speculative read, including across restarts); no-op for the others.
  struct OpGuard {
    explicit OpGuard(Ctx& c) noexcept : ctx(c) { ctx.begin_op(); }
    ~OpGuard() { ctx.end_op(); }
    OpGuard(const OpGuard&) = delete;
    OpGuard& operator=(const OpGuard&) = delete;
    Ctx& ctx;
  };
  static int other_slot(int s) noexcept { return s ^ 1; }

  // Prefetch-ahead during traversal ("Skiplists with Foresight"): issue the
  // read hint on a speculatively-loaded right/down pointer immediately,
  // before the seqlock validation that proves the pointer was current. A
  // prefetch never faults, so hinting a stale or already-retired node is
  // harmless; when the pointer is good, its header plus the start of its
  // key array ([node | keys | vals] is one contiguous allocation) is in
  // flight by the time validation completes and the node is scanned.
  static void prefetch_node(const NodeBase* n) noexcept {
    const char* p = reinterpret_cast<const char*>(n);
    prefetch_read(p);
    prefetch_read(p + kCacheLineSize);
  }

  Trav begin_traversal(Ctx& ctx) {
    Trav t;
    t.node = head_;
    t.slot = 0;
    ctx.protect(t.slot, t.node);  // heads are immortal, but keep it uniform
    t.ver = t.node->lock.read_begin();
    return t;
  }

  // TraverseRight (Listing 2 lines 23-48). Moves t rightward until t.node is
  // the floor node for k in its layer, merging empty orphans (any caller)
  // and under-threshold orphans (mutators). Returns false -> restart.
  bool traverse_right(Ctx& ctx, Trav& t, K k, bool mutator) {
    for (;;) {
      const std::uint32_t sz = node_size(t.node);
      if (sz != 0 && !(k > node_max_key(t.node))) break;  // speculative stop
      NodeBase* next = t.node->next.load(std::memory_order_acquire);
      if (next == nullptr) break;  // no right sibling (the paper's top sentinel)
      prefetch_node(next);
      const int nslot = other_slot(t.slot);
      ctx.protect(nslot, next);
      if (!t.node->lock.validate(t.ver)) return false;  // also validates HP
      const Word next_ver = next->lock.read_begin();

      // Uncommon case: merge/remove nodes left behind by prior Removes
      // (lines 28-39). Empty orphans are merged by any operation;
      // under-threshold orphans only by Insert/Remove.
      const std::uint32_t next_sz = node_size(next);
      if (Lock::is_orphan(next_ver) &&
          (next_sz == 0 ||
           (mutator && sz + next_sz < merge_threshold(t.node->layer))) &&
          sz + next_sz <= t.node->capacity) {
        if (!t.node->lock.try_upgrade(t.ver)) return false;
        if (!next->lock.try_upgrade(next_ver)) {
          t.node->lock.release();
          return false;
        }
        SV_FAULT_POINT(debug::Point::kMerge);  // both write locks held
        orphan_merges_.fetch_add(1, std::memory_order_relaxed);
        stats::count(stats::Counter::kOrphanMerges);
#if defined(SV_FAULT_INJECTION) && SV_FAULT_INJECTION
        // Mutation site (checker-teeth testing only): when fired, unlink the
        // orphan WITHOUT absorbing its elements -- every mapping it held
        // silently vanishes. See docs/LINEARIZABILITY.md.
        if (!SV_FAULT_SHOULD_FAIL(debug::Point::kMutDropMerge))
#endif
        node_merge_from(t.node, next);
        t.node->next.store(next->next.load(std::memory_order_relaxed),
                           std::memory_order_release);
        // Release before retiring: `next` is already unlinked while both
        // locks are held, so no new reader can reach it, and an immediate
        // reclaimer frees it inside retire().
        next->lock.release();
        ctx.retire(next, &reclaim_node, this);
        t.ver = t.node->lock.release();
        ctx.drop(nslot);
        continue;  // re-evaluate from the (possibly grown) current node
      }

      if (next_sz == 0 || k < node_min_key(next)) {
        // Either k belongs here, or speculation saw an inconsistent next;
        // verify the basis for stopping (line 41).
        if (!next->lock.validate(next_ver)) return false;
        if (next_sz == 0) return false;  // empty non-orphan: racing state
        ctx.drop(nslot);
        break;
      }
      if (!t.node->lock.validate(t.ver)) return false;
      ctx.drop(t.slot);
      t = Trav{next, next_ver, nslot};
    }
    return true;
  }

  // ExchangeDown (Listing 2 lines 17-22): hand-over-hand move one layer down.
  bool exchange_down(Ctx& ctx, Trav& t, NodeBase* down) {
    prefetch_node(down);
    const int nslot = other_slot(t.slot);
    ctx.protect(nslot, down);
    if (!t.node->lock.validate(t.ver)) return false;
    const Word down_ver = down->lock.read_begin();
    if (!t.node->lock.validate(t.ver)) return false;
    ctx.drop(t.slot);
    t = Trav{down, down_ver, nslot};
    return true;
  }

  // Resolve the downward pointer for k out of index node t.node. Returns
  // false on inconsistent speculation (caller restarts). Sets *exact if the
  // chunk holds k itself.
  bool index_down(Trav& t, K k, NodeBase** down, bool* exact) {
    const auto fle = as_index(t.node)->vec.find_le(k);
    if (fle.found) {
      *down = fle.val;
      *exact = (fle.key == k);
      return true;
    }
    if (t.node->is_head) {
      *down = t.node->head_down;
      *exact = false;
      return true;
    }
    return false;  // non-head with no key <= k: inconsistent speculation
  }

  // ---- Lookup implementation -------------------------------------------------

  bool try_lookup(Ctx& ctx, K k, std::optional<V>& result) {
    Trav t = begin_traversal(ctx);
    while (t.node->layer > 0) {
      if (!traverse_right(ctx, t, k, /*mutator=*/false)) return false;
      NodeBase* down = nullptr;
      bool exact = false;
      if (!index_down(t, k, &down, &exact)) return false;
      if (!exchange_down(ctx, t, down)) return false;
    }
    if (!traverse_right(ctx, t, k, /*mutator=*/false)) return false;
    result = as_data(t.node)->vec.get(k);
    if (!t.node->lock.validate(t.ver)) return false;  // linearization point
    ctx.drop_all();
    return true;
  }

  // ---- Insert implementation -------------------------------------------------

  struct InsertState {
    std::array<NodeBase*, Config::kMaxLayers> prevs{};
    // Layers [lowest_frozen, height] are frozen by us; kMaxLayers + 1 means
    // "nothing frozen yet".
    std::uint32_t lowest_frozen = Config::kMaxLayers + 1;
#if defined(SV_FAULT_INJECTION) && SV_FAULT_INJECTION
    // mut-skip-freeze fired: run the data-layer write with no seqlock at
    // all (checker-teeth testing only; see try_insert).
    bool mut_unlocked = false;
#endif
  };

  void thaw_all(InsertState& st, std::uint32_t height) {
    if (st.lowest_frozen > height) return;
    for (std::uint32_t l = st.lowest_frozen; l <= height; ++l) {
      SV_FAULT_POINT(debug::Point::kThaw);  // node still frozen here
      st.prevs[l]->lock.thaw();
      stats::count(stats::Counter::kThaws);
    }
    st.lowest_frozen = Config::kMaxLayers + 1;
  }

  bool try_insert(Ctx& ctx, K k, V v, std::uint32_t height, InsertState& st,
                  bool& result) {
    const std::uint32_t top = config_.layer_count - 1;
    Trav t;
    std::uint32_t layer;
    bool resumed_at_checkpoint = false;

    if (st.lowest_frozen <= height && st.lowest_frozen >= 1) {
      // Checkpoint resume (Listing 3 line 14): the lowest node we froze
      // cannot have changed; restart the descent from it.
      SV_FAULT_POINT(debug::Point::kResume);
      layer = st.lowest_frozen;
      t.node = st.prevs[layer];
      t.slot = 0;
      ctx.protect(t.slot, t.node);
      t.ver = t.node->lock.load_relaxed();
      resumed_at_checkpoint = true;
    } else if (st.lowest_frozen == 0) {
      // Data layer already frozen: go straight to the write phase.
      return insert_write_phase(ctx, k, v, height, st, result);
    } else {
      t = begin_traversal(ctx);
      layer = top;
    }

    for (; layer >= 1; --layer) {
      if (!resumed_at_checkpoint) {
        if (!traverse_right(ctx, t, k, /*mutator=*/true)) return false;
        if (layer <= height) {
          if (SV_FAULT_SHOULD_FAIL(debug::Point::kFreeze)) return false;
          if (!t.node->lock.try_freeze(t.ver)) return false;
          stats::count(stats::Counter::kFreezes);
          t.ver = t.node->lock.load_relaxed();
          st.prevs[layer] = t.node;
          st.lowest_frozen = layer;  // checkpoint
        }
      }
      resumed_at_checkpoint = false;

      NodeBase* down = nullptr;
      bool exact = false;
      if (!index_down(t, k, &down, &exact)) return false;
      if (exact) {
        // k already present in an index layer -> the map contains k.
        if (!t.node->lock.validate(t.ver)) return false;
        thaw_all(st, height);
        ctx.drop_all();
        result = false;
        return true;
      }
      if (!exchange_down(ctx, t, down)) return false;
    }

    // Data layer.
    if (!traverse_right(ctx, t, k, /*mutator=*/true)) return false;
    if (SV_FAULT_SHOULD_FAIL(debug::Point::kFreeze)) return false;
#if defined(SV_FAULT_INJECTION) && SV_FAULT_INJECTION
    // Mutation site (checker-teeth testing only): when fired, skip the
    // data-layer freeze entirely -- the write phase then mutates the chunk
    // with NO seqlock transition, so concurrent readers validate
    // successfully against torn mid-shift states and concurrent writers'
    // upgrades succeed on a chunk being rewritten. Ordinary (height 0)
    // inserts only, so index layers keep their legitimate freezes.
    if (height == 0 && SV_FAULT_SHOULD_FAIL(debug::Point::kMutSkipFreeze)) {
      st.prevs[0] = t.node;
      st.lowest_frozen = 0;
      st.mut_unlocked = true;
      return insert_write_phase(ctx, k, v, height, st, result);
    }
#endif
    if (!t.node->lock.try_freeze(t.ver)) return false;
    stats::count(stats::Counter::kFreezes);
    st.prevs[0] = t.node;
    st.lowest_frozen = 0;
    return insert_write_phase(ctx, k, v, height, st, result);
  }

  bool insert_write_phase(Ctx& ctx, K k, V v, std::uint32_t height,
                          InsertState& st, bool& result) {
    // Everything in prevs[0..height] is frozen by us: reads below are
    // stable, and upgrade_frozen cannot fail. This phase never restarts.
    if (as_data(st.prevs[0])->vec.contains(k)) {
      thaw_all(st, height);
      ctx.drop_all();
      result = false;
      return true;
    }

    // Build new nodes bottom-up for layers [0, height), each containing k
    // plus every element of prevs[layer] greater than k (Listing 3 32-39).
    NodeBase* below = nullptr;
    for (std::uint32_t layer = 0; layer < height; ++layer) {
      NodeBase* prev = st.prevs[layer];
      prev->lock.upgrade_frozen();
      NodeBase* fresh;
      if (layer == 0) {
        auto* dn = alloc_split_node<DataNode, V>(as_data(prev)->vec, k,
                                                 config_.data_capacity(), 0);
        as_data(prev)->vec.steal_greater(k, dn->vec);
        dn->vec.insert(k, v);
        fresh = dn;
      } else {
        auto* in = alloc_split_node<IndexNode, NodeBase*>(
            as_index(prev)->vec, k, config_.index_capacity(),
            static_cast<std::uint8_t>(layer));
        SV_FAULT_POINT(debug::Point::kStealAbove);
        stats::count(stats::Counter::kStealAbove);
        as_index(prev)->vec.steal_greater(k, in->vec);
        in->vec.insert(k, below);
        fresh = in;
      }
      fresh->next.store(prev->next.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      SV_FAULT_POINT(debug::Point::kTowerSplit);  // split built, not published
      prev->next.store(fresh, std::memory_order_release);
      prev->lock.release();
      tower_splits_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kTowerSplits);
      below = fresh;
    }

    // At the chosen height, k joins an existing chunk (lines 40-42),
    // splitting it at capacity first (creating an orphan, Fig. 3d).
    NodeBase* prev = st.prevs[height];
#if defined(SV_FAULT_INJECTION) && SV_FAULT_INJECTION
    if (st.mut_unlocked) {
      // mut-skip-freeze (see try_insert): replay the split's element
      // migration with NO lock transition at all. The chunk's upper half
      // is erased, invisible for the duration of the nested point
      // (pyield@/pdelay@mut-skip-freeze widen the window), then restored
      // -- concurrent readers validate successfully against precisely the
      // intermediate state the freeze protocol exists to hide. Everything
      // is an in-place atomic slot write: no next-pointer edits, no
      // allocation, no retirement, so the injected bug is purely a
      // linearizability violation, never a memory-safety one.
      auto* dn = as_data(prev);
      std::vector<std::pair<K, V>> all;
      dn->vec.for_each([&](K dk, V dv) { all.emplace_back(dk, dv); });
      std::sort(all.begin(), all.end());
      std::vector<std::pair<K, V>> hidden(all.begin() + (all.size() + 1) / 2,
                                          all.end());
      for (const auto& [hk, hv] : hidden) dn->vec.erase(hk);
      SV_FAULT_POINT(debug::Point::kMutSkipFreeze);
      for (const auto& [hk, hv] : hidden) dn->vec.insert(hk, hv);
      dn->vec.insert(k, v);  // best effort: a full chunk drops the insert
      st.lowest_frozen = Config::kMaxLayers + 1;
      st.mut_unlocked = false;
      ctx.drop_all();
      result = true;
      return true;
    }
#endif
    prev->lock.upgrade_frozen();
    if (height == 0) {
      insert_at_top<DataNode, V>(as_data(prev), k, v);
    } else {
      insert_at_top<IndexNode, NodeBase*>(as_index(prev), k, below);
    }
    prev->lock.release();
    st.lowest_frozen = Config::kMaxLayers + 1;
    ctx.drop_all();
    result = true;
    return true;
  }

  // Allocate the right-hand node for a split at key k. Normally the layer's
  // configured capacity suffices; when the donor is a head whose every
  // element exceeds k, the stolen suffix plus k can exceed it, so size up
  // (rare; keeps the "newNode's first element is k" invariant intact).
  template <class NodeType, class P, class Vec>
  NodeType* alloc_split_node(const Vec& donor, K k, std::uint32_t cap,
                             std::uint8_t layer) {
    std::uint32_t needed = 1;
    donor.for_each([&](K dk, auto) { needed += (dk > k) ? 1 : 0; });
    if (needed > cap) cap = needed;
    return alloc_node<NodeType, P>(cap, nullptr, layer, /*head=*/false,
                                   /*orphan=*/false);
  }

  template <class NodeType, class P>
  void insert_at_top(NodeType* node, K k, P payload) {
    if (node->vec.full()) {
      // Capacity split: the new right sibling is an orphan (no parent entry
      // exists for it; a later merge may fold it back, Fig. 3d). The
      // sibling must be fully written *before* it is published via next --
      // it has no lock protection against speculative readers until then.
      auto* sib = alloc_node<NodeType, P>(node->capacity, nullptr, node->layer,
                                          /*head=*/false, /*orphan=*/true);
      capacity_splits_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kCapacitySplits);
      const K sib_min = node->vec.split_half(sib->vec);
      const bool goes_right = k >= sib_min;
      if (goes_right) {
        const bool ok = sib->vec.insert(k, payload);
        assert(ok);
        (void)ok;
      }
      sib->next.store(node->next.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      SV_FAULT_POINT(debug::Point::kSplit);  // orphan built, not yet published
      node->next.store(sib, std::memory_order_release);
      if (goes_right) return;
    }
    const bool ok = node->vec.insert(k, payload);
    assert(ok);
    (void)ok;
  }

  // ---- Remove implementation -------------------------------------------------

  bool try_remove(Ctx& ctx, K k, bool& result) {
    Trav t = begin_traversal(ctx);
    bool found_in_index = false;

    while (t.node->layer > 0) {
      if (!traverse_right(ctx, t, k, /*mutator=*/true)) return false;
      NodeBase* down = nullptr;
      bool exact = false;
      if (!index_down(t, k, &down, &exact)) return false;
      if (exact) {
        // k lives in this index layer. If k is the minimum of a non-orphan,
        // non-head node, k must also exist one layer up -- but we did not
        // see it there, so a concurrent Insert is mid-flight (Listing 4
        // line 13): restart. Heads are exempt (conceptual minimum -inf).
        if (!t.node->is_head && !Lock::is_orphan(t.ver) &&
            node_min_key(t.node) == k) {
          return false;
        }
        if (!t.node->lock.try_upgrade(t.ver)) return false;
        found_in_index = true;
        break;
      }
      if (!exchange_down(ctx, t, down)) return false;
    }

    if (!found_in_index) {
      // Common case: k is in no index layer (lines 23-34).
      if (!traverse_right(ctx, t, k, /*mutator=*/true)) return false;
      if (!t.node->is_head && !Lock::is_orphan(t.ver) &&
          node_size(t.node) > 0 && node_min_key(t.node) == k) {
        return false;  // racing Insert placed k here with height > 0
      }
      if (!t.node->lock.try_upgrade(t.ver)) return false;
#if defined(SV_FAULT_INJECTION) && SV_FAULT_INJECTION
      // Mutation site (checker-teeth testing only): when fired, release the
      // seqlock BEFORE performing the erase. The release bumps the version,
      // so speculative readers of this chunk validate successfully against
      // the torn mid-erase element set.
      if (SV_FAULT_SHOULD_FAIL(debug::Point::kMutEarlyRelease)) {
        t.node->lock.release();
        std::this_thread::yield();  // widen the torn window
        result = as_data(t.node)->vec.erase(k);
        ctx.drop_all();
        return true;
      }
#endif
      result = as_data(t.node)->vec.erase(k);
      t.node->lock.release();
      ctx.drop_all();
      return true;
    }

    // k found in an index layer: walk the down pointers, removing k from
    // each layer and orphaning the node below (lines 37-44). Locks are held
    // top-down pairwise; every node below is reachable only through locked
    // ancestors, so hazard pointers are unnecessary here.
    NodeBase* curr = t.node;
    while (curr->layer > 0) {
      NodeBase* down = nullptr;
      const bool erased = as_index(curr)->vec.erase(k, &down);
      assert(erased && down != nullptr);
      if (!erased || down == nullptr) {
        // Unreachable by the §IV-C invariant (the entry was present under
        // the lock we hold); restart defensively rather than crash.
        curr->lock.release();
        return false;
      }
      down->lock.acquire();
      down->lock.set_orphan_locked(true);
      curr->lock.release();
      curr = down;
    }
    const bool erased = as_data(curr)->vec.erase(k);
    assert(erased);
    (void)erased;
    curr->lock.release();
    ctx.drop_all();
    result = true;
    return true;
  }

  // ---- Update implementation -------------------------------------------------

  bool try_update(Ctx& ctx, K k, V v, bool& result) {
    Trav t = begin_traversal(ctx);
    while (t.node->layer > 0) {
      if (!traverse_right(ctx, t, k, /*mutator=*/false)) return false;
      NodeBase* down = nullptr;
      bool exact = false;
      if (!index_down(t, k, &down, &exact)) return false;
      if (!exchange_down(ctx, t, down)) return false;
    }
    if (!traverse_right(ctx, t, k, /*mutator=*/false)) return false;
    if (!t.node->lock.try_upgrade(t.ver)) return false;
    result = as_data(t.node)->vec.assign(k, v);
    t.node->lock.release();
    ctx.drop_all();
    return true;
  }

  // ---- Ordered-navigation implementation ---------------------------------------

  bool try_floor(Ctx& ctx, K k, Entry& out) {
    Trav t = begin_traversal(ctx);
    while (t.node->layer > 0) {
      if (!traverse_right(ctx, t, k, /*mutator=*/false)) return false;
      NodeBase* down = nullptr;
      bool exact = false;
      if (!index_down(t, k, &down, &exact)) return false;
      if (!exchange_down(ctx, t, down)) return false;
    }
    if (!traverse_right(ctx, t, k, /*mutator=*/false)) return false;
    // The positioned node is the floor node: nothing to its right can hold
    // a key <= k, and (unless it is the head) its minimum is <= k.
    const auto fle = as_data(t.node)->vec.find_le(k);
    if (!fle.found && !t.node->is_head) return false;  // torn speculation
    if (!t.node->lock.validate(t.ver)) return false;
    out = fle.found ? Entry(std::in_place, fle.key, fle.val) : std::nullopt;
    ctx.drop_all();
    return true;
  }

  bool try_ceiling(Ctx& ctx, K k, Entry& out) {
    Trav t = begin_traversal(ctx);
    while (t.node->layer > 0) {
      if (!traverse_right(ctx, t, k, /*mutator=*/false)) return false;
      NodeBase* down = nullptr;
      bool exact = false;
      if (!index_down(t, k, &down, &exact)) return false;
      if (!exchange_down(ctx, t, down)) return false;
    }
    if (!traverse_right(ctx, t, k, /*mutator=*/false)) return false;
    return try_scan_forward(ctx, t, k, /*use_k=*/true, out);
  }

  // From data node t, find the smallest entry (with key >= k when use_k)
  // in t or any successor, walking hand-over-hand past empty chunks.
  bool try_scan_forward(Ctx& ctx, Trav t, K k, bool use_k, Entry& out) {
    for (;;) {
      const auto e = use_k ? as_data(t.node)->vec.find_ge(k)
                           : as_data(t.node)->vec.min_entry();
      if (e.found) {
        if (!t.node->lock.validate(t.ver)) return false;
        out = Entry(std::in_place, e.key, e.val);
        ctx.drop_all();
        return true;
      }
      NodeBase* next = t.node->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        if (!t.node->lock.validate(t.ver)) return false;
        out = std::nullopt;
        ctx.drop_all();
        return true;
      }
      prefetch_node(next);
      const int nslot = other_slot(t.slot);
      ctx.protect(nslot, next);
      if (!t.node->lock.validate(t.ver)) return false;
      const Word next_ver = next->lock.read_begin();
      // Re-validate AFTER reading next's word (the paper's ExchangeDown
      // does the same, Listing 2 line 20): it proves next was still linked
      // when its version was sampled. Otherwise next_ver could be a stable
      // post-unlink word, and every later validate of next would pass while
      // its successors are retired under us.
      if (!t.node->lock.validate(t.ver)) return false;
      ctx.drop(t.slot);
      t = Trav{next, next_ver, nslot};
    }
  }

  // Walk t to the last node of its layer whose chunk is non-empty (or the
  // layer head when the whole layer is empty), re-pinning to slot 0.
  bool rightmost_nonempty(Ctx& ctx, Trav& t) {
    static_assert(reclaim::HazardDomain::kSlotsPerThread >= 3 ||
                      !std::is_same_v<Reclaimer, reclaim::HazardReclaimer>,
                  "rightmost walk needs a third hazard slot");
    Trav best = t;
    ctx.protect(2, best.node);
    best.slot = 2;
    for (;;) {
      NodeBase* next = t.node->next.load(std::memory_order_acquire);
      if (next == nullptr) break;
      prefetch_node(next);
      const int nslot = t.slot ^ 1;  // ping-pong within {0, 1}
      ctx.protect(nslot, next);
      if (!t.node->lock.validate(t.ver)) return false;
      const Word next_ver = next->lock.read_begin();
      // Second validate after sampling next's word -- see try_scan_forward.
      if (!t.node->lock.validate(t.ver)) return false;
      t = Trav{next, next_ver, nslot};
      if (node_size(t.node) > 0) {
        ctx.protect(2, t.node);
        best = Trav{t.node, next_ver, 2};
      }
    }
    ctx.protect(0, best.node);  // best stayed protected via slot 2
    ctx.drop(1);
    ctx.drop(2);
    t = Trav{best.node, best.ver, 0};
    return true;
  }

  bool try_last(Ctx& ctx, Entry& out) {
    Trav t = begin_traversal(ctx);
    for (;;) {
      if (!rightmost_nonempty(ctx, t)) return false;
      if (t.node->layer == 0) {
        const auto me = as_data(t.node)->vec.max_entry();
        if (!t.node->lock.validate(t.ver)) return false;
        out = me.found ? Entry(std::in_place, me.key, me.val) : std::nullopt;
        ctx.drop_all();
        return true;
      }
      const auto me = as_index(t.node)->vec.max_entry();
      NodeBase* down = nullptr;
      if (me.found) {
        down = me.val;
      } else if (t.node->is_head) {
        down = t.node->head_down;
      } else {
        return false;  // torn speculation: empty non-head after the walk
      }
      if (!exchange_down(ctx, t, down)) return false;
    }
  }

  // ---- Range implementation ---------------------------------------------------

  // Write-lock the data nodes covering [lo, hi] left to right, call
  // body(node) on each (body returns its visit count), release all.
  // Returns the total number of mappings visited.
  template <class Body>
  std::size_t range_locked(K lo, K hi, Body&& body) {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    sync::Backoff backoff;
    for (;;) {
      std::size_t visited = 0;
      if (try_range(ctx, lo, hi, body, visited)) {
        stats::count(stats::Counter::kRangeOps);
        if (visited > 0) stats::count(stats::Counter::kRangeKeysVisited, visited);
        return visited;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  template <class Body>
  bool try_range(Ctx& ctx, K lo, K hi, Body& body, std::size_t& visited) {
    Trav t = begin_traversal(ctx);
    while (t.node->layer > 0) {
      if (!traverse_right(ctx, t, lo, /*mutator=*/false)) return false;
      NodeBase* down = nullptr;
      bool exact = false;
      if (!index_down(t, lo, &down, &exact)) return false;
      if (!exchange_down(ctx, t, down)) return false;
    }
    if (!traverse_right(ctx, t, lo, /*mutator=*/false)) return false;
    if (!t.node->lock.try_upgrade(t.ver)) return false;
    // Growing phase: extend right while the range may continue. While we
    // hold a node's write lock its successor cannot be unlinked, so the
    // plain next walk is safe without hazard pointers.
    std::vector<NodeBase*> locked;
    locked.push_back(t.node);
    ctx.drop_all();
    for (;;) {
      NodeBase* last = locked.back();
      NodeBase* next = last->next.load(std::memory_order_acquire);
      if (next == nullptr) break;
      const std::uint32_t nsz = node_size(next);
      if (nsz > 0 && node_min_key(next) > hi) break;
      next->lock.acquire();
      locked.push_back(next);
      if (nsz > 0 && node_max_key(next) > hi) break;
    }
    for (NodeBase* n : locked) visited += body(as_data(n));
    for (NodeBase* n : locked) n->lock.release();
    return true;
  }

  // ---- Members ----------------------------------------------------------------

  Config config_;
  // alloc_ is declared before reclaimer_ on purpose: the reclaimer's
  // destructor frees pending retirements *through* the allocator, so the
  // allocator must be destroyed after it (reverse declaration order).
  Alloc alloc_;
  Reclaimer reclaimer_;
  std::vector<NodeBase*> heads_;  // per layer, [0] = data
  NodeBase* head_ = nullptr;      // top-layer head (the paper's `head`)
  std::atomic<std::int64_t> approx_size_{0};
  mutable std::atomic<std::uint64_t> restarts_{0};
  mutable std::atomic<std::uint64_t> orphan_merges_{0};
  mutable std::atomic<std::uint64_t> capacity_splits_{0};
  mutable std::atomic<std::uint64_t> tower_splits_{0};
  mutable stats::Registry stats_;
};

// Convenience aliases matching the paper's evaluated variants.
template <class K, class V>
using SkipVector = SkipVectorMap<K, V, reclaim::HazardReclaimer,
                                 vectormap::Layout::kSorted,
                                 vectormap::Layout::kUnsorted>;  // SV-HP

template <class K, class V>
using SkipVectorLeak = SkipVectorMap<K, V, reclaim::LeakReclaimer,
                                     vectormap::Layout::kSorted,
                                     vectormap::Layout::kUnsorted>;  // SV-Leak

template <class K, class V>
using SkipVectorSeq = SkipVectorMap<K, V, reclaim::ImmediateReclaimer,
                                    vectormap::Layout::kSorted,
                                    vectormap::Layout::kUnsorted>;

// Pool-allocated variants: SV-HP / SV-Leak on a slab pool with per-thread
// magazines (alloc/pool_allocator.h). Note SkipVectorPoolLeak does NOT leak
// node memory at destruction: unlinked nodes are never reclaimed while the
// map lives (the paper's Leak semantics), but every byte sits in a pool
// arena and is released wholesale by the allocator's destructor.
template <class K, class V>
using SkipVectorPool =
    SkipVectorMap<K, V, reclaim::HazardReclaimer, vectormap::Layout::kSorted,
                  vectormap::Layout::kUnsorted, alloc::PoolNodeAllocator>;

template <class K, class V>
using SkipVectorPoolLeak =
    SkipVectorMap<K, V, reclaim::LeakReclaimer, vectormap::Layout::kSorted,
                  vectormap::Layout::kUnsorted, alloc::PoolNodeAllocator>;

}  // namespace sv::core
