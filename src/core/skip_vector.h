// SkipVectorMap: the paper's primary contribution (Listings 1-4).
//
// A concurrent ordered map structured like a skip list whose index and data
// layers are flattened into chunks ("vectors") of target size T (capacity
// 2T). Each node carries a sequence lock with isOrphan/isFrozen flags;
// traversals are speculative hand-over-hand read sections, mutations take
// write locks bottom-up after a top-down freeze phase, and unlinked nodes
// are reclaimed through a pluggable Reclaimer policy (hazard pointers for
// SV-HP, leaking for SV-Leak, immediate free for sequential use).
//
// Template parameters:
//   K, V           key/value; must be trivially copyable and lock-free as
//                  std::atomic (speculative readers require it; see
//                  DESIGN.md §3.2). 64-bit keys/values as in the paper.
//   Reclaimer      sv::reclaim::{HazardReclaimer, LeakReclaimer,
//                  ImmediateReclaimer}
//   Alloc          node allocator policy, sv::alloc::{MallocNodeAllocator,
//                  PoolNodeAllocator} (docs/MEMORY.md). The reclaimer routes
//                  node destruction back through this allocator (retire
//                  carries an owned deleter; see reclaim/deleter.h), so
//                  reclaimed chunks re-enter the pool.
//   HashIndex      optional hash sidecar for point operations,
//                  sv::core::hashidx::{NoIndex, HashChunkIndex}
//                  (docs/HASH_INDEX.md). NoIndex (default) compiles every
//                  sidecar call site away; HashChunkIndex consults a
//                  key -> data-chunk hint table before descending, falling
//                  back to the tower on any miss or stale hint.
//
// Chunk layouts (Fig. 7b) are RUNTIME properties: every VectorMap carries a
// per-chunk tag (vectormap/layout.h) seeded from Config::index_layout /
// Config::data_layout at allocation. With Config::adaptive set, data chunks
// additionally carry hot counters (NodeBase::hot) and the adapt::decide()
// policy (core/adapt.h) retunes each chunk's layout and target size at the
// structural sites -- split and orphan merge -- where the freeze protocol
// already rewrites contents wholesale, so retuning costs no extra locking.
//
// Deviations from the listings (all argued in DESIGN.md §3): head nodes use
// an is_head flag plus an explicit head_down pointer instead of a reserved
// sentinel key (so the full key domain is usable), and next == nullptr
// replaces the top sentinel. Where the paper's "K is minimum of a non-orphan
// node" checks appear, head nodes are exempt (a head's conceptual minimum is
// -inf, so a user key being its vector minimum implies nothing about upper
// layers).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <iostream>
#include <iterator>
#include <utility>
#include <vector>

#include "alloc/allocator.h"
#include "alloc/node_layout.h"
#include "alloc/pool_allocator.h"
#include "common/hw.h"
#include "common/rng.h"
#include "core/adapt.h"
#include "core/config.h"
#include "core/hash_index.h"
#include "core/mvcc.h"
#include "debug/audit.h"
#include "debug/fault_inject.h"
#include "reclaim/reclaimer.h"
#include "stats/stats.h"
#include "sync/backoff.h"
#include "sync/sequence_lock.h"
#include "txn/lock_mgr.h"
#include "vectormap/vector_map.h"

namespace sv::core {

template <class K, class V, class Reclaimer = reclaim::HazardReclaimer,
          class Alloc = alloc::MallocNodeAllocator,
          class HashIndex = hashidx::NoIndex>
class SkipVectorMap {
  static_assert(std::is_trivially_copyable_v<K> &&
                std::is_trivially_copyable_v<V>);
  static_assert(std::atomic<K>::is_always_lock_free &&
                    std::atomic<V>::is_always_lock_free,
                "speculative readers require lock-free atomic elements; "
                "store larger values behind a pointer");

  using Lock = sync::SequenceLock;
  using Word = Lock::Word;
  using Ctx = typename Reclaimer::ThreadCtx;
  using VRecord = mvcc::VersionRecord<K, V>;

  // The transaction layer's privileged bridge (txn/lock_mgr.h): the NO_WAIT
  // 2PL growing phase and the shared commit pass live in sv::txn and reach
  // the map's private navigation/mutation primitives through this friend.
  template <class M>
  friend struct ::sv::txn::MapAccess;

  // Hash sidecar (docs/HASH_INDEX.md). With the default NoIndex policy the
  // table is an empty member and every `if constexpr (kHashEnabled)` block
  // below vanishes, so sidecar-off builds are the pre-sidecar map.
  static constexpr bool kHashEnabled = HashIndex::kEnabled;
  using HintTable = typename HashIndex::template Table<K>;

  // ---- Node layout ---------------------------------------------------------

  // Per-chunk hot counters (adaptive mode only; core/adapt.h). Plain
  // relaxed counters: they inform a heuristic, so losing an increment to a
  // race is harmless, and they are read/reset only under the chunk's write
  // lock at decision time. Reads are sampled 1-in-2^kReadSampleShift to
  // keep the counter cache line off the speculative read path's critical
  // traffic; decision sites scale the sampled value back up.
  struct HotCounters {
    std::atomic<std::uint64_t> reads{0};    // sampled search probes
    std::atomic<std::uint64_t> writes{0};   // point writes under the lock
    std::atomic<std::uint64_t> retries{0};  // seqlock validation failures
    std::atomic<std::uint64_t> splits{0};   // capacity splits observed

    // `reads` is kept pre-scaled to op granularity: the sampled point-read
    // path adds the sampling stride per hit, scans add their visit count
    // exactly, so drain needs no correction factor.
    adapt::Signals drain() noexcept {
      adapt::Signals s;
      s.reads = reads.exchange(0, std::memory_order_relaxed);
      s.writes = writes.exchange(0, std::memory_order_relaxed);
      s.retries = retries.exchange(0, std::memory_order_relaxed);
      s.splits = splits.exchange(0, std::memory_order_relaxed);
      return s;
    }

    // Fold another chunk's evidence into ours (orphan merge: the victim's
    // history keeps informing the surviving chunk's next decision).
    void absorb(HotCounters& o) noexcept {
      reads.fetch_add(o.reads.exchange(0, std::memory_order_relaxed),
                      std::memory_order_relaxed);
      writes.fetch_add(o.writes.exchange(0, std::memory_order_relaxed),
                       std::memory_order_relaxed);
      retries.fetch_add(o.retries.exchange(0, std::memory_order_relaxed),
                        std::memory_order_relaxed);
      splits.fetch_add(o.splits.exchange(0, std::memory_order_relaxed),
                       std::memory_order_relaxed);
    }
  };

  struct NodeBase {
    Lock lock;
    std::atomic<NodeBase*> next{nullptr};
    NodeBase* const head_down;  // heads only: head of the layer below
    const std::uint32_t capacity;
    const std::uint8_t layer;  // 0 = data layer
    const bool is_head;
    // Multiversioning (data layer only; docs/SNAPSHOTS.md): the commit
    // version at which the live contents became valid, and the chain of
    // immutable pre-image records (newest first, strictly descending
    // version). Both are written only under this node's write lock.
    std::atomic<std::uint64_t> mod_version{0};
    std::atomic<VRecord*> vchain{nullptr};
    // Adaptive evidence (data layer; idle unless Config::adaptive).
    HotCounters hot;
    // The target size this chunk was tuned for (adaptive mode may pick a
    // value != Config::target_data_vector_size, within [T/2, 2T]). Set
    // once at allocation; capacity == 2 * tuned_target.
    const std::uint32_t tuned_target;

    NodeBase(NodeBase* down, std::uint32_t cap, std::uint8_t lyr, bool head,
             bool orphan) noexcept
        : lock(orphan), head_down(down), capacity(cap), layer(lyr),
          is_head(head), tuned_target(cap / 2) {}
  };

  template <class P>
  struct NodeT : NodeBase {
    vectormap::VectorMap<K, P> vec;
    NodeT(std::atomic<K>* keys, std::atomic<P>* vals, NodeBase* down,
          std::uint32_t cap, std::uint8_t lyr, bool head, bool orphan,
          vectormap::Layout layout) noexcept
        : NodeBase(down, cap, lyr, head, orphan),
          vec(keys, vals, cap, layout) {}
  };

  using IndexNode = NodeT<NodeBase*>;
  using DataNode = NodeT<V>;

 public:
  using key_type = K;
  using mapped_type = V;

  explicit SkipVectorMap(Config config = Config{})
      : config_(config), hints_(config.hash_index_slots) {
    config_.validate();
    heads_.resize(config_.layer_count);
    heads_[0] = alloc_node<DataNode, V>(config_.data_capacity(), nullptr, 0,
                                        /*head=*/true, /*orphan=*/false);
    for (std::uint32_t l = 1; l < config_.layer_count; ++l) {
      heads_[l] = alloc_node<IndexNode, NodeBase*>(
          config_.index_capacity(), heads_[l - 1], static_cast<std::uint8_t>(l),
          /*head=*/true, /*orphan=*/false);
    }
    head_ = heads_[config_.layer_count - 1];
  }

  ~SkipVectorMap() {
    // Quiescent teardown: free every node still linked into a layer. Nodes
    // already unlinked are owned by the reclaimer (freed by the hazard
    // domain's destructor, or intentionally leaked by LeakReclaimer).
    for (NodeBase* h : heads_) {
      NodeBase* n = h;
      while (n != nullptr) {
        NodeBase* next = n->next.load(std::memory_order_relaxed);
        free_node(n);
        n = next;
      }
    }
  }

  SkipVectorMap(const SkipVectorMap&) = delete;
  SkipVectorMap& operator=(const SkipVectorMap&) = delete;

  const Config& config() const noexcept { return config_; }
  Reclaimer& reclaimer() noexcept { return reclaimer_; }
  Alloc& allocator() noexcept { return alloc_; }

  // Aggregate node-allocator counters (pool hit rate, live bytes, ...).
  // Precise regardless of SV_STATS; see alloc/allocator.h.
  alloc::AllocatorStats allocator_stats() const { return alloc_.stats(); }

  // ---- Lookup (Listing 2) --------------------------------------------------

  std::optional<V> lookup(K k) {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    if constexpr (kHashEnabled) {
      std::optional<V> result;
      if (hash_try_lookup(ctx, k, result)) {
        ctx.drop_all();
        stats::count(stats::Counter::kLookupHit);
        return result;
      }
      ctx.drop_all();
    }
    sync::Backoff backoff;
    for (;;) {
      std::optional<V> result;
      if (try_lookup(ctx, k, result)) {
        stats::count(result ? stats::Counter::kLookupHit
                            : stats::Counter::kLookupMiss);
        return result;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  bool contains(K k) { return lookup(k).has_value(); }

  // ---- Insert (Listing 3) --------------------------------------------------

  // Inserts the mapping k -> v; returns false (no change) if k is present.
  bool insert(K k, V v) { return insert_impl(k, v, random_height()); }

#if defined(SV_FAULT_INJECTION) && SV_FAULT_INJECTION
  // Test-only (fault-injection builds): insert with a forced tower height,
  // so scenario tests can build exact structural shapes deterministically
  // instead of fishing for them through the random height generator.
  bool insert_with_height(K k, V v, std::uint32_t height) {
    return insert_impl(k, v, std::min(height, config_.layer_count - 1));
  }
#endif

 private:
  bool insert_impl(K k, V v, std::uint32_t height) {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    if constexpr (kHashEnabled) {
      // Duplicate-detection fast path: a validated hit means k is present
      // and the insert is a no-op. New keys take the full descent (their
      // hint is published at the insert's write site).
      std::optional<V> present;
      if (hash_try_lookup(ctx, k, present)) {
        ctx.drop_all();
        stats::count(stats::Counter::kInsertDup);
        return false;
      }
      ctx.drop_all();
    }
    sync::Backoff backoff;
    InsertState st;
    for (;;) {
      bool result = false;
      if (try_insert(ctx, k, v, height, st, result)) {
        if (result) approx_size_.fetch_add(1, std::memory_order_relaxed);
        stats::count(result ? stats::Counter::kInsertNew
                            : stats::Counter::kInsertDup);
        return result;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

 public:
  // ---- Remove (Listing 4) --------------------------------------------------

  // Removes k; returns false (no change) if absent.
  bool remove(K k) {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    if constexpr (kHashEnabled) {
      if (hash_try_remove(ctx, k)) {
        ctx.drop_all();
        approx_size_.fetch_sub(1, std::memory_order_relaxed);
        stats::count(stats::Counter::kRemoveHit);
        return true;
      }
      ctx.drop_all();
    }
    sync::Backoff backoff;
    for (;;) {
      bool result = false;
      if (try_remove(ctx, k, result)) {
        if (result) approx_size_.fetch_sub(1, std::memory_order_relaxed);
        stats::count(result ? stats::Counter::kRemoveHit
                            : stats::Counter::kRemoveMiss);
        return result;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  // ---- Update in place -----------------------------------------------------

  // Replaces the value mapped by k; returns false if k is absent.
  bool update(K k, V v) {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    if constexpr (kHashEnabled) {
      if (hash_try_update(ctx, k, v)) {
        ctx.drop_all();
        stats::count(stats::Counter::kUpdateHit);
        return true;
      }
      ctx.drop_all();
    }
    sync::Backoff backoff;
    for (;;) {
      bool result = false;
      if (try_update(ctx, k, v, result)) {
        stats::count(result ? stats::Counter::kUpdateHit
                            : stats::Counter::kUpdateMiss);
        return result;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  // ---- Ordered navigation ----------------------------------------------------
  //
  // Point queries that exploit key order (the reason to prefer an ordered
  // map over a hash map, §I): floor/ceiling and first/last. All are
  // linearizable, read-only, and use the same speculative traversal as
  // Lookup; last() descends the rightmost spine in O(log n).

  using Entry = std::optional<std::pair<K, V>>;

  // Largest mapping with key <= k, if any.
  Entry floor(K k) {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    sync::Backoff backoff;
    for (;;) {
      Entry out;
      if (try_floor(ctx, k, out)) {
        stats::count(stats::Counter::kOrderedNavOps);
        return out;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  // Smallest mapping with key >= k, if any.
  Entry ceiling(K k) {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    sync::Backoff backoff;
    for (;;) {
      Entry out;
      if (try_ceiling(ctx, k, out)) {
        stats::count(stats::Counter::kOrderedNavOps);
        return out;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  // Smallest / largest mapping in the map, if any.
  Entry first() {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    sync::Backoff backoff;
    for (;;) {
      Entry out;
      Trav t;
      t.node = heads_[0];
      t.slot = 0;
      ctx.protect(t.slot, t.node);
      t.ver = t.node->lock.read_begin();
      if (try_scan_forward(ctx, t, K{}, /*use_k=*/false, out)) {
        stats::count(stats::Counter::kOrderedNavOps);
        return out;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  Entry last() {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    sync::Backoff backoff;
    for (;;) {
      Entry out;
      if (try_last(ctx, out)) {
        stats::count(stats::Counter::kOrderedNavOps);
        return out;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  // ---- Range operations (§V-B, Fig. 8) --------------------------------------
  //
  // Two-phase locking over the data layer: write-lock every data node
  // intersecting [lo, hi] left to right, apply, release. Linearizable (and
  // serializable against all other operations), as the paper's lock-based
  // design makes trivial.

  // Mutating range query: fn(K, V) -> V is applied exactly once to each
  // mapping in [lo, hi] (ascending node order; unspecified order within a
  // chunk); the returned value is stored back. Returns mappings visited.
  template <class Fn>
  std::size_t range_transform(K lo, K hi, Fn&& fn) {
    return range_locked(lo, hi, /*mutating=*/true,
                        [&](DataNode* n) -> std::size_t {
                          return n->vec.transform_range(lo, hi, fn);
                        });
  }

  // Read-only range query, same locking discipline (serializable).
  // fn(K, V) is invoked in ascending key order. Returns count visited.
  template <class Fn>
  std::size_t range_for_each(K lo, K hi, Fn&& fn) {
    return range_locked(lo, hi, /*mutating=*/false,
                        [&](DataNode* n) -> std::size_t {
      std::size_t visited = 0;
      n->vec.for_each_ordered([&](K k, V v) {
        if (k >= lo && k <= hi) {
          fn(k, v);
          ++visited;
        }
      });
      return visited;
    });
  }

  // Non-atomic bulk erase: removes every mapping in [lo, hi] one key at a
  // time. Each individual removal is linearizable, but the range as a whole
  // is not atomic (concurrent inserts into [lo, hi] may survive). An atomic
  // version is future work the paper defers to [8]. Returns keys removed.
  std::size_t erase_range(K lo, K hi) {
    std::vector<K> victims;
    range_for_each(lo, hi, [&](K k, V) { victims.push_back(k); });
    std::size_t removed = 0;
    for (K k : victims) removed += remove(k) ? 1 : 0;
    return removed;
  }

  // Quiescent: remove every mapping, retaining the layer skeleton. Nodes
  // are freed directly (no other thread may touch the map concurrently).
  void clear() {
    for (NodeBase* h : heads_) {
      NodeBase* n = h->next.load(std::memory_order_relaxed);
      while (n != nullptr) {
        NodeBase* next = n->next.load(std::memory_order_relaxed);
        free_node(n);
        n = next;
      }
      h->next.store(nullptr, std::memory_order_relaxed);
      if (h->layer) {
        as_index(h)->vec.clear();
      } else {
        as_data(h)->vec.clear();
        free_chain(h->vchain.exchange(nullptr, std::memory_order_relaxed));
        h->mod_version.store(version_reserve(), std::memory_order_relaxed);
      }
      h->lock.acquire();  // bump the version: invalidate stale observers
      h->lock.release();
    }
    if constexpr (kHashEnabled) hints_.reset();  // nodes freed above
    approx_size_.store(0, std::memory_order_relaxed);
  }

  // Quiescent forward iteration in ascending key order (STL interop).
  // Invalidated by any mutation; intended for single-threaded phases.
  class const_iterator {
   public:
    using value_type = std::pair<K, V>;
    using reference = const value_type&;
    using pointer = const value_type*;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;

    reference operator*() const { return buf_[i_]; }
    pointer operator->() const { return &buf_[i_]; }

    const_iterator& operator++() {
      if (++i_ >= buf_.size()) advance_node();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const const_iterator& o) const {
      return node_ == o.node_ && i_ == o.i_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    friend class SkipVectorMap;
    explicit const_iterator(const NodeBase* node) : node_(node) {
      fill();
      if (buf_.empty()) advance_node();
    }

    void advance_node() {
      do {
        node_ = node_ ? node_->next.load(std::memory_order_relaxed) : nullptr;
        fill();
      } while (node_ != nullptr && buf_.empty());
      i_ = 0;
      if (node_ == nullptr) buf_.clear();
    }

    void fill() {
      buf_.clear();
      i_ = 0;
      if (node_ == nullptr) return;
      static_cast<const DataNode*>(node_)->vec.for_each_ordered(
          [&](K k, V v) { buf_.emplace_back(k, v); });
    }

    const NodeBase* node_ = nullptr;
    std::vector<value_type> buf_;
    std::size_t i_ = 0;
  };

  const_iterator begin() const { return const_iterator(heads_[0]); }
  const_iterator end() const { return const_iterator(); }

  // ---- Snapshots and atomic batches (Jiffy-style multiversioning) ------------
  //
  // docs/SNAPSHOTS.md. Every committed mutation bumps a global commit
  // version; while a snapshot is registered, writers preserve per-chunk
  // pre-image records on a short version chain before overwriting live
  // state. A reader pinned at version v resolves each data chunk either
  // from its live contents (unchanged since v) or from the newest chain
  // record at-or-below v -- it never restarts against writers.

  using BatchOp = mvcc::BatchOp<K, V>;

  // A pinned read version. While a view is live, writers preserve every
  // chunk state it may need; destroying (or moving from) the view releases
  // the pin. When the registry is full (kSlots concurrent snapshots) the
  // view is unversioned and readers fall back to the locked range path --
  // still linearizable, just not wait-free.
  class SnapshotView {
   public:
    SnapshotView() = default;
    SnapshotView(SnapshotView&& o) noexcept
        : map_(o.map_), slot_(o.slot_), version_(o.version_) {
      o.map_ = nullptr;
      o.slot_ = -1;
    }
    SnapshotView& operator=(SnapshotView&& o) noexcept {
      if (this != &o) {
        release_slot();
        map_ = o.map_;
        slot_ = o.slot_;
        version_ = o.version_;
        o.map_ = nullptr;
        o.slot_ = -1;
      }
      return *this;
    }
    SnapshotView(const SnapshotView&) = delete;
    SnapshotView& operator=(const SnapshotView&) = delete;
    ~SnapshotView() { release_slot(); }

    // The pinned commit version (0 for an unversioned fallback view).
    std::uint64_t version() const noexcept { return version_; }
    // False when the registry was full and this view reads via locks.
    bool versioned() const noexcept { return slot_ >= 0; }

   private:
    friend class SkipVectorMap;
    void release_slot() noexcept {
      if (map_ != nullptr && slot_ >= 0) map_->snaps_.release(slot_);
      map_ = nullptr;
      slot_ = -1;
    }
    SkipVectorMap* map_ = nullptr;
    int slot_ = -1;
    std::uint64_t version_ = 0;
  };

  // Pin the current commit version. The claim-then-load order makes the
  // registration visible to every writer whose commit exceeds the pinned
  // version (see mvcc::SnapshotRegistry).
  SnapshotView snapshot_at() {
    SnapshotView view;
    view.map_ = this;
    const std::uint64_t pre = commit_version_.load(std::memory_order_seq_cst);
    view.slot_ = snaps_.try_claim(pre);
    if (view.slot_ < 0) return view;  // registry full: unversioned fallback
    view.version_ = commit_version_.load(std::memory_order_seq_cst);
    snaps_.refine(view.slot_, view.version_);
    return view;
  }

  // Read-only scan of [lo, hi] at the view's pinned version, fn(K, V) in
  // ascending key order. Wait-free against writers: the data-layer walk
  // never restarts (kSnapshotScanRestarts stays 0); an in-flight commit on
  // a chunk costs a bounded wait, and a concurrent split/merge a bounded
  // per-chunk re-read. Returns mappings visited.
  template <class Fn>
  std::size_t range_for_each_at(const SnapshotView& view, K lo, K hi,
                                Fn&& fn) {
    if (!view.versioned() || view.map_ != this) {
      return range_for_each(lo, hi, std::forward<Fn>(fn));
    }
    stats::Scope stats_scope(stats_);
    stats::count(stats::Counter::kSnapshotScans);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    sync::Backoff backoff;
    // The cursor (and visited count) live OUTSIDE the retry loop: a
    // speculative-descent failure re-positions but never re-emits, so the
    // scan's output stays append-only across retries.
    std::size_t visited = 0;
    bool emitted = false;
    K last{};
    for (;;) {
      if (try_range_at(ctx, view.version_, lo, hi, fn, visited, emitted,
                       last)) {
        if (visited > 0) {
          stats::count(stats::Counter::kRangeKeysVisited, visited);
        }
        return visited;
      }
      // Only the index-layer positioning can fail (speculative descent);
      // the versioned data-layer emission itself never restarts.
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  // Consistent copy of every mapping in [lo, hi]: a linearizable snapshot
  // taken at a single commit version (the capability the paper contrasts
  // against non-linearizable range queries in competing skip lists, §V-B),
  // wait-free against concurrent writers via the version chains.
  std::vector<std::pair<K, V>> snapshot(K lo, K hi) {
    SnapshotView view = snapshot_at();
    std::vector<std::pair<K, V>> out;
    range_for_each_at(view, lo, hi,
                      [&](K k, V v) { out.emplace_back(k, v); });
    return out;
  }

  // Atomic multi-key batch (Jiffy's bulk update): all ops become visible at
  // one commit version -- no reader, scan, or snapshot observes a partially
  // applied batch. Puts upsert, removes erase; ops on the same key apply in
  // their given order. Each op's `applied` field is set to whether it
  // changed the key's presence (new-key put / present-key remove); returns
  // the number of such ops. Chunk locks are claimed left-to-right with
  // no-wait upgrades (abort, back off, retry), so batches interleave safely
  // with each other, with range 2PL, and with single-key writers.
  std::size_t apply_batch(std::span<BatchOp> ops) {
    if (ops.empty()) return 0;
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    // The whole 2PL engine -- ascending NO_WAIT floor locks, towered-remove
    // demotes, single-version commit, bounded backoff between passes --
    // lives in the shared transaction layer (txn/lock_mgr.h): a batch is a
    // write-only transaction with an empty read set.
    const auto out =
        txn::LockMgr<SkipVectorMap>::run_batch(*this, ctx, ops.data(),
                                               ops.size());
    if (out.delta != 0) {
      approx_size_.fetch_add(out.delta, std::memory_order_relaxed);
    }
    stats::count(stats::Counter::kBatchCommits);
    if (out.applied > 0) {
      stats::count(stats::Counter::kBatchKeys, out.applied);
    }
    return out.applied;
  }
  // Thin forwarders over the span implementation.
  std::size_t apply_batch(BatchOp* ops, std::size_t n) {
    return apply_batch(std::span<BatchOp>(ops, n));
  }
  std::size_t apply_batch(std::vector<BatchOp>& ops) {
    return apply_batch(std::span<BatchOp>(ops.data(), ops.size()));
  }

  // Current global commit version (diagnostics/tests).
  std::uint64_t commit_version() const noexcept {
    return commit_version_.load(std::memory_order_relaxed);
  }

  // ---- Bulk construction (quiescent) -----------------------------------------

  // Populate an EMPTY map from strictly ascending unique (key, value)
  // pairs: data chunks packed to targetDataVectorSize, index layers built
  // bottom-up, every chunk exactly at its target fill. O(n), versus
  // O(n log n) repeated insert. Throws std::logic_error if the map is not
  // empty, std::invalid_argument if the input is not strictly ascending.
  //
  // Nodes created at the top layer (beyond the head's capacity) are marked
  // orphans: like capacity-split siblings (Fig. 3d) they have no parent
  // entry, and the invariant checks rely on that.
  void bulk_load(const std::vector<std::pair<K, V>>& sorted) {
    if (size_approx() != 0 ||
        heads_[0]->next.load(std::memory_order_relaxed) != nullptr ||
        node_size(heads_[0]) != 0) {
      throw std::logic_error("bulk_load requires an empty map");
    }
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      if (!(sorted[i - 1].first < sorted[i].first)) {
        throw std::invalid_argument("bulk_load input must strictly ascend");
      }
    }
    if (sorted.empty()) return;
    const std::uint32_t top = config_.layer_count - 1;

    // Entries to link at the current layer: (min key, node below).
    std::vector<std::pair<K, NodeBase*>> entries;

    // Data layer.
    {
      const std::uint32_t fill = config_.target_data_vector_size;
      NodeBase* tail = heads_[0];
      for (std::size_t i = 0; i < sorted.size(); i += fill) {
        const std::size_t n = std::min<std::size_t>(fill, sorted.size() - i);
        const bool orphan = (top == 0);  // single-layer maps: see above
        auto* node =
            alloc_node<DataNode, V>(config_.data_capacity(), nullptr, 0,
                                    /*head=*/false, orphan);
        for (std::size_t j = 0; j < n; ++j) {
          node->vec.insert(sorted[i + j].first, sorted[i + j].second);
        }
        tail->next.store(node, std::memory_order_release);
        tail = node;
        if (top > 0) entries.emplace_back(sorted[i].first, node);
      }
    }

    // Index layers, bottom-up.
    for (std::uint32_t layer = 1; layer <= top && !entries.empty(); ++layer) {
      const std::uint32_t fill = config_.target_index_vector_size;
      std::vector<std::pair<K, NodeBase*>> next_entries;
      NodeBase* tail = heads_[layer];
      std::size_t i = 0;
      if (layer == top) {
        // The head absorbs what fits; the rest become orphan chunks.
        auto* head = as_index(heads_[layer]);
        while (i < entries.size() && !head->vec.full()) {
          head->vec.insert(entries[i].first, entries[i].second);
          ++i;
        }
      }
      for (; i < entries.size();) {
        const std::size_t n =
            std::min<std::size_t>(fill, entries.size() - i);
        auto* node = alloc_node<IndexNode, NodeBase*>(
            config_.index_capacity(), nullptr,
            static_cast<std::uint8_t>(layer),
            /*head=*/false, /*orphan=*/(layer == top));
        for (std::size_t j = 0; j < n; ++j) {
          node->vec.insert(entries[i + j].first, entries[i + j].second);
        }
        tail->next.store(node, std::memory_order_release);
        tail = node;
        if (layer < top) next_entries.emplace_back(entries[i].first, node);
        i += n;
      }
      entries.swap(next_entries);
    }
    approx_size_.store(static_cast<std::int64_t>(sorted.size()),
                       std::memory_order_relaxed);
  }

  // ---- Serialization (quiescent) ----------------------------------------------
  //
  // Minimal binary snapshot format: magic, endianness marker, element
  // count, then (key, value) pairs in ascending order. load() into an empty
  // map uses bulk_load, so a restored map is perfectly packed. Payload
  // stays host-endian (a snapshot is a local artifact, not a wire format),
  // but the marker makes a foreign-endian file a clean error instead of
  // silently-garbled keys, and the count is validated against the stream
  // length before any allocation, so a corrupt header cannot drive an OOM.

  static constexpr std::uint64_t kSnapshotMagic = 0x53564543544F5232ULL;
  static constexpr std::uint16_t kEndianMark = 0x0102;

  void save(std::ostream& out) const {
    const std::uint64_t n = size_approx();
    write_pod(out, kSnapshotMagic);
    write_pod(out, kEndianMark);
    write_pod(out, n);
    std::uint64_t written = 0;
    for_each([&](K k, V v) {
      write_pod(out, k);
      write_pod(out, v);
      ++written;
    });
    if (written != n) {
      throw std::logic_error("save() requires quiescence (count drifted)");
    }
  }

  // Map must be empty. Throws std::runtime_error on a malformed stream: bad
  // magic, an endianness mismatch, or a count exceeding the stream's actual
  // payload (the previous format trusted the on-disk count and could be
  // made to reserve arbitrary memory from a 16-byte file).
  void load(std::istream& in) {
    std::uint64_t magic = 0, n = 0;
    std::uint16_t endian = 0;
    read_pod(in, magic);
    if (!in || magic != kSnapshotMagic) {
      throw std::runtime_error("bad snapshot magic");
    }
    read_pod(in, endian);
    if (!in || endian != kEndianMark) {
      throw std::runtime_error(
          endian == 0x0201
              ? "snapshot endianness mismatch (saved on a foreign-endian host)"
              : "bad snapshot endianness marker");
    }
    read_pod(in, n);
    if (!in) throw std::runtime_error("truncated snapshot");
    constexpr std::uint64_t kPairBytes = sizeof(K) + sizeof(V);
    // Bound n by the bytes actually present before reserving. Seekable
    // streams give an exact remaining-byte count; for non-seekable streams
    // skip the pre-validation (the per-pair read check below still rejects
    // truncation) but cap the speculative reserve.
    std::uint64_t reserve_n = n;
    const std::istream::pos_type here = in.tellg();
    if (here != std::istream::pos_type(-1)) {
      in.seekg(0, std::ios::end);
      const std::istream::pos_type end = in.tellg();
      in.seekg(here);
      if (in && end != std::istream::pos_type(-1)) {
        const std::uint64_t remaining =
            static_cast<std::uint64_t>(end - here);
        if (n > remaining / kPairBytes) {
          throw std::runtime_error(
              "snapshot count exceeds stream payload (corrupt header)");
        }
      }
    } else {
      in.clear();  // tellg(-1) sets failbit on some streams
      reserve_n = std::min<std::uint64_t>(n, 1u << 20);
    }
    std::vector<std::pair<K, V>> data;
    data.reserve(reserve_n);
    for (std::uint64_t i = 0; i < n; ++i) {
      K k{};
      V v{};
      read_pod(in, k);
      read_pod(in, v);
      if (!in) throw std::runtime_error("truncated snapshot");
      data.emplace_back(k, v);
    }
    bulk_load(data);
  }

  // ---- Introspection (quiescent unless stated) ------------------------------

  // Approximate element count (maintained with relaxed counters; exact when
  // quiescent).
  std::size_t size_approx() const noexcept {
    const auto s = approx_size_.load(std::memory_order_relaxed);
    return s < 0 ? 0 : static_cast<std::size_t>(s);
  }

  // Quiescent: iterate every mapping in ascending key order.
  template <class Fn>
  void for_each(Fn&& fn) const {
    const NodeBase* n = heads_[0];
    while (n != nullptr) {
      static_cast<const DataNode*>(n)->vec.for_each_ordered(fn);
      n = n->next.load(std::memory_order_relaxed);
    }
  }

  // Rare-event operation counters (relaxed atomics; never on the hot path
  // of a successful first-try operation).
  struct OpCounters {
    std::uint64_t restarts = 0;        // speculative attempts abandoned
    std::uint64_t orphan_merges = 0;   // lazy merges performed (Fig. 3f->3d)
    std::uint64_t capacity_splits = 0; // orphan-creating splits (Fig. 3d)
    std::uint64_t tower_splits = 0;    // per-layer splits by tall inserts
  };
  OpCounters counters() const noexcept {
    return {restarts_.load(std::memory_order_relaxed),
            orphan_merges_.load(std::memory_order_relaxed),
            capacity_splits_.load(std::memory_order_relaxed),
            tower_splits_.load(std::memory_order_relaxed)};
  }

  // Per-instance event counter registry (src/stats/stats.h). Every public
  // operation installs a stats::Scope for this registry, so counts from all
  // layers touched on its behalf (seqlock retries, chunk shifts, reclamation)
  // are attributed to this map. Snapshot at any time with
  // `stats_registry().snapshot()`; compiles to a zero-size stub under
  // SV_STATS=OFF.
  stats::Registry& stats_registry() const noexcept { return stats_; }

  struct LayerStats {
    std::size_t nodes = 0;
    std::size_t orphans = 0;
    std::size_t elements = 0;
    double avg_fill = 0.0;  // elements / capacity over non-head nodes
  };
  struct Stats {
    std::vector<LayerStats> layers;  // [0] = data layer
    std::size_t bytes = 0;           // linked nodes only
  };

  // Quiescent: per-layer shape statistics.
  Stats stats() const {
    Stats s;
    s.layers.resize(config_.layer_count);
    for (std::uint32_t l = 0; l < config_.layer_count; ++l) {
      auto& ls = s.layers[l];
      double fill_sum = 0;
      std::size_t fill_n = 0;
      for (const NodeBase* n = heads_[l]; n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        ls.nodes++;
        ls.elements += node_size(const_cast<NodeBase*>(n));
        if (Lock::is_orphan(n->lock.load_relaxed())) ls.orphans++;
        if (!n->is_head) {
          fill_sum += static_cast<double>(
                          node_size(const_cast<NodeBase*>(n))) /
                      n->capacity;
          fill_n++;
        }
        s.bytes += node_bytes(n);
      }
      ls.avg_fill = fill_n ? fill_sum / static_cast<double>(fill_n) : 0.0;
    }
    return s;
  }

  // Quiescent: full structural audit. Walks every layer and collects every
  // invariant violation (up to max_violations) into a structured report
  // instead of stopping at the first or asserting -- a broken map yields a
  // complete picture of *how* it is broken. See debug/audit.h for codes.
  debug::AuditReport validate_structure(std::size_t max_violations = 64) const {
    using debug::AuditCode;
    debug::AuditReport rep;
    auto flag = [&](AuditCode code, std::uint32_t layer, std::string detail) {
      if (rep.violations.size() >= max_violations) {
        rep.truncated = true;
        return;
      }
      rep.violations.push_back({code, layer, std::move(detail)});
    };
    // Pass 1 -- per-layer invariants: quiescence of every lock word, orphan
    // flag placement, occupancy bounds (chunk size <= capacity = 2T),
    // intra-chunk key uniqueness, and inter-chunk key ordering.
    for (std::uint32_t l = 0; l < config_.layer_count; ++l) {
      bool have_prev_max = false;
      K prev_max{};
      for (const NodeBase* n = heads_[l]; n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        rep.nodes_checked++;
        auto* nn = const_cast<NodeBase*>(n);
        const std::uint32_t sz = node_size(nn);
        const Word w = n->lock.load_relaxed();
        if (Lock::is_locked(w) || Lock::is_frozen(w))
          flag(AuditCode::kLockedWhileQuiescent, l,
               "node locked/frozen while quiescent");
        if (n->is_head && Lock::is_orphan(w))
          flag(AuditCode::kHeadOrphan, l, "head marked orphan");
        if (!n->is_head && !Lock::is_orphan(w) && sz == 0)
          flag(AuditCode::kEmptyNonOrphan, l, "empty non-orphan node");
        if (sz > n->capacity)
          flag(AuditCode::kOverCapacity, l,
               "size " + std::to_string(sz) + " > capacity " +
                   std::to_string(n->capacity));
        if (sz > 0) {
          const K mn = node_min_key(nn);
          const K mx = node_max_key(nn);
          if (mx < mn) flag(AuditCode::kChunkKeyOrder, l, "max < min");
          if (have_prev_max && !(prev_max < mn))
            flag(AuditCode::kInterChunkOrder, l,
                 "left sibling max >= right sibling min");
          prev_max = mx;
          have_prev_max = true;
          if (!check_unique_keys(nn))
            flag(AuditCode::kDuplicateKeys, l, "duplicate keys in a chunk");
        }
      }
    }
    // Pass 2 -- down pointers: each index entry (key, down) targets a
    // non-orphan node linked in the layer below whose minimum key equals the
    // entry key; orphans below have no parent; non-orphan non-head nodes
    // have exactly one.
    for (std::uint32_t l = config_.layer_count; l-- > 1;) {
      std::vector<const NodeBase*> below;
      for (const NodeBase* n = heads_[l - 1]; n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        below.push_back(n);
      }
      std::vector<int> parent_count(below.size(), 0);
      auto index_of_node = [&](const NodeBase* target) -> std::ptrdiff_t {
        for (std::size_t i = 0; i < below.size(); ++i)
          if (below[i] == target) return static_cast<std::ptrdiff_t>(i);
        return -1;
      };
      for (const NodeBase* n = heads_[l]; n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        static_cast<const IndexNode*>(n)->vec.for_each(
            [&](K k, NodeBase* down) {
              rep.entries_checked++;
              const std::ptrdiff_t i = index_of_node(down);
              if (i < 0) {
                flag(AuditCode::kDanglingDown, l,
                     "down pointer to a node not linked below");
                return;
              }
              parent_count[static_cast<std::size_t>(i)]++;
              auto* dn = const_cast<NodeBase*>(below[i]);
              if (Lock::is_orphan(dn->lock.load_relaxed())) {
                flag(AuditCode::kOrphanWithParent, l,
                     "down pointer to orphan");
              } else if (node_size(dn) == 0 || node_min_key(dn) != k) {
                flag(AuditCode::kEntryChildMismatch, l,
                     "down target min != entry key");
              }
            });
        if (n->is_head && n->head_down != heads_[l - 1]) {
          flag(AuditCode::kHeadDownMismatch, l, "head_down mismatch");
        }
      }
      for (std::size_t i = 0; i < below.size(); ++i) {
        const NodeBase* n = below[i];
        const bool orphan = Lock::is_orphan(n->lock.load_relaxed());
        if (n->is_head) {
          if (parent_count[i] != 0)
            flag(AuditCode::kHeadHasParent, l - 1, "head has a parent entry");
        } else if (orphan) {
          if (parent_count[i] != 0)
            flag(AuditCode::kOrphanWithParent, l - 1,
                 "orphan has a parent entry");
        } else if (parent_count[i] != 1) {
          flag(AuditCode::kParentCountWrong, l - 1,
               "non-orphan has " + std::to_string(parent_count[i]) +
                   " parent entries");
        }
      }
    }
    // Pass 3 -- every key in an index layer is the minimum of its child
    // chunk (and hence, transitively, exists in the data layer).
    for (std::uint32_t l = 1; l < config_.layer_count; ++l) {
      for (const NodeBase* n = heads_[l]; n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        static_cast<const IndexNode*>(n)->vec.for_each(
            [&](K k, NodeBase* down) {
              if (node_size(down) == 0 || node_min_key(down) != k)
                flag(AuditCode::kIndexKeyMissingBelow, l,
                     "index key missing below");
            });
      }
    }
    return rep;
  }

  // Quiescent: check every structural invariant. Returns true if the
  // structure is well formed; otherwise false with a diagnostic in *err.
  // (Thin wrapper over validate_structure for existing callers.)
  bool validate(std::string* err = nullptr) const {
    const debug::AuditReport rep = validate_structure();
    if (rep.ok()) return true;
    if (err != nullptr) *err = rep.to_string();
    return false;
  }

#if defined(SV_FAULT_INJECTION) && SV_FAULT_INJECTION
  // Test-only (fault-injection builds): deliberately violate one structural
  // invariant on a quiesced map, so negative tests can prove the auditor
  // actually catches broken structures. Returns false when the current shape
  // has no site to corrupt (e.g. no index entries yet).
  enum class DebugCorruption {
    kOrphanFlagOnChild,   // -> kOrphanWithParent (+ follow-on parent-count)
    kIndexKeyOffByOne,    // -> kEntryChildMismatch / kIndexKeyMissingBelow
    kClearNonHeadChunk,   // -> kEmptyNonOrphan (+ entry-child mismatch above)
  };
  bool debug_corrupt(DebugCorruption c) {
    switch (c) {
      case DebugCorruption::kOrphanFlagOnChild: {
        for (std::uint32_t l = config_.layer_count; l-- > 1;) {
          for (NodeBase* n = heads_[l]; n != nullptr;
               n = n->next.load(std::memory_order_relaxed)) {
            NodeBase* child = nullptr;
            as_index(n)->vec.for_each([&](K, NodeBase* down) {
              if (child == nullptr) child = down;
            });
            if (child != nullptr) {
              child->lock.acquire();
              child->lock.set_orphan_locked(true);
              child->lock.release();
              return true;
            }
          }
        }
        return false;
      }
      case DebugCorruption::kIndexKeyOffByOne: {
        for (std::uint32_t l = config_.layer_count; l-- > 1;) {
          for (NodeBase* n = heads_[l]; n != nullptr;
               n = n->next.load(std::memory_order_relaxed)) {
            bool have = false;
            K k{};
            as_index(n)->vec.for_each([&](K key, NodeBase*) {
              if (!have) {
                k = key;
                have = true;
              }
            });
            if (have) {
              NodeBase* down = nullptr;
              as_index(n)->vec.erase(k, &down);
              as_index(n)->vec.insert(k + K{1}, down);
              return true;
            }
          }
        }
        return false;
      }
      case DebugCorruption::kClearNonHeadChunk: {
        for (NodeBase* n = heads_[0]; n != nullptr;
             n = n->next.load(std::memory_order_relaxed)) {
          if (!n->is_head && !Lock::is_orphan(n->lock.load_relaxed()) &&
              node_size(n) > 0) {
            as_data(n)->vec.clear();
            return true;
          }
        }
        return false;
      }
    }
    return false;
  }
#endif  // SV_FAULT_INJECTION

 private:
  // ---- Allocation ----------------------------------------------------------
  //
  // All layout arithmetic lives in alloc::NodeLayout (the single source of
  // truth shared with the allocator layer); allocation and deallocation go
  // through the Alloc policy. Deallocation is *sized*: the byte count is
  // recomputed from the node header, so the pool finds the size class
  // without any per-block metadata.

  template <class NodeType, class P>
  static constexpr alloc::NodeLayout node_layout(std::uint32_t cap) {
    return alloc::NodeLayout::of<NodeType, std::atomic<K>, std::atomic<P>>(
        cap);
  }

  // Layout for a freshly allocated chunk: the configured static tag per
  // layer kind unless the caller overrides it (adaptive decision sites).
  vectormap::Layout layer_layout(std::uint8_t layer) const noexcept {
    return layer ? config_.index_layout : config_.data_layout;
  }

  template <class NodeType, class P>
  NodeType* alloc_node(std::uint32_t cap, NodeBase* down, std::uint8_t layer,
                       bool head, bool orphan) {
    return alloc_node_as<NodeType, P>(cap, down, layer, head, orphan,
                                      layer_layout(layer));
  }

  template <class NodeType, class P>
  NodeType* alloc_node_as(std::uint32_t cap, NodeBase* down,
                          std::uint8_t layer, bool head, bool orphan,
                          vectormap::Layout layout) {
    const alloc::NodeLayout l = node_layout<NodeType, P>(cap);
    void* mem = alloc_.allocate(l.bytes);
    auto* keys = reinterpret_cast<std::atomic<K>*>(static_cast<char*>(mem) +
                                                   l.keys_off);
    auto* vals = reinterpret_cast<std::atomic<P>*>(static_cast<char*>(mem) +
                                                   l.vals_off);
    for (std::uint32_t i = 0; i < cap; ++i) {
      new (keys + i) std::atomic<K>();
      new (vals + i) std::atomic<P>();
    }
    return new (mem)
        NodeType(keys, vals, down, cap, layer, head, orphan, layout);
  }

  void free_node(NodeBase* n) {
    // Node types are trivially destructible aggregates of atomics. A data
    // chunk owns its version chain: by the time a retired node is actually
    // reclaimed no reader can reach it (hazard/epoch protection), so the
    // chain records die with it.
    free_chain(n->vchain.exchange(nullptr, std::memory_order_relaxed));
    alloc_.deallocate(n, node_bytes(n));
  }

  // ---- Version-chain storage (docs/SNAPSHOTS.md) -----------------------------

  VRecord* alloc_record(std::uint64_t version, std::uint32_t count,
                        VRecord* next) {
    const std::size_t bytes = VRecord::bytes_for(count);
    auto* rec = static_cast<VRecord*>(alloc_.allocate(bytes));
    rec->version = version;
    rec->next.store(next, std::memory_order_relaxed);
    rec->count = count;
    rec->bytes = static_cast<std::uint32_t>(bytes);
    stats::count(stats::Counter::kVersionRecords);
    return rec;
  }

  void free_record(VRecord* rec) {
    stats::count(stats::Counter::kVersionRecordsFreed);
    alloc_.deallocate(rec, rec->bytes);
  }

  void free_chain(VRecord* rec) {
    while (rec != nullptr) {
      VRecord* next = rec->next.load(std::memory_order_relaxed);
      free_record(rec);
      rec = next;
    }
  }

  // Owned deleter handed to the reclaimer: routes a retired node back
  // through the owning map's allocator (reclaim/deleter.h).
  static void reclaim_node(void* p, void* self) {
    static_cast<SkipVectorMap*>(self)->free_node(static_cast<NodeBase*>(p));
  }

  template <class T>
  static void write_pod(std::ostream& out, const T& v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
  }
  template <class T>
  static void read_pod(std::istream& in, T& v) {
    in.read(reinterpret_cast<char*>(&v), sizeof(T));
  }

  static std::size_t node_bytes(const NodeBase* n) {
    return n->layer ? node_layout<IndexNode, NodeBase*>(n->capacity).bytes
                    : node_layout<DataNode, V>(n->capacity).bytes;
  }

  // ---- Typed access helpers -------------------------------------------------

  static IndexNode* as_index(NodeBase* n) noexcept {
    return static_cast<IndexNode*>(n);
  }
  static DataNode* as_data(NodeBase* n) noexcept {
    return static_cast<DataNode*>(n);
  }

  static std::uint32_t node_size(NodeBase* n) noexcept {
    return n->layer ? as_index(n)->vec.size() : as_data(n)->vec.size();
  }
  static K node_min_key(NodeBase* n) noexcept {
    return n->layer ? as_index(n)->vec.min_key() : as_data(n)->vec.min_key();
  }
  static K node_max_key(NodeBase* n) noexcept {
    return n->layer ? as_index(n)->vec.max_key() : as_data(n)->vec.max_key();
  }
  static bool check_unique_keys(NodeBase* n) {
    std::vector<K> ks;
    auto collect = [&](K k, auto) { ks.push_back(k); };
    if (n->layer) {
      as_index(n)->vec.for_each(collect);
    } else {
      as_data(n)->vec.for_each(collect);
    }
    std::sort(ks.begin(), ks.end());
    return std::adjacent_find(ks.begin(), ks.end()) == ks.end();
  }
  static void node_merge_from(NodeBase* dst, NodeBase* src) noexcept {
    if (dst->layer) {
      as_index(dst)->vec.merge_from(as_index(src)->vec);
    } else {
      as_data(dst)->vec.merge_from(as_data(src)->vec);
    }
  }

  // ---- Adaptive self-tuning (core/adapt.h; docs/TUNING.md) -------------------
  //
  // Evidence collection is cheap and racy-by-design (relaxed increments on
  // the node header); consumption happens only at structural sites where
  // the chunk is already write-locked or frozen by us. Reads are sampled
  // 1-in-2^kReadSampleShift so hot read-only chunks do not turn the header
  // cache line into a contention point; adapt_decide() scales the sampled
  // count back to op granularity before handing it to the policy.

  static constexpr std::uint32_t kReadSampleShift = 3;

  void note_read(NodeBase* n) noexcept {
    if (!config_.adaptive || n->layer != 0) return;
    thread_local std::uint32_t tick = 0;
    if ((++tick & ((1u << kReadSampleShift) - 1)) != 0) return;
    // Pre-scaled: one sampled hit stands for the whole stride.
    n->hot.reads.fetch_add(1u << kReadSampleShift,
                           std::memory_order_relaxed);
  }
  // A locked range scan visited `visited` mappings in this chunk: that is
  // exact read evidence (and the strongest case for a sorted layout, which
  // scans in storage order instead of sorting each chunk on the fly).
  void note_scan(NodeBase* n, std::uint64_t visited) noexcept {
    if (!config_.adaptive || n->layer != 0 || visited == 0) return;
    n->hot.reads.fetch_add(visited, std::memory_order_relaxed);
  }
  void note_write(NodeBase* n) noexcept {
    if (!config_.adaptive || n->layer != 0) return;
    n->hot.writes.fetch_add(1, std::memory_order_relaxed);
  }
  void note_retry(NodeBase* n) noexcept {
    if (!config_.adaptive || n->layer != 0) return;
    n->hot.retries.fetch_add(1, std::memory_order_relaxed);
  }
  void note_split(NodeBase* n) noexcept {
    if (!config_.adaptive || n->layer != 0) return;
    n->hot.splits.fetch_add(1, std::memory_order_relaxed);
  }

  // Drain `node`'s evidence and decide the shape of its replacement chunks
  // (node write-locked or frozen by us; data layer only). The decision
  // covers the site as a unit -- the surviving donor converts in place via
  // adapt_apply, new siblings are born with the decided layout, and target
  // changes materialize only in newly allocated chunks (a live chunk's
  // capacity is fixed at allocation).
  adapt::Decision adapt_decide(NodeBase* node) noexcept {
    adapt::Decision d{as_data(node)->vec.layout(), node->tuned_target};
    if (!config_.adaptive || node->layer != 0) return d;
    const adapt::Signals s = node->hot.drain();
    if (s.reads + s.writes < config_.adapt_policy.min_samples) {
      // Below the hysteresis floor the policy holds regardless of skew.
      // Hot chunks with small targets reach their structural ops every
      // handful of writes, so a drained sub-floor window must flow back
      // into the counters: discarding it would keep such chunks below the
      // floor forever and make them effectively untunable.
      node->hot.reads.fetch_add(s.reads, std::memory_order_relaxed);
      node->hot.writes.fetch_add(s.writes, std::memory_order_relaxed);
      node->hot.retries.fetch_add(s.retries, std::memory_order_relaxed);
      node->hot.splits.fetch_add(s.splits, std::memory_order_relaxed);
      return d;
    }
    const adapt::Decision nd =
        adapt::decide(s, d.layout, d.target,
                      config_.target_data_vector_size, config_.adapt_policy);
    if (nd.layout != d.layout) {
      stats::count(nd.layout == vectormap::Layout::kSorted
                       ? stats::Counter::kLayoutToSorted
                       : stats::Counter::kLayoutToUnsorted);
    }
    if (nd.target != d.target) {
      stats::count(stats::Counter::kTargetResize);
    }
    return nd;
  }

  // Convert a surviving write-locked data chunk to the decided layout. The
  // seqlock transition the caller already owns publishes the rewrite.
  void adapt_apply(NodeBase* node, const adapt::Decision& d) noexcept {
    if (!config_.adaptive || node->layer != 0) return;
    as_data(node)->vec.convert_to(d.layout);
  }

  // Capacity for a data sibling born at a split site under decision `d`:
  // the decided shape, but never too small to absorb the donor's moved
  // half plus the incoming key (split_half moves at most tuned_target
  // elements out of a full donor).
  std::uint32_t adapt_sibling_capacity(NodeBase* donor,
                                       const adapt::Decision& d)
      const noexcept {
    return std::max(2 * d.target, donor->tuned_target + 1);
  }

  std::uint32_t merge_threshold(std::uint8_t layer) const noexcept {
    return layer ? config_.merge_threshold_index()
                 : config_.merge_threshold_data();
  }

  // ---- Height generation (§III-A.2) -----------------------------------------

  std::uint32_t random_height() {
    thread_local Xoshiro256 rng = [] {
      static std::atomic<std::uint64_t> counter{0x5eed};
      return Xoshiro256(counter.fetch_add(0x9e3779b97f4a7c15ULL,
                                          std::memory_order_relaxed));
    }();
    const std::uint32_t top = config_.layer_count - 1;
    if (top == 0) return 0;
    // P(height == 0) = (T_D - 1) / T_D; for T_D == 1 fall back to 1/2 so the
    // degenerate (classic skip list) configuration keeps a sane shape.
    const std::uint64_t td = config_.target_data_vector_size;
    if (td > 1) {
      if (rng.next_below(td) != 0) return 0;
    } else {
      if (rng.next_below(2) != 0) return 0;
    }
    // Geometric with p = 1/T_I from 1 to layer_count - 1.
    const std::uint64_t ti = config_.target_index_vector_size > 1
                                 ? config_.target_index_vector_size
                                 : 2;
    std::uint32_t h = 1;
    while (h < top && rng.next_below(ti) == 0) ++h;
    return h;
  }

  // ---- Speculative traversal (shared by Listings 2-4) ------------------------

  struct Trav {
    NodeBase* node = nullptr;
    Word ver = 0;
    int slot = 0;  // hazard-pointer slot currently protecting `node`
  };

  // RAII scope marking one logical operation for the reclaimer. Epoch-based
  // policies pin the calling thread's epoch for the duration (covering every
  // speculative read, including across restarts); no-op for the others.
  struct OpGuard {
    explicit OpGuard(Ctx& c) noexcept : ctx(c) { ctx.begin_op(); }
    ~OpGuard() { ctx.end_op(); }
    OpGuard(const OpGuard&) = delete;
    OpGuard& operator=(const OpGuard&) = delete;
    Ctx& ctx;
  };
  static int other_slot(int s) noexcept { return s ^ 1; }

  // Prefetch-ahead during traversal ("Skiplists with Foresight"): issue the
  // read hint on a speculatively-loaded right/down pointer immediately,
  // before the seqlock validation that proves the pointer was current. A
  // prefetch never faults, so hinting a stale or already-retired node is
  // harmless; when the pointer is good, its header plus the start of its
  // key array ([node | keys | vals] is one contiguous allocation) is in
  // flight by the time validation completes and the node is scanned.
  static void prefetch_node(const NodeBase* n) noexcept {
    const char* p = reinterpret_cast<const char*>(n);
    prefetch_read(p);
    prefetch_read(p + kCacheLineSize);
  }

  Trav begin_traversal(Ctx& ctx) {
    Trav t;
    t.node = head_;
    t.slot = 0;
    ctx.protect(t.slot, t.node);  // heads are immortal, but keep it uniform
    t.ver = t.node->lock.read_begin();
    return t;
  }

  // TraverseRight (Listing 2 lines 23-48). Moves t rightward until t.node is
  // the floor node for k in its layer, merging empty orphans (any caller)
  // and under-threshold orphans (mutators). Returns false -> restart.
  bool traverse_right(Ctx& ctx, Trav& t, K k, bool mutator) {
    for (;;) {
      const std::uint32_t sz = node_size(t.node);
      if (sz != 0 && !(k > node_max_key(t.node))) break;  // speculative stop
      NodeBase* next = t.node->next.load(std::memory_order_acquire);
      if (next == nullptr) break;  // no right sibling (the paper's top sentinel)
      prefetch_node(next);
      const int nslot = other_slot(t.slot);
      ctx.protect(nslot, next);
      if (!t.node->lock.validate(t.ver)) {  // also validates HP
        note_retry(t.node);
        return false;
      }
      const Word next_ver = next->lock.read_begin();

      // Uncommon case: merge/remove nodes left behind by prior Removes
      // (lines 28-39). Empty orphans are merged by any operation;
      // under-threshold orphans only by Insert/Remove.
      const std::uint32_t next_sz = node_size(next);
      if (Lock::is_orphan(next_ver) &&
          (next_sz == 0 ||
           (mutator && sz + next_sz < merge_threshold(t.node->layer))) &&
          sz + next_sz <= t.node->capacity) {
        if (!t.node->lock.try_upgrade(t.ver)) {
          note_retry(t.node);
          return false;
        }
        if (!next->lock.try_upgrade(next_ver)) {
          note_retry(next);
          t.node->lock.release();
          return false;
        }
        SV_FAULT_POINT(debug::Point::kMerge);  // both write locks held
        orphan_merges_.fetch_add(1, std::memory_order_relaxed);
        stats::count(stats::Counter::kOrphanMerges);
        // Data-layer merges commit a state change: fold the version chains
        // (union records land on the surviving left node; the drained
        // orphan keeps its own pre-image for readers already past us) and
        // stamp both nodes so snapshot readers pinned below c resolve from
        // the chains, not the post-merge live contents.
        std::uint64_t merge_ver = 0;
        if (t.node->layer == 0) {
          merge_ver = version_reserve();
          if (snapshots_active()) fold_merge(t.node, next);
        }
        if constexpr (kHashEnabled) {
          // INVALIDATE (docs/HASH_INDEX.md): swing every sidecar entry for
          // the victim's keys to the surviving left chunk BEFORE the drain
          // empties the victim and BEFORE retire(). Both locks are held, so
          // no concurrent put() can re-publish `next`. By the FIX invariant
          // this clears every entry pointing at `next`.
          if (t.node->layer == 0) {
            as_data(next)->vec.for_each([&](K vk, V) {
              hints_.repoint(vk, next, t.node);
            });
            stats::count(stats::Counter::kHashRebuilds);
          }
        }
#if defined(SV_FAULT_INJECTION) && SV_FAULT_INJECTION
        // Mutation site (checker-teeth testing only): when fired, unlink the
        // orphan WITHOUT absorbing its elements -- every mapping it held
        // silently vanishes. See docs/LINEARIZABILITY.md.
        if (!SV_FAULT_SHOULD_FAIL(debug::Point::kMutDropMerge))
#endif
        node_merge_from(t.node, next);
        if (config_.adaptive && t.node->layer == 0) {
          // The absorbed orphan's evidence keeps informing the survivor,
          // and the merge is a wholesale rewrite anyway: retune in place
          // (both write locks are held; our release publishes it).
          t.node->hot.absorb(next->hot);
          adapt_apply(t.node, adapt_decide(t.node));
        }
        t.node->next.store(next->next.load(std::memory_order_relaxed),
                           std::memory_order_release);
        if (t.node->layer == 0) {
          next->mod_version.store(merge_ver, std::memory_order_release);
          t.node->mod_version.store(merge_ver, std::memory_order_release);
        }
        // Poison the retired node's successor pointer. A versioned reader
        // standing on `next` (it holds a hazard pointer, so the node
        // itself stays allocated) must not chase the frozen successor: the
        // successor could be merged away and freed later, and a frozen
        // pointer can never fail a recheck. The sentinel turns that stale
        // advance into an explicit re-position (resolve_chunk_at).
        next->next.store(retired_next(), std::memory_order_release);
        // Release before retiring: `next` is already unlinked while both
        // locks are held, so no new reader can reach it, and an immediate
        // reclaimer frees it inside retire().
        next->lock.release();
        ctx.retire(next, &reclaim_node, this);
        t.ver = t.node->lock.release();
        ctx.drop(nslot);
        continue;  // re-evaluate from the (possibly grown) current node
      }

      if (next_sz == 0 || k < node_min_key(next)) {
        // Either k belongs here, or speculation saw an inconsistent next;
        // verify the basis for stopping (line 41).
        if (!next->lock.validate(next_ver)) {
          note_retry(next);
          return false;
        }
        if (next_sz == 0) return false;  // empty non-orphan: racing state
        ctx.drop(nslot);
        break;
      }
      if (!t.node->lock.validate(t.ver)) {
        note_retry(t.node);
        return false;
      }
      ctx.drop(t.slot);
      t = Trav{next, next_ver, nslot};
    }
    return true;
  }

  // ExchangeDown (Listing 2 lines 17-22): hand-over-hand move one layer down.
  bool exchange_down(Ctx& ctx, Trav& t, NodeBase* down) {
    prefetch_node(down);
    const int nslot = other_slot(t.slot);
    ctx.protect(nslot, down);
    if (!t.node->lock.validate(t.ver)) return false;
    const Word down_ver = down->lock.read_begin();
    if (!t.node->lock.validate(t.ver)) return false;
    ctx.drop(t.slot);
    t = Trav{down, down_ver, nslot};
    return true;
  }

  // Resolve the downward pointer for k out of index node t.node. Returns
  // false on inconsistent speculation (caller restarts). Sets *exact if the
  // chunk holds k itself.
  bool index_down(Trav& t, K k, NodeBase** down, bool* exact) {
    const auto fle = as_index(t.node)->vec.find_le(k);
    if (fle.found) {
      *down = fle.val;
      *exact = (fle.key == k);
      return true;
    }
    if (t.node->is_head) {
      *down = t.node->head_down;
      *exact = false;
      return true;
    }
    return false;  // non-head with no key <= k: inconsistent speculation
  }

  // ---- Lookup implementation -------------------------------------------------

  bool try_lookup(Ctx& ctx, K k, std::optional<V>& result) {
    Trav t = begin_traversal(ctx);
    while (t.node->layer > 0) {
      if (!traverse_right(ctx, t, k, /*mutator=*/false)) return false;
      NodeBase* down = nullptr;
      bool exact = false;
      if (!index_down(t, k, &down, &exact)) return false;
      if (!exchange_down(ctx, t, down)) return false;
    }
    if (!traverse_right(ctx, t, k, /*mutator=*/false)) return false;
    result = as_data(t.node)->vec.get(k);
    if (!t.node->lock.validate(t.ver)) {  // linearization point
      note_retry(t.node);
      return false;
    }
    note_read(t.node);
    if constexpr (kHashEnabled) {
      // Opportunistic hint repair: a hit that descended means the sidecar
      // had no (correct) entry for k. PUBLISH requires the chunk's write
      // lock, so upgrade the validated read section; failure just skips the
      // repair. The upgrade/release bumps the version -- acceptable, this
      // path only runs when the hint was already missing or stale.
      if (result.has_value() && hints_.get(k) != t.node &&
          t.node->lock.try_upgrade(t.ver)) {
        hints_.put(k, t.node);
        t.node->lock.release();
        stats::count(stats::Counter::kHashRebuilds);
      } else if (!result.has_value()) {
        // k proved absent: shed any stale entry so repeated misses stop
        // paying the wasted probe. Unlocked drop is always safe.
        if (void* p = hints_.get(k)) hints_.drop(k, p);
      }
    }
    ctx.drop_all();
    return true;
  }

  // ---- Hash sidecar fast paths (docs/HASH_INDEX.md) ---------------------------
  //
  // All of these are advisory accelerations: they either conclude the
  // operation with a result identical to what the descent would produce
  // (validated under the candidate chunk's sequence lock, or performed
  // under its write lock), or they conclude nothing and the caller falls
  // back to the normal tower descent. They can never produce a wrong
  // answer, only a wasted probe.

  // PROBE: candidate data chunk for k, hazard-protected (slot 0) and
  // reconfirmed against the table (the reconfirm is what makes the
  // protection sound; see hash_index.h). nullptr -> no usable hint.
  DataNode* hash_probe(Ctx& ctx, K k) {
    void* raw = hints_.get(k);
    if (raw == nullptr) return nullptr;
    ctx.protect(0, raw);
    if (!hints_.reconfirm(k, raw)) {
      stats::count(stats::Counter::kHashStale);
      return nullptr;
    }
    return static_cast<DataNode*>(raw);
  }

  // Validated read of k through the sidecar. Returns true ONLY on a hit
  // (result engaged); a miss concludes nothing -- the hint proposes one
  // chunk, and k's absence from it does not prove absence from the map.
  bool hash_try_lookup(Ctx& ctx, K k, std::optional<V>& result) {
    DataNode* c = hash_probe(ctx, k);
    if (c == nullptr) return false;
    const Word w = c->lock.read_begin();
    result = c->vec.get(k);
    if (!result.has_value() || !c->lock.validate(w)) {
      // A hit that fails validation is indistinguishable from a torn read;
      // either way the hint did not pay off.
      if (result.has_value()) {
        result.reset();
      } else {
        stats::count(stats::Counter::kHashStale);
      }
      return false;
    }
    // c validated while containing k: a merged-away chunk is drained (or
    // version-bumped) before its locks release, so c is still linked and
    // this is the same linearization point as try_lookup's final read.
    stats::count(stats::Counter::kHashHits);
    return true;
  }

  // Fast-path remove: erase k directly from the hinted chunk under its
  // write lock. Falls back (returns false) whenever k might carry a tower:
  // by the §IV-C invariant every key present in an index layer is the
  // minimum of a non-orphan, non-head data chunk, so the guard below is
  // exhaustive -- mirroring try_remove's common-path guard.
  bool hash_try_remove(Ctx& ctx, K k) {
    DataNode* c = hash_probe(ctx, k);
    if (c == nullptr) return false;
    const Word w = c->lock.read_begin();
    if (!c->vec.contains(k)) {
      stats::count(stats::Counter::kHashStale);
      return false;
    }
    if (!c->is_head && !Lock::is_orphan(w) && node_size(c) > 0 &&
        node_min_key(c) == k) {
      return false;  // k may have a tower: take the full descent
    }
    if (!c->lock.try_upgrade(w)) return false;
    // Upgrade from w proves the speculative reads above were of the
    // current state: k is present and is not a towered minimum.
    const std::uint64_t ver = version_reserve();
    if (snapshots_active()) push_preimage(c);
    const bool erased = c->vec.erase(k);
    assert(erased);
    if (erased) c->mod_version.store(ver, std::memory_order_release);
    if (erased) hints_.erase(k, c);  // FIX, under the lock
    c->lock.release();
    if (!erased) return false;
    stats::count(stats::Counter::kHashHits);
    return true;
  }

  // Fast-path update: assign in place under the hinted chunk's write lock.
  // No structural guard needed -- update never changes the key set.
  bool hash_try_update(Ctx& ctx, K k, V v) {
    DataNode* c = hash_probe(ctx, k);
    if (c == nullptr) return false;
    const Word w = c->lock.read_begin();
    if (!c->vec.contains(k)) {
      stats::count(stats::Counter::kHashStale);
      return false;
    }
    if (!c->lock.try_upgrade(w)) return false;
    const std::uint64_t ver = version_reserve();
    if (snapshots_active()) push_preimage(c);
    const bool assigned = c->vec.assign(k, v);
    assert(assigned);
    if (assigned) c->mod_version.store(ver, std::memory_order_release);
    c->lock.release();
    if (!assigned) return false;
    stats::count(stats::Counter::kHashHits);
    return true;
  }

  // ---- Insert implementation -------------------------------------------------

  struct InsertState {
    std::array<NodeBase*, Config::kMaxLayers> prevs{};
    // Layers [lowest_frozen, height] are frozen by us; kMaxLayers + 1 means
    // "nothing frozen yet".
    std::uint32_t lowest_frozen = Config::kMaxLayers + 1;
#if defined(SV_FAULT_INJECTION) && SV_FAULT_INJECTION
    // mut-skip-freeze fired: run the data-layer write with no seqlock at
    // all (checker-teeth testing only; see try_insert).
    bool mut_unlocked = false;
#endif
  };

  void thaw_all(InsertState& st, std::uint32_t height) {
    if (st.lowest_frozen > height) return;
    for (std::uint32_t l = st.lowest_frozen; l <= height; ++l) {
      SV_FAULT_POINT(debug::Point::kThaw);  // node still frozen here
      st.prevs[l]->lock.thaw();
      stats::count(stats::Counter::kThaws);
    }
    st.lowest_frozen = Config::kMaxLayers + 1;
  }

  bool try_insert(Ctx& ctx, K k, V v, std::uint32_t height, InsertState& st,
                  bool& result) {
    const std::uint32_t top = config_.layer_count - 1;
    Trav t;
    std::uint32_t layer;
    bool resumed_at_checkpoint = false;

    if (st.lowest_frozen <= height && st.lowest_frozen >= 1) {
      // Checkpoint resume (Listing 3 line 14): the lowest node we froze
      // cannot have changed; restart the descent from it.
      SV_FAULT_POINT(debug::Point::kResume);
      layer = st.lowest_frozen;
      t.node = st.prevs[layer];
      t.slot = 0;
      ctx.protect(t.slot, t.node);
      t.ver = t.node->lock.load_relaxed();
      resumed_at_checkpoint = true;
    } else if (st.lowest_frozen == 0) {
      // Data layer already frozen: go straight to the write phase.
      return insert_write_phase(ctx, k, v, height, st, result);
    } else {
      t = begin_traversal(ctx);
      layer = top;
    }

    for (; layer >= 1; --layer) {
      if (!resumed_at_checkpoint) {
        if (!traverse_right(ctx, t, k, /*mutator=*/true)) return false;
        if (layer <= height) {
          if (SV_FAULT_SHOULD_FAIL(debug::Point::kFreeze)) return false;
          if (!t.node->lock.try_freeze(t.ver)) return false;
          stats::count(stats::Counter::kFreezes);
          t.ver = t.node->lock.load_relaxed();
          st.prevs[layer] = t.node;
          st.lowest_frozen = layer;  // checkpoint
        }
      }
      resumed_at_checkpoint = false;

      NodeBase* down = nullptr;
      bool exact = false;
      if (!index_down(t, k, &down, &exact)) return false;
      if (exact) {
        // k already present in an index layer -> the map contains k.
        if (!t.node->lock.validate(t.ver)) return false;
        thaw_all(st, height);
        ctx.drop_all();
        result = false;
        return true;
      }
      if (!exchange_down(ctx, t, down)) return false;
    }

    // Data layer.
    if (!traverse_right(ctx, t, k, /*mutator=*/true)) return false;
    if (SV_FAULT_SHOULD_FAIL(debug::Point::kFreeze)) return false;
#if defined(SV_FAULT_INJECTION) && SV_FAULT_INJECTION
    // Mutation site (checker-teeth testing only): when fired, skip the
    // data-layer freeze entirely -- the write phase then mutates the chunk
    // with NO seqlock transition, so concurrent readers validate
    // successfully against torn mid-shift states and concurrent writers'
    // upgrades succeed on a chunk being rewritten. Ordinary (height 0)
    // inserts only, so index layers keep their legitimate freezes.
    if (height == 0 && SV_FAULT_SHOULD_FAIL(debug::Point::kMutSkipFreeze)) {
      st.prevs[0] = t.node;
      st.lowest_frozen = 0;
      st.mut_unlocked = true;
      return insert_write_phase(ctx, k, v, height, st, result);
    }
#endif
    if (!t.node->lock.try_freeze(t.ver)) {
      // Another writer's section (or freeze) beat us to this data chunk:
      // exactly the collision a shorter unsorted write section shrinks.
      note_retry(t.node);
      return false;
    }
    stats::count(stats::Counter::kFreezes);
    st.prevs[0] = t.node;
    st.lowest_frozen = 0;
    return insert_write_phase(ctx, k, v, height, st, result);
  }

  bool insert_write_phase(Ctx& ctx, K k, V v, std::uint32_t height,
                          InsertState& st, bool& result) {
    // Everything in prevs[0..height] is frozen by us: reads below are
    // stable, and upgrade_frozen cannot fail. This phase never restarts.
    if (as_data(st.prevs[0])->vec.contains(k)) {
      thaw_all(st, height);
      ctx.drop_all();
      result = false;
      return true;
    }

    // The insert commits: reserve its version now (the data chunk is frozen
    // by us, so the reserve-before-mutate ordering holds) and decide once
    // whether pre-images must be preserved for registered snapshots.
    const std::uint64_t c = version_reserve();
    const bool preserve = snapshots_active();

    // Build new nodes bottom-up for layers [0, height), each containing k
    // plus every element of prevs[layer] greater than k (Listing 3 32-39).
    NodeBase* below = nullptr;
    for (std::uint32_t layer = 0; layer < height; ++layer) {
      NodeBase* prev = st.prevs[layer];
      prev->lock.upgrade_frozen();
      NodeBase* fresh;
      if (layer == 0) {
        if (preserve) push_preimage(prev);
        note_write(prev);
        const adapt::Decision ad = adapt_decide(prev);
        auto* dn = alloc_split_node<DataNode, V>(as_data(prev)->vec, k,
                                                 2 * ad.target, 0, ad.layout);
        as_data(prev)->vec.steal_greater(k, dn->vec);
        dn->vec.insert(k, v);
        adapt_apply(prev, ad);
        if (preserve) fold_split(prev, dn, k);
        dn->mod_version.store(c, std::memory_order_relaxed);
        prev->mod_version.store(c, std::memory_order_release);
        fresh = dn;
      } else {
        auto* in = alloc_split_node<IndexNode, NodeBase*>(
            as_index(prev)->vec, k, config_.index_capacity(),
            static_cast<std::uint8_t>(layer), config_.index_layout);
        SV_FAULT_POINT(debug::Point::kStealAbove);
        stats::count(stats::Counter::kStealAbove);
        as_index(prev)->vec.steal_greater(k, in->vec);
        in->vec.insert(k, below);
        fresh = in;
      }
      fresh->next.store(prev->next.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      SV_FAULT_POINT(debug::Point::kTowerSplit);  // split built, not published
      prev->next.store(fresh, std::memory_order_release);
      if constexpr (kHashEnabled) {
        // PUBLISH: fresh is linked and prev (its left neighbor) is still
        // write-locked, so fresh cannot be merged away; swing every moved
        // key's hint (plus k's) to the new chunk.
        if (layer == 0) {
          as_data(fresh)->vec.for_each([&](K mk, V) {
            hints_.put(mk, fresh);
          });
          stats::count(stats::Counter::kHashRebuilds);
        }
      }
      prev->lock.release();
      tower_splits_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kTowerSplits);
      below = fresh;
    }

    // At the chosen height, k joins an existing chunk (lines 40-42),
    // splitting it at capacity first (creating an orphan, Fig. 3d).
    NodeBase* prev = st.prevs[height];
#if defined(SV_FAULT_INJECTION) && SV_FAULT_INJECTION
    if (st.mut_unlocked) {
      // mut-skip-freeze (see try_insert): replay the split's element
      // migration with NO lock transition at all. The chunk's upper half
      // is erased, invisible for the duration of the nested point
      // (pyield@/pdelay@mut-skip-freeze widen the window), then restored
      // -- concurrent readers validate successfully against precisely the
      // intermediate state the freeze protocol exists to hide. Everything
      // is an in-place atomic slot write: no next-pointer edits, no
      // allocation, no retirement, so the injected bug is purely a
      // linearizability violation, never a memory-safety one.
      auto* dn = as_data(prev);
      std::vector<std::pair<K, V>> all;
      dn->vec.for_each([&](K dk, V dv) { all.emplace_back(dk, dv); });
      std::sort(all.begin(), all.end());
      std::vector<std::pair<K, V>> hidden(all.begin() + (all.size() + 1) / 2,
                                          all.end());
      for (const auto& [hk, hv] : hidden) dn->vec.erase(hk);
      SV_FAULT_POINT(debug::Point::kMutSkipFreeze);
      for (const auto& [hk, hv] : hidden) dn->vec.insert(hk, hv);
      dn->vec.insert(k, v);  // best effort: a full chunk drops the insert
      st.lowest_frozen = Config::kMaxLayers + 1;
      st.mut_unlocked = false;
      ctx.drop_all();
      result = true;
      return true;
    }
#endif
    prev->lock.upgrade_frozen();
    if (height == 0) {
      if (preserve) push_preimage(prev);
      insert_at_top<DataNode, V>(as_data(prev), k, v, c, preserve);
      prev->mod_version.store(c, std::memory_order_release);
    } else {
      insert_at_top<IndexNode, NodeBase*>(as_index(prev), k, below);
    }
    prev->lock.release();
    st.lowest_frozen = Config::kMaxLayers + 1;
    ctx.drop_all();
    result = true;
    return true;
  }

  // Allocate the right-hand node for a split at key k. Normally the layer's
  // configured capacity suffices; when the donor is a head whose every
  // element exceeds k, the stolen suffix plus k can exceed it, so size up
  // (rare; keeps the "newNode's first element is k" invariant intact).
  template <class NodeType, class P, class Vec>
  NodeType* alloc_split_node(const Vec& donor, K k, std::uint32_t cap,
                             std::uint8_t layer, vectormap::Layout layout) {
    std::uint32_t needed = 1;
    donor.for_each([&](K dk, auto) { needed += (dk > k) ? 1 : 0; });
    if (needed > cap) cap = needed;
    return alloc_node_as<NodeType, P>(cap, nullptr, layer, /*head=*/false,
                                      /*orphan=*/false, layout);
  }

  template <class NodeType, class P>
  void insert_at_top(NodeType* node, K k, P payload,
                     std::uint64_t commit_ver = 0, bool preserve = false) {
    if constexpr (std::is_same_v<NodeType, DataNode>) note_write(node);
    if (node->vec.full()) {
      // Capacity split: the new right sibling is an orphan (no parent entry
      // exists for it; a later merge may fold it back, Fig. 3d). The
      // sibling must be fully written *before* it is published via next --
      // it has no lock protection against speculative readers until then.
      // Data-layer splits are an adaptive decision point: the sibling is
      // born with the decided layout and target, the donor converts in
      // place under the lock we already hold.
      std::uint32_t sib_cap = node->capacity;
      vectormap::Layout sib_layout = node->vec.layout();
      adapt::Decision ad{sib_layout, node->tuned_target};
      if constexpr (std::is_same_v<NodeType, DataNode>) {
        note_split(node);
        ad = adapt_decide(node);
        sib_cap = adapt_sibling_capacity(node, ad);
        sib_layout = ad.layout;
      }
      auto* sib =
          alloc_node_as<NodeType, P>(sib_cap, nullptr, node->layer,
                                     /*head=*/false, /*orphan=*/true,
                                     sib_layout);
      capacity_splits_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kCapacitySplits);
      const K sib_min = node->vec.split_half(sib->vec);
      if constexpr (std::is_same_v<NodeType, DataNode>) {
        adapt_apply(node, ad);
      }
      const bool goes_right = k >= sib_min;
      if (goes_right) {
        const bool ok = sib->vec.insert(k, payload);
        assert(ok);
        (void)ok;
      }
      if constexpr (std::is_same_v<NodeType, DataNode>) {
        // Data-layer split: re-partition the version chain across the new
        // boundary and stamp the sibling before it becomes reachable.
        if (preserve) fold_split(node, sib, sib_min);
        sib->mod_version.store(commit_ver, std::memory_order_relaxed);
      }
      sib->next.store(node->next.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      SV_FAULT_POINT(debug::Point::kSplit);  // orphan built, not yet published
      node->next.store(sib, std::memory_order_release);
      if constexpr (std::is_same_v<NodeType, DataNode> && kHashEnabled) {
        // PUBLISH: sib is linked and node (its left neighbor) is locked, so
        // sib cannot be merged away yet; swing the moved keys' hints.
        sib->vec.for_each([&](K mk, V) { hints_.put(mk, sib); });
        stats::count(stats::Counter::kHashRebuilds);
      }
      if (goes_right) return;
    }
    const bool ok = node->vec.insert(k, payload);
    assert(ok);
    (void)ok;
    if constexpr (std::is_same_v<NodeType, DataNode> && kHashEnabled) {
      hints_.put(k, node);  // node is write-locked by the caller
    }
  }

  // ---- Remove implementation -------------------------------------------------

  bool try_remove(Ctx& ctx, K k, bool& result) {
    Trav t = begin_traversal(ctx);
    bool found_in_index = false;

    while (t.node->layer > 0) {
      if (!traverse_right(ctx, t, k, /*mutator=*/true)) return false;
      NodeBase* down = nullptr;
      bool exact = false;
      if (!index_down(t, k, &down, &exact)) return false;
      if (exact) {
        // k lives in this index layer. If k is the minimum of a non-orphan,
        // non-head node, k must also exist one layer up -- but we did not
        // see it there, so a concurrent Insert is mid-flight (Listing 4
        // line 13): restart. Heads are exempt (conceptual minimum -inf).
        if (!t.node->is_head && !Lock::is_orphan(t.ver) &&
            node_min_key(t.node) == k) {
          return false;
        }
        if (!t.node->lock.try_upgrade(t.ver)) return false;
        found_in_index = true;
        break;
      }
      if (!exchange_down(ctx, t, down)) return false;
    }

    if (!found_in_index) {
      // Common case: k is in no index layer (lines 23-34).
      if (!traverse_right(ctx, t, k, /*mutator=*/true)) return false;
      if (!t.node->is_head && !Lock::is_orphan(t.ver) &&
          node_size(t.node) > 0 && node_min_key(t.node) == k) {
        return false;  // racing Insert placed k here with height > 0
      }
      if (!t.node->lock.try_upgrade(t.ver)) {
        note_retry(t.node);
        return false;
      }
#if defined(SV_FAULT_INJECTION) && SV_FAULT_INJECTION
      // Mutation site (checker-teeth testing only): when fired, release the
      // seqlock BEFORE performing the erase. The release bumps the version,
      // so speculative readers of this chunk validate successfully against
      // the torn mid-erase element set.
      if (SV_FAULT_SHOULD_FAIL(debug::Point::kMutEarlyRelease)) {
        t.node->lock.release();
        std::this_thread::yield();  // widen the torn window
        result = as_data(t.node)->vec.erase(k);
        ctx.drop_all();
        return true;
      }
#endif
      const std::uint64_t c = version_reserve();
      if (snapshots_active()) push_preimage(t.node);
      result = as_data(t.node)->vec.erase(k);
      if (result) {
        t.node->mod_version.store(c, std::memory_order_release);
        note_write(t.node);
      }
      if constexpr (kHashEnabled) {
        // FIX: k left this chunk; clear its entry under the lock.
        if (result) hints_.erase(k, t.node);
      }
      t.node->lock.release();
      ctx.drop_all();
      return true;
    }

    // k found in an index layer: walk the down pointers, removing k from
    // each layer and orphaning the node below (lines 37-44). Locks are held
    // top-down pairwise; every node below is reachable only through locked
    // ancestors, so hazard pointers are unnecessary here.
    NodeBase* curr = t.node;
    while (curr->layer > 0) {
      NodeBase* down = nullptr;
      const bool erased = as_index(curr)->vec.erase(k, &down);
      assert(erased && down != nullptr);
      if (!erased || down == nullptr) {
        // Unreachable by the §IV-C invariant (the entry was present under
        // the lock we hold); restart defensively rather than crash.
        curr->lock.release();
        return false;
      }
      down->lock.acquire();
      down->lock.set_orphan_locked(true);
      curr->lock.release();
      curr = down;
    }
    const std::uint64_t c = version_reserve();
    if (snapshots_active()) push_preimage(curr);
    const bool erased = as_data(curr)->vec.erase(k);
    assert(erased);
    if (erased) curr->mod_version.store(c, std::memory_order_release);
    if constexpr (kHashEnabled) {
      if (erased) hints_.erase(k, curr);  // FIX, under curr's lock
    }
    curr->lock.release();
    ctx.drop_all();
    result = true;
    return true;
  }

  // ---- Update implementation -------------------------------------------------

  bool try_update(Ctx& ctx, K k, V v, bool& result) {
    Trav t = begin_traversal(ctx);
    while (t.node->layer > 0) {
      if (!traverse_right(ctx, t, k, /*mutator=*/false)) return false;
      NodeBase* down = nullptr;
      bool exact = false;
      if (!index_down(t, k, &down, &exact)) return false;
      if (!exchange_down(ctx, t, down)) return false;
    }
    if (!traverse_right(ctx, t, k, /*mutator=*/false)) return false;
    if (!t.node->lock.try_upgrade(t.ver)) {
      note_retry(t.node);
      return false;
    }
    const std::uint64_t c = version_reserve();
    if (snapshots_active()) push_preimage(t.node);
    result = as_data(t.node)->vec.assign(k, v);
    if (result) {
      t.node->mod_version.store(c, std::memory_order_release);
      note_write(t.node);
    }
    if constexpr (kHashEnabled) {
      if (result) hints_.put(k, t.node);  // refresh under the lock
    }
    t.node->lock.release();
    ctx.drop_all();
    return true;
  }

  // ---- Ordered-navigation implementation ---------------------------------------

  bool try_floor(Ctx& ctx, K k, Entry& out) {
    Trav t = begin_traversal(ctx);
    while (t.node->layer > 0) {
      if (!traverse_right(ctx, t, k, /*mutator=*/false)) return false;
      NodeBase* down = nullptr;
      bool exact = false;
      if (!index_down(t, k, &down, &exact)) return false;
      if (!exchange_down(ctx, t, down)) return false;
    }
    if (!traverse_right(ctx, t, k, /*mutator=*/false)) return false;
    // The positioned node is the floor node: nothing to its right can hold
    // a key <= k, and (unless it is the head) its minimum is <= k.
    const auto fle = as_data(t.node)->vec.find_le(k);
    if (!fle.found && !t.node->is_head) return false;  // torn speculation
    if (!t.node->lock.validate(t.ver)) return false;
    out = fle.found ? Entry(std::in_place, fle.key, fle.val) : std::nullopt;
    ctx.drop_all();
    return true;
  }

  bool try_ceiling(Ctx& ctx, K k, Entry& out) {
    Trav t = begin_traversal(ctx);
    while (t.node->layer > 0) {
      if (!traverse_right(ctx, t, k, /*mutator=*/false)) return false;
      NodeBase* down = nullptr;
      bool exact = false;
      if (!index_down(t, k, &down, &exact)) return false;
      if (!exchange_down(ctx, t, down)) return false;
    }
    if (!traverse_right(ctx, t, k, /*mutator=*/false)) return false;
    return try_scan_forward(ctx, t, k, /*use_k=*/true, out);
  }

  // From data node t, find the smallest entry (with key >= k when use_k)
  // in t or any successor, walking hand-over-hand past empty chunks.
  bool try_scan_forward(Ctx& ctx, Trav t, K k, bool use_k, Entry& out) {
    for (;;) {
      const auto e = use_k ? as_data(t.node)->vec.find_ge(k)
                           : as_data(t.node)->vec.min_entry();
      if (e.found) {
        if (!t.node->lock.validate(t.ver)) return false;
        out = Entry(std::in_place, e.key, e.val);
        ctx.drop_all();
        return true;
      }
      NodeBase* next = t.node->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        if (!t.node->lock.validate(t.ver)) return false;
        out = std::nullopt;
        ctx.drop_all();
        return true;
      }
      prefetch_node(next);
      const int nslot = other_slot(t.slot);
      ctx.protect(nslot, next);
      if (!t.node->lock.validate(t.ver)) return false;
      const Word next_ver = next->lock.read_begin();
      // Re-validate AFTER reading next's word (the paper's ExchangeDown
      // does the same, Listing 2 line 20): it proves next was still linked
      // when its version was sampled. Otherwise next_ver could be a stable
      // post-unlink word, and every later validate of next would pass while
      // its successors are retired under us.
      if (!t.node->lock.validate(t.ver)) return false;
      ctx.drop(t.slot);
      t = Trav{next, next_ver, nslot};
    }
  }

  // Walk t to the last node of its layer whose chunk is non-empty (or the
  // layer head when the whole layer is empty), re-pinning to slot 0.
  bool rightmost_nonempty(Ctx& ctx, Trav& t) {
    static_assert(reclaim::HazardDomain::kSlotsPerThread >= 3 ||
                      !std::is_same_v<Reclaimer, reclaim::HazardReclaimer>,
                  "rightmost walk needs a third hazard slot");
    Trav best = t;
    ctx.protect(2, best.node);
    best.slot = 2;
    for (;;) {
      NodeBase* next = t.node->next.load(std::memory_order_acquire);
      if (next == nullptr) break;
      prefetch_node(next);
      const int nslot = t.slot ^ 1;  // ping-pong within {0, 1}
      ctx.protect(nslot, next);
      if (!t.node->lock.validate(t.ver)) return false;
      const Word next_ver = next->lock.read_begin();
      // Second validate after sampling next's word -- see try_scan_forward.
      if (!t.node->lock.validate(t.ver)) return false;
      t = Trav{next, next_ver, nslot};
      if (node_size(t.node) > 0) {
        ctx.protect(2, t.node);
        best = Trav{t.node, next_ver, 2};
      }
    }
    ctx.protect(0, best.node);  // best stayed protected via slot 2
    ctx.drop(1);
    ctx.drop(2);
    t = Trav{best.node, best.ver, 0};
    return true;
  }

  bool try_last(Ctx& ctx, Entry& out) {
    Trav t = begin_traversal(ctx);
    for (;;) {
      if (!rightmost_nonempty(ctx, t)) return false;
      if (t.node->layer == 0) {
        const auto me = as_data(t.node)->vec.max_entry();
        if (!t.node->lock.validate(t.ver)) return false;
        out = me.found ? Entry(std::in_place, me.key, me.val) : std::nullopt;
        ctx.drop_all();
        return true;
      }
      const auto me = as_index(t.node)->vec.max_entry();
      NodeBase* down = nullptr;
      if (me.found) {
        down = me.val;
      } else if (t.node->is_head) {
        down = t.node->head_down;
      } else {
        return false;  // torn speculation: empty non-head after the walk
      }
      if (!exchange_down(ctx, t, down)) return false;
    }
  }

  // ---- Range implementation ---------------------------------------------------

  // Write-lock the data nodes covering [lo, hi] left to right, call
  // body(node) on each (body returns its visit count), release all.
  // Returns the total number of mappings visited.
  template <class Body>
  std::size_t range_locked(K lo, K hi, bool mutating, Body&& body) {
    stats::Scope stats_scope(stats_);
    Ctx ctx = reclaimer_.thread_ctx();
    OpGuard op_scope(ctx);
    sync::Backoff backoff;
    for (;;) {
      std::size_t visited = 0;
      if (try_range(ctx, lo, hi, mutating, body, visited)) {
        stats::count(stats::Counter::kRangeOps);
        if (visited > 0) stats::count(stats::Counter::kRangeKeysVisited, visited);
        return visited;
      }
      ctx.drop_all();
      restarts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  template <class Body>
  bool try_range(Ctx& ctx, K lo, K hi, bool mutating, Body& body,
                 std::size_t& visited) {
    Trav t = begin_traversal(ctx);
    while (t.node->layer > 0) {
      if (!traverse_right(ctx, t, lo, /*mutator=*/false)) return false;
      NodeBase* down = nullptr;
      bool exact = false;
      if (!index_down(t, lo, &down, &exact)) return false;
      if (!exchange_down(ctx, t, down)) return false;
    }
    if (!traverse_right(ctx, t, lo, /*mutator=*/false)) return false;
    if (!t.node->lock.try_upgrade(t.ver)) return false;
    // Growing phase: extend right while the range may continue. While we
    // hold a node's write lock its successor cannot be unlinked, so the
    // plain next walk is safe without hazard pointers.
    std::vector<NodeBase*> locked;
    locked.push_back(t.node);
    ctx.drop_all();
    for (;;) {
      NodeBase* last = locked.back();
      NodeBase* next = last->next.load(std::memory_order_acquire);
      if (next == nullptr) break;
      const std::uint32_t nsz = node_size(next);
      if (nsz > 0 && node_min_key(next) > hi) break;
      next->lock.acquire();
      locked.push_back(next);
      if (nsz > 0 && node_max_key(next) > hi) break;
    }
    if (mutating) {
      // One commit version covers the whole locked range: the transform is
      // a single atomic state change to snapshot readers.
      const std::uint64_t c = version_reserve();
      const bool preserve = snapshots_active();
      for (NodeBase* n : locked) {
        if (preserve) push_preimage(n);
        visited += body(as_data(n));
        n->mod_version.store(c, std::memory_order_release);
      }
    } else {
      for (NodeBase* n : locked) {
        const std::size_t in_chunk = body(as_data(n));
        note_scan(n, in_chunk);
        // A locked scan of an UNSORTED chunk is also a decision site: we
        // hold the chunk's write lock and the visit just paid the per-visit
        // sort that an in-place conversion would have avoided, so
        // scan-dominated chunks converge at the scan rate instead of
        // waiting for a split/merge a read-heavy workload may never
        // trigger. Sorted chunks are skipped outright -- a scan is no
        // reason to flip toward unsorted (its next split/merge decides
        // that), and draining counters on every visit would tax the very
        // layout scans favor.
        if (config_.adaptive && n->layer == 0 &&
            as_data(n)->vec.layout() == vectormap::Layout::kUnsorted) {
          adapt_apply(n, adapt_decide(n));
        }
        visited += in_chunk;
      }
    }
    for (NodeBase* n : locked) n->lock.release();
    return true;
  }

  // ---- Multiversioning implementation (docs/SNAPSHOTS.md) --------------------
  //
  // Invariants: mod_version and vchain of a data chunk are written only
  // under its write lock; chain records are immutable after publication and
  // strictly descend by version; each chunk's chain describes the chunk's
  // own key sub-range at past versions, with splits and merges re-
  // partitioning ("folding") the chains across the new boundary so every
  // retained version stays resolvable from the chunks a reader can reach.

  static constexpr std::size_t kMaxChainLength = 8;

  // Reserve the next commit version. Callers hold the write locks of every
  // chunk they will mutate BEFORE reserving, push pre-images after
  // reserving and before the first mutation, and store mod_version = c
  // before releasing. The reserve-then-check-registry order pairs with the
  // registry's claim-then-load order (mvcc::SnapshotRegistry) so a writer
  // never misses a reader it must preserve state for.
  std::uint64_t version_reserve() noexcept {
    return commit_version_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  bool snapshots_active() const noexcept { return snaps_.active() != 0; }

  // Record the chunk's current live contents at its current mod_version
  // (callers hold the chunk's write lock and have already reserved a newer
  // commit version). No-op when that state is already the chain head.
  void push_preimage(NodeBase* n) {
    const std::uint64_t m = n->mod_version.load(std::memory_order_relaxed);
    VRecord* head = n->vchain.load(std::memory_order_relaxed);
    if (head != nullptr && head->version == m) {
      maybe_prune(n);
      return;
    }
    // A record at version m is only ever resolved by a reader pinned at
    // p >= m; when the registry can prove no such pin exists, skip the
    // push. This is what bounds chain growth (and keeps writers O(chain))
    // under a long-pinned view: its first preserved record satisfies it
    // forever, and every later commit on the chunk lands here.
    if (!snaps_.needs_preimage(m)) {
      stats::count(stats::Counter::kPreimagesSkipped);
      maybe_prune(n);
      return;
    }
    const std::uint32_t count = as_data(n)->vec.size();
    VRecord* rec = alloc_record(m, count, head);
    std::uint32_t i = 0;
    as_data(n)->vec.for_each([&](K k, V v) {
      if (i < count) {
        rec->keys()[i] = k;
        rec->vals()[i] = v;
        ++i;
      }
    });
    n->vchain.store(rec, std::memory_order_release);
    maybe_prune(n);
  }

  // Truncate chain records no registered snapshot can reach: keep every
  // record newer than the registry floor plus the newest record at-or-below
  // it. A walker pinned at v >= floor targets the newest record <= v, which
  // is always inside the kept prefix, and its transit hops only touch
  // records with version > v -- so the detached tail is freed directly.
  void maybe_prune(NodeBase* n) {
    VRecord* head = n->vchain.load(std::memory_order_relaxed);
    std::size_t len = 0;
    for (VRecord* r = head; r != nullptr;
         r = r->next.load(std::memory_order_relaxed)) {
      ++len;
    }
    if (len <= kMaxChainLength) return;
    const std::uint64_t floor = snaps_.floor();
    if (floor == mvcc::SnapshotRegistry::kNoFloor) {
      // No registered snapshot: nothing reads this chain now, and any
      // future snapshot is served by pre-images pushed by later commits
      // (its registration precedes, in seq_cst order, every commit newer
      // than its pinned version).
      free_chain(n->vchain.exchange(nullptr, std::memory_order_relaxed));
      return;
    }
    for (VRecord* r = head; r != nullptr;
         r = r->next.load(std::memory_order_relaxed)) {
      if (r->version <= floor) {
        free_chain(r->next.exchange(nullptr, std::memory_order_relaxed));
        return;
      }
    }
  }

  // Split fold: partition `left`'s chain across the new boundary so each
  // side's records describe only its own key sub-range at every retained
  // version. Filtered copies are PREPENDED to left's old chain (same
  // version sequence): in-flight walkers on old records stay safe, new
  // walkers stop in the filtered prefix, and the shadowed tail dies via
  // pruning or with the node. `sib` is unpublished (or locked), so its
  // chain is written fresh. Caller holds left's write lock.
  void fold_split(NodeBase* left, NodeBase* sib, K bound) {
    VRecord* old_head = left->vchain.load(std::memory_order_relaxed);
    if (old_head == nullptr) return;
    SV_FAULT_POINT(debug::Point::kVersionFold);
    stats::count(stats::Counter::kVersionFolds);
    std::vector<VRecord*> recs;
    for (VRecord* r = old_head; r != nullptr;
         r = r->next.load(std::memory_order_relaxed)) {
      recs.push_back(r);
    }
    VRecord* left_chain = old_head;
    VRecord* sib_chain = sib->vchain.load(std::memory_order_relaxed);
    for (auto it = recs.rbegin(); it != recs.rend(); ++it) {  // oldest first
      VRecord* r = *it;
      std::uint32_t nl = 0;
      for (std::uint32_t i = 0; i < r->count; ++i) {
        if (r->keys()[i] < bound) ++nl;
      }
      VRecord* lr = alloc_record(r->version, nl, left_chain);
      VRecord* sr = alloc_record(r->version, r->count - nl, sib_chain);
      std::uint32_t il = 0, is = 0;
      for (std::uint32_t i = 0; i < r->count; ++i) {
        if (r->keys()[i] < bound) {
          lr->keys()[il] = r->keys()[i];
          lr->vals()[il] = r->vals()[i];
          ++il;
        } else {
          sr->keys()[is] = r->keys()[i];
          sr->vals()[is] = r->vals()[i];
          ++is;
        }
      }
      left_chain = lr;
      sib_chain = sr;
    }
    sib->vchain.store(sib_chain, std::memory_order_release);
    left->vchain.store(left_chain, std::memory_order_release);
    maybe_prune(left);
  }

  // Merge fold, called with both write locks held BEFORE right's elements
  // are drained into left. Readers that already passed left resolve right
  // from right's own chain (pre-image pushed here); readers that arrive at
  // left after the merge -- when right is unreachable -- must resolve the
  // union of both histories from left's chain alone, so one union record
  // per distinct retained version is prepended.
  void fold_merge(NodeBase* left, NodeBase* right) {
    SV_FAULT_POINT(debug::Point::kVersionFold);
    stats::count(stats::Counter::kVersionFolds);
    push_preimage(right);  // right's live pre-merge state, at its version
    push_preimage(left);   // left's live pre-merge state, at its version
    std::vector<VRecord*> lrecs, rrecs;  // newest first
    for (VRecord* r = left->vchain.load(std::memory_order_relaxed);
         r != nullptr; r = r->next.load(std::memory_order_relaxed)) {
      lrecs.push_back(r);
    }
    for (VRecord* r = right->vchain.load(std::memory_order_relaxed);
         r != nullptr; r = r->next.load(std::memory_order_relaxed)) {
      rrecs.push_back(r);
    }
    std::vector<std::uint64_t> vers;
    for (VRecord* r : lrecs) vers.push_back(r->version);
    for (VRecord* r : rrecs) vers.push_back(r->version);
    std::sort(vers.begin(), vers.end());
    vers.erase(std::unique(vers.begin(), vers.end()), vers.end());
    auto newest_le = [](const std::vector<VRecord*>& recs,
                        std::uint64_t u) -> VRecord* {
      for (VRecord* r : recs) {  // newest first
        if (r->version <= u) return r;
      }
      return nullptr;
    };
    VRecord* chain = left->vchain.load(std::memory_order_relaxed);
    for (std::uint64_t u : vers) {  // ascending: prepend => descending chain
      VRecord* la = newest_le(lrecs, u);
      VRecord* ra = newest_le(rrecs, u);
      const std::uint32_t count =
          (la != nullptr ? la->count : 0) + (ra != nullptr ? ra->count : 0);
      VRecord* rec = alloc_record(u, count, chain);
      std::uint32_t i = 0;
      for (VRecord* src : {la, ra}) {
        if (src == nullptr) continue;
        for (std::uint32_t j = 0; j < src->count; ++j) {
          rec->keys()[i] = src->keys()[j];
          rec->vals()[i] = src->vals()[j];
          ++i;
        }
      }
      chain = rec;
    }
    left->vchain.store(chain, std::memory_order_release);
    maybe_prune(left);
  }

  // Sentinel stored into a retired (merged-away) node's `next` at unlink
  // time. Never dereferenced: versioned readers treat it as "this chunk
  // was merged under me, re-position", and every other traversal
  // validates its source's seqlock word before using a successor -- a
  // merge write-locks the absorbed node, so those validations fail first.
  static NodeBase* retired_next() noexcept {
    return reinterpret_cast<NodeBase*>(std::uintptr_t{1});
  }

  // Resolve data chunk n's state at version v: appends the mappings within
  // [lo, hi] to out (cleared first; chunk-local, unsorted) and returns the
  // successor pointer consistent with the resolved contents plus the
  // resolved full-state minimum (scan termination). An in-flight commit
  // costs a bounded wait (read_begin), a racing commit a bounded re-read
  // (each failure implies a strictly newer commit on this chunk, and
  // commits at-or-below v are finite), and a structural move of the
  // successor a bounded re-pair. The one non-local outcome: when n itself
  // has been merged away under the reader (*retired set), its folded
  // history lives on the absorbing left sibling and the caller must
  // re-position from its key cursor.
  void resolve_chunk_at(NodeBase* n, std::uint64_t v, K lo, K hi,
                        std::vector<std::pair<K, V>>& out,
                        NodeBase** next_out, bool* has_min, K* min_out,
                        bool* retired) {
    for (std::size_t attempt = 0;; ++attempt) {
      if (attempt > 0) stats::count(stats::Counter::kSnapshotChunkRetries);
      out.clear();
      const Word w = n->lock.read_begin();
      const std::uint64_t m = n->mod_version.load(std::memory_order_acquire);
      if (m <= v) {
        // Live contents are the state at v: one speculative validated read.
        bool any = false;
        K mn{};
        as_data(n)->vec.for_each([&](K k, V val) {
          if (!any || k < mn) {
            mn = k;
            any = true;
          }
          if (!(k < lo) && !(hi < k)) out.emplace_back(k, val);
        });
        NodeBase* next = n->next.load(std::memory_order_acquire);
        if (!n->lock.validate(w)) continue;  // a commit landed: re-evaluate
        *next_out = next;
        *has_min = any;
        if (any) *min_out = mn;
        stats::count(stats::Counter::kSnapshotChunksLive);
        return;
      }
      // Live is newer than v: resolve from the version chain, pairing the
      // chosen record with the successor pointer (a split/merge that moves
      // the successor also folds the chain; the re-read observes both).
      NodeBase* next1 = n->next.load(std::memory_order_acquire);
      if (next1 == retired_next()) {
        *retired = true;  // n was merged away mid-visit: re-position
        return;
      }
      VRecord* r = n->vchain.load(std::memory_order_acquire);
      while (r != nullptr && r->version > v) {
        r = r->next.load(std::memory_order_acquire);
      }
      NodeBase* next2 = n->next.load(std::memory_order_acquire);
      if (next2 == retired_next()) {
        *retired = true;
        return;
      }
      if (next1 != next2) continue;
      bool any = false;
      K mn{};
      if (r != nullptr) {
        for (std::uint32_t i = 0; i < r->count; ++i) {
          const K k = r->keys()[i];
          if (!any || k < mn) {
            mn = k;
            any = true;
          }
          if (!(k < lo) && !(hi < k)) out.emplace_back(k, r->vals()[i]);
        }
      }
      // r == nullptr: this chunk's sub-range held nothing at v (the chunk
      // was born after v, or was empty at every retained version <= v).
      *next_out = next2;
      *has_min = any;
      if (any) *min_out = mn;
      stats::count(stats::Counter::kSnapshotChunksChain);
      return;
    }
  }

  // Versioned scan body. `emitted`/`last` form a key cursor owned by the
  // caller: fn has been invoked exactly for the keys <= last (when
  // emitted), and never twice for any key -- the cursor survives both the
  // internal re-positions below and a speculative-descent retry by the
  // caller, so a scan's output is append-only. That is the wait-freedom
  // contract: kSnapshotScanRestarts (emission thrown away and rebuilt)
  // stays zero by construction.
  template <class Fn>
  bool try_range_at(Ctx& ctx, std::uint64_t v, K lo, K hi, Fn& fn,
                    std::size_t& visited, bool& emitted, K& last) {
    for (;;) {
      // Position: descend to the live floor chunk of the first key still
      // needed. Safe at any pinned v <= now: a chunk's historical
      // sub-range lower bound never exceeds its live minimum, so every
      // mapping > cursor at v is resolvable from this chunk or one to its
      // right.
      const K target = emitted ? last : lo;
      Trav t = begin_traversal(ctx);
      while (t.node->layer > 0) {
        if (!traverse_right(ctx, t, target, /*mutator=*/false)) return false;
        NodeBase* down = nullptr;
        bool exact = false;
        if (!index_down(t, target, &down, &exact)) return false;
        if (!exchange_down(ctx, t, down)) return false;
      }
      if (!traverse_right(ctx, t, target, /*mutator=*/false)) return false;
      NodeBase* node = t.node;
      int slot = t.slot;
      std::vector<std::pair<K, V>> buf;
      bool reposition = false;
      while (!reposition) {
        NodeBase* next = nullptr;
        bool has_min = false;
        bool node_retired = false;
        K mn{};
        resolve_chunk_at(node, v, lo, hi, buf, &next, &has_min, &mn,
                         &node_retired);
        if (node_retired) {
          // The chunk under us was merged away; its folded history moved
          // to the left sibling. Re-descend from the cursor -- emitted
          // keys are filtered out below, so nothing is reported twice.
          reposition = true;
          break;
        }
        int nslot = slot;
        if (next != nullptr) {
          // Protect-then-recheck: if the successor moved after resolution,
          // re-resolve so (contents, successor) stay a consistent pair. A
          // concurrent retire of `node` itself surfaces as the poisoned
          // pointer on the re-resolve.
          nslot = other_slot(slot);
          ctx.protect(nslot, next);
          if (node->next.load(std::memory_order_acquire) != next) {
            stats::count(stats::Counter::kSnapshotChunkRetries);
            continue;
          }
        }
        if (has_min && hi < mn) break;  // everything further lies beyond hi
        if (!buf.empty()) {
          std::sort(buf.begin(), buf.end(),
                    [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
                      return a.first < b.first;
                    });
          for (const auto& [bk, bv] : buf) {
            if (emitted && !(last < bk)) continue;  // cursor: already out
            fn(bk, bv);
            ++visited;
            last = bk;
            emitted = true;
          }
        }
        if (next == nullptr) break;
        ctx.drop(slot);
        node = next;
        slot = nslot;
      }
      ctx.drop_all();
      if (!reposition) return true;
      stats::count(stats::Counter::kSnapshotChunkRetries);
    }
  }

  // ---- Batch implementation --------------------------------------------------
  //
  // The NO_WAIT 2PL engine that used to live here inline -- covers(),
  // lock_floor_descent(), lock_floor_from(), try_apply_batch() -- moved to
  // the shared transaction layer (txn/lock_mgr.h, reached through the
  // sv::txn::MapAccess friend). What remains below are the map-side
  // mutation primitives the lock manager drives: apply_chunk_ops (absorb a
  // locked chunk's sorted op run, splitting at capacity) and the tower
  // demote used when a batch removes a towered key.

  // Apply staged ops [begin, end) (ascending keys) to one locked chunk,
  // splitting at capacity into locked orphan siblings that are appended to
  // `locked` for the final release. Pieces' mod_version is stamped with the
  // batch's commit version.
  void apply_chunk_ops(NodeBase* chunk, BatchOp* ops,
                       const std::vector<std::uint32_t>& order,
                       std::size_t begin, std::size_t end, std::uint64_t c,
                       bool preserve, std::vector<NodeBase*>& locked,
                       std::size_t& applied, std::int64_t& delta) {
    if (preserve) push_preimage(chunk);
    std::vector<NodeBase*> pieces{chunk};
    std::vector<K> mins{K{}};  // mins[0] unused (chunk covers leftward)
    std::size_t pi = 0;
    for (std::size_t s = begin; s < end; ++s) {
      BatchOp& op = ops[order[s]];
      while (pi + 1 < pieces.size() && !(op.key < mins[pi + 1])) ++pi;
      auto* p = as_data(pieces[pi]);
      if (op.kind == mvcc::BatchOpKind::kRemove) {
        op.applied = p->vec.erase(op.key);
        if (op.applied) {
          if constexpr (kHashEnabled) hints_.erase(op.key, p);  // FIX
          note_write(p);
          ++applied;
          --delta;
        }
        continue;
      }
      if (p->vec.assign(op.key, op.value)) {
        op.applied = false;  // overwrite: present before and after
        continue;
      }
      if (p->vec.full()) {
        // Capacity split under our lock: the sibling is born locked (it is
        // mutated until the batch commits) and orphan (no parent entry).
        // Adaptive decision point, like insert_at_top's split.
        note_split(p);
        const adapt::Decision ad = adapt_decide(p);
        auto* sib = alloc_node_as<DataNode, V>(
            adapt_sibling_capacity(p, ad), nullptr, 0,
            /*head=*/false, /*orphan=*/true, ad.layout);
        sib->lock.acquire();  // fresh node: uncontended
        capacity_splits_.fetch_add(1, std::memory_order_relaxed);
        stats::count(stats::Counter::kCapacitySplits);
        const K sib_min = p->vec.split_half(sib->vec);
        adapt_apply(p, ad);
        if (preserve) fold_split(p, sib, sib_min);
        sib->next.store(p->next.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
        SV_FAULT_POINT(debug::Point::kSplit);
        p->next.store(sib, std::memory_order_release);
        if constexpr (kHashEnabled) {
          // PUBLISH: both p and sib are locked until the batch commits.
          sib->vec.for_each([&](K mk, V) { hints_.put(mk, sib); });
          stats::count(stats::Counter::kHashRebuilds);
        }
        locked.push_back(sib);
        pieces.insert(pieces.begin() + static_cast<std::ptrdiff_t>(pi) + 1,
                      sib);
        mins.insert(mins.begin() + static_cast<std::ptrdiff_t>(pi) + 1,
                    sib_min);
        if (!(op.key < sib_min)) {
          ++pi;
          p = sib;
        }
      }
      const bool ok = p->vec.insert(op.key, op.value);
      assert(ok);
      (void)ok;
      if constexpr (kHashEnabled) hints_.put(op.key, p);  // under the lock
      note_write(p);
      op.applied = true;
      ++applied;
      ++delta;
    }
    for (NodeBase* piece : pieces) {
      piece->mod_version.store(c, std::memory_order_release);
    }
  }

  // Demote key k's tower: erase k from every index layer and orphan the
  // chunks below -- try_remove's index path minus the final data-layer
  // erase, so k itself stays present. Benign structurally: lookups descend
  // to k's chunk through the left neighbor's entry and find k by the
  // rightward walk. Called with no chunk locks held.
  void demote_tower(Ctx& ctx, K k) {
    sync::Backoff backoff;
    for (;;) {
      if (try_demote_tower(ctx, k)) return;
      ctx.drop_all();
      stats::count(stats::Counter::kOpRestarts);
      backoff.pause();
    }
  }

  bool try_demote_tower(Ctx& ctx, K k) {
    Trav t = begin_traversal(ctx);
    while (t.node->layer > 0) {
      if (!traverse_right(ctx, t, k, /*mutator=*/true)) return false;
      NodeBase* down = nullptr;
      bool exact = false;
      if (!index_down(t, k, &down, &exact)) return false;
      if (exact) {
        if (!t.node->is_head && !Lock::is_orphan(t.ver) &&
            node_min_key(t.node) == k) {
          return false;  // k should also exist a layer up: racing insert
        }
        if (!t.node->lock.try_upgrade(t.ver)) return false;
        NodeBase* curr = t.node;
        while (curr->layer > 0) {
          NodeBase* below = nullptr;
          const bool erased = as_index(curr)->vec.erase(k, &below);
          if (!erased || below == nullptr) {
            curr->lock.release();
            return false;  // defensive: invariant says unreachable
          }
          below->lock.acquire();
          below->lock.set_orphan_locked(true);
          curr->lock.release();
          curr = below;
        }
        curr->lock.release();  // data chunk: k stays in place
        ctx.drop_all();
        return true;
      }
      if (!exchange_down(ctx, t, down)) return false;
    }
    ctx.drop_all();  // k is in no index layer: nothing to demote
    return true;
  }

  // ---- Members ----------------------------------------------------------------

  Config config_;
  // alloc_ is declared before reclaimer_ on purpose: the reclaimer's
  // destructor frees pending retirements *through* the allocator, so the
  // allocator must be destroyed after it (reverse declaration order).
  Alloc alloc_;
  Reclaimer reclaimer_;
  // Hash sidecar hint table (empty with NoIndex). Holds no node ownership:
  // entries are advisory pointers invalidated before the nodes they name
  // are retired, so destruction order relative to the reclaimer is free.
  [[no_unique_address]] HintTable hints_;
  std::vector<NodeBase*> heads_;  // per layer, [0] = data
  NodeBase* head_ = nullptr;      // top-layer head (the paper's `head`)
  std::atomic<std::int64_t> approx_size_{0};
  mutable std::atomic<std::uint64_t> restarts_{0};
  mutable std::atomic<std::uint64_t> orphan_merges_{0};
  mutable std::atomic<std::uint64_t> capacity_splits_{0};
  mutable std::atomic<std::uint64_t> tower_splits_{0};
  mutable stats::Registry stats_;

  // Multiversioning (docs/SNAPSHOTS.md): the global commit version every
  // committed mutation bumps, and the registry of pinned snapshot versions
  // writers consult before discarding pre-images.
  std::atomic<std::uint64_t> commit_version_{0};
  mvcc::SnapshotRegistry snaps_;
};

// Convenience aliases matching the paper's evaluated variants. Chunk
// layouts are runtime configuration now (Config::index_layout /
// Config::data_layout, defaulting to the paper's best static choice:
// sorted index chunks over unsorted data chunks).
template <class K, class V>
using SkipVector = SkipVectorMap<K, V, reclaim::HazardReclaimer>;  // SV-HP

template <class K, class V>
using SkipVectorLeak =
    SkipVectorMap<K, V, reclaim::LeakReclaimer>;  // SV-Leak

template <class K, class V>
using SkipVectorSeq = SkipVectorMap<K, V, reclaim::ImmediateReclaimer>;

// Pool-allocated variants: SV-HP / SV-Leak on a slab pool with per-thread
// magazines (alloc/pool_allocator.h). Note SkipVectorPoolLeak does NOT leak
// node memory at destruction: unlinked nodes are never reclaimed while the
// map lives (the paper's Leak semantics), but every byte sits in a pool
// arena and is released wholesale by the allocator's destructor.
template <class K, class V>
using SkipVectorPool =
    SkipVectorMap<K, V, reclaim::HazardReclaimer, alloc::PoolNodeAllocator>;

template <class K, class V>
using SkipVectorPoolLeak =
    SkipVectorMap<K, V, reclaim::LeakReclaimer, alloc::PoolNodeAllocator>;

// Hash-sidecar variants (docs/HASH_INDEX.md): SV-HP plus the key -> chunk
// hint table consulted before descent. The bench suite reports this as
// SV-HP-Hash.
template <class K, class V>
using SkipVectorHash =
    SkipVectorMap<K, V, reclaim::HazardReclaimer, alloc::MallocNodeAllocator,
                  hashidx::HashChunkIndex>;

template <class K, class V>
using SkipVectorHashSeq =
    SkipVectorMap<K, V, reclaim::ImmediateReclaimer,
                  alloc::MallocNodeAllocator, hashidx::HashChunkIndex>;

}  // namespace sv::core
