// SkipVectorMap instantiated with epoch-based reclamation (SV-EBR): the
// deferred-reclamation alternative the paper contrasts hazard pointers
// against. Separate header so the core stays independent of the epoch
// machinery.
//
// Stats note (src/stats/stats.h): epoch retire/advance/reclaim events are
// attributed to whichever map's stats::Scope is active when end_op() runs --
// for this alias that is always the owning SkipVectorMap, since each
// instance has a private EpochDomain.
//
// Snapshot note (docs/SNAPSHOTS.md): the multiversioned snapshot and
// apply_batch API is reclaimer-independent, so these aliases inherit it
// unchanged. Version-chain records are freed directly under chunk locks or
// with the owning node (never through the epoch domain), so no extra
// retire traffic is attributed here.
#pragma once

#include "core/skip_vector.h"
#include "reclaim/epoch.h"

namespace sv::core {

template <class K, class V>
using SkipVectorEpoch = SkipVectorMap<K, V, reclaim::EpochReclaimer>;

// SV-EBR on the slab pool (alloc/pool_allocator.h): the epoch domain's
// deferred frees route back into the owning map's pool.
template <class K, class V>
using SkipVectorEpochPool =
    SkipVectorMap<K, V, reclaim::EpochReclaimer, alloc::PoolNodeAllocator>;

// SV-EBR with the hash sidecar (docs/HASH_INDEX.md). Under epochs the
// sidecar's probe protocol leans on the operation's epoch pin instead of
// hazard slots: protect() is a no-op, and a table entry observed inside
// begin_op()/end_op() names a chunk that cannot be freed before the pin
// drops (entries are invalidated before retire, and retired nodes wait out
// the pinned epoch).
template <class K, class V>
using SkipVectorEpochHash =
    SkipVectorMap<K, V, reclaim::EpochReclaimer, alloc::MallocNodeAllocator,
                  hashidx::HashChunkIndex>;

}  // namespace sv::core
