// Row storage and per-row latch for the DBx1000-style OLTP engine (the
// substrate behind the paper's Fig. 6 YCSB experiment).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/hw.h"

namespace sv::dbx {

// Reader/writer spin latch supporting NO_WAIT two-phase locking: lock
// attempts never block; a failed try aborts the transaction.
class RowLatch {
 public:
  bool try_lock_shared() noexcept {
    std::int32_t v = state_.load(std::memory_order_relaxed);
    while (v >= 0) {
      if (state_.compare_exchange_weak(v, v + 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void unlock_shared() noexcept {
    state_.fetch_sub(1, std::memory_order_release);
  }

  bool try_lock_exclusive() noexcept {
    std::int32_t expected = 0;
    return state_.compare_exchange_strong(expected, -1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void unlock_exclusive() noexcept {
    state_.store(0, std::memory_order_release);
  }

  // Upgrade is not supported under NO_WAIT; transactions declare access
  // modes up front (as DBx1000's YCSB driver does).

 private:
  // 0 = free, >0 = reader count, -1 = writer.
  std::atomic<std::int32_t> state_{0};
};

// A fixed-width row: 10 columns of 8 bytes, mirroring DBx1000's YCSB table
// shape, plus its latch. Cache-line aligned so row latches do not false-share.
struct alignas(kCacheLineSize) Row {
  static constexpr int kColumns = 10;
  RowLatch latch;
  std::uint64_t cols[kColumns] = {};
};

}  // namespace sv::dbx
