#include "dbx/table.h"

namespace sv::dbx {

Table::Table(std::size_t rows_per_slab) : rows_per_slab_(rows_per_slab) {}

Row* Table::allocate_row() {
  const std::size_t slab = count_ / rows_per_slab_;
  const std::size_t off = count_ % rows_per_slab_;
  if (slab == slabs_.size()) {
    slabs_.push_back(std::make_unique<Row[]>(rows_per_slab_));
  }
  ++count_;
  return &slabs_[slab][off];
}

Row* Table::row_at(std::size_t i) noexcept {
  return &slabs_[i / rows_per_slab_][i % rows_per_slab_];
}

}  // namespace sv::dbx
