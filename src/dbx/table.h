// Slab-allocated in-memory table of fixed-width rows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "dbx/row.h"

namespace sv::dbx {

// Rows live in large contiguous slabs; row pointers are stable for the
// table's lifetime (indexes store Row*).
class Table {
 public:
  explicit Table(std::size_t rows_per_slab = 1 << 16);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  // Appends a zero-initialized row, returning its stable pointer.
  Row* allocate_row();

  std::size_t row_count() const noexcept { return count_; }

  // Direct access by insertion order (0-based). Valid while the table lives.
  Row* row_at(std::size_t i) noexcept;

  std::size_t memory_bytes() const noexcept {
    return slabs_.size() * rows_per_slab_ * sizeof(Row);
  }

 private:
  const std::size_t rows_per_slab_;
  std::vector<std::unique_ptr<Row[]>> slabs_;
  std::size_t count_ = 0;
};

}  // namespace sv::dbx
