#include "dbx/tpcc.h"

namespace sv::dbx::tpcc {

namespace {
constexpr std::uint32_t kTableShift = 56;
constexpr std::uint32_t kWarehouseShift = 40;
constexpr std::uint32_t kDistrictShift = 32;
constexpr std::uint64_t kWarehouseMask = 0xffff;
constexpr std::uint64_t kDistrictMask = 0xff;
constexpr std::uint64_t kSlotMask = 0xffffffff;
// Order-line slots: [31:8] oid, [7:0] line.
constexpr std::uint32_t kLineBits = 8;
}  // namespace

std::uint64_t make_key(Table t, std::uint32_t warehouse,
                       std::uint32_t district, std::uint32_t slot) noexcept {
  return (static_cast<std::uint64_t>(t) << kTableShift) |
         (static_cast<std::uint64_t>(warehouse & kWarehouseMask)
          << kWarehouseShift) |
         (static_cast<std::uint64_t>(district & kDistrictMask)
          << kDistrictShift) |
         slot;
}

KeyParts split_key(std::uint64_t key) noexcept {
  return KeyParts{
      static_cast<Table>(key >> kTableShift),
      static_cast<std::uint32_t>((key >> kWarehouseShift) & kWarehouseMask),
      static_cast<std::uint32_t>((key >> kDistrictShift) & kDistrictMask),
      static_cast<std::uint32_t>(key & kSlotMask),
  };
}

std::uint32_t order_line_slot(std::uint32_t oid, std::uint32_t line) noexcept {
  return (oid << kLineBits) | (line & 0xff);
}

bool TpccConfig::validate(std::string* err) const {
  auto fail = [&](const char* what) {
    if (err != nullptr) *err = what;
    return false;
  };
  if (warehouses == 0 || warehouses > kWarehouseMask) {
    return fail("warehouses out of range");
  }
  if (districts_per_warehouse == 0 || districts_per_warehouse > kDistrictMask) {
    return fail("districts_per_warehouse out of range");
  }
  if (customers_per_district == 0 || customers_per_district > kSlotMask) {
    return fail("customers_per_district out of range");
  }
  if (items == 0 || items > kSlotMask) return fail("items out of range");
  // Order-line slots pack the line number into kLineBits.
  if (max_order_lines == 0 || max_order_lines > (1u << kLineBits) ||
      max_order_lines > 64) {
    return fail("max_order_lines out of range");
  }
  if (payment_fraction < 0.0 || payment_fraction > 1.0) {
    return fail("payment_fraction must be in [0, 1]");
  }
  if (zipf_theta < 0.0) return fail("zipf_theta must be >= 0");
  return true;
}

TpccRandom::TpccRandom(const TpccConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      customer_zipf_(cfg.customers_per_district, cfg.zipf_theta, seed * 2 + 1),
      item_zipf_(cfg.items, cfg.zipf_theta, seed * 2 + 2),
      rng_(seed) {}

bool TpccRandom::is_payment() {
  return rng_.next_double() < cfg_.payment_fraction;
}

std::uint32_t TpccRandom::warehouse() {
  return static_cast<std::uint32_t>(rng_.next_below(cfg_.warehouses));
}

std::uint32_t TpccRandom::district() {
  return static_cast<std::uint32_t>(
      rng_.next_below(cfg_.districts_per_warehouse));
}

std::uint32_t TpccRandom::customer() {
  return static_cast<std::uint32_t>(customer_zipf_.next());
}

std::uint32_t TpccRandom::item() {
  return static_cast<std::uint32_t>(item_zipf_.next());
}

std::uint32_t TpccRandom::order_lines() {
  // TPC-C draws 5..15 lines; scale to [1, max_order_lines].
  return 1 + static_cast<std::uint32_t>(rng_.next_below(cfg_.max_order_lines));
}

std::uint64_t TpccRandom::amount() { return 1 + rng_.next_below(5000); }

}  // namespace sv::dbx::tpcc
