// TPC-C-lite: a new-order/payment transaction mix over ONE ordered map,
// executed entirely through sv::txn (txn/txn.h). This is the multi-key
// read-modify-write workload the YCSB mix cannot produce: every payment is
// a 3-key RMW chain and every new-order a district-sequence increment plus
// per-item stock decrements plus fresh order-row inserts, with TPC-C's
// realistic skew (hot warehouses/districts via a Zipfian chooser, the
// district next-order-id as the classic hot key).
//
// "Lite" relative to TPC-C proper: one table (a single u64 -> u64 map with
// the table id packed into the key's top bits), scaled-down cardinalities,
// no delivery/order-status/stock-level transactions, and amounts in integer
// cents. What it keeps is exactly what exercises the transaction layer:
// cross-key atomicity (conserved balances), per-district order-id sequences
// (no gaps, no duplicates), and read-modify-write under contention.
//
// Invariants checked by check_invariants() after a run quiesces:
//   1. Conservation: payment moves amount into w_ytd and d_ytd and takes
//      2*amount out of the customer balance, so the u64 sum over all
//      {w_ytd, d_ytd, customer-balance} keys is constant (mod 2^64).
//   2. Sequences: each district's next_o_id equals its initial value plus
//      the number of committed new-orders for that district, and every oid
//      below it has a matching order row with its order-line rows.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "txn/txn.h"

namespace sv::dbx::tpcc {

// Which logical TPC-C table a packed key belongs to (top byte of the key).
enum class Table : std::uint8_t {
  kWarehouseYtd = 1,    // (w)       warehouse year-to-date total
  kDistrictYtd = 2,     // (w, d)    district year-to-date total
  kDistrictNextOid = 3, // (w, d)    next order id -- the classic hot key
  kCustomerBalance = 4, // (w, d, c) customer balance
  kStock = 5,           // (w, item) stock quantity
  kOrder = 6,           // (w, d, oid)      order row (value = line count)
  kOrderLine = 7,       // (w, d, oid, ln)  order line (value = item|qty)
};

// Key codec: [63:56] table, [55:40] warehouse, [39:32] district,
// [31:0] slot (customer, item, or order id). Implemented in tpcc.cc.
std::uint64_t make_key(Table t, std::uint32_t warehouse,
                       std::uint32_t district, std::uint32_t slot) noexcept;

struct KeyParts {
  Table table;
  std::uint32_t warehouse;
  std::uint32_t district;
  std::uint32_t slot;
};
KeyParts split_key(std::uint64_t key) noexcept;

// Order-line keys pack (oid, line) into the 32-bit slot; the line count is
// bounded by TpccConfig::max_order_lines.
std::uint32_t order_line_slot(std::uint32_t oid, std::uint32_t line) noexcept;

struct TpccConfig {
  std::uint32_t warehouses = 4;
  std::uint32_t districts_per_warehouse = 10;
  std::uint32_t customers_per_district = 96;   // TPC-C: 3000
  std::uint32_t items = 1024;                  // TPC-C: 100000
  std::uint32_t max_order_lines = 8;           // TPC-C: 5..15
  double payment_fraction = 0.5;               // rest are new-orders
  double zipf_theta = 0.8;                     // customer/item skew
  std::uint64_t initial_balance = 100'000;     // cents
  std::uint64_t initial_stock = 100'000;
  std::uint32_t initial_next_oid = 1;

  // False (with a reason in *err) when a field is out of the codec's or
  // the invariant checker's range.
  bool validate(std::string* err = nullptr) const;
};

// Per-thread input generator (TPC-C's NURand stands in for nothing fancier
// here: uniform warehouse/district -- contention comes from the small
// counts -- and Zipfian customers/items for hot rows).
class TpccRandom {
 public:
  TpccRandom(const TpccConfig& cfg, std::uint64_t seed);

  bool is_payment();
  std::uint32_t warehouse();
  std::uint32_t district();
  std::uint32_t customer();
  std::uint32_t item();
  std::uint32_t order_lines();
  std::uint64_t amount();  // 1..5000 cents

 private:
  TpccConfig cfg_;
  ZipfGenerator customer_zipf_;
  ZipfGenerator item_zipf_;
  Xoshiro256 rng_;
};

struct TpccStats {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t payments = 0;    // committed
  std::uint64_t new_orders = 0;  // committed

  TpccStats& operator+=(const TpccStats& o) {
    commits += o.commits;
    aborts += o.aborts;
    payments += o.payments;
    new_orders += o.new_orders;
    return *this;
  }
  double abort_rate() const {
    const double total = static_cast<double>(commits + aborts);
    return total == 0 ? 0.0 : static_cast<double>(aborts) / total;
  }
};

// The database: owns nothing but a reference to the map and the committed
// per-district order counts the invariant checker compares against.
template <class Map>
class TpccLite {
 public:
  TpccLite(const TpccConfig& cfg, Map& map)
      : cfg_(cfg),
        map_(&map),
        committed_orders_(cfg.warehouses * cfg.districts_per_warehouse) {
    std::string err;
    if (!cfg.validate(&err)) throw std::invalid_argument("TpccConfig: " + err);
  }

  const TpccConfig& config() const noexcept { return cfg_; }

  // Quiescent initial load (single-threaded).
  void load() {
    for (std::uint32_t w = 0; w < cfg_.warehouses; ++w) {
      map_->insert(make_key(Table::kWarehouseYtd, w, 0, 0), 0);
      for (std::uint32_t d = 0; d < cfg_.districts_per_warehouse; ++d) {
        map_->insert(make_key(Table::kDistrictYtd, w, d, 0), 0);
        map_->insert(make_key(Table::kDistrictNextOid, w, d, 0),
                     cfg_.initial_next_oid);
        for (std::uint32_t c = 0; c < cfg_.customers_per_district; ++c) {
          map_->insert(make_key(Table::kCustomerBalance, w, d, c),
                       cfg_.initial_balance);
        }
      }
      for (std::uint32_t i = 0; i < cfg_.items; ++i) {
        map_->insert(make_key(Table::kStock, w, 0, i), cfg_.initial_stock);
      }
    }
  }

  // Payment(w, d, c, amount): 3-key RMW. The +amount/+amount/-2*amount
  // split keeps the monitored key-sum constant mod 2^64 (invariant 1).
  // Runs to completion; every conflicted attempt counts one abort.
  void payment(std::uint32_t w, std::uint32_t d, std::uint32_t c,
               std::uint64_t amount, TpccStats* st) {
    const std::uint64_t wk = make_key(Table::kWarehouseYtd, w, 0, 0);
    const std::uint64_t dk = make_key(Table::kDistrictYtd, w, d, 0);
    const std::uint64_t ck = make_key(Table::kCustomerBalance, w, d, c);
    run_to_completion(st, [&](txn::Txn<Map>& t) {
      const auto wy = t.get(wk);
      const auto dy = t.get(dk);
      const auto cb = t.get(ck);
      if (!wy || !dy || !cb) return false;  // load bug: surface as user abort
      t.put(wk, *wy + amount);
      t.put(dk, *dy + amount);
      t.put(ck, *cb - 2 * amount);
      return true;
    });
    ++st->payments;
  }

  // NewOrder(w, d, items): increment the district sequence, decrement each
  // item's stock (TPC-C's +91 refill below the reorder margin), insert the
  // order row and its lines. Repeated items in one order are fine: Txn's
  // read-your-writes chains the RMWs.
  void new_order(std::uint32_t w, std::uint32_t d,
                 const std::uint32_t* items, const std::uint32_t* qtys,
                 std::uint32_t n_lines, TpccStats* st) {
    const std::uint64_t dk = make_key(Table::kDistrictNextOid, w, d, 0);
    run_to_completion(st, [&](txn::Txn<Map>& t) {
      const auto oid = t.get(dk);
      if (!oid) return false;
      t.put(dk, *oid + 1);
      for (std::uint32_t j = 0; j < n_lines; ++j) {
        const std::uint64_t sk = make_key(Table::kStock, w, 0, items[j]);
        const auto s = t.get(sk);
        if (!s) return false;
        const std::uint64_t q = qtys[j];
        t.put(sk, *s >= q + 10 ? *s - q : *s + 91 - q);
        t.put(make_key(Table::kOrderLine, w, d,
                       order_line_slot(static_cast<std::uint32_t>(*oid), j)),
              (static_cast<std::uint64_t>(items[j]) << 32) | q);
      }
      t.put(make_key(Table::kOrder, w, d, static_cast<std::uint32_t>(*oid)),
            n_lines);
      return true;
    });
    committed_orders_[w * cfg_.districts_per_warehouse + d].fetch_add(
        1, std::memory_order_relaxed);
    ++st->new_orders;
  }

  // One generated transaction, run to committed completion.
  void run_one(TpccRandom& rnd, TpccStats* st) {
    const std::uint32_t w = rnd.warehouse();
    const std::uint32_t d = rnd.district();
    if (rnd.is_payment()) {
      payment(w, d, rnd.customer(), rnd.amount(), st);
      return;
    }
    std::uint32_t items[64];
    std::uint32_t qtys[64];
    const std::uint32_t n = rnd.order_lines();
    for (std::uint32_t j = 0; j < n; ++j) {
      items[j] = rnd.item();
      qtys[j] = 1 + (j % 10);
    }
    new_order(w, d, items, qtys, n, st);
  }

  // Quiescent. Checks conservation and the per-district order sequences;
  // false with a description in *err on the first violation.
  bool check_invariants(std::string* err = nullptr) const {
    auto fail = [&](const std::string& what) {
      if (err != nullptr) *err = what;
      return false;
    };
    // 1. Conservation (mod 2^64).
    const std::uint64_t customers = std::uint64_t{cfg_.warehouses} *
                                    cfg_.districts_per_warehouse *
                                    cfg_.customers_per_district;
    std::uint64_t expect = customers * cfg_.initial_balance;
    std::uint64_t sum = 0;
    for (std::uint32_t w = 0; w < cfg_.warehouses; ++w) {
      sum += read_or_zero(make_key(Table::kWarehouseYtd, w, 0, 0));
      for (std::uint32_t d = 0; d < cfg_.districts_per_warehouse; ++d) {
        sum += read_or_zero(make_key(Table::kDistrictYtd, w, d, 0));
        for (std::uint32_t c = 0; c < cfg_.customers_per_district; ++c) {
          sum += read_or_zero(make_key(Table::kCustomerBalance, w, d, c));
        }
      }
    }
    if (sum != expect) {
      return fail("balance sum " + std::to_string(sum) + " != initial " +
                  std::to_string(expect));
    }
    // 2. Order-id sequences and order rows.
    for (std::uint32_t w = 0; w < cfg_.warehouses; ++w) {
      for (std::uint32_t d = 0; d < cfg_.districts_per_warehouse; ++d) {
        const std::uint64_t next =
            read_or_zero(make_key(Table::kDistrictNextOid, w, d, 0));
        const std::uint64_t committed =
            committed_orders_[w * cfg_.districts_per_warehouse + d].load(
                std::memory_order_relaxed);
        if (next != cfg_.initial_next_oid + committed) {
          return fail("district (" + std::to_string(w) + "," +
                      std::to_string(d) + ") next_oid " +
                      std::to_string(next) + " != initial+" +
                      std::to_string(committed));
        }
        for (std::uint64_t oid = cfg_.initial_next_oid; oid < next; ++oid) {
          const auto lines = map_->lookup(make_key(
              Table::kOrder, w, d, static_cast<std::uint32_t>(oid)));
          if (!lines) {
            return fail("missing order row oid=" + std::to_string(oid));
          }
          for (std::uint32_t j = 0; j < *lines; ++j) {
            if (!map_->lookup(make_key(
                    Table::kOrderLine, w, d,
                    order_line_slot(static_cast<std::uint32_t>(oid), j)))) {
              return fail("missing order line oid=" + std::to_string(oid) +
                          " ln=" + std::to_string(j));
            }
          }
        }
      }
    }
    return true;
  }

 private:
  std::uint64_t read_or_zero(std::uint64_t key) const {
    const auto v = map_->lookup(key);
    return v ? *v : 0;
  }

  template <class Body>
  void run_to_completion(TpccStats* st, Body&& body) {
    sync::Backoff backoff;
    for (;;) {
      txn::Txn<Map> t(*map_);
      if (!body(t)) {
        t.abort();
        return;  // unloaded key: config error surfaced by check_invariants
      }
      if (t.commit() == txn::TxnResult::kCommitted) {
        ++st->commits;
        return;
      }
      ++st->aborts;
      backoff.pause();
    }
  }

  TpccConfig cfg_;
  Map* map_;
  // Committed new-orders per (warehouse, district): ground truth for the
  // sequence invariant. Mutable counters, structurally immutable vector.
  mutable std::vector<std::atomic<std::uint64_t>> committed_orders_;
};

}  // namespace sv::dbx::tpcc
