#include "dbx/txn.h"

namespace sv::dbx {

std::string TxnStats::to_string() const {
  return "commits=" + std::to_string(commits) +
         " aborts=" + std::to_string(aborts) +
         " abort_rate=" + std::to_string(abort_rate()) +
         " index_misses=" + std::to_string(index_misses);
}

}  // namespace sv::dbx
