// NO_WAIT two-phase-locking transaction execution over a Table plus an
// ordered index under test. This is the experiment-relevant core of DBx1000
// (single table, primary index, YCSB transactions): the index accelerates
// key -> row lookups; row latches provide isolation; a failed latch probe
// aborts and retries the whole transaction.
#pragma once

#include <cstdint>
#include <string>
#include <thread>

#include "dbx/row.h"
#include "dbx/ycsb.h"

namespace sv::dbx {

struct TxnStats {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t index_misses = 0;  // should stay 0: all keys are loaded

  TxnStats& operator+=(const TxnStats& o) {
    commits += o.commits;
    aborts += o.aborts;
    index_misses += o.index_misses;
    return *this;
  }
  double abort_rate() const {
    const double total = static_cast<double>(commits + aborts);
    return total == 0 ? 0.0 : static_cast<double>(aborts) / total;
  }
  std::string to_string() const;
};

// Index concept: std::optional<Row*> lookup(std::uint64_t key); for scan
// workloads additionally
// std::size_t range_for_each(std::uint64_t lo, std::uint64_t hi, Fn).
//
// Executes one YCSB transaction with NO_WAIT 2PL. Point reads take shared
// latches and sum the row's columns (forcing real row access); writes take
// exclusive latches and bump every column. Scan accesses (YCSB-E style)
// ride the index's linearizable range query and read each row under a
// briefly held shared latch (read-committed scans, released early -- the
// common configuration for YCSB-E). Returns false on abort (caller retries
// with the same request, as DBx1000 does).
template <class Index>
bool execute_txn(Index& index, const TxnRequest& req, TxnStats* stats) {
  Row* rows[32];
  auto release_points = [&](std::uint32_t upto) {
    for (std::uint32_t j = 0; j < upto; ++j) {
      if (rows[j] == nullptr || req.accesses[j].scan_length > 0) continue;
      if (req.accesses[j].is_write) {
        rows[j]->latch.unlock_exclusive();
      } else {
        rows[j]->latch.unlock_shared();
      }
    }
  };
  // Scans run first, before any point latch is taken: a scan over a row
  // this same transaction will write must not self-conflict (NO_WAIT would
  // retry the identical conflict forever), and a scan conflict must abort
  // with no effects applied.
  std::uint64_t checksum = 0;
  for (std::uint32_t i = 0; i < req.count; ++i) {
    const Access& a = req.accesses[i];
    if (a.scan_length == 0) continue;
    bool scan_conflict = false;
    if constexpr (requires {
                    index.range_for_each(a.key, a.key,
                                         [](std::uint64_t, Row*) {});
                  }) {
      index.range_for_each(a.key, a.key + a.scan_length - 1,
                           [&](std::uint64_t, Row* row) {
                             if (scan_conflict) return;
                             if (!row->latch.try_lock_shared()) {
                               scan_conflict = true;
                               return;
                             }
                             for (auto c : row->cols) checksum += c;
                             row->latch.unlock_shared();
                           });
    }
    if (scan_conflict) {
      ++stats->aborts;
      return false;
    }
  }
  // Growing phase: resolve point accesses via the index and latch in
  // declared order.
  for (std::uint32_t i = 0; i < req.count; ++i) {
    rows[i] = nullptr;
    if (req.accesses[i].scan_length > 0) continue;
    auto found = index.lookup(req.accesses[i].key);
    if (!found) {
      ++stats->index_misses;
      continue;
    }
    Row* row = *found;
    const bool ok = req.accesses[i].is_write ? row->latch.try_lock_exclusive()
                                             : row->latch.try_lock_shared();
    if (!ok) {
      release_points(i);  // NO_WAIT: abort
      ++stats->aborts;
      return false;
    }
    rows[i] = row;
  }
  // Execute + shrinking phase for point accesses.
  for (std::uint32_t i = 0; i < req.count; ++i) {
    Row* row = rows[i];
    if (row == nullptr) continue;
    if (req.accesses[i].is_write) {
      for (auto& c : row->cols) ++c;
      row->latch.unlock_exclusive();
    } else {
      for (auto c : row->cols) checksum += c;
      row->latch.unlock_shared();
    }
  }
  // Defeat dead-code elimination of the read path.
  volatile std::uint64_t sink = checksum;
  (void)sink;
  ++stats->commits;
  return true;
}

// Runs one request to completion (retrying aborts), as the paper's fixed
// 100K-transactions-per-thread methodology requires. Aborts back off
// exponentially and eventually yield: under NO_WAIT, hammering a latch
// whose holder has been descheduled (common on oversubscribed machines)
// only manufactures more aborts.
template <class Index>
void run_txn_to_completion(Index& index, const TxnRequest& req,
                           TxnStats* stats) {
  std::uint32_t spins = 4;
  while (!execute_txn(index, req, stats)) {
    for (std::uint32_t i = 0; i < spins; ++i) cpu_relax();
    if (spins < 4096) {
      spins <<= 1;
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace sv::dbx
