// YCSB transaction execution over an ordered index under test.
//
// Two engines live here:
//
//   - execute_txn_sv / run_txn_sv_to_completion: the primary engine. The
//     row payload lives IN the map (key -> 64-bit column word) and every
//     transaction runs through the shared sv::txn layer (txn/txn.h): reads
//     are optimistic and commit-validated, writes are buffered
//     read-modify-write intents, and the commit takes chunk-granularity
//     NO_WAIT 2PL locks through the same lock manager apply_batch uses.
//     This is DBx1000's YCSB shape re-based on the map's own concurrency
//     control -- no private row latches, one code path with the rest of
//     the repo (fig9_txn, tpcc.h, txn_test).
//
//   - execute_txn / run_txn_to_completion: the legacy row-latch engine the
//     paper's Fig. 6 experiment measures (index lookups into Row* plus
//     per-row NO_WAIT latches, DBx1000's design). It is kept because Fig. 6
//     compares index structures under an IDENTICAL external concurrency
//     control; its row buffer is now compile-time bounded by
//     TxnRequest::kMaxAccesses.
#pragma once

#include <cstdint>
#include <string>
#include <thread>

#include "dbx/row.h"
#include "dbx/ycsb.h"
#include "txn/txn.h"

namespace sv::dbx {

struct TxnStats {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t index_misses = 0;  // should stay 0: all keys are loaded

  TxnStats& operator+=(const TxnStats& o) {
    commits += o.commits;
    aborts += o.aborts;
    index_misses += o.index_misses;
    return *this;
  }
  double abort_rate() const {
    const double total = static_cast<double>(commits + aborts);
    return total == 0 ? 0.0 : static_cast<double>(aborts) / total;
  }
  std::string to_string() const;
};

// ---- Primary engine: YCSB-T over sv::txn -----------------------------------

// Executes one YCSB transaction through sv::txn against a map whose values
// ARE the row payload (Map: key -> uint64 column word). Reads sum the
// observed word; writes are read-modify-write increments (so lost updates
// are detectable: under serializable commits the final word equals the
// number of committed increments). Scan accesses ride the map's
// linearizable range query read-committed, like YCSB-E. Returns false on a
// commit conflict (caller re-executes, as DBx1000 does).
template <class Map>
bool execute_txn_sv(Map& map, const TxnRequest& req, TxnStats* stats) {
  static_assert(TxnRequest::kMaxAccesses ==
                std::tuple_size_v<decltype(req.accesses)>);
  txn::Txn<Map> t(map);
  std::uint64_t checksum = 0;
  for (std::uint32_t i = 0; i < req.count && i < TxnRequest::kMaxAccesses;
       ++i) {
    const Access& a = req.accesses[i];
    if (a.scan_length > 0) {
      t.scan(a.key, a.key + a.scan_length - 1,
             [&](std::uint64_t, std::uint64_t v) { checksum += v; });
      continue;
    }
    const auto v = t.get(a.key);
    if (!v) {
      ++stats->index_misses;
      continue;
    }
    if (a.is_write) {
      t.put(a.key, *v + 1);
    } else {
      checksum += *v;
    }
  }
  // Defeat dead-code elimination of the read path.
  volatile std::uint64_t sink = checksum;
  (void)sink;
  if (t.commit() == txn::TxnResult::kCommitted) {
    ++stats->commits;
    return true;
  }
  ++stats->aborts;
  return false;
}

// ---- Legacy engine: row latches (Fig. 6) -----------------------------------

// Index concept: std::optional<Row*> lookup(std::uint64_t key); for scan
// workloads additionally
// std::size_t range_for_each(std::uint64_t lo, std::uint64_t hi, Fn).
//
// Executes one YCSB transaction with NO_WAIT 2PL over per-row latches.
// Point reads take shared latches and sum the row's columns (forcing real
// row access); writes take exclusive latches and bump every column. Scan
// accesses (YCSB-E style) ride the index's linearizable range query and
// read each row under a briefly held shared latch (read-committed scans,
// released early -- the common configuration for YCSB-E). Returns false on
// abort (caller retries with the same request, as DBx1000 does).
template <class Index>
bool execute_txn(Index& index, const TxnRequest& req, TxnStats* stats) {
  // Sized from the request type: a generated transaction can never exceed
  // the row buffer (the generator clamps to the same constant).
  Row* rows[TxnRequest::kMaxAccesses];
  static_assert(TxnRequest::kMaxAccesses ==
                std::tuple_size_v<decltype(req.accesses)>);
  auto release_points = [&](std::uint32_t upto) {
    for (std::uint32_t j = 0; j < upto; ++j) {
      if (rows[j] == nullptr || req.accesses[j].scan_length > 0) continue;
      if (req.accesses[j].is_write) {
        rows[j]->latch.unlock_exclusive();
      } else {
        rows[j]->latch.unlock_shared();
      }
    }
  };
  // Scans run first, before any point latch is taken: a scan over a row
  // this same transaction will write must not self-conflict (NO_WAIT would
  // retry the identical conflict forever), and a scan conflict must abort
  // with no effects applied.
  std::uint64_t checksum = 0;
  for (std::uint32_t i = 0; i < req.count; ++i) {
    const Access& a = req.accesses[i];
    if (a.scan_length == 0) continue;
    bool scan_conflict = false;
    if constexpr (requires {
                    index.range_for_each(a.key, a.key,
                                         [](std::uint64_t, Row*) {});
                  }) {
      index.range_for_each(a.key, a.key + a.scan_length - 1,
                           [&](std::uint64_t, Row* row) {
                             if (scan_conflict) return;
                             if (!row->latch.try_lock_shared()) {
                               scan_conflict = true;
                               return;
                             }
                             for (auto c : row->cols) checksum += c;
                             row->latch.unlock_shared();
                           });
    }
    if (scan_conflict) {
      ++stats->aborts;
      return false;
    }
  }
  // Growing phase: resolve point accesses via the index and latch in
  // declared order.
  for (std::uint32_t i = 0; i < req.count && i < TxnRequest::kMaxAccesses;
       ++i) {
    rows[i] = nullptr;
    if (req.accesses[i].scan_length > 0) continue;
    auto found = index.lookup(req.accesses[i].key);
    if (!found) {
      ++stats->index_misses;
      continue;
    }
    Row* row = *found;
    const bool ok = req.accesses[i].is_write ? row->latch.try_lock_exclusive()
                                             : row->latch.try_lock_shared();
    if (!ok) {
      release_points(i);  // NO_WAIT: abort
      ++stats->aborts;
      return false;
    }
    rows[i] = row;
  }
  // Execute + shrinking phase for point accesses.
  for (std::uint32_t i = 0; i < req.count && i < TxnRequest::kMaxAccesses;
       ++i) {
    Row* row = rows[i];
    if (row == nullptr) continue;
    if (req.accesses[i].is_write) {
      for (auto& c : row->cols) ++c;
      row->latch.unlock_exclusive();
    } else {
      for (auto c : row->cols) checksum += c;
      row->latch.unlock_shared();
    }
  }
  // Defeat dead-code elimination of the read path.
  volatile std::uint64_t sink = checksum;
  (void)sink;
  ++stats->commits;
  return true;
}

namespace detail {

// Shared abort backoff: spin exponentially, then yield -- under NO_WAIT,
// hammering a lock whose holder has been descheduled (common on
// oversubscribed machines) only manufactures more aborts.
class AbortBackoff {
 public:
  void pause() {
    for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
    if (spins_ < 4096) {
      spins_ <<= 1;
    } else {
      std::this_thread::yield();
    }
  }

 private:
  std::uint32_t spins_ = 4;
};

}  // namespace detail

// Runs one request to completion (retrying aborts), as the paper's fixed
// 100K-transactions-per-thread methodology requires.
template <class Index>
void run_txn_to_completion(Index& index, const TxnRequest& req,
                           TxnStats* stats) {
  detail::AbortBackoff backoff;
  while (!execute_txn(index, req, stats)) backoff.pause();
}

// Same, for the sv::txn engine.
template <class Map>
void run_txn_sv_to_completion(Map& map, const TxnRequest& req,
                              TxnStats* stats) {
  detail::AbortBackoff backoff;
  while (!execute_txn_sv(map, req, stats)) backoff.pause();
}

}  // namespace sv::dbx
