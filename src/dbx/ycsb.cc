#include "dbx/ycsb.h"

#include <algorithm>

namespace sv::dbx {

YcsbGenerator::YcsbGenerator(const YcsbConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), zipf_(cfg.table_rows, cfg.zipf_theta, seed), rng_(seed ^ 0xDB) {}

void YcsbGenerator::next(TxnRequest* req) {
  const std::uint32_t want =
      std::min<std::uint32_t>(cfg_.accesses_per_txn,
                              static_cast<std::uint32_t>(req->accesses.size()));
  std::uint32_t n = 0;
  while (n < want) {
    const std::uint64_t key = zipf_.next();
    bool dup = false;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (req->accesses[i].key == key) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    if (cfg_.scan_fraction > 0 && rng_.next_double() < cfg_.scan_fraction) {
      req->accesses[n++] = Access{key, /*is_write=*/false, cfg_.scan_length};
      continue;
    }
    const bool write = rng_.next_double() >= cfg_.read_fraction;
    req->accesses[n++] = Access{key, write, 0};
  }
  // Sort accesses by key: DBx1000's NO_WAIT variant does not, but ordered
  // acquisition slashes spurious aborts without changing the experiment's
  // shape (the index lookups we are measuring are identical).
  std::sort(req->accesses.begin(), req->accesses.begin() + n,
            [](const Access& a, const Access& b) { return a.key < b.key; });
  req->count = n;
}

}  // namespace sv::dbx
