// YCSB-style workload generation for the OLTP engine, mirroring the paper's
// Fig. 6 setup: each transaction touches kAccessesPerTxn rows, 90 % of
// accesses are reads, and keys follow a Zipfian distribution with
// configurable theta.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"

namespace sv::dbx {

struct YcsbConfig {
  std::uint64_t table_rows = 1 << 20;
  double zipf_theta = 0.6;
  double read_fraction = 0.9;
  std::uint32_t accesses_per_txn = 16;
  // YCSB-E-style scans: fraction of *accesses* that are range scans of
  // `scan_length` consecutive keys (0 = pure point workload, Fig. 6).
  double scan_fraction = 0.0;
  std::uint32_t scan_length = 100;
};

struct Access {
  std::uint64_t key;
  bool is_write;
  std::uint32_t scan_length = 0;  // > 0: range scan starting at key
};

struct TxnRequest {
  // Hard upper bound on accesses per transaction: execution engines size
  // their stack row buffers from this, and the generator clamps to it, so
  // an oversized configured accesses_per_txn can never overflow a buffer.
  static constexpr std::uint32_t kMaxAccesses = 32;

  std::array<Access, kMaxAccesses> accesses;  // first `count` entries valid
  std::uint32_t count = 0;
};

// Per-thread request generator (each thread owns one, seeded distinctly).
class YcsbGenerator {
 public:
  YcsbGenerator(const YcsbConfig& cfg, std::uint64_t seed);

  // Fills *req with a fresh transaction. Duplicate keys inside one
  // transaction are removed (DBx1000 does the same) so NO_WAIT locking
  // never self-deadlocks on a repeated row.
  void next(TxnRequest* req);

  const YcsbConfig& config() const noexcept { return cfg_; }

 private:
  YcsbConfig cfg_;
  ZipfGenerator zipf_;
  Xoshiro256 rng_;
};

}  // namespace sv::dbx
