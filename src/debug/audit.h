// Structured violation reporting for SkipVectorMap::validate_structure():
// instead of asserting (or stopping at the first problem like the legacy
// bool validate()), the auditor walks the whole quiesced structure and
// collects every invariant violation it finds, each tagged with a machine-
// checkable code. Tests assert on codes; humans read to_string().
//
// These are plain value types with no dependency on the map or on the
// fault-injection layer; they exist in every build flavor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sv::debug {

// One code per structural invariant of DESIGN.md §4 / paper §IV-C.
enum class AuditCode : std::uint8_t {
  kLockedWhileQuiescent,   // lock or frozen bit set with no writers running
  kHeadOrphan,             // a layer head carries the orphan flag
  kEmptyNonOrphan,         // empty non-head chunk without the orphan flag
  kOverCapacity,           // chunk occupancy exceeds its capacity (2T)
  kChunkKeyOrder,          // max < min within a chunk (torn bookkeeping)
  kDuplicateKeys,          // duplicate keys within one chunk
  kInterChunkOrder,        // left sibling's max >= right sibling's min
  kDanglingDown,           // index entry points at a node not linked below
  kEntryChildMismatch,     // index entry key != child's minimum key
  kOrphanWithParent,       // orphan-flagged node has a parent entry
  kParentCountWrong,       // non-orphan non-head node has != 1 parent entry
  kHeadHasParent,          // a layer head has a parent entry
  kHeadDownMismatch,       // head_down doesn't point at the head one layer down
  kIndexKeyMissingBelow,   // index key has no matching minimum in child
};

inline const char* audit_code_name(AuditCode c) noexcept {
  switch (c) {
    case AuditCode::kLockedWhileQuiescent: return "locked-while-quiescent";
    case AuditCode::kHeadOrphan: return "head-orphan";
    case AuditCode::kEmptyNonOrphan: return "empty-non-orphan";
    case AuditCode::kOverCapacity: return "over-capacity";
    case AuditCode::kChunkKeyOrder: return "chunk-key-order";
    case AuditCode::kDuplicateKeys: return "duplicate-keys";
    case AuditCode::kInterChunkOrder: return "inter-chunk-order";
    case AuditCode::kDanglingDown: return "dangling-down";
    case AuditCode::kEntryChildMismatch: return "entry-child-mismatch";
    case AuditCode::kOrphanWithParent: return "orphan-with-parent";
    case AuditCode::kParentCountWrong: return "parent-count-wrong";
    case AuditCode::kHeadHasParent: return "head-has-parent";
    case AuditCode::kHeadDownMismatch: return "head-down-mismatch";
    case AuditCode::kIndexKeyMissingBelow: return "index-key-missing-below";
    default: return "?";
  }
}

struct AuditViolation {
  AuditCode code;
  std::uint32_t layer = 0;  // layer of the node the finding anchors to
  std::string detail;       // human-readable specifics (keys, counts)

  std::string to_string() const {
    std::string s = audit_code_name(code);
    s += " @layer" + std::to_string(layer);
    if (!detail.empty()) s += ": " + detail;
    return s;
  }
};

struct AuditReport {
  std::vector<AuditViolation> violations;
  // Coverage counters, so "clean" is distinguishable from "didn't look".
  std::size_t nodes_checked = 0;
  std::size_t entries_checked = 0;
  bool truncated = false;  // hit the violation cap; more may exist

  bool ok() const noexcept { return violations.empty(); }

  bool has(AuditCode c) const noexcept {
    for (const auto& v : violations) {
      if (v.code == c) return true;
    }
    return false;
  }

  std::size_t count(AuditCode c) const noexcept {
    std::size_t n = 0;
    for (const auto& v : violations) n += (v.code == c) ? 1 : 0;
    return n;
  }

  std::string to_string() const {
    if (ok()) {
      return "audit ok (" + std::to_string(nodes_checked) + " nodes, " +
             std::to_string(entries_checked) + " entries)";
    }
    std::string s = "audit FAILED (" + std::to_string(violations.size()) +
                    (truncated ? "+" : "") + " violations over " +
                    std::to_string(nodes_checked) + " nodes)";
    for (const auto& v : violations) s += "\n  " + v.to_string();
    return s;
  }
};

}  // namespace sv::debug
