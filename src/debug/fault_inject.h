// Deterministic fault-injection hooks for the skip vector's rare structural
// transitions (split, merge, steal-above, freeze, thaw, checkpoint resume,
// retire). Random torture runs hit these paths unreliably; the hooks let a
// test (or a seeded schedule sweep) force a specific interleaving and replay
// it exactly. See docs/FAULT_INJECTION.md for the schedule format and the
// replay workflow.
//
// The layer is compiled out unless SV_FAULT_INJECTION is defined non-zero
// (tests/ and tools/ build with it; bench/ and examples/ do not), so release
// binaries carry no counters, branches, or singleton.
//
// Determinism model: every injection point keeps a per-point hit counter,
// and the decision for hit #i of point P is a pure function of
// (schedule seed, P, i). The i-th hit of a point therefore always receives
// the same decision, independent of thread interleaving; a single-threaded
// replay of a schedule is bit-for-bit reproducible.
#pragma once

#include <cstdint>

namespace sv::debug {

// Named injection points. Order is part of the schedule format (names below)
// -- append only.
enum class Point : std::uint8_t {
  kSplit = 0,       // insert_at_top: orphan sibling built, about to publish
  kTowerSplit,      // insert_write_phase: per-layer split node about to publish
  kMerge,           // traverse_right: both write locks held, about to merge
  kStealAbove,      // insert_write_phase: index-layer suffix steal
  kFreeze,          // try_insert: before tryFreeze (fail-injectable)
  kThaw,            // thaw_all: node still frozen, about to thaw
  kResume,          // try_insert: resuming descent from a frozen checkpoint
  kRetire,          // reclaimer: node handed to deferred reclamation
  // Mutation points: firing one of these does not merely perturb timing, it
  // INTRODUCES a seeded ordering bug at the site (skip a correctness-
  // critical step). They exist so the linearizability checker can be
  // mutation-tested -- proving it rejects histories of a broken map, not
  // just that a correct map passes. Global pyield/pfail never trigger them;
  // only explicit rules or per-point probabilities do (see decide()).
  kMutDropMerge,    // traverse_right: merge unlinks the orphan but DROPS its
                    // elements (lost keys)
  kMutSkipFreeze,   // try_insert: data-layer freeze skipped; the write phase
                    // runs without exclusive reservation (racing writers)
  kMutEarlyRelease, // try_remove: seqlock released BEFORE the erase; readers
                    // can validate against a torn chunk
  // Appended after the mutation block to keep existing numbering stable
  // (the enum is append-only; is_mutation_point is an explicit list, so
  // position does not matter).
  kBatchCommit,     // apply_batch: all chunk locks held, about to reserve the
                    // commit version and apply staged ops
  kVersionFold,     // split/merge: version chains about to be folded across
                    // the new chunk boundary (locks held)
  kCount
};

inline const char* point_name(Point p) noexcept {
  switch (p) {
    case Point::kSplit: return "split";
    case Point::kTowerSplit: return "tower-split";
    case Point::kMerge: return "merge";
    case Point::kStealAbove: return "steal-above";
    case Point::kFreeze: return "freeze";
    case Point::kThaw: return "thaw";
    case Point::kResume: return "resume";
    case Point::kRetire: return "retire";
    case Point::kMutDropMerge: return "mut-drop-merge";
    case Point::kMutSkipFreeze: return "mut-skip-freeze";
    case Point::kMutEarlyRelease: return "mut-early-release";
    case Point::kBatchCommit: return "batch-commit";
    case Point::kVersionFold: return "version-fold";
    default: return "?";
  }
}

// Mutation points deliberately break the algorithm when fired (see above);
// they must never fire from the blanket probabilistic knobs.
inline constexpr bool is_mutation_point(Point p) noexcept {
  return p == Point::kMutDropMerge || p == Point::kMutSkipFreeze ||
         p == Point::kMutEarlyRelease;
}

}  // namespace sv::debug

#if defined(SV_FAULT_INJECTION) && SV_FAULT_INJECTION

#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace sv::debug {

inline Point point_from_name(const std::string& name) {
  for (std::uint8_t i = 0; i < static_cast<std::uint8_t>(Point::kCount); ++i) {
    if (name == point_name(static_cast<Point>(i))) return static_cast<Point>(i);
  }
  throw std::invalid_argument("unknown injection point: " + name);
}

// What a schedule may do when a point is reached. kFail is honored only at
// fail-injectable points (today: freeze); elsewhere it degrades to a yield.
enum class Action : std::uint8_t { kYield, kDelay, kFail };

// A seeded, replayable injection schedule. Two layers:
//   - probabilistic: yield_prob / fail_prob applied at every hit, decided by
//     hash(seed, point, hit) -- deterministic per (point, hit);
//   - rules: "the i-th hit of point P takes action A" (1-based), for
//     pinpoint scenario tests.
struct Schedule {
  struct Rule {
    Point point = Point::kCount;
    std::uint64_t hit = 0;  // 1-based per-point hit index
    Action action = Action::kYield;
  };

  static constexpr std::size_t kPointCount =
      static_cast<std::size_t>(Point::kCount);

  std::uint64_t seed = 0;
  double yield_prob = 0.0;
  double fail_prob = 0.0;
  // Per-point overrides of the global probabilities; < 0 means unset. The
  // only way (besides explicit rules) to drive mutation points, which the
  // global probabilities deliberately skip.
  std::array<double, kPointCount> point_yield_prob = unset_probs();
  std::array<double, kPointCount> point_fail_prob = unset_probs();
  // Per-point spin-delay probability (no global counterpart: a blanket
  // delay sweep is just a slow run; a targeted one widens a specific race
  // window by orders of magnitude more than a yield).
  std::array<double, kPointCount> point_delay_prob = unset_probs();
  std::vector<Rule> rules;

  static std::array<double, kPointCount> unset_probs() {
    std::array<double, kPointCount> a;
    a.fill(-1.0);
    return a;
  }

  // Format (';' or ',' separated, whitespace-free):
  //   seed=N | pyield=F | pfail=F
  //   | pyield@<point>=F | pfail@<point>=F        (per-point probability)
  //   | pdelay@<point>=F                          (per-point spin delay)
  //   | <point>@<hit>=<yield|delay|fail>          (pinpoint rule, 1-based)
  // e.g. "seed=42;pyield=0.25;freeze@2=fail;pfail@mut-drop-merge=1"
  static Schedule parse(const std::string& spec) {
    Schedule s;
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t end = spec.find_first_of(";,", pos);
      if (end == std::string::npos) end = spec.size();
      const std::string tok = spec.substr(pos, end - pos);
      pos = end + 1;
      if (tok.empty()) continue;
      const std::size_t eq = tok.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("bad schedule token: " + tok);
      }
      const std::string key = tok.substr(0, eq);
      const std::string val = tok.substr(eq + 1);
      if (key == "seed") {
        s.seed = std::stoull(val);
      } else if (key == "pyield") {
        s.yield_prob = std::stod(val);
      } else if (key == "pfail") {
        s.fail_prob = std::stod(val);
      } else if (key.rfind("pyield@", 0) == 0 || key.rfind("pfail@", 0) == 0 ||
                 key.rfind("pdelay@", 0) == 0) {
        const Point p = point_from_name(key.substr(key.find('@') + 1));
        const double f = std::stod(val);
        if (f < 0 || f > 1) {
          throw std::invalid_argument("per-point probability out of [0, 1]: " +
                                      tok);
        }
        auto& probs = key[1] == 'y'
                          ? s.point_yield_prob
                          : (key[1] == 'f' ? s.point_fail_prob
                                           : s.point_delay_prob);
        probs[static_cast<std::size_t>(p)] = f;
      } else {
        const std::size_t at = key.find('@');
        if (at == std::string::npos) {
          throw std::invalid_argument("bad schedule token: " + tok);
        }
        Rule r;
        r.point = point_from_name(key.substr(0, at));
        r.hit = std::stoull(key.substr(at + 1));
        if (r.hit == 0) throw std::invalid_argument("rule hits are 1-based");
        if (val == "yield") {
          r.action = Action::kYield;
        } else if (val == "delay") {
          r.action = Action::kDelay;
        } else if (val == "fail") {
          r.action = Action::kFail;
        } else {
          throw std::invalid_argument("bad schedule action: " + val);
        }
        s.rules.push_back(r);
      }
    }
    if (s.yield_prob < 0 || s.yield_prob > 1 || s.fail_prob < 0 ||
        s.fail_prob > 1) {
      throw std::invalid_argument("schedule probabilities must be in [0, 1]");
    }
    return s;
  }

  std::string to_string() const {
    std::string out = "seed=" + std::to_string(seed);
    char buf[64];
    if (yield_prob > 0) {
      std::snprintf(buf, sizeof(buf), ";pyield=%g", yield_prob);
      out += buf;
    }
    if (fail_prob > 0) {
      std::snprintf(buf, sizeof(buf), ";pfail=%g", fail_prob);
      out += buf;
    }
    for (std::size_t i = 0; i < kPointCount; ++i) {
      if (point_yield_prob[i] >= 0) {
        std::snprintf(buf, sizeof(buf), ";pyield@%s=%g",
                      point_name(static_cast<Point>(i)), point_yield_prob[i]);
        out += buf;
      }
      if (point_fail_prob[i] >= 0) {
        std::snprintf(buf, sizeof(buf), ";pfail@%s=%g",
                      point_name(static_cast<Point>(i)), point_fail_prob[i]);
        out += buf;
      }
      if (point_delay_prob[i] >= 0) {
        std::snprintf(buf, sizeof(buf), ";pdelay@%s=%g",
                      point_name(static_cast<Point>(i)), point_delay_prob[i]);
        out += buf;
      }
    }
    for (const Rule& r : rules) {
      out += ';';
      out += point_name(r.point);
      out += '@' + std::to_string(r.hit) + '=';
      out += r.action == Action::kYield
                 ? "yield"
                 : (r.action == Action::kDelay ? "delay" : "fail");
    }
    return out;
  }
};

// Process-wide injection registry. Install/clear while the structures under
// test are quiesced; reached()/should_fail() are then safe from any thread.
class FaultInjector {
 public:
  static FaultInjector& instance() {
    static FaultInjector g;
    return g;
  }

  // Test-driven observers, invoked on every hit after schedule actions.
  // A blocking Handler is how scenario tests park a thread mid-transition.
  using Handler = std::function<void(Point, std::uint64_t hit)>;
  // FailHandler overrides the schedule's fail decision when set.
  using FailHandler = std::function<bool(Point, std::uint64_t hit)>;

  void install(Schedule s) {
    schedule_ = std::move(s);
    armed_.store(true, std::memory_order_release);
    reset_counters();
  }

  void set_handler(Handler h) {
    handler_ = std::move(h);
    armed_.store(true, std::memory_order_release);
  }
  void set_fail_handler(FailHandler h) {
    fail_handler_ = std::move(h);
    armed_.store(true, std::memory_order_release);
  }

  // Disarm everything and zero the counters.
  void clear() {
    armed_.store(false, std::memory_order_release);
    schedule_ = Schedule{};
    handler_ = nullptr;
    fail_handler_ = nullptr;
    reset_counters();
  }

  // Hook: a non-failable point was reached.
  void reached(Point p) {
    if (!armed_.load(std::memory_order_acquire)) return;
    const std::uint64_t hit = next_hit(p);
    switch (decide(p, hit, /*failable=*/false)) {
      case Decision::kNone:
        break;
      case Decision::kYield:
        fired(p).fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
        break;
      case Decision::kDelay:
        fired(p).fetch_add(1, std::memory_order_relaxed);
        spin_delay();
        break;
      case Decision::kFail:  // not failable here: degrade to yield
        fired(p).fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
        break;
    }
    if (handler_) handler_(p, hit);
  }

  // Hook: a fail-injectable point asks whether to abort this attempt.
  bool should_fail(Point p) {
    if (!armed_.load(std::memory_order_acquire)) return false;
    const std::uint64_t hit = next_hit(p);
    bool fail = decide(p, hit, /*failable=*/true) == Decision::kFail;
    if (fail_handler_) fail = fail_handler_(p, hit);
    if (fail) fired(p).fetch_add(1, std::memory_order_relaxed);
    if (handler_) handler_(p, hit);
    return fail;
  }

  std::uint64_t hits(Point p) const {
    return hits_[static_cast<std::size_t>(p)].load(std::memory_order_relaxed);
  }
  std::uint64_t fired_count(Point p) const {
    return fired_[static_cast<std::size_t>(p)].load(std::memory_order_relaxed);
  }

  std::array<std::uint64_t, static_cast<std::size_t>(Point::kCount)>
  hit_snapshot() const {
    std::array<std::uint64_t, static_cast<std::size_t>(Point::kCount)> a{};
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = hits_[i].load(std::memory_order_relaxed);
    }
    return a;
  }

  std::string report() const {
    std::string out;
    char buf[96];
    for (std::size_t i = 0; i < static_cast<std::size_t>(Point::kCount); ++i) {
      const auto h = hits_[i].load(std::memory_order_relaxed);
      const auto f = fired_[i].load(std::memory_order_relaxed);
      if (h == 0 && f == 0) continue;
      std::snprintf(buf, sizeof(buf), "%s%s: hits=%llu fired=%llu",
                    out.empty() ? "" : ", ",
                    point_name(static_cast<Point>(i)),
                    static_cast<unsigned long long>(h),
                    static_cast<unsigned long long>(f));
      out += buf;
    }
    return out.empty() ? "no injection points hit" : out;
  }

 private:
  enum class Decision : std::uint8_t { kNone, kYield, kDelay, kFail };

  FaultInjector() = default;

  void reset_counters() {
    for (auto& c : hits_) c.store(0, std::memory_order_relaxed);
    for (auto& c : fired_) c.store(0, std::memory_order_relaxed);
  }

  std::uint64_t next_hit(Point p) {
    return hits_[static_cast<std::size_t>(p)].fetch_add(
               1, std::memory_order_relaxed) +
           1;
  }
  std::atomic<std::uint64_t>& fired(Point p) {
    return fired_[static_cast<std::size_t>(p)];
  }

  // splitmix64 finalizer: the decision for (seed, point, hit) is a pure
  // function, so replays are exact regardless of thread interleaving.
  static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }
  static double unit(std::uint64_t x) noexcept {
    return static_cast<double>(x >> 11) * 0x1.0p-53;
  }

  Decision decide(Point p, std::uint64_t hit, bool failable) const {
    for (const Schedule::Rule& r : schedule_.rules) {
      if (r.point == p && r.hit == hit) {
        switch (r.action) {
          case Action::kYield: return Decision::kYield;
          case Action::kDelay: return Decision::kDelay;
          case Action::kFail:
            return failable ? Decision::kFail : Decision::kYield;
        }
      }
    }
    const std::uint64_t h = mix(schedule_.seed ^
                                (static_cast<std::uint64_t>(p) << 56) ^ hit);
    // Per-point probabilities override the globals; mutation points are
    // reachable ONLY through rules or per-point probabilities, so blanket
    // pyield/pfail sweeps never inject deliberate bugs.
    const std::size_t pi = static_cast<std::size_t>(p);
    double pf = schedule_.point_fail_prob[pi];
    double py = schedule_.point_yield_prob[pi];
    double pd = schedule_.point_delay_prob[pi];
    if (pd < 0) pd = 0;  // delays have no global fallback
    if (is_mutation_point(p)) {
      if (pf < 0) pf = 0;
      if (py < 0) py = 0;
    } else {
      if (pf < 0) pf = schedule_.fail_prob;
      if (py < 0) py = schedule_.yield_prob;
    }
    if (failable && pf > 0 && unit(h) < pf) return Decision::kFail;
    if (pd > 0 && unit(mix(h ^ 0xd1ce5bu)) < pd) return Decision::kDelay;
    if (py > 0 && unit(mix(h)) < py) return Decision::kYield;
    return Decision::kNone;
  }

  static void spin_delay() noexcept {
    for (int i = 0; i < 2048; ++i) {
      std::atomic_signal_fence(std::memory_order_seq_cst);  // keep the loop
    }
  }

  std::atomic<bool> armed_{false};
  Schedule schedule_;
  Handler handler_;
  FailHandler fail_handler_;
  std::array<std::atomic<std::uint64_t>, static_cast<std::size_t>(Point::kCount)>
      hits_{};
  std::array<std::atomic<std::uint64_t>, static_cast<std::size_t>(Point::kCount)>
      fired_{};
};

}  // namespace sv::debug

#define SV_FAULT_POINT(p) ::sv::debug::FaultInjector::instance().reached(p)
#define SV_FAULT_SHOULD_FAIL(p) \
  ::sv::debug::FaultInjector::instance().should_fail(p)

#else  // !SV_FAULT_INJECTION: hooks vanish entirely.

#define SV_FAULT_POINT(p) ((void)0)
#define SV_FAULT_SHOULD_FAIL(p) false

#endif  // SV_FAULT_INJECTION
