// Owned deleters for the reclaim layer.
//
// Historically a retirement carried a bare `void(*)(void*)`: enough when
// every node went back to the global heap, but with pluggable node
// allocators (src/alloc/) a reclaimed chunk must re-enter the *owning*
// allocator's pool. A retirement therefore carries (ptr, deleter, owner):
// the reclaimer invokes `deleter(ptr, owner)` and the owner (typically the
// map instance) routes the bytes back to its allocator.
//
// The 1-arg form is kept as a convenience overload on every retire() (tests
// and simple users): it smuggles the old `void(*)(void*)` through the owner
// slot and dispatches via invoke_unowned.
#pragma once

namespace sv::reclaim {

// Deleter invoked as deleter(ptr, owner). `owner` is an opaque context
// pointer (the retiring component); it must outlive the reclaimer that
// holds the retirement.
using OwnedDeleter = void (*)(void* ptr, void* owner);

// Trampoline for the ownerless legacy form: `owner` is actually the old
// 1-arg deleter. Function-pointer <-> void* round-trips are
// implementation-defined but universally supported on POSIX targets (dlsym
// depends on it).
inline void invoke_unowned(void* ptr, void* fn) {
  reinterpret_cast<void (*)(void*)>(fn)(ptr);
}

}  // namespace sv::reclaim
