// Epoch-based reclamation (EBR), the deferred scheme used by several of the
// scalable skip lists the paper compares against (Fraser [16], Brown [18],
// Arbel-Raviv & Brown [30]). Provided as an alternative Reclaimer policy so
// the HP-vs-EBR trade-off the paper alludes to (precise bounds vs cheaper
// read path) can be measured directly (bench/ablation_merge_hp).
//
// Classic three-epoch scheme: a global epoch E advances only when every
// thread inside an operation has announced E; nodes retired in epoch e
// become unreachable to new operations immediately and free once the global
// epoch reaches e+2. Unlike hazard pointers, a single stalled reader blocks
// ALL reclamation -- the unbounded worst case the paper's design avoids.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/hw.h"
#include "reclaim/deleter.h"
#include "stats/stats.h"

namespace sv::reclaim {

class EpochDomain {
 public:
  EpochDomain() = default;

  ~EpochDomain() {
    // Quiescent: free every bag, including those of exited threads.
    for (auto& rec : recs_) {
      for (auto& bag : rec->bags) {
        for (auto& r : bag) r.deleter(r.ptr, r.owner);
      }
    }
  }

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  struct Retired {
    void* ptr;
    OwnedDeleter deleter;  // invoked as deleter(ptr, owner)
    void* owner;
  };

  struct ThreadRec {
    // Announced epoch; kQuiescent when outside any operation.
    static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};
    alignas(kCacheLineSize) std::atomic<std::uint64_t> announced{kQuiescent};
    // Retire bags indexed by epoch % 3 (owner-thread-only).
    std::vector<Retired> bags[3];
    std::uint64_t ops_since_advance = 0;
  };

  class ThreadCtx {
   public:
    ThreadCtx() = default;

    // Reclaimer-policy interface ------------------------------------------
    void protect(int, const void*) noexcept {}  // epochs need no per-pointer
    void drop(int) noexcept {}                  // protection
    void drop_all() noexcept {}

    void begin_op() noexcept {
      const std::uint64_t e =
          domain_->global_epoch_.load(std::memory_order_acquire);
      rec_->announced.store(e, std::memory_order_seq_cst);
    }

    void end_op() noexcept {
      rec_->announced.store(ThreadRec::kQuiescent,
                            std::memory_order_release);
      if (++rec_->ops_since_advance >= kAdvancePeriod) {
        rec_->ops_since_advance = 0;
        domain_->try_advance(*rec_);
      }
    }

    void retire(void* p, OwnedDeleter deleter, void* owner) {
      stats::count(stats::Counter::kRetired);
      const std::uint64_t e =
          domain_->global_epoch_.load(std::memory_order_acquire);
      rec_->bags[e % 3].push_back({p, deleter, owner});
    }

    // Legacy ownerless form (tests, simple users).
    void retire(void* p, void (*deleter)(void*)) {
      retire(p, &invoke_unowned, reinterpret_cast<void*>(deleter));
    }

   private:
    friend class EpochDomain;
    ThreadCtx(EpochDomain* d, ThreadRec* r) : domain_(d), rec_(r) {}
    EpochDomain* domain_ = nullptr;
    ThreadRec* rec_ = nullptr;
  };

  ThreadCtx thread_ctx() {
    struct Entry {
      std::uint64_t serial;
      ThreadRec* rec;
    };
    thread_local std::vector<Entry> cache;
    for (auto& e : cache) {
      if (e.serial == serial_) return ThreadCtx(this, e.rec);
    }
    auto* rec = new ThreadRec();
    {
      std::lock_guard<std::mutex> lk(mu_);
      recs_.emplace_back(rec);
    }
    cache.push_back({serial_, rec});
    return ThreadCtx(this, rec);
  }

  std::uint64_t global_epoch() const noexcept {
    return global_epoch_.load(std::memory_order_relaxed);
  }
  std::uint64_t reclaimed_count() const noexcept {
    return reclaimed_.load(std::memory_order_relaxed);
  }

  // Try to advance the epoch and free this thread's expired bag. Called
  // periodically from end_op; also usable directly in tests.
  void try_advance(ThreadRec& rec) {
    const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (const auto& r : recs_) {
        const std::uint64_t a = r->announced.load(std::memory_order_seq_cst);
        if (a != ThreadRec::kQuiescent && a < e) return;  // straggler
      }
    }
    // All active threads are in epoch e: advancing to e+1 is safe, and
    // afterwards the bag holding epoch (g-2) retirees -- index (g+1) % 3 for
    // the current global g -- has no remaining readers.
    std::uint64_t expected = e;
    if (global_epoch_.compare_exchange_strong(expected, e + 1,
                                              std::memory_order_acq_rel)) {
      stats::count(stats::Counter::kEpochAdvances);
    }
    auto& bag = rec.bags[(global_epoch_.load(std::memory_order_acquire) + 1) %
                         3];
    std::uint64_t freed = 0;
    for (auto& r : bag) {
      r.deleter(r.ptr, r.owner);
      ++freed;
    }
    bag.clear();
    if (freed > 0) stats::count(stats::Counter::kReclaimed, freed);
    reclaimed_.fetch_add(freed, std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kAdvancePeriod = 128;

  static std::uint64_t next_serial() {
    static std::atomic<std::uint64_t> c{1};
    return c.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> global_epoch_{2};  // start > 0 so e-2 exists
  std::atomic<std::uint64_t> reclaimed_{0};
  const std::uint64_t serial_ = next_serial();
  std::mutex mu_;  // guards recs_ (attach + advance scan; not per-op)
  std::vector<std::unique_ptr<ThreadRec>> recs_;
};

// Reclaimer policy wrapper (see reclaimer.h for the concept).
class EpochReclaimer {
 public:
  using ThreadCtx = EpochDomain::ThreadCtx;
  ThreadCtx thread_ctx() { return domain_.thread_ctx(); }
  EpochDomain& domain() { return domain_; }

 private:
  EpochDomain domain_;
};

}  // namespace sv::reclaim
