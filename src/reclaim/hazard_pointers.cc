#include "reclaim/hazard_pointers.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

namespace sv::reclaim {
namespace {

// Global registry mapping domain serial -> domain, so thread-exit hooks can
// tell whether a cached domain still exists. Touched only on domain
// construction/destruction and thread attach/exit -- never on the hot path.
struct Registry {
  std::mutex mu;
  std::unordered_map<std::uint64_t, HazardDomain*> live;
};

Registry& registry() {
  static Registry r;
  return r;
}

class SpinGuard {
 public:
  explicit SpinGuard(std::atomic_flag& f) : f_(f) {
    while (f_.test_and_set(std::memory_order_acquire)) cpu_relax();
  }
  ~SpinGuard() { f_.clear(std::memory_order_release); }

 private:
  std::atomic_flag& f_;
};

}  // namespace

struct HazardDomain::TlsCache {
  struct Entry {
    std::uint64_t serial;
    HazardDomain* domain;
    ThreadRec* rec;
  };
  std::vector<Entry> entries;

  ~TlsCache() {
    // Return records to still-living domains; stale entries for destroyed
    // domains are simply dropped (their memory died with the domain).
    auto& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    for (const Entry& e : entries) {
      auto it = reg.live.find(e.serial);
      if (it != reg.live.end()) it->second->release_rec(e.rec);
    }
  }
};

HazardDomain::TlsCache& HazardDomain::tls() {
  thread_local TlsCache cache;
  return cache;
}

std::uint64_t HazardDomain::next_serial() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

HazardDomain::HazardDomain() : serial_(next_serial()) {
  auto& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.live.emplace(serial_, this);
}

HazardDomain::~HazardDomain() {
  {
    auto& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    reg.live.erase(serial_);
  }
  // No operations may be in flight now. Free everything still pending.
  ThreadRec* rec = head_.load(std::memory_order_acquire);
  while (rec != nullptr) {
    for (auto& r : rec->retired) r.deleter(r.ptr, r.owner);
    ThreadRec* next = rec->next;
    delete rec;
    rec = next;
  }
  for (auto& r : orphans_) r.deleter(r.ptr, r.owner);
}

HazardDomain::ThreadRec* HazardDomain::acquire_rec() {
  // Reuse a released record if possible.
  for (ThreadRec* rec = head_.load(std::memory_order_acquire); rec != nullptr;
       rec = rec->next) {
    bool expected = false;
    if (!rec->in_use.load(std::memory_order_relaxed) &&
        rec->in_use.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
      return rec;
    }
  }
  auto* rec = new ThreadRec();
  rec->in_use.store(true, std::memory_order_relaxed);
  ThreadRec* old_head = head_.load(std::memory_order_relaxed);
  do {
    rec->next = old_head;
  } while (!head_.compare_exchange_weak(old_head, rec,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed));
  rec_count_.fetch_add(1, std::memory_order_relaxed);
  return rec;
}

void HazardDomain::release_rec(ThreadRec* rec) {
  for (auto& s : rec->slots) s.store(nullptr, std::memory_order_release);
  if (!rec->retired.empty()) {
    SpinGuard g(orphan_mu_);
    orphans_.insert(orphans_.end(), rec->retired.begin(), rec->retired.end());
    rec->retired.clear();
  }
  rec->in_use.store(false, std::memory_order_release);
}

HazardDomain::ThreadCtx HazardDomain::thread_ctx() {
  auto& cache = tls();
  for (const auto& e : cache.entries) {
    if (e.serial == serial_) return ThreadCtx(this, e.rec);
  }
  ThreadRec* rec = acquire_rec();
  cache.entries.push_back({serial_, this, rec});
  return ThreadCtx(this, rec);
}

void HazardDomain::scan(ThreadRec& rec) {
  stats::count(stats::Counter::kHpScanPasses);
  // Adopt orphaned retirements from exited threads.
  {
    SpinGuard g(orphan_mu_);
    if (!orphans_.empty()) {
      rec.retired.insert(rec.retired.end(), orphans_.begin(), orphans_.end());
      orphans_.clear();
    }
  }

  // Stage 1: snapshot every published hazard pointer. The seq_cst fence
  // pairs with the one in ThreadCtx::protect().
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::vector<const void*> protected_ptrs;
  protected_ptrs.reserve(rec_count_.load(std::memory_order_relaxed) *
                         kSlotsPerThread);
  for (ThreadRec* r = head_.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    for (const auto& s : r->slots) {
      if (const void* p = s.load(std::memory_order_acquire)) {
        protected_ptrs.push_back(p);
      }
    }
  }
  std::sort(protected_ptrs.begin(), protected_ptrs.end());

  // Stage 2: reclaim everything not protected.
  std::vector<ThreadRec::Retired> still_pending;
  still_pending.reserve(protected_ptrs.size());
  std::uint64_t freed = 0;
  for (const auto& r : rec.retired) {
    if (std::binary_search(protected_ptrs.begin(), protected_ptrs.end(),
                           static_cast<const void*>(r.ptr))) {
      still_pending.push_back(r);
    } else {
      r.deleter(r.ptr, r.owner);
      ++freed;
    }
  }
  rec.retired.swap(still_pending);
  if (freed > 0) stats::count(stats::Counter::kReclaimed, freed);
  reclaimed_.fetch_add(freed, std::memory_order_relaxed);
  retired_estimate_.store(rec.retired.size(), std::memory_order_relaxed);
}

void HazardDomain::flush() {
  ThreadCtx ctx = thread_ctx();
  scan(*ctx.rec_);
}

}  // namespace sv::reclaim
