// Hazard pointers (Michael, TPDS 2004), the paper's precise memory
// reclamation scheme (§III-B).
//
// One HazardDomain per data structure instance. Threads attach lazily on
// first use and keep a cached ThreadRec per domain in thread-local storage;
// on thread exit the record is returned to the domain for reuse and its
// pending retirements are handed off, so short-lived threads (common in
// tests) neither leak slots nor leak memory.
//
// Bounds: with P attached threads and K slots each, at most P*K retired
// nodes per thread can be blocked from reclamation, and a scan runs every
// kScanThreshold retirements -- the "tight bounds on wasted space" the
// paper relies on.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hw.h"
#include "debug/fault_inject.h"
#include "reclaim/deleter.h"
#include "stats/stats.h"

namespace sv::reclaim {

class HazardDomain {
 public:
  // Maximum hazard pointers a single operation may hold at once. The skip
  // vector's hand-over-hand traversal needs at most 3 live slots (curr,
  // next, and a transiently protected down-node).
  static constexpr int kSlotsPerThread = 4;

  HazardDomain();
  ~HazardDomain();

  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  struct ThreadRec {
    std::atomic<const void*> slots[kSlotsPerThread];
    std::atomic<bool> in_use{false};
    ThreadRec* next = nullptr;  // intrusive list, append-only
    // Owner-thread-only state:
    struct Retired {
      void* ptr;
      OwnedDeleter deleter;  // invoked as deleter(ptr, owner)
      void* owner;
    };
    std::vector<Retired> retired;
    alignas(kCacheLineSize) char pad_[kCacheLineSize];
  };

  // Per-(thread, domain) facade. Obtained via thread_ctx(); cheap to copy.
  class ThreadCtx {
   public:
    ThreadCtx() = default;

    // Operation scoping hooks (used by epoch-based policies; free here).
    void begin_op() noexcept {}
    void end_op() noexcept {}

    // Publish p in slot i. Includes the store->load fence required before
    // the caller re-validates the pointer's source (the skip vector does
    // that re-validation through the node's sequence lock).
    void protect(int i, const void* p) noexcept {
      rec_->slots[i].store(p, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
    }

    void drop(int i) noexcept {
      rec_->slots[i].store(nullptr, std::memory_order_release);
    }

    void drop_all() noexcept {
      for (auto& s : rec_->slots) s.store(nullptr, std::memory_order_release);
    }

    // The paper's "HP.mark": defer deletion of p until no slot protects it.
    // `owner` is the retiring component (routes destruction back through
    // its allocator); it must outlive the domain.
    void retire(void* p, OwnedDeleter deleter, void* owner) {
      SV_FAULT_POINT(debug::Point::kRetire);  // p unlinked, not yet scanned
      stats::count(stats::Counter::kRetired);
      rec_->retired.push_back({p, deleter, owner});
      if (rec_->retired.size() >= domain_->scan_threshold()) {
        domain_->scan(*rec_);
      }
    }

    // Legacy ownerless form (tests, simple users).
    void retire(void* p, void (*deleter)(void*)) {
      retire(p, &invoke_unowned, reinterpret_cast<void*>(deleter));
    }

    std::size_t pending_retired() const noexcept {
      return rec_->retired.size();
    }

   private:
    friend class HazardDomain;
    ThreadCtx(HazardDomain* d, ThreadRec* r) : domain_(d), rec_(r) {}
    HazardDomain* domain_ = nullptr;
    ThreadRec* rec_ = nullptr;
  };

  // Get (attaching if needed) this thread's context for this domain.
  ThreadCtx thread_ctx();

  // Diagnostics.
  std::size_t attached_threads() const noexcept {
    return rec_count_.load(std::memory_order_relaxed);
  }
  std::size_t retired_count() const noexcept {
    return retired_estimate_.load(std::memory_order_relaxed);
  }
  std::uint64_t reclaimed_count() const noexcept {
    return reclaimed_.load(std::memory_order_relaxed);
  }

  // Force a full scan from this thread (reclaims whatever is unprotected).
  void flush();

 private:
  friend class ThreadCtx;

  std::size_t scan_threshold() const noexcept {
    // 2x the worst-case number of simultaneously protected pointers, with a
    // floor so that tiny thread counts still batch their frees.
    const std::size_t h =
        rec_count_.load(std::memory_order_relaxed) * kSlotsPerThread;
    return h * 2 > 64 ? h * 2 : 64;
  }

  ThreadRec* acquire_rec();
  void release_rec(ThreadRec* rec);  // called from thread-exit hook
  void scan(ThreadRec& rec);

  std::atomic<ThreadRec*> head_{nullptr};
  std::atomic<std::size_t> rec_count_{0};
  std::atomic<std::size_t> retired_estimate_{0};
  std::atomic<std::uint64_t> reclaimed_{0};
  // Retirements orphaned by exited threads; drained by the next scan.
  // Guarded by orphan_mu_ (a tiny spinlock; not on the hot path).
  std::atomic_flag orphan_mu_ = ATOMIC_FLAG_INIT;
  std::vector<ThreadRec::Retired> orphans_;
  const std::uint64_t serial_;

  static std::uint64_t next_serial();
  struct TlsCache;
  static TlsCache& tls();
};

}  // namespace sv::reclaim
