// Reclaimer policies: how the skip vector (and other structures) manage the
// memory of unlinked nodes. The map is templated on one of these, giving the
// paper's SV-HP / SV-Leak variants (and an immediate-free policy for
// strictly sequential use) with zero overhead for the no-op cases.
//
// Policy concept:
//   struct Reclaimer {
//     class ThreadCtx {
//       void begin_op();                         // operation entry
//       void end_op();                           // operation exit
//       void protect(int slot, const void* p);   // HP.take
//       void drop(int slot);                     // HP.drop
//       void drop_all();                         // HP.dropAll
//       void retire(void* p, OwnedDeleter del, void* owner);  // HP.mark
//       void retire(void* p, void(*del)(void*)); // legacy ownerless form
//     };
//     ThreadCtx thread_ctx();
//   };
//
// retire's owned form invokes del(p, owner) when p is safe to destroy; the
// owner (typically the map) routes the bytes back to its node allocator
// (see reclaim/deleter.h and alloc/allocator.h).
//
// A fourth policy, EpochReclaimer, lives in reclaim/epoch.h.
#pragma once

#include "reclaim/deleter.h"
#include "reclaim/hazard_pointers.h"

namespace sv::reclaim {

// Precise reclamation via hazard pointers -- the paper's SV-HP.
class HazardReclaimer {
 public:
  using ThreadCtx = HazardDomain::ThreadCtx;
  ThreadCtx thread_ctx() { return domain_.thread_ctx(); }
  HazardDomain& domain() { return domain_; }

 private:
  HazardDomain domain_;
};

// No reclamation at all -- the paper's SV-Leak (and what FSL does). Unlinked
// nodes are never freed while the structure lives; the structure's
// destructor cannot find them, so they are intentionally leaked exactly as
// in the paper's "Leak" variants.
class LeakReclaimer {
 public:
  class ThreadCtx {
   public:
    void begin_op() noexcept {}
    void end_op() noexcept {}
    void protect(int, const void*) noexcept {}
    void drop(int) noexcept {}
    void drop_all() noexcept {}
    void retire(void*, OwnedDeleter, void*) noexcept {}
    void retire(void*, void (*)(void*)) noexcept {}
  };
  ThreadCtx thread_ctx() noexcept { return {}; }
};

// Immediate free: correct only when the structure is used by one thread at a
// time (the sequential algorithm of §III-A, used for Fig. 1).
class ImmediateReclaimer {
 public:
  class ThreadCtx {
   public:
    void begin_op() noexcept {}
    void end_op() noexcept {}
    void protect(int, const void*) noexcept {}
    void drop(int) noexcept {}
    void drop_all() noexcept {}
    void retire(void* p, OwnedDeleter del, void* owner) { del(p, owner); }
    void retire(void* p, void (*del)(void*)) { del(p); }
  };
  ThreadCtx thread_ctx() noexcept { return {}; }
};

}  // namespace sv::reclaim
