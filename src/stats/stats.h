// sv::stats: always-on, near-zero-cost observability counters.
//
// Motivation: the paper's claims are quantitative, and attributing a
// throughput delta requires visibility into the structural events behind it
// (splits, lazy orphan merges, seqlock retries, HP scans -- the same
// internals Jiffy and the B-skiplist line of work instrument). Every counter
// here is a per-thread, cache-line-padded relaxed atomic, so the hot path
// pays one TLS read plus one uncontended fetch_add; aggregation happens only
// when a snapshot is requested.
//
// Architecture:
//   * Registry     -- one per instrumented component instance (a map, a
//                     baseline). Owns per-thread counter Blocks, which are
//                     retained after thread exit so snapshot() aggregates
//                     work from detached/exited threads too.
//   * Scope        -- RAII: installed at the top of each map operation, it
//                     binds the calling thread's Block for that Registry as
//                     the thread's *current* block. Layers that cannot see
//                     the owning map (SequenceLock, VectorMap, the hazard
//                     pointer domain) count through the current block, so
//                     their events are attributed to the map instance whose
//                     operation is on the stack.
//   * count(c, n)  -- increments counter c in the current block; a no-op
//                     when no Scope is active (e.g. standalone unit tests of
//                     the primitives).
//   * Snapshot     -- plain aggregated values; subtractable, so benches can
//                     report per-phase deltas (prefill vs measured run).
//
// Build modes: compiled with SV_STATS_ENABLED=1 (default; CMake option
// SV_STATS=ON) the enabled implementation is used; with SV_STATS=OFF every
// type collapses to an empty stub and count() to an empty inline function,
// so instrumented call sites compile to nothing. Both implementations are
// always *defined* (namespaces sv::stats::enabled / sv::stats::disabled) so
// the stubs stay compile-tested in every build (tests/stats_test.cc
// static_asserts they are zero-size).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/hw.h"

#if !defined(SV_STATS_ENABLED)
#define SV_STATS_ENABLED 1
#endif

namespace sv::stats {

// Counter catalog. Names (for JSON/report output) are in kCounterNames and
// must stay in sync; docs/OBSERVABILITY.md documents the semantics of each.
enum class Counter : std::uint32_t {
  // Operation outcomes (counted by the map at operation completion).
  kLookupHit,
  kLookupMiss,
  kInsertNew,
  kInsertDup,
  kRemoveHit,
  kRemoveMiss,
  kUpdateHit,
  kUpdateMiss,
  kOrderedNavOps,     // floor/ceiling/first/last calls
  kRangeOps,          // range_for_each / range_transform calls
  kRangeKeysVisited,  // mappings visited by range operations
  kOpRestarts,        // speculative attempts abandoned and retried

  // Structural events (skip vector internals).
  kCapacitySplits,  // orphan-creating splits of a full chunk (Fig. 3d)
  kTowerSplits,     // per-layer splits performed by tall inserts
  kOrphanMerges,    // lazy merges of orphaned right siblings (Fig. 3f->3d)
  kStealAbove,      // index-layer suffix steals during tower construction
  kFreezes,         // successful tryFreeze transitions
  kThaws,           // freeze aborted and undone (thaw)

  // Synchronization (counted inside sync/sequence_lock.h).
  kSeqlockReadRetries,     // read_begin() spins while the word was locked
  kSeqlockAcquireRetries,  // acquire() retries (failed CAS or locked/frozen)

  // Chunk mechanics (counted inside vectormap/vector_map.h).
  kChunkShiftedSlots,  // element slots moved by sorted-layout insert/erase
  kSimdSearches,       // chunk searches routed through vector kernels
  kScalarFallbacks,    // chunk searches that took the scalar atomic path

  // Reclamation (counted inside reclaim/).
  kHpScanPasses,   // hazard-pointer scan passes
  kRetired,        // nodes handed to the reclaimer
  kReclaimed,      // nodes actually freed
  kEpochAdvances,  // successful global epoch advances (EBR)

  // Allocation (counted inside alloc/).
  kPoolHits,    // node allocations served by a per-thread magazine
  kPoolMisses,  // node allocations that went to the depot/slab/heap
  kSlabAllocs,  // slabs carved from pool arenas
  kLiveBytes,   // net gauge: +bytes on alloc, two's-complement on free

  // Multiversioning (snapshots + atomic batches; docs/SNAPSHOTS.md).
  kSnapshotScans,         // range_for_each_at / snapshot() scans started
  kSnapshotChunksLive,    // chunks resolved from live state (mod <= v)
  kSnapshotChunksChain,   // chunks resolved from a version-chain record
  kSnapshotChunkRetries,  // per-chunk re-reads (validate fail / next moved)
  kSnapshotScanRestarts,  // full scan-phase restarts (invariant: stays 0)
  kVersionRecords,        // version-chain records created
  kVersionRecordsFreed,   // version-chain records pruned/freed
  kPreimagesSkipped,      // pre-image pushes proven unneeded (no pin >= m)
  kVersionFolds,          // chains folded at a split/merge boundary
  kBatchCommits,          // apply_batch committed atomically
  kBatchAborts,           // apply_batch lock-acquisition passes aborted
  kBatchKeys,             // ops applied by committed batches

  // Hash sidecar (core/hash_index.h; zero unless HashIndex is enabled).
  kHashHits,      // point ops concluded through a validated hint
  kHashStale,     // probes that found an entry but could not conclude
  kHashRebuilds,  // hint publish/repair/repoint events (split/merge/lookup)

  // Adaptive chunk tuning (core/adapt.h; zero unless Config::adaptive).
  kLayoutToSorted,    // chunks retagged unsorted -> sorted at a decision
  kLayoutToUnsorted,  // chunks retagged sorted -> unsorted at a decision
  kTargetResize,      // decisions that changed a chunk's target size

  // Transaction layer (src/txn/; docs/TRANSACTIONS.md). kTxnLockFail is
  // counted inside the shared lock manager, so apply_batch conflicts bump
  // it alongside kBatchAborts.
  kTxnCommits,   // sv::txn transactions committed
  kTxnAborts,    // Txn::commit attempts that aborted (conflict/validation)
  kTxnLockFail,  // NO_WAIT lock-acquisition passes that failed
  kTxnRetries,   // transaction body re-executions by txn::run

  kCount
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

// snake_case names, index-aligned with Counter; used verbatim as JSON keys.
inline constexpr std::array<std::string_view, kCounterCount> kCounterNames = {
    "lookup_hit",
    "lookup_miss",
    "insert_new",
    "insert_dup",
    "remove_hit",
    "remove_miss",
    "update_hit",
    "update_miss",
    "ordered_nav_ops",
    "range_ops",
    "range_keys_visited",
    "op_restarts",
    "capacity_splits",
    "tower_splits",
    "orphan_merges",
    "steal_above",
    "freezes",
    "thaws",
    "seqlock_read_retries",
    "seqlock_acquire_retries",
    "chunk_shifted_slots",
    "simd_searches",
    "scalar_fallbacks",
    "hp_scan_passes",
    "retired",
    "reclaimed",
    "epoch_advances",
    "pool_hits",
    "pool_misses",
    "slab_allocs",
    "live_bytes",
    "snapshot_scans",
    "snapshot_chunks_live",
    "snapshot_chunks_chain",
    "snapshot_chunk_retries",
    "snapshot_scan_restarts",
    "version_records",
    "version_records_freed",
    "preimages_skipped",
    "version_folds",
    "batch_commits",
    "batch_aborts",
    "batch_keys",
    "hash_hits",
    "hash_stale",
    "hash_rebuilds",
    "layout_to_sorted",
    "layout_to_unsorted",
    "target_resize",
    "txn_commits",
    "txn_aborts",
    "txn_lock_fail",
    "txn_retries",
};

inline constexpr std::string_view counter_name(Counter c) noexcept {
  return kCounterNames[static_cast<std::size_t>(c)];
}

// Aggregated counter values; a plain value type, safe to copy around and
// subtract (per-phase deltas).
struct Snapshot {
  std::array<std::uint64_t, kCounterCount> values{};

  std::uint64_t operator[](Counter c) const noexcept {
    return values[static_cast<std::size_t>(c)];
  }
  Snapshot& operator+=(const Snapshot& o) noexcept {
    for (std::size_t i = 0; i < kCounterCount; ++i) values[i] += o.values[i];
    return *this;
  }
  // Per-phase delta. Counters are monotonic per block, but blocks may be
  // adopted between snapshots; clamp at zero rather than wrap.
  Snapshot operator-(const Snapshot& o) const noexcept {
    Snapshot d;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      d.values[i] = values[i] >= o.values[i] ? values[i] - o.values[i] : 0;
    }
    return d;
  }
  std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const auto v : values) t += v;
    return t;
  }
  // fn(std::string_view name, std::uint64_t value) for every counter.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < kCounterCount; ++i) fn(kCounterNames[i],
                                                       values[i]);
  }
};

// ---- Enabled implementation -------------------------------------------------

namespace enabled {

class Registry {
 public:
  // One cache line (or more) per attached thread; counters are written by
  // exactly one thread with relaxed atomics and read by snapshot().
  struct alignas(kCacheLineSize) Block {
    std::array<std::atomic<std::uint64_t>, kCounterCount> c{};
    Block* next = nullptr;  // intrusive list, append-only

    void add(Counter ctr, std::uint64_t n) noexcept {
      c[static_cast<std::size_t>(ctr)].fetch_add(n,
                                                 std::memory_order_relaxed);
    }
  };

  Registry() noexcept : serial_(next_serial()) {}

  ~Registry() {
    Block* b = head_.load(std::memory_order_acquire);
    while (b != nullptr) {
      Block* next = b->next;
      delete b;
      b = next;
    }
  }

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // This thread's block for this registry, attaching on first use. Blocks
  // are never freed before the registry, so counts from threads that have
  // since exited (or detached) stay visible to snapshot(). The TLS cache is
  // keyed by a process-unique serial: a stale entry for a destroyed
  // registry can never be confused with a live one.
  Block* local() {
    struct Entry {
      std::uint64_t serial;
      Block* block;
    };
    thread_local std::vector<Entry> cache;
    for (const Entry& e : cache) {
      if (e.serial == serial_) return e.block;
    }
    auto* b = new Block();
    Block* old_head = head_.load(std::memory_order_relaxed);
    do {
      b->next = old_head;
    } while (!head_.compare_exchange_weak(old_head, b,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
    cache.push_back({serial_, b});
    return b;
  }

  // Aggregate every block. Safe to call concurrently with increments
  // (relaxed reads of monotonic relaxed counters: the result is some valid
  // interleaving, never torn).
  Snapshot snapshot() const {
    Snapshot s;
    for (const Block* b = head_.load(std::memory_order_acquire); b != nullptr;
         b = b->next) {
      for (std::size_t i = 0; i < kCounterCount; ++i) {
        s.values[i] += b->c[i].load(std::memory_order_relaxed);
      }
    }
    return s;
  }

  std::size_t attached_blocks() const noexcept {
    std::size_t n = 0;
    for (const Block* b = head_.load(std::memory_order_acquire); b != nullptr;
         b = b->next) {
      ++n;
    }
    return n;
  }

 private:
  static std::uint64_t next_serial() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<Block*> head_{nullptr};
  const std::uint64_t serial_;
};

// The thread's current attribution target. Layers with no reference to the
// owning component (sequence locks, chunk containers, reclamation domains)
// count through this pointer; it is installed by the Scope of the map
// operation on the stack.
inline Registry::Block*& current_block() noexcept {
  thread_local Registry::Block* current = nullptr;
  return current;
}

class Scope {
 public:
  explicit Scope(Registry& r) noexcept
      : prev_(current_block()) {
    current_block() = r.local();
  }
  ~Scope() { current_block() = prev_; }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Registry::Block* prev_;
};

inline void count(Counter c, std::uint64_t n = 1) noexcept {
  if (Registry::Block* b = current_block()) b->add(c, n);
}

}  // namespace enabled

// ---- Disabled implementation (zero-size stubs) ------------------------------

namespace disabled {

struct Registry {
  Snapshot snapshot() const noexcept { return {}; }
  std::size_t attached_blocks() const noexcept { return 0; }
};

struct Scope {
  explicit Scope(Registry&) noexcept {}
};

inline void count(Counter, std::uint64_t = 1) noexcept {}

}  // namespace disabled

// ---- Mode selection ---------------------------------------------------------

#if SV_STATS_ENABLED
using Registry = enabled::Registry;
using Scope = enabled::Scope;
using enabled::count;
inline constexpr bool kEnabled = true;
#else
using Registry = disabled::Registry;
using Scope = disabled::Scope;
using disabled::count;
inline constexpr bool kEnabled = false;
#endif

}  // namespace sv::stats
