// Truncated exponential backoff for restart loops.
#pragma once

#include <cstdint>

#include "common/hw.h"

namespace sv::sync {

class Backoff {
 public:
  explicit Backoff(std::uint32_t max_spins = 1024) noexcept
      : limit_(1), max_(max_spins) {}

  void pause() noexcept {
    for (std::uint32_t i = 0; i < limit_; ++i) cpu_relax();
    if (limit_ < max_) limit_ <<= 1;
  }

  void reset() noexcept { limit_ = 1; }

 private:
  std::uint32_t limit_;
  std::uint32_t max_;
};

}  // namespace sv::sync
