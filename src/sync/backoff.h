// Truncated exponential backoff for restart loops.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/hw.h"

namespace sv::sync {

class Backoff {
 public:
  explicit Backoff(std::uint32_t max_spins = 1024) noexcept
      : limit_(1), max_(max_spins == 0 ? 1 : max_spins) {}

  void pause() noexcept {
    for (std::uint32_t i = 0; i < limit_; ++i) cpu_relax();
    // Truncated doubling: never spin past max_, even when max_spins is not
    // a power of two, and never wrap for max_spins > 2^31.
    if (limit_ < max_) {
      limit_ = (limit_ > max_ / 2) ? max_ : std::min(limit_ << 1, max_);
    }
  }

  std::uint32_t current_limit() const noexcept { return limit_; }

  void reset() noexcept { limit_ = 1; }

 private:
  std::uint32_t limit_;
  std::uint32_t max_;
};

}  // namespace sv::sync
