// SequenceLock: the paper's per-node synchronization word (Listing 1).
//
// A 64-bit word packs:
//   bit 0        isLocked  -- write lock held
//   bit 1        isOrphan  -- node has no parent entry in the layer above
//   bit 2        isFrozen  -- reserved by one Insert; readable, not lockable
//   bits 3..63   sequenceNumber
//
// Readers run speculatively: read_begin() -> relaxed data reads ->
// validate(). Writers acquire the lock bit; release() bumps the sequence
// number, which invalidates every in-flight speculative reader of the node.
//
// Memory-model notes (Boehm, "Can seqlocks get along with programming
// language memory models?", MSPC'12): node payloads are std::atomic and
// accessed relaxed inside read sections, so speculation is race-free by the
// letter of the standard. Writer-side, the lock-set operation is ordered
// before the payload writes with a release fence (fence-fence pairing with
// the acquire fence in validate()); reader-side, validate() issues an
// acquire fence before re-reading the word.
//
// The freeze protocol (paper §III-B): tryFreeze puts a node into a state
// where only the freezing thread may later lock it (upgrade_frozen) or
// return it to normal (thaw), while concurrent readers proceed. Freezing and
// thawing do not bump the sequence number: the bit flip alone makes
// concurrent validate()s fail conservatively, and since no payload write can
// happen without the lock bit (whose release always bumps the sequence), an
// ABA on the frozen bit cannot mask a payload change.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/hw.h"
#include "stats/stats.h"
#include "sync/backoff.h"

namespace sv::sync {

class SequenceLock {
 public:
  using Word = std::uint64_t;

  static constexpr Word kLockedBit = 1u;
  static constexpr Word kOrphanBit = 2u;
  static constexpr Word kFrozenBit = 4u;
  static constexpr Word kSeqIncrement = 8u;

  SequenceLock() noexcept : word_(0) {}
  explicit SequenceLock(bool orphan) noexcept
      : word_(orphan ? kOrphanBit : 0) {}

  SequenceLock(const SequenceLock&) = delete;
  SequenceLock& operator=(const SequenceLock&) = delete;

  static constexpr bool is_locked(Word w) noexcept { return w & kLockedBit; }
  static constexpr bool is_orphan(Word w) noexcept { return w & kOrphanBit; }
  static constexpr bool is_frozen(Word w) noexcept { return w & kFrozenBit; }

  // ---- Reader protocol ----------------------------------------------------

  // Begin a speculative read section. Spins while the write lock is held.
  // The returned word never has the locked bit set.
  Word read_begin() const noexcept {
    Word w = word_.load(std::memory_order_acquire);
    while (is_locked(w)) {
      // Off the fast path: only reached when a writer holds the lock.
      stats::count(stats::Counter::kSeqlockReadRetries);
      cpu_relax();
      w = word_.load(std::memory_order_acquire);
    }
    return w;
  }

  // The paper's "verify": true iff the word is still exactly `observed`.
  // Must be called after the relaxed payload reads it guards.
  bool validate(Word observed) const noexcept {
    std::atomic_thread_fence(std::memory_order_acquire);
    return word_.load(std::memory_order_relaxed) == observed;
  }

  // Current raw word, no ordering implied. For diagnostics / orphan checks
  // by a thread that holds the lock or the freeze.
  Word load_relaxed() const noexcept {
    return word_.load(std::memory_order_relaxed);
  }

  // ---- Writer protocol ----------------------------------------------------

  // The paper's "tryUpgrade": atomically move from the speculatively
  // observed word to locked, failing if anything changed -- including a
  // concurrent freeze (only the freezer may lock a frozen node).
  [[nodiscard]] bool try_upgrade(Word observed) noexcept {
    if (is_locked(observed) || is_frozen(observed)) return false;
    if (!word_.compare_exchange_strong(observed, observed | kLockedBit,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return false;
    }
    writer_entry_fence();
    return true;
  }

  // The paper's "tryFreeze": like try_upgrade but sets isFrozen. The caller
  // becomes the only thread able to lock (or thaw) the node; concurrent
  // readers are unaffected.
  [[nodiscard]] bool try_freeze(Word observed) noexcept {
    if (is_locked(observed) || is_frozen(observed)) return false;
    return word_.compare_exchange_strong(observed, observed | kFrozenBit,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }

  // Owner-only: return a frozen node to normal. No payload was written, so
  // the sequence number is not bumped (see header comment for why this ABA
  // is benign).
  void thaw() noexcept {
    const Word w = word_.load(std::memory_order_relaxed);
    word_.store(w & ~kFrozenBit, std::memory_order_release);
  }

  // Owner-only: frozen -> locked ("move node from frozen to locked",
  // Listing 3). While frozen, no other thread can modify the word, so a
  // plain store suffices.
  void upgrade_frozen() noexcept {
    const Word w = word_.load(std::memory_order_relaxed);
    word_.store((w & ~kFrozenBit) | kLockedBit, std::memory_order_relaxed);
    writer_entry_fence();
  }

  // The paper's "acquire": blocking lock. Spins while locked or frozen by
  // another thread, with truncated exponential backoff so a contended word
  // is not hammered by every waiter's CAS/load in lockstep.
  void acquire() noexcept {
    Backoff backoff;
    for (;;) {
      Word w = word_.load(std::memory_order_relaxed);
      if (!is_locked(w) && !is_frozen(w)) {
        if (word_.compare_exchange_weak(w, w | kLockedBit,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
          writer_entry_fence();
          return;
        }
      }
      stats::count(stats::Counter::kSeqlockAcquireRetries);
      backoff.pause();
    }
  }

  // The paper's "release": clear isLocked, bump the sequence number.
  // Returns the new (unlocked) word so the caller can continue traversing
  // speculatively from this node (TraverseRight line 38).
  Word release() noexcept {
    const Word w =
        ((word_.load(std::memory_order_relaxed) & ~kLockedBit) + kSeqIncrement);
    word_.store(w, std::memory_order_release);
    return w;
  }

  // Owner-only while locked: flip the orphan flag; published by release().
  void set_orphan_locked(bool orphan) noexcept {
    Word w = word_.load(std::memory_order_relaxed);
    w = orphan ? (w | kOrphanBit) : (w & ~kOrphanBit);
    word_.store(w, std::memory_order_relaxed);
  }

 private:
  // Order the lock-set before subsequent relaxed payload stores, pairing
  // with the acquire fence in validate(). Without this, a speculative
  // reader could observe a payload write yet still re-read the pre-lock
  // word and wrongly validate.
  static void writer_entry_fence() noexcept {
    std::atomic_thread_fence(std::memory_order_release);
  }

  std::atomic<Word> word_;
};

static_assert(sizeof(SequenceLock) == 8);

}  // namespace sv::sync
