// sv::txn lock manager: the chunk-granularity NO_WAIT two-phase-locking
// protocol shared by every multi-key mutation in the repo. Extracted from
// SkipVectorMap::try_apply_batch (which used to inline it) so that
// apply_batch, the cross-shard gates in core/sharded.h, and the user-facing
// Txn handle (txn/txn.h) all run on ONE code path. docs/TRANSACTIONS.md is
// the narrative companion.
//
// Protocol summary (2PLSF direction, NO_WAIT flavor):
//   - Growing phase: the floor data chunk of every accessed key is
//     write-locked in ascending key order -- a global acquisition order, so
//     two passes can never deadlock. The first key descends the tower
//     (MapAccess::lock_floor_descent); later keys walk laterally from the
//     last held lock (MapAccess::lock_floor_from), and that walk NEVER
//     blocks: any locked or frozen word it meets aborts the whole pass.
//   - Validation: optimistic reads (Txn's read set) are re-checked against
//     the locked chunks; a mismatch aborts before anything mutates.
//   - Commit: ONE commit version is reserved for the whole write set;
//     pre-images are staged iff snapshots are pinned; each chunk absorbs its
//     ops; every touched piece is stamped with the commit version; locks
//     release in reverse order (shrinking phase).
//   - Abort: locks release in reverse, nothing was mutated (mutations are
//     deferred to the commit step), the caller backs off and retries.
//
// This header deliberately does NOT include core/skip_vector.h: MapAccess
// is a friend template of SkipVectorMap (forward-declared there), so the
// map's private navigation/mutation primitives are reached through it and
// the include arrow points core -> txn only.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/mvcc.h"
#include "debug/fault_inject.h"
#include "stats/stats.h"
#include "sync/backoff.h"

namespace sv::txn {

namespace mvcc = ::sv::core::mvcc;

// Bounded exponential-backoff retry policy for NO_WAIT aborts. Retrying
// forever (max_attempts == 0) matches apply_batch's historical semantics;
// bounded callers (e.g. interactive transactions) give up and surface the
// conflict after max_attempts re-executions.
struct RetryPolicy {
  std::uint32_t max_attempts = 0;  // 0 = retry until committed
  std::uint32_t max_spins = 4096;  // truncation for the exponential backoff
};

// MapAccess<Map>: the single privileged bridge into SkipVectorMap's private
// lock/navigation/mutation primitives (it is a friend template of the map).
// Everything the lock manager and Txn need from the map flows through these
// static wrappers, which keeps the privilege surface explicit and greppable.
template <class Map>
struct MapAccess {
  using Node = typename Map::NodeBase;
  using Ctx = typename Map::Ctx;
  using K = typename Map::key_type;
  using V = typename Map::mapped_type;
  using Op = typename Map::BatchOp;
  using Lock = typename Map::Lock;
  using Word = typename Map::Word;

  // ---- Chunk inspection (callable only under the chunk's write lock or
  // with the chunk otherwise pinned) ---------------------------------------

  static std::uint32_t size(Map& m, Node* n) noexcept {
    return m.node_size(n);
  }
  static K min_key(Map& m, Node* n) noexcept { return m.node_min_key(n); }
  static bool is_head(Node* n) noexcept { return n->is_head; }
  static bool is_orphan(Node* n) noexcept {
    return Lock::is_orphan(n->lock.load_relaxed());
  }

  // Point read inside a locked data chunk (used to validate a Txn's read
  // set: the lock freezes the chunk's contents, so this is the committed
  // state at the pass's serialization point).
  static std::optional<V> read_in_chunk(Map& m, Node* chunk, K k) {
    return m.as_data(chunk)->vec.get(k);
  }

  // ---- Lock acquisition (the extracted 2PL growing-phase primitives) -----

  // True when `k` still belongs to locked chunk `c` (no better floor to its
  // right). c's lock pins its successor; a successor's minimum never
  // decreases, so a positive answer stays valid while we hold the lock.
  static bool covers(Map& m, Node* c, K k) {
    Node* next = c->next.load(std::memory_order_acquire);
    if (next == nullptr) return true;
    const std::uint32_t sz = m.node_size(next);
    return sz > 0 && k < m.node_min_key(next);
  }

  // Full speculative descent to the data-layer floor chunk for k, then a
  // no-wait write-lock. Used for the pass's first key (no locks held, so
  // blocking reads inside the shared traversal are safe).
  static bool lock_floor_descent(Map& m, Ctx& ctx, K k, Node** out) {
    typename Map::Trav t = m.begin_traversal(ctx);
    while (t.node->layer > 0) {
      if (!m.traverse_right(ctx, t, k, /*mutator=*/false)) return false;
      Node* down = nullptr;
      bool exact = false;
      if (!m.index_down(t, k, &down, &exact)) return false;
      if (!m.exchange_down(ctx, t, down)) return false;
    }
    if (!m.traverse_right(ctx, t, k, /*mutator=*/false)) return false;
    if (!t.node->lock.try_upgrade(t.ver)) return false;
    *out = t.node;
    return true;
  }

  // Lateral no-wait walk from an already-locked chunk to the floor chunk
  // for a later (larger) key. NEVER blocks: while holding locks, waiting on
  // another thread's lock (even a read_begin spin) could deadlock two
  // passes against each other, so any held word aborts. Empty chunks
  // (demoted or drained, awaiting an orphan merge) hold no floor candidate
  // and are hopped over rather than aborted on: an empty chunk that no
  // descent happens to cross would otherwise wedge every pass whose key
  // span crosses it. When only empty chunks separate `from` from the first
  // chunk with min > k, the floor is `from` itself, returned (still locked)
  // in *out -- the caller must not re-push it.
  static bool lock_floor_from(Map& m, Ctx& ctx, Node* from, K k, Node** out) {
    // `best`: rightmost non-empty chunk seen with min <= k. It stays
    // hazard-protected in slot 2 while the walk probes further; the final
    // try_upgrade(best_ver) rejects any change since it was examined.
    Node* best = from;
    Word best_ver = 0;
    Node* node = from->next.load(std::memory_order_acquire);
    if (node == nullptr) {
      *out = from;  // nothing right of from: it is the floor
      return true;
    }
    int slot = 0;
    ctx.protect(slot, node);  // linked: from's held lock pins it
    Word ver = node->lock.load_relaxed();
    if (Lock::is_locked(ver) || Lock::is_frozen(ver)) return false;
    std::atomic_thread_fence(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t sz = m.node_size(node);
      if (sz > 0) {
        if (k < m.node_min_key(node)) {
          // Validate the basis for stopping before trusting it.
          if (!node->lock.validate(ver)) return false;
          break;
        }
        best = node;
        best_ver = ver;
        ctx.protect(2, node);
        if (!node->lock.validate(ver)) return false;
      }
      Node* next = node->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        // Validate before trusting "node is last AND its min > k or it
        // is empty" -- an unvalidated read must not settle the floor.
        if (!node->lock.validate(ver)) return false;
        break;  // best (or from) is the floor
      }
      const int nslot = m.other_slot(slot);
      ctx.protect(nslot, next);
      // Covers the sz/min reads above and the next read: node unchanged,
      // so next is node's real successor (never the retired sentinel).
      if (!node->lock.validate(ver)) return false;
      const Word nver = next->lock.load_relaxed();
      if (Lock::is_locked(nver) || Lock::is_frozen(nver)) return false;
      std::atomic_thread_fence(std::memory_order_acquire);
      ctx.drop(slot);
      node = next;
      ver = nver;
      slot = nslot;
    }
    if (best == from) {
      *out = from;
      return true;
    }
    if (!best->lock.try_upgrade(best_ver)) return false;
    *out = best;
    return true;
  }

  // ---- Commit-path map primitives ----------------------------------------

  static std::uint64_t version_reserve(Map& m) { return m.version_reserve(); }
  static bool snapshots_active(Map& m) { return m.snapshots_active(); }
  static void apply_chunk_ops(Map& m, Node* chunk, Op* ops,
                              const std::vector<std::uint32_t>& order,
                              std::size_t begin, std::size_t end,
                              std::uint64_t c, bool preserve,
                              std::vector<Node*>& locked, std::size_t& applied,
                              std::int64_t& delta) {
    m.apply_chunk_ops(chunk, ops, order, begin, end, c, preserve, locked,
                      applied, delta);
  }
  static void demote_tower(Map& m, Ctx& ctx, K k) { m.demote_tower(ctx, k); }

  // ---- Bookkeeping -------------------------------------------------------

  static Ctx thread_ctx(Map& m) { return m.reclaimer_.thread_ctx(); }
  static void note_restart(Map& m) noexcept {
    m.restarts_.fetch_add(1, std::memory_order_relaxed);
  }
  static void note_size_delta(Map& m, std::int64_t delta) noexcept {
    if (delta != 0) m.approx_size_.fetch_add(delta, std::memory_order_relaxed);
  }
};

// Pins the calling thread's reclamation epoch for the duration of a
// transaction-layer operation (the Txn equivalent of the map's internal
// OpGuard).
template <class Map>
class OpScope {
 public:
  explicit OpScope(Map& m) : ctx_(MapAccess<Map>::thread_ctx(m)) {
    ctx_.begin_op();
  }
  ~OpScope() { ctx_.end_op(); }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  typename MapAccess<Map>::Ctx& ctx() noexcept { return ctx_; }

 private:
  typename MapAccess<Map>::Ctx ctx_;
};

// Owned set of write-locked chunks of one map: the RAII "lock set" of the
// growing phase. Locks release in REVERSE acquisition order (shrinking
// phase), automatically on destruction if the pass aborted early.
template <class Map>
class ChunkLockSet {
 public:
  using Node = typename MapAccess<Map>::Node;

  ChunkLockSet() = default;
  ~ChunkLockSet() { release_all(); }
  ChunkLockSet(const ChunkLockSet&) = delete;
  ChunkLockSet& operator=(const ChunkLockSet&) = delete;

  bool empty() const noexcept { return locked_.empty(); }
  Node* back() const noexcept { return locked_.back(); }
  void push(Node* n) { locked_.push_back(n); }
  std::vector<Node*>& nodes() noexcept { return locked_; }

  void release_all() noexcept {
    for (auto it = locked_.rbegin(); it != locked_.rend(); ++it) {
      (*it)->lock.release();
    }
    locked_.clear();
  }

 private:
  std::vector<Node*> locked_;
};

// One optimistic read to validate at commit: the key, whether it was
// observed present, and (if present) the observed value. Entries handed to
// LockMgr::try_commit must be sorted by key and unique.
template <class K, class V>
struct ReadValidation {
  K key;
  bool present;
  V value;
};

enum class PassStatus : std::uint8_t {
  kCommitted,       // writes applied at one commit version, locks released
  kLockConflict,    // NO_WAIT acquisition failed (or transient floor state)
  kValidationFail,  // an optimistic read no longer holds: true conflict
  kNeedDemote,      // a remove targets a towered key: demote, then retry
};

// LockMgr<Map>: the shared two-phase commit algorithm. One pass =
// growing phase (ascending NO_WAIT floor locks over the union of read and
// write keys) + read-set validation + single-version commit + reverse
// release. apply_batch passes an empty read set; Txn::commit passes its
// recorded reads.
template <class Map>
struct LockMgr {
  using MA = MapAccess<Map>;
  using Node = typename MA::Node;
  using Ctx = typename MA::Ctx;
  using K = typename MA::K;
  using V = typename MA::V;
  using Op = typename MA::Op;
  using Read = ReadValidation<K, V>;

  struct PassResult {
    PassStatus status = PassStatus::kLockConflict;
    K demote_key{};          // valid iff status == kNeedDemote
    std::size_t applied = 0;  // presence-changing ops (iff committed)
    std::int64_t delta = 0;   // net size change (iff committed)
  };

  // One no-wait pass. `order` indexes `ops` in stable ascending-key order
  // (same-key ops keep submission order); `reads` is sorted by key, unique.
  // On success every op has been applied at a single commit version, each
  // op's `applied` field is written, and all locks are released; on failure
  // all locks are released, nothing was mutated, and the caller backs off
  // (after demoting the towered key when kNeedDemote).
  static PassResult try_commit(Map& m, Ctx& ctx, Op* ops,
                               const std::vector<std::uint32_t>& order,
                               std::span<const Read> reads) {
    PassResult res;
    ChunkLockSet<Map> locks;
    auto& locked = locks.nodes();
    // Per locked chunk: the half-open run of sorted-op positions it absorbs
    // (kNoRun = read-only chunk, left untouched by the commit step).
    constexpr std::uint32_t kNoRun = ~std::uint32_t{0};
    std::vector<std::pair<std::uint32_t, std::uint32_t>> runs;
    std::vector<std::uint32_t> read_chunk(reads.size());

    auto fail = [&](PassStatus s) {
      locks.release_all();
      ctx.drop_all();
      res.status = s;
      if (s == PassStatus::kLockConflict) {
        stats::count(stats::Counter::kTxnLockFail);
      }
      return res;
    };

    // Lock k's floor chunk unless the last held lock already covers it.
    // Returns false on a NO_WAIT conflict or a transient floor state.
    auto ensure_locked = [&](K k) -> bool {
      if (!locked.empty() && MA::covers(m, locked.back(), k)) return true;
      Node* chunk = nullptr;
      const bool ok = locked.empty()
                          ? MA::lock_floor_descent(m, ctx, k, &chunk)
                          : MA::lock_floor_from(m, ctx, locked.back(), k,
                                                &chunk);
      if (!ok) return false;
      if (locked.empty() || chunk != locked.back()) {
        locks.push(chunk);
        runs.emplace_back(kNoRun, kNoRun);
        // Verify floor-ness under the lock: a non-head floor chunk must
        // hold a minimum <= k (otherwise a put would break the index
        // entry's min invariant; transient states abort instead). When
        // the lateral walk settled back on the already-locked chunk
        // (only empty chunks up to the first min > k), it passed this
        // for an earlier, smaller key, so min <= k holds a fortiori.
        if (!chunk->is_head &&
            (MA::size(m, chunk) == 0 || k < MA::min_key(m, chunk))) {
          return false;
        }
      }
      return true;
    };

    // Phase 1: growing -- ascending over the union of write-op keys and
    // read keys, lock each key's floor chunk exactly once.
    const std::size_t n_ops = order.size();
    std::size_t oi = 0;  // position in sorted-op space
    std::size_t ri = 0;  // position in the (sorted, unique) read set
    while (oi < n_ops || ri < reads.size()) {
      const bool take_read =
          oi >= n_ops ||
          (ri < reads.size() && !(ops[order[oi]].key < reads[ri].key));
      if (take_read) {
        if (!ensure_locked(reads[ri].key)) {
          return fail(PassStatus::kLockConflict);
        }
        read_chunk[ri] = static_cast<std::uint32_t>(locked.size() - 1);
        ++ri;
      } else {
        const K k = ops[order[oi]].key;
        if (!ensure_locked(k)) return fail(PassStatus::kLockConflict);
        Node* chunk = locked.back();
        if (ops[order[oi]].kind == mvcc::BatchOpKind::kRemove &&
            !chunk->is_head && !MA::is_orphan(chunk) &&
            MA::size(m, chunk) > 0 && MA::min_key(m, chunk) == k) {
          // k is the minimum of a non-orphan chunk: it may have a tower in
          // the index layers, and erasing it here would dangle those
          // entries. Demote outside the pass, then retry.
          res.demote_key = k;
          locks.release_all();
          ctx.drop_all();
          res.status = PassStatus::kNeedDemote;
          return res;
        }
        auto& run = runs.back();
        if (run.first == kNoRun) run.first = static_cast<std::uint32_t>(oi);
        run.second = static_cast<std::uint32_t>(oi + 1);
        ++oi;
      }
    }

    // Validation: every optimistic read must still hold against the locked
    // chunks. The locks freeze the committed state, so the whole read set
    // is checked at one serialization point; any mismatch is a real
    // conflict (a committed writer got between the read and this commit).
    for (std::size_t i = 0; i < reads.size(); ++i) {
      const std::optional<V> now =
          MA::read_in_chunk(m, locked[read_chunk[i]], reads[i].key);
      const bool still_holds = reads[i].present
                                   ? (now.has_value() && *now == reads[i].value)
                                   : !now.has_value();
      if (!still_holds) return fail(PassStatus::kValidationFail);
    }

    // Phase 2: commit. All floor chunks are locked; reserve ONE commit
    // version, then stage pre-images and apply per chunk. Speculative
    // readers cannot validate against any touched chunk until its release,
    // and versioned readers at v < c use the pre-images -- so the whole
    // write set is atomic. Read-only chunks are neither stamped nor
    // pre-imaged: their contents do not change.
    if (n_ops > 0) {
      SV_FAULT_POINT(debug::Point::kBatchCommit);
      const std::uint64_t c = MA::version_reserve(m);
      const bool preserve = MA::snapshots_active(m);
      const std::size_t n_chunks = runs.size();  // splits append past this
      for (std::size_t ci = 0; ci < n_chunks; ++ci) {
        if (runs[ci].first == kNoRun) continue;
        MA::apply_chunk_ops(m, locked[ci], ops, order, runs[ci].first,
                            runs[ci].second, c, preserve, locked, res.applied,
                            res.delta);
      }
    }
    locks.release_all();
    ctx.drop_all();
    res.status = PassStatus::kCommitted;
    return res;
  }

  struct BatchOutcome {
    std::size_t applied = 0;
    std::int64_t delta = 0;
  };

  // apply_batch's engine: sort once, then retry the commit pass until it
  // lands (batches carry no read set, so only lock conflicts and towered
  // removes can abort -- both are transient, hence the unbounded retry).
  static BatchOutcome run_batch(Map& m, Ctx& ctx, Op* ops, std::size_t n) {
    // Stable key order: lock acquisition order for deadlock freedom, and
    // same-key ops keep their submission order.
    std::vector<std::uint32_t> order(n);
    for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return ops[a].key < ops[b].key;
                     });
    sync::Backoff backoff;
    for (;;) {
      const PassResult r = try_commit(m, ctx, ops, order, {});
      if (r.status == PassStatus::kCommitted) {
        return BatchOutcome{r.applied, r.delta};
      }
      stats::count(stats::Counter::kBatchAborts);
      MA::note_restart(m);
      if (r.status == PassStatus::kNeedDemote) {
        // A remove targets a towered key: demote its tower (a benign
        // structural op -- the key stays present) outside the locking
        // pass, then retry the batch.
        MA::demote_tower(m, ctx, r.demote_key);
      }
      backoff.pause();
    }
  }
};

// Ordered gate set over a fixed array of shard mutexes: the cross-shard
// half of the lock manager. Multi-shard operations lock the gates of every
// involved shard in ascending shard order (the same deadlock-freedom
// argument as the ascending-key chunk locks); single-shard operations never
// touch a gate. Guards release in reverse order on destruction.
class ShardGates {
 public:
  explicit ShardGates(std::size_t n) {
    gates_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      gates_.push_back(std::make_unique<std::mutex>());
    }
  }

  class Guard {
   public:
    Guard() = default;
    Guard(Guard&&) = default;
    Guard& operator=(Guard&&) = default;
    bool holds_any() const noexcept { return !held_.empty(); }

   private:
    friend class ShardGates;
    std::vector<std::unique_lock<std::mutex>> held_;
  };

  // Lock the gates of shards [first, last] for which `involved` returns
  // true, ascending. Callers use this only for spans covering >= 2 involved
  // shards; a span of one (or zero) involved shards returns an empty guard
  // by construction of the predicate loop, preserving the single-shard
  // fast path ONLY if the caller pre-filters -- so callers should skip the
  // call entirely when first == last.
  template <class Pred>
  Guard lock_span(std::size_t first, std::size_t last, Pred&& involved) {
    Guard g;
    g.held_.reserve(last - first + 1);
    for (std::size_t s = first; s <= last && s < gates_.size(); ++s) {
      if (involved(s)) g.held_.emplace_back(*gates_[s]);
    }
    return g;
  }

  Guard lock_span(std::size_t first, std::size_t last) {
    return lock_span(first, last, [](std::size_t) { return true; });
  }

  std::size_t size() const noexcept { return gates_.size(); }

 private:
  // Heap-allocated so the owning container stays movable.
  std::vector<std::unique_ptr<std::mutex>> gates_;
};

}  // namespace sv::txn
