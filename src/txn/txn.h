// sv::txn::Txn: user-facing multi-key transactions over a SkipVectorMap.
//
// Execution model (optimistic reads + commit-time NO_WAIT 2PL, the 2PLSF
// direction the ROADMAP names):
//   - get() reads the live map WITHOUT locks and records the observation in
//     the transaction's read set (read-your-writes against the buffered
//     write set first).
//   - put()/remove() only buffer intents -- nothing touches the map until
//     commit(), which is why abort() is undo-free.
//   - commit() hands the sorted union of read and write keys to the shared
//     lock manager (txn/lock_mgr.h): floor chunks are locked ascending
//     (NO_WAIT), the read set is re-validated under those locks, then the
//     whole write set is applied at ONE reserved commit version through the
//     existing MVCC reserve -> pre-image -> mutate -> stamp path. The
//     result is serializable: every committed transaction behaves as if all
//     its reads and writes happened at its commit point, which is also the
//     single linearization point the WGL checker extension assumes
//     (src/check/history.h).
//   - scan() is a read-committed range read (it does NOT join the read set
//     and offers no phantom protection) -- the same stance the YCSB-E scan
//     path takes; use get() loops where serializable reads are required.
//
// Conflicts surface as TxnResult::kLockConflict (someone held a chunk we
// needed -- NO_WAIT never waits) or kValidationFail (a committed writer got
// between one of our reads and our commit). Both leave the map untouched;
// run() re-executes the whole transaction body under the bounded
// exponential-backoff RetryPolicy. See docs/TRANSACTIONS.md.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "stats/stats.h"
#include "sync/backoff.h"
#include "txn/lock_mgr.h"

namespace sv::txn {

enum class TxnResult : std::uint8_t {
  kCommitted,
  kLockConflict,    // NO_WAIT chunk acquisition failed; retry is promising
  kValidationFail,  // a read no longer holds; the body must re-execute
};

template <class Map>
class Txn {
 public:
  using K = typename Map::key_type;
  using V = typename Map::mapped_type;
  using Op = typename Map::BatchOp;

  struct WriteEntry {
    K key;
    V value;              // ignored for removes
    mvcc::BatchOpKind kind;
    bool applied = false;  // set by commit(): did presence change?
  };
  using ReadEntry = ReadValidation<K, V>;

  explicit Txn(Map& m) : map_(&m) {}

  // Not copyable (owns in-flight read/write sets); movable for begin().
  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;
  Txn(Txn&&) = default;
  Txn& operator=(Txn&&) = default;

  bool active() const noexcept { return active_; }

  // Transactional point read. Buffered writes win (read-your-writes); a
  // repeated read returns the first observation (the value the commit will
  // validate); otherwise the live map is consulted and the observation
  // joins the read set.
  std::optional<V> get(K k) {
    for (auto it = writes_.rbegin(); it != writes_.rend(); ++it) {
      if (it->key == k) {
        if (it->kind == mvcc::BatchOpKind::kRemove) return std::nullopt;
        return it->value;
      }
    }
    for (const ReadEntry& r : reads_) {
      if (r.key == k) {
        if (!r.present) return std::nullopt;
        return r.value;
      }
    }
    std::optional<V> got = map_->lookup(k);
    reads_.push_back(ReadEntry{k, got.has_value(), got.value_or(V{})});
    return got;
  }

  // Buffered upsert / erase: deferred to commit(). Same-key intents apply
  // in submission order at commit (last write wins), exactly like
  // apply_batch's same-key semantics.
  void put(K k, V v) {
    writes_.push_back(WriteEntry{k, v, mvcc::BatchOpKind::kPut});
  }
  void remove(K k) {
    writes_.push_back(WriteEntry{k, V{}, mvcc::BatchOpKind::kRemove});
  }

  // Read-committed range read over the live map (documented non-goal:
  // scans do not join the read set, so commit() does not protect against
  // phantoms). Buffered writes are NOT overlaid.
  template <class Fn>
  std::size_t scan(K lo, K hi, Fn&& fn) {
    return map_->range_for_each(lo, hi, std::forward<Fn>(fn));
  }

  // Try to commit: one NO_WAIT pass over the shared lock manager. On
  // kCommitted the write set became visible atomically at one commit
  // version and each WriteEntry's `applied` flag is set. On any failure
  // the map is untouched and the transaction is dead -- re-execute the
  // whole body (run() below automates that); towered-remove demotes are
  // handled internally since they need no re-execution.
  TxnResult commit() {
    stats::Scope stats_scope(map_->stats_registry());
    active_ = false;
    if (writes_.empty() && reads_.empty()) {
      stats::count(stats::Counter::kTxnCommits);
      return TxnResult::kCommitted;
    }
    std::vector<Op> ops;
    ops.reserve(writes_.size());
    for (const WriteEntry& w : writes_) {
      ops.push_back(w.kind == mvcc::BatchOpKind::kPut
                        ? Op::put(w.key, w.value)
                        : Op::remove(w.key));
    }
    std::vector<std::uint32_t> order(ops.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return ops[a].key < ops[b].key;
                     });
    std::sort(reads_.begin(), reads_.end(),
              [](const ReadEntry& a, const ReadEntry& b) {
                return a.key < b.key;
              });
    OpScope<Map> op_scope(*map_);
    sync::Backoff backoff;
    for (;;) {
      const auto r = LockMgr<Map>::try_commit(*map_, op_scope.ctx(),
                                              ops.data(), order, reads_);
      switch (r.status) {
        case PassStatus::kCommitted:
          for (std::size_t i = 0; i < writes_.size(); ++i) {
            writes_[i].applied = ops[i].applied;
          }
          MapAccess<Map>::note_size_delta(*map_, r.delta);
          stats::count(stats::Counter::kTxnCommits);
          return TxnResult::kCommitted;
        case PassStatus::kNeedDemote:
          // Benign structural fix (the key stays present): demote and
          // retry the pass -- reads re-validate on the next pass, so no
          // re-execution is needed.
          MapAccess<Map>::note_restart(*map_);
          MapAccess<Map>::demote_tower(*map_, op_scope.ctx(), r.demote_key);
          backoff.pause();
          continue;
        case PassStatus::kLockConflict:
          MapAccess<Map>::note_restart(*map_);
          stats::count(stats::Counter::kTxnAborts);
          return TxnResult::kLockConflict;
        case PassStatus::kValidationFail:
          MapAccess<Map>::note_restart(*map_);
          stats::count(stats::Counter::kTxnAborts);
          return TxnResult::kValidationFail;
      }
    }
  }

  // Undo-free discard: mutations were deferred, so aborting only drops the
  // buffered read/write sets. The handle can be reused as a fresh
  // transaction afterwards.
  void abort() {
    reads_.clear();
    writes_.clear();
    active_ = true;
  }

  // Post-mortem access for recorders/tests (valid until the next abort()).
  const std::vector<ReadEntry>& reads() const noexcept { return reads_; }
  const std::vector<WriteEntry>& writes() const noexcept { return writes_; }

 private:
  Map* map_;
  std::vector<ReadEntry> reads_;    // unique keys, insertion order
  std::vector<WriteEntry> writes_;  // submission order (may repeat keys)
  bool active_ = true;
};

template <class Map>
Txn<Map> begin(Map& m) {
  return Txn<Map>(m);
}

// Run `body(txn)` to a committed conclusion, re-executing it on conflicts
// with bounded exponential backoff (RetryPolicy). The body returns bool:
// false means "user abort" -- the transaction is discarded with no retry
// and run() returns false. Returns true once a re-execution commits; false
// if the body aborted or max_attempts re-executions all conflicted.
template <class Map, class Body>
bool run(Map& m, Body&& body, const RetryPolicy& policy = {}) {
  stats::Scope stats_scope(m.stats_registry());
  sync::Backoff backoff(policy.max_spins);
  for (std::uint32_t attempt = 0;; ++attempt) {
    Txn<Map> t(m);
    if (!body(t)) return false;
    if (t.commit() == TxnResult::kCommitted) return true;
    if (policy.max_attempts != 0 && attempt + 1 >= policy.max_attempts) {
      return false;
    }
    stats::count(stats::Counter::kTxnRetries);
    backoff.pause();
  }
}

}  // namespace sv::txn
