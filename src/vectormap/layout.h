// The per-chunk layout tag (Fig. 7b): split out of vector_map.h so that
// Config (src/core/config.h) can name layouts without pulling in the SIMD
// and stats machinery.
#pragma once

#include <cstdint>

namespace sv::vectormap {

enum class Layout : std::uint8_t { kSorted, kUnsorted };

inline const char* layout_name(Layout l) noexcept {
  return l == Layout::kSorted ? "sorted" : "unsorted";
}

}  // namespace sv::vectormap
