// VectorMap: the fixed-capacity chunk container of Listing 1 -- two
// correlated arrays (keys, vals) of capacity 2*targetSize plus a size field.
//
// Storage is non-owning: the skip vector allocates each node as one
// contiguous block [node header | keys | vals] so that scanning a chunk is a
// linear walk (the locality the paper is about), and hands the array
// pointers to this view.
//
// Elements are std::atomic<K>/std::atomic<V> accessed with relaxed ordering.
// Mutators run only under the node's write lock; readers run speculatively
// under a sequence-lock read section and re-validate afterwards, so reads
// here may observe torn *sets* of elements but never torn elements, and all
// loops are bounded by `capacity` regardless of what a racing writer does
// (the termination requirement of §IV-C).
//
// Two layout policies (Fig. 7b):
//   Sorted:   keys ascending; O(log T) lookup, O(T) insert/erase (shifts).
//   Unsorted: append/swap-with-last; O(T) lookup, O(1) insert/erase writes.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "stats/stats.h"

namespace sv::vectormap {

enum class Layout : std::uint8_t { kSorted, kUnsorted };

template <class K, class V, Layout kLayout>
class VectorMap {
  static_assert(std::is_trivially_copyable_v<K> &&
                    std::is_trivially_copyable_v<V>,
                "VectorMap elements must be trivially copyable: they are "
                "read speculatively under sequence locks");

 public:
  static constexpr bool kSorted = (kLayout == Layout::kSorted);

  VectorMap(std::atomic<K>* keys, std::atomic<V>* vals,
            std::uint32_t capacity) noexcept
      : keys_(keys), vals_(vals), capacity_(capacity), size_(0) {}

  VectorMap(const VectorMap&) = delete;
  VectorMap& operator=(const VectorMap&) = delete;

  std::uint32_t capacity() const noexcept { return capacity_; }

  // Clamped size: a speculative reader may race with a writer, but must
  // never index out of bounds.
  std::uint32_t size() const noexcept {
    const std::uint32_t n = size_.load(std::memory_order_relaxed);
    return n > capacity_ ? capacity_ : n;
  }
  bool empty() const noexcept { return size() == 0; }
  bool full() const noexcept { return size() >= capacity_; }

  // ---- Speculative-safe reads ---------------------------------------------

  struct FindLE {
    bool found = false;
    K key{};
    V val{};
  };

  // Largest key <= k and its value ("k/v pair for largest key <= K_k",
  // Listings 2-4). found == false when every key exceeds k or the chunk is
  // empty -- the caller then falls back to the head-down pointer or
  // restarts.
  FindLE find_le(K k) const noexcept {
    const std::uint32_t n = size();
    if constexpr (kSorted) {
      // Binary search for the last key <= k.
      std::uint32_t lo = 0, hi = n;  // first index with key > k in [lo, hi]
      while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        if (load_key(mid) <= k) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo == 0) return {};
      return {true, load_key(lo - 1), load_val(lo - 1)};
    } else {
      FindLE best;
      for (std::uint32_t i = 0; i < n; ++i) {
        const K ki = load_key(i);
        if (ki <= k && (!best.found || ki > best.key)) {
          best = {true, ki, load_val(i)};
        }
      }
      return best;
    }
  }

  // Smallest key >= k and its value. found == false when every key is
  // below k or the chunk is empty.
  FindLE find_ge(K k) const noexcept {
    const std::uint32_t n = size();
    if constexpr (kSorted) {
      std::uint32_t lo = 0, hi = n;  // first index with key >= k
      while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        if (load_key(mid) < k) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo == n) return {};
      return {true, load_key(lo), load_val(lo)};
    } else {
      FindLE best;
      for (std::uint32_t i = 0; i < n; ++i) {
        const K ki = load_key(i);
        if (ki >= k && (!best.found || ki < best.key)) {
          best = {true, ki, load_val(i)};
        }
      }
      return best;
    }
  }

  // Entry with the smallest / largest key (found == false when empty).
  FindLE min_entry() const noexcept {
    const std::uint32_t n = size();
    if (n == 0) return {};
    if constexpr (kSorted) {
      return {true, load_key(0), load_val(0)};
    } else {
      FindLE best{true, load_key(0), load_val(0)};
      for (std::uint32_t i = 1; i < n; ++i) {
        const K ki = load_key(i);
        if (ki < best.key) best = {true, ki, load_val(i)};
      }
      return best;
    }
  }

  FindLE max_entry() const noexcept {
    const std::uint32_t n = size();
    if (n == 0) return {};
    if constexpr (kSorted) {
      return {true, load_key(n - 1), load_val(n - 1)};
    } else {
      FindLE best{true, load_key(0), load_val(0)};
      for (std::uint32_t i = 1; i < n; ++i) {
        const K ki = load_key(i);
        if (ki > best.key) best = {true, ki, load_val(i)};
      }
      return best;
    }
  }

  bool contains(K k) const noexcept { return find_index(k) >= 0; }

  std::optional<V> get(K k) const noexcept {
    const std::int64_t i = find_index(k);
    if (i < 0) return std::nullopt;
    return load_val(static_cast<std::uint32_t>(i));
  }

  // Smallest / largest key. Only meaningful when size() > 0; speculative
  // callers must validate before trusting the answer.
  K min_key() const noexcept {
    const std::uint32_t n = size();
    if constexpr (kSorted) {
      return n ? load_key(0) : K{};
    } else {
      K best{};
      bool have = false;
      for (std::uint32_t i = 0; i < n; ++i) {
        const K ki = load_key(i);
        if (!have || ki < best) best = ki, have = true;
      }
      return best;
    }
  }

  K max_key() const noexcept {
    const std::uint32_t n = size();
    if constexpr (kSorted) {
      return n ? load_key(n - 1) : K{};
    } else {
      K best{};
      bool have = false;
      for (std::uint32_t i = 0; i < n; ++i) {
        const K ki = load_key(i);
        if (!have || ki > best) best = ki, have = true;
      }
      return best;
    }
  }

  // ---- Mutators (caller holds the node's write lock) ----------------------

  // Insert a new mapping; the key must not be present. Returns false when
  // the chunk is at capacity (caller must split first).
  bool insert(K k, V v) noexcept {
    const std::uint32_t n = size();  // clamped: see size() comment
    if (n >= capacity_) return false;
    if constexpr (kSorted) {
      std::uint32_t pos = upper_bound(k, n);
      if (n > pos) {
        stats::count(stats::Counter::kChunkShiftedSlots, n - pos);
      }
      for (std::uint32_t i = n; i > pos; --i) {
        store_key(i, load_key(i - 1));
        store_val(i, load_val(i - 1));
      }
      store_key(pos, k);
      store_val(pos, v);
    } else {
      store_key(n, k);
      store_val(n, v);
    }
    size_.store(n + 1, std::memory_order_relaxed);
    return true;
  }

  // Overwrite the value of an existing key. Returns false if absent.
  bool assign(K k, V v) noexcept {
    const std::int64_t i = find_index(k);
    if (i < 0) return false;
    store_val(static_cast<std::uint32_t>(i), v);
    return true;
  }

  // Remove k; if found, optionally report its value. Returns false if
  // absent.
  bool erase(K k, V* out = nullptr) noexcept {
    const std::int64_t idx = find_index(k);
    if (idx < 0) return false;
    const auto i = static_cast<std::uint32_t>(idx);
    if (out != nullptr) *out = load_val(i);
    // Clamped size plus an explicit empty guard: under fault-injection
    // mutations a racing writer can shrink the chunk between find_index and
    // here; n - 1 must never wrap and the shift loop must stay in bounds.
    const std::uint32_t n = size();
    if (n == 0) return false;
    if constexpr (kSorted) {
      if (n > i + 1) {
        stats::count(stats::Counter::kChunkShiftedSlots, n - i - 1);
      }
      for (std::uint32_t j = i + 1; j < n; ++j) {
        store_key(j - 1, load_key(j));
        store_val(j - 1, load_val(j));
      }
    } else {
      store_key(i, load_key(n - 1));
      store_val(i, load_val(n - 1));
    }
    size_.store(n - 1, std::memory_order_relaxed);
    return true;
  }

  void clear() noexcept { size_.store(0, std::memory_order_relaxed); }

  // ---- Structural operations (both chunks' write locks held) --------------

  // Move every element with key > pivot into dst (which must be empty and
  // have sufficient capacity). Used when Insert splits a node at the new
  // key. Order among chunks is preserved: dst holds the strictly-greater
  // suffix.
  template <Layout kOther>
  void steal_greater(K pivot, VectorMap<K, V, kOther>& dst) noexcept {
    const std::uint32_t n = size();  // clamped: see size() comment
    if constexpr (kSorted) {
      const std::uint32_t pos = upper_bound(pivot, n);
      for (std::uint32_t i = pos; i < n; ++i) {
        dst.insert(load_key(i), load_val(i));
      }
      size_.store(pos, std::memory_order_relaxed);
    } else {
      std::uint32_t w = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        const K ki = load_key(i);
        const V vi = load_val(i);
        if (ki > pivot) {
          dst.insert(ki, vi);
        } else {
          store_key(w, ki);
          store_val(w, vi);
          ++w;
        }
      }
      size_.store(w, std::memory_order_relaxed);
    }
  }

  // Move the upper half (by key order) into dst; returns dst's minimum key.
  // Used when an insert finds the chunk at capacity. Requires size() >= 2.
  template <Layout kOther>
  K split_half(VectorMap<K, V, kOther>& dst) noexcept {
    const K med = median_key();
    steal_greater(med, dst);
    return dst.min_key();
  }

  // Append every element of src (whose keys are all greater than ours --
  // src is our right neighbor). src is left empty.
  template <Layout kOther>
  void merge_from(VectorMap<K, V, kOther>& src) noexcept {
    src.template drain_into<kLayout>(*this);
  }

  // Implementation helper for merge_from (needs access to src internals).
  template <Layout kOther>
  void drain_into(VectorMap<K, V, kOther>& dst) noexcept {
    const std::uint32_t n = size();  // clamped: see size() comment
    if constexpr (kSorted) {
      for (std::uint32_t i = 0; i < n; ++i) dst.insert(load_key(i),
                                                       load_val(i));
    } else {
      // Keys within an unsorted chunk are unordered; appending to a sorted
      // dst via insert() keeps dst sorted either way.
      for (std::uint32_t i = 0; i < n; ++i) dst.insert(load_key(i),
                                                       load_val(i));
    }
    size_.store(0, std::memory_order_relaxed);
  }

  // Writer-context (or quiescent) iteration in arbitrary order.
  template <class Fn>
  void for_each(Fn&& fn) const {
    const std::uint32_t n = size();
    for (std::uint32_t i = 0; i < n; ++i) fn(load_key(i), load_val(i));
  }

  // Writer-context: replace the value of every mapping with key in
  // [lo, hi] by fn(key, value), in one pass (unspecified order). Returns
  // the number of mappings transformed.
  template <class Fn>
  std::uint32_t transform_range(K lo, K hi, Fn&& fn) {
    const std::uint32_t n = size_.load(std::memory_order_relaxed);
    std::uint32_t visited = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const K k = load_key(i);
      if (lo <= k && k <= hi) {
        store_val(i, fn(k, load_val(i)));
        ++visited;
      }
    }
    return visited;
  }

  // Quiescent iteration in ascending key order (used by range queries under
  // write locks, validation, and iteration APIs).
  template <class Fn>
  void for_each_ordered(Fn&& fn) const {
    const std::uint32_t n = size();
    if constexpr (kSorted) {
      for (std::uint32_t i = 0; i < n; ++i) fn(load_key(i), load_val(i));
    } else {
      thread_local std::vector<std::uint32_t> order;
      order.clear();
      for (std::uint32_t i = 0; i < n; ++i) order.push_back(i);
      std::sort(order.begin(), order.end(),
                [this](std::uint32_t a, std::uint32_t b) {
                  return load_key(a) < load_key(b);
                });
      for (std::uint32_t i : order) fn(load_key(i), load_val(i));
    }
  }

 private:
  template <class, class, Layout>
  friend class VectorMap;

  K load_key(std::uint32_t i) const noexcept {
    return keys_[i].load(std::memory_order_relaxed);
  }
  V load_val(std::uint32_t i) const noexcept {
    return vals_[i].load(std::memory_order_relaxed);
  }
  void store_key(std::uint32_t i, K k) noexcept {
    keys_[i].store(k, std::memory_order_relaxed);
  }
  void store_val(std::uint32_t i, V v) noexcept {
    vals_[i].store(v, std::memory_order_relaxed);
  }

  // First index whose key is > k, assuming sorted layout.
  std::uint32_t upper_bound(K k, std::uint32_t n) const noexcept {
    std::uint32_t lo = 0, hi = n;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (load_key(mid) <= k) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Index of k, or -1.
  std::int64_t find_index(K k) const noexcept {
    const std::uint32_t n = size();
    if constexpr (kSorted) {
      std::uint32_t lo = 0, hi = n;
      while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        const K km = load_key(mid);
        if (km == k) return mid;
        if (km < k) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return -1;
    } else {
      for (std::uint32_t i = 0; i < n; ++i) {
        if (load_key(i) == k) return i;
      }
      return -1;
    }
  }

  // Key such that exactly floor(n/2) elements are <= it (writer context).
  K median_key() const {
    // Clamped size plus an empty guard: under fault-injection mutations a
    // racing writer can empty the chunk; (n - 1) / 2 must never wrap.
    const std::uint32_t n = size();
    if (n == 0) return K{};
    if constexpr (kSorted) {
      return load_key((n - 1) / 2);
    } else {
      thread_local std::vector<K> scratch;
      scratch.clear();
      for (std::uint32_t i = 0; i < n; ++i) scratch.push_back(load_key(i));
      auto mid = scratch.begin() + (n - 1) / 2;
      std::nth_element(scratch.begin(), mid, scratch.end());
      return *mid;
    }
  }

  std::atomic<K>* keys_;
  std::atomic<V>* vals_;
  const std::uint32_t capacity_;
  std::atomic<std::uint32_t> size_;
};

}  // namespace sv::vectormap
