// VectorMap: the fixed-capacity chunk container of Listing 1 -- two
// correlated arrays (keys, vals) of capacity 2*targetSize plus a size field.
//
// Storage is non-owning: the skip vector allocates each node as one
// contiguous block [node header | keys | vals] so that scanning a chunk is a
// linear walk (the locality the paper is about), and hands the array
// pointers to this view.
//
// Elements are std::atomic<K>/std::atomic<V> accessed with relaxed ordering.
// Mutators run only under the node's write lock; readers run speculatively
// under a sequence-lock read section and re-validate afterwards, so reads
// here may observe torn *sets* of elements but never torn elements, and all
// loops are bounded by `capacity` regardless of what a racing writer does
// (the termination requirement of §IV-C).
//
// Two layouts (Fig. 7b), selected PER CHUNK at runtime by a tag that lives
// next to size in the node header (docs/TUNING.md "Adaptive mode"):
//   Sorted:   keys ascending; O(log T) lookup, O(T) insert/erase (shifts).
//   Unsorted: append/swap-with-last; O(T) lookup, O(1) insert/erase writes.
//
// The tag is written only under the node's write lock -- layout conversions
// happen at split/merge/fold time, where the freeze bit already rewrites the
// chunk wholesale -- and is loaded (relaxed) once per search inside the
// seqlock read section. A speculative reader racing a conversion may
// dispatch the wrong kernel for the bytes it reads; every kernel is bounded
// by `n` and returns only kNpos or an index < n, so the result is merely
// wrong, never unsafe, and SequenceLock::validate rejects it before it
// escapes -- the same argument that already covers torn element sets.
//
// Vectorized speculative reads (kRawScan). When K is uint32_t/uint64_t and
// std::atomic<K> is layout-identical to K and always lock-free, the search
// helpers reinterpret the key array as a plain `const K*` and run the
// sv::simd kernels (src/common/simd.h) over it instead of per-element
// atomic loads. Why this is sound under the speculation protocol:
//
//   * std::atomic<K> with sizeof/alignof equal to K and
//     is_always_lock_free holds exactly one K object at the same address,
//     so the reinterpreted loads read the same bytes the relaxed
//     element loads would.
//   * The scalar path already uses memory_order_relaxed loads: no
//     ordering is lost by reading the bytes directly. The required
//     ordering lives entirely in the sequence lock (acquire fence inside
//     SequenceLock::validate).
//   * A racing writer can make the raw scan observe torn *sets* of
//     elements -- exactly what the relaxed atomic path already tolerates.
//     Unlike atomic loads, an individual raw load racing a store is
//     formally a data race in the C++ abstract machine; in practice (and
//     on every ISA we target) an aligned word load returns some value,
//     the kernels are bounded and return only kNpos or an index < n, and
//     SequenceLock::validate rejects every racy read section before a
//     result escapes. This is the standard seqlock idiom; it is
//     intentionally *not* visible to ThreadSanitizer as synchronized,
//     so kRawScan is compiled out under TSan
//     (tests/simd_test.cc asserts this) and the relaxed atomic-load
//     scalar path -- always compiled -- is selected instead.
//
// sv::stats attribution: every routed chunk search counts kSimdSearches
// (raw-scan builds) or kScalarFallbacks (TSan / SV_FORCE_SCALAR / exotic
// key types), so JSON reports show which path a run actually took.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/simd.h"
#include "stats/stats.h"
#include "vectormap/layout.h"

namespace sv::vectormap {

namespace detail {

// ThreadSanitizer cannot see seqlock-protected raw reads as synchronized;
// the raw-scan path is compiled out under TSan so its reports stay
// meaningful (SV_SANITIZE=thread).
inline constexpr bool kTsanActive =
#if defined(__SANITIZE_THREAD__)
    true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif

}  // namespace detail

template <class K, class V>
class VectorMap {
  static_assert(std::is_trivially_copyable_v<K> &&
                    std::is_trivially_copyable_v<V>,
                "VectorMap elements must be trivially copyable: they are "
                "read speculatively under sequence locks");

 public:
  // Whether searches scan the key array as raw memory through the sv::simd
  // kernels (see the memory-model note at the top of this header). False
  // under TSan, under SV_FORCE_SCALAR (simd::vectorized_v is then false),
  // and for key types the kernels do not cover -- those builds take the
  // relaxed atomic-load scalar path below.
  static constexpr bool kRawScan =
      !detail::kTsanActive && simd::vectorized_v<K> &&
      sizeof(std::atomic<K>) == sizeof(K) &&
      alignof(std::atomic<K>) == alignof(K) &&
      std::atomic<K>::is_always_lock_free;

  VectorMap(std::atomic<K>* keys, std::atomic<V>* vals, std::uint32_t capacity,
            Layout layout = Layout::kSorted) noexcept
      : keys_(keys), vals_(vals), capacity_(capacity), size_(0),
        layout_(layout) {}

  VectorMap(const VectorMap&) = delete;
  VectorMap& operator=(const VectorMap&) = delete;

  std::uint32_t capacity() const noexcept { return capacity_; }

  // The chunk's current layout tag. Safe to load speculatively: the tag
  // only changes under the write lock, and a stale load yields a bounded
  // wrong-kernel search that seqlock validation rejects.
  Layout layout() const noexcept {
    return layout_.load(std::memory_order_relaxed);
  }
  bool sorted() const noexcept { return layout() == Layout::kSorted; }

  // Retag without moving elements (writer context). Only legal when the
  // stored order already satisfies the new tag: any order is a valid
  // Unsorted chunk, and an empty chunk satisfies either tag.
  void set_layout(Layout l) noexcept {
    layout_.store(l, std::memory_order_relaxed);
  }

  // Convert to the requested layout, physically reordering if needed
  // (writer context: the node's write lock is held, the seqlock release
  // publishes the rewrite). Returns true when the tag changed. Sorted ->
  // Unsorted is a pure retag (a sorted array is a valid unsorted one);
  // Unsorted -> Sorted gathers, sorts, and stores back.
  bool convert_to(Layout l) noexcept {
    if (layout() == l) return false;
    if (l == Layout::kSorted) {
      const std::uint32_t n = size();
      thread_local std::vector<std::pair<K, V>> scratch;
      scratch.clear();
      for (std::uint32_t i = 0; i < n; ++i) {
        scratch.emplace_back(load_key(i), load_val(i));
      }
      std::sort(scratch.begin(), scratch.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (std::uint32_t i = 0; i < n; ++i) {
        store_key(i, scratch[i].first);
        store_val(i, scratch[i].second);
      }
    }
    layout_.store(l, std::memory_order_relaxed);
    return true;
  }

  // Clamped size: a speculative reader may race with a writer, but must
  // never index out of bounds.
  std::uint32_t size() const noexcept {
    const std::uint32_t n = size_.load(std::memory_order_relaxed);
    return n > capacity_ ? capacity_ : n;
  }
  bool empty() const noexcept { return size() == 0; }
  bool full() const noexcept { return size() >= capacity_; }

  // ---- Speculative-safe reads ---------------------------------------------

  struct FindLE {
    bool found = false;
    K key{};
    V val{};
  };

  // Largest key <= k and its value ("k/v pair for largest key <= K_k",
  // Listings 2-4). found == false when every key exceeds k or the chunk is
  // empty -- the caller then falls back to the head-down pointer or
  // restarts.
  FindLE find_le(K k) const noexcept {
    const std::uint32_t n = size();
    const std::uint32_t i = search_le(n, k);
    if (i >= n) return {};
    return {true, load_key(i), load_val(i)};
  }

  // Smallest key >= k and its value. found == false when every key is
  // below k or the chunk is empty.
  FindLE find_ge(K k) const noexcept {
    const std::uint32_t n = size();
    const std::uint32_t i = search_ge(n, k);
    if (i >= n) return {};
    return {true, load_key(i), load_val(i)};
  }

  // Entry with the smallest / largest key (found == false when empty).
  FindLE min_entry() const noexcept {
    const std::uint32_t n = size();
    const std::uint32_t i = search_min(n);
    if (i >= n) return {};
    return {true, load_key(i), load_val(i)};
  }

  FindLE max_entry() const noexcept {
    const std::uint32_t n = size();
    const std::uint32_t i = search_max(n);
    if (i >= n) return {};
    return {true, load_key(i), load_val(i)};
  }

  bool contains(K k) const noexcept { return find_index(k) >= 0; }

  std::optional<V> get(K k) const noexcept {
    const std::int64_t i = find_index(k);
    if (i < 0) return std::nullopt;
    return load_val(static_cast<std::uint32_t>(i));
  }

  // Smallest / largest key. Only meaningful when size() > 0; speculative
  // callers must validate before trusting the answer.
  K min_key() const noexcept {
    const std::uint32_t n = size();
    const std::uint32_t i = search_min(n);
    return i < n ? load_key(i) : K{};
  }

  K max_key() const noexcept {
    const std::uint32_t n = size();
    const std::uint32_t i = search_max(n);
    return i < n ? load_key(i) : K{};
  }

  // ---- Mutators (caller holds the node's write lock) ----------------------

  // Insert a new mapping; the key must not be present. Returns false when
  // the chunk is at capacity (caller must split first).
  bool insert(K k, V v) noexcept {
    const std::uint32_t n = size();  // clamped: see size() comment
    if (n >= capacity_) return false;
    if (sorted()) {
      std::uint32_t pos = sorted_upper_bound(n, k);
      if (n > pos) {
        stats::count(stats::Counter::kChunkShiftedSlots, n - pos);
      }
      for (std::uint32_t i = n; i > pos; --i) {
        store_key(i, load_key(i - 1));
        store_val(i, load_val(i - 1));
      }
      store_key(pos, k);
      store_val(pos, v);
    } else {
      store_key(n, k);
      store_val(n, v);
    }
    size_.store(n + 1, std::memory_order_relaxed);
    return true;
  }

  // Overwrite the value of an existing key. Returns false if absent.
  bool assign(K k, V v) noexcept {
    const std::int64_t i = find_index(k);
    if (i < 0) return false;
    store_val(static_cast<std::uint32_t>(i), v);
    return true;
  }

  // Remove k; if found, optionally report its value. Returns false if
  // absent.
  bool erase(K k, V* out = nullptr) noexcept {
    const std::int64_t idx = find_index(k);
    if (idx < 0) return false;
    const auto i = static_cast<std::uint32_t>(idx);
    if (out != nullptr) *out = load_val(i);
    // Clamped size plus an explicit empty guard: under fault-injection
    // mutations a racing writer can shrink the chunk between find_index and
    // here; n - 1 must never wrap and the shift loop must stay in bounds.
    const std::uint32_t n = size();
    if (n == 0) return false;
    if (sorted()) {
      if (n > i + 1) {
        stats::count(stats::Counter::kChunkShiftedSlots, n - i - 1);
      }
      for (std::uint32_t j = i + 1; j < n; ++j) {
        store_key(j - 1, load_key(j));
        store_val(j - 1, load_val(j));
      }
    } else {
      store_key(i, load_key(n - 1));
      store_val(i, load_val(n - 1));
    }
    size_.store(n - 1, std::memory_order_relaxed);
    return true;
  }

  void clear() noexcept { size_.store(0, std::memory_order_relaxed); }

  // ---- Structural operations (both chunks' write locks held) --------------

  // Move every element with key > pivot into dst (which must be empty and
  // have sufficient capacity). Used when Insert splits a node at the new
  // key. Order among chunks is preserved: dst holds the strictly-greater
  // suffix. The two chunks may carry different layout tags.
  void steal_greater(K pivot, VectorMap& dst) noexcept {
    const std::uint32_t n = size();  // clamped: see size() comment
    if (sorted()) {
      const std::uint32_t pos = sorted_upper_bound(n, pivot);
      for (std::uint32_t i = pos; i < n; ++i) {
        dst.insert(load_key(i), load_val(i));
      }
      size_.store(pos, std::memory_order_relaxed);
    } else {
      std::uint32_t w = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        const K ki = load_key(i);
        const V vi = load_val(i);
        if (ki > pivot) {
          dst.insert(ki, vi);
        } else {
          store_key(w, ki);
          store_val(w, vi);
          ++w;
        }
      }
      size_.store(w, std::memory_order_relaxed);
    }
  }

  // Move the upper half (by key order) into dst; returns dst's minimum key.
  // Used when an insert finds the chunk at capacity. Requires size() >= 2.
  K split_half(VectorMap& dst) noexcept {
    const K med = median_key();
    steal_greater(med, dst);
    return dst.min_key();
  }

  // Append every element of src (whose keys are all greater than ours --
  // src is our right neighbor). src is left empty.
  void merge_from(VectorMap& src) noexcept { src.drain_into(*this); }

  // Implementation helper for merge_from (needs access to src internals).
  // Keys within an unsorted chunk are unordered; appending to a sorted dst
  // via insert() keeps dst sorted either way.
  void drain_into(VectorMap& dst) noexcept {
    const std::uint32_t n = size();  // clamped: see size() comment
    for (std::uint32_t i = 0; i < n; ++i) {
      dst.insert(load_key(i), load_val(i));
    }
    size_.store(0, std::memory_order_relaxed);
  }

  // Writer-context (or quiescent) iteration in arbitrary order.
  template <class Fn>
  void for_each(Fn&& fn) const {
    const std::uint32_t n = size();
    for (std::uint32_t i = 0; i < n; ++i) fn(load_key(i), load_val(i));
  }

  // Writer-context: replace the value of every mapping with key in
  // [lo, hi] by fn(key, value), in one pass (unspecified order). Returns
  // the number of mappings transformed.
  template <class Fn>
  std::uint32_t transform_range(K lo, K hi, Fn&& fn) {
    const std::uint32_t n = size_.load(std::memory_order_relaxed);
    std::uint32_t visited = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const K k = load_key(i);
      if (lo <= k && k <= hi) {
        store_val(i, fn(k, load_val(i)));
        ++visited;
      }
    }
    return visited;
  }

  // Quiescent iteration in ascending key order (used by range queries under
  // write locks, validation, and iteration APIs).
  template <class Fn>
  void for_each_ordered(Fn&& fn) const {
    const std::uint32_t n = size();
    if (sorted()) {
      for (std::uint32_t i = 0; i < n; ++i) fn(load_key(i), load_val(i));
    } else {
      thread_local std::vector<std::uint32_t> order;
      order.clear();
      for (std::uint32_t i = 0; i < n; ++i) order.push_back(i);
      std::sort(order.begin(), order.end(),
                [this](std::uint32_t a, std::uint32_t b) {
                  return load_key(a) < load_key(b);
                });
      for (std::uint32_t i : order) fn(load_key(i), load_val(i));
    }
  }

 private:
  K load_key(std::uint32_t i) const noexcept {
    return keys_[i].load(std::memory_order_relaxed);
  }
  V load_val(std::uint32_t i) const noexcept {
    return vals_[i].load(std::memory_order_relaxed);
  }
  void store_key(std::uint32_t i, K k) noexcept {
    keys_[i].store(k, std::memory_order_relaxed);
  }
  void store_val(std::uint32_t i, V v) noexcept {
    vals_[i].store(v, std::memory_order_relaxed);
  }

  // The key array viewed as plain memory; only used when kRawScan proved
  // the layouts identical (see the header comment for why this is sound
  // under the speculation protocol).
  const K* raw_keys() const noexcept {
    return reinterpret_cast<const K*>(keys_);
  }

  // One routed chunk search is about to run; attribute it to the compiled
  // path so JSON reports show what production runs actually take.
  static void note_search() noexcept {
    if constexpr (kRawScan) {
      stats::count(stats::Counter::kSimdSearches);
    } else {
      stats::count(stats::Counter::kScalarFallbacks);
    }
  }

  // ---- Shared search helpers ----------------------------------------------
  // All searches below operate on the first n slots (n already clamped by
  // size()) and return an index < n, or simd::kNpos for "no qualifying
  // element". Every public read and mutator lookup routes through these, so
  // the SIMD dispatch lives in exactly one place per shape. Each helper
  // loads the layout tag once and branches on it: dispatching on the tag
  // inside the seqlock read section is safe because a stale tag only
  // selects the wrong (still bounded) kernel, and validation rejects the
  // read section.

  // Sorted layout: first index with key > k / >= k.
  std::uint32_t sorted_upper_bound(std::uint32_t n, K k) const noexcept {
    if constexpr (kRawScan) {
      return simd::upper_bound(raw_keys(), n, k);
    } else {
      std::uint32_t lo = 0, hi = n;
      while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        if (load_key(mid) <= k) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    }
  }

  std::uint32_t sorted_lower_bound(std::uint32_t n, K k) const noexcept {
    if constexpr (kRawScan) {
      return simd::lower_bound(raw_keys(), n, k);
    } else {
      std::uint32_t lo = 0, hi = n;
      while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        if (load_key(mid) < k) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    }
  }

  // Largest key <= k, layout-aware.
  std::uint32_t search_le(std::uint32_t n, K k) const noexcept {
    note_search();
    if (sorted()) {
      const std::uint32_t ub = sorted_upper_bound(n, k);
      return ub == 0 ? simd::kNpos : ub - 1;
    }
    if constexpr (kRawScan) {
      return simd::find_le(raw_keys(), n, k);
    } else {
      std::uint32_t best = simd::kNpos;
      K best_key{};
      for (std::uint32_t i = 0; i < n; ++i) {
        const K ki = load_key(i);
        if (ki <= k && (best == simd::kNpos || ki > best_key)) {
          best = i;
          best_key = ki;
        }
      }
      return best;
    }
  }

  // Smallest key >= k, layout-aware.
  std::uint32_t search_ge(std::uint32_t n, K k) const noexcept {
    note_search();
    if (sorted()) {
      const std::uint32_t lb = sorted_lower_bound(n, k);
      return lb < n ? lb : simd::kNpos;
    }
    if constexpr (kRawScan) {
      return simd::find_ge(raw_keys(), n, k);
    } else {
      std::uint32_t best = simd::kNpos;
      K best_key{};
      for (std::uint32_t i = 0; i < n; ++i) {
        const K ki = load_key(i);
        if (ki >= k && (best == simd::kNpos || ki < best_key)) {
          best = i;
          best_key = ki;
        }
      }
      return best;
    }
  }

  // Exact match, layout-aware.
  std::uint32_t search_eq(std::uint32_t n, K k) const noexcept {
    note_search();
    if (sorted()) {
      const std::uint32_t lb = sorted_lower_bound(n, k);
      return (lb < n && load_key(lb) == k) ? lb : simd::kNpos;
    }
    if constexpr (kRawScan) {
      return simd::find_eq(raw_keys(), n, k);
    } else {
      for (std::uint32_t i = 0; i < n; ++i) {
        if (load_key(i) == k) return i;
      }
      return simd::kNpos;
    }
  }

  // Index of the smallest / largest key (kNpos when n == 0). kRawScan
  // implies an unsigned integral K, so the numeric_limits probes below are
  // well-defined there; other key types take the generic scan.
  std::uint32_t search_min(std::uint32_t n) const noexcept {
    if (sorted()) {
      return n != 0 ? 0 : simd::kNpos;
    }
    if constexpr (kRawScan) {
      if (n == 0) return simd::kNpos;
      return simd::find_ge(raw_keys(), n, K{});
    } else {
      std::uint32_t best = simd::kNpos;
      K best_key{};
      for (std::uint32_t i = 0; i < n; ++i) {
        const K ki = load_key(i);
        if (best == simd::kNpos || ki < best_key) {
          best = i;
          best_key = ki;
        }
      }
      return best;
    }
  }

  std::uint32_t search_max(std::uint32_t n) const noexcept {
    if (sorted()) {
      return n != 0 ? n - 1 : simd::kNpos;
    }
    if constexpr (kRawScan) {
      if (n == 0) return simd::kNpos;
      return simd::find_le(raw_keys(), n, std::numeric_limits<K>::max());
    } else {
      std::uint32_t best = simd::kNpos;
      K best_key{};
      for (std::uint32_t i = 0; i < n; ++i) {
        const K ki = load_key(i);
        if (best == simd::kNpos || ki > best_key) {
          best = i;
          best_key = ki;
        }
      }
      return best;
    }
  }

  // Index of k, or -1.
  std::int64_t find_index(K k) const noexcept {
    const std::uint32_t i = search_eq(size(), k);
    return i == simd::kNpos ? -1 : static_cast<std::int64_t>(i);
  }

  // Key such that exactly floor(n/2) elements are <= it (writer context).
  K median_key() const {
    // Clamped size plus an empty guard: under fault-injection mutations a
    // racing writer can empty the chunk; (n - 1) / 2 must never wrap.
    const std::uint32_t n = size();
    if (n == 0) return K{};
    if (sorted()) return load_key((n - 1) / 2);
    thread_local std::vector<K> scratch;
    scratch.clear();
    for (std::uint32_t i = 0; i < n; ++i) scratch.push_back(load_key(i));
    auto mid = scratch.begin() + (n - 1) / 2;
    std::nth_element(scratch.begin(), mid, scratch.end());
    return *mid;
  }

  std::atomic<K>* keys_;
  std::atomic<V>* vals_;
  const std::uint32_t capacity_;
  std::atomic<std::uint32_t> size_;
  // Per-chunk layout tag: written only under the node's write lock, read
  // speculatively (see header comment).
  std::atomic<Layout> layout_;
};

}  // namespace sv::vectormap
