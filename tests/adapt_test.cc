// Unit tests for the self-tuning chunk policy (core/adapt.h): the pure
// decide() function fed synthetic counter windows. Covers the hysteresis
// floor, both layout flip directions, the hold band between them, target
// grow/shrink triggers, and the [base/2, 2*base] clamp.
#include "core/adapt.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace sv::core::adapt {
namespace {

using vectormap::Layout;

constexpr std::uint32_t kBase = 32;

Signals reads_only(std::uint64_t n) { return Signals{n, 0, 0, 0}; }
Signals writes_only(std::uint64_t n) { return Signals{0, n, 0, 0}; }

TEST(AdaptDecide, HoldsBelowMinSamples) {
  // 63 samples < min_samples=64: whatever the skew, nothing changes.
  const Decision d =
      decide(reads_only(63), Layout::kUnsorted, kBase, kBase);
  EXPECT_EQ(d.layout, Layout::kUnsorted);
  EXPECT_EQ(d.target, kBase);
  const Decision w =
      decide(writes_only(63), Layout::kSorted, kBase, kBase);
  EXPECT_EQ(w.layout, Layout::kSorted);
}

TEST(AdaptDecide, ReadDominatedFlipsToSorted) {
  const Decision d =
      decide(reads_only(256), Layout::kUnsorted, kBase, kBase);
  EXPECT_EQ(d.layout, Layout::kSorted);
  EXPECT_EQ(d.target, kBase) << "layout flip alone must not resize";
}

TEST(AdaptDecide, ContendedWriteDominanceFlipsToUnsorted) {
  // Write skew alone is not enough: the unsorted payoff is a shorter
  // seqlock write section, which only exists under contention. 256 writes
  // with >= 256/16 retries clears the gate.
  const Decision d = decide(Signals{0, 256, /*retries=*/16, 0},
                            Layout::kSorted, kBase, kBase);
  EXPECT_EQ(d.layout, Layout::kUnsorted);
  EXPECT_EQ(d.target, kBase);
}

TEST(AdaptDecide, UncontendedWriteDominanceHoldsSorted) {
  const Decision d =
      decide(writes_only(256), Layout::kSorted, kBase, kBase);
  EXPECT_EQ(d.layout, Layout::kSorted)
      << "no retries -> no contention -> the sorted shift is the cheaper "
         "point write; hold";
  // One retry short of the writes/contended_writes_per_retry bar holds too.
  const Decision below = decide(Signals{0, 256, /*retries=*/15, 0},
                                Layout::kSorted, kBase, kBase);
  EXPECT_EQ(below.layout, Layout::kSorted);
}

TEST(AdaptDecide, ContentionGateDisabledByZero) {
  Policy p;
  p.contended_writes_per_retry = 0;  // pure write-skew policy
  const Decision d =
      decide(writes_only(256), Layout::kSorted, kBase, kBase, p);
  EXPECT_EQ(d.layout, Layout::kUnsorted);
}

TEST(AdaptDecide, BalancedMixHoldsCurrentLayout) {
  // 2:1 either way is inside the flip_ratio=4 dead band.
  const Signals r2w1{200, 100, 0, 0};
  const Signals w2r1{100, 200, 0, 0};
  EXPECT_EQ(decide(r2w1, Layout::kUnsorted, kBase, kBase).layout,
            Layout::kUnsorted);
  EXPECT_EQ(decide(r2w1, Layout::kSorted, kBase, kBase).layout,
            Layout::kSorted);
  EXPECT_EQ(decide(w2r1, Layout::kSorted, kBase, kBase).layout,
            Layout::kSorted);
  EXPECT_EQ(decide(w2r1, Layout::kUnsorted, kBase, kBase).layout,
            Layout::kUnsorted);
}

TEST(AdaptDecide, FlipThresholdIsInclusive) {
  // Exactly reads == flip_ratio * writes flips; one read fewer holds.
  const Signals at{400, 100, 0, 0};
  const Signals below{399, 100, 0, 0};
  EXPECT_EQ(decide(at, Layout::kUnsorted, kBase, kBase).layout,
            Layout::kSorted);
  EXPECT_EQ(decide(below, Layout::kUnsorted, kBase, kBase).layout,
            Layout::kUnsorted);
}

TEST(AdaptDecide, SplitCadenceGrowsTargetWhenWriteDominated) {
  Signals s{10, 100, 0, /*splits=*/2};
  const Decision d = decide(s, Layout::kUnsorted, kBase, kBase);
  EXPECT_EQ(d.target, 2 * kBase);
  // Same cadence while read-dominated does NOT grow: splitting under reads
  // is just the map growing, not write pressure to amortize.
  Signals r{200, 10, 0, /*splits=*/2};
  EXPECT_EQ(decide(r, Layout::kSorted, kBase, kBase).target, kBase);
}

TEST(AdaptDecide, RetryPressureShrinksTarget) {
  Signals s{100, 100, /*retries=*/32, 0};
  const Decision d = decide(s, Layout::kSorted, kBase, kBase);
  EXPECT_EQ(d.target, kBase / 2);
  // One retry short of the threshold holds.
  Signals below{100, 100, /*retries=*/31, 0};
  EXPECT_EQ(decide(below, Layout::kSorted, kBase, kBase).target, kBase);
}

TEST(AdaptDecide, GrowWinsOverShrinkInOneWindow) {
  // Both triggers fire: the split/grow branch is checked first, so a chunk
  // under simultaneous write and retry pressure grows (fewer, larger
  // rewrites) rather than oscillating.
  Signals s{10, 100, /*retries=*/64, /*splits=*/4};
  EXPECT_EQ(decide(s, Layout::kUnsorted, kBase, kBase).target, 2 * kBase);
}

TEST(AdaptDecide, TargetClampsToTwiceBase) {
  // Already at the ceiling: another grow window is a no-op.
  Signals s{0, 200, 0, /*splits=*/8};
  EXPECT_EQ(decide(s, Layout::kUnsorted, 2 * kBase, kBase).target, 2 * kBase);
}

TEST(AdaptDecide, TargetClampsToHalfBase) {
  Signals s{100, 100, /*retries=*/100, 0};
  EXPECT_EQ(decide(s, Layout::kSorted, kBase / 2, kBase).target, kBase / 2);
}

TEST(AdaptDecide, DegenerateBaseTargetNeverReachesZero) {
  // base_target=1: the floor is max(1, base/2) = 1, so shrink cannot
  // produce an empty chunk target.
  Signals s{100, 100, /*retries=*/100, 0};
  const Decision d = decide(s, Layout::kSorted, 1, 1);
  EXPECT_EQ(d.target, 1u);
  // And grow still doubles to the 2*base ceiling.
  Signals g{0, 200, 0, /*splits=*/8};
  EXPECT_EQ(decide(g, Layout::kUnsorted, 1, 1).target, 2u);
}

TEST(AdaptDecide, CustomPolicyKnobsAreHonored) {
  Policy p;
  p.min_samples = 10;
  p.flip_ratio = 2;
  p.grow_splits = 1;
  p.shrink_retries = 4;
  const Decision d =
      decide(Signals{8, 4, 0, 0}, Layout::kUnsorted, kBase, kBase, p);
  EXPECT_EQ(d.layout, Layout::kSorted) << "2:1 flips under flip_ratio=2";
  const Decision g =
      decide(Signals{0, 20, 0, 1}, Layout::kUnsorted, kBase, kBase, p);
  EXPECT_EQ(g.target, 2 * kBase);
  const Decision sh =
      decide(Signals{10, 10, 4, 0}, Layout::kSorted, kBase, kBase, p);
  EXPECT_EQ(sh.target, kBase / 2);
}

TEST(AdaptDecide, DecisionEquality) {
  const Decision a{Layout::kSorted, 32};
  const Decision b{Layout::kSorted, 32};
  const Decision c{Layout::kUnsorted, 32};
  const Decision d{Layout::kSorted, 16};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

}  // namespace
}  // namespace sv::core::adapt
