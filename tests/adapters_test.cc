// Tests for the set and priority-queue adapters, including the concurrent
// exactly-once pop guarantee.
#include "core/adapters.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace sv::core {
namespace {

Config Tiny() {
  Config c;
  c.layer_count = 4;
  c.target_data_vector_size = 4;
  c.target_index_vector_size = 4;
  return c;
}

TEST(SkipVectorSet, BasicSemantics) {
  SkipVectorSet<std::uint64_t> s(Tiny());
  EXPECT_FALSE(s.contains(3));
  EXPECT_TRUE(s.add(3));
  EXPECT_FALSE(s.add(3));
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.add(1));
  EXPECT_TRUE(s.add(7));
  EXPECT_EQ(s.first().value(), 1u);
  EXPECT_EQ(s.last().value(), 7u);
  std::vector<std::uint64_t> keys;
  s.for_each([&](std::uint64_t k) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 3, 7}));
  EXPECT_EQ(s.range_for_each(2, 7, [](std::uint64_t) {}), 2u);
  EXPECT_TRUE(s.erase(3));
  EXPECT_FALSE(s.erase(3));
  EXPECT_EQ(s.size_approx(), 2u);
  EXPECT_TRUE(s.validate());
}

TEST(SkipVectorSet, OracleModelCheck) {
  SkipVectorSet<std::uint64_t> s(Tiny());
  std::set<std::uint64_t> oracle;
  Xoshiro256 rng(21);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = rng.next_below(400);
    switch (rng.next_below(3)) {
      case 0:
        ASSERT_EQ(s.add(k), oracle.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(s.erase(k), oracle.erase(k) > 0);
        break;
      default:
        ASSERT_EQ(s.contains(k), oracle.count(k) > 0);
    }
  }
  EXPECT_EQ(s.size_approx(), oracle.size());
}

TEST(PriorityQueue, SequentialOrdering) {
  SkipVectorPriorityQueue<std::uint64_t, std::uint64_t> pq(Tiny());
  EXPECT_FALSE(pq.pop_min().has_value());
  EXPECT_FALSE(pq.peek_min().has_value());
  Xoshiro256 rng(9);
  std::set<std::uint64_t> oracle;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t k = rng.next();
    if (oracle.insert(k).second) {
      ASSERT_TRUE(pq.push(k, k * 2));
    }
  }
  EXPECT_EQ(pq.peek_min()->first, *oracle.begin());
  std::uint64_t prev = 0;
  bool have_prev = false;
  while (auto e = pq.pop_min()) {
    EXPECT_EQ(e->second, e->first * 2);
    if (have_prev) {
      EXPECT_GT(e->first, prev);
    }
    prev = e->first;
    have_prev = true;
    ASSERT_EQ(*oracle.begin(), e->first);
    oracle.erase(oracle.begin());
  }
  EXPECT_TRUE(oracle.empty());
}

TEST(PriorityQueue, ConcurrentPopsClaimExactlyOnce) {
  SkipVectorPriorityQueue<std::uint64_t, std::uint64_t> pq(Tiny());
  constexpr std::uint64_t kItems = 8192;
  for (std::uint64_t k = 0; k < kItems; ++k) ASSERT_TRUE(pq.push(k, k + 1));

  std::mutex mu;
  std::vector<std::uint64_t> popped;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      std::vector<std::uint64_t> local;
      while (auto e = pq.pop_min()) local.push_back(e->first);
      std::lock_guard<std::mutex> lk(mu);
      popped.insert(popped.end(), local.begin(), local.end());
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(popped.size(), kItems) << "every item popped exactly once";
  std::sort(popped.begin(), popped.end());
  for (std::uint64_t k = 0; k < kItems; ++k) ASSERT_EQ(popped[k], k);
  EXPECT_FALSE(pq.pop_min().has_value());
}

TEST(PriorityQueue, ProducersAndConsumers) {
  SkipVectorPriorityQueue<std::uint64_t, std::uint64_t> pq(Tiny());
  constexpr std::uint64_t kPerProducer = 20000;
  constexpr unsigned kProducers = 2, kConsumers = 2;
  std::atomic<std::uint64_t> consumed{0}, produced{0};
  std::atomic<bool> done_producing{false};

  std::vector<std::thread> threads;
  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        // Unique priorities: interleave producer id in the low bits.
        const std::uint64_t k = (i << 1) | p;
        if (pq.push(k, k)) produced.fetch_add(1);
      }
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        auto e = pq.pop_min();
        if (e) {
          consumed.fetch_add(1);
        } else if (done_producing.load()) {
          // Production has stopped and the queue read empty: one confirming
          // pop, counting anything that snuck in.
          auto last = pq.pop_min();
          if (!last) return;
          consumed.fetch_add(1);
        }
      }
    });
  }
  for (unsigned p = 0; p < kProducers; ++p) threads[p].join();
  done_producing.store(true);
  for (unsigned c = 0; c < kConsumers; ++c) threads[kProducers + c].join();
  // Drain whatever remains.
  while (pq.pop_min()) consumed.fetch_add(1);
  EXPECT_EQ(consumed.load(), produced.load());
  EXPECT_TRUE(pq.validate());
}

}  // namespace
}  // namespace sv::core
