// Allocator-subsystem tests (src/alloc/): NodeLayout invariants (pinned
// with static_asserts), both NodeAllocator policies against their concept
// contract, slab-pool internals (size classes, magazine reuse, depot
// flushes, oversize fallback, byte accounting), cross-thread
// alloc-here/free-there flows (the racy path TSan hammers), pool-backed
// maps returning every byte at destruction even under LeakReclaimer (the
// property the ASan/LSan lane proves), and a sequential parity suite over
// the full 4-reclaimer x 2-allocator matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "alloc/allocator.h"
#include "alloc/node_layout.h"
#include "alloc/pool_allocator.h"
#include "common/hw.h"
#include "common/rng.h"
#include "core/skip_vector.h"
#include "core/skip_vector_epoch.h"

#if defined(__SANITIZE_ADDRESS__)
#define SV_TEST_ASAN 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SV_TEST_ASAN 1
#endif
#endif
#if defined(SV_TEST_ASAN)
#include <sanitizer/lsan_interface.h>
#endif

namespace sv::alloc {
namespace {

// LeakSanitizer scope guard for the one combination that leaks by design
// (LeakReclaimer on the malloc passthrough). Every pool-backed variant runs
// fully leak-checked -- that is the point of the pool.
class ScopedLeakCheckDisabler {
 public:
  ScopedLeakCheckDisabler() {
#if defined(SV_TEST_ASAN)
    __lsan_disable();
#endif
  }
  ~ScopedLeakCheckDisabler() {
#if defined(SV_TEST_ASAN)
    __lsan_enable();
#endif
  }
};

// ---- NodeLayout --------------------------------------------------------------

// Pinned example: 40-byte header, 8-byte keys/values, cap 4.
// keys at 40, vals at 40 + 32 = 72, total = round64(72 + 32) = 128.
static_assert(NodeLayout::make(40, 8, 8, 8, 8, 4).keys_off == 40);
static_assert(NodeLayout::make(40, 8, 8, 8, 8, 4).vals_off == 72);
static_assert(NodeLayout::make(40, 8, 8, 8, 8, 4).bytes == 128);
// Alignment padding between header and keys, and between keys and values.
static_assert(NodeLayout::make(41, 8, 8, 8, 8, 2).keys_off == 48);
static_assert(NodeLayout::make(12, 4, 4, 8, 8, 3).vals_off % 8 == 0);
// Empty node still occupies one cache line.
static_assert(NodeLayout::make(1, 8, 8, 8, 8, 0).bytes == kCacheLineSize);
// Total is always a whole number of cache lines.
static_assert(NodeLayout::make(57, 8, 8, 8, 8, 129).bytes % kCacheLineSize ==
              0);

TEST(NodeLayout, InvariantsAcrossShapes) {
  for (std::uint32_t cap : {0u, 1u, 4u, 16u, 100u, 4096u}) {
    for (std::size_t hdr : {std::size_t{1}, std::size_t{40},
                            std::size_t{64}, std::size_t{100}}) {
      const NodeLayout l = NodeLayout::make(hdr, 8, 8, 8, 8, cap);
      EXPECT_GE(l.keys_off, hdr);
      EXPECT_EQ(l.keys_off % 8, 0u);
      EXPECT_GE(l.vals_off, l.keys_off + cap * 8);
      EXPECT_EQ(l.vals_off % 8, 0u);
      EXPECT_GE(l.bytes, l.vals_off + cap * 8);
      EXPECT_EQ(l.bytes % kCacheLineSize, 0u);
    }
  }
}

TEST(NodeLayout, OfMatchesMake) {
  struct Hdr {
    void* a;
    std::uint64_t b;
    std::uint32_t c;
  };
  const NodeLayout a =
      NodeLayout::of<Hdr, std::atomic<std::uint64_t>,
                     std::atomic<std::uint64_t>>(16);
  const NodeLayout b = NodeLayout::make(
      sizeof(Hdr), sizeof(std::atomic<std::uint64_t>),
      alignof(std::atomic<std::uint64_t>), sizeof(std::atomic<std::uint64_t>),
      alignof(std::atomic<std::uint64_t>), 16);
  EXPECT_EQ(a.keys_off, b.keys_off);
  EXPECT_EQ(a.vals_off, b.vals_off);
  EXPECT_EQ(a.bytes, b.bytes);
}

// ---- Size classes ------------------------------------------------------------

using Pool = PoolNodeAllocator;

static_assert(Pool::class_of(1) == 0);
static_assert(Pool::class_of(64) == 0);
static_assert(Pool::class_of(65) == 1);
static_assert(Pool::class_of(4096) == 63);
static_assert(Pool::class_of(4097) == 64);    // first pow2 class (8 KiB)
static_assert(Pool::class_of(8192) == 64);
static_assert(Pool::class_of(8193) == 65);
static_assert(Pool::class_of(256u << 10) ==
              static_cast<int>(Pool::kClassCount) - 1);
static_assert(Pool::class_of((256u << 10) + 1) == -1);  // oversize
static_assert(Pool::class_bytes(0) == 64);
static_assert(Pool::class_bytes(63) == 4096);
static_assert(Pool::class_bytes(64) == 8192);
static_assert(Pool::class_bytes(static_cast<int>(Pool::kClassCount) - 1) ==
              256u << 10);

TEST(PoolSizeClasses, ClassBytesCoversEverySize) {
  for (std::size_t b = 1; b <= (256u << 10); b += 37) {
    const int cls = Pool::class_of(b);
    ASSERT_GE(cls, 0) << b;
    EXPECT_GE(Pool::class_bytes(cls), b);
    // Tightness: the next smaller class would not fit.
    if (cls > 0) {
      EXPECT_LT(Pool::class_bytes(cls - 1), b);
    }
  }
}

// ---- MallocNodeAllocator -----------------------------------------------------

TEST(MallocNodeAllocator, AllocatesAlignedAndAccounts) {
  MallocNodeAllocator a;
  void* p = a.allocate(192);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kCacheLineSize, 0u);
  std::memset(p, 0xab, 192);
  AllocatorStats s = a.stats();
  EXPECT_EQ(s.pool_hits, 0u);  // nothing is pooled
  EXPECT_EQ(s.pool_misses, 1u);
  EXPECT_EQ(s.live_bytes, 192u);
  a.deallocate(p, 192);
  EXPECT_EQ(a.stats().live_bytes, 0u);
}

// ---- PoolNodeAllocator -------------------------------------------------------

TEST(PoolNodeAllocator, AllocatesAlignedWritableBlocks) {
  Pool pool;
  std::vector<void*> blocks;
  for (int i = 0; i < 100; ++i) {
    void* p = pool.allocate(256);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kCacheLineSize, 0u);
    std::memset(p, i, 256);
    blocks.push_back(p);
  }
  // Blocks are distinct and their contents independent.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(static_cast<unsigned char*>(blocks[i])[0],
              static_cast<unsigned char>(i));
    EXPECT_EQ(static_cast<unsigned char*>(blocks[i])[255],
              static_cast<unsigned char>(i));
  }
  for (void* p : blocks) pool.deallocate(p, 256);
  EXPECT_EQ(pool.stats().live_bytes, 0u);
  EXPECT_GE(pool.stats().slab_allocs, 1u);
  EXPECT_GT(pool.stats().arena_bytes, 0u);
}

TEST(PoolNodeAllocator, MagazineServesChurn) {
  Pool pool;
  // Warm the magazine, then churn alloc/free: everything after warmup must
  // be served thread-locally.
  void* warm = pool.allocate(512);
  pool.deallocate(warm, 512);
  constexpr int kChurn = 10000;
  for (int i = 0; i < kChurn; ++i) {
    void* p = pool.allocate(512);
    pool.deallocate(p, 512);
  }
  const AllocatorStats s = pool.stats();
  EXPECT_GE(s.pool_hits, static_cast<std::uint64_t>(kChurn));
  EXPECT_LE(s.pool_misses, 2u);
  EXPECT_EQ(s.magazine_frees, static_cast<std::uint64_t>(kChurn) + 1);
  EXPECT_EQ(s.depot_flushes, 0u);
  EXPECT_EQ(s.live_bytes, 0u);
  // The acceptance bar from ISSUE 5: >= 90% of frees absorbed by magazines
  // without a depot round-trip.
  EXPECT_GE(static_cast<double>(s.magazine_frees - s.depot_flushes),
            0.9 * static_cast<double>(s.magazine_frees));
}

TEST(PoolNodeAllocator, ReusesFreedBlocks) {
  Pool pool;
  void* a = pool.allocate(128);
  pool.deallocate(a, 128);
  void* b = pool.allocate(128);
  EXPECT_EQ(a, b);  // LIFO magazine: immediate reuse of the hot block
  pool.deallocate(b, 128);
}

TEST(PoolNodeAllocator, DistinctSizeClassesDoNotMix) {
  Pool pool;
  void* small = pool.allocate(64);
  void* large = pool.allocate(4096);
  ASSERT_NE(small, large);
  std::memset(small, 1, 64);
  std::memset(large, 2, 4096);
  EXPECT_EQ(static_cast<unsigned char*>(small)[63], 1);
  EXPECT_EQ(static_cast<unsigned char*>(large)[0], 2);
  pool.deallocate(small, 64);
  pool.deallocate(large, 4096);
  EXPECT_EQ(pool.stats().live_bytes, 0u);
}

TEST(PoolNodeAllocator, OversizeFallback) {
  Pool pool;
  const std::size_t big = (256u << 10) + 1;
  void* p = pool.allocate(big);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kCacheLineSize, 0u);
  std::memset(p, 0x5a, big);
  EXPECT_EQ(pool.stats().oversize_allocs, 1u);
  EXPECT_EQ(pool.stats().live_bytes, big);
  pool.deallocate(p, big);
  EXPECT_EQ(pool.stats().live_bytes, 0u);
  // A second oversize block left un-freed is still released by the
  // destructor (LSan proves it when this test runs in the ASan lane).
  void* leaked_to_pool = pool.allocate(big);
  std::memset(leaked_to_pool, 1, big);
}

TEST(PoolNodeAllocator, DestructorReleasesUnfreedBlocks) {
  // Blocks never handed back -- exactly what a LeakReclaimer does -- must
  // still be released wholesale with the arenas (LSan-verified).
  Pool pool;
  for (int i = 0; i < 1000; ++i) {
    void* p = pool.allocate(192);
    std::memset(p, i, 192);
  }
  EXPECT_GT(pool.stats().live_bytes, 0u);
}

TEST(PoolNodeAllocator, JumboClassGetsDedicatedArenaSpace) {
  // A class bigger than the default slab target must still carve (one block
  // per slab), including when it exceeds the remaining arena space.
  Pool pool;
  std::vector<void*> blocks;
  for (int i = 0; i < 3; ++i) {
    void* p = pool.allocate(256u << 10);
    std::memset(p, i, 256u << 10);
    blocks.push_back(p);
  }
  for (void* p : blocks) pool.deallocate(p, 256u << 10);
  EXPECT_EQ(pool.stats().live_bytes, 0u);
  EXPECT_EQ(pool.stats().oversize_allocs, 0u);
}

TEST(PoolNodeAllocator, CrossThreadAllocHereFreeThere) {
  // Producer threads allocate, consumer threads free: blocks migrate
  // between thread magazines through the depot. This is the schedule the
  // TSan lane hammers for data races; the assertions below check the
  // byte accounting survives migration.
  Pool pool;
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 4000;
  constexpr std::size_t kBytes = 320;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<void*> queue;
  std::atomic<int> produced{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kProducers; ++t) {
    threads.emplace_back([&, t] {
      sv::Xoshiro256 rng(t + 1);
      for (int i = 0; i < kPerProducer; ++i) {
        void* p = pool.allocate(kBytes);
        std::memset(p, static_cast<int>(rng.next_below(256)), kBytes);
        {
          std::lock_guard<std::mutex> lk(mu);
          queue.push_back(p);
        }
        produced.fetch_add(1);
        cv.notify_one();
      }
    });
  }
  for (int t = 0; t < kConsumers; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        void* p = nullptr;
        {
          std::unique_lock<std::mutex> lk(mu);
          cv.wait(lk, [&] {
            return !queue.empty() ||
                   produced.load() == kProducers * kPerProducer;
          });
          if (queue.empty()) return;
          p = queue.front();
          queue.pop_front();
        }
        pool.deallocate(p, kBytes);
      }
    });
  }
  for (auto& th : threads) th.join();
  cv.notify_all();
  EXPECT_TRUE(queue.empty());
  const AllocatorStats s = pool.stats();
  EXPECT_EQ(s.live_bytes, 0u);
  EXPECT_EQ(s.pool_hits + s.pool_misses,
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(s.magazine_frees,
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
}

// ---- Pool-backed maps --------------------------------------------------------

sv::core::Config SmallCfg() {
  sv::core::Config c;
  c.layer_count = 4;
  c.target_data_vector_size = 4;
  c.target_index_vector_size = 4;
  return c;
}

// Churn a map hard enough to force splits, merges, and retirements, then
// destroy it. In the ASan lane LSan proves the pool returned every byte --
// including nodes the LeakReclaimer dropped on the floor.
template <class Map>
void churn_and_destroy() {
  Map m(SmallCfg());
  sv::Xoshiro256 rng(7);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = rng.next_below(512);
    if (rng.next_below(2) == 0) {
      m.insert(k, k);
    } else {
      m.remove(k);
    }
  }
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
  const AllocatorStats s = m.allocator_stats();
  EXPECT_GT(s.live_bytes, 0u);       // linked nodes are still out
  EXPECT_GT(s.pool_hits, 0u);        // churn hit the magazines
  EXPECT_GT(s.arena_bytes, 0u);
}

TEST(PoolBackedMap, HazardReclaimerReturnsEverything) {
  churn_and_destroy<sv::core::SkipVectorPool<std::uint64_t, std::uint64_t>>();
}

TEST(PoolBackedMap, LeakReclaimerStopsLeaking) {
  churn_and_destroy<
      sv::core::SkipVectorPoolLeak<std::uint64_t, std::uint64_t>>();
}

TEST(PoolBackedMap, EpochReclaimerReturnsEverything) {
  churn_and_destroy<
      sv::core::SkipVectorEpochPool<std::uint64_t, std::uint64_t>>();
}

TEST(PoolBackedMap, ConcurrentChurnHitsMagazines) {
  using Map = sv::core::SkipVectorPool<std::uint64_t, std::uint64_t>;
  Map m(SmallCfg());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      sv::Xoshiro256 rng(t + 11);
      for (int i = 0; i < 20000; ++i) {
        const std::uint64_t k = rng.next_below(1024);
        if (rng.next_below(2) == 0) {
          m.insert(k, k);
        } else {
          m.remove(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
  const AllocatorStats s = m.allocator_stats();
  // Steady-state churn is served overwhelmingly by the magazines.
  EXPECT_GT(s.pool_hits, s.pool_misses);
  EXPECT_GE(static_cast<double>(s.magazine_frees - s.depot_flushes),
            0.9 * static_cast<double>(s.magazine_frees));
}

// ---- 4-reclaimer x 2-allocator sequential parity -----------------------------

// The same deterministic single-threaded workload, checked against
// std::map, for every (reclaimer, allocator) combination -- including
// ImmediateReclaimer, which the concurrent matrix suite must exclude.
template <class Map>
void run_parity() {
  Map m(SmallCfg());
  std::map<std::uint64_t, std::uint64_t> oracle;
  sv::Xoshiro256 rng(1234);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t k = rng.next_below(700);
    const std::uint64_t v = static_cast<std::uint64_t>(i);
    switch (rng.next_below(4)) {
      case 0: {
        const bool ok = m.insert(k, v);
        EXPECT_EQ(ok, oracle.emplace(k, v).second);
        break;
      }
      case 1: {
        const bool ok = m.remove(k);
        EXPECT_EQ(ok, oracle.erase(k) == 1);
        break;
      }
      case 2: {
        const bool ok = m.update(k, v);
        auto it = oracle.find(k);
        EXPECT_EQ(ok, it != oracle.end());
        if (it != oracle.end()) it->second = v;
        break;
      }
      default: {
        const auto got = m.lookup(k);
        auto it = oracle.find(k);
        ASSERT_EQ(got.has_value(), it != oracle.end());
        if (got) {
          EXPECT_EQ(*got, it->second);
        }
      }
    }
  }
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> contents;
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    contents.emplace_back(k, v);
  });
  ASSERT_EQ(contents.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [k, v] : contents) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

template <class R, class A>
using ParityMap = sv::core::SkipVectorMap<std::uint64_t, std::uint64_t, R, A>;

TEST(AllocatorParity, HazardMalloc) {
  run_parity<ParityMap<sv::reclaim::HazardReclaimer, MallocNodeAllocator>>();
}
TEST(AllocatorParity, HazardPool) {
  run_parity<ParityMap<sv::reclaim::HazardReclaimer, PoolNodeAllocator>>();
}
TEST(AllocatorParity, EpochMalloc) {
  run_parity<ParityMap<sv::reclaim::EpochReclaimer, MallocNodeAllocator>>();
}
TEST(AllocatorParity, EpochPool) {
  run_parity<ParityMap<sv::reclaim::EpochReclaimer, PoolNodeAllocator>>();
}
TEST(AllocatorParity, LeakMalloc) {
  // Leaks by design on the malloc passthrough; keep LSan quiet for exactly
  // this combination.
  ScopedLeakCheckDisabler no_leak_check;
  run_parity<ParityMap<sv::reclaim::LeakReclaimer, MallocNodeAllocator>>();
}
TEST(AllocatorParity, LeakPool) {
  run_parity<ParityMap<sv::reclaim::LeakReclaimer, PoolNodeAllocator>>();
}
TEST(AllocatorParity, ImmediateMalloc) {
  run_parity<ParityMap<sv::reclaim::ImmediateReclaimer, MallocNodeAllocator>>();
}
TEST(AllocatorParity, ImmediatePool) {
  run_parity<ParityMap<sv::reclaim::ImmediateReclaimer, PoolNodeAllocator>>();
}

// ---- sv::stats wiring --------------------------------------------------------

TEST(AllocStats, CountersFlowIntoMapRegistry) {
  using Map = sv::core::SkipVectorPool<std::uint64_t, std::uint64_t>;
  Map m(SmallCfg());
  for (std::uint64_t k = 0; k < 2000; ++k) m.insert(k, k);
  for (std::uint64_t k = 0; k < 2000; k += 2) m.remove(k);
  const sv::stats::Snapshot s = m.stats_registry().snapshot();
  if (sv::stats::kEnabled) {
    // Node traffic during operations lands in the map's registry. (The
    // constructor's head allocations happen outside any stats::Scope, so
    // kLiveBytes undercounts the allocator's own live_bytes by them --
    // the allocator stats are the precise source of truth.)
    EXPECT_GT(s[sv::stats::Counter::kPoolHits] +
                  s[sv::stats::Counter::kPoolMisses],
              0u);
    EXPECT_GT(s[sv::stats::Counter::kSlabAllocs], 0u);
    EXPECT_NE(s[sv::stats::Counter::kLiveBytes], 0u);
  } else {
    EXPECT_EQ(s.total(), 0u);
  }
}

}  // namespace
}  // namespace sv::alloc
