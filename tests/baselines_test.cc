// Tests for the baseline structures: the four sequential maps of Fig. 1 and
// the Fraser lock-free skip list (FSL), including oracle model checks and
// concurrent stress for FSL.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "baselines/fraser_skiplist.h"
#include "baselines/sequential_maps.h"
#include "common/rng.h"

namespace sv::baselines {
namespace {

// ---- Sequential baselines: shared model check ------------------------------

template <class Map>
void ModelCheck(Map& m, std::uint64_t ops, std::uint64_t range,
                std::uint64_t seed) {
  std::map<std::uint64_t, std::uint64_t> oracle;
  Xoshiro256 rng(seed);
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::uint64_t k = rng.next_below(range);
    switch (rng.next_below(3)) {
      case 0: {
        const std::uint64_t v = rng.next();
        ASSERT_EQ(m.insert(k, v), oracle.emplace(k, v).second) << i;
        break;
      }
      case 1:
        ASSERT_EQ(m.remove(k), oracle.erase(k) > 0) << i;
        break;
      default: {
        auto got = m.lookup(k);
        auto it = oracle.find(k);
        ASSERT_EQ(got.has_value(), it != oracle.end()) << i;
        if (got) {
          ASSERT_EQ(*got, it->second) << i;
        }
      }
    }
  }
  ASSERT_EQ(m.size(), oracle.size());
  auto it = oracle.begin();
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  });
  EXPECT_EQ(it, oracle.end());
}

TEST(SequentialBaselines, UnsortedVectorMap) {
  UnsortedVectorMap<std::uint64_t, std::uint64_t> m;
  ModelCheck(m, 20000, 300, 1);
}

TEST(SequentialBaselines, SortedVectorMap) {
  SortedVectorMap<std::uint64_t, std::uint64_t> m;
  ModelCheck(m, 20000, 300, 2);
}

TEST(SequentialBaselines, StdMapAdapter) {
  StdMapAdapter<std::uint64_t, std::uint64_t> m;
  ModelCheck(m, 20000, 300, 3);
}

TEST(SequentialBaselines, SequentialSkipList) {
  SequentialSkipList<std::uint64_t, std::uint64_t> m;
  ModelCheck(m, 20000, 300, 4);
}

TEST(SequentialBaselines, SkipListWideRange) {
  SequentialSkipList<std::uint64_t, std::uint64_t> m;
  ModelCheck(m, 20000, 1u << 28, 5);
}

// ---- Fraser skip list -------------------------------------------------------

TEST(FraserSkipList, SequentialModelCheck) {
  FraserSkipList<std::uint64_t, std::uint64_t> m;
  std::map<std::uint64_t, std::uint64_t> oracle;
  Xoshiro256 rng(6);
  for (std::uint64_t i = 0; i < 30000; ++i) {
    const std::uint64_t k = rng.next_below(400);
    switch (rng.next_below(3)) {
      case 0: {
        const std::uint64_t v = rng.next();
        ASSERT_EQ(m.insert(k, v), oracle.emplace(k, v).second) << i;
        break;
      }
      case 1:
        ASSERT_EQ(m.remove(k), oracle.erase(k) > 0) << i;
        break;
      default: {
        auto got = m.lookup(k);
        auto it = oracle.find(k);
        ASSERT_EQ(got.has_value(), it != oracle.end()) << i;
        if (got) {
          ASSERT_EQ(*got, it->second) << i;
        }
      }
    }
  }
  EXPECT_TRUE(m.validate());
  auto it = oracle.begin();
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  });
  EXPECT_EQ(it, oracle.end());
}

TEST(FraserSkipList, FullKeyDomainUsable) {
  FraserSkipList<std::uint64_t, std::uint64_t> m;
  EXPECT_TRUE(m.insert(0, 1));
  EXPECT_TRUE(m.insert(~std::uint64_t{0}, 2));
  EXPECT_EQ(m.lookup(0).value(), 1u);
  EXPECT_EQ(m.lookup(~std::uint64_t{0}).value(), 2u);
  EXPECT_TRUE(m.remove(0));
  EXPECT_TRUE(m.remove(~std::uint64_t{0}));
}

TEST(FraserSkipList, ContendedInsertExactlyOnce) {
  FraserSkipList<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kKeys = 2048;
  const unsigned kThreads = 4;
  std::atomic<std::uint64_t> wins{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(10 + t);
      std::vector<std::uint64_t> keys(kKeys);
      for (std::uint64_t k = 0; k < kKeys; ++k) keys[k] = k;
      for (std::uint64_t i = kKeys; i > 1; --i) {
        std::swap(keys[i - 1], keys[rng.next_below(i)]);
      }
      std::uint64_t local = 0;
      for (auto k : keys) local += m.insert(k, k) ? 1 : 0;
      wins.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_TRUE(m.validate());
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(m.lookup(k).has_value()) << k;
  }
}

TEST(FraserSkipList, ContendedRemoveExactlyOnce) {
  FraserSkipList<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kKeys = 2048;
  for (std::uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(m.insert(k, k));
  const unsigned kThreads = 4;
  std::atomic<std::uint64_t> wins{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(20 + t);
      std::vector<std::uint64_t> keys(kKeys);
      for (std::uint64_t k = 0; k < kKeys; ++k) keys[k] = k;
      for (std::uint64_t i = kKeys; i > 1; --i) {
        std::swap(keys[i - 1], keys[rng.next_below(i)]);
      }
      std::uint64_t local = 0;
      for (auto k : keys) local += m.remove(k) ? 1 : 0;
      wins.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_TRUE(m.validate());
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_FALSE(m.lookup(k).has_value()) << k;
  }
}

TEST(FraserSkipList, MixedChurnStress) {
  FraserSkipList<std::uint64_t, std::uint64_t> m;
  const unsigned kThreads = 4;
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(30 + t);
      for (std::uint64_t i = 0; i < 60000; ++i) {
        const std::uint64_t k = rng.next_below(256);
        switch (rng.next_below(4)) {
          case 0:
            m.insert(k, (k << 32) | 1);
            break;
          case 1:
            m.remove(k);
            break;
          default: {
            auto v = m.lookup(k);
            if (v && (*v >> 32) != k) bad.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_TRUE(m.validate());
}

}  // namespace
}  // namespace sv::baselines
