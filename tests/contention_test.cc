// Targeted contention tests for the paper's trickiest interleavings:
// freeze conflicts between tall inserts, remove-vs-insert races on the
// same key (the Listing 4 line 13 restart), merge storms, and thundering
// herds on a single chunk.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/skip_vector.h"

namespace sv::core {
namespace {

using Map = SkipVector<std::uint64_t, std::uint64_t>;

// Tall-tower configuration: nearly every insert reaches several layers, so
// freeze windows overlap constantly.
Config TallTowers() {
  Config c;
  c.layer_count = 6;
  c.target_data_vector_size = 2;  // 1/2 of inserts have height > 0
  c.target_index_vector_size = 2;
  return c;
}

TEST(Contention, TallInsertFreezeConflicts) {
  Map m(TallTowers());
  constexpr std::uint64_t kKeys = 512;
  const unsigned kThreads = 4;
  std::atomic<std::uint64_t> wins{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Every thread inserts the same keys in the same order: maximal
      // freeze contention on the same prevs[] chains.
      std::uint64_t local = 0;
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        local += m.insert(k, (k << 32) | t) ? 1 : 0;
      }
      wins.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kKeys);
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
  // Restarts must have occurred (the whole point of the test) -- unless
  // the scheduler serialized us perfectly, which we do not assert against.
  auto st = m.stats();
  EXPECT_GT(st.layers[1].elements, 0u);
}

TEST(Contention, InsertRemoveSameKeyRace) {
  // One hot key, tall towers: exercises the Listing 4 line 13 restart (a
  // remover observing a mid-flight insert of the same key) continuously.
  Map m(TallTowers());
  std::atomic<std::uint64_t> net{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t + 900);
      std::int64_t inserted = 0, removed = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (rng.next_below(2) == 0) {
          inserted += m.insert(42, t) ? 1 : 0;
        } else {
          removed += m.remove(42) ? 1 : 0;
        }
      }
      net.fetch_add(static_cast<std::uint64_t>(inserted - removed));
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true);
  for (auto& th : threads) th.join();
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
  const bool present = m.lookup(42).has_value();
  EXPECT_EQ(net.load(), present ? 1u : 0u)
      << "successful inserts minus removes must equal final presence";
}

TEST(Contention, SingleChunkThunderingHerd) {
  // Key range smaller than one chunk: every operation contends on the
  // same data node (and its lock word).
  Config c;
  c.layer_count = 3;
  c.target_data_vector_size = 32;  // capacity 64 > range
  c.target_index_vector_size = 32;
  Map m(c);
  constexpr std::uint64_t kRange = 48;
  std::atomic<std::uint64_t> bad{0};
  // Whether the herd actually forces a restart depends on the scheduler
  // (on a single core the threads can serialize); restarts_ is cumulative,
  // so hammer in rounds until one is observed.
  for (int round = 0; round < 8 && m.counters().restarts == 0; ++round) {
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < 4; ++t) {
      threads.emplace_back([&, t, round] {
        Xoshiro256 rng(t + 77 + 31 * round);
        for (int i = 0; i < 40000; ++i) {
          const std::uint64_t k = rng.next_below(kRange);
          switch (rng.next_below(3)) {
            case 0:
              m.insert(k, (k << 32) | 5);
              break;
            case 1:
              m.remove(k);
              break;
            default: {
              auto v = m.lookup(k);
              if (v && (*v >> 32) != k) bad.fetch_add(1);
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(bad.load(), 0u);
    std::string err;
    ASSERT_TRUE(m.validate(&err)) << err;
  }
  auto ctrs = m.counters();
  EXPECT_GT(ctrs.restarts, 0u) << "herd should have forced restarts";
}

TEST(Contention, MergeStormAfterMassRemoval) {
  // Fill, remove 90% (creating orphans everywhere), then let concurrent
  // mutators clean up; merging must converge and no key may be lost.
  Map m(TallTowers());
  constexpr std::uint64_t kKeys = 2048;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(m.insert(k, (k << 32) | 1));
  }
  // Remove everything not divisible by 10.
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    if (k % 10 != 0) {
      ASSERT_TRUE(m.remove(k));
    }
  }
  // Concurrent churn on the survivors' neighborhoods triggers merges.
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t + 5000);
      for (int i = 0; i < 20000; ++i) {
        const std::uint64_t k = rng.next_below(kKeys);
        if (k % 10 == 0) {
          auto v = m.lookup(k);
          EXPECT_TRUE(v.has_value()) << k;
        } else if (rng.next_below(2) == 0) {
          m.insert(k, (k << 32) | 2);
        } else {
          m.remove(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
  EXPECT_GT(m.counters().orphan_merges, 0u);
  for (std::uint64_t k = 0; k < kKeys; k += 10) {
    ASSERT_TRUE(m.lookup(k).has_value()) << k;
  }
}

TEST(Contention, NavigationUnderFreezePressure) {
  // floor/ceiling/first/last racing with tall inserts whose freezes pin
  // whole tower paths.
  Map m(TallTowers());
  ASSERT_TRUE(m.insert(0, 0));
  ASSERT_TRUE(m.insert(1 << 20, 1));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t + 321);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = 1 + rng.next_below((1 << 20) - 1);
        if (rng.next_below(2) == 0) {
          m.insert(k, k);
        } else {
          m.remove(k);
        }
      }
    });
  }
  threads.emplace_back([&] {
    Xoshiro256 rng(4321);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t q = rng.next_below(1 << 20);
      auto f = m.floor(q);
      if (!f || f->first > q) bad.fetch_add(1);
      auto ce = m.ceiling(q);
      if (!ce || ce->first < q) bad.fetch_add(1);
      if (!m.first() || !m.last()) bad.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0u);
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
}

}  // namespace
}  // namespace sv::core
