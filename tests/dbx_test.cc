// Tests for the DBx1000-style OLTP substrate: row latches, slab table,
// YCSB generation (shape + skew), NO_WAIT transaction execution, and a
// row-level isolation check under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "core/skip_vector.h"
#include "dbx/database.h"
#include "dbx/row.h"
#include "dbx/table.h"
#include "dbx/txn.h"
#include "dbx/ycsb.h"

namespace sv::dbx {
namespace {

TEST(RowLatch, SharedAndExclusiveModes) {
  RowLatch l;
  EXPECT_TRUE(l.try_lock_shared());
  EXPECT_TRUE(l.try_lock_shared()) << "shared mode must admit many readers";
  EXPECT_FALSE(l.try_lock_exclusive()) << "writer must fail under readers";
  l.unlock_shared();
  EXPECT_FALSE(l.try_lock_exclusive());
  l.unlock_shared();
  EXPECT_TRUE(l.try_lock_exclusive());
  EXPECT_FALSE(l.try_lock_shared()) << "reader must fail under a writer";
  EXPECT_FALSE(l.try_lock_exclusive());
  l.unlock_exclusive();
  EXPECT_TRUE(l.try_lock_shared());
  l.unlock_shared();
}

TEST(Table, RowPointersAreStableAcrossSlabGrowth) {
  Table t(/*rows_per_slab=*/8);
  std::vector<Row*> ptrs;
  for (int i = 0; i < 100; ++i) {
    Row* r = t.allocate_row();
    r->cols[0] = static_cast<std::uint64_t>(i);
    ptrs.push_back(r);
  }
  EXPECT_EQ(t.row_count(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(t.row_at(i), ptrs[i]);
    EXPECT_EQ(ptrs[i]->cols[0], static_cast<std::uint64_t>(i));
  }
}

TEST(Ycsb, RequestShapeMatchesConfig) {
  YcsbConfig cfg;
  cfg.table_rows = 1000;
  cfg.accesses_per_txn = 16;
  cfg.read_fraction = 0.9;
  YcsbGenerator gen(cfg, 1);
  TxnRequest req;
  std::uint64_t writes = 0, total = 0;
  for (int i = 0; i < 2000; ++i) {
    gen.next(&req);
    ASSERT_EQ(req.count, 16u);
    for (std::uint32_t a = 0; a < req.count; ++a) {
      EXPECT_LT(req.accesses[a].key, cfg.table_rows);
      if (a > 0) {
        EXPECT_LT(req.accesses[a - 1].key, req.accesses[a].key)
            << "accesses must be sorted and duplicate-free";
      }
      writes += req.accesses[a].is_write ? 1 : 0;
      ++total;
    }
  }
  const double write_frac = static_cast<double>(writes) / total;
  EXPECT_NEAR(write_frac, 0.1, 0.02);
}

TEST(Ycsb, ZipfSkewControlsHotKeys) {
  YcsbConfig cfg;
  cfg.table_rows = 1 << 16;
  cfg.accesses_per_txn = 1;
  auto hot_fraction = [&](double theta) {
    cfg.zipf_theta = theta;
    YcsbGenerator gen(cfg, 7);
    TxnRequest req;
    std::uint64_t hot = 0;
    constexpr int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) {
      gen.next(&req);
      if (req.accesses[0].key < 64) ++hot;  // top-64 keys
    }
    return static_cast<double>(hot) / kSamples;
  };
  const double uniform = hot_fraction(0.0);
  const double mild = hot_fraction(0.6);
  const double skewed = hot_fraction(0.9);
  EXPECT_LT(uniform, 0.01);
  EXPECT_GT(mild, uniform * 5);
  EXPECT_GT(skewed, mild * 2);
}

// A trivial index for txn-layer unit tests.
class VectorIndex {
 public:
  explicit VectorIndex(std::size_t n) : rows_(n, nullptr) {}
  bool insert(std::uint64_t k, Row* r) {
    rows_[k] = r;
    return true;
  }
  std::optional<Row*> lookup(std::uint64_t k) const {
    if (k >= rows_.size() || rows_[k] == nullptr) return std::nullopt;
    return rows_[k];
  }

 private:
  std::vector<Row*> rows_;
};

TEST(Txn, CommitsAndIsolationUnderConcurrency) {
  // Writers bump all 10 columns of a row inside one exclusive critical
  // section; readers (shared latch) must always observe all 10 columns
  // equal. Any torn view is an isolation bug.
  constexpr std::uint64_t kRows = 64;
  Table table;
  VectorIndex index(kRows);
  for (std::uint64_t k = 0; k < kRows; ++k) {
    index.insert(k, table.allocate_row());  // all columns start at 0
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      YcsbConfig cfg;
      cfg.table_rows = kRows;
      cfg.zipf_theta = 0.9;  // force conflicts
      cfg.read_fraction = 0.5;
      cfg.accesses_per_txn = 4;
      YcsbGenerator gen(cfg, 100 + t);
      TxnStats stats;
      TxnRequest req;
      while (!stop.load(std::memory_order_relaxed)) {
        gen.next(&req);
        if (!execute_txn(index, req, &stats)) continue;
        // Independent isolation probe: read one row under a shared latch.
        Row* r = *index.lookup(req.accesses[0].key);
        if (r->latch.try_lock_shared()) {
          const std::uint64_t first = r->cols[0];
          for (auto c : r->cols) {
            if (c != first) torn.fetch_add(1, std::memory_order_relaxed);
          }
          r->latch.unlock_shared();
        }
      }
      EXPECT_GT(stats.commits, 0u);
      EXPECT_EQ(stats.index_misses, 0u);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(torn.load(), 0u) << "shared latch observed a torn row";
}

TEST(Txn, RunToCompletionRetriesAborts) {
  Table table;
  VectorIndex index(4);
  for (std::uint64_t k = 0; k < 4; ++k) index.insert(k, table.allocate_row());
  // Hold an exclusive latch briefly from another thread to force aborts.
  Row* hot = *index.lookup(0);
  ASSERT_TRUE(hot->latch.try_lock_exclusive());
  std::thread release([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    hot->latch.unlock_exclusive();
  });
  TxnRequest req;
  req.count = 1;
  req.accesses[0] = {0, true};
  TxnStats stats;
  run_txn_to_completion(index, req, &stats);
  release.join();
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_GT(stats.aborts, 0u) << "the held latch should have caused aborts";
}

TEST(Database, EndToEndWithSkipVectorIndex) {
  // Fig. 6's actual configuration in miniature: SkipVector as the primary
  // index of the OLTP engine.
  using Index = core::SkipVector<std::uint64_t, Row*>;
  YcsbConfig cfg;
  cfg.table_rows = 1 << 12;
  cfg.zipf_theta = 0.6;
  Database<Index> db(cfg, core::Config::for_elements(cfg.table_rows));

  const unsigned kThreads = 4;
  constexpr std::uint64_t kTxns = 2000;
  std::vector<TxnStats> stats(kThreads);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      YcsbGenerator gen(cfg, 500 + t);
      db.run_worker(gen, kTxns, &stats[t]);
    });
  }
  for (auto& th : threads) th.join();
  TxnStats total;
  for (const auto& s : stats) total += s;
  EXPECT_EQ(total.commits, kThreads * kTxns);
  EXPECT_EQ(total.index_misses, 0u);
}

}  // namespace
}  // namespace sv::dbx

namespace sv::dbx {
namespace {

TEST(Ycsb, ScanAccessesGeneratedAtConfiguredRate) {
  YcsbConfig cfg;
  cfg.table_rows = 10000;
  cfg.accesses_per_txn = 16;
  cfg.scan_fraction = 0.25;
  cfg.scan_length = 50;
  YcsbGenerator gen(cfg, 3);
  TxnRequest req;
  std::uint64_t scans = 0, total = 0;
  for (int i = 0; i < 1000; ++i) {
    gen.next(&req);
    for (std::uint32_t a = 0; a < req.count; ++a) {
      if (req.accesses[a].scan_length > 0) {
        ++scans;
        EXPECT_EQ(req.accesses[a].scan_length, 50u);
        EXPECT_FALSE(req.accesses[a].is_write);
      }
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(scans) / total, 0.25, 0.03);
}

TEST(Database, ScanWorkloadEndToEnd) {
  // YCSB-E-style: 40% of accesses are 64-row scans through the SkipVector
  // index; commits must complete and every scan sees latched-consistent
  // rows (torn rows would trip the isolation stress elsewhere; here we
  // check progress and accounting).
  using Index = core::SkipVector<std::uint64_t, Row*>;
  YcsbConfig cfg;
  cfg.table_rows = 1 << 12;
  cfg.zipf_theta = 0.6;
  cfg.scan_fraction = 0.4;
  cfg.scan_length = 64;
  cfg.accesses_per_txn = 4;
  Database<Index> db(cfg, core::Config::for_elements(cfg.table_rows));

  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kTxns = 1500;
  std::vector<TxnStats> stats(kThreads);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      YcsbGenerator gen(cfg, 900 + t);
      db.run_worker(gen, kTxns, &stats[t]);
    });
  }
  for (auto& th : threads) th.join();
  TxnStats total;
  for (const auto& s : stats) total += s;
  EXPECT_EQ(total.commits, kThreads * kTxns);
  EXPECT_EQ(total.index_misses, 0u);
}

}  // namespace
}  // namespace sv::dbx
