// Differential testing: the skip vector, the Fraser skip list, the
// coarse-locked std::map, and a std::map oracle all execute the same seeded
// operation stream and must agree on every result. Parameterized over seeds
// and skip vector configurations so each instantiation explores a different
// interleaving of splits, merges, and promotions.
//
// Also checks the probabilistic shape claims of §IV-B: with height
// probability p0 = (T_D-1)/T_D and promotion probability 1/T_I, layer
// populations shrink geometrically and the layer count stays logarithmic.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <tuple>

#include "baselines/coarse_lock_map.h"
#include "baselines/fraser_skiplist.h"
#include "common/rng.h"
#include "core/skip_vector.h"

namespace sv::core {
namespace {

using DiffParam = std::tuple<std::uint64_t /*seed*/, std::uint32_t /*t_i*/,
                             std::uint32_t /*t_d*/>;

class DifferentialTest : public testing::TestWithParam<DiffParam> {};

TEST_P(DifferentialTest, FourWayAgreement) {
  const auto [seed, t_i, t_d] = GetParam();
  Config cfg;
  cfg.target_index_vector_size = t_i;
  cfg.target_data_vector_size = t_d;
  cfg.layer_count = 5;

  SkipVectorSeq<std::uint64_t, std::uint64_t> sv(cfg);
  baselines::FraserSkipList<std::uint64_t, std::uint64_t> fsl;
  baselines::CoarseLockMap<std::uint64_t, std::uint64_t> coarse;
  std::map<std::uint64_t, std::uint64_t> oracle;

  Xoshiro256 rng(seed);
  for (int i = 0; i < 15000; ++i) {
    const std::uint64_t k = rng.next_below(600);
    switch (rng.next_below(3)) {
      case 0: {
        const std::uint64_t v = rng.next();
        const bool expect = oracle.emplace(k, v).second;
        ASSERT_EQ(sv.insert(k, v), expect) << "sv insert @" << i;
        ASSERT_EQ(fsl.insert(k, v), expect) << "fsl insert @" << i;
        ASSERT_EQ(coarse.insert(k, v), expect) << "coarse insert @" << i;
        break;
      }
      case 1: {
        const bool expect = oracle.erase(k) > 0;
        ASSERT_EQ(sv.remove(k), expect) << "sv remove @" << i;
        ASSERT_EQ(fsl.remove(k), expect) << "fsl remove @" << i;
        ASSERT_EQ(coarse.remove(k), expect) << "coarse remove @" << i;
        break;
      }
      default: {
        auto it = oracle.find(k);
        auto a = sv.lookup(k);
        auto b = fsl.lookup(k);
        auto c = coarse.lookup(k);
        const bool expect = it != oracle.end();
        ASSERT_EQ(a.has_value(), expect) << "sv lookup @" << i;
        ASSERT_EQ(b.has_value(), expect) << "fsl lookup @" << i;
        ASSERT_EQ(c.has_value(), expect) << "coarse lookup @" << i;
        if (expect) {
          ASSERT_EQ(*a, it->second);
          ASSERT_EQ(*b, it->second);
          ASSERT_EQ(*c, it->second);
        }
      }
    }
  }
  // Final contents agree, in order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> from_sv, from_fsl;
  sv.for_each([&](auto k, auto v) { from_sv.emplace_back(k, v); });
  fsl.for_each([&](auto k, auto v) { from_fsl.emplace_back(k, v); });
  std::vector<std::pair<std::uint64_t, std::uint64_t>> from_oracle(
      oracle.begin(), oracle.end());
  EXPECT_EQ(from_sv, from_oracle);
  EXPECT_EQ(from_fsl, from_oracle);
  std::string err;
  EXPECT_TRUE(sv.validate(&err)) << err;
  EXPECT_TRUE(fsl.validate());
}

INSTANTIATE_TEST_SUITE_P(
    Streams, DifferentialTest,
    testing::Values(DiffParam{11, 4, 4}, DiffParam{12, 1, 8},
                    DiffParam{13, 8, 1}, DiffParam{14, 32, 32},
                    DiffParam{15, 2, 16}, DiffParam{16, 16, 2},
                    DiffParam{17, 1, 1}, DiffParam{18, 64, 64},
                    DiffParam{19, 3, 5}, DiffParam{20, 5, 3},
                    DiffParam{21, 128, 4}, DiffParam{22, 4, 128},
                    DiffParam{23, 2, 2}, DiffParam{24, 48, 48}),
    [](const testing::TestParamInfo<DiffParam>& info) {
      return "Seed" + std::to_string(std::get<0>(info.param)) + "_TI" +
             std::to_string(std::get<1>(info.param)) + "_TD" +
             std::to_string(std::get<2>(info.param));
    });

// ---- Probabilistic shape (§IV-B) ---------------------------------------------

TEST(ShapeStatistics, LayerPopulationsShrinkGeometrically) {
  Config cfg;
  cfg.target_index_vector_size = 8;
  cfg.target_data_vector_size = 8;
  cfg.layer_count = 6;
  SkipVectorSeq<std::uint64_t, std::uint64_t> m(cfg);
  constexpr std::uint64_t kN = 200000;
  for (std::uint64_t k = 0; k < kN; ++k) ASSERT_TRUE(m.insert(k * 31, k));

  auto st = m.stats();
  ASSERT_EQ(st.layers[0].elements, kN);
  // E[layer-1 elements] = kN / T_D = kN / 8; each further layer divides by
  // T_I = 8. Allow generous slack (3x) -- this is a sanity check on the
  // height generator, not a statistical proof.
  double expect = static_cast<double>(kN) / 8.0;
  for (std::uint32_t l = 1; l < cfg.layer_count; ++l) {
    const auto actual = static_cast<double>(st.layers[l].elements);
    if (expect >= 50) {
      EXPECT_GT(actual, expect / 3) << "layer " << l;
      EXPECT_LT(actual, expect * 3) << "layer " << l;
    }
    expect /= 8.0;
  }
  // Chunk fill should hover around the halfway point (between splits at 2T
  // and creation at T): mean fill in (0.25, 1.0).
  EXPECT_GT(st.layers[0].avg_fill, 0.25);
  EXPECT_LE(st.layers[0].avg_fill, 1.0);
}

TEST(ShapeStatistics, DegenerateSkipListShapeHasTallTowers) {
  // With T_I = T_D = 1 the generator falls back to p = 1/2 (classic skip
  // list): layer populations should halve.
  Config cfg = Config::sl_for_elements(1 << 14);
  SkipVectorSeq<std::uint64_t, std::uint64_t> m(cfg);
  for (std::uint64_t k = 0; k < (1 << 14); ++k) ASSERT_TRUE(m.insert(k, k));
  auto st = m.stats();
  const double l1 = static_cast<double>(st.layers[1].elements);
  EXPECT_NEAR(l1 / (1 << 14), 0.5, 0.1);
  if (cfg.layer_count > 2 && st.layers[2].elements > 100) {
    EXPECT_NEAR(static_cast<double>(st.layers[2].elements) / l1, 0.5, 0.15);
  }
}

}  // namespace
}  // namespace sv::core
