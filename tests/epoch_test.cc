// Tests for epoch-based reclamation and the SV-EBR map variant.
#include "reclaim/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/skip_vector_epoch.h"

namespace sv::reclaim {
namespace {

struct Tracked {
  static std::atomic<std::int64_t> live;
  std::uint64_t canary = 0xFEED;
  Tracked() { live.fetch_add(1); }
  ~Tracked() {
    canary = 0xDEAD;
    live.fetch_sub(1);
  }
  static void deleter(void* p) { delete static_cast<Tracked*>(p); }
};
std::atomic<std::int64_t> Tracked::live{0};

TEST(EpochDomain, RetiredNodesFreeAfterEpochAdvance) {
  const auto before = Tracked::live.load();
  {
    EpochDomain d;
    auto ctx = d.thread_ctx();
    for (int i = 0; i < 1000; ++i) {
      ctx.begin_op();
      ctx.retire(new Tracked(), &Tracked::deleter);
      ctx.end_op();
    }
    // end_op periodically advances; after enough ops something was freed.
    EXPECT_GT(d.reclaimed_count(), 0u);
    EXPECT_GT(d.global_epoch(), 2u);
  }
  // Domain destruction frees the rest.
  EXPECT_EQ(Tracked::live.load(), before);
}

TEST(EpochDomain, ActiveReaderBlocksReclamation) {
  EpochDomain d;
  auto reader = d.thread_ctx();
  reader.begin_op();  // pins the current epoch

  std::atomic<std::int64_t> freed_before_release{-1};
  std::thread writer([&] {
    auto ctx = d.thread_ctx();
    const auto base = Tracked::live.load();
    auto* obj = new Tracked();
    ctx.begin_op();
    ctx.retire(obj, &Tracked::deleter);
    ctx.end_op();
    // Hammer advances: the pinned reader must prevent the epoch from
    // moving two steps, so obj must stay live.
    for (int i = 0; i < 2000; ++i) {
      ctx.begin_op();
      ctx.end_op();
    }
    freed_before_release.store(Tracked::live.load() - base);
  });
  writer.join();
  EXPECT_EQ(freed_before_release.load(), 1)
      << "object freed while a reader was pinned in an old epoch";
  reader.end_op();
}

TEST(EpochDomain, ConcurrentChurnNoUseAfterFree) {
  EpochDomain d;
  constexpr int kSlots = 32;
  struct Slot {
    std::atomic<Tracked*> ptr{nullptr};
  };
  std::vector<Slot> slots(kSlots);
  for (auto& s : slots) s.ptr.store(new Tracked());
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      auto ctx = d.thread_ctx();
      Xoshiro256 rng(r + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        ctx.begin_op();
        Tracked* p = slots[rng.next_below(kSlots)].ptr.load(
            std::memory_order_acquire);
        // Inside an epoch section, a published pointer cannot be freed.
        if (p->canary != 0xFEED) bad.fetch_add(1);
        ctx.end_op();
      }
    });
  }
  {
    auto ctx = d.thread_ctx();
    Xoshiro256 rng(99);
    for (int i = 0; i < 30000; ++i) {
      ctx.begin_op();
      const auto s = rng.next_below(kSlots);
      Tracked* fresh = new Tracked();
      Tracked* old = slots[s].ptr.exchange(fresh, std::memory_order_acq_rel);
      ctx.retire(old, &Tracked::deleter);
      ctx.end_op();
    }
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0u);
}

TEST(SkipVectorEpoch, StressMatchesTagInvariant) {
  sv::core::SkipVectorEpoch<std::uint64_t, std::uint64_t> m([] {
    sv::core::Config c;
    c.layer_count = 5;
    c.target_data_vector_size = 4;
    c.target_index_vector_size = 4;
    return c;
  }());
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t + 17);
      for (int i = 0; i < 50000; ++i) {
        const std::uint64_t k = rng.next_below(256);
        switch (rng.next_below(4)) {
          case 0:
            m.insert(k, (k << 32) | 1);
            break;
          case 1:
            m.remove(k);
            break;
          default: {
            auto v = m.lookup(k);
            if (v && (*v >> 32) != k) bad.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0u);
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
  EXPECT_GT(m.reclaimer().domain().reclaimed_count(), 0u)
      << "epoch reclamation should have freed merged-away chunks";
}

}  // namespace
}  // namespace sv::reclaim
