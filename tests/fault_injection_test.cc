// Tests for the sv::debug subsystem: schedule parsing, deterministic
// injection decisions, the structural auditor's negative paths (via
// debug_corrupt), and the flagship determinism property -- an injected
// freeze failure driving the checkpoint-resume path replays bit-for-bit
// from its schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/skip_vector.h"
#include "debug/audit.h"
#include "debug/fault_inject.h"

namespace sv::core {
namespace {

using debug::Action;
using debug::AuditCode;
using debug::FaultInjector;
using debug::Point;
using debug::Schedule;
using Map = SkipVectorSeq<std::uint64_t, std::uint64_t>;

Config Small() {
  Config c;
  c.layer_count = 3;
  c.target_data_vector_size = 4;
  c.target_index_vector_size = 4;
  return c;
}

// Every test leaves the process-wide injector disarmed.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().clear(); }
};

TEST_F(FaultInjectionTest, ScheduleParseRoundTrip) {
  const Schedule s = Schedule::parse(
      "seed=42;pyield=0.25;pfail=0.1;freeze@2=fail;merge@1=yield;"
      "split@3=delay");
  EXPECT_EQ(s.seed, 42u);
  EXPECT_DOUBLE_EQ(s.yield_prob, 0.25);
  EXPECT_DOUBLE_EQ(s.fail_prob, 0.1);
  ASSERT_EQ(s.rules.size(), 3u);
  EXPECT_EQ(s.rules[0].point, Point::kFreeze);
  EXPECT_EQ(s.rules[0].hit, 2u);
  EXPECT_EQ(s.rules[0].action, Action::kFail);
  EXPECT_EQ(s.rules[1].point, Point::kMerge);
  EXPECT_EQ(s.rules[2].action, Action::kDelay);
  // to_string -> parse -> to_string is a fixed point.
  const std::string printed = s.to_string();
  EXPECT_EQ(Schedule::parse(printed).to_string(), printed);
  // Comma separators and empty tokens are accepted too.
  EXPECT_EQ(Schedule::parse("seed=7,thaw@1=yield;;").rules.size(), 1u);
}

TEST_F(FaultInjectionTest, ScheduleParseRejectsMalformedSpecs) {
  EXPECT_THROW(Schedule::parse("bogus"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("notapoint@1=fail"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("freeze@0=fail"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("freeze@1=explode"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("pyield=1.5"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("pfail=-0.1"), std::invalid_argument);
}

TEST_F(FaultInjectionTest, PointNamesRoundTrip) {
  for (std::uint8_t i = 0; i < static_cast<std::uint8_t>(Point::kCount); ++i) {
    const auto p = static_cast<Point>(i);
    EXPECT_EQ(debug::point_from_name(debug::point_name(p)), p);
  }
  EXPECT_THROW(debug::point_from_name("nope"), std::invalid_argument);
}

TEST_F(FaultInjectionTest, ProbabilisticDecisionsAreDeterministic) {
  auto sample = [] {
    Schedule s;
    s.seed = 7;
    s.fail_prob = 0.5;
    FaultInjector::instance().install(s);
    std::vector<bool> got;
    for (int i = 0; i < 200; ++i) {
      got.push_back(FaultInjector::instance().should_fail(Point::kFreeze));
    }
    return got;
  };
  const auto a = sample();
  const auto b = sample();
  EXPECT_EQ(a, b) << "same (seed, point, hit) must give the same decision";
  // At p=0.5 over 200 hits, both outcomes must occur.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 200);
  // A different seed gives a different sequence.
  Schedule s2;
  s2.seed = 8;
  s2.fail_prob = 0.5;
  FaultInjector::instance().install(s2);
  std::vector<bool> c;
  for (int i = 0; i < 200; ++i) {
    c.push_back(FaultInjector::instance().should_fail(Point::kFreeze));
  }
  EXPECT_NE(a, c);
}

TEST_F(FaultInjectionTest, RuleFiresOnExactHitOnly) {
  FaultInjector::instance().install(Schedule::parse("freeze@3=fail"));
  std::vector<bool> got;
  for (int i = 0; i < 5; ++i) {
    got.push_back(FaultInjector::instance().should_fail(Point::kFreeze));
  }
  EXPECT_EQ(got, (std::vector<bool>{false, false, true, false, false}));
  EXPECT_EQ(FaultInjector::instance().hits(Point::kFreeze), 5u);
  EXPECT_EQ(FaultInjector::instance().fired_count(Point::kFreeze), 1u);
  // Other points are untouched.
  EXPECT_EQ(FaultInjector::instance().hits(Point::kMerge), 0u);
}

TEST_F(FaultInjectionTest, HandlerObservesEveryHit) {
  std::vector<std::pair<Point, std::uint64_t>> seen;
  FaultInjector::instance().set_handler(
      [&](Point p, std::uint64_t hit) { seen.emplace_back(p, hit); });
  FaultInjector::instance().reached(Point::kMerge);
  FaultInjector::instance().reached(Point::kMerge);
  FaultInjector::instance().reached(Point::kThaw);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], std::make_pair(Point::kMerge, std::uint64_t{1}));
  EXPECT_EQ(seen[1], std::make_pair(Point::kMerge, std::uint64_t{2}));
  EXPECT_EQ(seen[2], std::make_pair(Point::kThaw, std::uint64_t{1}));
  FaultInjector::instance().clear();
  EXPECT_EQ(FaultInjector::instance().hits(Point::kMerge), 0u);
}

// ---- Auditor ---------------------------------------------------------------

// Populates a map with towers at several heights, so index layers have
// entries. (The map is neither copyable nor movable, hence the out-param.)
void BuildLayered(Map& m) {
  for (std::uint64_t k = 1; k <= 64; ++k) {
    EXPECT_TRUE(m.insert_with_height(k * 10, k * 10, 0));
  }
  EXPECT_TRUE(m.insert_with_height(1000, 1000, 1));
  EXPECT_TRUE(m.insert_with_height(2000, 2000, 1));
  EXPECT_TRUE(m.insert_with_height(3000, 3000, 2));
}

TEST_F(FaultInjectionTest, CleanMapAuditsClean) {
  Map m(Small());
  BuildLayered(m);
  const auto rep = m.validate_structure();
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_GT(rep.nodes_checked, 0u);
  EXPECT_GT(rep.entries_checked, 0u);
  EXPECT_FALSE(rep.truncated);
  EXPECT_NE(rep.to_string().find("audit ok"), std::string::npos);
}

TEST_F(FaultInjectionTest, AuditorCatchesOrphanFlagOnLinkedChild) {
  Map m(Small());
  BuildLayered(m);
  ASSERT_TRUE(m.debug_corrupt(Map::DebugCorruption::kOrphanFlagOnChild));
  const auto rep = m.validate_structure();
  ASSERT_FALSE(rep.ok());
  EXPECT_TRUE(rep.has(AuditCode::kOrphanWithParent)) << rep.to_string();
  // The legacy boolean wrapper must agree and carry the report text.
  std::string err;
  EXPECT_FALSE(m.validate(&err));
  EXPECT_NE(err.find("orphan-with-parent"), std::string::npos) << err;
}

TEST_F(FaultInjectionTest, AuditorCatchesIndexKeyMismatch) {
  Map m(Small());
  BuildLayered(m);
  ASSERT_TRUE(m.debug_corrupt(Map::DebugCorruption::kIndexKeyOffByOne));
  const auto rep = m.validate_structure();
  ASSERT_FALSE(rep.ok());
  EXPECT_TRUE(rep.has(AuditCode::kEntryChildMismatch) ||
              rep.has(AuditCode::kIndexKeyMissingBelow))
      << rep.to_string();
}

TEST_F(FaultInjectionTest, AuditorCatchesClearedChunk) {
  Map m(Small());
  BuildLayered(m);
  ASSERT_TRUE(m.debug_corrupt(Map::DebugCorruption::kClearNonHeadChunk));
  const auto rep = m.validate_structure();
  ASSERT_FALSE(rep.ok());
  EXPECT_TRUE(rep.has(AuditCode::kEmptyNonOrphan)) << rep.to_string();
}

TEST_F(FaultInjectionTest, AuditReportTruncatesAtCap) {
  Map m(Small());
  BuildLayered(m);
  // Stack several corruptions, then audit with a cap of 1.
  ASSERT_TRUE(m.debug_corrupt(Map::DebugCorruption::kOrphanFlagOnChild));
  ASSERT_TRUE(m.debug_corrupt(Map::DebugCorruption::kClearNonHeadChunk));
  const auto rep = m.validate_structure(/*max_violations=*/1);
  EXPECT_EQ(rep.violations.size(), 1u);
  EXPECT_TRUE(rep.truncated);
}

// ---- Deterministic checkpoint-resume replay --------------------------------

// An injected freeze failure at the second freeze of a height-2 insert forces
// the retry to resume from the layer-2 checkpoint (Listing 3 line 14). The
// whole interleaving is a pure function of the schedule, so two runs must
// produce identical hit traces and identical maps.
TEST_F(FaultInjectionTest, InjectedFreezeFailureReplaysDeterministically) {
  using Snapshot = std::array<std::uint64_t,
                              static_cast<std::size_t>(Point::kCount)>;
  auto run_once = [&]() {
    FaultInjector::instance().clear();
    Map m(Small());
    for (std::uint64_t k : {10, 20, 30, 40, 50}) {
      EXPECT_TRUE(m.insert_with_height(k, k, 0));
    }
    const auto restarts_before = m.counters().restarts;
    // Arm after seeding so hit #2 of kFreeze is the target insert's
    // layer-1 freeze.
    FaultInjector::instance().install(Schedule::parse("freeze@2=fail"));
    EXPECT_TRUE(m.insert_with_height(60, 60, 2));

    // freeze hits: layer2 ok, layer1 injected-fail, then after the resume
    // layer1 ok and data-layer ok.
    EXPECT_EQ(FaultInjector::instance().hits(Point::kFreeze), 4u);
    EXPECT_EQ(FaultInjector::instance().fired_count(Point::kFreeze), 1u);
    EXPECT_EQ(FaultInjector::instance().hits(Point::kResume), 1u)
        << "retry must resume from the frozen checkpoint, not from scratch";
    EXPECT_GE(m.counters().restarts, restarts_before + 1);

    const Snapshot snap = FaultInjector::instance().hit_snapshot();
    std::vector<std::pair<std::uint64_t, std::uint64_t>> contents;
    m.for_each([&](std::uint64_t k, std::uint64_t v) {
      contents.emplace_back(k, v);
    });
    const auto rep = m.validate_structure();
    EXPECT_TRUE(rep.ok()) << rep.to_string();
    FaultInjector::instance().clear();
    return std::make_pair(snap, contents);
  };

  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first) << "hit trace must replay exactly";
  EXPECT_EQ(a.second, b.second);
  ASSERT_EQ(a.second.size(), 6u);
  EXPECT_EQ(a.second.back().first, 60u);
}

TEST_F(FaultInjectionTest, InjectionReportNamesFiredPoints) {
  FaultInjector::instance().install(Schedule::parse("merge@1=yield"));
  FaultInjector::instance().reached(Point::kMerge);
  const std::string rep = FaultInjector::instance().report();
  EXPECT_NE(rep.find("merge"), std::string::npos) << rep;
  EXPECT_NE(rep.find("fired=1"), std::string::npos) << rep;
}

}  // namespace
}  // namespace sv::core
