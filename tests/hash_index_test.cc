// Hash sidecar (core/hash_index.h, docs/HASH_INDEX.md): unit tests of the
// hint table, differential tests of sidecar-enabled maps against a std::map
// oracle, and hint-staleness torture under concurrent split/merge churn
// widened by the PR 1 fault-injection schedules. Every assertion here holds
// because hints are advisory: a stale or missing hint may cost a probe but
// must never change an operation's result.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/rng.h"
#include "core/hash_index.h"
#include "core/skip_vector.h"
#include "core/skip_vector_epoch.h"
#include "debug/fault_inject.h"
#include "stats/stats.h"

namespace sv::core {
namespace {

using Table = hashidx::HashChunkIndex::Table<std::uint64_t>;

// The disabled policy must be an empty member so [[no_unique_address]]
// erases it from SkipVectorMap's layout.
static_assert(std::is_empty_v<hashidx::NoIndex::Table<std::uint64_t>>);
static_assert(!hashidx::NoIndex::kEnabled);
static_assert(hashidx::HashChunkIndex::kEnabled);

// Fake chunk pointers: heap allocations so the 48-bit packing constraint is
// exercised with realistic addresses.
struct FakeChunks {
  std::vector<std::unique_ptr<int>> own;
  void* make() {
    own.push_back(std::make_unique<int>(0));
    return own.back().get();
  }
};

TEST(HashIndexTable, PutGetReconfirmEraseRoundTrip) {
  Table t(1 << 10);
  FakeChunks f;
  void* a = f.make();
  void* b = f.make();

  EXPECT_EQ(t.get(42), nullptr);
  t.put(42, a);
  EXPECT_EQ(t.get(42), a);
  EXPECT_TRUE(t.reconfirm(42, a));
  EXPECT_FALSE(t.reconfirm(42, b));

  t.put(42, b);  // overwrite in place
  EXPECT_EQ(t.get(42), b);
  EXPECT_FALSE(t.reconfirm(42, a));

  t.erase(42, a);  // wrong pointer: must not clear the b entry
  EXPECT_EQ(t.get(42), b);
  t.erase(42, b);
  EXPECT_EQ(t.get(42), nullptr);
}

TEST(HashIndexTable, RepointSwingsOnlyMatchingEntries) {
  Table t(1 << 10);
  FakeChunks f;
  void* a = f.make();
  void* b = f.make();
  t.put(7, a);
  t.repoint(7, b, a);  // no (7, b) entry exists: no-op
  EXPECT_EQ(t.get(7), a);
  t.repoint(7, a, b);
  EXPECT_EQ(t.get(7), b);
  EXPECT_TRUE(t.reconfirm(7, b));
  EXPECT_FALSE(t.reconfirm(7, a));
}

TEST(HashIndexTable, ResetClearsEverything) {
  Table t(256);
  FakeChunks f;
  for (std::uint64_t k = 0; k < 500; ++k) t.put(k, f.make());
  t.reset();
  for (std::uint64_t k = 0; k < 500; ++k) EXPECT_EQ(t.get(k), nullptr);
}

TEST(HashIndexTable, OverflowStealsSlotsButNeverLies) {
  // A tiny table under heavy load: most entries get stolen, but any entry
  // that IS returned must be the exact pointer last published for that key.
  Table t(64);
  FakeChunks f;
  std::map<std::uint64_t, void*> published;
  Xoshiro256 rng(99);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t k = rng.next_below(1024);
    void* p = f.make();
    t.put(k, p);
    published[k] = p;
  }
  std::size_t hits = 0;
  for (const auto& [k, p] : published) {
    void* got = t.get(k);
    if (got == nullptr) continue;  // stolen or fingerprint-collided: fine
    // A non-null answer may be a fingerprint collision, but then reconfirm
    // against the published pointer must agree with what get returned.
    if (got == p) {
      EXPECT_TRUE(t.reconfirm(k, p));
      ++hits;
    }
  }
  // Even a 64-slot table keeps SOME of 1024 keys.
  EXPECT_GT(hits, 0u);
}

TEST(HashIndexTable, PutSweepsDuplicateFingerprints) {
  // put must leave at most one live entry per fingerprint (the FIX protocol
  // finds entries by exact word; a duplicate would dangle). Republishing a
  // key to a new chunk must make the old entry unfindable even via
  // reconfirm, which scans the whole bucket.
  Table t(1 << 10);
  FakeChunks f;
  void* a = f.make();
  void* b = f.make();
  for (int i = 0; i < 100; ++i) {
    t.put(5, a);
    t.put(5, b);
    EXPECT_FALSE(t.reconfirm(5, a)) << "stale duplicate survived";
    EXPECT_EQ(t.get(5), b);
  }
}

// ---- Differential: sidecar-enabled map vs std::map oracle -------------------

using HashDiffParam = std::tuple<std::uint64_t /*seed*/, std::uint32_t /*t_i*/,
                                 std::uint32_t /*t_d*/>;

class HashDifferentialTest : public testing::TestWithParam<HashDiffParam> {
 protected:
  void TearDown() override { debug::FaultInjector::instance().clear(); }
};

TEST_P(HashDifferentialTest, AgreesWithOracleUnderChurn) {
  const auto [seed, t_i, t_d] = GetParam();
  Config cfg;
  cfg.target_index_vector_size = t_i;
  cfg.target_data_vector_size = t_d;
  cfg.layer_count = 5;
  cfg.hash_index_slots = 512;  // deliberately small: force slot stealing

  // Deterministic yields at the structural points stress hint maintenance
  // ordering even single-threaded (and match the PR 1 schedule grammar).
  debug::FaultInjector::instance().install(
      debug::Schedule::parse("seed=3;pyield=0.02"));

  SkipVectorHashSeq<std::uint64_t, std::uint64_t> sv(cfg);
  std::map<std::uint64_t, std::uint64_t> oracle;

  Xoshiro256 rng(seed);
  for (int i = 0; i < 15000; ++i) {
    const std::uint64_t k = rng.next_below(600);
    switch (rng.next_below(4)) {
      case 0: {
        const std::uint64_t v = rng.next();
        ASSERT_EQ(sv.insert(k, v), oracle.emplace(k, v).second) << "@" << i;
        break;
      }
      case 1:
        ASSERT_EQ(sv.remove(k), oracle.erase(k) > 0) << "@" << i;
        break;
      case 2: {
        const std::uint64_t v = rng.next();
        auto it = oracle.find(k);
        const bool expect = it != oracle.end();
        if (expect) it->second = v;
        ASSERT_EQ(sv.update(k, v), expect) << "@" << i;
        break;
      }
      default: {
        auto got = sv.lookup(k);
        auto it = oracle.find(k);
        ASSERT_EQ(got.has_value(), it != oracle.end()) << "@" << i;
        if (got) ASSERT_EQ(*got, it->second) << "@" << i;
      }
    }
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> from_sv;
  sv.for_each([&](auto k, auto v) { from_sv.emplace_back(k, v); });
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> expect(
      oracle.begin(), oracle.end());
  EXPECT_EQ(from_sv, expect);
  std::string err;
  EXPECT_TRUE(sv.validate(&err)) << err;
}

INSTANTIATE_TEST_SUITE_P(
    Streams, HashDifferentialTest,
    testing::Values(HashDiffParam{31, 4, 4}, HashDiffParam{32, 1, 8},
                    HashDiffParam{33, 8, 1}, HashDiffParam{34, 32, 32},
                    HashDiffParam{35, 2, 2}, HashDiffParam{36, 16, 2}),
    [](const testing::TestParamInfo<HashDiffParam>& info) {
      return "Seed" + std::to_string(std::get<0>(info.param)) + "_TI" +
             std::to_string(std::get<1>(info.param)) + "_TD" +
             std::to_string(std::get<2>(info.param));
    });

// ---- Hint-staleness torture under concurrent split/merge churn --------------
//
// Each worker owns the keys congruent to its id and keeps a private oracle;
// all workers share the map, so every thread's splits and merges churn the
// chunks (and therefore the hints) under everyone else's keys. Lookup
// results must match the owner's oracle at all times, and the final map
// must equal the union of the oracles.

template <class MapT>
class HashTortureTest : public testing::Test {
 protected:
  void TearDown() override { debug::FaultInjector::instance().clear(); }
};

using TortureMaps =
    testing::Types<SkipVectorHash<std::uint64_t, std::uint64_t>,
                   SkipVectorEpochHash<std::uint64_t, std::uint64_t>>;
TYPED_TEST_SUITE(HashTortureTest, TortureMaps);

TYPED_TEST(HashTortureTest, StripedOracleUnderChurn) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kStripeKeys = 512;
  Config cfg;
  cfg.layer_count = 5;
  cfg.target_data_vector_size = 4;  // tiny chunks: constant split/merge
  cfg.target_index_vector_size = 4;
  cfg.hash_index_slots = 1024;

  // Yields at split/merge/retire widen the windows where hints are stale.
  debug::FaultInjector::instance().install(debug::Schedule::parse(
      "seed=11;split@1=yield;merge@1=yield;retire@1=yield;pyield=0.01"));

  TypeParam m(cfg);
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::map<std::uint64_t, std::uint64_t>> oracles(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& oracle = oracles[t];
      Xoshiro256 rng(1000 + t);
      for (int i = 0; i < 20000; ++i) {
        // Key owned exclusively by this thread (stride by thread count).
        const std::uint64_t k =
            rng.next_below(kStripeKeys) * kThreads + static_cast<std::uint64_t>(t);
        const std::uint64_t v = rng.next();
        switch (rng.next_below(8)) {
          case 0:
          case 1:
          case 2: {
            const bool expect = oracle.emplace(k, v).second;
            if (m.insert(k, v) != expect) errors.fetch_add(1);
            break;
          }
          case 3: {
            const bool expect = oracle.erase(k) > 0;
            if (m.remove(k) != expect) errors.fetch_add(1);
            break;
          }
          case 4: {
            auto it = oracle.find(k);
            const bool expect = it != oracle.end();
            if (expect) it->second = v;
            if (m.update(k, v) != expect) errors.fetch_add(1);
            break;
          }
          default: {
            auto got = m.lookup(k);
            auto it = oracle.find(k);
            if (got.has_value() != (it != oracle.end())) {
              errors.fetch_add(1);
            } else if (got && *got != it->second) {
              errors.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(errors.load(), 0u);

  std::map<std::uint64_t, std::uint64_t> merged;
  for (const auto& o : oracles) merged.insert(o.begin(), o.end());
  std::vector<std::pair<std::uint64_t, std::uint64_t>> from_map;
  m.for_each([&](auto k, auto v) { from_map.emplace_back(k, v); });
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> expect(
      merged.begin(), merged.end());
  EXPECT_EQ(from_map, expect);
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

// ---- Counters ---------------------------------------------------------------

TEST(HashIndexStats, CountersMoveWhenSidecarEnabled) {
  if (!stats::kEnabled) GTEST_SKIP() << "built with SV_STATS=OFF";
  Config cfg;
  cfg.layer_count = 4;
  cfg.target_data_vector_size = 4;
  cfg.target_index_vector_size = 4;
  SkipVectorHashSeq<std::uint64_t, std::uint64_t> m(cfg);
  for (std::uint64_t k = 0; k < 512; ++k) ASSERT_TRUE(m.insert(k, k));
  // Warm lookups repair any hints lost to splits; the second pass hits.
  for (std::uint64_t k = 0; k < 512; ++k) ASSERT_TRUE(m.lookup(k));
  for (std::uint64_t k = 0; k < 512; ++k) ASSERT_TRUE(m.lookup(k));
  const auto snap = m.stats_registry().snapshot();
  EXPECT_GT(snap[stats::Counter::kHashHits], 0u);
  EXPECT_GT(snap[stats::Counter::kHashRebuilds], 0u);
}

TEST(HashIndexStats, ClearResetsHintsSafely) {
  // clear() must reset the table: reused keys after clear() land in brand
  // new chunks and every answer must reflect the post-clear state.
  Config cfg;
  cfg.layer_count = 4;
  cfg.target_data_vector_size = 4;
  cfg.target_index_vector_size = 4;
  SkipVectorHashSeq<std::uint64_t, std::uint64_t> m(cfg);
  for (int round = 0; round < 5; ++round) {
    for (std::uint64_t k = 0; k < 256; ++k) {
      ASSERT_TRUE(m.insert(k, k + static_cast<std::uint64_t>(round)));
    }
    for (std::uint64_t k = 0; k < 256; ++k) {
      auto v = m.lookup(k);
      ASSERT_TRUE(v.has_value());
      ASSERT_EQ(*v, k + static_cast<std::uint64_t>(round));
    }
    m.clear();
    for (std::uint64_t k = 0; k < 256; ++k) ASSERT_FALSE(m.lookup(k));
  }
}

}  // namespace
}  // namespace sv::core
