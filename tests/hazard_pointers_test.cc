// Tests for the hazard-pointer domain: protection semantics, retirement
// bounds, thread attach/detach lifecycle, and a use-after-retire canary
// under concurrency.
#include "reclaim/hazard_pointers.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "reclaim/reclaimer.h"

namespace sv::reclaim {
namespace {

struct Tracked {
  static std::atomic<std::int64_t> live;
  std::uint64_t canary = 0xABCDEF;
  Tracked() { live.fetch_add(1); }
  ~Tracked() {
    canary = 0xDEAD;
    live.fetch_sub(1);
  }
  static void deleter(void* p) { delete static_cast<Tracked*>(p); }
};
std::atomic<std::int64_t> Tracked::live{0};

TEST(HazardDomain, RetireWithoutProtectionEventuallyFrees) {
  const std::int64_t before = Tracked::live.load();
  {
    HazardDomain d;
    auto ctx = d.thread_ctx();
    for (int i = 0; i < 500; ++i) {
      ctx.retire(new Tracked(), &Tracked::deleter);
    }
    d.flush();
    EXPECT_GT(d.reclaimed_count(), 0u);
    EXPECT_EQ(Tracked::live.load(), before) << "flush should free everything";
  }
  EXPECT_EQ(Tracked::live.load(), before);
}

TEST(HazardDomain, ProtectedPointerSurvivesScan) {
  HazardDomain d;
  auto ctx = d.thread_ctx();
  auto* obj = new Tracked();
  ctx.protect(0, obj);
  ctx.retire(obj, &Tracked::deleter);
  d.flush();
  EXPECT_EQ(obj->canary, 0xABCDEFu) << "protected object was freed";
  ctx.drop(0);
  d.flush();
  // Now unprotected: the flush must have freed it (canary check would be
  // use-after-free; rely on the live counter instead).
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardDomain, DropAllClearsEverySlot) {
  HazardDomain d;
  auto ctx = d.thread_ctx();
  std::vector<Tracked*> objs;
  for (int i = 0; i < HazardDomain::kSlotsPerThread; ++i) {
    objs.push_back(new Tracked());
    ctx.protect(i, objs.back());
    ctx.retire(objs.back(), &Tracked::deleter);
  }
  d.flush();
  EXPECT_EQ(Tracked::live.load(), HazardDomain::kSlotsPerThread);
  ctx.drop_all();
  d.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardDomain, DomainDestructorFreesPending) {
  const std::int64_t before = Tracked::live.load();
  {
    HazardDomain d;
    auto ctx = d.thread_ctx();
    for (int i = 0; i < 10; ++i) ctx.retire(new Tracked(), &Tracked::deleter);
    // No flush: destructor must free the backlog.
  }
  EXPECT_EQ(Tracked::live.load(), before);
}

TEST(HazardDomain, ExitedThreadsHandOffRetirementsAndSlots) {
  HazardDomain d;
  for (int round = 0; round < 8; ++round) {
    std::thread([&] {
      auto ctx = d.thread_ctx();
      for (int i = 0; i < 5; ++i) ctx.retire(new Tracked(), &Tracked::deleter);
    }).join();
  }
  // Thread records must be reused, not accumulated.
  EXPECT_LE(d.attached_threads(), 2u);
  d.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(HazardDomain, ManyDomainsPerThread) {
  // The thread-local cache must route to the right domain.
  HazardDomain d1, d2;
  auto c1 = d1.thread_ctx();
  auto c2 = d2.thread_ctx();
  auto* a = new Tracked();
  auto* b = new Tracked();
  c1.protect(0, a);
  c2.retire(a, &Tracked::deleter);  // protection lives in d1, not d2!
  c2.retire(b, &Tracked::deleter);
  d2.flush();
  // d2's scan cannot see d1's slots: `a` must have been freed by d2 even
  // though d1 protects it. That is by design -- protection is per-domain,
  // and a structure must retire into the same domain that protects.
  EXPECT_EQ(Tracked::live.load(), 0);
  c1.drop_all();
}

// Concurrency canary: readers protect-and-validate objects published in a
// shared slot map while a reclaimer thread retires them. A freed object's
// canary flips, so any validated read of a dead canary is a protocol bug.
TEST(HazardDomainStress, ProtectValidateRace) {
  HazardDomain d;
  constexpr int kSlots = 64;
  struct Slot {
    std::atomic<Tracked*> ptr{nullptr};
  };
  std::vector<Slot> slots(kSlots);
  for (auto& s : slots) s.ptr.store(new Tracked());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      auto ctx = d.thread_ctx();
      Xoshiro256 rng(r + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto i = rng.next_below(kSlots);
        Tracked* p = slots[i].ptr.load(std::memory_order_acquire);
        ctx.protect(0, p);
        // Validate: still published? (The structure's seqlock plays this
        // role in the skip vector.)
        if (slots[i].ptr.load(std::memory_order_acquire) != p) {
          ctx.drop(0);
          continue;
        }
        if (p->canary != 0xABCDEF) bad.fetch_add(1);
        ctx.drop(0);
      }
    });
  }
  std::thread reclaimer([&] {
    auto ctx = d.thread_ctx();
    Xoshiro256 rng(99);
    for (int i = 0; i < 20000; ++i) {
      const auto s = rng.next_below(kSlots);
      Tracked* fresh = new Tracked();
      Tracked* old = slots[s].ptr.exchange(fresh, std::memory_order_acq_rel);
      ctx.retire(old, &Tracked::deleter);
    }
  });
  reclaimer.join();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0u) << "validated read of a freed object";
  d.flush();
}

TEST(ReclaimerPolicies, LeakAndImmediateShapes) {
  // LeakReclaimer: retire is a no-op (nothing freed).
  const std::int64_t before = Tracked::live.load();
  LeakReclaimer leak;
  auto lctx = leak.thread_ctx();
  auto* kept = new Tracked();
  lctx.retire(kept, &Tracked::deleter);
  EXPECT_EQ(Tracked::live.load(), before + 1);
  delete kept;  // test cleanup

  // ImmediateReclaimer: retire frees synchronously.
  ImmediateReclaimer imm;
  auto ictx = imm.thread_ctx();
  ictx.retire(new Tracked(), &Tracked::deleter);
  EXPECT_EQ(Tracked::live.load(), before);
}

}  // namespace
}  // namespace sv::reclaim
