// LatencyHistogram bucket-mapping and percentile tests. The mapping
// regression this pins down: the old index_for offset every value >= 64 by a
// full octave, leaving indices 64..127 unreachable (dead buckets) and
// value_for disagreeing with index_for over the whole second octave.
#include <gtest/gtest.h>

#include <cstdint>

#include "benchutil/histogram.h"

namespace sv::benchutil {
namespace {

TEST(LatencyHistogram, IndexIsExactBelowSixtyFour) {
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(LatencyHistogram::index_for(v), static_cast<int>(v));
    EXPECT_EQ(LatencyHistogram::value_for(static_cast<int>(v)), v);
  }
}

TEST(LatencyHistogram, EveryIndexInFirstOctavesIsReachableAndRoundTrips) {
  // index_for(value_for(i)) == i for every bucket in the first 16 octaves --
  // in particular 64..127, the dead range under the old mapping.
  for (int i = 0; i < 16 << LatencyHistogram::kBucketBits; ++i) {
    const std::uint64_t lo = LatencyHistogram::value_for(i);
    EXPECT_EQ(LatencyHistogram::index_for(lo), i) << "bucket " << i;
  }
}

TEST(LatencyHistogram, ExhaustiveValuesMapIntoTheirBucketBounds) {
  // For every value in the first few octaves: its bucket's lower bound is
  // <= v, and the next bucket starts strictly above v.
  for (std::uint64_t v = 0; v < (std::uint64_t{1} << 13); ++v) {
    const int idx = LatencyHistogram::index_for(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, LatencyHistogram::kBuckets);
    EXPECT_LE(LatencyHistogram::value_for(idx), v) << "v=" << v;
    EXPECT_GT(LatencyHistogram::value_for(idx + 1), v) << "v=" << v;
  }
}

TEST(LatencyHistogram, IndexIsMonotoneAcrossOctaveBoundaries) {
  // Walk powers of two and their neighbors (in increasing value order) up
  // to 2^40: the index must never decrease as the value grows.
  int prev = -1;
  std::uint64_t prev_v = 0;
  for (int bit = 0; bit <= 40; ++bit) {
    const std::uint64_t p = std::uint64_t{1} << bit;
    for (std::uint64_t v : {p, p + 1, 2 * p - 1}) {
      if (v < prev_v) continue;  // degenerate triple at p == 1
      const int idx = LatencyHistogram::index_for(v);
      EXPECT_GE(idx, prev) << "v=" << v;
      prev = idx;
      prev_v = v;
    }
  }
}

TEST(LatencyHistogram, HugeValuesClampToLastBucket) {
  EXPECT_EQ(LatencyHistogram::index_for(~std::uint64_t{0}),
            LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogram, PercentileSingleSample) {
  LatencyHistogram h;
  h.record(1000);
  EXPECT_EQ(h.count(), 1u);
  // Every percentile of a single sample is that sample's bucket.
  const std::uint64_t lo =
      LatencyHistogram::value_for(LatencyHistogram::index_for(1000));
  EXPECT_EQ(h.percentile(0), lo);
  EXPECT_EQ(h.percentile(50), lo);
  EXPECT_EQ(h.percentile(100), lo);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
}

TEST(LatencyHistogram, PercentileEmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.percentile(100), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, PercentilesOrderAndBracketUniformData) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  const auto p50 = h.percentile(50);
  const auto p90 = h.percentile(90);
  const auto p99 = h.percentile(99);
  const auto p100 = h.percentile(100);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, p100);
  // Bucket lower bounds: within one bucket width of the exact answer.
  EXPECT_NEAR(static_cast<double>(p50), 5000.0, 5000.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(p90), 9000.0, 9000.0 * 0.02);
  // p=100 must land in max's bucket, not run off the array.
  EXPECT_EQ(p100,
            LatencyHistogram::value_for(LatencyHistogram::index_for(10000)));
}

TEST(LatencyHistogram, SecondOctaveCountsAreNotMisfiled) {
  // Values 64..127 must land in their own buckets (the old mapping filed
  // them an octave too high, colliding with 128..255).
  LatencyHistogram h;
  for (std::uint64_t v = 64; v < 128; ++v) h.record(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.percentile(100), 127u);
  const auto p0 = h.percentile(0);
  EXPECT_GE(p0, 64u);
  EXPECT_LT(p0, 128u);
}

TEST(LatencyHistogram, MergeCombinesCountsAndMax) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(1000000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.max(), 1000000u);
  EXPECT_EQ(a.percentile(25), 10u);
  EXPECT_LE(a.percentile(75), 1000000u);
  EXPECT_GE(a.percentile(75),
            LatencyHistogram::value_for(
                LatencyHistogram::index_for(1000000)));
  EXPECT_DOUBLE_EQ(a.mean(), (100 * 10 + 100 * 1000000.0) / 200.0);
}

}  // namespace
}  // namespace sv::benchutil
