// Tests for the quiescent iterator, clear(), erase_range(), snapshot(),
// and the latency histogram utility.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "benchutil/histogram.h"
#include "common/rng.h"
#include "core/skip_vector.h"

namespace sv::core {
namespace {

using SeqMap = SkipVectorSeq<std::uint64_t, std::uint64_t>;

Config Tiny() {
  Config c;
  c.layer_count = 4;
  c.target_data_vector_size = 4;
  c.target_index_vector_size = 4;
  return c;
}

TEST(Iterator, EmptyMapBeginIsEnd) {
  SeqMap m(Tiny());
  EXPECT_TRUE(m.begin() == m.end());
}

TEST(Iterator, VisitsAllInOrder) {
  SeqMap m(Tiny());
  std::map<std::uint64_t, std::uint64_t> oracle;
  Xoshiro256 rng(4);
  for (int i = 0; i < 700; ++i) {
    const std::uint64_t k = rng.next_below(2000);
    const std::uint64_t v = rng.next();
    if (m.insert(k, v)) oracle.emplace(k, v);
  }
  // Interleave removals so orphans/empty chunks exist on the walk path.
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t k = rng.next_below(2000);
    if (m.remove(k)) oracle.erase(k);
  }
  auto expect = oracle.begin();
  for (auto it = m.begin(); it != m.end(); ++it, ++expect) {
    ASSERT_NE(expect, oracle.end());
    EXPECT_EQ(it->first, expect->first);
    EXPECT_EQ((*it).second, expect->second);
  }
  EXPECT_EQ(expect, oracle.end());
  // Range-for works too.
  std::size_t n = 0;
  for (const auto& [k, v] : m) {
    (void)k;
    (void)v;
    ++n;
  }
  EXPECT_EQ(n, oracle.size());
}

TEST(Iterator, PostIncrementSemantics) {
  SeqMap m(Tiny());
  m.insert(1, 10);
  m.insert(2, 20);
  auto it = m.begin();
  auto old = it++;
  EXPECT_EQ(old->first, 1u);
  EXPECT_EQ(it->first, 2u);
}

TEST(Clear, ResetsToEmptyOperationalMap) {
  SeqMap m(Tiny());
  for (std::uint64_t k = 0; k < 500; ++k) ASSERT_TRUE(m.insert(k, k));
  m.clear();
  EXPECT_EQ(m.size_approx(), 0u);
  EXPECT_TRUE(m.begin() == m.end());
  EXPECT_FALSE(m.lookup(10).has_value());
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
  // Fully usable again.
  EXPECT_TRUE(m.insert(42, 1));
  EXPECT_EQ(m.lookup(42).value(), 1u);
  for (std::uint64_t k = 0; k < 500; ++k) m.insert(k, k);
  ASSERT_TRUE(m.validate(&err)) << err;
  EXPECT_EQ(m.size_approx(), 500u);
}

TEST(EraseRange, RemovesExactlyTheRange) {
  SeqMap m(Tiny());
  for (std::uint64_t k = 0; k < 300; ++k) ASSERT_TRUE(m.insert(k, k));
  EXPECT_EQ(m.erase_range(100, 199), 100u);
  EXPECT_EQ(m.size_approx(), 200u);
  for (std::uint64_t k = 0; k < 300; ++k) {
    EXPECT_EQ(m.lookup(k).has_value(), k < 100 || k > 199) << k;
  }
  EXPECT_EQ(m.erase_range(100, 199), 0u);
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
}

TEST(Snapshot, ConsistentCopy) {
  SeqMap m(Tiny());
  for (std::uint64_t k = 0; k < 100; k += 2) ASSERT_TRUE(m.insert(k, k * 3));
  auto snap = m.snapshot(10, 20);
  ASSERT_EQ(snap.size(), 6u);  // 10, 12, 14, 16, 18, 20
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].first, 10 + 2 * i);
    EXPECT_EQ(snap[i].second, snap[i].first * 3);
  }
}

TEST(Serialization, SaveLoadRoundTrip) {
  SeqMap m(Tiny());
  Xoshiro256 rng(8);
  for (int i = 0; i < 1000; ++i) m.insert(rng.next_below(5000), rng.next());
  std::stringstream buf;
  m.save(buf);

  SeqMap restored(Config::for_elements(m.size_approx()));
  restored.load(buf);
  std::string err;
  ASSERT_TRUE(restored.validate(&err)) << err;
  ASSERT_EQ(restored.size_approx(), m.size_approx());
  auto it = restored.begin();
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    ASSERT_TRUE(it != restored.end());
    EXPECT_EQ(it->first, k);
    EXPECT_EQ(it->second, v);
    ++it;
  });
  EXPECT_TRUE(it == restored.end());
  // Restored map is packed (bulk_load path) and fully operational.
  EXPECT_TRUE(restored.insert(1 << 20, 1));
}

TEST(Serialization, LoadRejectsGarbage) {
  SeqMap m(Tiny());
  std::stringstream buf("not a snapshot");
  EXPECT_THROW(m.load(buf), std::runtime_error);
  // Truncation detection.
  SeqMap src(Tiny());
  src.insert(1, 2);
  src.insert(3, 4);
  std::stringstream ok;
  src.save(ok);
  std::string bytes = ok.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() - 4));
  SeqMap dst(Tiny());
  EXPECT_THROW(dst.load(truncated), std::runtime_error);
}

TEST(Serialization, EmptyMapRoundTrip) {
  SeqMap m(Tiny());
  std::stringstream buf;
  m.save(buf);
  SeqMap restored(Tiny());
  restored.load(buf);
  EXPECT_EQ(restored.size_approx(), 0u);
  std::string err;
  EXPECT_TRUE(restored.validate(&err)) << err;
}

TEST(Serialization, LoadRejectsOversizedCount) {
  // A corrupt header claiming 2^40 elements in a near-empty stream must be
  // rejected BEFORE any proportional allocation (the old format trusted the
  // count and fed it straight to vector::reserve).
  SeqMap src(Tiny());
  src.insert(1, 2);
  std::stringstream buf;
  src.save(buf);
  std::string bytes = buf.str();
  const std::uint64_t huge = std::uint64_t{1} << 40;
  std::memcpy(bytes.data() + sizeof(std::uint64_t) + sizeof(std::uint16_t),
              &huge, sizeof(huge));
  std::stringstream corrupt(bytes);
  SeqMap dst(Tiny());
  EXPECT_THROW(dst.load(corrupt), std::runtime_error);
}

TEST(Serialization, LoadRejectsForeignEndianness) {
  SeqMap src(Tiny());
  src.insert(1, 2);
  std::stringstream buf;
  src.save(buf);
  std::string bytes = buf.str();
  // Byte-swap the endianness marker: the file now reads as if saved on a
  // foreign-endian host. The old format accepted it and produced garbled
  // keys; the new one must reject it cleanly.
  std::swap(bytes[sizeof(std::uint64_t)], bytes[sizeof(std::uint64_t) + 1]);
  std::stringstream swapped(bytes);
  SeqMap dst(Tiny());
  EXPECT_THROW(dst.load(swapped), std::runtime_error);
}

// ---- Snapshots and batches (sequential semantics) ---------------------------

TEST(SnapshotAt, PinnedVersionIgnoresLaterWrites) {
  SeqMap m(Tiny());
  for (std::uint64_t k = 0; k < 64; ++k) ASSERT_TRUE(m.insert(k, k));
  auto view = m.snapshot_at();
  ASSERT_TRUE(view.versioned());
  // Mutate heavily after the pin: overwrites, removes, inserts, splits.
  for (std::uint64_t k = 0; k < 64; ++k) m.update(k, k + 1000);
  for (std::uint64_t k = 0; k < 64; k += 2) m.remove(k);
  for (std::uint64_t k = 100; k < 200; ++k) m.insert(k, k);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
  m.range_for_each_at(view, 0, 500,
                      [&](std::uint64_t k, std::uint64_t v) {
                        got.emplace_back(k, v);
                      });
  ASSERT_EQ(got.size(), 64u);
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(got[k].first, k);
    EXPECT_EQ(got[k].second, k);  // pre-update value
  }
  // A fresh snapshot sees the current state.
  auto now = m.snapshot(0, 500);
  EXPECT_EQ(now.size(), 32u + 100u);
}

TEST(SnapshotAt, ViewsAtDifferentVersionsCoexist) {
  SeqMap m(Tiny());
  ASSERT_TRUE(m.insert(1, 10));
  auto v1 = m.snapshot_at();
  ASSERT_TRUE(m.insert(2, 20));
  auto v2 = m.snapshot_at();
  ASSERT_TRUE(m.remove(1));
  std::size_t n1 = m.range_for_each_at(v1, 0, 100,
                                       [](std::uint64_t, std::uint64_t) {});
  std::size_t n2 = m.range_for_each_at(v2, 0, 100,
                                       [](std::uint64_t, std::uint64_t) {});
  EXPECT_EQ(n1, 1u);
  EXPECT_EQ(n2, 2u);
  EXPECT_EQ(m.snapshot(0, 100).size(), 1u);
}

TEST(ApplyBatch, MixedPutsAndRemoves) {
  SeqMap m(Tiny());
  for (std::uint64_t k = 0; k < 10; ++k) ASSERT_TRUE(m.insert(k, k));
  using Op = SeqMap::BatchOp;
  std::vector<Op> ops = {
      Op::put(3, 333),    // overwrite: applied == false
      Op::put(50, 500),   // new key: applied == true
      Op::remove(4),      // present: applied == true
      Op::remove(99),     // absent: applied == false
  };
  EXPECT_EQ(m.apply_batch(ops), 2u);
  EXPECT_FALSE(ops[0].applied);
  EXPECT_TRUE(ops[1].applied);
  EXPECT_TRUE(ops[2].applied);
  EXPECT_FALSE(ops[3].applied);
  EXPECT_EQ(m.lookup(3).value(), 333u);
  EXPECT_EQ(m.lookup(50).value(), 500u);
  EXPECT_FALSE(m.lookup(4).has_value());
  EXPECT_EQ(m.size_approx(), 10u);  // +1 -1
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
}

TEST(ApplyBatch, LargeBatchSplitsAndToweredRemoves) {
  SeqMap m(Tiny());
  // Grow a multi-layer structure so batch keys cross many chunks and some
  // removes hit towered keys (index-layer demotion path).
  for (std::uint64_t k = 0; k < 500; ++k) ASSERT_TRUE(m.insert(k, k));
  using Op = SeqMap::BatchOp;
  std::vector<Op> ops;
  for (std::uint64_t k = 0; k < 500; k += 3) ops.push_back(Op::remove(k));
  for (std::uint64_t k = 1000; k < 1200; ++k) ops.push_back(Op::put(k, k));
  const std::size_t applied = m.apply_batch(ops);
  EXPECT_EQ(applied, 167u + 200u);
  for (std::uint64_t k = 0; k < 500; ++k) {
    EXPECT_EQ(m.lookup(k).has_value(), k % 3 != 0) << k;
  }
  for (std::uint64_t k = 1000; k < 1200; ++k) {
    EXPECT_EQ(m.lookup(k).value(), k);
  }
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
}

TEST(ApplyBatch, SameKeyOpsApplyInSubmissionOrder) {
  SeqMap m(Tiny());
  using Op = SeqMap::BatchOp;
  std::vector<Op> ops = {Op::put(7, 70), Op::remove(7), Op::put(7, 71)};
  m.apply_batch(ops);
  EXPECT_EQ(m.lookup(7).value(), 71u);
  std::vector<Op> ops2 = {Op::put(7, 72), Op::remove(7)};
  m.apply_batch(ops2);
  EXPECT_FALSE(m.lookup(7).has_value());
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
}

TEST(ApplyBatch, SnapshotNeverSeesPartialBatch) {
  SeqMap m(Tiny());
  for (std::uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(m.insert(k, 1));
  auto before = m.snapshot_at();
  using Op = SeqMap::BatchOp;
  std::vector<Op> ops;
  for (std::uint64_t k = 0; k < 100; ++k) ops.push_back(Op::put(k, 2));
  m.apply_batch(ops);
  // The pre-batch view sees every old value; the live map every new one.
  std::size_t old_vals = 0;
  m.range_for_each_at(before, 0, 200, [&](std::uint64_t, std::uint64_t v) {
    old_vals += v == 1 ? 1 : 0;
  });
  EXPECT_EQ(old_vals, 100u);
  std::size_t new_vals = 0;
  m.range_for_each(0, 200, [&](std::uint64_t, std::uint64_t v) {
    new_vals += v == 2 ? 1 : 0;
  });
  EXPECT_EQ(new_vals, 100u);
}

}  // namespace
}  // namespace sv::core

namespace sv::benchutil {
namespace {

TEST(LatencyHistogram, ExactBelowSixtyFour) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(10);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile(50), 10u);
  EXPECT_EQ(h.max(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(LatencyHistogram, PercentilesAreOrderedAndBounded) {
  LatencyHistogram h;
  Xoshiro256 rng(2);
  std::uint64_t max_seen = 0;
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = rng.next_below(1 << 20);
    max_seen = std::max(max_seen, v);
    h.record(v);
  }
  const auto p50 = h.percentile(50);
  const auto p90 = h.percentile(90);
  const auto p99 = h.percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  EXPECT_EQ(h.max(), max_seen);
  // Uniform distribution: p50 within 10% of the midpoint.
  EXPECT_NEAR(static_cast<double>(p50), (1 << 19), (1 << 19) * 0.1);
  EXPECT_FALSE(h.summary().empty());
}

TEST(LatencyHistogram, MergeCombines) {
  LatencyHistogram a, b;
  for (int i = 0; i < 50; ++i) a.record(100);
  for (int i = 0; i < 50; ++i) b.record(1000000);
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_LT(a.percentile(25), 200u);
  EXPECT_GT(a.percentile(75), 500000u);
}

TEST(LatencyHistogram, HugeValuesClampToLastBucket) {
  LatencyHistogram h;
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.percentile(50), 0u);
}

}  // namespace
}  // namespace sv::benchutil
