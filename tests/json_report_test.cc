// Tests for the sv-bench JSON emitter: JsonValue semantics (insertion
// order, replacement, escaping, deterministic number formatting) and a
// golden-file test pinning the full schema byte-for-byte. The golden file
// is the schema contract for tools/benchdiff.py and tools/plot_results.py;
// schema_version must be bumped when it changes (docs/OBSERVABILITY.md).
//
// Regenerate after an intentional schema change with:
//   SV_REGEN_GOLDEN=1 build/tests/json_report_test
#include "benchutil/json_report.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "stats/stats.h"

#ifndef SV_TEST_GOLDEN_DIR
#error "SV_TEST_GOLDEN_DIR must be defined by the build"
#endif

namespace {

using sv::benchutil::BenchReport;
using sv::benchutil::JsonValue;

TEST(JsonValue, ScalarFormatting) {
  EXPECT_EQ(JsonValue().dump(), "null\n");
  EXPECT_EQ(JsonValue(true).dump(), "true\n");
  EXPECT_EQ(JsonValue(false).dump(), "false\n");
  EXPECT_EQ(JsonValue(std::uint64_t{18446744073709551615ull}).dump(),
            "18446744073709551615\n");
  EXPECT_EQ(JsonValue(-42).dump(), "-42\n");
  // Shortest-round-trip doubles: stable and exact across runs.
  EXPECT_EQ(JsonValue(0.1).dump(), "0.1\n");
  EXPECT_EQ(JsonValue(2.5).dump(), "2.5\n");
  EXPECT_EQ(JsonValue(1e300).dump(), "1e+300\n");
  // Non-finite values have no JSON representation; emitted as null.
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(),
            "null\n");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(),
            "null\n");
}

TEST(JsonValue, StringEscaping) {
  EXPECT_EQ(JsonValue("plain").dump(), "\"plain\"\n");
  EXPECT_EQ(JsonValue("q\" b\\ n\n r\r t\t").dump(),
            "\"q\\\" b\\\\ n\\n r\\r t\\t\"\n");
  EXPECT_EQ(JsonValue(std::string("ctl\x01")).dump(), "\"ctl\\u0001\"\n");
}

TEST(JsonValue, ObjectInsertionOrderAndReplacement) {
  JsonValue o = JsonValue::object();
  o.set("b", 1);
  o.set("a", 2);
  o.set("b", 3);  // replaces in place: order stays b, a
  EXPECT_EQ(o.size(), 2u);
  EXPECT_EQ(o.dump(), "{\n  \"b\": 3,\n  \"a\": 2\n}\n");
}

TEST(JsonValue, ScalarArraysStayOnOneLine) {
  JsonValue a = JsonValue::array();
  a.push(1);
  a.push(2.5);
  a.push("x");
  EXPECT_EQ(a.dump(), "[1, 2.5, \"x\"]\n");

  JsonValue nested = JsonValue::object();
  nested.set("v", std::move(a));
  EXPECT_EQ(nested.dump(), "{\n  \"v\": [1, 2.5, \"x\"]\n}\n");
}

TEST(JsonValue, NestedObjectsIndent) {
  JsonValue o = JsonValue::object();
  o.set("outer", JsonValue::object()).set("inner", 1);
  o.set("empty", JsonValue::object());
  o.set("empty_arr", JsonValue::array());
  EXPECT_EQ(o.dump(),
            "{\n"
            "  \"outer\": {\n"
            "    \"inner\": 1\n"
            "  },\n"
            "  \"empty\": {},\n"
            "  \"empty_arr\": []\n"
            "}\n");
}

TEST(JsonReport, CompilerStringNonEmpty) {
  EXPECT_FALSE(sv::benchutil::compiler_string().empty());
}

TEST(JsonReport, DefaultBuildSectionPresent) {
  BenchReport r("probe");
  const std::string out = r.to_json().dump();
  EXPECT_NE(out.find("\"schema\": \"sv-bench\""), std::string::npos);
  EXPECT_NE(out.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(out.find("\"compiler\""), std::string::npos);
  EXPECT_NE(out.find("\"stats_enabled\""), std::string::npos);
}

// Build a report with every payload kind the schema defines, with all
// environment-dependent fields pinned.
BenchReport golden_report() {
  BenchReport r("golden_bench");
  JsonValue build = JsonValue::object();
  build.set("compiler", "test-cc 0.0.0");
  build.set("flags", "-O2 -DNDEBUG");
  build.set("git_sha", "deadbeef0123");
  build.set("build_type", "Release");
  build.set("stats_enabled", true);
  r.set_build_info(std::move(build));

  r.config().set("range_bits", std::uint64_t{20});
  r.config().set("seconds", 0.5);
  JsonValue threads = JsonValue::array();
  threads.push(std::uint64_t{1});
  threads.push(std::uint64_t{2});
  r.config().set("threads", std::move(threads));
  r.config().set("note", "escape check: \"quotes\" \\ and\ttabs");

  JsonValue& row = r.add_result("SV-HP");
  JsonValue& params = row.set("params", JsonValue::object());
  params.set("range_bits", std::uint64_t{20});
  params.set("threads", std::uint64_t{2});
  row.set("throughput_mops", 12.125);
  JsonValue tm = JsonValue::array();
  tm.push(6.0625);
  tm.push(6.0625);
  row.set("thread_mops", std::move(tm));
  JsonValue& lat = row.set("latency_ns", JsonValue::object());
  lat.set("count", std::uint64_t{1000});
  lat.set("mean", 250.5);
  lat.set("p50", std::uint64_t{200});
  lat.set("p99", std::uint64_t{900});

  sv::stats::Snapshot snap;
  snap.values[static_cast<std::size_t>(sv::stats::Counter::kLookupHit)] = 7;
  snap.values[static_cast<std::size_t>(sv::stats::Counter::kRetired)] = 3;
  row.set("stats", sv::benchutil::stats_json(snap));

  JsonValue& row2 = r.add_result("FSL");
  row2.set("params", JsonValue::object()).set("threads", std::uint64_t{2});
  row2.set("metrics", JsonValue::object()).set("range_kops", 41.75);
  return r;
}

TEST(JsonReport, GoldenSchema) {
  const std::string golden_path =
      std::string(SV_TEST_GOLDEN_DIR) + "/bench_report.json";
  const std::string got = golden_report().to_json().dump();

  if (std::getenv("SV_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << got;
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (run with SV_REGEN_GOLDEN=1 to create)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(got, buf.str())
      << "sv-bench JSON output changed; if intentional, bump schema_version "
         "(src/benchutil/json_report.h, docs/OBSERVABILITY.md) and "
         "regenerate with SV_REGEN_GOLDEN=1";
}

TEST(JsonReport, StatsJsonCoversEveryCounter) {
  sv::stats::Snapshot snap;
  JsonValue j = sv::benchutil::stats_json(snap);
  EXPECT_EQ(j.size(), sv::stats::kCounterCount);
}

TEST(JsonReport, WriteDashMeansStdout) {
  // "-" and "" route to stdout and must not create a file named "-".
  BenchReport r("stdout_probe");
  testing::internal::CaptureStdout();
  EXPECT_TRUE(r.write("-"));
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("\"sv-bench\""), std::string::npos);
}

TEST(JsonReport, WriteFailureReturnsFalse) {
  BenchReport r("fail_probe");
  EXPECT_FALSE(r.write("/nonexistent-dir-xyz/out.json"));
}

}  // namespace
