// Layout-conversion torture: with Config::adaptive on and tiny chunks, the
// map keeps flipping data chunks sorted <-> unsorted (and retuning their
// target size) at split/merge time while a differential oracle checks every
// result. Fault-injection schedules yield/delay inside the structural
// transitions that perform the conversions, widening the windows where a
// freshly retagged chunk is visible to concurrent readers. Typed across the
// reclamation/allocation policies (HP, EBR, HP+Pool, EBR+Pool) so the
// conversion path is exercised over every reclamation discipline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/skip_vector.h"
#include "core/skip_vector_epoch.h"
#include "debug/fault_inject.h"
#include "stats/stats.h"

namespace sv::core {
namespace {

using debug::FaultInjector;
using debug::Schedule;
using vectormap::Layout;

template <class R, class A = alloc::MallocNodeAllocator>
struct Policy {
  using Reclaimer = R;
  using Alloc = A;
};

using Policies =
    testing::Types<Policy<reclaim::HazardReclaimer>,
                   Policy<reclaim::EpochReclaimer>,
                   Policy<reclaim::HazardReclaimer, alloc::PoolNodeAllocator>,
                   Policy<reclaim::EpochReclaimer, alloc::PoolNodeAllocator>>;

// Tiny chunks + adaptive with an eager policy: chunks small enough that
// the default hysteresis floor (64 samples per chunk window) is easy to
// satisfy, and the contention gate disabled so the single-threaded
// differential's write phase flips chunks unsorted deterministically (the
// shipped default demands retry evidence; tests/adapt_test.cc covers that
// gate in isolation).
Config AdaptiveSmall(Layout start) {
  Config c;
  c.layer_count = 4;
  c.target_data_vector_size = 4;
  c.target_index_vector_size = 4;
  c.data_layout = start;
  c.adaptive = true;
  c.adapt_policy.contended_writes_per_retry = 0;
  return c;
}

template <class P>
class LayoutTortureTest : public testing::Test {
 protected:
  using Map = SkipVectorMap<std::uint64_t, std::uint64_t,
                            typename P::Reclaimer, typename P::Alloc>;

  void TearDown() override { FaultInjector::instance().clear(); }
};

TYPED_TEST_SUITE(LayoutTortureTest, Policies);

// Sequential differential: a read-heavy phase (chunks earn sorted tags as
// they split) followed by a write-heavy phase (replacement chunks flip back
// to unsorted), with a schedule yielding/delaying inside split, merge,
// tower-split, batch-commit, and version-fold. Every op is checked against
// a std::map oracle, so a conversion that drops, duplicates, or reorders a
// mapping is caught at the next touch of its key.
TYPED_TEST(LayoutTortureTest, DifferentialAcrossLayoutFlips) {
  FaultInjector::instance().install(Schedule::parse(
      "seed=91;pyield@split=0.5;pdelay@split=0.25;pyield@merge=0.5;"
      "pdelay@merge=0.25;pyield@tower-split=0.5;pyield@batch-commit=0.5;"
      "pyield@version-fold=0.5;pfail@freeze=0.05"));
  typename TestFixture::Map m(AdaptiveSmall(Layout::kUnsorted));
  std::map<std::uint64_t, std::uint64_t> oracle;
  Xoshiro256 rng(4242);
  constexpr std::uint64_t kKeys = 512;

  auto run_phase = [&](unsigned pct_lookup, int ops) {
    for (int i = 0; i < ops; ++i) {
      const std::uint64_t k = rng.next_below(kKeys);
      if (rng.next_below(100) < pct_lookup) {
        auto it = oracle.find(k);
        auto got = m.lookup(k);
        ASSERT_EQ(got.has_value(), it != oracle.end()) << "lookup " << k;
        if (got) ASSERT_EQ(*got, it->second) << "lookup value " << k;
      } else if (rng.next_below(2) == 0) {
        const std::uint64_t v = rng.next();
        ASSERT_EQ(m.insert(k, v), oracle.emplace(k, v).second)
            << "insert " << k << " @op " << i;
      } else {
        ASSERT_EQ(m.remove(k), oracle.erase(k) > 0)
            << "remove " << k << " @op " << i;
      }
      if (i % 4096 == 4095) {
        std::string err;
        ASSERT_TRUE(m.validate(&err)) << err << " @op " << i;
      }
    }
  };

  run_phase(/*pct_lookup=*/90, 30000);  // read-dominated: converge sorted
  run_phase(/*pct_lookup=*/5, 30000);   // write-dominated: converge unsorted

  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
  ASSERT_EQ(m.size_approx(), oracle.size());
  auto it = oracle.begin();
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    ASSERT_TRUE(it != oracle.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  });
  EXPECT_TRUE(it == oracle.end());

  if (stats::kEnabled) {
    const auto s = m.stats_registry().snapshot();
    EXPECT_GT(s[stats::Counter::kLayoutToSorted], 0u)
        << "read phase produced no unsorted->sorted conversions";
    EXPECT_GT(s[stats::Counter::kLayoutToUnsorted], 0u)
        << "write phase produced no sorted->unsorted conversions";
  }
}

// Concurrent torture: threads own disjoint key stripes (key % threads == t)
// so each keeps an exact local oracle while all of them share chunks --
// conversions happen under genuine concurrency with the schedule widening
// the transition windows. Afterwards the union of the local oracles must
// equal the map exactly.
TYPED_TEST(LayoutTortureTest, ConcurrentStripedDifferential) {
  FaultInjector::instance().install(Schedule::parse(
      "seed=17;pyield@split=0.25;pdelay@split=0.1;pyield@merge=0.25;"
      "pdelay@merge=0.1;pyield@tower-split=0.25;pyield@version-fold=0.25"));
  typename TestFixture::Map m(AdaptiveSmall(Layout::kSorted));
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kKeys = 4096;
  constexpr int kOps = 40000;

  std::vector<std::map<std::uint64_t, std::uint64_t>> oracles(kThreads);
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto& oracle = oracles[t];
      Xoshiro256 rng(1000 + t);
      for (int i = 0; i < kOps && !failed.load(std::memory_order_relaxed);
           ++i) {
        // Stay on this thread's stripe so the local oracle is exact.
        const std::uint64_t k = rng.next_below(kKeys / kThreads) * kThreads + t;
        switch (rng.next_below(4)) {
          case 0: {
            const std::uint64_t v = rng.next();
            if (m.insert(k, v) != oracle.emplace(k, v).second) {
              failed.store(true, std::memory_order_relaxed);
            }
            break;
          }
          case 1:
            if (m.remove(k) != (oracle.erase(k) > 0)) {
              failed.store(true, std::memory_order_relaxed);
            }
            break;
          default: {
            auto it = oracle.find(k);
            auto got = m.lookup(k);
            if (got.has_value() != (it != oracle.end()) ||
                (got && *got != it->second)) {
              failed.store(true, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_FALSE(failed.load()) << "an op disagreed with its stripe oracle";

  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
  std::map<std::uint64_t, std::uint64_t> expect;
  for (const auto& o : oracles) expect.insert(o.begin(), o.end());
  ASSERT_EQ(m.size_approx(), expect.size());
  auto it = expect.begin();
  std::uint64_t mismatches = 0;
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    if (it == expect.end() || it->first != k || it->second != v) {
      ++mismatches;
    } else {
      ++it;
    }
  });
  EXPECT_EQ(mismatches, 0u);
  EXPECT_TRUE(it == expect.end());
}

// Range scans across mid-flight conversions: scans feed read evidence
// (note_scan) while point writers feed write evidence, so chunks keep
// receiving contradictory signals and flip repeatedly; every scan must
// still observe keys in strictly increasing order whatever tag the chunk
// carries when visited.
TYPED_TEST(LayoutTortureTest, ScansStayOrderedWhileChunksFlip) {
  FaultInjector::instance().install(
      Schedule::parse("seed=3;pyield@split=0.3;pyield@merge=0.3"));
  typename TestFixture::Map m(AdaptiveSmall(Layout::kUnsorted));
  constexpr std::uint64_t kKeys = 2048;
  for (std::uint64_t k = 0; k < kKeys; k += 2) ASSERT_TRUE(m.insert(k, k));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> disorder{0};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < 2; ++t) {
    workers.emplace_back([&, t] {  // writers: churn point ops
      Xoshiro256 rng(7 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = rng.next_below(kKeys);
        if (rng.next_below(2) == 0) {
          m.insert(k, k);
        } else {
          m.remove(k);
        }
      }
    });
  }
  for (unsigned t = 0; t < 2; ++t) {
    workers.emplace_back([&, t] {  // scanners: ordered windows
      Xoshiro256 rng(77 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t lo = rng.next_below(kKeys);
        std::uint64_t prev = 0;
        bool first = true;
        m.range_for_each(lo, lo + 256, [&](std::uint64_t k, std::uint64_t) {
          if (!first && k <= prev) {
            disorder.fetch_add(1, std::memory_order_relaxed);
          }
          prev = k;
          first = false;
        });
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true);
  for (auto& w : workers) w.join();
  EXPECT_EQ(disorder.load(), 0u) << "a scan saw keys out of order";
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

}  // namespace
}  // namespace sv::core
