// Tests for the lock-based lazy skip list baseline: oracle model check,
// contended exactly-once semantics, mixed churn, and a differential run
// against the skip vector.
#include "baselines/lazy_skiplist.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/skip_vector.h"

namespace sv::baselines {
namespace {

TEST(LazySkipList, SequentialModelCheck) {
  LazySkipList<std::uint64_t, std::uint64_t> m;
  std::map<std::uint64_t, std::uint64_t> oracle;
  Xoshiro256 rng(61);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t k = rng.next_below(400);
    switch (rng.next_below(3)) {
      case 0: {
        const std::uint64_t v = rng.next();
        ASSERT_EQ(m.insert(k, v), oracle.emplace(k, v).second) << i;
        break;
      }
      case 1:
        ASSERT_EQ(m.remove(k), oracle.erase(k) > 0) << i;
        break;
      default: {
        auto got = m.lookup(k);
        auto it = oracle.find(k);
        ASSERT_EQ(got.has_value(), it != oracle.end()) << i;
        if (got) {
          ASSERT_EQ(*got, it->second) << i;
        }
      }
    }
  }
  EXPECT_TRUE(m.validate());
  auto it = oracle.begin();
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  });
  EXPECT_EQ(it, oracle.end());
}

TEST(LazySkipList, FullKeyDomainUsable) {
  LazySkipList<std::uint64_t, std::uint64_t> m;
  EXPECT_TRUE(m.insert(0, 1));
  EXPECT_TRUE(m.insert(~std::uint64_t{0}, 2));
  EXPECT_EQ(m.lookup(0).value(), 1u);
  EXPECT_EQ(m.lookup(~std::uint64_t{0}).value(), 2u);
}

TEST(LazySkipList, ContendedInsertRemoveExactlyOnce) {
  LazySkipList<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kKeys = 2048;
  std::atomic<std::uint64_t> ins{0}, rem{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(40 + t);
      std::vector<std::uint64_t> keys(kKeys);
      for (std::uint64_t k = 0; k < kKeys; ++k) keys[k] = k;
      for (std::uint64_t i = kKeys; i > 1; --i) {
        std::swap(keys[i - 1], keys[rng.next_below(i)]);
      }
      std::uint64_t li = 0;
      for (auto k : keys) li += m.insert(k, k) ? 1 : 0;
      ins.fetch_add(li);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ins.load(), kKeys);
  EXPECT_TRUE(m.validate());
  threads.clear();
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(50 + t);
      std::vector<std::uint64_t> keys(kKeys);
      for (std::uint64_t k = 0; k < kKeys; ++k) keys[k] = k;
      for (std::uint64_t i = kKeys; i > 1; --i) {
        std::swap(keys[i - 1], keys[rng.next_below(i)]);
      }
      std::uint64_t lr = 0;
      for (auto k : keys) lr += m.remove(k) ? 1 : 0;
      rem.fetch_add(lr);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(rem.load(), kKeys);
  EXPECT_TRUE(m.validate());
}

TEST(LazySkipList, MixedChurnTaggedValues) {
  LazySkipList<std::uint64_t, std::uint64_t> m;
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(70 + t);
      for (int i = 0; i < 60000; ++i) {
        const std::uint64_t k = rng.next_below(256);
        switch (rng.next_below(4)) {
          case 0:
            m.insert(k, (k << 32) | 7);
            break;
          case 1:
            m.remove(k);
            break;
          default: {
            auto v = m.lookup(k);
            if (v && (*v >> 32) != k) bad.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_TRUE(m.validate());
}

TEST(LazySkipList, DifferentialAgainstSkipVector) {
  LazySkipList<std::uint64_t, std::uint64_t> lsl;
  core::SkipVectorSeq<std::uint64_t, std::uint64_t> sv;
  Xoshiro256 rng(81);
  for (int i = 0; i < 15000; ++i) {
    const std::uint64_t k = rng.next_below(500);
    switch (rng.next_below(3)) {
      case 0: {
        const std::uint64_t v = rng.next();
        ASSERT_EQ(lsl.insert(k, v), sv.insert(k, v)) << i;
        break;
      }
      case 1:
        ASSERT_EQ(lsl.remove(k), sv.remove(k)) << i;
        break;
      default:
        ASSERT_EQ(lsl.lookup(k), sv.lookup(k)) << i;
    }
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> a, b;
  lsl.for_each([&](auto k, auto v) { a.emplace_back(k, v); });
  sv.for_each([&](auto k, auto v) { b.emplace_back(k, v); });
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sv::baselines
