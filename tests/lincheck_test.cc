// Linearizability-checking harness tests: WGL checker verdicts on
// hand-built histories, dump/load replay, recorder merge semantics, a
// clean-run matrix across every map variant behind RecordingMap, and the
// fault-injected mutation matrix (each ordering mutant must produce a
// history the checker rejects; see docs/LINEARIZABILITY.md).
#include <gtest/gtest.h>

#include <concepts>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "baselines/fraser_skiplist.h"
#include "check/history.h"
#include "check/wgl.h"
#include "common/rng.h"
#include "core/adapters.h"
#include "core/sharded.h"
#include "core/skip_vector.h"
#include "core/skip_vector_epoch.h"
#include "debug/fault_inject.h"

namespace sv::check {
namespace {

Event ev(OpKind kind, std::uint64_t key, std::uint64_t value, bool ok,
         std::uint64_t t0, std::uint64_t t1, std::uint32_t thread = 0) {
  return Event{t0, t1, key, value, thread, kind, ok};
}

// ---- Checker verdicts on synthetic histories ------------------------------

TEST(WglChecker, AcceptsSequentialLifeCycle) {
  History h;
  h.events = {
      ev(OpKind::kLookup, 7, 0, false, 0, 10),
      ev(OpKind::kInsert, 7, 41, true, 20, 30),
      ev(OpKind::kLookup, 7, 41, true, 40, 50),
      ev(OpKind::kUpdate, 7, 42, true, 60, 70),
      ev(OpKind::kRangeObserve, 7, 42, true, 80, 90),
      ev(OpKind::kRemove, 7, 0, true, 100, 110),
      ev(OpKind::kLookup, 7, 0, false, 120, 130),
  };
  EXPECT_TRUE(check_history(h).ok());
}

TEST(WglChecker, AcceptsEitherOrderForOverlappingOps) {
  // A lookup entirely inside an insert's interval may observe the key as
  // absent (linearized before) or present (after) -- both accepted.
  for (bool observed : {false, true}) {
    History h;
    h.events = {
        ev(OpKind::kInsert, 3, 9, true, 0, 100, 0),
        ev(OpKind::kLookup, 3, observed ? 9u : 0u, observed, 40, 60, 1),
    };
    EXPECT_TRUE(check_history(h).ok()) << "observed=" << observed;
  }
}

TEST(WglChecker, RejectsLostUpdate) {
  // Non-overlapping: insert returns true, later lookup misses the key.
  History h;
  h.events = {
      ev(OpKind::kInsert, 5, 1, true, 0, 10),
      ev(OpKind::kLookup, 5, 0, false, 20, 30),
  };
  const CheckResult res = check_history(h);
  EXPECT_EQ(res.verdict, CheckResult::Verdict::kViolation);
  EXPECT_FALSE(res.explanation.empty());
}

TEST(WglChecker, RejectsStaleValue) {
  History h;
  h.events = {
      ev(OpKind::kInsert, 5, 1, true, 0, 10),
      ev(OpKind::kUpdate, 5, 2, true, 20, 30),
      ev(OpKind::kLookup, 5, 1, true, 40, 50),  // stale: must see 2
  };
  EXPECT_EQ(check_history(h).verdict, CheckResult::Verdict::kViolation);
}

TEST(WglChecker, RejectsFailedRemoveOnPresentKey) {
  History h;
  h.events = {
      ev(OpKind::kInsert, 9, 4, true, 0, 10),
      ev(OpKind::kRemove, 9, 0, false, 20, 30),  // key is present: must win
  };
  EXPECT_EQ(check_history(h).verdict, CheckResult::Verdict::kViolation);
}

TEST(WglChecker, UnknownInitialStatePinsToFirstObservation) {
  // Histories may start mid-life (bounded windows, offline dumps): the
  // first linearized observation fixes the unknown initial state.
  History ok;
  ok.events = {
      ev(OpKind::kLookup, 2, 7, true, 0, 10),  // collapses unknown -> {7}
      ev(OpKind::kLookup, 2, 7, true, 20, 30),
  };
  EXPECT_TRUE(check_history(ok).ok());

  History bad;
  bad.events = {
      ev(OpKind::kLookup, 2, 7, true, 0, 10),
      ev(OpKind::kLookup, 2, 8, true, 20, 30),  // no write changed the value
  };
  EXPECT_EQ(check_history(bad).verdict, CheckResult::Verdict::kViolation);

  History absent;  // failed insert pins "present", later absent read is a bug
  absent.events = {
      ev(OpKind::kInsert, 2, 5, false, 0, 10),
      ev(OpKind::kLookup, 2, 0, false, 20, 30),
  };
  EXPECT_EQ(check_history(absent).verdict, CheckResult::Verdict::kViolation);
}

TEST(WglChecker, KeysArePartitionedIndependently) {
  // A violation on one key is found even with healthy traffic on others.
  History h;
  h.events = {
      ev(OpKind::kInsert, 1, 1, true, 0, 10),
      ev(OpKind::kInsert, 2, 2, true, 0, 10, 1),
      ev(OpKind::kLookup, 1, 1, true, 20, 30),
      ev(OpKind::kLookup, 2, 0, false, 20, 30, 1),  // lost update on key 2
  };
  const CheckResult res = check_history(h);
  EXPECT_EQ(res.verdict, CheckResult::Verdict::kViolation);
  EXPECT_NE(res.explanation.find("key 2"), std::string::npos)
      << res.explanation;
}

// ---- Dump / load replay ---------------------------------------------------

TEST(HistoryDump, RoundtripPreservesEventsAndVerdict) {
  History h;
  h.events = {
      ev(OpKind::kInsert, 5, 1, true, 0, 10, 3),
      ev(OpKind::kRangeObserve, 5, 1, true, 15, 40, 1),
      ev(OpKind::kRemove, 5, 0, true, 20, 30, 2),
      ev(OpKind::kLookup, 5, 0, false, 50, 60, 0),
  };
  std::stringstream ss;
  h.dump(ss);
  const History r = History::load(ss);
  ASSERT_EQ(r.events.size(), h.events.size());
  for (std::size_t i = 0; i < h.events.size(); ++i) {
    EXPECT_EQ(r.events[i].invoke_ts, h.events[i].invoke_ts) << i;
    EXPECT_EQ(r.events[i].response_ts, h.events[i].response_ts) << i;
    EXPECT_EQ(r.events[i].key, h.events[i].key) << i;
    EXPECT_EQ(r.events[i].value, h.events[i].value) << i;
    EXPECT_EQ(r.events[i].thread, h.events[i].thread) << i;
    EXPECT_EQ(r.events[i].kind, h.events[i].kind) << i;
    EXPECT_EQ(r.events[i].ok, h.events[i].ok) << i;
  }
  EXPECT_EQ(check_history(r).verdict, check_history(h).verdict);
}

TEST(HistoryDump, LoadRejectsMalformedInput) {
  {
    std::stringstream ss("not a history\n");
    EXPECT_THROW(History::load(ss), std::runtime_error);
  }
  {
    std::stringstream ss("# sv-history v1\nop 0 frobnicate 1 2 1 0 1\n");
    EXPECT_THROW(History::load(ss), std::invalid_argument);
  }
  {
    // response before invoke
    std::stringstream ss("# sv-history v1\nop 0 insert 1 2 1 50 40\n");
    EXPECT_THROW(History::load(ss), std::runtime_error);
  }
}

// ---- Recorder -------------------------------------------------------------

TEST(HistoryRecorder, MergesThreadLogsSortedByInvocation) {
  HistoryRecorder rec;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPer = 5000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&rec, t] {
      auto& log = rec.thread_log();
      for (std::uint64_t i = 0; i < kPer; ++i) {
        const std::uint64_t t0 = tsc_now();
        const std::uint64_t t1 = tsc_now();
        log.record(OpKind::kInsert, i, static_cast<std::uint64_t>(t), true, t0,
                   t1);
      }
    });
  }
  for (auto& th : ts) th.join();

  const History h = rec.merge();
  ASSERT_EQ(h.events.size(), kThreads * kPer);
  for (std::size_t i = 1; i < h.events.size(); ++i) {
    ASSERT_LE(h.events[i - 1].invoke_ts, h.events[i].invoke_ts) << i;
  }
  EXPECT_EQ(rec.size(), kThreads * kPer);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.merge().events.empty());
  // Logs survive clear(): the same threads' registrations are reusable.
  rec.thread_log().record(OpKind::kLookup, 1, 0, false, 1, 2);
  EXPECT_EQ(rec.size(), 1u);
}

// ---- Recorded-run harness (shared by the clean and mutation matrices) -----

// Runs `windows` barrier-free windows of a mixed workload over a wrapped
// map: ground (sequential lookup of every key pins each key's initial
// state), run `threads` workers, quiesce, check the merged history. Returns
// the first non-linearizable result, or kLinearizable.
template <class RMap>
CheckResult run_recorded_windows(RMap& map, HistoryRecorder& rec, int threads,
                                 std::uint64_t keys,
                                 std::uint64_t ops_per_thread, int windows,
                                 std::uint64_t seed, History* bad = nullptr) {
  using Inner = std::remove_reference_t<decltype(map.inner())>;
  for (int w = 0; w < windows; ++w) {
    for (std::uint64_t k = 1; k <= keys; ++k) map.lookup(k);  // ground
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
      ts.emplace_back([&, t, w] {
        Xoshiro256 rng(Xoshiro256(seed ^ (static_cast<std::uint64_t>(t) << 32) ^
                                  static_cast<std::uint64_t>(w))
                           .next());
        std::uint64_t seq = 0;
        for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
          const std::uint64_t k = 1 + rng.next_below(keys);
          const std::uint64_t v = (static_cast<std::uint64_t>(t) << 48) |
                                  (static_cast<std::uint64_t>(w) << 32) |
                                  (seq++ & 0xffffffffu);
          switch (rng.next_below(10)) {
            case 0:
            case 1:
            case 2:
            case 3:
              map.insert(k, v);
              break;
            case 4:
            case 5:
              map.remove(k);
              break;
            case 6:
              if constexpr (requires(Inner& m) {
                              { m.update(k, v) } -> std::convertible_to<bool>;
                            }) {
                map.update(k, v);
              } else {
                map.insert(k, v);
              }
              break;
            case 7:
              if constexpr (requires(Inner& m) {
                              m.range_for_each(
                                  k, k, [](std::uint64_t, std::uint64_t) {});
                            }) {
                map.range_for_each(k, k + rng.next_below(16),
                                   [](std::uint64_t, std::uint64_t) {});
              } else {
                map.lookup(k);
              }
              break;
            default:
              map.lookup(k);
              break;
          }
        }
      });
    }
    for (auto& th : ts) th.join();
    const History h = rec.merge();
    const CheckResult res = check_history(h);
    rec.clear();
    if (!res.ok()) {
      if (bad != nullptr) *bad = h;
      return res;
    }
  }
  return CheckResult{};
}

// ---- Clean-run matrix: every variant's recorded history is accepted -------

template <class M>
struct MapMaker;

template <>
struct MapMaker<core::SkipVector<std::uint64_t, std::uint64_t>> {
  static constexpr const char* kName = "SV-HP";
  using Map = core::SkipVector<std::uint64_t, std::uint64_t>;
  static core::RecordingMap<Map> make(HistoryRecorder* rec) {
    return core::RecordingMap<Map>(rec, SmallCfg());
  }
  static core::Config SmallCfg() {
    core::Config c;
    c.layer_count = 3;
    c.target_data_vector_size = 4;
    c.target_index_vector_size = 4;
    return c;
  }
};

template <>
struct MapMaker<core::SkipVectorEpoch<std::uint64_t, std::uint64_t>> {
  static constexpr const char* kName = "SV-EBR";
  using Map = core::SkipVectorEpoch<std::uint64_t, std::uint64_t>;
  static core::RecordingMap<Map> make(HistoryRecorder* rec) {
    return core::RecordingMap<Map>(
        rec, MapMaker<core::SkipVector<std::uint64_t, std::uint64_t>>::
                 SmallCfg());
  }
};

template <>
struct MapMaker<core::ShardedSkipVector<std::uint64_t, std::uint64_t>> {
  static constexpr const char* kName = "sharded";
  using Map = core::ShardedSkipVector<std::uint64_t, std::uint64_t>;
  static core::RecordingMap<Map> make(HistoryRecorder* rec) {
    return core::RecordingMap<Map>(
        rec, /*key_space=*/256, /*shards=*/4,
        MapMaker<core::SkipVector<std::uint64_t, std::uint64_t>>::SmallCfg());
  }
};

template <>
struct MapMaker<baselines::FraserSkipList<std::uint64_t, std::uint64_t>> {
  static constexpr const char* kName = "FSL";
  using Map = baselines::FraserSkipList<std::uint64_t, std::uint64_t>;
  static core::RecordingMap<Map> make(HistoryRecorder* rec) {
    return core::RecordingMap<Map>(rec);
  }
};

using CleanMatrixTypes =
    testing::Types<core::SkipVector<std::uint64_t, std::uint64_t>,
                   core::SkipVectorEpoch<std::uint64_t, std::uint64_t>,
                   core::ShardedSkipVector<std::uint64_t, std::uint64_t>,
                   baselines::FraserSkipList<std::uint64_t, std::uint64_t>>;

template <class M>
class LincheckCleanMatrixTest : public testing::Test {};

TYPED_TEST_SUITE(LincheckCleanMatrixTest, CleanMatrixTypes);

TYPED_TEST(LincheckCleanMatrixTest, RecordedRunsAreLinearizable) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    HistoryRecorder rec;
    auto map = MapMaker<TypeParam>::make(&rec);
    History bad;
    const CheckResult res = run_recorded_windows(
        map, rec, /*threads=*/4, /*keys=*/64, /*ops_per_thread=*/2000,
        /*windows=*/3, seed, &bad);
    std::stringstream dump;
    if (!res.ok()) bad.dump(dump);
    ASSERT_TRUE(res.ok()) << MapMaker<TypeParam>::kName << " seed " << seed
                          << ": " << res.explanation << "\n"
                          << dump.str();
  }
}

// ---- Transactional histories (sv::txn alphabet) ---------------------------

TEST(WglTxn, MarkerNamesRoundTripThroughDumpLoad) {
  History h;
  h.events = {
      ev(OpKind::kTxnBegin, 0, 0, true, 0, 0),
      ev(OpKind::kLookup, 1, 0, false, 10, 20),
      ev(OpKind::kBatchPut, 1, 5, true, 10, 20),
      ev(OpKind::kTxnCommit, 0, 0, true, 10, 20),
      ev(OpKind::kTxnAbort, 0, 0, true, 30, 30),
  };
  std::stringstream ss;
  h.dump(ss);
  const History r = History::load(ss);
  ASSERT_EQ(r.events.size(), h.events.size());
  EXPECT_EQ(r.events[0].kind, OpKind::kTxnBegin);
  EXPECT_EQ(r.events[3].kind, OpKind::kTxnCommit);
  EXPECT_EQ(r.events[4].kind, OpKind::kTxnAbort);
  EXPECT_TRUE(check_history(r).ok());
}

TEST(WglTxn, AcceptsCommittedTxnDecomposition) {
  // One committed RMW txn: the validated read (lookup) and the write
  // (batch-put) share the commit interval -- a single point must satisfy
  // both, which exists here (read 0-absent then upsert 5).
  History h;
  h.events = {
      ev(OpKind::kTxnBegin, 0, 0, true, 0, 0),
      ev(OpKind::kLookup, 1, 0, false, 10, 20),
      ev(OpKind::kBatchPut, 1, 5, true, 10, 20),
      ev(OpKind::kTxnCommit, 0, 0, true, 10, 20),
      ev(OpKind::kLookup, 1, 5, true, 30, 40),  // later read sees the commit
  };
  EXPECT_TRUE(check_history(h).ok());
}

TEST(WglTxn, AbortedTxnIsInvisible) {
  // An aborted txn emits only its marker; the key it would have written
  // stays absent, and the checker accepts that.
  History h;
  h.events = {
      ev(OpKind::kTxnBegin, 0, 0, true, 0, 0),
      ev(OpKind::kTxnAbort, 0, 0, true, 10, 20),
      ev(OpKind::kLookup, 1, 0, false, 30, 40),
  };
  EXPECT_TRUE(check_history(h).ok());
}

TEST(WglTxn, RejectsSeededOrderingMutant) {
  // Seeded bug: two sequential committed txns upsert key 1 (value 1, then
  // value 2), but a grounded later read observes the FIRST value -- as if
  // the second commit's write was reordered before the first. The checker
  // must reject this transactional history.
  History h;
  h.events = {
      ev(OpKind::kTxnBegin, 0, 0, true, 0, 0),
      ev(OpKind::kBatchPut, 1, 1, true, 10, 20),
      ev(OpKind::kTxnCommit, 0, 0, true, 10, 20),
      ev(OpKind::kTxnBegin, 0, 0, true, 30, 30),
      ev(OpKind::kBatchPut, 1, 2, false, 40, 50),
      ev(OpKind::kTxnCommit, 0, 0, true, 40, 50),
      ev(OpKind::kLookup, 1, 1, true, 60, 70),  // stale: must see 2
  };
  const CheckResult res = check_history(h);
  EXPECT_EQ(res.verdict, CheckResult::Verdict::kViolation);
  EXPECT_FALSE(res.explanation.empty());
}

TEST(WglTxn, RejectsTornCommitAcrossKeys) {
  // A committed txn wrote keys 1 and 2 in one commit interval, but later
  // sequential reads see key 1's write and NOT key 2's: no single
  // linearization point exists for key 2's subhistory.
  History h;
  h.events = {
      ev(OpKind::kLookup, 1, 0, false, 0, 5),   // ground both keys absent
      ev(OpKind::kLookup, 2, 0, false, 0, 5),
      ev(OpKind::kTxnBegin, 0, 0, true, 8, 8),
      ev(OpKind::kBatchPut, 1, 7, true, 10, 20),
      ev(OpKind::kBatchPut, 2, 7, true, 10, 20),
      ev(OpKind::kTxnCommit, 0, 0, true, 10, 20),
      ev(OpKind::kLookup, 1, 7, true, 30, 40),
      ev(OpKind::kLookup, 2, 0, false, 30, 40),  // torn: key 2 missing
  };
  EXPECT_EQ(check_history(h).verdict, CheckResult::Verdict::kViolation);
}

// Recorded concurrent transactional workload through RecordingMap::run_txn:
// transfer txns, RMW increments, and deliberate user aborts over a small
// hot key space; the merged history (txn decomposition + markers) must be
// accepted by the checker.
TEST(WglTxn, RecordedConcurrentTxnHistoryIsAccepted) {
  using Map = core::SkipVector<std::uint64_t, std::uint64_t>;
  using Txn = txn::Txn<Map>;
  constexpr std::uint64_t kKeys = 24;

  for (std::uint64_t seed : {21u, 22u}) {
    HistoryRecorder rec;
    core::RecordingMap<Map> map(
        &rec, MapMaker<Map>::SmallCfg());
    for (std::uint64_t k = 0; k < kKeys; ++k) map.insert(k, 100);

    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t) {
      ts.emplace_back([&, t] {
        Xoshiro256 rng(seed + static_cast<std::uint64_t>(t) * 977);
        for (int i = 0; i < 1500; ++i) {
          const std::uint64_t a = rng.next_below(kKeys);
          std::uint64_t b = rng.next_below(kKeys);
          if (b == a) b = (b + 1) % kKeys;
          switch (rng.next_below(4)) {
            case 0:  // transfer
              map.run_txn([&](Txn& tx) {
                const auto va = tx.get(a);
                const auto vb = tx.get(b);
                if (!va || !vb || *va == 0) return true;
                tx.put(a, *va - 1);
                tx.put(b, *vb + 1);
                return true;
              });
              break;
            case 1:  // RMW upsert
              map.run_txn([&](Txn& tx) {
                const auto v = tx.get(a);
                tx.put(a, v.value_or(0) + 1);
                return true;
              });
              break;
            case 2:  // user abort: must stay invisible
              map.run_txn([&](Txn& tx) {
                tx.put(a, 0xdead);
                return false;
              });
              break;
            default:  // read-only txn
              map.run_txn([&](Txn& tx) {
                tx.get(a);
                tx.get(b);
                return true;
              });
              break;
          }
        }
      });
    }
    for (auto& th : ts) th.join();

    const History h = rec.merge();
    const CheckResult res = check_history(h);
    std::stringstream dump;
    if (!res.ok()) h.dump(dump);
    ASSERT_TRUE(res.ok()) << "seed " << seed << ": " << res.explanation << "\n"
                          << dump.str();
    // The history really contains transactional structure.
    bool saw_commit = false, saw_abort = false;
    for (const Event& e : h.events) {
      saw_commit |= e.kind == OpKind::kTxnCommit;
      saw_abort |= e.kind == OpKind::kTxnAbort;
    }
    EXPECT_TRUE(saw_commit);
    EXPECT_TRUE(saw_abort);
  }
}

// ---- Mutation matrix: injected ordering bugs must be rejected -------------

#if defined(SV_FAULT_INJECTION) && SV_FAULT_INJECTION

struct Mutant {
  const char* name;
  const char* schedule;
  std::uint32_t layers;
};

class LincheckMutationTest : public testing::TestWithParam<Mutant> {
 protected:
  void TearDown() override { debug::FaultInjector::instance().clear(); }
};

TEST_P(LincheckMutationTest, CheckerRejectsInjectedHistory) {
  const Mutant& m = GetParam();
  debug::FaultInjector::instance().install(debug::Schedule::parse(m.schedule));

  using Map = core::SkipVector<std::uint64_t, std::uint64_t>;
  core::Config cfg;
  cfg.layer_count = m.layers;
  cfg.target_data_vector_size = 4;
  cfg.target_index_vector_size = 4;

  // The mutants are probabilistic: a schedule must produce at least one
  // rejected window within a bounded number of seeds.
  bool rejected = false;
  History bad;
  CheckResult res;
  for (std::uint64_t seed = 1; seed <= 8 && !rejected; ++seed) {
    HistoryRecorder rec;
    core::RecordingMap<Map> map(&rec, cfg);
    res = run_recorded_windows(map, rec, /*threads=*/8, /*keys=*/128,
                               /*ops_per_thread=*/2500, /*windows=*/1, seed,
                               &bad);
    rejected = !res.ok();
  }
  ASSERT_TRUE(rejected) << m.name
                        << ": no rejected history within 8 seeds; the "
                           "mutant's teeth are gone";

  // The rejected history must replay to the same verdict offline
  // (dump -> load -> re-check), which is what tools/linverify does.
  std::stringstream ss;
  bad.dump(ss);
  const History replay = History::load(ss);
  EXPECT_EQ(check_history(replay).verdict, res.verdict) << m.name;
}

INSTANTIATE_TEST_SUITE_P(
    Mutants, LincheckMutationTest,
    testing::Values(
        Mutant{"drop-merge", "pfail@mut-drop-merge=1", 1},
        Mutant{"skip-freeze",
               "pfail@mut-skip-freeze=0.2 pdelay@mut-skip-freeze=1", 1},
        Mutant{"early-release",
               "pfail@mut-early-release=0.05 pyield@mut-early-release=0.5",
               1}),
    [](const testing::TestParamInfo<Mutant>& info) {
      std::string n = info.param.name;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

#endif  // SV_FAULT_INJECTION

}  // namespace
}  // namespace sv::check
