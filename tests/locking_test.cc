// Black-box tests of the locking granularity and progress properties:
// a held range lock must block exactly the covered region (writes to it)
// while the rest of the map stays fully available -- the fine-grained
// chunk-level synchronization the paper's design promises. Plus Config
// validation and sizing tests.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/skip_vector.h"
#include "sync/sequence_lock.h"

namespace sv::core {
namespace {

using Map = SkipVector<std::uint64_t, std::uint64_t>;

Config Tiny() {
  Config c;
  c.layer_count = 4;
  c.target_data_vector_size = 4;
  c.target_index_vector_size = 4;
  return c;
}

TEST(LockingGranularity, RangeLockBlocksOnlyCoveredRegion) {
  Map m(Tiny());
  for (std::uint64_t k = 0; k < 1024; ++k) ASSERT_TRUE(m.insert(k, k));

  std::atomic<bool> locked{false};
  std::atomic<bool> release{false};
  std::atomic<bool> inside_write_done{false};

  // Holder: a mutating range query over [100, 150] that parks while
  // holding its write locks.
  std::thread holder([&] {
    bool first = true;
    m.range_transform(100, 150, [&](std::uint64_t, std::uint64_t v) {
      if (first) {
        locked.store(true, std::memory_order_release);
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        first = false;
      }
      return v;
    });
  });
  while (!locked.load(std::memory_order_acquire)) std::this_thread::yield();

  // Far-away operations must complete while the range is held.
  EXPECT_EQ(m.lookup(900).value(), 900u);
  EXPECT_TRUE(m.insert(2000, 1));
  EXPECT_TRUE(m.remove(2000));
  EXPECT_TRUE(m.update(901, 9011));
  EXPECT_EQ(m.floor(950)->first, 950u);
  EXPECT_EQ(m.last()->first, 1023u);

  // A write INTO the held region must block until release.
  std::thread inside_writer([&] {
    m.update(125, 999);  // 125 is inside [100, 150]
    inside_write_done.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(inside_write_done.load(std::memory_order_acquire))
      << "a write inside a locked range completed while the range was held";

  release.store(true, std::memory_order_release);
  holder.join();
  inside_writer.join();
  EXPECT_TRUE(inside_write_done.load());
  EXPECT_EQ(m.lookup(125).value(), 999u);
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

TEST(LockingGranularity, TwoDisjointRangesProceedConcurrently) {
  Map m(Tiny());
  for (std::uint64_t k = 0; k < 1024; ++k) ASSERT_TRUE(m.insert(k, 0));

  std::atomic<bool> a_holding{false};
  std::atomic<bool> b_done{false};
  std::atomic<bool> release{false};

  std::thread a([&] {
    bool first = true;
    m.range_transform(0, 63, [&](std::uint64_t, std::uint64_t v) {
      if (first) {
        a_holding.store(true, std::memory_order_release);
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        first = false;
      }
      return v + 1;
    });
  });
  while (!a_holding.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  std::thread b([&] {
    m.range_transform(512, 575, [](std::uint64_t, std::uint64_t v) {
      return v + 1;
    });
    b_done.store(true, std::memory_order_release);
  });
  // The disjoint range must finish while A still holds its locks.
  for (int i = 0; i < 2000 && !b_done.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(b_done.load()) << "disjoint range blocked behind another range";
  release.store(true, std::memory_order_release);
  a.join();
  b.join();
}

TEST(SequenceLockContention, BlockingAcquireIsExclusiveAndLive) {
  // Regression for the contended acquire() path: it spins with truncated
  // exponential backoff rather than a bare pause loop, so heavy contention
  // must neither lose increments (mutual exclusion) nor livelock (every
  // thread finishes in bounded time).
  sync::SequenceLock lock;
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::uint64_t counter = 0;  // protected by `lock` only
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        lock.acquire();
        ++counter;
        lock.release();
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(counter, kThreads * kPerThread);
  // Generous bound: 160k contended critical sections take well under this
  // even on a loaded single-core CI machine; a livelocked or quadratic
  // backoff regression blows straight through it.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            60);
  const auto w = lock.load_relaxed();
  EXPECT_FALSE(sync::SequenceLock::is_locked(w));
  EXPECT_FALSE(sync::SequenceLock::is_frozen(w));
}

TEST(ConfigValidation, RejectsOutOfRangeParameters) {
  auto bad = [](auto mutate) {
    Config c;
    mutate(c);
    using M = SkipVectorSeq<std::uint64_t, std::uint64_t>;
    EXPECT_THROW(M{c}, std::invalid_argument);
  };
  bad([](Config& c) { c.layer_count = 0; });
  bad([](Config& c) { c.layer_count = 33; });
  bad([](Config& c) { c.target_data_vector_size = 0; });
  bad([](Config& c) { c.target_index_vector_size = 0; });
  bad([](Config& c) { c.target_data_vector_size = 5000; });
  bad([](Config& c) { c.merge_threshold_factor = -1.0; });
}

TEST(ConfigSizing, LayersForGrowsLogarithmically) {
  EXPECT_EQ(Config::layers_for(1, 32, 32), 1u);
  const auto small = Config::layers_for(1ULL << 10, 32, 32);
  const auto medium = Config::layers_for(1ULL << 20, 32, 32);
  const auto large = Config::layers_for(1ULL << 30, 32, 32);
  EXPECT_LE(small, medium);
  EXPECT_LE(medium, large);
  EXPECT_LE(large, Config::kMaxLayers);
  // log_32(2^30 / 32) + 1 = 6: matches the paper's general default of 6
  // layers being adequate for ~2^30 keys at T=32.
  EXPECT_EQ(large, 6u);
  // Degenerate chunk size 1 falls back to p=1/2 shape.
  EXPECT_GT(Config::layers_for(1ULL << 20, 1, 1), 10u);
}

TEST(ConfigSizing, DerivedQuantities) {
  Config c;
  c.target_data_vector_size = 32;
  c.target_index_vector_size = 16;
  c.merge_threshold_factor = 1.67;
  EXPECT_EQ(c.data_capacity(), 64u);
  EXPECT_EQ(c.index_capacity(), 32u);
  EXPECT_EQ(c.merge_threshold_data(), 53u);   // round(1.67 * 32)
  EXPECT_EQ(c.merge_threshold_index(), 27u);  // round(1.67 * 16)
  EXPECT_FALSE(c.to_string().empty());
  EXPECT_EQ(Config::usl_for_elements(1 << 20).target_index_vector_size, 1u);
  EXPECT_EQ(Config::sl_for_elements(1 << 20).target_data_vector_size, 1u);
}

}  // namespace
}  // namespace sv::core
