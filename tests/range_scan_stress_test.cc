// Range scans racing structural churn (splits, merges, steal-above),
// executed identically across every reclamation policy. Scans must return
// legal snapshots: strictly ascending keys inside the requested interval,
// no duplicates, no phantoms (keys never inserted), values consistent with
// their keys, and permanently-resident anchor keys always observed. A
// global yield schedule on the structural fault-injection points widens the
// split/merge windows the scans race against.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/skip_vector.h"
#include "core/skip_vector_epoch.h"
#include "debug/fault_inject.h"

namespace sv::core {
namespace {

template <class R>
struct Policy {
  using Reclaimer = R;
};

using Policies =
    testing::Types<Policy<reclaim::HazardReclaimer>,
                   Policy<reclaim::EpochReclaimer>,
                   Policy<reclaim::LeakReclaimer>>;

template <class P>
class RangeScanStressTest : public testing::Test {
 protected:
  using Map = SkipVectorMap<std::uint64_t, std::uint64_t,
                            typename P::Reclaimer>;

  // Tiny chunks so churn constantly splits and merges data vectors.
  static Config Cfg() {
    Config c;
    c.layer_count = 4;
    c.target_data_vector_size = 4;
    c.target_index_vector_size = 4;
    return c;
  }

#if defined(SV_FAULT_INJECTION) && SV_FAULT_INJECTION
  void SetUp() override {
    debug::FaultInjector::instance().install(
        debug::Schedule::parse("seed=5;pyield=0.1"));
  }
  void TearDown() override { debug::FaultInjector::instance().clear(); }
#endif
};

TYPED_TEST_SUITE(RangeScanStressTest, Policies);

TYPED_TEST(RangeScanStressTest, ScansObserveLegalSnapshots) {
  typename TestFixture::Map m(TestFixture::Cfg());
  constexpr std::uint64_t kRange = 1024;
  constexpr std::uint64_t kAnchorStride = 16;  // anchors never removed

  for (std::uint64_t k = kAnchorStride; k < kRange; k += kAnchorStride) {
    ASSERT_TRUE(m.insert(k, (k << 32) | 1));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> threads;

  // Mutators: churn the non-anchor keys hard enough that chunks split,
  // drain, merge, and steal-above continuously.
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(100 + t);
      for (int i = 0; i < 12000; ++i) {
        const std::uint64_t k = 1 + rng.next_below(kRange - 1);
        if (k % kAnchorStride == 0) continue;
        switch (rng.next_below(4)) {
          case 0:
          case 1:
            m.insert(k, (k << 32) | 2);
            break;
          case 2:
            m.remove(k);
            break;
          default:
            m.update(k, (k << 32) | 3);
            break;
        }
      }
    });
  }

  // Scanners: overlapping windows; every snapshot must be legal.
  for (int s = 0; s < 3; ++s) {
    threads.emplace_back([&, s] {
      Xoshiro256 rng(200 + s);
      std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t lo = 1 + rng.next_below(kRange - 300);
        const std::uint64_t hi = lo + 64 + rng.next_below(256);
        got.clear();
        m.range_for_each(lo, hi, [&](std::uint64_t k, std::uint64_t v) {
          got.emplace_back(k, v);
        });
        // In-interval, strictly ascending (=> no duplicates), no phantoms
        // beyond the workload's key universe, values tagged with their key.
        std::uint64_t prev = 0;
        bool first = true;
        for (const auto& [k, v] : got) {
          if (k < lo || k > hi) errors.fetch_add(1);
          if (!first && k <= prev) errors.fetch_add(1);
          if (k == 0 || k >= kRange) errors.fetch_add(1);
          if ((v >> 32) != k) errors.fetch_add(1);
          prev = k;
          first = false;
        }
        // Anchors are never removed: a scan that misses one saw an illegal
        // snapshot (e.g. a key hidden mid-split).
        std::size_t gi = 0;
        for (std::uint64_t a = ((lo + kAnchorStride - 1) / kAnchorStride) *
                               kAnchorStride;
             a <= hi && a < kRange; a += kAnchorStride) {
          while (gi < got.size() && got[gi].first < a) ++gi;
          if (gi >= got.size() || got[gi].first != a) errors.fetch_add(1);
        }
      }
    });
  }

  for (int t = 0; t < 4; ++t) threads[t].join();
  stop.store(true);
  for (std::size_t t = 4; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(errors.load(), 0u);
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

}  // namespace
}  // namespace sv::core
