// Integration stress executed identically across every reclamation policy
// (hazard pointers, epochs, leak) crossed with both node allocators
// (malloc passthrough, slab pool) and the hash sidecar (NoIndex,
// HashChunkIndex; docs/HASH_INDEX.md): the full operation surface -- point
// ops, navigation, range queries -- under concurrent churn, followed by
// complete structural validation. Typed tests guarantee no combination
// silently misses coverage. (ImmediateReclaimer is sequential-only; its
// parity coverage over both allocators lives in tests/alloc_test.cc.)
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "check/wgl.h"
#include "common/rng.h"
#include "core/adapters.h"
#include "core/skip_vector.h"
#include "core/skip_vector_epoch.h"

#if defined(__SANITIZE_ADDRESS__)
#define SV_TEST_ASAN 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SV_TEST_ASAN 1
#endif
#endif
#if defined(SV_TEST_ASAN)
#include <sanitizer/lsan_interface.h>
#endif

namespace sv::core {
namespace {

// LeakSanitizer's disable counter is per-thread, so the by-design-leak
// exemption must be asserted by every thread that allocates through the
// map, not just the fixture's SetUp. Worker lambdas instantiate one of
// these first thing; it is a no-op unless `active` (and outside ASan).
class ThreadLeakGuard {
 public:
  explicit ThreadLeakGuard(bool active) : active_(active) {
#if defined(SV_TEST_ASAN)
    if (active_) __lsan_disable();
#endif
  }
  ~ThreadLeakGuard() {
#if defined(SV_TEST_ASAN)
    if (active_) __lsan_enable();
#endif
  }

 private:
  [[maybe_unused]] bool active_;
};

template <class R, class A = alloc::MallocNodeAllocator,
          class H = hashidx::NoIndex>
struct Policy {
  using Reclaimer = R;
  using Alloc = A;
  using HashIndex = H;
};

using Policies = testing::Types<
    Policy<reclaim::HazardReclaimer>, Policy<reclaim::EpochReclaimer>,
    Policy<reclaim::LeakReclaimer>,
    Policy<reclaim::HazardReclaimer, alloc::PoolNodeAllocator>,
    Policy<reclaim::EpochReclaimer, alloc::PoolNodeAllocator>,
    Policy<reclaim::LeakReclaimer, alloc::PoolNodeAllocator>,
    // Hash sidecar (docs/HASH_INDEX.md) crossed with each reclaimer family:
    // the hint-probe protocol leans on hazard slots, epoch pins, or nothing
    // (leak) respectively, so all three must survive the same stress.
    Policy<reclaim::HazardReclaimer, alloc::MallocNodeAllocator,
           hashidx::HashChunkIndex>,
    Policy<reclaim::EpochReclaimer, alloc::PoolNodeAllocator,
           hashidx::HashChunkIndex>,
    Policy<reclaim::LeakReclaimer, alloc::MallocNodeAllocator,
           hashidx::HashChunkIndex>>;

template <class P>
class ReclaimerMatrixTest : public testing::Test {
 protected:
  using Map =
      SkipVectorMap<std::uint64_t, std::uint64_t, typename P::Reclaimer,
                    typename P::Alloc, typename P::HashIndex>;

  // LeakReclaimer on the malloc passthrough leaks retired nodes by design;
  // exempt only that combination from LeakSanitizer. The pool-backed leak
  // variant stays fully checked: the allocator reclaims every arena at map
  // destruction, which is exactly what this suite proves.
  static constexpr bool kLeaksByDesign =
      std::is_same_v<typename P::Reclaimer, reclaim::LeakReclaimer> &&
      !P::Alloc::kPooled;

  void SetUp() override {
#if defined(SV_TEST_ASAN)
    if (kLeaksByDesign) __lsan_disable();
#endif
  }
  void TearDown() override {
#if defined(SV_TEST_ASAN)
    if (kLeaksByDesign) __lsan_enable();
#endif
  }

  static Config Cfg() {
    Config c;
    c.layer_count = 5;
    c.target_data_vector_size = 4;
    c.target_index_vector_size = 4;
    return c;
  }
};

TYPED_TEST_SUITE(ReclaimerMatrixTest, Policies);

TYPED_TEST(ReclaimerMatrixTest, FullSurfaceConcurrentStress) {
  typename TestFixture::Map m(TestFixture::Cfg());
  constexpr std::uint64_t kRange = 512;
  std::atomic<std::uint64_t> errors{0};
  std::atomic<bool> stop{false};

  // Permanently resident anchor keys bound navigation results.
  ASSERT_TRUE(m.insert(0, 0));
  ASSERT_TRUE(m.insert(kRange, kRange << 32));

  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      ThreadLeakGuard guard(TestFixture::kLeaksByDesign);
      Xoshiro256 rng(t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = 1 + rng.next_below(kRange - 1);
        switch (rng.next_below(8)) {
          case 0:
          case 1:
            m.insert(k, (k << 32) | 1);
            break;
          case 2:
            m.remove(k);
            break;
          case 3:
            m.update(k, (k << 32) | 2);
            break;
          case 4: {
            auto f = m.floor(k);
            if (!f || f->first > k) errors.fetch_add(1);
            break;
          }
          case 5: {
            auto c = m.ceiling(k);
            if (!c || c->first < k || c->first > kRange) errors.fetch_add(1);
            break;
          }
          case 6: {
            std::uint64_t prev = 0;
            bool first_cb = true;
            m.range_for_each(k, k + 64, [&](std::uint64_t kk,
                                            std::uint64_t vv) {
              if (kk < k || kk > k + 64) errors.fetch_add(1);
              if ((vv >> 32) != kk) errors.fetch_add(1);
              if (!first_cb && kk <= prev) errors.fetch_add(1);
              prev = kk;
              first_cb = false;
            });
            break;
          }
          default: {
            auto v = m.lookup(k);
            if (v && (*v >> 32) != k) errors.fetch_add(1);
          }
        }
      }
    });
  }
  threads.emplace_back([&] {
    ThreadLeakGuard guard(TestFixture::kLeaksByDesign);
    while (!stop.load(std::memory_order_relaxed)) {
      auto f = m.first();
      auto l = m.last();
      if (!f || f->first != 0) errors.fetch_add(1);
      if (!l || l->first != kRange) errors.fetch_add(1);
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0u);
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    EXPECT_LE(k, kRange);
    if (k != 0) {
      EXPECT_EQ(v >> 32, k);
    }
  });
}

TYPED_TEST(ReclaimerMatrixTest, RepeatedFillDrainCycles) {
  typename TestFixture::Map m(TestFixture::Cfg());
  for (int cycle = 0; cycle < 6; ++cycle) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&, t] {
        ThreadLeakGuard guard(TestFixture::kLeaksByDesign);
        Xoshiro256 rng(cycle * 10 + t);
        for (std::uint64_t i = 0; i < 3000; ++i) {
          m.insert(rng.next_below(1024), i);
        }
      });
    }
    for (auto& th : threads) th.join();
    threads.clear();
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&, t] {
        ThreadLeakGuard guard(TestFixture::kLeaksByDesign);
        Xoshiro256 rng(cycle * 17 + t);
        for (std::uint64_t i = 0; i < 4000; ++i) {
          m.remove(rng.next_below(1024));
        }
      });
    }
    for (auto& th : threads) th.join();
    std::string err;
    ASSERT_TRUE(m.validate(&err)) << err << " cycle " << cycle;
  }
}

// Every reclamation policy must also produce linearizable recorded
// histories: the same RecordingMap + WGL pipeline the lincheck harness uses
// (tools/opfuzz --lincheck, docs/LINEARIZABILITY.md), run as a short
// windowed workload per policy.
TYPED_TEST(ReclaimerMatrixTest, RecordedHistoryIsLinearizable) {
  constexpr std::uint64_t kKeys = 64;
  constexpr int kThreads = 4;
  constexpr int kWindows = 2;
  check::HistoryRecorder rec;
  RecordingMap<typename TestFixture::Map> map(&rec, TestFixture::Cfg());

  for (int w = 0; w < kWindows; ++w) {
    // Ground the window: sequential lookups pin each key's initial state.
    for (std::uint64_t k = 1; k <= kKeys; ++k) map.lookup(k);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t, w] {
        ThreadLeakGuard guard(TestFixture::kLeaksByDesign);
        Xoshiro256 rng(31 * w + t);
        for (int i = 0; i < 2000; ++i) {
          const std::uint64_t k = 1 + rng.next_below(kKeys);
          const std::uint64_t v = (static_cast<std::uint64_t>(t) << 48) |
                                  static_cast<std::uint64_t>(i);
          switch (rng.next_below(8)) {
            case 0:
            case 1:
            case 2:
              map.insert(k, v);
              break;
            case 3:
            case 4:
              map.remove(k);
              break;
            case 5:
              map.update(k, v);
              break;
            case 6:
              map.range_for_each(k, k + 8,
                                 [](std::uint64_t, std::uint64_t) {});
              break;
            default:
              map.lookup(k);
              break;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    const check::History h = rec.merge();
    const check::CheckResult res = check::check_history(h);
    std::stringstream dump;
    if (!res.ok()) h.dump(dump);
    ASSERT_TRUE(res.ok()) << "window " << w << ": " << res.explanation << "\n"
                          << dump.str();
    rec.clear();
  }
}

}  // namespace
}  // namespace sv::core
