// Unit tests for sv::sync::SequenceLock: bit packing, state transitions,
// and the reader/writer speculation protocol under real concurrency.
#include "sync/sequence_lock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace sv::sync {
namespace {

using Word = SequenceLock::Word;

TEST(SequenceLockTest, InitialStateIsUnlockedEvenSequence) {
  SequenceLock l;
  const Word w = l.read_begin();
  EXPECT_FALSE(SequenceLock::is_locked(w));
  EXPECT_FALSE(SequenceLock::is_orphan(w));
  EXPECT_FALSE(SequenceLock::is_frozen(w));
  EXPECT_TRUE(l.validate(w));
}

TEST(SequenceLockTest, OrphanConstructorSetsOrphanBit) {
  SequenceLock l(/*orphan=*/true);
  EXPECT_TRUE(SequenceLock::is_orphan(l.read_begin()));
}

TEST(SequenceLockTest, ReleaseBumpsSequenceAndInvalidatesReaders) {
  SequenceLock l;
  const Word before = l.read_begin();
  ASSERT_TRUE(l.try_upgrade(before));
  const Word after = l.release();
  EXPECT_FALSE(SequenceLock::is_locked(after));
  EXPECT_NE(before, after);
  EXPECT_FALSE(l.validate(before));
  EXPECT_TRUE(l.validate(after));
  EXPECT_EQ(after - before, SequenceLock::kSeqIncrement);
}

TEST(SequenceLockTest, TryUpgradeFailsOnStaleVersion) {
  SequenceLock l;
  const Word stale = l.read_begin();
  ASSERT_TRUE(l.try_upgrade(stale));
  l.release();
  EXPECT_FALSE(l.try_upgrade(stale));
  EXPECT_TRUE(l.try_upgrade(l.read_begin()));
  l.release();
}

TEST(SequenceLockTest, TryUpgradeAndFreezeRejectLockedOrFrozenWords) {
  SequenceLock l;
  Word w = l.read_begin();
  ASSERT_TRUE(l.try_freeze(w));
  const Word frozen = l.load_relaxed();
  EXPECT_TRUE(SequenceLock::is_frozen(frozen));
  // Another thread's stale or current observation cannot lock or re-freeze.
  EXPECT_FALSE(l.try_upgrade(w));
  EXPECT_FALSE(l.try_upgrade(frozen));
  EXPECT_FALSE(l.try_freeze(frozen));
  l.thaw();
  EXPECT_FALSE(SequenceLock::is_frozen(l.read_begin()));
}

TEST(SequenceLockTest, FreezeDoesNotDisturbReaders) {
  SequenceLock l;
  Word w = l.read_begin();
  ASSERT_TRUE(l.try_freeze(w));
  // A reader arriving during the freeze can read and validate.
  const Word r = l.read_begin();
  EXPECT_TRUE(SequenceLock::is_frozen(r));
  EXPECT_TRUE(l.validate(r));
  l.thaw();
  // Thaw restores the pre-freeze word: a reader from before the freeze
  // validates successfully (benign ABA -- no payload write happened).
  EXPECT_TRUE(l.validate(w));
}

TEST(SequenceLockTest, UpgradeFrozenLocksAndReleasePublishes) {
  SequenceLock l;
  const Word w = l.read_begin();
  ASSERT_TRUE(l.try_freeze(w));
  l.upgrade_frozen();
  const Word locked = l.load_relaxed();
  EXPECT_TRUE(SequenceLock::is_locked(locked));
  EXPECT_FALSE(SequenceLock::is_frozen(locked));
  const Word released = l.release();
  EXPECT_FALSE(l.validate(w));
  EXPECT_TRUE(l.validate(released));
}

TEST(SequenceLockTest, OrphanFlagToggledUnderLock) {
  SequenceLock l;
  ASSERT_TRUE(l.try_upgrade(l.read_begin()));
  l.set_orphan_locked(true);
  Word w = l.release();
  EXPECT_TRUE(SequenceLock::is_orphan(w));
  ASSERT_TRUE(l.try_upgrade(w));
  l.set_orphan_locked(false);
  w = l.release();
  EXPECT_FALSE(SequenceLock::is_orphan(w));
}

TEST(SequenceLockTest, AcquireBlocksUntilThaw) {
  SequenceLock l;
  ASSERT_TRUE(l.try_freeze(l.read_begin()));
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    l.acquire();
    acquired.store(true);
    l.release();
  });
  // The acquirer must not get the lock while the freeze is held.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  l.thaw();
  t.join();
  EXPECT_TRUE(acquired.load());
}

// Seqlock protocol stress: writers update a multi-word payload under the
// lock; speculative readers must never observe a torn payload after a
// successful validate.
TEST(SequenceLockStress, ReadersNeverObserveTornPayload) {
  SequenceLock l;
  constexpr int kWords = 8;
  std::atomic<std::uint64_t> payload[kWords];
  for (auto& p : payload) p.store(0);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> validated_reads{0};

  std::thread writer([&] {
    std::uint64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Word w = l.read_begin();
      if (!l.try_upgrade(w)) continue;
      ++v;
      for (auto& p : payload) p.store(v, std::memory_order_relaxed);
      l.release();
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const Word w = l.read_begin();
        std::uint64_t snap[kWords];
        for (int i = 0; i < kWords; ++i)
          snap[i] = payload[i].load(std::memory_order_relaxed);
        if (!l.validate(w)) continue;
        validated_reads.fetch_add(1, std::memory_order_relaxed);
        for (int i = 1; i < kWords; ++i) {
          ASSERT_EQ(snap[0], snap[i]) << "torn read validated";
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_GT(validated_reads.load(), 0u);
}

// Freeze exclusivity stress: many threads race to freeze; at most one can
// hold the freeze at a time, and each holder can upgrade and write.
TEST(SequenceLockStress, FreezeIsMutuallyExclusive) {
  SequenceLock l;
  std::atomic<int> holders{0};
  std::atomic<std::uint64_t> successes{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const Word w = l.read_begin();
        if (!l.try_freeze(w)) continue;
        ASSERT_EQ(holders.fetch_add(1), 0) << "two threads froze at once";
        l.upgrade_frozen();
        holders.fetch_sub(1);
        l.release();
        successes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_GT(successes.load(), 0u);
}

}  // namespace
}  // namespace sv::sync
