// Serializability tests built on conservation invariants:
//  (1) dbx bank: transactions transfer balance between rows under NO_WAIT
//      2PL with the SkipVector as index -- the total balance is invariant,
//      and readers summing under latches must see it conserved per row
//      pair. A stronger end-state check sums everything after quiescing.
//  (2) SkipVector range_transform used as a transactional transfer between
//      two keys -- concurrent full-range reads must always see the
//      conserved total (two-phase locking serializability).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "core/skip_vector.h"
#include "dbx/database.h"
#include "txn/txn.h"
#include "vectormap/vector_map.h"

namespace {

TEST(BankInvariant, DbxTransfersConserveTotal) {
  using Row = sv::dbx::Row;
  using Index = sv::core::SkipVector<std::uint64_t, Row*>;
  constexpr std::uint64_t kAccounts = 128;
  constexpr std::uint64_t kInitial = 1000;

  sv::dbx::YcsbConfig cfg;
  cfg.table_rows = kAccounts;
  sv::dbx::Database<Index> db(cfg, sv::core::Config::for_elements(kAccounts));
  // Deposit the initial balance (cols[0] currently holds the key; reset).
  for (std::uint64_t k = 0; k < kAccounts; ++k) {
    (*db.index().lookup(k))->cols[0] = kInitial;
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> transfers{0}, bad_sums{0};
  std::vector<std::thread> threads;
  // Transfer workers: lock two accounts (ascending order, NO_WAIT), move
  // a random amount.
  for (unsigned t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      sv::Xoshiro256 rng(t + 5);
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t a = rng.next_below(kAccounts);
        std::uint64_t b = rng.next_below(kAccounts);
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        Row* ra = *db.index().lookup(a);
        Row* rb = *db.index().lookup(b);
        if (!ra->latch.try_lock_exclusive()) continue;
        if (!rb->latch.try_lock_exclusive()) {
          ra->latch.unlock_exclusive();
          continue;
        }
        const std::uint64_t amount = rng.next_below(ra->cols[0] + 1);
        ra->cols[0] -= amount;
        rb->cols[0] += amount;
        rb->latch.unlock_exclusive();
        ra->latch.unlock_exclusive();
        transfers.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Auditor: lock ALL accounts in order (ascending: deadlock-free with the
  // transfer workers), sum, verify conservation.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<Row*> locked;
      bool ok = true;
      for (std::uint64_t k = 0; k < kAccounts && ok; ++k) {
        Row* r = *db.index().lookup(k);
        if (r->latch.try_lock_shared()) {
          locked.push_back(r);
        } else {
          ok = false;
        }
      }
      if (ok) {
        std::uint64_t sum = 0;
        for (Row* r : locked) sum += r->cols[0];
        if (sum != kAccounts * kInitial) {
          bad_sums.fetch_add(1, std::memory_order_relaxed);
        }
      }
      for (Row* r : locked) r->latch.unlock_shared();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_GT(transfers.load(), 0u);
  EXPECT_EQ(bad_sums.load(), 0u) << "audit observed a non-serializable sum";
  // Quiesced total.
  std::uint64_t total = 0;
  for (std::uint64_t k = 0; k < kAccounts; ++k) {
    total += (*db.index().lookup(k))->cols[0];
  }
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST(BankInvariant, RangeTransformTransfersConserveTotal) {
  using Map = sv::core::SkipVector<std::uint64_t, std::uint64_t>;
  constexpr std::uint64_t kAccounts = 256;
  constexpr std::uint64_t kInitial = 1000;
  sv::core::Config cfg;
  cfg.layer_count = 4;
  cfg.target_data_vector_size = 4;
  cfg.target_index_vector_size = 4;
  Map m(cfg);
  for (std::uint64_t k = 0; k < kAccounts; ++k) {
    ASSERT_TRUE(m.insert(k, kInitial));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad_sums{0}, audits{0};
  std::vector<std::thread> threads;
  // Transfer workers: one atomic range_transform covering both accounts
  // moves 1 unit from the lowest key in range to the highest.
  for (unsigned t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      sv::Xoshiro256 rng(t + 31);
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t a = rng.next_below(kAccounts);
        std::uint64_t b = rng.next_below(kAccounts);
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        // Unconditional move of one unit: unsigned wraparound keeps the
        // modular total invariant whatever order fn is applied in.
        m.range_transform(a, b, [&](std::uint64_t k, std::uint64_t v) {
          if (k == a) return v - 1;
          if (k == b) return v + 1;
          return v;
        });
      }
    });
  }
  // Auditors: serializable full-range sums.
  for (unsigned t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t sum = 0;
        m.range_for_each(0, kAccounts - 1,
                         [&](std::uint64_t, std::uint64_t v) { sum += v; });
        // Every transfer nets to zero (mod 2^64), so any deviation means
        // the range query observed a mid-transfer state.
        if (sum != kAccounts * kInitial) {
          bad_sums.fetch_add(1, std::memory_order_relaxed);
        }
        audits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_GT(audits.load(), 0u);
  EXPECT_EQ(bad_sums.load(), 0u)
      << "range query observed a non-serializable balance total";
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

// (3) The same bank invariant through the first-class transaction layer
// (sv::txn): balances live IN the map, transfers are get/get/put/put
// transactions, and auditors are read-only transactions over every account
// -- commit-time validation makes the audited sum serializable, so every
// committed audit must see the conserved total (not just the quiesced end
// state).
TEST(BankInvariant, SvTxnTransfersConserveTotal) {
  using Map = sv::core::SkipVector<std::uint64_t, std::uint64_t>;
  using Txn = sv::txn::Txn<Map>;
  constexpr std::uint64_t kAccounts = 96;
  constexpr std::uint64_t kInitial = 1000;

  Map m(sv::core::Config::for_elements(kAccounts));
  for (std::uint64_t k = 0; k < kAccounts; ++k) {
    ASSERT_TRUE(m.insert(k, kInitial));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> audits{0}, bad_sums{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      sv::Xoshiro256 rng(t + 11);
      for (int n = 0; n < 20000; ++n) {
        const std::uint64_t a = rng.next_below(kAccounts);
        std::uint64_t b = rng.next_below(kAccounts);
        if (b == a) b = (b + 1) % kAccounts;
        sv::txn::run(m, [&](Txn& tx) {
          const auto va = tx.get(a);
          const auto vb = tx.get(b);
          const std::uint64_t amount = rng.next_below(*va + 1);
          tx.put(a, *va - amount);
          tx.put(b, *vb + amount);
          return true;
        });
      }
    });
  }
  for (unsigned t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t sum = 0;
        if (!sv::txn::run(m, [&](Txn& tx) {
              sum = 0;
              for (std::uint64_t k = 0; k < kAccounts; ++k) {
                sum += *tx.get(k);
              }
              return true;
            })) {
          continue;
        }
        if (sum != kAccounts * kInitial) {
          bad_sums.fetch_add(1, std::memory_order_relaxed);
        }
        audits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (unsigned t = 0; t < 4; ++t) threads[t].join();
  stop.store(true, std::memory_order_relaxed);
  for (unsigned t = 4; t < threads.size(); ++t) threads[t].join();

  EXPECT_GT(audits.load(), 0u);
  EXPECT_EQ(bad_sums.load(), 0u)
      << "a committed transactional audit observed a non-serializable total";
  std::uint64_t final_sum = 0;
  m.for_each([&](std::uint64_t, std::uint64_t v) { final_sum += v; });
  EXPECT_EQ(final_sum, kAccounts * kInitial);
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

// §IV-C termination requirement: chunk operations must stay in bounds and
// terminate even when read unsynchronized against a racing writer (the
// skip vector's readers validate afterwards, but they must survive the
// speculation itself). Run a writer and raw speculative readers directly
// against one VectorMap.
TEST(SpeculativeTermination, ChunkReadsAreBoundedUnderRacingWrites) {
  constexpr std::uint32_t kCap = 64;
  auto keys = std::make_unique<std::atomic<std::uint64_t>[]>(kCap);
  auto vals = std::make_unique<std::atomic<std::uint64_t>[]>(kCap);
  sv::vectormap::VectorMap<std::uint64_t, std::uint64_t> vm(
      keys.get(), vals.get(), kCap, sv::vectormap::Layout::kUnsorted);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      sv::Xoshiro256 rng(t + 1);
      std::uint64_t sink = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = rng.next_below(200);
        // All of these must terminate and never index out of bounds,
        // whatever the writer is doing.
        sink ^= vm.find_le(k).key;
        sink ^= vm.find_ge(k).key;
        sink ^= vm.min_entry().key ^ vm.max_entry().key;
        sink ^= vm.size();
        auto v = vm.get(k);
        if (v) sink ^= *v;
      }
      volatile std::uint64_t s = sink;
      (void)s;
    });
  }
  {
    sv::Xoshiro256 rng(99);
    sv::WallTimer timer;
    while (timer.elapsed_seconds() < 0.5) {
      const std::uint64_t k = rng.next_below(200);
      switch (rng.next_below(3)) {
        case 0:
          if (!vm.contains(k)) vm.insert(k, k);
          break;
        case 1:
          vm.erase(k);
          break;
        default:
          vm.assign(k, k * 2);
      }
    }
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  SUCCEED() << "no crash, no hang, no out-of-bounds under racing reads";
}

}  // namespace
