// Tests for ShardedSkipVector: routing, cross-shard ranges, navigation,
// oracle checks, and concurrent stress.
#include "core/sharded.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace sv::core {
namespace {

Config Tiny() {
  Config c;
  c.layer_count = 3;
  c.target_data_vector_size = 4;
  c.target_index_vector_size = 4;
  return c;
}

TEST(Sharded, RejectsBadParameters) {
  using M = ShardedSkipVector<std::uint64_t, std::uint64_t>;
  EXPECT_THROW(M(0, 4), std::invalid_argument);
  EXPECT_THROW(M(100, 0), std::invalid_argument);
}

TEST(Sharded, OracleModelCheck) {
  constexpr std::uint64_t kSpace = 1000;
  ShardedSkipVector<std::uint64_t, std::uint64_t> m(kSpace, 7, Tiny());
  EXPECT_EQ(m.shard_count(), 7u);
  std::map<std::uint64_t, std::uint64_t> oracle;
  Xoshiro256 rng(3);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t k = rng.next_below(kSpace);
    switch (rng.next_below(4)) {
      case 0: {
        const std::uint64_t v = rng.next();
        ASSERT_EQ(m.insert(k, v), oracle.emplace(k, v).second) << i;
        break;
      }
      case 1:
        ASSERT_EQ(m.remove(k), oracle.erase(k) > 0) << i;
        break;
      case 2: {
        const std::uint64_t v = rng.next();
        auto it = oracle.find(k);
        ASSERT_EQ(m.update(k, v), it != oracle.end()) << i;
        if (it != oracle.end()) it->second = v;
        break;
      }
      default: {
        auto got = m.lookup(k);
        auto it = oracle.find(k);
        ASSERT_EQ(got.has_value(), it != oracle.end()) << i;
        if (got) {
          ASSERT_EQ(*got, it->second);
        }
      }
    }
  }
  ASSERT_TRUE(m.validate());
  ASSERT_EQ(m.size_approx(), oracle.size());
  // Global ordered iteration equals oracle.
  auto it = oracle.begin();
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  });
  EXPECT_EQ(it, oracle.end());
  // first()/last() across shards.
  if (!oracle.empty()) {
    EXPECT_EQ(m.first()->first, oracle.begin()->first);
    EXPECT_EQ(m.last()->first, oracle.rbegin()->first);
  }
}

TEST(Sharded, CrossShardRangeQueries) {
  constexpr std::uint64_t kSpace = 256;
  ShardedSkipVector<std::uint64_t, std::uint64_t> m(kSpace, 4, Tiny());
  for (std::uint64_t k = 0; k < kSpace; ++k) ASSERT_TRUE(m.insert(k, 0));
  // A range spanning all four shards.
  std::uint64_t prev = 0;
  bool first_cb = true, ordered = true;
  const std::size_t n = m.range_for_each(10, 250, [&](std::uint64_t k, auto) {
    if (!first_cb && k <= prev) ordered = false;
    prev = k;
    first_cb = false;
  });
  EXPECT_EQ(n, 241u);
  EXPECT_TRUE(ordered);
  // Mutating range across shard boundaries.
  EXPECT_EQ(m.range_transform(60, 70, [](auto, auto v) { return v + 9; }),
            11u);
  std::uint64_t touched = 0;
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    if (v == 9) {
      ++touched;
      EXPECT_GE(k, 60u);
      EXPECT_LE(k, 70u);
    }
  });
  EXPECT_EQ(touched, 11u);
  // Clamping beyond the key space.
  EXPECT_EQ(m.range_for_each(250, 1 << 20, [](auto, auto) {}), 6u);
}

TEST(Sharded, ConcurrentStressPerShardIsolation) {
  constexpr std::uint64_t kSpace = 1024;
  ShardedSkipVector<std::uint64_t, std::uint64_t> m(kSpace, 8, Tiny());
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t + 11);
      for (int i = 0; i < 40000; ++i) {
        const std::uint64_t k = rng.next_below(kSpace);
        switch (rng.next_below(4)) {
          case 0:
            m.insert(k, (k << 32) | 1);
            break;
          case 1:
            m.remove(k);
            break;
          case 2: {
            auto v = m.lookup(k);
            if (v && (*v >> 32) != k) bad.fetch_add(1);
            break;
          }
          default:
            m.range_for_each(k, k + 100, [&](std::uint64_t kk,
                                             std::uint64_t vv) {
              if ((vv >> 32) != kk) bad.fetch_add(1);
            });
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_TRUE(m.validate());
}

// Cross-shard ranges under full concurrency: 8 threads over 8 shards, half
// mutating and half scanning ranges that straddle several shard boundaries
// (including range_transform). A watchdog aborts the process if the test
// wedges -- a cross-shard scan that deadlocks against per-shard mutators
// would otherwise hang until the ctest TIMEOUT.
TEST(Sharded, ConcurrentCrossShardRanges) {
  constexpr std::uint64_t kSpace = 1024;
  constexpr std::uint64_t kAnchorStride = 32;  // anchors never removed
  ShardedSkipVector<std::uint64_t, std::uint64_t> m(kSpace, 8, Tiny());
  for (std::uint64_t k = 0; k < kSpace; k += kAnchorStride) {
    ASSERT_TRUE(m.insert(k, (k << 32) | 1));
  }

  std::atomic<bool> done{false};
  std::thread watchdog([&done] {
    for (int i = 0; i < 120 * 10; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (done.load()) return;
    }
    std::fprintf(stderr, "ConcurrentCrossShardRanges wedged; aborting\n");
    std::_Exit(3);
  });

  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(400 + t);
      for (int i = 0; i < 50000; ++i) {
        const std::uint64_t k = rng.next_below(kSpace);
        if (k % kAnchorStride == 0) continue;
        switch (rng.next_below(4)) {
          case 0:
          case 1:
            m.insert(k, (k << 32) | 2);
            break;
          case 2:
            m.remove(k);
            break;
          default:
            m.update(k, (k << 32) | 3);
            break;
        }
      }
    });
  }
  for (int s = 0; s < 4; ++s) {
    threads.emplace_back([&, s] {
      Xoshiro256 rng(500 + s);
      for (int i = 0; i < 2000; ++i) {
        // Spans kSpace/8-wide shards: 300..700-wide windows cross 2-6.
        const std::uint64_t lo = rng.next_below(kSpace - 700);
        const std::uint64_t hi = lo + 300 + rng.next_below(400);
        std::uint64_t prev = 0;
        bool first = true;
        std::vector<std::uint64_t> seen;
        m.range_for_each(lo, hi, [&](std::uint64_t k, std::uint64_t v) {
          if (k < lo || k > hi) errors.fetch_add(1);
          if (!first && k <= prev) errors.fetch_add(1);
          if ((v >> 32) != k) errors.fetch_add(1);
          prev = k;
          first = false;
          seen.push_back(k);
        });
        // Every anchor inside [lo, hi] must appear in every snapshot.
        std::size_t gi = 0;
        for (std::uint64_t a = ((lo + kAnchorStride - 1) / kAnchorStride) *
                               kAnchorStride;
             a <= hi && a < kSpace; a += kAnchorStride) {
          while (gi < seen.size() && seen[gi] < a) ++gi;
          if (gi >= seen.size() || seen[gi] != a) errors.fetch_add(1);
        }
        // Occasionally mutate across shard boundaries too.
        if (i % 64 == 0) {
          m.range_transform(lo, lo + 200,
                            [](std::uint64_t k, std::uint64_t) {
                              return (k << 32) | 3;
                            });
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  done.store(true);
  watchdog.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_TRUE(m.validate());
}

// Sequential oracle for cross-shard batches: routing, `applied` write-back
// through the shard partition (which reorders ops by shard), and the
// returned presence-change count.
TEST(Sharded, CrossShardBatchOracle) {
  constexpr std::uint64_t kSpace = 512;
  using M = ShardedSkipVector<std::uint64_t, std::uint64_t>;
  M m(kSpace, 4, Tiny());
  std::map<std::uint64_t, std::uint64_t> oracle;
  Xoshiro256 rng(21);
  for (int round = 0; round < 4000; ++round) {
    std::vector<M::BatchOp> batch;
    std::vector<std::uint64_t> used;
    const std::uint64_t nops = 2 + rng.next_below(5);
    for (std::uint64_t i = 0; i < nops; ++i) {
      // Distinct keys, spread so most batches straddle shard boundaries.
      std::uint64_t k;
      do {
        k = rng.next_below(kSpace);
      } while (std::find(used.begin(), used.end(), k) != used.end());
      used.push_back(k);
      if (rng.next_below(3) == 0) {
        batch.push_back(M::BatchOp::remove(k));
      } else {
        batch.push_back(M::BatchOp::put(k, rng.next()));
      }
    }
    std::size_t expect_applied = 0;
    std::vector<bool> expect_flag;
    for (const auto& op : batch) {
      const bool present = oracle.count(op.key) > 0;
      bool applied;
      if (op.kind == mvcc::BatchOpKind::kPut) {
        applied = !present;
        oracle[op.key] = op.value;
      } else {
        applied = present;
        oracle.erase(op.key);
      }
      expect_flag.push_back(applied);
      expect_applied += applied ? 1 : 0;
    }
    ASSERT_EQ(m.apply_batch(batch), expect_applied) << round;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(batch[i].applied, expect_flag[i]) << round << ":" << i;
    }
  }
  for (const auto& [k, v] : oracle) {
    auto got = m.lookup(k);
    ASSERT_TRUE(got.has_value()) << k;
    ASSERT_EQ(*got, v) << k;
  }
  EXPECT_EQ(m.size_approx(), oracle.size());
  EXPECT_TRUE(m.validate());
}

// Cross-shard batch atomicity against cross-shard snapshots: a writer
// stamps every anchor (one per shard and then some) with a generation in
// ONE batch; snapshot(0, kSpace-1) spans all shards, so the gate 2PL must
// make each batch all-or-nothing even across shard boundaries. Point-op
// noise on non-anchor keys runs ungated throughout.
TEST(Sharded, CrossShardBatchesAtomicUnderSnapshots) {
  constexpr std::uint64_t kSpace = 512;
  constexpr std::uint64_t kAnchorStride = 32;  // 16 anchors over 8 shards
  using M = ShardedSkipVector<std::uint64_t, std::uint64_t>;
  M m(kSpace, 8, Tiny());
  for (std::uint64_t a = 0; a < kSpace; a += kAnchorStride) {
    ASSERT_TRUE(m.insert(a, 1));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> gens{1};
  std::thread batcher([&] {
    std::uint64_t gen = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      ++gen;
      std::vector<M::BatchOp> batch;
      for (std::uint64_t a = 0; a < kSpace; a += kAnchorStride) {
        batch.push_back(M::BatchOp::put(a, gen));
      }
      m.apply_batch(batch);
      gens.store(gen, std::memory_order_relaxed);
    }
  });
  std::thread noise([&] {
    Xoshiro256 rng(77);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t k = rng.next_below(kSpace);
      if (k % kAnchorStride == 0) continue;
      if (rng.next_below(2) == 0) {
        m.insert(k, k);
      } else {
        m.remove(k);
      }
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = m.snapshot(0, kSpace - 1);
        std::uint64_t lo_gen = ~0ull, hi_gen = 0, anchors = 0;
        for (const auto& [k, v] : snap) {
          if (k % kAnchorStride != 0) continue;
          ++anchors;
          lo_gen = v < lo_gen ? v : lo_gen;
          hi_gen = v > hi_gen ? v : hi_gen;
        }
        // All anchors present, all at one generation: a batch observed
        // half-applied across shards shows two generations (or a gap).
        if (anchors != kSpace / kAnchorStride || lo_gen != hi_gen) {
          torn.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(3));
  stop.store(true);
  batcher.join();
  noise.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(gens.load(), 1u);
  EXPECT_TRUE(m.validate());
}

}  // namespace
}  // namespace sv::core
