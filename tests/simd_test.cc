// Parity and property tests for the vectorized chunk-search layer:
//
//   1. Kernel parity: sv::simd frontends are element-identical to the
//      sv::simd::scalar reference (and to std::lower_bound/upper_bound for
//      the sorted shapes) over random duplicate-free chunks of every size
//      0..capacity, with boundary keys (0, max) and probes at existing
//      keys, their neighbors, and the extremes.
//   2. Routing: VectorMap search results match a std::map oracle under
//      both layouts whatever path kRawScan selected, and the scalar
//      atomic-load path is provably selected under ThreadSanitizer and
//      SV_FORCE_SCALAR (compile-time asserts).
//   3. Torn reads: a writer mutating a chunk under its sequence lock while
//      readers run speculative find_le/find_ge raw scans; every validated
//      read is consistent and the retry loop converges.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/simd.h"
#include "core/skip_vector.h"
#include "core/skip_vector_epoch.h"
#include "sync/sequence_lock.h"
#include "vectormap/vector_map.h"

namespace {

using sv::simd::kNpos;
using sv::sync::SequenceLock;
using sv::vectormap::Layout;
using sv::vectormap::VectorMap;

#if defined(__SANITIZE_THREAD__)
#define SV_TEST_TSAN 1
#endif
#if defined(__SANITIZE_ADDRESS__)
#define SV_TEST_ASAN 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SV_TEST_TSAN 1
#endif
#if __has_feature(address_sanitizer)
#define SV_TEST_ASAN 1
#endif
#endif

#if defined(SV_TEST_ASAN)
#include <sanitizer/lsan_interface.h>
#endif

// LeakSanitizer scope guard: the LeakReclaimer map variant below leaks its
// retired nodes by design, which would otherwise fail the ASan lane. Every
// other variant stays fully leak-checked.
class ScopedLeakCheckDisabler {
 public:
  explicit ScopedLeakCheckDisabler(bool active) : active_(active) {
#if defined(SV_TEST_ASAN)
    if (active_) __lsan_disable();
#endif
  }
  ~ScopedLeakCheckDisabler() {
#if defined(SV_TEST_ASAN)
    if (active_) __lsan_enable();
#endif
  }

 private:
  [[maybe_unused]] bool active_;
};

// The scalar atomic-load path must be provably selected when raw scans
// would be invisible to TSan, and under the explicit escape hatch.
#if defined(SV_TEST_TSAN) || defined(SV_FORCE_SCALAR)
static_assert(!VectorMap<std::uint64_t, std::uint64_t>::kRawScan);
static_assert(!VectorMap<std::uint32_t, std::uint32_t>::kRawScan);
#endif
#if defined(SV_FORCE_SCALAR)
static_assert(!sv::simd::vectorized_v<std::uint32_t>);
static_assert(!sv::simd::vectorized_v<std::uint64_t>);
#endif

template <class K>
class SimdKernelTest : public ::testing::Test {};
using KernelKeyTypes = ::testing::Types<std::uint32_t, std::uint64_t>;
TYPED_TEST_SUITE(SimdKernelTest, KernelKeyTypes);

// Duplicate-free random keys, with the boundary values 0 and max forced in
// for the larger sizes so the bias trick's edge cases are always exercised.
template <class K>
std::vector<K> make_keys(std::mt19937_64& rng, std::uint32_t n) {
  std::vector<K> keys;
  std::uniform_int_distribution<K> dist(0, std::numeric_limits<K>::max());
  while (keys.size() < n) {
    K k = dist(rng);
    if (keys.size() == 7) k = 0;
    if (keys.size() == 11) k = std::numeric_limits<K>::max();
    if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
      keys.push_back(k);
    }
  }
  return keys;
}

// Probes worth checking for a chunk: every present key and its neighbors,
// plus the global extremes and a few random values.
template <class K>
std::vector<K> make_probes(std::mt19937_64& rng, const std::vector<K>& keys) {
  std::vector<K> probes{K{0}, K{1}, std::numeric_limits<K>::max(),
                        static_cast<K>(std::numeric_limits<K>::max() - 1)};
  for (const K k : keys) {
    probes.push_back(k);
    probes.push_back(static_cast<K>(k - 1));
    probes.push_back(static_cast<K>(k + 1));
  }
  std::uniform_int_distribution<K> dist(0, std::numeric_limits<K>::max());
  for (int i = 0; i < 8; ++i) probes.push_back(dist(rng));
  return probes;
}

TYPED_TEST(SimdKernelTest, SortedBoundsMatchStd) {
  using K = TypeParam;
  std::mt19937_64 rng(42);
  for (std::uint32_t n = 0; n <= 300; ++n) {
    std::vector<K> keys = make_keys<K>(rng, n);
    std::sort(keys.begin(), keys.end());
    for (const K k : make_probes(rng, keys)) {
      const auto lb = static_cast<std::uint32_t>(
          std::lower_bound(keys.begin(), keys.end(), k) - keys.begin());
      const auto ub = static_cast<std::uint32_t>(
          std::upper_bound(keys.begin(), keys.end(), k) - keys.begin());
      ASSERT_EQ(sv::simd::lower_bound(keys.data(), n, k), lb)
          << "n=" << n << " k=" << k;
      ASSERT_EQ(sv::simd::upper_bound(keys.data(), n, k), ub)
          << "n=" << n << " k=" << k;
      ASSERT_EQ(sv::simd::scalar::lower_bound(keys.data(), n, k), lb);
      ASSERT_EQ(sv::simd::scalar::upper_bound(keys.data(), n, k), ub);
    }
  }
}

TYPED_TEST(SimdKernelTest, UnsortedSearchesMatchScalarReference) {
  using K = TypeParam;
  std::mt19937_64 rng(43);
  for (std::uint32_t n = 0; n <= 300; ++n) {
    const std::vector<K> keys = make_keys<K>(rng, n);
    for (const K k : make_probes(rng, keys)) {
      const std::uint32_t le_ref = sv::simd::scalar::find_le(keys.data(), n, k);
      const std::uint32_t ge_ref = sv::simd::scalar::find_ge(keys.data(), n, k);
      const std::uint32_t eq_ref = sv::simd::scalar::find_eq(keys.data(), n, k);
      // Keys are duplicate-free, so the best-qualifying index is unique and
      // the dispatch result must be element-identical, not merely tied.
      ASSERT_EQ(sv::simd::find_le(keys.data(), n, k), le_ref)
          << "n=" << n << " k=" << k;
      ASSERT_EQ(sv::simd::find_ge(keys.data(), n, k), ge_ref)
          << "n=" << n << " k=" << k;
      ASSERT_EQ(sv::simd::find_eq(keys.data(), n, k), eq_ref)
          << "n=" << n << " k=" << k;
    }
  }
}

TYPED_TEST(SimdKernelTest, ScalarReferenceAgainstOracle) {
  using K = TypeParam;
  // Pin the reference itself against a transparent O(n) oracle on a few
  // hand-checkable chunks (the property tests above lean on it).
  const std::vector<K> keys{5, 0, 17, 3, 9};
  EXPECT_EQ(sv::simd::scalar::find_le(keys.data(), 5, K{4}), 3u);   // key 3
  EXPECT_EQ(sv::simd::scalar::find_le(keys.data(), 5, K{17}), 2u);  // key 17
  EXPECT_EQ(sv::simd::scalar::find_le(keys.data(), 5, K{0}), 1u);   // key 0
  EXPECT_EQ(sv::simd::scalar::find_ge(keys.data(), 5, K{10}), 2u);  // key 17
  EXPECT_EQ(sv::simd::scalar::find_ge(keys.data(), 5, K{18}), kNpos);
  EXPECT_EQ(sv::simd::scalar::find_eq(keys.data(), 5, K{9}), 4u);
  EXPECT_EQ(sv::simd::scalar::find_eq(keys.data(), 5, K{2}), kNpos);
  EXPECT_EQ(sv::simd::scalar::find_le(keys.data(), 0, K{4}), kNpos);
}

// ---- VectorMap routing parity ----------------------------------------------

template <Layout L>
struct Chunk {
  explicit Chunk(std::uint32_t cap)
      : keys(std::make_unique<std::atomic<std::uint64_t>[]>(cap)),
        vals(std::make_unique<std::atomic<std::uint64_t>[]>(cap)),
        vm(keys.get(), vals.get(), cap, L) {}
  std::unique_ptr<std::atomic<std::uint64_t>[]> keys;
  std::unique_ptr<std::atomic<std::uint64_t>[]> vals;
  VectorMap<std::uint64_t, std::uint64_t> vm;
};

template <Layout L>
void vectormap_oracle_parity() {
  std::mt19937_64 rng(7);
  for (const std::uint32_t cap : {1u, 2u, 7u, 64u, 129u, 256u}) {
    Chunk<L> c(cap);
    std::map<std::uint64_t, std::uint64_t> oracle;
    std::uniform_int_distribution<std::uint64_t> dist(0, 3 * cap);
    while (oracle.size() < cap) {
      const std::uint64_t k = dist(rng);
      if (oracle.emplace(k, k * 2 + 1).second) {
        ASSERT_TRUE(c.vm.insert(k, k * 2 + 1));
      }
    }
    for (std::uint64_t k = 0; k <= 3 * cap + 2; ++k) {
      const auto fle = c.vm.find_le(k);
      auto it = oracle.upper_bound(k);
      if (it == oracle.begin()) {
        EXPECT_FALSE(fle.found);
      } else {
        --it;
        ASSERT_TRUE(fle.found) << "k=" << k;
        EXPECT_EQ(fle.key, it->first);
        EXPECT_EQ(fle.val, it->second);
      }
      const auto fge = c.vm.find_ge(k);
      const auto ge = oracle.lower_bound(k);
      if (ge == oracle.end()) {
        EXPECT_FALSE(fge.found);
      } else {
        ASSERT_TRUE(fge.found) << "k=" << k;
        EXPECT_EQ(fge.key, ge->first);
        EXPECT_EQ(fge.val, ge->second);
      }
      const auto got = c.vm.get(k);
      const auto oit = oracle.find(k);
      EXPECT_EQ(got.has_value(), oit != oracle.end());
      if (got && oit != oracle.end()) EXPECT_EQ(*got, oit->second);
    }
    EXPECT_EQ(c.vm.min_key(), oracle.begin()->first);
    EXPECT_EQ(c.vm.max_key(), oracle.rbegin()->first);
    EXPECT_EQ(c.vm.min_entry().val, oracle.begin()->second);
    EXPECT_EQ(c.vm.max_entry().val, oracle.rbegin()->second);
    // Erase half and re-check exact lookups through the deduped helpers.
    std::vector<std::uint64_t> keys;
    for (const auto& [k, v] : oracle) keys.push_back(k);
    for (std::size_t i = 0; i < keys.size(); i += 2) {
      EXPECT_TRUE(c.vm.erase(keys[i]));
      oracle.erase(keys[i]);
    }
    for (const std::uint64_t k : keys) {
      EXPECT_EQ(c.vm.contains(k), oracle.count(k) == 1) << "k=" << k;
    }
  }
}

TEST(VectorMapRouting, SortedMatchesOracle) {
  vectormap_oracle_parity<Layout::kSorted>();
}
TEST(VectorMapRouting, UnsortedMatchesOracle) {
  vectormap_oracle_parity<Layout::kUnsorted>();
}

// ---- Torn-read convergence ---------------------------------------------------

// A writer churns a chunk under its sequence lock while readers run the
// speculative protocol (read_begin -> find_le/find_ge -> validate). The
// raw-scan kernels may observe arbitrarily torn states mid-mutation; the
// property is that validated results are always consistent (key from the
// maintained universe, val == key * 3, correct side of the probe) and that
// readers keep making progress (the retry loop converges).
template <Layout L>
void torn_read_convergence() {
  constexpr std::uint32_t kCap = 128;
  Chunk<L> c(kCap);
  SequenceLock lock;
  // Universe: even keys 2..2*kCap; writer inserts/erases them, val = 3*key.
  for (std::uint64_t k = 2; k <= kCap; k += 2) c.vm.insert(k, k * 3);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> validated{0};

  std::thread writer([&] {
    std::mt19937_64 rng(11);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t k =
          2 * (1 + rng() % kCap);  // even keys only, 2..2*kCap
      lock.acquire();
      std::uint64_t dummy;
      if (!c.vm.erase(k, &dummy)) c.vm.insert(k, k * 3);
      lock.release();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937_64 rng(100 + r);
      std::uint64_t mine = 0;
      while (mine < 3000) {
        const std::uint64_t probe = rng() % (2 * kCap + 3);
        const auto w = lock.read_begin();
        const auto fle = c.vm.find_le(probe);
        const auto fge = c.vm.find_ge(probe);
        if (!lock.validate(w)) continue;  // torn: retry (must converge)
        if (fle.found) {
          EXPECT_LE(fle.key, probe);
          EXPECT_EQ(fle.key % 2, 0u);
          EXPECT_EQ(fle.val, fle.key * 3);
        }
        if (fge.found) {
          EXPECT_GE(fge.key, probe);
          EXPECT_EQ(fge.key % 2, 0u);
          EXPECT_EQ(fge.val, fge.key * 3);
        }
        ++mine;
      }
      validated.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(validated.load(), 2u * 3000u);
}

TEST(TornReads, SortedConverges) { torn_read_convergence<Layout::kSorted>(); }
TEST(TornReads, UnsortedConverges) {
  torn_read_convergence<Layout::kUnsorted>();
}

// ---- Full-map parity under every reclaimer -----------------------------------

template <class Map>
class SimdMapParityTest : public ::testing::Test {};
using MapTypes =
    ::testing::Types<sv::core::SkipVector<std::uint64_t, std::uint64_t>,
                     sv::core::SkipVectorLeak<std::uint64_t, std::uint64_t>,
                     sv::core::SkipVectorSeq<std::uint64_t, std::uint64_t>,
                     sv::core::SkipVectorEpoch<std::uint64_t, std::uint64_t>>;
TYPED_TEST_SUITE(SimdMapParityTest, MapTypes);

// The SIMD-routed read path (lookup, floor, ceiling -- every descent plus
// every chunk search) agrees with std::map under each reclaimer variant.
TYPED_TEST(SimdMapParityTest, ReadPathMatchesOracle) {
  const ScopedLeakCheckDisabler allow_designed_leaks(
      std::is_same_v<TypeParam,
                     sv::core::SkipVectorLeak<std::uint64_t, std::uint64_t>>);
  TypeParam m(sv::core::Config::for_elements(4096));
  std::map<std::uint64_t, std::uint64_t> oracle;
  std::mt19937_64 rng(5);
  for (int i = 0; i < 4096; ++i) {
    const std::uint64_t k = rng() % 8192;
    if (oracle.emplace(k, k + 1).second) {
      EXPECT_TRUE(m.insert(k, k + 1));
    }
  }
  for (int i = 0; i < 2048; ++i) {
    const std::uint64_t k = rng() % 8192;
    if (oracle.erase(k) != 0) EXPECT_TRUE(m.remove(k));
  }
  for (std::uint64_t k = 0; k < 8192; k += 3) {
    const auto got = m.lookup(k);
    const auto it = oracle.find(k);
    ASSERT_EQ(got.has_value(), it != oracle.end()) << "k=" << k;
    if (got) EXPECT_EQ(*got, it->second);

    const auto fl = m.floor(k);
    auto ub = oracle.upper_bound(k);
    if (ub == oracle.begin()) {
      EXPECT_FALSE(fl.has_value());
    } else {
      --ub;
      ASSERT_TRUE(fl.has_value()) << "k=" << k;
      EXPECT_EQ(fl->first, ub->first);
    }

    const auto ce = m.ceiling(k);
    const auto lb = oracle.lower_bound(k);
    if (lb == oracle.end()) {
      EXPECT_FALSE(ce.has_value());
    } else {
      ASSERT_TRUE(ce.has_value()) << "k=" << k;
      EXPECT_EQ(ce->first, lb->first);
    }
  }
}

}  // namespace
