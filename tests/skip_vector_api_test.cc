// Tests for the extended public API: floor/ceiling/first/last navigation,
// bulk_load, operation counters, and range-operation edge cases -- both
// sequentially (vs oracle) and under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/skip_vector.h"

namespace sv::core {
namespace {

using Map = SkipVector<std::uint64_t, std::uint64_t>;
using SeqMap = SkipVectorSeq<std::uint64_t, std::uint64_t>;

Config Tiny() {
  Config c;
  c.layer_count = 4;
  c.target_data_vector_size = 4;
  c.target_index_vector_size = 4;
  return c;
}

// ---- Navigation -------------------------------------------------------------

TEST(Navigation, EmptyMap) {
  SeqMap m(Tiny());
  EXPECT_FALSE(m.first().has_value());
  EXPECT_FALSE(m.last().has_value());
  EXPECT_FALSE(m.floor(10).has_value());
  EXPECT_FALSE(m.ceiling(10).has_value());
}

TEST(Navigation, SingleElement) {
  SeqMap m(Tiny());
  ASSERT_TRUE(m.insert(50, 500));
  EXPECT_EQ(m.first()->first, 50u);
  EXPECT_EQ(m.last()->first, 50u);
  EXPECT_EQ(m.floor(50)->first, 50u);
  EXPECT_EQ(m.floor(99)->first, 50u);
  EXPECT_FALSE(m.floor(49).has_value());
  EXPECT_EQ(m.ceiling(50)->first, 50u);
  EXPECT_EQ(m.ceiling(1)->first, 50u);
  EXPECT_FALSE(m.ceiling(51).has_value());
}

TEST(Navigation, AgainstOracle) {
  SeqMap m(Tiny());
  std::map<std::uint64_t, std::uint64_t> oracle;
  Xoshiro256 rng(7);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t k = rng.next_below(300);
    if (rng.next_below(3) == 0) {
      m.remove(k);
      oracle.erase(k);
    } else {
      const std::uint64_t v = rng.next();
      if (m.insert(k, v)) {
        oracle.emplace(k, v);
      }
    }
    // Probe navigation at a random point.
    const std::uint64_t q = rng.next_below(320);
    auto fl = m.floor(q);
    auto ub = oracle.upper_bound(q);
    if (ub == oracle.begin()) {
      ASSERT_FALSE(fl.has_value()) << "floor(" << q << ") @" << i;
    } else {
      auto expect = std::prev(ub);
      ASSERT_TRUE(fl.has_value());
      ASSERT_EQ(fl->first, expect->first) << "floor(" << q << ") @" << i;
      ASSERT_EQ(fl->second, expect->second);
    }
    auto ce = m.ceiling(q);
    auto lb = oracle.lower_bound(q);
    if (lb == oracle.end()) {
      ASSERT_FALSE(ce.has_value()) << "ceiling(" << q << ") @" << i;
    } else {
      ASSERT_TRUE(ce.has_value());
      ASSERT_EQ(ce->first, lb->first) << "ceiling(" << q << ") @" << i;
    }
    if (oracle.empty()) {
      ASSERT_FALSE(m.first().has_value());
      ASSERT_FALSE(m.last().has_value());
    } else {
      ASSERT_EQ(m.first()->first, oracle.begin()->first) << "@" << i;
      ASSERT_EQ(m.last()->first, oracle.rbegin()->first) << "@" << i;
    }
  }
}

TEST(Navigation, ConcurrentFirstLastStayWithinBounds) {
  // Churn the interior; keys 0 and kMax are permanent, so first()/last()
  // must always return them.
  Map m(Tiny());
  constexpr std::uint64_t kMax = 1023;
  ASSERT_TRUE(m.insert(0, 1));
  ASSERT_TRUE(m.insert(kMax, 2));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t + 3);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = 1 + rng.next_below(kMax - 1);
        if (rng.next_below(2) == 0) {
          m.insert(k, k);
        } else {
          m.remove(k);
        }
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto f = m.first();
        auto l = m.last();
        if (!f || f->first != 0) errors.fetch_add(1);
        if (!l || l->first != kMax) errors.fetch_add(1);
        auto fl = m.floor(kMax + 100);
        if (!fl || fl->first != kMax) errors.fetch_add(1);
        auto ce = m.ceiling(0);
        if (!ce || ce->first != 0) errors.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0u);
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

// ---- Bulk load ----------------------------------------------------------------

TEST(BulkLoad, EquivalentToInserts) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> data;
  for (std::uint64_t k = 0; k < 1000; k += 3) data.emplace_back(k, k * 7);

  SeqMap bulk(Tiny());
  bulk.bulk_load(data);
  std::string err;
  ASSERT_TRUE(bulk.validate(&err)) << err;
  ASSERT_EQ(bulk.size_approx(), data.size());
  for (const auto& [k, v] : data) {
    ASSERT_EQ(bulk.lookup(k).value(), v) << k;
  }
  EXPECT_FALSE(bulk.lookup(1).has_value());
  // The map is fully operational afterwards.
  EXPECT_TRUE(bulk.insert(1, 11));
  EXPECT_TRUE(bulk.remove(0));
  EXPECT_EQ(bulk.first()->first, 1u);
  EXPECT_EQ(bulk.last()->first, data.back().first);
  ASSERT_TRUE(bulk.validate(&err)) << err;
}

TEST(BulkLoad, PacksChunksToTargetFill) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> data;
  for (std::uint64_t k = 0; k < 4096; ++k) data.emplace_back(k, k);
  SeqMap m(Config::for_elements(4096));
  m.bulk_load(data);
  auto st = m.stats();
  // Chunks are filled to T (half capacity): ~n/T data nodes, fill ~0.5.
  EXPECT_NEAR(st.layers[0].avg_fill, 0.5, 0.05);
  EXPECT_EQ(st.layers[0].elements, 4096u);
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
}

TEST(BulkLoad, RejectsBadInput) {
  SeqMap m(Tiny());
  EXPECT_THROW(m.bulk_load({{5, 0}, {5, 1}}), std::invalid_argument);
  EXPECT_THROW(m.bulk_load({{5, 0}, {4, 1}}), std::invalid_argument);
  SeqMap m2(Tiny());
  ASSERT_TRUE(m2.insert(1, 1));
  EXPECT_THROW(m2.bulk_load({{5, 0}}), std::logic_error);
}

TEST(BulkLoad, EmptyInputIsNoop) {
  SeqMap m(Tiny());
  m.bulk_load({});
  EXPECT_EQ(m.size_approx(), 0u);
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

TEST(BulkLoad, SingleLayerMap) {
  Config c;
  c.layer_count = 1;
  c.target_data_vector_size = 4;
  SeqMap m(c);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> data;
  for (std::uint64_t k = 0; k < 64; ++k) data.emplace_back(k, k);
  m.bulk_load(data);
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
  for (std::uint64_t k = 0; k < 64; ++k) ASSERT_TRUE(m.lookup(k)) << k;
  EXPECT_TRUE(m.remove(0));
  EXPECT_TRUE(m.insert(100, 1));
}

TEST(BulkLoad, ConcurrentOpsAfterLoad) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> data;
  for (std::uint64_t k = 0; k < 8192; k += 2) data.emplace_back(k, k);
  Map m(Config::for_elements(8192));
  m.bulk_load(data);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t);
      for (int i = 0; i < 20000; ++i) {
        const std::uint64_t k = rng.next_below(8192);
        switch (rng.next_below(3)) {
          case 0:
            m.insert(k, k);
            break;
          case 1:
            m.remove(k);
            break;
          default:
            m.lookup(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

// ---- Counters -------------------------------------------------------------------

TEST(Counters, SplitsAndMergesAreCounted) {
  SeqMap m(Tiny());
  // Ascending inserts: plenty of capacity splits and tower splits.
  for (std::uint64_t k = 0; k < 500; ++k) ASSERT_TRUE(m.insert(k, k));
  auto c1 = m.counters();
  EXPECT_GT(c1.capacity_splits + c1.tower_splits, 0u);
  EXPECT_EQ(c1.restarts, 0u) << "sequential execution cannot restart";
  // Remove tall keys to orphan nodes, then churn to trigger merges.
  for (std::uint64_t k = 0; k < 500; ++k) ASSERT_TRUE(m.remove(k));
  for (std::uint64_t k = 0; k < 500; ++k) {
    m.insert(k, k);
    m.remove(k);
  }
  auto c2 = m.counters();
  EXPECT_GT(c2.orphan_merges, 0u);
}

// ---- Range edge cases --------------------------------------------------------------

TEST(RangeEdges, EmptyAndDegenerateRanges) {
  SeqMap m(Tiny());
  for (std::uint64_t k = 10; k <= 100; k += 10) ASSERT_TRUE(m.insert(k, k));
  std::size_t n = m.range_for_each(0, 9, [](auto, auto) {});
  EXPECT_EQ(n, 0u) << "range strictly before all keys";
  n = m.range_for_each(101, 1000, [](auto, auto) {});
  EXPECT_EQ(n, 0u) << "range strictly after all keys";
  n = m.range_for_each(50, 50, [](auto, auto) {});
  EXPECT_EQ(n, 1u) << "single-key range";
  n = m.range_for_each(55, 55, [](auto, auto) {});
  EXPECT_EQ(n, 0u) << "single absent key";
  n = m.range_for_each(0, ~std::uint64_t{0}, [](auto, auto) {});
  EXPECT_EQ(n, 10u) << "full-domain range";
}

TEST(RangeEdges, BoundariesAlignedToChunkEdges) {
  Config c = Tiny();
  SeqMap m(c);
  for (std::uint64_t k = 0; k < 256; ++k) ASSERT_TRUE(m.insert(k, k));
  // Probe many (lo, hi) pairs; count must equal hi - lo + 1 clamped.
  for (std::uint64_t lo = 0; lo < 256; lo += 7) {
    for (std::uint64_t hi = lo; hi < 256; hi += 31) {
      std::uint64_t prev = lo;
      bool ordered = true;
      std::size_t n = m.range_for_each(lo, hi, [&](std::uint64_t k, auto) {
        if (k < prev) ordered = false;
        prev = k;
      });
      ASSERT_EQ(n, hi - lo + 1) << lo << ".." << hi;
      ASSERT_TRUE(ordered) << "range_for_each must ascend";
    }
  }
}

TEST(RangeEdges, TransformReturnsVisitCount) {
  SeqMap m(Tiny());
  for (std::uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(m.insert(k, 0));
  const std::size_t n =
      m.range_transform(25, 74, [](std::uint64_t, std::uint64_t v) {
        return v + 1;
      });
  EXPECT_EQ(n, 50u);
  std::uint64_t touched = 0;
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    if (v == 1) {
      ++touched;
      EXPECT_GE(k, 25u);
      EXPECT_LE(k, 74u);
    }
  });
  EXPECT_EQ(touched, 50u);
}

}  // namespace
}  // namespace sv::core
