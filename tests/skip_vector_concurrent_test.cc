// Concurrent correctness tests for SkipVectorMap: multi-threaded stress with
// value tagging (torn-read detection), disjoint-partition oracles, contended
// insert/remove accounting, hazard-pointer reclamation bounds, and range
// query serializability.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/skip_vector.h"
#include "debug/fault_inject.h"

namespace sv::core {
namespace {

using vectormap::Layout;
using MapHP = SkipVector<std::uint64_t, std::uint64_t>;
using MapLeak = SkipVectorLeak<std::uint64_t, std::uint64_t>;

Config SmallChunks() {
  Config c;
  c.layer_count = 5;
  c.target_data_vector_size = 4;
  c.target_index_vector_size = 4;
  return c;
}

unsigned StressThreads() {
  // Oversubscribe a little so single-core machines still interleave.
  const unsigned hw = hardware_threads();
  return hw >= 4 ? hw : 4;
}

// Values encode the key in their upper 32 bits; any lookup returning a
// mismatched tag proves a torn or misrouted read.
std::uint64_t TagFor(std::uint64_t key, std::uint64_t payload) {
  return (key << 32) | (payload & 0xFFFFFFFFu);
}

TEST(SkipVectorConcurrent, MixedOpsTaggedValues) {
  MapHP m(SmallChunks());
  constexpr std::uint64_t kRange = 256;
  const unsigned kThreads = StressThreads();
  constexpr std::uint64_t kOpsPerThread = 60000;
  std::atomic<std::uint64_t> bad_tags{0};

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(1000 + t);
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t k = rng.next_below(kRange);
        switch (rng.next_below(10)) {
          case 0:
          case 1:
          case 2:
            m.insert(k, TagFor(k, rng.next()));
            break;
          case 3:
          case 4:
            m.remove(k);
            break;
          case 5:
            m.update(k, TagFor(k, rng.next()));
            break;
          default: {
            auto v = m.lookup(k);
            if (v && (*v >> 32) != k) {
              bad_tags.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad_tags.load(), 0u) << "lookup returned a value for another key";

  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
  // Every surviving mapping must be in range and correctly tagged.
  std::size_t n = 0;
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    EXPECT_LT(k, kRange);
    EXPECT_EQ(v >> 32, k);
    ++n;
  });
  EXPECT_EQ(n, m.size_approx());
}

TEST(SkipVectorConcurrent, DisjointPartitionsMatchPerThreadOracles) {
  // Each thread owns a disjoint key partition and maintains a private
  // oracle; concurrent activity in other partitions must not disturb it.
  // Partitions are interleaved modulo the thread count so that every chunk
  // holds keys of many threads (maximum inter-thread chunk contention).
  MapHP m(SmallChunks());
  const unsigned kThreads = StressThreads();
  constexpr std::uint64_t kOpsPerThread = 40000;
  constexpr std::uint64_t kKeysPerThread = 128;
  std::vector<std::map<std::uint64_t, std::uint64_t>> oracles(kThreads);
  std::atomic<std::uint64_t> violations{0};

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& oracle = oracles[t];
      Xoshiro256 rng(77 + t);
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t k = rng.next_below(kKeysPerThread) * kThreads + t;
        switch (rng.next_below(3)) {
          case 0: {
            const std::uint64_t v = TagFor(k, rng.next());
            const bool expect = oracle.emplace(k, v).second;
            if (m.insert(k, v) != expect) {
              violations.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          case 1: {
            const bool expect = oracle.erase(k) > 0;
            if (m.remove(k) != expect) {
              violations.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          default: {
            auto it = oracle.find(k);
            auto got = m.lookup(k);
            const bool match =
                got.has_value() == (it != oracle.end()) &&
                (!got || *got == it->second);
            if (!match) violations.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(violations.load(), 0u);

  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
  // Union of oracles == final contents.
  std::map<std::uint64_t, std::uint64_t> expected;
  for (const auto& o : oracles) expected.insert(o.begin(), o.end());
  std::map<std::uint64_t, std::uint64_t> actual;
  m.for_each([&](std::uint64_t k, std::uint64_t v) { actual.emplace(k, v); });
  EXPECT_EQ(actual, expected);
}

TEST(SkipVectorConcurrent, ContendedInsertExactlyOnce) {
  // All threads race to insert the same keys: each key admits exactly one
  // winner, and afterwards every key is present.
  MapHP m(SmallChunks());
  constexpr std::uint64_t kKeys = 4096;
  const unsigned kThreads = StressThreads();
  std::atomic<std::uint64_t> wins{0};

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(5 + t);
      std::vector<std::uint64_t> keys(kKeys);
      for (std::uint64_t k = 0; k < kKeys; ++k) keys[k] = k;
      // Shuffle per thread so contention hits every region.
      for (std::uint64_t i = kKeys; i > 1; --i) {
        std::swap(keys[i - 1], keys[rng.next_below(i)]);
      }
      std::uint64_t local = 0;
      for (auto k : keys) local += m.insert(k, TagFor(k, t)) ? 1 : 0;
      wins.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_EQ(m.size_approx(), kKeys);
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(m.lookup(k).has_value()) << k;
  }
}

TEST(SkipVectorConcurrent, ContendedRemoveExactlyOnce) {
  MapHP m(SmallChunks());
  constexpr std::uint64_t kKeys = 4096;
  const unsigned kThreads = StressThreads();
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(m.insert(k, TagFor(k, 0)));
  }
  std::atomic<std::uint64_t> wins{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(31 + t);
      std::vector<std::uint64_t> keys(kKeys);
      for (std::uint64_t k = 0; k < kKeys; ++k) keys[k] = k;
      for (std::uint64_t i = kKeys; i > 1; --i) {
        std::swap(keys[i - 1], keys[rng.next_below(i)]);
      }
      std::uint64_t local = 0;
      for (auto k : keys) local += m.remove(k) ? 1 : 0;
      wins.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_EQ(m.size_approx(), 0u);
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
  std::size_t n = 0;
  m.for_each([&](std::uint64_t, std::uint64_t) { ++n; });
  EXPECT_EQ(n, 0u);
}

TEST(SkipVectorConcurrent, InsertRemoveChurnKeepsStructureValid) {
  // Heavy 0/50/50-style churn (the paper's worst case, Fig. 5) on a small
  // key range, then full validation.
  MapHP m(SmallChunks());
  constexpr std::uint64_t kRange = 64;  // maximum chunk contention
  const unsigned kThreads = StressThreads();
  constexpr std::uint64_t kOpsPerThread = 50000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(900 + t);
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t k = rng.next_below(kRange);
        if (rng.next_below(2) == 0) {
          m.insert(k, TagFor(k, rng.next()));
        } else {
          m.remove(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    EXPECT_LT(k, kRange);
    EXPECT_EQ(v >> 32, k);
  });
}

TEST(SkipVectorConcurrent, HazardPointersReclaimUnderChurn) {
  MapHP m(SmallChunks());
  constexpr std::uint64_t kRange = 512;
  const unsigned kThreads = StressThreads();
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(4242 + t);
      for (std::uint64_t i = 0; i < 60000; ++i) {
        const std::uint64_t k = rng.next_below(kRange);
        if (rng.next_below(2) == 0) {
          m.insert(k, TagFor(k, i));
        } else {
          m.remove(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  auto& domain = m.reclaimer().domain();
  // Churn at T_D=4 with a tiny key range forces many splits and merges;
  // reclamation must actually have happened, and after a flush the pending
  // backlog must respect the hazard-pointer bound.
  domain.flush();
  EXPECT_GT(domain.reclaimed_count(), 0u)
      << "merges should have retired and reclaimed nodes";
  EXPECT_LE(domain.retired_count(),
            domain.attached_threads() * reclaim::HazardDomain::kSlotsPerThread)
      << "post-quiesce backlog exceeds the HP protection bound";
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

TEST(SkipVectorConcurrent, LeakReclaimerVariantRunsClean) {
  // SV-Leak: same algorithm, no reclamation. Must survive identical churn.
  MapLeak m(SmallChunks());
  constexpr std::uint64_t kRange = 256;
  const unsigned kThreads = StressThreads();
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(111 + t);
      for (std::uint64_t i = 0; i < 40000; ++i) {
        const std::uint64_t k = rng.next_below(kRange);
        switch (rng.next_below(3)) {
          case 0:
            m.insert(k, TagFor(k, i));
            break;
          case 1:
            m.remove(k);
            break;
          default:
            m.lookup(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

TEST(SkipVectorConcurrent, RangeTransformIsAtomic) {
  // Writers repeatedly stamp every value in the range with a fresh tag via
  // one mutating range query; serializability means a range read must never
  // observe two different tags.
  MapHP m(SmallChunks());
  constexpr std::uint64_t kKeys = 512;
  for (std::uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(m.insert(k, 0));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> mixed_snapshots{0};
  std::atomic<std::uint64_t> snapshots{0};

  std::vector<std::thread> writers;
  const unsigned kWriters = 2;
  for (unsigned t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      std::uint64_t tag = t + 1;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t stamp = (tag << 8) | t;
        m.range_transform(0, kKeys - 1,
                          [&](std::uint64_t, std::uint64_t) { return stamp; });
        tag += kWriters;
      }
    });
  }
  std::vector<std::thread> readers;
  for (unsigned t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t first = 0;
        bool have_first = false;
        bool mixed = false;
        std::size_t count = 0;
        m.range_for_each(0, kKeys - 1,
                         [&](std::uint64_t, std::uint64_t v) {
                           ++count;
                           if (!have_first) {
                             first = v;
                             have_first = true;
                           } else if (v != first) {
                             mixed = true;
                           }
                         });
        if (count != kKeys || mixed) {
          mixed_snapshots.fetch_add(1, std::memory_order_relaxed);
        }
        snapshots.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  stop.store(true);
  for (auto& th : writers) th.join();
  for (auto& th : readers) th.join();
  EXPECT_GT(snapshots.load(), 0u);
  EXPECT_EQ(mixed_snapshots.load(), 0u)
      << "a range query observed a partially applied range transform";
}

TEST(SkipVectorConcurrent, RangeQueriesDuringStructuralChurn) {
  // Range reads while inserts/removes reshape the covered chunks: counts
  // must be plausible and every observed key in range and correctly tagged.
  MapHP m(SmallChunks());
  constexpr std::uint64_t kRange = 1024;
  // Half the keys always present (never removed), the rest churn.
  for (std::uint64_t k = 0; k < kRange; k += 2) {
    ASSERT_TRUE(m.insert(k, TagFor(k, 7)));
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> errors{0};

  std::vector<std::thread> churners;
  for (unsigned t = 0; t < 2; ++t) {
    churners.emplace_back([&, t] {
      Xoshiro256 rng(5555 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = rng.next_below(kRange / 2) * 2 + 1;  // odd
        if (rng.next_below(2) == 0) {
          m.insert(k, TagFor(k, rng.next()));
        } else {
          m.remove(k);
        }
      }
    });
  }
  std::vector<std::thread> scanners;
  for (unsigned t = 0; t < 2; ++t) {
    scanners.emplace_back([&, t] {
      Xoshiro256 rng(31337 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t lo = rng.next_below(kRange / 2);
        const std::uint64_t hi = lo + rng.next_below(kRange - lo);
        std::uint64_t evens_seen = 0;
        m.range_for_each(lo, hi, [&](std::uint64_t k, std::uint64_t v) {
          if (k < lo || k > hi || (v >> 32) != k) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
          if (k % 2 == 0) ++evens_seen;
        });
        // All permanently-present even keys in [lo, hi] must be seen.
        const std::uint64_t expect_evens = hi / 2 - (lo + 1) / 2 + 1;
        if (evens_seen != expect_evens) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  stop.store(true);
  for (auto& th : churners) th.join();
  for (auto& th : scanners) th.join();
  EXPECT_EQ(errors.load(), 0u);
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

TEST(SkipVectorConcurrent, SortedSortedLayoutUnderStress) {
  // Fig. 7b's alternative layouts must be just as correct.
  Config cfg = SmallChunks();
  cfg.index_layout = Layout::kUnsorted;
  cfg.data_layout = Layout::kSorted;
  SkipVectorMap<std::uint64_t, std::uint64_t, reclaim::HazardReclaimer> m(cfg);
  const unsigned kThreads = StressThreads();
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(64 + t);
      for (std::uint64_t i = 0; i < 30000; ++i) {
        const std::uint64_t k = rng.next_below(200);
        switch (rng.next_below(3)) {
          case 0:
            m.insert(k, TagFor(k, i));
            break;
          case 1:
            m.remove(k);
            break;
          default: {
            auto v = m.lookup(k);
            if (v) {
              EXPECT_EQ(*v >> 32, k);
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

// ---- Deterministic rare-interleaving scenarios (fault injection) -----------
//
// These tests replace "run churn and hope the scheduler cooperates" with
// exact interleavings: a blocking handler parks a thread at a named
// transition point while the test probes the structure from outside, and the
// per-point hit trace is compared across two runs to prove the scenario
// replays deterministically.

using debug::FaultInjector;
using debug::Point;
using debug::Schedule;
using HitSnapshot =
    std::array<std::uint64_t, static_cast<std::size_t>(Point::kCount)>;

Config TwoLayer() {
  Config c;
  c.layer_count = 2;
  c.target_data_vector_size = 4;  // capacity 8, merge threshold 7
  c.target_index_vector_size = 4;
  return c;
}

TEST(SkipVectorInjection, LazyOrphanMergeDuringLookup) {
  auto run_once = [](bool probe_blocked_reader) {
    MapHP m(TwoLayer());
    // Shape: head data chunk {10,20,30,40}; key 50 gets a height-1 tower,
    // splitting off a second chunk; 60 and 70 join it; removing 50 strips
    // the tower and leaves {60,70} as a lazy orphan awaiting merge.
    for (std::uint64_t k : {10, 20, 30, 40}) {
      EXPECT_TRUE(m.insert_with_height(k, TagFor(k, 1), 0));
    }
    EXPECT_TRUE(m.insert_with_height(50, TagFor(50, 1), 1));
    EXPECT_TRUE(m.insert_with_height(60, TagFor(60, 1), 0));
    EXPECT_TRUE(m.insert_with_height(70, TagFor(70, 1), 0));
    EXPECT_TRUE(m.remove(50));
    EXPECT_EQ(m.counters().orphan_merges, 0u);

    // Park the merging thread at kMerge: both write locks held, the orphan
    // not yet absorbed.
    std::atomic<bool> parked{false};
    std::atomic<bool> release{false};
    FaultInjector::instance().set_handler(
        [&](Point p, std::uint64_t) {
          if (p != Point::kMerge) return;
          parked.store(true, std::memory_order_release);
          while (!release.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        });

    // 4 + 2 entries < threshold 7: this insert's traversal must merge the
    // orphan before placing 80.
    std::thread merger([&] {
      EXPECT_TRUE(m.insert_with_height(80, TagFor(80, 1), 0));
    });
    while (!parked.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }

    // A lookup into the write-locked region cannot complete until the merge
    // finishes; one outside it proceeds immediately.
    std::atomic<bool> lookup_done{false};
    std::uint64_t looked_up = 0;
    std::thread reader([&] {
      auto v = m.lookup(60);
      ASSERT_TRUE(v.has_value());
      looked_up = *v;
      lookup_done.store(true, std::memory_order_release);
    });
    if (probe_blocked_reader) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      EXPECT_FALSE(lookup_done.load(std::memory_order_acquire))
          << "a read of the locked chunk completed mid-merge";
    }

    release.store(true, std::memory_order_release);
    merger.join();
    reader.join();
    EXPECT_TRUE(lookup_done.load());
    EXPECT_EQ(looked_up, TagFor(60, 1));
    EXPECT_EQ(m.counters().orphan_merges, 1u);

    const HitSnapshot snap = FaultInjector::instance().hit_snapshot();
    EXPECT_EQ(snap[static_cast<std::size_t>(Point::kMerge)], 1u);
    FaultInjector::instance().clear();

    std::map<std::uint64_t, std::uint64_t> contents;
    m.for_each([&](std::uint64_t k, std::uint64_t v) { contents.emplace(k, v); });
    const std::map<std::uint64_t, std::uint64_t> expected{
        {10, TagFor(10, 1)}, {20, TagFor(20, 1)}, {30, TagFor(30, 1)},
        {40, TagFor(40, 1)}, {60, TagFor(60, 1)}, {70, TagFor(70, 1)},
        {80, TagFor(80, 1)}};
    EXPECT_EQ(contents, expected);
    const auto rep = m.validate_structure();
    EXPECT_TRUE(rep.ok()) << rep.to_string();
    return snap;
  };

  const HitSnapshot a = run_once(/*probe_blocked_reader=*/true);
  const HitSnapshot b = run_once(/*probe_blocked_reader=*/false);
  EXPECT_EQ(a, b) << "the interleaving must replay with an identical trace";
}

TEST(SkipVectorInjection, FreezeAbortLeavesReadersUnblocked) {
  auto run_once = []() {
    MapHP m(TwoLayer());
    for (std::uint64_t k : {10, 20, 30, 40}) {
      EXPECT_TRUE(m.insert_with_height(k, TagFor(k, 1), 0));
    }
    EXPECT_TRUE(m.insert_with_height(50, TagFor(50, 1), 1));
    EXPECT_TRUE(m.insert_with_height(60, TagFor(60, 1), 0));

    // Park a duplicate tower insert at kThaw: it found 50 in the index
    // layer and is about to thaw its frozen checkpoint -- the index head is
    // still frozen at this instant.
    std::atomic<bool> parked{false};
    std::atomic<bool> release{false};
    FaultInjector::instance().set_handler(
        [&](Point p, std::uint64_t) {
          if (p != Point::kThaw) return;
          parked.store(true, std::memory_order_release);
          while (!release.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        });
    std::thread dup([&] {
      EXPECT_FALSE(m.insert_with_height(50, TagFor(50, 2), 1));
    });
    while (!parked.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }

    // Freezing blocks writers, never readers (paper SIV-B): lookups through
    // the frozen index node must succeed right now. A data-layer write that
    // never touches the frozen node also proceeds.
    EXPECT_EQ(m.lookup(10), TagFor(10, 1));
    EXPECT_EQ(m.lookup(50), TagFor(50, 1));
    EXPECT_EQ(m.lookup(60), TagFor(60, 1));
    EXPECT_TRUE(m.insert_with_height(80, TagFor(80, 1), 0));

    release.store(true, std::memory_order_release);
    dup.join();

    const HitSnapshot snap = FaultInjector::instance().hit_snapshot();
    EXPECT_GE(snap[static_cast<std::size_t>(Point::kThaw)], 1u);
    FaultInjector::instance().clear();
    EXPECT_EQ(m.lookup(50), TagFor(50, 1)) << "duplicate insert must not win";
    const auto rep = m.validate_structure();
    EXPECT_TRUE(rep.ok()) << rep.to_string();
    return snap;
  };

  const HitSnapshot a = run_once();
  const HitSnapshot b = run_once();
  EXPECT_EQ(a, b) << "the interleaving must replay with an identical trace";
}

TEST(SkipVectorInjection, ChurnUnderScheduleSweepStaysValid) {
  // An 8-thread torture slice under a seeded probabilistic schedule: forced
  // yields stretch every transition window and injected freeze failures
  // exercise the checkpoint-resume path continuously.
  Schedule s;
  s.seed = 9;
  s.yield_prob = 0.2;
  s.fail_prob = 0.1;
  FaultInjector::instance().install(s);

  MapHP m(SmallChunks());
  constexpr std::uint64_t kRange = 128;
  constexpr unsigned kThreads = 8;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(2600 + t);
      for (std::uint64_t i = 0; i < 4000; ++i) {
        const std::uint64_t k = rng.next_below(kRange);
        switch (rng.next_below(4)) {
          case 0:
            m.insert(k, TagFor(k, rng.next()));
            break;
          case 1:
            m.remove(k);
            break;
          default: {
            auto v = m.lookup(k);
            if (v) {
              EXPECT_EQ(*v >> 32, k);
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // The schedule must actually have perturbed executions.
  EXPECT_GT(FaultInjector::instance().fired_count(Point::kFreeze), 0u);
  FaultInjector::instance().clear();
  const auto rep = m.validate_structure();
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    EXPECT_LT(k, kRange);
    EXPECT_EQ(v >> 32, k);
  });
}

}  // namespace
}  // namespace sv::core
