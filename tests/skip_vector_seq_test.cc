// Sequential model-checking of SkipVectorMap against a std::map oracle,
// plus structural invariant checks (validate()) across the configuration
// grid: chunk sizes, merge thresholds, sorted/unsorted layouts.
#include "core/skip_vector.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <vector>

#include "common/rng.h"

namespace sv::core {
namespace {

using vectormap::Layout;

// Layouts became runtime configuration; the template parameters survive
// here as convenience shorthand for the grid of static combinations.
template <Layout I, Layout D>
struct Seq
    : SkipVectorMap<std::uint64_t, std::uint64_t, reclaim::ImmediateReclaimer> {
  explicit Seq(Config c = Config{})
      : SkipVectorMap([](Config cfg) {
          cfg.index_layout = I;
          cfg.data_layout = D;
          return cfg;
        }(c)) {}
};

TEST(SkipVectorBasics, EmptyMapBehaviour) {
  Seq<Layout::kSorted, Layout::kUnsorted> m;
  EXPECT_FALSE(m.lookup(0).has_value());
  EXPECT_FALSE(m.lookup(42).has_value());
  EXPECT_FALSE(m.remove(42));
  EXPECT_EQ(m.size_approx(), 0u);
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

TEST(SkipVectorBasics, InsertLookupRemoveSingle) {
  Seq<Layout::kSorted, Layout::kUnsorted> m;
  EXPECT_TRUE(m.insert(7, 70));
  EXPECT_FALSE(m.insert(7, 71)) << "duplicate insert must fail";
  EXPECT_EQ(m.lookup(7).value(), 70u);
  EXPECT_EQ(m.size_approx(), 1u);
  EXPECT_TRUE(m.remove(7));
  EXPECT_FALSE(m.remove(7));
  EXPECT_FALSE(m.lookup(7).has_value());
  EXPECT_EQ(m.size_approx(), 0u);
}

TEST(SkipVectorBasics, UpdateInPlace) {
  Seq<Layout::kSorted, Layout::kUnsorted> m;
  EXPECT_FALSE(m.update(5, 1)) << "update of absent key must fail";
  ASSERT_TRUE(m.insert(5, 1));
  EXPECT_TRUE(m.update(5, 2));
  EXPECT_EQ(m.lookup(5).value(), 2u);
}

TEST(SkipVectorBasics, FullKeyDomainUsable) {
  // No sentinel keys are reserved: min and max key values are storable.
  Seq<Layout::kSorted, Layout::kUnsorted> m;
  const std::uint64_t lo = 0;
  const std::uint64_t hi = ~std::uint64_t{0};
  EXPECT_TRUE(m.insert(lo, 1));
  EXPECT_TRUE(m.insert(hi, 2));
  EXPECT_EQ(m.lookup(lo).value(), 1u);
  EXPECT_EQ(m.lookup(hi).value(), 2u);
  EXPECT_TRUE(m.remove(lo));
  EXPECT_TRUE(m.remove(hi));
}

TEST(SkipVectorBasics, OrderedIteration) {
  Seq<Layout::kSorted, Layout::kUnsorted> m;
  std::vector<std::uint64_t> keys = {5, 1, 9, 3, 7, 2, 8, 0, 6, 4};
  for (auto k : keys) ASSERT_TRUE(m.insert(k, k * 10));
  std::vector<std::uint64_t> seen;
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    EXPECT_EQ(v, k * 10);
    seen.push_back(k);
  });
  ASSERT_EQ(seen.size(), 10u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(SkipVectorBasics, SplitsCreateValidStructure) {
  // Insert enough ascending keys through a tiny chunk to force many splits.
  Config c;
  c.layer_count = 4;
  c.target_data_vector_size = 4;
  c.target_index_vector_size = 4;
  Seq<Layout::kSorted, Layout::kUnsorted> m(c);
  for (std::uint64_t k = 0; k < 500; ++k) ASSERT_TRUE(m.insert(k, k));
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
  for (std::uint64_t k = 0; k < 500; ++k) {
    ASSERT_EQ(m.lookup(k).value(), k) << k;
  }
  auto st = m.stats();
  EXPECT_GT(st.layers[0].nodes, 500u / c.data_capacity());
  EXPECT_GT(st.layers[1].elements, 0u) << "no keys promoted to index layers";
}

TEST(SkipVectorBasics, DescendingInsertionsAndRemovals) {
  Config c;
  c.layer_count = 4;
  c.target_data_vector_size = 4;
  c.target_index_vector_size = 4;
  Seq<Layout::kSorted, Layout::kUnsorted> m(c);
  for (std::uint64_t k = 300; k-- > 0;) ASSERT_TRUE(m.insert(k, k + 1));
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
  for (std::uint64_t k = 0; k < 300; k += 2) ASSERT_TRUE(m.remove(k));
  ASSERT_TRUE(m.validate(&err)) << err;
  for (std::uint64_t k = 0; k < 300; ++k) {
    EXPECT_EQ(m.lookup(k).has_value(), k % 2 == 1) << k;
  }
}

TEST(SkipVectorBasics, RemoveEverythingLeavesCleanSkeleton) {
  Config c;
  c.layer_count = 5;
  c.target_data_vector_size = 2;
  c.target_index_vector_size = 2;
  Seq<Layout::kSorted, Layout::kUnsorted> m(c);
  for (std::uint64_t k = 0; k < 200; ++k) ASSERT_TRUE(m.insert(k, k));
  for (std::uint64_t k = 0; k < 200; ++k) ASSERT_TRUE(m.remove(k)) << k;
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
  EXPECT_EQ(m.size_approx(), 0u);
  std::size_t n = 0;
  m.for_each([&](std::uint64_t, std::uint64_t) { ++n; });
  EXPECT_EQ(n, 0u);
}

struct GridParam {
  std::uint32_t t_index;
  std::uint32_t t_data;
  double merge_factor;
  std::uint32_t layers;
};

std::string GridName(const testing::TestParamInfo<GridParam>& info) {
  const auto& p = info.param;
  return "TI" + std::to_string(p.t_index) + "_TD" + std::to_string(p.t_data) +
         "_MF" + std::to_string(static_cast<int>(p.merge_factor * 100)) +
         "_L" + std::to_string(p.layers);
}

class SkipVectorGridTest : public testing::TestWithParam<GridParam> {
 protected:
  Config MakeConfig() const {
    Config c;
    c.target_index_vector_size = GetParam().t_index;
    c.target_data_vector_size = GetParam().t_data;
    c.merge_threshold_factor = GetParam().merge_factor;
    c.layer_count = GetParam().layers;
    return c;
  }

  // Random op stream vs oracle; checks result values, final contents, and
  // structural invariants along the way.
  template <Layout I, Layout D>
  void RunModelCheck(std::uint64_t ops, std::uint64_t key_range,
                     std::uint64_t seed) {
    Seq<I, D> m(MakeConfig());
    std::map<std::uint64_t, std::uint64_t> oracle;
    Xoshiro256 rng(seed);
    for (std::uint64_t i = 0; i < ops; ++i) {
      const std::uint64_t k = rng.next_below(key_range);
      switch (rng.next_below(4)) {
        case 0: {  // insert
          const std::uint64_t v = rng.next();
          const bool expect = oracle.emplace(k, v).second;
          ASSERT_EQ(m.insert(k, v), expect) << "insert " << k << " @op " << i;
          break;
        }
        case 1: {  // remove
          const bool expect = oracle.erase(k) > 0;
          ASSERT_EQ(m.remove(k), expect) << "remove " << k << " @op " << i;
          break;
        }
        case 2: {  // update
          auto it = oracle.find(k);
          const std::uint64_t v = rng.next();
          const bool expect = it != oracle.end();
          if (expect) it->second = v;
          ASSERT_EQ(m.update(k, v), expect) << "update " << k << " @op " << i;
          break;
        }
        default: {  // lookup
          auto it = oracle.find(k);
          auto got = m.lookup(k);
          ASSERT_EQ(got.has_value(), it != oracle.end())
              << "lookup " << k << " @op " << i;
          if (got) {
            ASSERT_EQ(*got, it->second) << "lookup value " << k;
          }
          break;
        }
      }
      if (i % 4096 == 4095) {
        std::string err;
        ASSERT_TRUE(m.validate(&err)) << err << " @op " << i;
      }
    }
    // Final reconciliation: identical contents in identical order.
    std::string err;
    ASSERT_TRUE(m.validate(&err)) << err;
    ASSERT_EQ(m.size_approx(), oracle.size());
    auto it = oracle.begin();
    std::uint64_t mismatches = 0;
    m.for_each([&](std::uint64_t k, std::uint64_t v) {
      if (it == oracle.end() || it->first != k || it->second != v) {
        ++mismatches;
      } else {
        ++it;
      }
    });
    ASSERT_EQ(mismatches, 0u);
    ASSERT_TRUE(it == oracle.end());
  }
};

TEST_P(SkipVectorGridTest, ModelCheckSortedIndexUnsortedData) {
  RunModelCheck<Layout::kSorted, Layout::kUnsorted>(20000, 512, 42);
}

TEST_P(SkipVectorGridTest, ModelCheckSortedSorted) {
  RunModelCheck<Layout::kSorted, Layout::kSorted>(12000, 512, 43);
}

TEST_P(SkipVectorGridTest, ModelCheckUnsortedUnsorted) {
  RunModelCheck<Layout::kUnsorted, Layout::kUnsorted>(12000, 512, 44);
}

TEST_P(SkipVectorGridTest, ModelCheckUnsortedIndexSortedData) {
  RunModelCheck<Layout::kUnsorted, Layout::kSorted>(12000, 512, 45);
}

TEST_P(SkipVectorGridTest, ModelCheckWideKeyRange) {
  RunModelCheck<Layout::kSorted, Layout::kUnsorted>(8000, 1u << 30, 46);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, SkipVectorGridTest,
    testing::Values(GridParam{1, 1, 1.67, 8},    // SL shape
                    GridParam{1, 32, 1.67, 4},   // USL shape
                    GridParam{2, 2, 1.0, 6},     // tiny chunks, eager merge
                    GridParam{4, 4, 1.67, 4},
                    GridParam{8, 32, 0.0, 4},    // merging disabled
                    GridParam{32, 32, 1.67, 3},  // paper default-ish
                    GridParam{32, 32, 2.0, 2},   // few layers
                    GridParam{64, 16, 1.5, 3},
                    GridParam{16, 64, 1.67, 3},
                    GridParam{128, 128, 1.67, 2},
                    GridParam{3, 7, 1.2, 5},     // non-power-of-two chunks
                    GridParam{7, 3, 1.8, 5},
                    GridParam{1, 2, 1.0, 10},    // near-degenerate, tall
                    GridParam{256, 1, 1.67, 6},  // wide index, list data
                    GridParam{1, 256, 1.67, 6},  // list index, wide data
                    GridParam{32, 32, 0.5, 4}),  // shy merging
    GridName);

}  // namespace
}  // namespace sv::core
