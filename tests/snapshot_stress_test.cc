// Snapshot-vs-writer and batch-atomicity stress, executed identically
// across every reclamation policy (hazard pointers, epochs, leak) crossed
// with both node allocators (malloc passthrough, slab pool).
//
// The properties under test (docs/SNAPSHOTS.md):
//   1. Wait-freedom: a versioned snapshot scan completes with ZERO
//      scan-phase restarts no matter how hard writers churn the scanned
//      range (kSnapshotScanRestarts stays 0; only the index-layer descent
//      may retry, and only against structural churn).
//   2. Stability: every mapping a pinned view returns is exactly the state
//      at its commit version -- writers that overwrite, erase, split or
//      merge after the pin are invisible.
//   3. Batch atomicity: apply_batch flips a batch-wide invariant in one
//      step; no snapshot, at any version, observes a mixed state.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/rng.h"
#include "core/skip_vector.h"
#include "core/skip_vector_epoch.h"
#include "stats/stats.h"

#if defined(__SANITIZE_ADDRESS__)
#define SV_TEST_ASAN 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SV_TEST_ASAN 1
#endif
#endif
#if defined(SV_TEST_ASAN)
#include <sanitizer/lsan_interface.h>
#endif

namespace sv::core {
namespace {

class ThreadLeakGuard {
 public:
  explicit ThreadLeakGuard(bool active) : active_(active) {
#if defined(SV_TEST_ASAN)
    if (active_) __lsan_disable();
#endif
  }
  ~ThreadLeakGuard() {
#if defined(SV_TEST_ASAN)
    if (active_) __lsan_enable();
#endif
  }

 private:
  [[maybe_unused]] bool active_;
};

template <class R, class A = alloc::MallocNodeAllocator>
struct Policy {
  using Reclaimer = R;
  using Alloc = A;
};

using Policies =
    testing::Types<Policy<reclaim::HazardReclaimer>,
                   Policy<reclaim::EpochReclaimer>,
                   Policy<reclaim::LeakReclaimer>,
                   Policy<reclaim::HazardReclaimer, alloc::PoolNodeAllocator>,
                   Policy<reclaim::EpochReclaimer, alloc::PoolNodeAllocator>,
                   Policy<reclaim::LeakReclaimer, alloc::PoolNodeAllocator>>;

template <class P>
class SnapshotStressTest : public testing::Test {
 protected:
  using Map =
      SkipVectorMap<std::uint64_t, std::uint64_t, typename P::Reclaimer,
                    typename P::Alloc>;

  static constexpr bool kLeaksByDesign =
      std::is_same_v<typename P::Reclaimer, reclaim::LeakReclaimer> &&
      !P::Alloc::kPooled;

  void SetUp() override {
#if defined(SV_TEST_ASAN)
    if (kLeaksByDesign) __lsan_disable();
#endif
  }
  void TearDown() override {
#if defined(SV_TEST_ASAN)
    if (kLeaksByDesign) __lsan_enable();
#endif
  }

  // Small chunks: maximum structural churn (splits/merges) per op.
  static Config Cfg() {
    Config c;
    c.layer_count = 5;
    c.target_data_vector_size = 4;
    c.target_index_vector_size = 4;
    return c;
  }
};

TYPED_TEST_SUITE(SnapshotStressTest, Policies);

// Writers churn [0, kRange) with the full mutation surface while snapshot
// readers continuously pin views and scan. Every scan is checked for
// internal consistency (values stamped with their key) and the map's
// counters for the wait-freedom invariant.
TYPED_TEST(SnapshotStressTest, ScansNeverRestartUnderWriteStorm) {
  typename TestFixture::Map m(TestFixture::Cfg());
  constexpr std::uint64_t kRange = 512;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> scans{0};

  for (std::uint64_t k = 0; k < kRange; k += 2) {
    ASSERT_TRUE(m.insert(k, k << 8));
  }

  std::vector<std::thread> threads;
  // 3 writers: inserts, removes, updates, batches -- heavy split/merge.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      ThreadLeakGuard guard(TestFixture::kLeaksByDesign);
      Xoshiro256 rng(100 + t);
      using Op = typename TestFixture::Map::BatchOp;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = rng.next_below(kRange);
        switch (rng.next_below(6)) {
          case 0:
          case 1:
            m.insert(k, k << 8);
            break;
          case 2:
            m.remove(k);
            break;
          case 3:
            m.update(k, k << 8);
            break;
          case 4: {
            std::vector<Op> ops;
            for (int b = 0; b < 4; ++b) {
              const std::uint64_t bk = rng.next_below(kRange);
              if (rng.next_below(2) == 0) {
                ops.push_back(Op::put(bk, bk << 8));
              } else {
                ops.push_back(Op::remove(bk));
              }
            }
            m.apply_batch(ops);
            break;
          }
          default:
            m.range_transform(k, k + 8, [](std::uint64_t tk, std::uint64_t) {
              return tk << 8;
            });
            break;
        }
      }
    });
  }
  // 2 snapshot readers: values must be self-consistent (stamped by key).
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      ThreadLeakGuard guard(TestFixture::kLeaksByDesign);
      Xoshiro256 rng(200 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t lo = rng.next_below(kRange);
        const std::uint64_t hi = lo + rng.next_below(64);
        auto view = m.snapshot_at();
        std::uint64_t prev = 0;
        bool first = true;
        m.range_for_each_at(view, lo, hi,
                            [&](std::uint64_t k, std::uint64_t v) {
                              if (v != k << 8) errors.fetch_add(1);
                              if (k < lo || k > hi) errors.fetch_add(1);
                              if (!first && k <= prev) errors.fetch_add(1);
                              prev = k;
                              first = false;
                            });
        scans.fetch_add(1);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(3));
  stop.store(true);
  for (auto& th : threads) th.join();

  EXPECT_EQ(errors.load(), 0u);
  EXPECT_GT(scans.load(), 0u);
  const stats::Snapshot s = m.stats_registry().snapshot();
  if constexpr (stats::kEnabled) {
    // The acceptance invariant: the versioned data-layer walk NEVER
    // restarts, no matter the write mix. (Per-chunk re-reads and descent
    // retries are bounded and expected; full scan restarts are not.)
    EXPECT_EQ(s[stats::Counter::kSnapshotScanRestarts], 0u);
    EXPECT_GT(s[stats::Counter::kSnapshotScans], 0u);
    EXPECT_GT(s[stats::Counter::kVersionRecords], 0u);
  }
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
}

// Batch atomicity: the map always holds a complete "generation" -- every
// key in [0, kKeys) mapped to the same generation stamp. Writers advance
// the generation with one apply_batch; snapshot readers at ANY version must
// see exactly one generation across the whole range. A torn batch (some
// keys old-gen, some new) is a violation regardless of version.
TYPED_TEST(SnapshotStressTest, BatchesAreAtomicUnderSnapshots) {
  typename TestFixture::Map m(TestFixture::Cfg());
  constexpr std::uint64_t kKeys = 96;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> torn{0};

  using Op = typename TestFixture::Map::BatchOp;
  {
    std::vector<Op> init;
    for (std::uint64_t k = 0; k < kKeys; ++k) init.push_back(Op::put(k, 0));
    ASSERT_EQ(m.apply_batch(init), kKeys);
  }

  std::vector<std::thread> threads;
  // One batch writer advancing the generation (single writer: generations
  // are strictly ordered, so any mixed scan is unambiguously a torn batch).
  threads.emplace_back([&] {
    ThreadLeakGuard guard(TestFixture::kLeaksByDesign);
    for (std::uint64_t gen = 1; !stop.load(std::memory_order_relaxed);
         ++gen) {
      std::vector<Op> ops;
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        ops.push_back(Op::put(k, gen));
      }
      m.apply_batch(ops);
    }
  });
  // Noise writers OUTSIDE the generation range: force splits/merges of the
  // chunks holding generation keys without touching their values.
  threads.emplace_back([&] {
    ThreadLeakGuard guard(TestFixture::kLeaksByDesign);
    Xoshiro256 rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t k = kKeys + rng.next_below(256);
      if (rng.next_below(2) == 0) {
        m.insert(k, k);
      } else {
        m.remove(k);
      }
    }
  });
  // Snapshot readers: a scan of [0, kKeys) must return kKeys mappings all
  // carrying one single generation value.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      ThreadLeakGuard guard(TestFixture::kLeaksByDesign);
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = m.snapshot(0, kKeys - 1);
        if (snap.size() != kKeys) {
          errors.fetch_add(1);
          continue;
        }
        const std::uint64_t gen = snap.front().second;
        for (const auto& [k, v] : snap) {
          if (v != gen) {
            torn.fetch_add(1);
            break;
          }
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(3));
  stop.store(true);
  for (auto& th : threads) th.join();

  EXPECT_EQ(errors.load(), 0u) << "snapshot returned an incomplete key set";
  EXPECT_EQ(torn.load(), 0u) << "observed a partially applied batch";
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
}

// Pinned views stay stable across arbitrarily much later churn, and many
// concurrently pinned views each resolve their own version.
TYPED_TEST(SnapshotStressTest, PinnedViewsSurviveChurn) {
  typename TestFixture::Map m(TestFixture::Cfg());
  ThreadLeakGuard guard(TestFixture::kLeaksByDesign);
  constexpr std::uint64_t kRange = 256;
  for (std::uint64_t k = 0; k < kRange; ++k) ASSERT_TRUE(m.insert(k, 1));

  auto v1 = m.snapshot_at();
  ASSERT_TRUE(v1.versioned());
  // Concurrent churn between the pins: removes, re-inserts, overwrites.
  {
    std::vector<std::thread> churn;
    for (int t = 0; t < 3; ++t) {
      churn.emplace_back([&, t] {
        ThreadLeakGuard tguard(TestFixture::kLeaksByDesign);
        Xoshiro256 rng(300 + t);
        for (int i = 0; i < 20'000; ++i) {
          const std::uint64_t k = rng.next_below(kRange);
          switch (rng.next_below(3)) {
            case 0: m.remove(k); break;
            case 1: m.insert(k, 2); break;
            default: m.update(k, 2); break;
          }
        }
      });
    }
    for (auto& th : churn) th.join();
  }
  auto v2 = m.snapshot_at();
  ASSERT_TRUE(v2.versioned());
  // Settle the live map to a third, known state.
  for (std::uint64_t k = 0; k < kRange; ++k) {
    m.insert(k, 3);
    m.update(k, 3);
  }

  // v1 must read exactly the initial state: all kRange keys at value 1.
  std::uint64_t n1 = 0, bad1 = 0;
  m.range_for_each_at(v1, 0, kRange - 1,
                      [&](std::uint64_t, std::uint64_t v) {
                        ++n1;
                        bad1 += v != 1 ? 1 : 0;
                      });
  EXPECT_EQ(n1, kRange);
  EXPECT_EQ(bad1, 0u);
  // v2 sees only values from {1, 2} (churn values), never 3.
  std::uint64_t bad2 = 0;
  m.range_for_each_at(v2, 0, kRange - 1,
                      [&](std::uint64_t, std::uint64_t v) {
                        bad2 += (v != 1 && v != 2) ? 1 : 0;
                      });
  EXPECT_EQ(bad2, 0u);
  // The live map is at state 3 everywhere.
  std::uint64_t bad3 = 0;
  m.range_for_each(0, kRange - 1, [&](std::uint64_t, std::uint64_t v) {
    bad3 += v != 3 ? 1 : 0;
  });
  EXPECT_EQ(bad3, 0u);
  std::string err;
  ASSERT_TRUE(m.validate(&err)) << err;
}

// Registry exhaustion degrades gracefully: view kSlots+1 falls back to the
// locked path (unversioned) and still returns a consistent result.
TYPED_TEST(SnapshotStressTest, RegistryFullFallsBackUnversioned) {
  typename TestFixture::Map m(TestFixture::Cfg());
  ThreadLeakGuard guard(TestFixture::kLeaksByDesign);
  for (std::uint64_t k = 0; k < 32; ++k) ASSERT_TRUE(m.insert(k, k));

  using View = typename TestFixture::Map::SnapshotView;
  std::vector<View> held;
  for (std::size_t i = 0; i < mvcc::SnapshotRegistry::kSlots; ++i) {
    held.push_back(m.snapshot_at());
    ASSERT_TRUE(held.back().versioned()) << i;
  }
  auto extra = m.snapshot_at();
  EXPECT_FALSE(extra.versioned());
  std::size_t n = m.range_for_each_at(extra, 0, 100,
                                      [](std::uint64_t, std::uint64_t) {});
  EXPECT_EQ(n, 32u);  // locked fallback still works
  held.clear();       // releases every slot
  auto again = m.snapshot_at();
  EXPECT_TRUE(again.versioned());
}

}  // namespace
}  // namespace sv::core
