// Tests for sv::stats: the counter registry/scope machinery itself, the
// zero-size disabled stubs, and the end-to-end counter flow through the
// skip vector, the sharded wrapper, and the FSL baseline.
#include "stats/stats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <type_traits>
#include <vector>

#include "baselines/fraser_skiplist.h"
#include "core/sharded.h"
#include "core/skip_vector.h"

namespace {

using sv::stats::Counter;
using sv::stats::Snapshot;

// The disabled implementation must impose no size or state: instrumented
// classes embed a Registry unconditionally, and SV_STATS=OFF is only free
// if that member is an empty base-class-sized stub.
static_assert(std::is_empty_v<sv::stats::disabled::Registry>);
static_assert(std::is_empty_v<sv::stats::disabled::Scope> ||
              sizeof(sv::stats::disabled::Scope) == 1);
static_assert(sizeof(sv::stats::disabled::Registry) == 1);

// Counter catalog and name table must stay index-aligned.
static_assert(sv::stats::kCounterNames.size() == sv::stats::kCounterCount);
static_assert(sv::stats::counter_name(Counter::kLookupHit) == "lookup_hit");
static_assert(sv::stats::counter_name(Counter::kEpochAdvances) ==
              "epoch_advances");

TEST(StatsSnapshot, Arithmetic) {
  Snapshot a, b;
  a.values[0] = 10;
  a.values[1] = 5;
  b.values[0] = 3;
  b.values[1] = 7;  // larger than a's: subtraction clamps at zero
  Snapshot d = a - b;
  EXPECT_EQ(d.values[0], 7u);
  EXPECT_EQ(d.values[1], 0u);
  a += b;
  EXPECT_EQ(a.values[0], 13u);
  EXPECT_EQ(a.values[1], 12u);
  EXPECT_EQ(d.total(), 7u);

  std::size_t seen = 0;
  d.for_each([&](std::string_view name, std::uint64_t) {
    EXPECT_FALSE(name.empty());
    ++seen;
  });
  EXPECT_EQ(seen, sv::stats::kCounterCount);
}

TEST(Stats, CountWithoutScopeIsSafeNoop) {
  // No Scope active: count() must not crash and must not be attributed
  // anywhere.
  sv::stats::count(Counter::kLookupHit, 3);
  sv::stats::enabled::Registry r;
  EXPECT_EQ(r.snapshot().total(), 0u);
}

TEST(Stats, ScopeAttributesAndNests) {
  sv::stats::enabled::Registry outer, inner;
  {
    sv::stats::enabled::Scope so(outer);
    sv::stats::enabled::count(Counter::kLookupHit);
    {
      sv::stats::enabled::Scope si(inner);
      sv::stats::enabled::count(Counter::kLookupMiss, 2);
    }
    // Inner scope destroyed: attribution reverts to the outer registry.
    sv::stats::enabled::count(Counter::kInsertNew);
  }
  EXPECT_EQ(outer.snapshot()[Counter::kLookupHit], 1u);
  EXPECT_EQ(outer.snapshot()[Counter::kInsertNew], 1u);
  EXPECT_EQ(outer.snapshot()[Counter::kLookupMiss], 0u);
  EXPECT_EQ(inner.snapshot()[Counter::kLookupMiss], 2u);
  EXPECT_EQ(inner.snapshot().total(), 2u);
}

TEST(Stats, AggregatesAcrossExitedAndDetachedThreads) {
  sv::stats::enabled::Registry r;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 1000;

  // Half the threads are joined, half detached; all must remain visible in
  // the final snapshot because blocks are retained until the registry dies.
  std::atomic<int> done{0};
  for (int t = 0; t < kThreads; ++t) {
    std::thread w([&] {
      sv::stats::enabled::Scope scope(r);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        sv::stats::enabled::count(Counter::kInsertNew);
      }
      done.fetch_add(1, std::memory_order_release);
    });
    if (t % 2 == 0) {
      w.join();
    } else {
      w.detach();
    }
  }
  // Wait for the detached threads' release-stores, bounded so a wedged
  // runner fails this test instead of tripping the ctest suite timeout.
  // Invariant under test: a block's counts are published by the Scope
  // destructor sequenced before the `done` release-store, and blocks are
  // retained by the registry until IT dies -- so once the acquire-load
  // below observes kThreads, every increment is visible to snapshot().
  // The detached threads themselves may still be running (between the
  // store and thread exit); that is fine, they no longer touch `r`.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (done.load(std::memory_order_acquire) < kThreads) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "detached stats threads did not finish within 60s; "
        << done.load(std::memory_order_acquire) << "/" << kThreads
        << " completed";
    std::this_thread::yield();
  }
  EXPECT_EQ(r.snapshot()[Counter::kInsertNew], kThreads * kPerThread);
  EXPECT_GE(r.attached_blocks(), static_cast<std::size_t>(kThreads));
}

TEST(Stats, SnapshotDuringConcurrentIncrementIsMonotonic) {
  sv::stats::enabled::Registry r;
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerThread = 200000;
  std::atomic<bool> start{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      sv::stats::enabled::Scope scope(r);
      while (!start.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        sv::stats::enabled::count(Counter::kLookupHit);
      }
    });
  }
  start.store(true, std::memory_order_release);
  // Concurrent snapshots: each must observe a monotonically non-decreasing
  // total (counters are monotonic; TSan checks the data-race freedom).
  std::uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t now = r.snapshot()[Counter::kLookupHit];
    EXPECT_GE(now, prev);
    EXPECT_LE(now, kWriters * kPerThread);
    prev = now;
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(r.snapshot()[Counter::kLookupHit], kWriters * kPerThread);
}

TEST(Stats, SkipVectorCounterFlow) {
  if (!sv::stats::kEnabled) GTEST_SKIP() << "built with SV_STATS=OFF";
  sv::core::SkipVector<std::uint64_t, std::uint64_t> m(
      sv::core::Config::for_elements(1024));
  for (std::uint64_t k = 0; k < 512; ++k) m.insert(k * 2, k);
  EXPECT_TRUE(m.lookup(0).has_value());
  EXPECT_FALSE(m.lookup(1).has_value());
  EXPECT_TRUE(m.insert(1, 1));
  EXPECT_FALSE(m.insert(1, 1));
  EXPECT_TRUE(m.update(1, 2));
  EXPECT_FALSE(m.update(99999, 2));
  EXPECT_TRUE(m.remove(1));
  EXPECT_FALSE(m.remove(1));
  (void)m.floor(100);
  std::size_t visited = m.range_for_each(
      0, 100, [](std::uint64_t, std::uint64_t) {});

  const Snapshot s = m.stats_registry().snapshot();
  EXPECT_EQ(s[Counter::kLookupHit], 1u);
  EXPECT_EQ(s[Counter::kLookupMiss], 1u);
  EXPECT_EQ(s[Counter::kInsertNew], 513u);  // 512 prefill + 1
  EXPECT_EQ(s[Counter::kInsertDup], 1u);
  EXPECT_EQ(s[Counter::kUpdateHit], 1u);
  EXPECT_EQ(s[Counter::kUpdateMiss], 1u);
  EXPECT_EQ(s[Counter::kRemoveHit], 1u);
  EXPECT_EQ(s[Counter::kRemoveMiss], 1u);
  EXPECT_EQ(s[Counter::kOrderedNavOps], 1u);
  EXPECT_EQ(s[Counter::kRangeOps], 1u);
  EXPECT_EQ(s[Counter::kRangeKeysVisited], visited);
  // 512 sequential inserts into chunks of the default target size must have
  // split at least once.
  EXPECT_GT(s[Counter::kCapacitySplits] + s[Counter::kTowerSplits], 0u);
}

TEST(Stats, ShardedSnapshotAggregatesShards) {
  if (!sv::stats::kEnabled) GTEST_SKIP() << "built with SV_STATS=OFF";
  sv::core::ShardedSkipVector<std::uint64_t, std::uint64_t> m(
      1 << 16, 4, sv::core::Config::for_elements(1 << 10));
  for (std::uint64_t k = 0; k < (1 << 12); ++k) m.insert(k * 16 + 7, k);
  const Snapshot s = m.stats_snapshot();
  // Inserts land in different shards; the aggregate must see all of them.
  EXPECT_EQ(s[Counter::kInsertNew], 1u << 12);
}

TEST(Stats, FraserBaselineCounterFlow) {
  if (!sv::stats::kEnabled) GTEST_SKIP() << "built with SV_STATS=OFF";
  sv::baselines::FraserSkipList<std::uint64_t, std::uint64_t> m;
  EXPECT_TRUE(m.insert(1, 1));
  EXPECT_FALSE(m.insert(1, 1));
  EXPECT_TRUE(m.lookup(1).has_value());
  EXPECT_FALSE(m.lookup(2).has_value());
  EXPECT_TRUE(m.remove(1));
  EXPECT_FALSE(m.remove(1));
  const Snapshot s = m.stats_registry().snapshot();
  EXPECT_EQ(s[Counter::kInsertNew], 1u);
  EXPECT_EQ(s[Counter::kInsertDup], 1u);
  EXPECT_EQ(s[Counter::kLookupHit], 1u);
  EXPECT_EQ(s[Counter::kLookupMiss], 1u);
  EXPECT_EQ(s[Counter::kRemoveHit], 1u);
  EXPECT_EQ(s[Counter::kRemoveMiss], 1u);
}

TEST(Stats, PerPhaseDeltaViaSubtraction) {
  if (!sv::stats::kEnabled) GTEST_SKIP() << "built with SV_STATS=OFF";
  sv::core::SkipVector<std::uint64_t, std::uint64_t> m(
      sv::core::Config::for_elements(256));
  for (std::uint64_t k = 0; k < 100; ++k) m.insert(k, k);
  const Snapshot prefill = m.stats_registry().snapshot();
  for (std::uint64_t k = 0; k < 50; ++k) (void)m.lookup(k);
  const Snapshot delta = m.stats_registry().snapshot() - prefill;
  EXPECT_EQ(delta[Counter::kLookupHit], 50u);
  EXPECT_EQ(delta[Counter::kInsertNew], 0u);
}

}  // namespace
