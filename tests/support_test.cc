// Tests for supporting components: the coarse-lock baseline, the benchmark
// driver utilities (options parsing, prefill, mix runner), and the
// statistical generators (xoshiro, Zipf).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "baselines/coarse_lock_map.h"
#include "benchutil/driver.h"
#include "benchutil/options.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "sync/backoff.h"

namespace sv {
namespace {

// ---- CoarseLockMap ------------------------------------------------------------

TEST(CoarseLockMap, SequentialOracle) {
  baselines::CoarseLockMap<std::uint64_t, std::uint64_t> m;
  std::map<std::uint64_t, std::uint64_t> oracle;
  Xoshiro256 rng(5);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = rng.next_below(200);
    switch (rng.next_below(4)) {
      case 0: {
        const auto v = rng.next();
        ASSERT_EQ(m.insert(k, v), oracle.emplace(k, v).second);
        break;
      }
      case 1:
        ASSERT_EQ(m.remove(k), oracle.erase(k) > 0);
        break;
      case 2: {
        const auto v = rng.next();
        auto it = oracle.find(k);
        ASSERT_EQ(m.update(k, v), it != oracle.end());
        if (it != oracle.end()) it->second = v;
        break;
      }
      default: {
        auto got = m.lookup(k);
        auto it = oracle.find(k);
        ASSERT_EQ(got.has_value(), it != oracle.end());
        if (got) {
          ASSERT_EQ(*got, it->second);
        }
      }
    }
  }
  ASSERT_EQ(m.size(), oracle.size());
}

TEST(CoarseLockMap, ConcurrentSmoke) {
  baselines::CoarseLockMap<std::uint64_t, std::uint64_t> m;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> bad{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t);
      for (int i = 0; i < 20000; ++i) {
        const std::uint64_t k = rng.next_below(128);
        switch (rng.next_below(3)) {
          case 0:
            m.insert(k, (k << 32) | 1);
            break;
          case 1:
            m.remove(k);
            break;
          default: {
            auto v = m.lookup(k);
            if (v && (*v >> 32) != k) bad.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0u);
}

TEST(CoarseLockMap, RangeOps) {
  baselines::CoarseLockMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t k = 0; k < 100; ++k) m.insert(k, 0);
  EXPECT_EQ(m.range_transform(10, 19, [](auto, auto v) { return v + 5; }),
            10u);
  std::uint64_t sum = 0;
  EXPECT_EQ(m.range_for_each(0, 99, [&](auto, auto v) { sum += v; }), 100u);
  EXPECT_EQ(sum, 50u);
}

// ---- Options parsing -------------------------------------------------------------

TEST(Options, ParsesFormsAndDefaults) {
  const char* argv[] = {"prog",          "--key-range=2^20", "--seconds=1.5",
                        "--name=sv",     "--flagged",        "--sizes=1,2,4K",
                        "--threads=8"};
  benchutil::Options opt(7, const_cast<char**>(argv));
  EXPECT_EQ(opt.u64("key-range", 0), 1u << 20);
  EXPECT_EQ(opt.u64("threads", 0), 8u);
  EXPECT_EQ(opt.u64("absent", 42), 42u);
  EXPECT_DOUBLE_EQ(opt.f64("seconds", 0), 1.5);
  EXPECT_EQ(opt.str("name", ""), "sv");
  EXPECT_TRUE(opt.flag("flagged"));
  EXPECT_FALSE(opt.flag("not-flagged"));
  const auto sizes = opt.u64_list("sizes", {});
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 2u);
  EXPECT_EQ(sizes[2], 4096u);
  EXPECT_FALSE(opt.help_requested());
}

TEST(Options, SuffixesAndHelp) {
  EXPECT_EQ(benchutil::Options::parse_u64("3K"), 3072u);
  EXPECT_EQ(benchutil::Options::parse_u64("2M"), 2u << 20);
  EXPECT_EQ(benchutil::Options::parse_u64("1G"), 1u << 30);
  EXPECT_EQ(benchutil::Options::parse_u64("2^31"), 1ull << 31);
  EXPECT_THROW(benchutil::Options::parse_u64("12Q"), std::invalid_argument);
  const char* argv[] = {"prog", "--help"};
  benchutil::Options opt(2, const_cast<char**>(argv));
  EXPECT_TRUE(opt.help_requested());
}

// ---- RNG / Zipf ----------------------------------------------------------------------

TEST(Rng, UniformBelowBoundAndDeterministic) {
  Xoshiro256 a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const auto x = a.next();
    EXPECT_EQ(x, b.next());
    if (x != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
  Xoshiro256 r(7);
  std::uint64_t buckets[10] = {};
  for (int i = 0; i < 100000; ++i) {
    const auto v = r.next_below(10);
    ASSERT_LT(v, 10u);
    buckets[v]++;
  }
  for (auto b10 : buckets) {
    EXPECT_NEAR(static_cast<double>(b10), 10000.0, 600.0);
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfGenerator z(1000, 0.0, 3);
  std::uint64_t hot = 0;
  for (int i = 0; i < 50000; ++i) {
    if (z.next() < 10) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / 50000.0, 0.01, 0.005);
}

TEST(Zipf, SkewConcentratesMass) {
  ZipfGenerator z(1 << 20, 0.99, 3);
  std::uint64_t hot = 0;
  for (int i = 0; i < 50000; ++i) {
    if (z.next() < 100) ++hot;
  }
  // With theta=0.99 over 1M keys, the top-100 keys draw a large share.
  EXPECT_GT(static_cast<double>(hot) / 50000.0, 0.25);
}

TEST(Zipf, StaysInRange) {
  // theta == 1.0 is the harmonic singularity of Gray's closed form
  // (alpha = 1/(1-theta)); it must sample via the analytic harmonic
  // inverse, not divide by zero.
  for (double theta : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    ZipfGenerator z(64, theta, 9);
    for (int i = 0; i < 10000; ++i) ASSERT_LT(z.next(), 64u) << theta;
  }
}

TEST(Zipf, HarmonicThetaOneSamplesSanely) {
  // Deterministic: same seed, same stream.
  ZipfGenerator a(1000, 1.0, 11), b(1000, 1.0, 11);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());

  // Rank-0 frequency must track the harmonic pmf: P(0) = 1/H_n, about
  // 13.4% for n = 1000.
  ZipfGenerator z(1000, 1.0, 12);
  std::uint64_t zero = 0, hot = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const auto v = z.next();
    ASSERT_LT(v, 1000u);
    if (v == 0) ++zero;
    if (v < 10) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(zero) / kDraws, 0.134, 0.02);
  // Top-10 of 1000 keys draw ~H_10/H_n ~ 39% of the mass.
  EXPECT_NEAR(static_cast<double>(hot) / kDraws, 0.39, 0.04);
}

TEST(Zipf, SkewOrderingAcrossThetas) {
  // Hot-key share must increase with theta: uniform < 0.5 < 0.99 <= 1.0-ish.
  auto hot_share = [](double theta) {
    ZipfGenerator z(1 << 16, theta, 5);
    std::uint64_t hot = 0;
    for (int i = 0; i < 50000; ++i) {
      if (z.next() < 64) ++hot;
    }
    return static_cast<double>(hot) / 50000.0;
  };
  const double s0 = hot_share(0.0);
  const double s05 = hot_share(0.5);
  const double s099 = hot_share(0.99);
  const double s1 = hot_share(1.0);
  EXPECT_LT(s0, s05);
  EXPECT_LT(s05, s099);
  EXPECT_GT(s1, s05);
  EXPECT_GT(s1, 0.25);  // top-64 of 64K keys under harmonic skew
}

// ---- Benchmark driver -----------------------------------------------------------------

TEST(Driver, PrefillReachesHalf) {
  baselines::CoarseLockMap<std::uint64_t, std::uint64_t> m;
  benchutil::prefill_half(m, 1 << 12, 3);
  EXPECT_EQ(m.size(), (1u << 12) / 2);
}

TEST(Driver, MixRunsAndCounts) {
  baselines::CoarseLockMap<std::uint64_t, std::uint64_t> m;
  benchutil::prefill_half(m, 1 << 10, 2);
  auto r = benchutil::run_mix(m, benchutil::MixSpec{80, 10, 10}, 1 << 10,
                              /*threads=*/2, /*seconds=*/0.1);
  EXPECT_GT(r.ops, 0u);
  EXPECT_EQ(r.ops, r.lookups + r.inserts + r.removes);
  EXPECT_GT(r.seconds, 0.05);
  EXPECT_GT(r.mops(), 0.0);
  // Mix ratios approximately honored.
  const double lf = static_cast<double>(r.lookups) / r.ops;
  EXPECT_NEAR(lf, 0.8, 0.05);
}

// ---- Backoff ------------------------------------------------------------------

TEST(Backoff, TruncatesAtNonPowerOfTwoMax) {
  // Regression: the previous doubling overshot a non-power-of-two cap (1 ->
  // 2 -> ... -> 1024 for max_spins = 1000), spinning past the configured
  // bound. The limit must grow monotonically and clamp exactly at max.
  sync::Backoff b(1000);
  std::uint32_t prev = 0;
  for (int i = 0; i < 40; ++i) {
    b.pause();
    EXPECT_LE(b.current_limit(), 1000u);
    EXPECT_GE(b.current_limit(), prev);
    prev = b.current_limit();
  }
  EXPECT_EQ(b.current_limit(), 1000u);  // reaches, never exceeds
}

TEST(Backoff, NoWrapNearUint32Max) {
  // max_spins > 2^31: naive limit << 1 would wrap to 0 and spin forever at
  // limit 0 / restart the ramp. The clamp must go straight to max.
  sync::Backoff b(0xffffffffu);
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t before = b.current_limit();
    // Don't actually spin 4 billion times: stop growing checks once large.
    if (before > (1u << 20)) break;
    b.pause();
    EXPECT_GT(b.current_limit(), before);
  }
}

TEST(Backoff, ZeroMaxIsUsable) {
  sync::Backoff b(0);  // degenerate configuration: clamped to 1 spin
  b.pause();
  b.pause();
  EXPECT_EQ(b.current_limit(), 1u);
  b.reset();
  EXPECT_EQ(b.current_limit(), 1u);
}

}  // namespace
}  // namespace sv
