// Tests for the TPC-C-lite workload (dbx/tpcc.h) over sv::txn: key codec
// round-trips, config validation, deterministic single-threaded runs, and
// the 8-thread contended mix with the conservation + order-sequence
// invariants checked after quiescing -- the acceptance bar for multi-key
// read-modify-write atomicity through the transaction layer.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/skip_vector.h"
#include "dbx/tpcc.h"

namespace sv::dbx::tpcc {
namespace {

using Map = core::SkipVector<std::uint64_t, std::uint64_t>;

TEST(TpccKeys, CodecRoundTrips) {
  const std::uint64_t k = make_key(Table::kCustomerBalance, 3, 7, 41);
  const KeyParts p = split_key(k);
  EXPECT_EQ(p.table, Table::kCustomerBalance);
  EXPECT_EQ(p.warehouse, 3u);
  EXPECT_EQ(p.district, 7u);
  EXPECT_EQ(p.slot, 41u);
  // Distinct tables map the same (w, d, slot) to distinct keys.
  EXPECT_NE(make_key(Table::kStock, 3, 7, 41), k);
  // Order-line slots keep (oid, line) pairs distinct.
  EXPECT_NE(order_line_slot(5, 1), order_line_slot(5, 2));
  EXPECT_NE(order_line_slot(5, 1), order_line_slot(6, 1));
}

TEST(TpccConfigCheck, RejectsOutOfRange) {
  TpccConfig cfg;
  std::string err;
  EXPECT_TRUE(cfg.validate(&err)) << err;
  cfg.warehouses = 0;
  EXPECT_FALSE(cfg.validate(&err));
  cfg = TpccConfig{};
  cfg.districts_per_warehouse = 300;  // exceeds the 8-bit district field
  EXPECT_FALSE(cfg.validate(&err));
  cfg = TpccConfig{};
  cfg.max_order_lines = 65;  // exceeds the engine's stack line buffer
  EXPECT_FALSE(cfg.validate(&err));
  cfg = TpccConfig{};
  cfg.payment_fraction = 1.5;
  EXPECT_FALSE(cfg.validate(&err));
}

TEST(TpccSingleThread, LoadSatisfiesInvariants) {
  TpccConfig cfg;
  cfg.warehouses = 2;
  cfg.items = 128;
  Map m(core::Config::for_elements(1 << 14));
  TpccLite<Map> db(cfg, m);
  db.load();
  std::string err;
  EXPECT_TRUE(db.check_invariants(&err)) << err;
}

TEST(TpccSingleThread, MixedRunKeepsInvariantsNoAborts) {
  TpccConfig cfg;
  cfg.warehouses = 2;
  cfg.districts_per_warehouse = 4;
  cfg.customers_per_district = 32;
  cfg.items = 128;
  Map m(core::Config::for_elements(1 << 14));
  TpccLite<Map> db(cfg, m);
  db.load();

  TpccRandom rnd(cfg, /*seed=*/1);
  TpccStats st;
  for (int i = 0; i < 2000; ++i) db.run_one(rnd, &st);

  EXPECT_EQ(st.commits, 2000u);
  EXPECT_EQ(st.aborts, 0u);  // single thread: NO_WAIT never conflicts
  EXPECT_GT(st.payments, 0u);
  EXPECT_GT(st.new_orders, 0u);
  std::string err;
  EXPECT_TRUE(db.check_invariants(&err)) << err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

TEST(TpccSingleThread, PaymentMovesExactAmounts) {
  TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.districts_per_warehouse = 1;
  cfg.customers_per_district = 4;
  cfg.items = 16;
  Map m(core::Config::for_elements(1 << 10));
  TpccLite<Map> db(cfg, m);
  db.load();

  TpccStats st;
  db.payment(0, 0, 2, /*amount=*/125, &st);
  EXPECT_EQ(st.commits, 1u);
  EXPECT_EQ(m.lookup(make_key(Table::kWarehouseYtd, 0, 0, 0)),
            std::optional<std::uint64_t>(125));
  EXPECT_EQ(m.lookup(make_key(Table::kDistrictYtd, 0, 0, 0)),
            std::optional<std::uint64_t>(125));
  EXPECT_EQ(m.lookup(make_key(Table::kCustomerBalance, 0, 0, 2)),
            std::optional<std::uint64_t>(cfg.initial_balance - 250));
  std::string err;
  EXPECT_TRUE(db.check_invariants(&err)) << err;
}

TEST(TpccSingleThread, NewOrderAdvancesSequenceAndWritesRows) {
  TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.districts_per_warehouse = 1;
  cfg.customers_per_district = 4;
  cfg.items = 16;
  Map m(core::Config::for_elements(1 << 10));
  TpccLite<Map> db(cfg, m);
  db.load();

  const std::uint32_t items[] = {3, 5, 3};  // repeated item: RMW chains
  const std::uint32_t qtys[] = {2, 1, 4};
  TpccStats st;
  db.new_order(0, 0, items, qtys, 3, &st);
  EXPECT_EQ(st.commits, 1u);
  EXPECT_EQ(m.lookup(make_key(Table::kDistrictNextOid, 0, 0, 0)),
            std::optional<std::uint64_t>(cfg.initial_next_oid + 1));
  // Stock for the repeated item decremented by BOTH its quantities.
  EXPECT_EQ(m.lookup(make_key(Table::kStock, 0, 0, 3)),
            std::optional<std::uint64_t>(cfg.initial_stock - 2 - 4));
  EXPECT_EQ(m.lookup(make_key(Table::kStock, 0, 0, 5)),
            std::optional<std::uint64_t>(cfg.initial_stock - 1));
  const auto order = m.lookup(
      make_key(Table::kOrder, 0, 0, cfg.initial_next_oid));
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, 3u);  // line count
  std::string err;
  EXPECT_TRUE(db.check_invariants(&err)) << err;
}

// The acceptance-criteria run: 8 threads on a small, hot key space (every
// district sequence is contended), invariants green after quiescing and a
// non-trivial committed count. Conservation catches torn payments;
// sequence checks catch lost new-order increments.
TEST(TpccConcurrent, EightThreadMixConservesInvariants) {
  TpccConfig cfg;
  cfg.warehouses = 2;
  cfg.districts_per_warehouse = 2;  // 4 hot district sequences
  cfg.customers_per_district = 16;
  cfg.items = 64;
  cfg.zipf_theta = 0.9;
  Map m(core::Config::for_elements(1 << 16));
  TpccLite<Map> db(cfg, m);
  db.load();

  constexpr unsigned kThreads = 8;
  constexpr int kTxnsPerThread = 3000;
  std::vector<TpccStats> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TpccRandom rnd(cfg, /*seed=*/1000 + t);
      for (int i = 0; i < kTxnsPerThread; ++i) {
        db.run_one(rnd, &per_thread[t]);
      }
    });
  }
  for (auto& t : threads) t.join();

  TpccStats total;
  for (const auto& st : per_thread) total += st;
  EXPECT_EQ(total.commits, kThreads * std::uint64_t{kTxnsPerThread});
  EXPECT_GT(total.new_orders, 0u);
  EXPECT_GT(total.payments, 0u);
  std::string err;
  EXPECT_TRUE(db.check_invariants(&err)) << err;
  EXPECT_TRUE(m.validate(&err)) << err;

  const auto snap = m.stats_registry().snapshot();
  EXPECT_EQ(snap[stats::Counter::kTxnCommits],
            kThreads * std::uint64_t{kTxnsPerThread});
}

}  // namespace
}  // namespace sv::dbx::tpcc
