// Tests for the sv::txn transaction layer (txn/txn.h, txn/lock_mgr.h):
// atomic multi-key commits through the shared chunk-lock manager,
// read-your-writes, undo-free aborts, commit-time read validation, the
// towered-remove demote path, the run() retry helper, and the transaction
// counters. Concurrency tests pin the serializability story: lost-update
// freedom for RMW increments and conserved totals for multi-key transfers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/skip_vector.h"
#include "txn/txn.h"

namespace sv::core {
namespace {

using Map = SkipVector<std::uint64_t, std::uint64_t>;
using Txn = txn::Txn<Map>;
using txn::TxnResult;

Config Tiny() {
  Config c;
  c.layer_count = 4;
  c.target_data_vector_size = 4;
  c.target_index_vector_size = 4;
  return c;
}

std::uint64_t counter(const Map& m, stats::Counter c) {
  return m.stats_registry().snapshot()[c];
}

// ---- Single-threaded semantics ---------------------------------------------

TEST(Txn, EmptyTxnCommits) {
  Map m(Config::for_elements(64));
  Txn t(m);
  EXPECT_EQ(t.commit(), TxnResult::kCommitted);
  EXPECT_EQ(counter(m, stats::Counter::kTxnCommits), 1u);
}

TEST(Txn, MultiKeyCommitIsAtomicAndVisible) {
  Map m(Config::for_elements(1024));
  ASSERT_TRUE(m.insert(5, 50));

  Txn t(m);
  t.put(1, 10);
  t.put(9, 90);
  t.remove(5);
  ASSERT_EQ(t.commit(), TxnResult::kCommitted);

  EXPECT_EQ(m.lookup(1), std::optional<std::uint64_t>(10));
  EXPECT_EQ(m.lookup(9), std::optional<std::uint64_t>(90));
  EXPECT_FALSE(m.lookup(5).has_value());
  // applied flags: both puts inserted fresh keys, the remove hit.
  ASSERT_EQ(t.writes().size(), 3u);
  EXPECT_TRUE(t.writes()[0].applied);
  EXPECT_TRUE(t.writes()[1].applied);
  EXPECT_TRUE(t.writes()[2].applied);
  EXPECT_EQ(counter(m, stats::Counter::kTxnCommits), 1u);
  EXPECT_EQ(counter(m, stats::Counter::kTxnAborts), 0u);
}

TEST(Txn, ReadYourWrites) {
  Map m(Config::for_elements(64));
  ASSERT_TRUE(m.insert(1, 100));

  Txn t(m);
  EXPECT_EQ(t.get(1), std::optional<std::uint64_t>(100));  // live read
  t.put(1, 111);
  EXPECT_EQ(t.get(1), std::optional<std::uint64_t>(111));  // buffered write
  t.remove(1);
  EXPECT_FALSE(t.get(1).has_value());  // buffered remove
  t.put(2, 22);
  EXPECT_EQ(t.get(2), std::optional<std::uint64_t>(22));  // never in the map
  ASSERT_EQ(t.commit(), TxnResult::kCommitted);
  EXPECT_FALSE(m.lookup(1).has_value());
  EXPECT_EQ(m.lookup(2), std::optional<std::uint64_t>(22));
}

TEST(Txn, RepeatedReadReturnsFirstObservation) {
  Map m(Config::for_elements(64));
  ASSERT_TRUE(m.insert(7, 70));
  Txn t(m);
  EXPECT_EQ(t.get(7), std::optional<std::uint64_t>(70));
  ASSERT_TRUE(m.update(7, 71));  // external writer between the reads
  // The txn's view stays at the first observation (that is what commit
  // validates), so the commit must now fail validation.
  EXPECT_EQ(t.get(7), std::optional<std::uint64_t>(70));
  EXPECT_EQ(t.commit(), TxnResult::kValidationFail);
}

TEST(Txn, AbortIsUndoFreeAndInvisible) {
  Map m(Config::for_elements(64));
  ASSERT_TRUE(m.insert(3, 30));

  Txn t(m);
  t.put(3, 999);
  t.put(4, 40);
  t.remove(3);
  t.abort();
  EXPECT_EQ(m.lookup(3), std::optional<std::uint64_t>(30));
  EXPECT_FALSE(m.lookup(4).has_value());
  EXPECT_TRUE(t.reads().empty());
  EXPECT_TRUE(t.writes().empty());

  // The handle is reusable as a fresh transaction after abort().
  t.put(4, 44);
  ASSERT_EQ(t.commit(), TxnResult::kCommitted);
  EXPECT_EQ(m.lookup(4), std::optional<std::uint64_t>(44));
}

TEST(Txn, ValidationFailLeavesMapUntouched) {
  Map m(Config::for_elements(64));
  ASSERT_TRUE(m.insert(10, 1));

  Txn t(m);
  ASSERT_EQ(t.get(10), std::optional<std::uint64_t>(1));
  t.put(20, 2);  // write to a DIFFERENT key than the stale read
  ASSERT_TRUE(m.update(10, 5));  // interleaved external writer
  EXPECT_EQ(t.commit(), TxnResult::kValidationFail);
  // The failed commit applied nothing.
  EXPECT_FALSE(m.lookup(20).has_value());
  EXPECT_EQ(m.lookup(10), std::optional<std::uint64_t>(5));
  EXPECT_EQ(counter(m, stats::Counter::kTxnAborts), 1u);
  EXPECT_EQ(counter(m, stats::Counter::kTxnCommits), 0u);
}

TEST(Txn, ValidationCoversPresenceBothWays) {
  Map m(Config::for_elements(64));
  ASSERT_TRUE(m.insert(1, 11));
  {
    // Read-present, then externally removed: validation must fail.
    Txn t(m);
    ASSERT_TRUE(t.get(1).has_value());
    ASSERT_TRUE(m.remove(1));
    EXPECT_EQ(t.commit(), TxnResult::kValidationFail);
  }
  {
    // Read-absent, then externally inserted: validation must fail.
    Txn t(m);
    ASSERT_FALSE(t.get(2).has_value());
    ASSERT_TRUE(m.insert(2, 22));
    EXPECT_EQ(t.commit(), TxnResult::kValidationFail);
  }
  {
    // Unchanged reads validate: read-only txn commits.
    Txn t(m);
    ASSERT_TRUE(t.get(2).has_value());
    ASSERT_FALSE(t.get(3).has_value());
    EXPECT_EQ(t.commit(), TxnResult::kCommitted);
  }
}

TEST(Txn, ScanIsReadCommitted) {
  Map m(Config::for_elements(256));
  for (std::uint64_t k = 0; k < 10; ++k) ASSERT_TRUE(m.insert(k, k * 10));
  Txn t(m);
  std::uint64_t sum = 0;
  const std::size_t n =
      t.scan(0, 9, [&](std::uint64_t, std::uint64_t v) { sum += v; });
  EXPECT_EQ(n, 10u);
  EXPECT_EQ(sum, 450u);
  EXPECT_EQ(t.commit(), TxnResult::kCommitted);
}

TEST(Txn, SameKeyIntentsApplyInSubmissionOrder) {
  Map m(Config::for_elements(64));
  Txn t(m);
  t.put(1, 10);
  t.remove(1);
  t.put(1, 30);  // last write wins, like apply_batch
  ASSERT_EQ(t.commit(), TxnResult::kCommitted);
  EXPECT_EQ(m.lookup(1), std::optional<std::uint64_t>(30));
}

// Every key removed through its own transaction, on a tiny-chunk map where
// many keys are towered chunk minima: exercises the internal kNeedDemote
// retry (demote, then re-run the commit pass) end to end.
TEST(Txn, ToweredRemovesCommitViaDemote) {
  Map m(Tiny());
  constexpr std::uint64_t kN = 512;
  for (std::uint64_t k = 0; k < kN; ++k) ASSERT_TRUE(m.insert(k, k));
  for (std::uint64_t k = 0; k < kN; ++k) {
    Txn t(m);
    t.remove(k);
    ASSERT_EQ(t.commit(), TxnResult::kCommitted) << "key " << k;
  }
  EXPECT_EQ(m.size_approx(), 0u);
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

// ---- run() helper -----------------------------------------------------------

TEST(TxnRun, BodyAbortReturnsFalseWithoutRetry) {
  Map m(Config::for_elements(64));
  int calls = 0;
  const bool ok = txn::run(m, [&](Txn& t) {
    ++calls;
    t.put(1, 1);
    return false;  // user abort
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(m.lookup(1).has_value());
}

TEST(TxnRun, CommitsAndReturnsTrue) {
  Map m(Config::for_elements(64));
  const bool ok = txn::run(m, [](Txn& t) {
    t.put(1, 10);
    t.put(2, 20);
    return true;
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(m.lookup(1), std::optional<std::uint64_t>(10));
  EXPECT_EQ(m.lookup(2), std::optional<std::uint64_t>(20));
}

// ---- Concurrency ------------------------------------------------------------

// Lost-update freedom: N threads x M transactional increments of one hot
// key must sum exactly (optimistic reads + commit validation make the RMW
// serializable; retries come from txn::run).
TEST(TxnConcurrent, HotKeyRmwLosesNoUpdates) {
  Map m(Config::for_elements(64));
  ASSERT_TRUE(m.insert(0, 0));
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 2000;

  std::vector<std::thread> threads;
  for (unsigned i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (std::uint64_t n = 0; n < kPerThread; ++n) {
        ASSERT_TRUE(txn::run(m, [](Txn& t) {
          const auto v = t.get(0);
          t.put(0, *v + 1);
          return true;
        }));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(m.lookup(0), std::optional<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(counter(m, stats::Counter::kTxnCommits), kThreads * kPerThread);
  // Aborts and retries line up: every abort was retried by run().
  EXPECT_EQ(counter(m, stats::Counter::kTxnAborts),
            counter(m, stats::Counter::kTxnRetries));
}

// Conserved-total transfers: concurrent two-key transfer transactions plus
// transactional auditors summing every account read-serializably. Any lost
// update, partial commit, or stale-read commit breaks the total.
TEST(TxnConcurrent, TransfersConserveTotal) {
  constexpr std::uint64_t kAccounts = 64;
  constexpr std::uint64_t kInitial = 1000;
  constexpr unsigned kWriters = 6;
  constexpr unsigned kAuditors = 2;
  constexpr std::uint64_t kTransfersPerWriter = 3000;

  Map m(Config::for_elements(kAccounts));
  for (std::uint64_t k = 0; k < kAccounts; ++k) {
    ASSERT_TRUE(m.insert(k, kInitial));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> audits{0};
  std::vector<std::thread> threads;
  for (unsigned i = 0; i < kWriters; ++i) {
    threads.emplace_back([&, i] {
      Xoshiro256 rng(i + 1);
      for (std::uint64_t n = 0; n < kTransfersPerWriter; ++n) {
        const std::uint64_t a = rng.next_below(kAccounts);
        std::uint64_t b = rng.next_below(kAccounts);
        if (b == a) b = (b + 1) % kAccounts;
        const std::uint64_t amount = rng.next_below(10) + 1;
        ASSERT_TRUE(txn::run(m, [&](Txn& t) {
          const auto va = t.get(a);
          const auto vb = t.get(b);
          if (*va < amount) return true;  // commit the no-op reads
          t.put(a, *va - amount);
          t.put(b, *vb + amount);
          return true;
        }));
      }
    });
  }
  for (unsigned i = 0; i < kAuditors; ++i) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t sum = 0;
        const bool ok = txn::run(m, [&](Txn& t) {
          sum = 0;
          for (std::uint64_t k = 0; k < kAccounts; ++k) sum += *t.get(k);
          return true;
        });
        ASSERT_TRUE(ok);
        ASSERT_EQ(sum, kAccounts * kInitial);  // serializable read of all
        audits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (unsigned i = 0; i < kWriters; ++i) threads[i].join();
  stop.store(true, std::memory_order_relaxed);
  for (unsigned i = kWriters; i < threads.size(); ++i) threads[i].join();

  EXPECT_GT(audits.load(), 0u);
  std::uint64_t final_sum = 0;
  m.for_each([&](std::uint64_t, std::uint64_t v) { final_sum += v; });
  EXPECT_EQ(final_sum, kAccounts * kInitial);
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

// Transactions and plain batches share one lock manager: mixing them on
// the same keys must preserve batch atomicity and txn serializability.
TEST(TxnConcurrent, TxnsAndBatchesInterleave) {
  constexpr std::uint64_t kKeys = 32;
  Map m(Config::for_elements(kKeys));
  for (std::uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(m.insert(k, 0));

  std::atomic<bool> stop{false};
  std::thread batcher([&] {
    Xoshiro256 rng(42);
    std::vector<Map::BatchOp> ops;
    while (!stop.load(std::memory_order_relaxed)) {
      ops.clear();
      // Even-aligned pairs so no two batches overlap on one key: the
      // invariant "key 2i == key 2i+1" survives any batch interleaving.
      const std::uint64_t base = rng.next_below(kKeys / 2) * 2;
      const std::uint64_t v = rng.next();
      ops.push_back(Map::BatchOp::put(base, v));
      ops.push_back(Map::BatchOp::put(base + 1, v));
      m.apply_batch(ops);
    }
  });
  std::thread verifier([&] {
    Xoshiro256 rng(7);
    for (int n = 0; n < 20000; ++n) {
      const std::uint64_t base = rng.next_below(kKeys / 2) * 2;
      std::uint64_t va = 0, vb = 0;
      ASSERT_TRUE(txn::run(m, [&](Txn& t) {
        va = *t.get(base);
        vb = *t.get(base + 1);
        return true;
      }));
      ASSERT_EQ(va, vb) << "torn batch visible at " << base;
    }
  });
  verifier.join();
  stop.store(true, std::memory_order_relaxed);
  batcher.join();
  std::string err;
  EXPECT_TRUE(m.validate(&err)) << err;
}

// ---- Snapshots --------------------------------------------------------------

// A wait-free snapshot pinned before a transactional commit must not see
// the commit (transactions ride the same preserve-pre-image MVCC path as
// batches).
TEST(TxnSnapshots, PinnedSnapshotInvisibleToLaterTxn) {
  Map m(Config::for_elements(256));
  for (std::uint64_t k = 0; k < 16; ++k) ASSERT_TRUE(m.insert(k, 1));

  auto view = m.snapshot_at();
  ASSERT_TRUE(txn::run(m, [](Txn& t) {
    for (std::uint64_t k = 0; k < 16; ++k) t.put(k, 2);
    t.put(100, 2);
    return true;
  }));

  std::uint64_t snap_sum = 0, snap_n = 0;
  m.range_for_each_at(view, 0, 200, [&](std::uint64_t, std::uint64_t v) {
    snap_sum += v;
    ++snap_n;
  });
  EXPECT_EQ(snap_n, 16u);   // key 100 did not exist at the pin
  EXPECT_EQ(snap_sum, 16u);  // all pre-commit values
  std::uint64_t live_sum = 0;
  m.range_for_each(0, 200, [&](std::uint64_t, std::uint64_t v) {
    live_sum += v;
  });
  EXPECT_EQ(live_sum, 34u);  // 16 * 2 + 2
}

}  // namespace
}  // namespace sv::core
