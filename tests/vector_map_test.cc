// Unit tests for the VectorMap chunk container: both layouts, boundary
// conditions, and the structural operations (steal/split/merge) the skip
// vector builds on. Typed tests run every case against Sorted and Unsorted.
#include "vectormap/vector_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace sv::vectormap {
namespace {

// Owning harness: VectorMap itself is a non-owning view (the skip vector
// packs the arrays into node allocations). The layout is a runtime ctor
// argument now; the template parameter only feeds the typed suite.
template <Layout L>
class Chunk {
 public:
  explicit Chunk(std::uint32_t cap)
      : keys_(std::make_unique<std::atomic<std::uint64_t>[]>(cap)),
        vals_(std::make_unique<std::atomic<std::uint64_t>[]>(cap)),
        map_(keys_.get(), vals_.get(), cap, L) {}
  VectorMap<std::uint64_t, std::uint64_t>& operator*() { return map_; }
  VectorMap<std::uint64_t, std::uint64_t>* operator->() { return &map_; }

 private:
  std::unique_ptr<std::atomic<std::uint64_t>[]> keys_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> vals_;
  VectorMap<std::uint64_t, std::uint64_t> map_;
};

template <class T>
class VectorMapTypedTest : public testing::Test {};

struct SortedTag {
  static constexpr Layout kL = Layout::kSorted;
};
struct UnsortedTag {
  static constexpr Layout kL = Layout::kUnsorted;
};
using Layouts = testing::Types<SortedTag, UnsortedTag>;
TYPED_TEST_SUITE(VectorMapTypedTest, Layouts);

TYPED_TEST(VectorMapTypedTest, EmptyChunk) {
  Chunk<TypeParam::kL> c(8);
  EXPECT_TRUE(c->empty());
  EXPECT_FALSE(c->full());
  EXPECT_EQ(c->size(), 0u);
  EXPECT_FALSE(c->contains(1));
  EXPECT_FALSE(c->get(1).has_value());
  EXPECT_FALSE(c->find_le(100).found);
  EXPECT_FALSE(c->erase(1));
}

TYPED_TEST(VectorMapTypedTest, InsertGetEraseRoundTrip) {
  Chunk<TypeParam::kL> c(8);
  EXPECT_TRUE(c->insert(5, 50));
  EXPECT_TRUE(c->insert(3, 30));
  EXPECT_TRUE(c->insert(7, 70));
  EXPECT_EQ(c->size(), 3u);
  EXPECT_EQ(c->get(3).value(), 30u);
  EXPECT_EQ(c->get(5).value(), 50u);
  EXPECT_EQ(c->get(7).value(), 70u);
  EXPECT_EQ(c->min_key(), 3u);
  EXPECT_EQ(c->max_key(), 7u);
  std::uint64_t out = 0;
  EXPECT_TRUE(c->erase(5, &out));
  EXPECT_EQ(out, 50u);
  EXPECT_FALSE(c->contains(5));
  EXPECT_EQ(c->size(), 2u);
}

TYPED_TEST(VectorMapTypedTest, InsertRejectsWhenFull) {
  Chunk<TypeParam::kL> c(4);
  for (std::uint64_t k = 0; k < 4; ++k) EXPECT_TRUE(c->insert(k, k));
  EXPECT_TRUE(c->full());
  EXPECT_FALSE(c->insert(99, 99));
  EXPECT_EQ(c->size(), 4u);
}

TYPED_TEST(VectorMapTypedTest, FindLESemantics) {
  Chunk<TypeParam::kL> c(8);
  for (std::uint64_t k : {10u, 20u, 30u}) ASSERT_TRUE(c->insert(k, k * 2));
  auto r = c->find_le(25);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.key, 20u);
  EXPECT_EQ(r.val, 40u);
  r = c->find_le(30);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.key, 30u);  // exact match is <=
  r = c->find_le(9);
  EXPECT_FALSE(r.found);  // everything greater
  r = c->find_le(1000);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.key, 30u);
}

TYPED_TEST(VectorMapTypedTest, AssignOverwritesInPlace) {
  Chunk<TypeParam::kL> c(4);
  ASSERT_TRUE(c->insert(1, 10));
  EXPECT_TRUE(c->assign(1, 11));
  EXPECT_EQ(c->get(1).value(), 11u);
  EXPECT_FALSE(c->assign(2, 20));
  EXPECT_EQ(c->size(), 1u);
}

TYPED_TEST(VectorMapTypedTest, StealGreaterMovesStrictSuffix) {
  Chunk<TypeParam::kL> a(8), b(8);
  for (std::uint64_t k : {1u, 3u, 5u, 7u, 9u}) ASSERT_TRUE(a->insert(k, k));
  a->steal_greater(5, *b);
  EXPECT_EQ(a->size(), 3u);  // 1, 3, 5 (pivot itself stays)
  EXPECT_EQ(b->size(), 2u);  // 7, 9
  EXPECT_TRUE(a->contains(5));
  EXPECT_FALSE(a->contains(7));
  EXPECT_EQ(b->min_key(), 7u);
  EXPECT_EQ(b->max_key(), 9u);
}

TYPED_TEST(VectorMapTypedTest, StealGreaterWithNoMatchesIsNoop) {
  Chunk<TypeParam::kL> a(8), b(8);
  for (std::uint64_t k : {1u, 2u, 3u}) ASSERT_TRUE(a->insert(k, k));
  a->steal_greater(100, *b);
  EXPECT_EQ(a->size(), 3u);
  EXPECT_TRUE(b->empty());
}

TYPED_TEST(VectorMapTypedTest, SplitHalfBalances) {
  Chunk<TypeParam::kL> a(16), b(16);
  for (std::uint64_t k = 0; k < 16; ++k) ASSERT_TRUE(a->insert(k * 10, k));
  const std::uint64_t b_min = a->split_half(*b);
  EXPECT_EQ(a->size(), 8u);
  EXPECT_EQ(b->size(), 8u);
  EXPECT_EQ(b_min, b->min_key());
  EXPECT_LT(a->max_key(), b->min_key()) << "split must preserve key order";
}

TYPED_TEST(VectorMapTypedTest, SplitHalfOddCount) {
  Chunk<TypeParam::kL> a(8), b(8);
  for (std::uint64_t k : {1u, 2u, 3u, 4u, 5u}) ASSERT_TRUE(a->insert(k, k));
  a->split_half(*b);
  EXPECT_EQ(a->size() + b->size(), 5u);
  EXPECT_GE(a->size(), 2u);
  EXPECT_GE(b->size(), 2u);
  EXPECT_LT(a->max_key(), b->min_key());
}

TYPED_TEST(VectorMapTypedTest, MergeFromRightNeighbor) {
  Chunk<TypeParam::kL> a(8), b(8);
  for (std::uint64_t k : {1u, 2u}) ASSERT_TRUE(a->insert(k, k * 10));
  for (std::uint64_t k : {5u, 6u, 7u}) ASSERT_TRUE(b->insert(k, k * 10));
  a->merge_from(*b);
  EXPECT_EQ(a->size(), 5u);
  EXPECT_TRUE(b->empty());
  for (std::uint64_t k : {1u, 2u, 5u, 6u, 7u}) {
    EXPECT_EQ(a->get(k).value(), k * 10) << k;
  }
}

TYPED_TEST(VectorMapTypedTest, OrderedIterationIsSorted) {
  Chunk<TypeParam::kL> c(16);
  std::vector<std::uint64_t> keys = {9, 2, 14, 7, 1, 11, 4};
  for (auto k : keys) ASSERT_TRUE(c->insert(k, k + 100));
  std::vector<std::uint64_t> seen;
  c->for_each_ordered([&](std::uint64_t k, std::uint64_t v) {
    EXPECT_EQ(v, k + 100);
    seen.push_back(k);
  });
  ASSERT_EQ(seen.size(), keys.size());
  for (std::size_t i = 1; i < seen.size(); ++i) EXPECT_LT(seen[i - 1], seen[i]);
}

TYPED_TEST(VectorMapTypedTest, RandomizedOracle) {
  Chunk<TypeParam::kL> c(64);
  std::map<std::uint64_t, std::uint64_t> oracle;
  Xoshiro256 rng(12345);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = rng.next_below(100);
    switch (rng.next_below(4)) {
      case 0:
        if (oracle.size() < 64 && !oracle.count(k)) {
          const std::uint64_t v = rng.next();
          ASSERT_TRUE(c->insert(k, v));
          oracle[k] = v;
        }
        break;
      case 1:
        ASSERT_EQ(c->erase(k), oracle.erase(k) > 0);
        break;
      case 2: {
        auto it = oracle.find(k);
        const std::uint64_t v = rng.next();
        ASSERT_EQ(c->assign(k, v), it != oracle.end());
        if (it != oracle.end()) it->second = v;
        break;
      }
      default: {
        auto got = c->get(k);
        auto it = oracle.find(k);
        ASSERT_EQ(got.has_value(), it != oracle.end());
        if (got) {
          ASSERT_EQ(*got, it->second);
        }
      }
    }
    ASSERT_EQ(c->size(), oracle.size());
    if (!oracle.empty()) {
      ASSERT_EQ(c->min_key(), oracle.begin()->first);
      ASSERT_EQ(c->max_key(), oracle.rbegin()->first);
    }
  }
}

TYPED_TEST(VectorMapTypedTest, FindGESemantics) {
  Chunk<TypeParam::kL> c(8);
  for (std::uint64_t k : {10u, 20u, 30u}) ASSERT_TRUE(c->insert(k, k * 2));
  auto r = c->find_ge(15);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.key, 20u);
  EXPECT_EQ(r.val, 40u);
  r = c->find_ge(20);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.key, 20u);  // exact match is >=
  r = c->find_ge(31);
  EXPECT_FALSE(r.found);  // everything smaller
  r = c->find_ge(0);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.key, 10u);
}

TYPED_TEST(VectorMapTypedTest, MinMaxEntry) {
  Chunk<TypeParam::kL> c(8);
  EXPECT_FALSE(c->min_entry().found);
  EXPECT_FALSE(c->max_entry().found);
  for (std::uint64_t k : {7u, 3u, 9u, 5u}) ASSERT_TRUE(c->insert(k, k + 1));
  auto mn = c->min_entry();
  auto mx = c->max_entry();
  ASSERT_TRUE(mn.found && mx.found);
  EXPECT_EQ(mn.key, 3u);
  EXPECT_EQ(mn.val, 4u);
  EXPECT_EQ(mx.key, 9u);
  EXPECT_EQ(mx.val, 10u);
}

TYPED_TEST(VectorMapTypedTest, TransformRangeTouchesExactlyTheRange) {
  Chunk<TypeParam::kL> c(16);
  for (std::uint64_t k = 0; k < 10; ++k) ASSERT_TRUE(c->insert(k, 0));
  const std::uint32_t n =
      c->transform_range(3, 6, [](std::uint64_t k, std::uint64_t) {
        return k * 100;
      });
  EXPECT_EQ(n, 4u);
  for (std::uint64_t k = 0; k < 10; ++k) {
    EXPECT_EQ(c->get(k).value(), (k >= 3 && k <= 6) ? k * 100 : 0u) << k;
  }
  // Degenerate ranges.
  EXPECT_EQ(c->transform_range(100, 200, [](auto, auto v) { return v; }), 0u);
  EXPECT_EQ(c->transform_range(5, 5, [](auto, auto) { return 1u; }), 1u);
}

TYPED_TEST(VectorMapTypedTest, CapacityOneChunk) {
  Chunk<TypeParam::kL> c(1);
  EXPECT_TRUE(c->insert(5, 50));
  EXPECT_TRUE(c->full());
  EXPECT_FALSE(c->insert(6, 60));
  EXPECT_EQ(c->min_key(), 5u);
  EXPECT_EQ(c->max_key(), 5u);
  EXPECT_TRUE(c->erase(5));
  EXPECT_TRUE(c->empty());
}

TYPED_TEST(VectorMapTypedTest, MergeIntoPartiallyFilled) {
  Chunk<TypeParam::kL> a(8), b(8);
  for (std::uint64_t k : {1u, 2u, 3u}) ASSERT_TRUE(a->insert(k, k));
  for (std::uint64_t k : {10u, 11u}) ASSERT_TRUE(b->insert(k, k));
  a->merge_from(*b);
  EXPECT_EQ(a->size(), 5u);
  EXPECT_TRUE(b->empty());
  EXPECT_EQ(a->min_key(), 1u);
  EXPECT_EQ(a->max_key(), 11u);
}

// Layout-specific behaviors.
TEST(VectorMapSorted, KeysStoredInOrderEnablesBinarySearch) {
  Chunk<Layout::kSorted> c(8);
  for (std::uint64_t k : {5u, 1u, 3u}) ASSERT_TRUE(c->insert(k, k));
  std::vector<std::uint64_t> raw;
  c->for_each([&](std::uint64_t k, std::uint64_t) { raw.push_back(k); });
  ASSERT_EQ(raw.size(), 3u);
  EXPECT_TRUE(raw[0] < raw[1] && raw[1] < raw[2])
      << "sorted layout must keep physical order";
}

TEST(VectorMapUnsorted, InsertAppendsConstantTime) {
  Chunk<Layout::kUnsorted> c(8);
  for (std::uint64_t k : {5u, 1u, 3u}) ASSERT_TRUE(c->insert(k, k));
  std::vector<std::uint64_t> raw;
  c->for_each([&](std::uint64_t k, std::uint64_t) { raw.push_back(k); });
  ASSERT_EQ(raw.size(), 3u);
  EXPECT_EQ(raw[0], 5u);  // append order preserved
  EXPECT_EQ(raw[1], 1u);
  EXPECT_EQ(raw[2], 3u);
}

TEST(VectorMapSpeculation, ClampedSizeNeverExceedsCapacity) {
  // A racing writer can make `size` transiently exceed what a reader should
  // trust; size() must clamp so scans stay in bounds.
  Chunk<Layout::kUnsorted> c(4);
  for (std::uint64_t k = 0; k < 4; ++k) ASSERT_TRUE(c->insert(k, k));
  EXPECT_EQ(c->size(), 4u);
  EXPECT_TRUE(c->full());
}

}  // namespace
}  // namespace sv::vectormap
